package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"relatch/internal/cert"
	"relatch/internal/core"
	"relatch/internal/obs"
	"relatch/internal/vlib"
)

// Config configures an Engine.
type Config struct {
	// Workers bounds the number of concurrently running solves
	// (≤ 0 means GOMAXPROCS). Queued jobs beyond the bound wait for a
	// slot; deduplicated followers never consume one.
	Workers int
	// Cache, when non-nil, serves repeated keys without re-solving and
	// stores every computed outcome.
	Cache *Cache
	// JobTimeout bounds each solve that does not carry its own
	// Job.Timeout (0 = unbounded).
	JobTimeout time.Duration
	// SolveOverride replaces the real solve when non-nil. It exists for
	// tests and the fault-injection harness — the production solvers are
	// hardened enough that worker crashes and stalls cannot be provoked
	// from outside otherwise.
	SolveOverride func(ctx context.Context, job Job) (*Outcome, error)
	// Metrics, when non-nil, receives the per-stage job latency
	// histograms (relatch_job_stage_seconds{stage=...}: queue_wait,
	// solve, certify, total).
	Metrics *obs.Registry
}

// Outcome is a completed job: exactly one of Core/VLib is set, according
// to the job's approach.
type Outcome struct {
	Key      Key
	Approach Approach

	Core *core.Result
	VLib *vlib.Result

	// Certificate is the independent output certification. Core results
	// carry the one attached by core.RetimeCtx's post-solve gate; for
	// virtual-library results the engine runs the same check itself, so
	// every outcome — solved, restored or shared — is certified.
	Certificate *cert.Certificate

	// CacheHit reports the outcome was restored rather than solved;
	// CacheLayer says from where ("memory", "disk" or "peer"). Shared
	// marks a
	// deduplicated follower that rode on another submission's solve.
	CacheHit   bool
	CacheLayer string
	Shared     bool

	// Runtime is the wall time of the solve (or of the validated
	// restore, for cache hits).
	Runtime time.Duration
}

// Summary flattens an outcome into the row every frontend reports.
type Summary struct {
	Approach   string  `json:"approach"`
	Circuit    string  `json:"circuit"`
	Slaves     int     `json:"slaves"`
	Masters    int     `json:"masters"`
	ED         int     `json:"ed"`
	SeqArea    float64 `json:"seq_area"`
	TotalArea  float64 `json:"total_area"`
	Solver     string  `json:"solver,omitempty"`
	Fallback   bool    `json:"fallback,omitempty"`
	Certified  bool    `json:"certified"`
	Violations int     `json:"violations,omitempty"`
	CacheHit   bool    `json:"cache_hit,omitempty"`
	CacheLayer string  `json:"cache_layer,omitempty"`
}

// Summary returns the flattened report row for the outcome.
func (o *Outcome) Summary() Summary {
	s := Summary{
		Approach:   o.Approach.Display(),
		Certified:  o.Certificate != nil && o.Certificate.Certified(),
		CacheHit:   o.CacheHit,
		CacheLayer: o.CacheLayer,
	}
	switch {
	case o.Core != nil:
		s.Circuit = o.Core.Circuit.Name
		s.Slaves = o.Core.SlaveCount
		s.Masters = o.Core.MasterCount
		s.ED = o.Core.EDCount
		s.SeqArea = o.Core.SeqArea
		s.TotalArea = o.Core.TotalArea
		s.Solver = o.Core.Solver.String()
		s.Fallback = o.Core.SolverFallback
		s.Violations = len(o.Core.Violations)
	case o.VLib != nil:
		s.Circuit = o.VLib.Circuit.Name
		s.Slaves = o.VLib.SlaveCount
		s.Masters = o.VLib.MasterCount
		s.ED = o.VLib.EDCount
		s.SeqArea = o.VLib.SeqArea
		s.TotalArea = o.VLib.TotalArea
	}
	return s
}

// State is a ticket's position in its lifecycle.
type State int

// Ticket states, in lifecycle order.
const (
	StateQueued State = iota
	StateRunning
	StateDone
	StateFailed
)

func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Ticket tracks one submission from Submit to completion.
type Ticket struct {
	ID  string
	Key Key

	mu        sync.Mutex
	state     State     // guarded by mu
	outcome   *Outcome  // guarded by mu
	err       error     // guarded by mu
	submitted time.Time // guarded by mu
	started   time.Time // guarded by mu
	finished  time.Time // guarded by mu

	done chan struct{} // closed by finish; receive-only join, no lock needed
}

// Status returns the ticket's current state and lifecycle timestamps.
func (t *Ticket) Status() (state State, submitted, started, finished time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state, t.submitted, t.started, t.finished
}

// Err returns the job error once the ticket has failed, nil otherwise.
func (t *Ticket) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Outcome returns the completed outcome, nil until the ticket is done.
func (t *Ticket) Outcome() *Outcome {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.outcome
}

// Wait blocks until the job completes or ctx is cancelled. The returned
// error wraps ctx.Err() when the wait — not the job — was cut short.
func (t *Ticket) Wait(ctx context.Context) (*Outcome, error) {
	select {
	case <-t.done:
	case <-ctx.Done():
		return nil, fmt.Errorf("engine: waiting for %s: %w", t.ID, ctx.Err())
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.outcome, t.err
}

func (t *Ticket) setRunning() {
	t.mu.Lock()
	if t.state == StateQueued {
		t.state = StateRunning
		t.started = time.Now()
	}
	t.mu.Unlock()
}

func (t *Ticket) finish(out *Outcome, err error) {
	t.mu.Lock()
	t.outcome, t.err = out, err
	t.finished = time.Now()
	if err != nil {
		t.state = StateFailed
	} else {
		t.state = StateDone
	}
	t.mu.Unlock()
	close(t.done)
}

// Stats is a point-in-time snapshot of engine activity.
type Stats struct {
	Submitted    int64      `json:"submitted"`
	Completed    int64      `json:"completed"`
	Failed       int64      `json:"failed"`
	Deduplicated int64      `json:"deduplicated"`
	Cache        CacheStats `json:"cache"`
}

// call is the singleflight record for one in-flight key.
type call struct {
	done    chan struct{}
	outcome *Outcome
	err     error
}

// Engine runs retiming jobs on a bounded worker pool with singleflight
// deduplication and result caching. Close cancels everything in flight.
type Engine struct {
	cfg     Config
	baseCtx context.Context
	cancel  context.CancelFunc
	sem     chan struct{}
	wg      sync.WaitGroup
	// Per-stage latency histograms, set once in New (nil = inert when
	// no Config.Metrics registry was supplied); Observe is lock-free.
	hQueueWait *obs.Histogram
	hSolve     *obs.Histogram
	hCertify   *obs.Histogram
	hTotal     *obs.Histogram

	mu       sync.Mutex
	inflight map[Key]*call      // guarded by mu
	tickets  map[string]*Ticket // guarded by mu
	order    []string           // guarded by mu
	nextID   int                // guarded by mu
	stats    Stats              // guarded by mu
	closed   bool               // guarded by mu
}

// New builds an engine. The caller owns its lifecycle and must Close it.
func New(cfg Config) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Engine{
		cfg:        cfg,
		baseCtx:    ctx,
		cancel:     cancel,
		sem:        make(chan struct{}, cfg.Workers),
		inflight:   make(map[Key]*call),
		tickets:    make(map[string]*Ticket),
		hQueueWait: cfg.Metrics.Histogram(`relatch_job_stage_seconds{stage="queue_wait"}`),
		hSolve:     cfg.Metrics.Histogram(`relatch_job_stage_seconds{stage="solve"}`),
		hCertify:   cfg.Metrics.Histogram(`relatch_job_stage_seconds{stage="certify"}`),
		hTotal:     cfg.Metrics.Histogram(`relatch_job_stage_seconds{stage="total"}`),
	}
}

// Cache returns the engine's cache (nil when caching is disabled).
func (e *Engine) Cache() *Cache { return e.cfg.Cache }

// Saturated reports whether every worker slot is currently occupied —
// the signal the serve layer uses to fall back to cache-only answers.
func (e *Engine) Saturated() bool { return len(e.sem) == cap(e.sem) }

// Workers returns the size of the worker pool.
func (e *Engine) Workers() int { return cap(e.sem) }

// WorkersBusy returns how many worker slots are occupied right now —
// a point-in-time sample for the gauge collector.
func (e *Engine) WorkersBusy() int { return len(e.sem) }

// CachedOutcome returns a validated cached outcome for the job without
// consuming a worker slot or touching the queue. It backs the degraded
// serve-from-cache-only mode: a cache probe, restore and re-certify,
// nothing else.
func (e *Engine) CachedOutcome(ctx context.Context, job Job) (*Outcome, bool) {
	if e.cfg.Cache == nil {
		return nil, false
	}
	key, err := job.Key()
	if err != nil {
		return nil, false
	}
	return e.cfg.Cache.Get(ctx, key, job)
}

// Close cancels every queued and in-flight job and waits for the
// workers to drain. Submissions after Close fail.
func (e *Engine) Close() {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.cancel()
	e.wg.Wait()
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	s := e.stats
	e.mu.Unlock()
	if e.cfg.Cache != nil {
		s.Cache = e.cfg.Cache.Stats()
	}
	return s
}

// Get looks a ticket up by ID.
func (e *Engine) Get(id string) (*Ticket, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tickets[id]
	return t, ok
}

// Tickets lists every ticket in submission order.
func (e *Engine) Tickets() []*Ticket {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*Ticket, 0, len(e.order))
	for _, id := range e.order {
		out = append(out, e.tickets[id])
	}
	return out
}

// Submit schedules a job and returns its ticket immediately. The job
// runs under a context derived from ctx (so tracers and values flow in,
// and cancelling ctx cancels the job) that is also cut when the engine
// closes or the job's timeout expires.
func (e *Engine) Submit(ctx context.Context, job Job) (*Ticket, error) {
	key, err := job.Key()
	if err != nil {
		return nil, err
	}
	sp, ctx := obs.StartSpan(ctx, "engine.submit")
	defer sp.End()
	sp.Attr("key", key.Short())
	sp.Attr("approach", string(job.Approach))

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, fmt.Errorf("engine: %w", ErrClosed)
	}
	e.nextID++
	t := &Ticket{
		ID:        fmt.Sprintf("job-%06d", e.nextID),
		Key:       key,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	e.tickets[t.ID] = t
	e.order = append(e.order, t.ID)
	e.stats.Submitted++
	e.wg.Add(1)
	e.mu.Unlock()

	sp.Attr("id", t.ID)
	sp.Add("submitted", 1)

	go e.run(ctx, t, job, key)
	return t, nil
}

// Do is Submit followed by Wait.
func (e *Engine) Do(ctx context.Context, job Job) (*Outcome, error) {
	t, err := e.Submit(ctx, job)
	if err != nil {
		return nil, err
	}
	return t.Wait(ctx)
}

// run executes one submission end to end and settles its ticket.
func (e *Engine) run(ctx context.Context, t *Ticket, job Job, key Key) {
	defer e.wg.Done()

	// The job context inherits the submission context (values — tracer,
	// logger — and cancellation) and is additionally cut when the
	// engine closes.
	jobCtx, cancelJob := context.WithCancel(ctx)
	defer cancelJob()
	stopWatch := context.AfterFunc(e.baseCtx, cancelJob)
	defer stopWatch()

	sp, jobCtx := obs.StartSpan(jobCtx, "engine.job")
	defer sp.End()
	sp.Attr("id", t.ID)
	sp.Attr("key", key.Short())
	sp.Attr("approach", string(job.Approach))

	out, err := e.execute(jobCtx, sp, t, job, key)
	sp.Fail(err)
	sp.End()
	if err == nil {
		_, submitted, _, _ := t.Status()
		e.hTotal.Observe(time.Since(submitted))
	}

	e.mu.Lock()
	if err != nil {
		e.stats.Failed++
	} else {
		e.stats.Completed++
	}
	e.mu.Unlock()
	t.finish(out, err)
}

// execute resolves one submission: join an in-flight computation of the
// same key as a follower, or lead one (cache lookup, bounded solve,
// cache store).
func (e *Engine) execute(ctx context.Context, sp *obs.Span, t *Ticket, job Job, key Key) (*Outcome, error) {
	e.mu.Lock()
	if c, ok := e.inflight[key]; ok {
		e.stats.Deduplicated++
		e.mu.Unlock()
		sp.Add("deduplicated", 1)
		t.setRunning()
		select {
		case <-c.done:
		case <-ctx.Done():
			return nil, fmt.Errorf("engine: %s: %w", t.ID, ctx.Err())
		}
		if c.err != nil {
			return nil, c.err
		}
		shared := *c.outcome
		shared.Shared = true
		return &shared, nil
	}
	c := &call{done: make(chan struct{})}
	e.inflight[key] = c
	e.mu.Unlock()

	out, err := e.lead(ctx, t, job, key)
	c.outcome, c.err = out, err
	e.mu.Lock()
	delete(e.inflight, key)
	e.mu.Unlock()
	close(c.done)
	return out, err
}

// lead computes the outcome for a key: waits for a worker slot, tries
// the cache, solves with a panic guard under the job deadline, and
// stores the fresh result.
func (e *Engine) lead(ctx context.Context, t *Ticket, job Job, key Key) (*Outcome, error) {
	waitStart := time.Now()
	select {
	case e.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, fmt.Errorf("engine: %s queued: %w", t.ID, ctx.Err())
	}
	defer func() { <-e.sem }()
	e.hQueueWait.Observe(time.Since(waitStart))
	t.setRunning()

	if e.cfg.Cache != nil {
		if out, ok := e.cfg.Cache.Get(ctx, key, job); ok {
			return out, nil
		}
	}

	timeout := job.Timeout
	if timeout <= 0 {
		timeout = e.cfg.JobTimeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	out, err := e.solve(ctx, job, key)
	if err != nil {
		return nil, err
	}
	if e.cfg.Cache != nil {
		e.cfg.Cache.Put(ctx, key, job, out)
	}
	return out, nil
}

// solve runs the actual retiming flow for the job's approach. Panics in
// the solver stack surface as per-job errors, never as process crashes.
func (e *Engine) solve(ctx context.Context, job Job, key Key) (out *Outcome, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, fmt.Errorf("engine: job %s panicked: %v", key.Short(), r)
		}
	}()
	start := time.Now()
	if e.cfg.SolveOverride != nil {
		defer func() {
			if err == nil {
				e.hSolve.Observe(time.Since(start))
			}
		}()
		return e.cfg.SolveOverride(ctx, job)
	}
	out = &Outcome{Key: key, Approach: job.Approach}
	if job.Approach.IsVLib() {
		shape := cert.Snapshot(job.Circuit)
		res, verr := vlib.RetimeCtx(ctx, job.Circuit, vlib.Options{
			Scheme:        job.Options.Scheme,
			EDLCost:       job.Options.EDLCost,
			Method:        job.Options.Method,
			PostSwap:      job.PostSwap,
			MaxSizingIter: job.MaxSizingIter,
		}, job.Approach.Variant())
		if verr != nil {
			return nil, verr
		}
		solveDur := time.Since(start)
		// The incremental compile resizes gates but never changes logic
		// functions, hence AllowResizing; without the post-swap the flow
		// may deliberately leave extra ED latches, hence EDSuperset.
		crt, cerr := cert.Run(ctx, cert.Subject{
			Original:    shape,
			Retimed:     res.Circuit,
			Placement:   res.Placement,
			Scheme:      job.Options.Scheme,
			Latch:       res.Circuit.Lib.BaseLatch,
			EDMasters:   res.EDMasters,
			SlaveCount:  res.SlaveCount,
			MasterCount: res.MasterCount,
			EDCount:     res.EDCount,
			SeqArea:     res.SeqArea,
			EDLCost:     job.Options.EDLCost,
			Approach:    job.Approach.Display(),
		}, cert.Config{AllowResizing: true, EDSuperset: !job.PostSwap})
		if cerr != nil {
			return nil, fmt.Errorf("engine: certifying %s: %w", key.Short(), cerr)
		}
		out.VLib, out.Certificate = res, crt
		if ferr := crt.Err(); ferr != nil {
			return nil, fmt.Errorf("engine: %s: %w", key.Short(), ferr)
		}
		e.hSolve.Observe(solveDur)
		e.hCertify.Observe(time.Since(start) - solveDur)
	} else {
		res, rerr := core.RetimeCtx(ctx, job.Circuit.Clone(), job.Options, job.Approach.CoreApproach())
		if rerr != nil {
			// core's post-solve gate attaches the certificate even when
			// it fails; the outcome is unusable either way.
			return nil, rerr
		}
		out.Core, out.Certificate = res, res.Certificate
		e.hCertify.Observe(res.CertifyTime)
		e.hSolve.Observe(res.Runtime - res.CertifyTime)
	}
	out.Runtime = time.Since(start)
	return out, nil
}

// IsClosed reports whether err stems from the engine shutting down or a
// context cut (as opposed to the solve itself failing).
func IsClosed(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
