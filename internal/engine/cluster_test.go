package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"relatch/internal/cluster"
	"relatch/internal/obs"
	"relatch/internal/queue"
)

// clusterNode is one member of an in-process test cluster.
type clusterNode struct {
	id   string
	url  string
	ts   *httptest.Server
	st   *testStack
	node *cluster.Node
}

// threeNodes builds a 3-node in-process cluster, each node a full
// serving stack (engine, queue, durable pump, HTTP frontend) with a
// disk cache and the peer tier wired. Listeners are bound before any
// node is constructed so every member knows the full membership URLs
// up front — the same order of operations a static -peers deployment
// has.
func threeNodes(t *testing.T, mutate func(i int, scfg *ServerConfig)) []*clusterNode {
	t.Helper()
	lns := make([]net.Listener, 3)
	specs := make([]cluster.PeerSpec, 3)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		specs[i] = cluster.PeerSpec{ID: fmt.Sprintf("n%d", i+1), URL: "http://" + ln.Addr().String()}
	}
	nodes := make([]*clusterNode, 3)
	for i := range nodes {
		st := newTestStack(t, func(cfg *Config, _ *queue.Config, _ *DurableConfig) {
			cfg.Cache = mustCache(t, 8, t.TempDir())
		})
		cn, err := cluster.New(cluster.Config{
			Self:             specs[i].ID,
			Peers:            specs,
			Replicas:         2,
			Timeout:          5 * time.Second,
			BreakerThreshold: 1,
			Metrics:          st.metrics,
		})
		if err != nil {
			t.Fatal(err)
		}
		st.eng.Cache().SetPeer(cn.FetchEntry)
		scfg := ServerConfig{
			Durable:        st.d,
			Tracer:         st.tr,
			Metrics:        st.metrics,
			RequestTimeout: 30 * time.Second,
			Stream:         st.stream,
			Cluster:        cn,
		}
		if mutate != nil {
			mutate(i, &scfg)
		}
		srv, err := NewServer(scfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewUnstartedServer(srv.Handler())
		ts.Listener.Close()
		ts.Listener = lns[i]
		ts.Start()
		t.Cleanup(ts.Close)
		nodes[i] = &clusterNode{id: specs[i].ID, url: specs[i].URL, ts: ts, st: st, node: cn}
	}
	return nodes
}

// byID indexes the node list by member ID.
func byID(nodes []*clusterNode, id string) *clusterNode {
	for _, n := range nodes {
		if n.id == id {
			return n
		}
	}
	return nil
}

// jobAndKey builds the request's job and content address.
func jobAndKey(t *testing.T, req JobRequest) (Job, Key) {
	t.Helper()
	job, err := BuildJob(req)
	if err != nil {
		t.Fatal(err)
	}
	key, err := job.Key()
	if err != nil {
		t.Fatal(err)
	}
	return job, key
}

// traceText renders a node's full trace outline.
func traceText(n *clusterNode) string {
	var buf bytes.Buffer
	n.st.tr.Report().WriteText(&buf)
	return buf.String()
}

// TestClusterForwardsToOwnerWithRequestID proves the sharding contract
// and satellite 1: a submission to a non-owner is forwarded to the
// owner shard, completes there, and the client's X-Request-Id appears
// on both nodes' traces — the forward leg on the sender, the job span
// on the owner.
func TestClusterForwardsToOwnerWithRequestID(t *testing.T) {
	nodes := threeNodes(t, nil)
	req := JobRequest{Verilog: testSource, Approach: "grar"}
	_, key := jobAndKey(t, req)

	owner := nodes[0].node.Owners(key.String())[0]
	var sender *clusterNode
	for _, n := range nodes {
		if n.id != owner {
			sender = n
			break
		}
	}
	const reqID = "req-cluster-7f3a"
	body, _ := json.Marshal(req)
	hreq, _ := http.NewRequest(http.MethodPost, sender.ts.URL+"/jobs", bytes.NewReader(body))
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("X-Request-Id", reqID)
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	var js jobStatus
	json.NewDecoder(resp.Body).Decode(&js)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("forwarded submit returned %d: %+v", resp.StatusCode, js)
	}
	if got := resp.Header.Get("X-Cluster-Node"); got != owner {
		t.Fatalf("X-Cluster-Node = %q, want owner %q", got, owner)
	}

	// Polling the accepting node is proxied to the owner.
	done := pollDone(t, sender.ts, js.ID)
	if done.Status != "done" || done.Result == nil || !done.Result.Certified {
		t.Fatalf("forwarded job ended %+v", done)
	}
	// The owner's queue holds the job; the sender's does not.
	if _, ok := byID(nodes, owner).st.q.Get(js.ID); !ok {
		t.Fatalf("owner %s has no record of job %s", owner, js.ID)
	}
	if _, ok := sender.st.q.Get(js.ID); ok {
		t.Fatalf("sender %s ran job %s locally despite forwarding", sender.id, js.ID)
	}

	// Satellite 1: the same request ID on both traces.
	if txt := traceText(sender); !strings.Contains(txt, reqID) || !strings.Contains(txt, "cluster.forward") {
		t.Errorf("sender trace missing the forward span with %s:\n%s", reqID, txt)
	}
	if txt := traceText(byID(nodes, owner)); !strings.Contains(txt, reqID) {
		t.Errorf("owner trace missing request ID %s:\n%s", reqID, txt)
	}

	if got := sender.st.metrics.Counter(obs.Label(obs.MetricClusterForward, "outcome", "ok")); got != 1 {
		t.Errorf("forward ok counter = %d, want 1", got)
	}
}

// TestClusterPeerCacheHit proves the warm path: once the owner holds a
// certified disk entry, another node's miss is served through the peer
// tier — fetched, revalidated locally and reported as cache layer
// "peer".
func TestClusterPeerCacheHit(t *testing.T) {
	nodes := threeNodes(t, nil)
	req := JobRequest{Verilog: testSource, Approach: "grar"}
	job, key := jobAndKey(t, req)

	owner := byID(nodes, nodes[0].node.Owners(key.String())[0])
	if _, err := owner.st.eng.Do(context.Background(), job); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(owner.st.eng.Cache().EntryPath(key)); err != nil {
		t.Fatalf("owner has no disk entry after solving: %v", err)
	}

	var other *clusterNode
	for _, n := range nodes {
		if n.id != owner.id {
			other = n
			break
		}
	}
	out, err := other.st.eng.Do(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if !out.CacheHit || out.CacheLayer != "peer" {
		t.Fatalf("outcome hit=%v layer=%q, want a peer-tier hit", out.CacheHit, out.CacheLayer)
	}
	if err := out.Certificate.Err(); err != nil {
		t.Fatalf("peer-restored outcome not certified: %v", err)
	}
	st := other.st.eng.Stats().Cache
	if st.PeerHits != 1 || st.PeerRejected != 0 {
		t.Fatalf("cache stats = %+v, want one peer hit", st)
	}
	if got := other.st.metrics.Counter(obs.Label(obs.MetricClusterPeerFetch, "outcome", "hit")); got != 1 {
		t.Errorf("peer fetch hit counter = %d, want 1", got)
	}
	// The validated blob was persisted: a restart would serve it from disk.
	if _, err := os.Stat(other.st.eng.Cache().EntryPath(key)); err != nil {
		t.Errorf("peer hit was not persisted locally: %v", err)
	}
}

// TestClusterRejectsPoisonedPeer is the trust invariant: a peer serving
// a tampered claim blob is caught by revalidation, the rejection is
// counted, and the job is recomputed locally — an uncertified result is
// never served.
func TestClusterRejectsPoisonedPeer(t *testing.T) {
	nodes := threeNodes(t, nil)
	req := JobRequest{Verilog: testSource, Approach: "grar"}
	job, key := jobAndKey(t, req)

	owner := byID(nodes, nodes[0].node.Owners(key.String())[0])
	if _, err := owner.st.eng.Do(context.Background(), job); err != nil {
		t.Fatal(err)
	}
	// Poison the owner's entry: inflate the claimed sequential area. The
	// blob stays well-formed JSON with the right key and schema — only
	// revalidation against re-derived ground truth can catch it.
	path := owner.st.eng.Cache().EntryPath(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var e map[string]any
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatal(err)
	}
	area, _ := e["seq_area"].(float64)
	e["seq_area"] = area + 1
	tampered, _ := json.Marshal(e)
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}

	var other *clusterNode
	for _, n := range nodes {
		if n.id != owner.id {
			other = n
			break
		}
	}
	out, err := other.st.eng.Do(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if out.CacheHit {
		t.Fatalf("tampered peer entry was served as a cache hit (layer %q)", out.CacheLayer)
	}
	if err := out.Certificate.Err(); err != nil {
		t.Fatalf("locally recomputed outcome not certified: %v", err)
	}
	st := other.st.eng.Stats().Cache
	if st.PeerRejected != 1 {
		t.Fatalf("cache stats = %+v, want exactly one peer rejection", st)
	}
	if st.PeerHits != 0 {
		t.Fatalf("tampered blob counted as a peer hit: %+v", st)
	}
	// The revalidation failure is visible on the public metrics page.
	resp, err := http.Get(other.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(buf.String(), `relatch_engine_cache_total{event="peer_rejected"} 1`) {
		t.Errorf("metrics page missing the peer_rejected counter:\n%s", buf.String())
	}
	// The local recompute stored its own honest entry; the poisoned blob
	// itself must not have been adopted.
	local, err := os.ReadFile(other.st.eng.Cache().EntryPath(key))
	if err != nil {
		t.Fatalf("recomputed entry not persisted: %v", err)
	}
	if bytes.Equal(local, tampered) {
		t.Error("poisoned peer blob was persisted verbatim on the fetching node")
	}
	var stored map[string]any
	if err := json.Unmarshal(local, &stored); err != nil {
		t.Fatal(err)
	}
	if got, _ := stored["seq_area"].(float64); got != area {
		t.Errorf("stored entry claims seq_area %v, want the honest %v", got, area)
	}
}

// TestClusterRebalancesOnPeerDeath kills a node and proves the ring
// rebalance: keys it owned route to the next live owner (or local
// compute), submissions keep succeeding on every surviving node, and
// the fallback is visible in the forward metrics.
func TestClusterRebalancesOnPeerDeath(t *testing.T) {
	nodes := threeNodes(t, nil)
	req := JobRequest{Verilog: testSource, Approach: "grar"}
	_, key := jobAndKey(t, req)

	owner := nodes[0].node.Owners(key.String())[0]
	dead := byID(nodes, owner)
	dead.ts.Close()

	var sender *clusterNode
	for _, n := range nodes {
		if n.id != owner {
			sender = n
			break
		}
	}
	js, resp := postJob(t, sender.ts, req)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit with dead owner returned %d: %+v", resp.StatusCode, js)
	}
	done := pollDone(t, sender.ts, js.ID)
	if done.Status != "done" || done.Result == nil || !done.Result.Certified {
		t.Fatalf("job with dead owner ended %+v", done)
	}

	// Depending on the replica order the job either ran locally
	// (fallback after the dead owner refused the connection, or the
	// sender was the second owner) or was forwarded to the surviving
	// replica. Either way nothing failed, and the dead peer's breaker
	// opened on the sender if it was dialled.
	fellBack := sender.st.metrics.Counter(obs.Label(obs.MetricClusterForward, "outcome", "fallback_local"))
	forwarded := sender.st.metrics.Counter(obs.Label(obs.MetricClusterForward, "outcome", "ok"))
	if fellBack == 0 && forwarded == 0 {
		// Sender itself was the next owner — the route was local.
		if _, ok := sender.st.q.Get(js.ID); !ok {
			t.Fatalf("no forward, no fallback, and no local record of %s", js.ID)
		}
	}

	// Every subsequent submission on every surviving node still works:
	// degrade, never fail.
	for _, n := range nodes {
		if n.id == owner {
			continue
		}
		js, resp := postJob(t, n.ts, JobRequest{Verilog: testSource, Approach: "base"})
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			t.Fatalf("node %s refused a submission after peer death: %d", n.id, resp.StatusCode)
		}
		if done := pollDone(t, n.ts, js.ID); done.Status != "done" {
			t.Fatalf("node %s job ended %q after peer death", n.id, done.Status)
		}
	}
}

// TestClusterAuthPaths covers satellite 3's policy checks on a
// clustered node: no token → 401 with WWW-Authenticate, bad token →
// 401, valid token → 202, token over its rate → 429 with Retry-After,
// and the decisions land in the auth metrics.
func TestClusterAuthPaths(t *testing.T) {
	var auth *cluster.Auth
	nodes := threeNodes(t, func(i int, scfg *ServerConfig) {
		a, err := cluster.NewAuth([]cluster.Policy{
			{Name: "ci", Token: "tok-ci", Rate: 1000, Burst: 1000},
			{Name: "tiny", Token: "tok-tiny", Rate: 0.001, Burst: 1},
		}, scfg.Metrics)
		if err != nil {
			t.Fatal(err)
		}
		scfg.Auth = a
		if i == 0 {
			auth = a
		}
	})
	n := nodes[0]
	body := fmt.Sprintf(`{"approach":"grar","verilog":%q}`, testSource)

	do := func(token string) *http.Response {
		req, _ := http.NewRequest(http.MethodPost, n.ts.URL+"/jobs", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	if resp := do(""); resp.StatusCode != http.StatusUnauthorized || resp.Header.Get("WWW-Authenticate") == "" {
		t.Fatalf("no token: %d (WWW-Authenticate %q)", resp.StatusCode, resp.Header.Get("WWW-Authenticate"))
	}
	if resp := do("tok-wrong"); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("bad token: %d, want 401", resp.StatusCode)
	}
	if resp := do("tok-ci"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("valid token: %d, want 202", resp.StatusCode)
	}
	// Exhaust the tiny client's single-token burst.
	if resp := do("tok-tiny"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("tiny first request: %d, want 202", resp.StatusCode)
	}
	if resp := do("tok-tiny"); resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("tiny second request: %d (Retry-After %q), want 429", resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	// Probes and scrapes stay open.
	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		resp, err := http.Get(n.ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusUnauthorized {
			t.Errorf("%s gated behind auth", path)
		}
	}

	if got := n.st.metrics.Counter(obs.Label(obs.MetricClusterAuth, "result", "unauthorized")); got != 2 {
		t.Errorf("unauthorized counter = %d, want 2", got)
	}
	if got := n.st.metrics.Counter(obs.Label(obs.MetricClusterAuth, "result", "rate_limited")); got != 1 {
		t.Errorf("rate_limited counter = %d, want 1", got)
	}
	if used := auth.Used("ci"); used != 1 {
		t.Errorf("Used(ci) = %d, want 1", used)
	}
}

// TestClusterCacheEntryRoute exercises the peer protocol surface
// directly: a malformed key is a 400, a missing entry a 404, and a
// present entry round-trips byte-identically.
func TestClusterCacheEntryRoute(t *testing.T) {
	nodes := threeNodes(t, nil)
	req := JobRequest{Verilog: testSource, Approach: "grar"}
	job, key := jobAndKey(t, req)
	n := nodes[0]

	get := func(k string) (*http.Response, []byte) {
		resp, err := http.Get(n.ts.URL + "/internal/v1/cache/" + k)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		return resp, buf.Bytes()
	}
	if resp, _ := get("not-hex"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed key: %d, want 400", resp.StatusCode)
	}
	if resp, _ := get(key.String()); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("absent entry: %d, want 404", resp.StatusCode)
	}
	if _, err := n.st.eng.Do(context.Background(), job); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(n.st.eng.Cache().EntryPath(key))
	if err != nil {
		t.Fatal(err)
	}
	resp, got := get(key.String())
	if resp.StatusCode != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("present entry: %d, %d bytes (want %d)", resp.StatusCode, len(got), len(want))
	}
}
