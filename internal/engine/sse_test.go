package engine

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// sseFrame is one parsed SSE frame.
type sseFrame struct {
	id    string
	event string
	data  string
}

// readSSE parses frames off an event-stream body until the `end` event,
// maxFrames, or a read error (connection close).
func readSSE(t *testing.T, body *bufio.Reader, maxFrames int) []sseFrame {
	t.Helper()
	var frames []sseFrame
	var cur sseFrame
	for len(frames) < maxFrames {
		line, err := body.ReadString('\n')
		if err != nil {
			return frames
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if cur.event != "" || cur.data != "" {
				frames = append(frames, cur)
				if cur.event == "end" {
					return frames
				}
				cur = sseFrame{}
			}
		case strings.HasPrefix(line, ":"): // heartbeat comment
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		}
	}
	return frames
}

// stageSequence extracts the ordered stage values from stage frames.
func stageSequence(frames []sseFrame) []string {
	var stages []string
	for _, f := range frames {
		if f.event != "stage" {
			continue
		}
		// Cheap extraction — the payload is flat JSON.
		if i := strings.Index(f.data, `"stage":"`); i >= 0 {
			rest := f.data[i+len(`"stage":"`):]
			if j := strings.IndexByte(rest, '"'); j >= 0 {
				// Collapse consecutive duplicates (retry replays).
				st := rest[:j]
				if len(stages) == 0 || stages[len(stages)-1] != st {
					stages = append(stages, st)
				}
			}
		}
	}
	return stages
}

// TestServerEventsStreamFullLifecycle runs a real solve through the
// durable stack and asserts the SSE feed reports the documented stage
// machine — queued → leased → solving → certifying → done — plus at
// least one pivot-count progress event, a final `end` frame, and
// resumable event ids.
func TestServerEventsStreamFullLifecycle(t *testing.T) {
	ts, _ := newTestServer(t, nil)

	js, resp := postJob(t, ts, JobRequest{Verilog: testSource, Approach: "grar"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit returned %d", resp.StatusCode)
	}

	eresp, err := http.Get(ts.URL + "/jobs/" + js.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	if eresp.StatusCode != http.StatusOK {
		t.Fatalf("events returned %d", eresp.StatusCode)
	}
	if ct := eresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events Content-Type = %q", ct)
	}

	frames := readSSE(t, bufio.NewReader(eresp.Body), 500)
	if len(frames) == 0 {
		t.Fatal("no SSE frames received")
	}
	stages := stageSequence(frames)
	want := []string{"queued", "leased", "solving", "certifying", "done"}
	if strings.Join(stages, " ") != strings.Join(want, " ") {
		t.Fatalf("stage sequence = %v, want %v", stages, want)
	}
	var pivots, end bool
	var lastID string
	for _, f := range frames {
		if f.event == "progress" && strings.Contains(f.data, `"counter":"pivots"`) {
			pivots = true
		}
		if f.event == "end" {
			end = true
		}
		if f.id != "" {
			lastID = f.id
		}
	}
	if !pivots {
		t.Error("no pivots progress event on the stream")
	}
	if !end {
		t.Error("stream did not finish with an end event")
	}
	if lastID == "" {
		t.Fatal("no frame carried an SSE id")
	}

	// Last-Event-ID resume: reconnecting with the final id must replay
	// nothing of the consumed history, only report the (terminal) job.
	req, _ := http.NewRequest("GET", ts.URL+"/jobs/"+js.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", lastID)
	rresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer rresp.Body.Close()
	rframes := readSSE(t, bufio.NewReader(rresp.Body), 50)
	for _, f := range rframes {
		if f.event == "stage" && !strings.Contains(f.data, `"stage":"done"`) {
			t.Fatalf("resume replayed consumed stage frame: %+v", f)
		}
	}
	found := false
	for _, f := range rframes {
		if f.event == "end" {
			found = true
		}
	}
	if !found {
		t.Fatalf("resumed stream never ended: %+v", rframes)
	}
}

// TestServerEventsRoutes checks the non-happy paths: unknown job id is
// a 404, and a server without a stream answers 501.
func TestServerEventsRoutes(t *testing.T) {
	ts, st := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/jobs/nope/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job events returned %d, want 404", resp.StatusCode)
	}

	srv, err := NewServer(ServerConfig{Durable: st.d})
	if err != nil {
		t.Fatal(err)
	}
	js, presp := postJob(t, ts, JobRequest{Verilog: testSource, Approach: "grar"})
	if presp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit returned %d", presp.StatusCode)
	}
	ts2 := httptest.NewServer(srv.Handler())
	t.Cleanup(ts2.Close)
	resp2, err := http.Get(ts2.URL + "/jobs/" + js.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotImplemented {
		t.Fatalf("streamless events returned %d, want 501", resp2.StatusCode)
	}
}

// TestServerEventsSubscriberCleanup proves a client disconnect releases
// the subscription promptly (no leak on the shared stream).
func TestServerEventsSubscriberCleanup(t *testing.T) {
	ts, st := newTestServer(t, nil)
	js, resp := postJob(t, ts, JobRequest{Verilog: testSource, Approach: "grar"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit returned %d", resp.StatusCode)
	}
	pollDone(t, ts, js.ID)

	eresp, err := http.Get(ts.URL + "/jobs/" + js.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	// Read one frame so the handler is live, then slam the connection.
	bufio.NewReader(eresp.Body).ReadString('\n')
	eresp.Body.Close()

	deadline := time.Now().Add(5 * time.Second)
	for st.stream.Subscribers() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("subscriber leaked after disconnect: %d attached", st.stream.Subscribers())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
