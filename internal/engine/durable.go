package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"relatch/internal/obs"
	"relatch/internal/queue"
)

// DurableConfig configures the durability layer between the HTTP
// frontend and the engine.
type DurableConfig struct {
	// Engine executes leased jobs. Required; the caller owns its
	// lifecycle.
	Engine *Engine
	// Queue is the write-ahead journaled job queue. Required; the caller
	// owns its lifecycle and closes it after the Durable is closed.
	Queue *queue.Queue
	// Tracer parents the span of every pumped job (nil = no tracing).
	Tracer *obs.Tracer
	// Logger receives pump lifecycle logs (nil = discard).
	Logger *slog.Logger
	// Metrics, when non-nil, receives readiness gauges; the queue's own
	// transition metrics are configured on the queue.
	Metrics *obs.Registry
	// Workers bounds concurrent pump goroutines (≤ 0 means the engine's
	// worker count) — the engine's own pool is the real execution bound,
	// so this only caps how many leases are outstanding at once.
	Workers int
	// Poll is the idle sleep between lease attempts when the queue has
	// nothing eligible. ≤ 0 means 25ms.
	Poll time.Duration
	// Sweep is the period of the lease-expiry/readiness ticker.
	// ≤ 0 means 500ms.
	Sweep time.Duration
	// OverloadHighWater is the fraction of queue capacity at which the
	// backlog counts as overload. ≤ 0 means 0.9.
	OverloadHighWater float64
	// OverloadGrace is how long overload must persist before /readyz
	// flips unready, and how long a cache-poisoning event keeps it
	// unready. ≤ 0 means 5s.
	OverloadGrace time.Duration
}

// envelope is the journaled payload of one durable job: the original
// API request plus the submission's request ID, so a recovered job can
// be rebuilt from first principles and its spans still correlate with
// the HTTP request that created it.
type envelope struct {
	Req       JobRequest `json:"req"`
	RequestID string     `json:"request_id,omitempty"`
}

// durableResult is the result payload stored in the queue on
// completion.
type durableResult struct {
	Result    Summary `json:"result"`
	RuntimeMS float64 `json:"runtime_ms"`
}

// Durable pumps jobs from the write-ahead queue through the engine:
// lease, rebuild the job from its journaled request, solve+certify via
// the engine (content-addressed cache and singleflight included), and
// settle the lease as complete/fail/dead. It also runs the lease-expiry
// sweep and tracks readiness (sustained overload, cache poisoning).
type Durable struct {
	cfg    DurableConfig
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu            sync.Mutex
	overloadSince time.Time // guarded by mu
	poisonedSeen  int64     // guarded by mu
	poisonedUntil time.Time // guarded by mu
	unreadyReason string    // guarded by mu
}

// NewDurable builds the pump and starts its workers and sweep ticker.
// The caller must Close it before closing the queue or engine.
func NewDurable(cfg DurableConfig) (*Durable, error) {
	if cfg.Engine == nil || cfg.Queue == nil {
		return nil, fmt.Errorf("engine: %w: durable layer needs an engine and a queue", ErrBadConfig)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = cap(cfg.Engine.sem)
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 25 * time.Millisecond
	}
	if cfg.Sweep <= 0 {
		cfg.Sweep = 500 * time.Millisecond
	}
	if cfg.OverloadHighWater <= 0 {
		cfg.OverloadHighWater = 0.9
	}
	if cfg.OverloadGrace <= 0 {
		cfg.OverloadGrace = 5 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.DiscardLogger()
	}
	ctx, cancel := context.WithCancel(obs.WithTracer(context.Background(), cfg.Tracer))
	d := &Durable{cfg: cfg, ctx: ctx, cancel: cancel}
	// Seed the poisoning watermark so pre-existing counts (a reused
	// cache dir) don't flip readiness at startup.
	d.poisonedSeen = cfg.Engine.Stats().Cache.Poisoned
	for i := 0; i < cfg.Workers; i++ {
		d.wg.Add(1)
		go d.worker()
	}
	d.wg.Add(1)
	go d.sweeper()
	return d, nil
}

// Close stops the pump: workers finish the lease they hold, the sweep
// ticker exits. The queue and engine stay open (the caller owns them).
func (d *Durable) Close() {
	d.cancel()
	d.wg.Wait()
}

// Engine returns the underlying engine.
func (d *Durable) Engine() *Engine { return d.cfg.Engine }

// Queue returns the underlying queue.
func (d *Durable) Queue() *queue.Queue { return d.cfg.Queue }

// Enqueue validates, journals and admits one API request. Validation
// runs first so malformed requests are rejected before they cost a
// journal record; the returned job snapshot carries the durable ID the
// client polls. A full queue surfaces queue.ErrFull (the 429 path).
func (d *Durable) Enqueue(req JobRequest, requestID string) (queue.Job, error) {
	job, err := BuildJob(req)
	if err != nil {
		return queue.Job{}, err
	}
	key, err := job.Key()
	if err != nil {
		return queue.Job{}, err
	}
	payload, err := json.Marshal(envelope{Req: req, RequestID: requestID})
	if err != nil {
		return queue.Job{}, fmt.Errorf("engine: encoding job payload: %w", err)
	}
	return d.cfg.Queue.Enqueue(key.String(), payload)
}

// CachedOutcome serves a request straight from the engine's validated
// cache, bypassing the queue entirely — the degraded-mode path that
// keeps cached keys answerable while the worker pool is saturated or
// the queue is shedding.
func (d *Durable) CachedOutcome(ctx context.Context, req JobRequest) (*Outcome, bool) {
	job, err := BuildJob(req)
	if err != nil {
		return nil, false
	}
	return d.cfg.Engine.CachedOutcome(ctx, job)
}

// Saturated reports whether every engine worker slot is busy.
func (d *Durable) Saturated() bool { return d.cfg.Engine.Saturated() }

// Ready reports whether the service should accept new work, with a
// human-readable reason when it should not. Unready states: the queue
// is closed or crashed, the backlog has been above the high-water mark
// for longer than the grace period, or the cache reported poisoned
// entries within the grace window.
func (d *Durable) Ready() (bool, string) {
	if err := d.cfg.Queue.Err(); err != nil {
		return false, "queue unavailable: " + err.Error()
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.unreadyReason != "" {
		return false, d.unreadyReason
	}
	return true, ""
}

// worker is one pump goroutine: lease, process, settle, repeat.
func (d *Durable) worker() {
	defer d.wg.Done()
	for {
		j, ok, err := d.cfg.Queue.Lease()
		switch {
		case err != nil:
			// Closed or crashed queue: the pump has nothing left to do.
			d.cfg.Logger.Error("queue lease failed, pump stopping", "err", err)
			return
		case !ok:
			select {
			case <-d.ctx.Done():
				return
			case <-time.After(d.cfg.Poll):
			}
			continue
		}
		d.process(j)
		select {
		case <-d.ctx.Done():
			return
		default:
		}
	}
}

// process drives one leased job through the engine and settles it.
// Failure routing: payloads that no longer decode or build are
// deterministic failures and go straight to the dead letter (Kill);
// solve errors consume one attempt and retry with backoff (Fail);
// anything uncertified is refused — the queue must never store a result
// the certifier did not pass.
func (d *Durable) process(j queue.Job) {
	sp, ctx := obs.StartSpan(d.ctx, "queue.job")
	defer sp.End()
	sp.SetScope(j.ID)
	sp.Attr("id", j.ID)
	sp.Attr("attempt", fmt.Sprintf("%d", j.Attempts+1))

	var env envelope
	if err := json.Unmarshal(j.Payload, &env); err != nil {
		d.settleDead(sp, j, fmt.Errorf("engine: undecodable job payload: %w", err))
		return
	}
	if env.RequestID != "" {
		sp.Attr("request_id", env.RequestID)
	}
	job, err := BuildJob(env.Req)
	if err != nil {
		d.settleDead(sp, j, err)
		return
	}
	key, _ := job.Key()
	sp.Attr("key", key.Short())

	out, err := d.cfg.Engine.Do(ctx, job)
	switch {
	case err != nil && d.ctx.Err() != nil:
		// Shutdown cut the solve; leave the lease to expire so the next
		// process re-runs the job instead of burning its retry budget.
		sp.Fail(err)
	case err != nil:
		d.settleFail(sp, j, err)
	case out.Certificate == nil || !out.Certificate.Certified():
		d.settleFail(sp, j, fmt.Errorf("engine: job %s produced an uncertified result", j.ID))
	default:
		res, merr := json.Marshal(durableResult{
			Result:    out.Summary(),
			RuntimeMS: float64(out.Runtime.Microseconds()) / 1000,
		})
		if merr != nil {
			d.settleFail(sp, j, fmt.Errorf("engine: encoding result: %w", merr))
			return
		}
		if cerr := d.cfg.Queue.Complete(j.ID, j.Lease, res); cerr != nil {
			// A stale lease here means the job expired mid-solve and was
			// handed to someone else; the engine cache already holds the
			// result, so the retry collapses onto it.
			sp.Event("complete rejected: " + cerr.Error())
			d.cfg.Logger.Warn("completion rejected", "id", j.ID, "err", cerr)
			return
		}
		sp.Add("completed", 1)
		d.cfg.Logger.Info("job done", "id", j.ID, "key", key.Short(), "attempt", j.Attempts+1)
	}
}

func (d *Durable) settleFail(sp *obs.Span, j queue.Job, cause error) {
	sp.Fail(cause)
	if err := d.cfg.Queue.Fail(j.ID, j.Lease, cause); err != nil {
		sp.Event("fail rejected: " + err.Error())
	}
	d.cfg.Logger.Warn("job attempt failed", "id", j.ID, "attempt", j.Attempts+1, "err", cause)
}

func (d *Durable) settleDead(sp *obs.Span, j queue.Job, cause error) {
	sp.Fail(cause)
	if err := d.cfg.Queue.Kill(j.ID, j.Lease, cause); err != nil {
		sp.Event("kill rejected: " + err.Error())
	}
	d.cfg.Logger.Warn("job dead-lettered", "id", j.ID, "err", cause)
}

// sweeper periodically expires stale leases and re-evaluates the
// readiness conditions.
func (d *Durable) sweeper() {
	defer d.wg.Done()
	tick := time.NewTicker(d.cfg.Sweep)
	defer tick.Stop()
	for {
		select {
		case <-d.ctx.Done():
			return
		case <-tick.C:
		}
		if n, err := d.cfg.Queue.ExpireLeases(); err != nil {
			d.cfg.Logger.Error("lease sweep failed, pump stopping", "err", err)
			return
		} else if n > 0 {
			d.cfg.Logger.Warn("expired leases requeued", "count", n)
		}
		d.updateReadiness()
	}
}

// updateReadiness samples the overload and poisoning signals. Overload
// must persist across a full grace period before readiness flips, so a
// burst that drains quickly never takes the instance out of rotation.
func (d *Durable) updateReadiness() {
	now := time.Now()
	st := d.cfg.Queue.Stats()
	overloaded := st.Capacity > 0 && float64(st.Depth) >= d.cfg.OverloadHighWater*float64(st.Capacity)
	poisoned := d.cfg.Engine.Stats().Cache.Poisoned

	d.mu.Lock()
	defer d.mu.Unlock()
	if overloaded {
		if d.overloadSince.IsZero() {
			d.overloadSince = now
		}
	} else {
		d.overloadSince = time.Time{}
	}
	if poisoned > d.poisonedSeen {
		d.poisonedSeen = poisoned
		d.poisonedUntil = now.Add(d.cfg.OverloadGrace)
	}
	switch {
	case !d.overloadSince.IsZero() && now.Sub(d.overloadSince) >= d.cfg.OverloadGrace:
		d.unreadyReason = fmt.Sprintf("sustained overload: depth %d of capacity %d for %v",
			st.Depth, st.Capacity, now.Sub(d.overloadSince).Round(time.Millisecond))
	case now.Before(d.poisonedUntil):
		d.unreadyReason = "cache poisoning detected"
	default:
		d.unreadyReason = ""
	}
	d.cfg.Metrics.Set("relatch_serve_ready", boolGauge(d.unreadyReason == ""))
}

func boolGauge(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
