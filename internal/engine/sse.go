package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"relatch/internal/obs"
	"relatch/internal/queue"
)

// defaultHeartbeat is the idle interval between SSE heartbeat comments
// when ServerConfig.SSEHeartbeat is unset.
const defaultHeartbeat = 5 * time.Second

// spanStage maps pipeline span names to the coarse job stage an SSE
// consumer sees. Only the spans that mark a stage transition appear
// here; other spans pass through silently.
var spanStage = map[string]string{
	"core.retime": "solving",
	"vlib.retime": "solving",
	"cert.run":    "certifying",
}

// progressCounters whitelists the solver counters streamed as progress
// events — the iteration-count signals the retiming literature treats
// as the first-class cost measure.
var progressCounters = map[string]bool{
	"pivots":           true,
	"augmenting_paths": true,
}

// sseEvent is the JSON payload of one SSE data: line.
type sseEvent struct {
	Stage   string `json:"stage,omitempty"`
	Span    string `json:"span,omitempty"`
	Counter string `json:"counter,omitempty"`
	Delta   int64  `json:"delta,omitempty"`
	AtNS    int64  `json:"at_ns,omitempty"`
}

// handleEvents streams a job's live stage transitions and solver
// progress as Server-Sent Events: `event: stage` for lifecycle edges
// (queued → leased → solving → certifying → done/dead), `event:
// progress` for whitelisted solver counters, `event: dropped` when the
// ring overwrote history, and a final `event: end` after a terminal
// stage. The handler replays whatever the ring retains (honouring
// Last-Event-ID), then follows live until the job ends, the client
// disconnects, or the stream closes.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.cfg.Durable.Queue().Get(id); !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("engine: no job %q", id))
		return
	}
	if s.cfg.Stream == nil {
		httpError(w, http.StatusNotImplemented, fmt.Errorf("engine: event streaming disabled"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("engine: response writer cannot stream"))
		return
	}
	var after uint64
	if lei := r.Header.Get("Last-Event-ID"); lei != "" {
		after, _ = strconv.ParseUint(lei, 10, 64)
	}
	sub, err := s.cfg.Stream.Subscribe(after)
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, err)
		return
	}
	defer sub.Close()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	hb := s.cfg.SSEHeartbeat
	if hb <= 0 {
		hb = defaultHeartbeat
	}
	for {
		ev, err := s.nextEvent(r.Context(), sub, hb)
		switch {
		case errors.Is(err, obs.ErrLagged):
			writeSSE(w, fl, 0, "dropped", sseEvent{})
			continue
		case errors.Is(err, errHeartbeat):
			// Idle tick. If the job reached a terminal state but its
			// stage events already fell off the ring (or finished before
			// we subscribed to a pruned history), report the terminal
			// stage instead of heartbeating forever.
			if st, done := s.terminalStage(id); done {
				writeSSE(w, fl, 0, "stage", sseEvent{Stage: st})
				writeSSE(w, fl, 0, "end", sseEvent{Stage: st})
				return
			}
			fmt.Fprint(w, ": heartbeat\n\n")
			fl.Flush()
			continue
		case err != nil:
			// Client gone or stream closed — either way the show is over.
			return
		}
		if ev.Scope != id {
			continue
		}
		name, kind, ok := translateEvent(ev)
		if !ok {
			continue
		}
		out := sseEvent{AtNS: ev.AtNS}
		switch kind {
		case "stage":
			out.Stage = name
			if ev.Kind == "span_start" {
				out.Span = ev.Name
			}
		case "progress":
			out.Counter = name
			out.Delta = ev.Value
		}
		writeSSE(w, fl, ev.Seq, kind, out)
		if kind == "stage" && (name == "done" || name == "dead") {
			writeSSE(w, fl, 0, "end", sseEvent{Stage: name})
			return
		}
	}
}

// errHeartbeat is the internal signal that a Next wait idled out while
// the client is still connected.
var errHeartbeat = errors.New("heartbeat interval elapsed")

// nextEvent waits up to hb for the next stream event, distinguishing a
// heartbeat-interval idle (client still there) from a real disconnect.
func (s *Server) nextEvent(parent context.Context, sub *obs.Subscription, hb time.Duration) (obs.StreamEvent, error) {
	ctx, cancel := context.WithTimeout(parent, hb)
	defer cancel()
	ev, err := sub.Next(ctx)
	if errors.Is(err, context.DeadlineExceeded) && parent.Err() == nil {
		return obs.StreamEvent{}, errHeartbeat
	}
	return ev, err
}

// terminalStage reports whether the job has reached a terminal queue
// state, and which SSE stage name that maps to.
func (s *Server) terminalStage(id string) (string, bool) {
	j, ok := s.cfg.Durable.Queue().Get(id)
	if !ok {
		return "", false
	}
	switch j.State {
	case queue.StateDone:
		return "done", true
	case queue.StateDead:
		return "dead", true
	}
	return "", false
}

// translateEvent maps a raw stream event to its SSE event kind and
// payload name; ok is false for events the job feed does not surface.
func translateEvent(ev obs.StreamEvent) (name, kind string, ok bool) {
	switch ev.Kind {
	case "stage":
		return ev.Name, "stage", true
	case "span_start":
		if st, ok := spanStage[ev.Name]; ok {
			return st, "stage", true
		}
	case "counter":
		if progressCounters[ev.Name] {
			return ev.Name, "progress", true
		}
	}
	return "", "", false
}

// writeSSE emits one SSE frame: optional id line, event line, one data
// line, blank separator, flush.
func writeSSE(w http.ResponseWriter, fl http.Flusher, seq uint64, event string, payload sseEvent) {
	if seq > 0 {
		fmt.Fprintf(w, "id: %d\n", seq)
	}
	data, _ := json.Marshal(payload)
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	fl.Flush()
}
