// Package engine is the concurrent retiming job engine: it owns
// submission, scheduling, deduplication, caching and collection of
// retiming runs. Work is described as a Job — a cut circuit plus
// canonicalized options — whose SHA-256 content address makes identical
// work identifiable: concurrent submissions of the same key share one
// computation (singleflight), and completed results land in an LRU cache
// with an optional on-disk layer, so repeated sweeps run the flow solver
// zero times.
//
// The engine is the shared backend of three frontends: the experiments
// sweep (experiments.Config.Parallelism), the rar -bench-json mode
// (rar -j N) and the rar -serve HTTP API. All of them collect results in
// submission order, so parallel runs are row-identical to serial ones —
// the determinism contract the committed bench baseline relies on.
package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"relatch/internal/cell"
	"relatch/internal/core"
	"relatch/internal/netlist"
	"relatch/internal/vlib"
)

// Approach is the engine-level retiming approach token. It spans both
// the core approaches (grar, base) and the virtual-library variants
// (nvl, evl, rvl), because a sweep schedules all five as uniform jobs.
type Approach string

// The five approaches a job can request.
const (
	GRAR Approach = "grar"
	Base Approach = "base"
	NVL  Approach = "nvl"
	EVL  Approach = "evl"
	RVL  Approach = "rvl"
)

// ParseApproach maps a CLI/API token to an Approach. Display names
// (g-rar, nvl-rar, ...) are accepted alongside the short tokens.
func ParseApproach(s string) (Approach, error) {
	switch s {
	case "grar", "g-rar":
		return GRAR, nil
	case "base":
		return Base, nil
	case "nvl", "nvl-rar":
		return NVL, nil
	case "evl", "evl-rar":
		return EVL, nil
	case "rvl", "rvl-rar":
		return RVL, nil
	}
	return "", fmt.Errorf("engine: %w: unknown approach %q (want grar, base, nvl, evl or rvl)", ErrBadJob, s)
}

// IsVLib reports whether the approach runs the virtual-library flow.
func (a Approach) IsVLib() bool { return a == NVL || a == EVL || a == RVL }

// CoreApproach returns the core.Approach for a core-flow token.
func (a Approach) CoreApproach() core.Approach {
	if a == Base {
		return core.ApproachBase
	}
	return core.ApproachGRAR
}

// Variant returns the vlib.Variant for a virtual-library token.
func (a Approach) Variant() vlib.Variant {
	switch a {
	case EVL:
		return vlib.EVL
	case RVL:
		return vlib.RVL
	}
	return vlib.NVL
}

// Display returns the name the paper's tables use for the approach.
func (a Approach) Display() string {
	if a.IsVLib() {
		return a.Variant().String()
	}
	return a.CoreApproach().String()
}

// Job is one unit of retiming work: a cut circuit plus the options of a
// single approach run. Two jobs with equal content addresses (Key) are
// interchangeable — the engine computes one and serves both.
type Job struct {
	// Circuit is the cut cloud to retime. The engine never mutates it:
	// core runs solve a clone, the virtual-library flow clones
	// internally, and cache restores rebuild results onto fresh clones.
	Circuit *netlist.Circuit
	// Approach selects the flow (grar, base, nvl, evl, rvl).
	Approach Approach
	// Options carries the core run configuration. For virtual-library
	// approaches only Scheme, EDLCost and Method participate; the rest
	// is canonicalized away before hashing. StaOverride is rejected —
	// it cannot be content-addressed.
	Options core.Options
	// PostSwap and MaxSizingIter configure the virtual-library flow
	// (vlib.Options); both are canonicalized to zero for core runs.
	PostSwap      bool
	MaxSizingIter int
	// Timeout bounds this job's solve (0 = the engine default). It is
	// wall-clock policy, not work content, so it is not part of the key.
	Timeout time.Duration
}

// Key is the SHA-256 content address of a canonicalized job.
type Key [sha256.Size]byte

// String renders the key as lowercase hex.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Short returns the first 12 hex digits, for logs and span attributes.
func (k Key) Short() string { return k.String()[:12] }

// ParseKey parses the 64-hex rendering of a content address. The peer
// cache protocol uses it to validate keys arriving over the wire.
func ParseKey(s string) (Key, error) {
	raw, err := hex.DecodeString(s)
	if err != nil || len(raw) != sha256.Size {
		return Key{}, fmt.Errorf("engine: %w: malformed job key %q", ErrBadJob, s)
	}
	var k Key
	copy(k[:], raw)
	return k, nil
}

// canonical returns the job with approach-irrelevant fields zeroed, so
// option noise (a PostSwap flag on a grar job, a PivotLimit on an nvl
// job) cannot split the cache. It rejects jobs that cannot be
// content-addressed.
func (j Job) canonical() (Job, error) {
	if j.Circuit == nil {
		return Job{}, fmt.Errorf("engine: %w: job has no circuit", ErrBadJob)
	}
	if j.Circuit.Lib == nil {
		return Job{}, fmt.Errorf("engine: %w: job circuit %q has no library", ErrBadJob, j.Circuit.Name)
	}
	if _, err := ParseApproach(string(j.Approach)); err != nil {
		return Job{}, err
	}
	if j.Options.StaOverride != nil {
		return Job{}, fmt.Errorf("engine: %w: jobs with StaOverride cannot be content-addressed", ErrBadJob)
	}
	if j.Options.FixedDelays != nil {
		// The fixed-delay model exists for the worked example and tests;
		// its delay map is keyed by node ID, which the cache restore
		// path cannot re-derive. Keep such runs on the direct API.
		return Job{}, fmt.Errorf("engine: %w: fixed-delay jobs are not supported", ErrBadJob)
	}
	if err := j.Options.Scheme.Validate(); err != nil {
		return Job{}, err
	}
	if j.Approach.IsVLib() {
		j.Options.TimingModel = 0
		j.Options.PivotLimit = 0
	} else {
		j.PostSwap = false
		j.MaxSizingIter = 0
	}
	return j, nil
}

// Key computes the job's content address: SHA-256 over a canonical
// serialization of the netlist (nodes in ID order with names, kinds,
// cell bindings, flop indices and fanin IDs), the cell library
// fingerprint (every combinational cell's timing/area figures plus the
// flip-flop, base latch and EDL overhead) and the canonicalized options.
// Identical work — same structure, same library, same options — hashes
// identically regardless of how the circuit object was built.
func (j Job) Key() (Key, error) {
	c, err := j.canonical()
	if err != nil {
		return Key{}, err
	}
	h := sha256.New()
	fmt.Fprintf(h, "relatch-job/v1\n")
	fmt.Fprintf(h, "approach %s\n", c.Approach)
	hashFloats(h, "scheme", c.Options.Scheme.Phi1, c.Options.Scheme.Gamma1,
		c.Options.Scheme.Phi2, c.Options.Scheme.Gamma2)
	hashFloats(h, "edl", c.Options.EDLCost)
	fmt.Fprintf(h, "model %d\nmethod %d\npivot-limit %d\npostswap %t\nsizing-iter %d\n",
		int(c.Options.TimingModel), int(c.Options.Method), c.Options.PivotLimit,
		c.PostSwap, c.MaxSizingIter)
	hashLibrary(h, c.Circuit.Lib)
	hashCircuit(h, c.Circuit)
	var k Key
	h.Sum(k[:0])
	return k, nil
}

// hashFloats writes floats bit-exactly (no formatting round-trips).
func hashFloats(w io.Writer, label string, vs ...float64) {
	fmt.Fprintf(w, "%s", label)
	for _, v := range vs {
		fmt.Fprintf(w, " %016x", math.Float64bits(v))
	}
	fmt.Fprintf(w, "\n")
}

// hashLibrary fingerprints every figure of the library that can move a
// retiming result: cell delays and areas, the flip-flop, the base latch
// and the EDL overhead (the virtual latch variants are derived from the
// base latch and the overhead, so they are covered transitively).
func hashLibrary(w io.Writer, lib *cell.Library) {
	fmt.Fprintf(w, "lib %s\n", lib.Name)
	hashFloats(w, "edl-overhead", lib.EDLOverhead)
	hashFloats(w, "ff", lib.FF.Area, lib.FF.ClkToQ, lib.FF.Setup, lib.FF.Hold, lib.FF.InputCap)
	l := lib.BaseLatch
	hashFloats(w, "latch", l.Area, l.ClkToQ, l.DToQ, l.Setup, l.Hold, l.InputCap,
		l.Resistance, l.SlewBase, l.SlewPerLoad)
	funcs := lib.Functions()
	sort.Slice(funcs, func(i, j int) bool { return funcs[i] < funcs[j] })
	for _, f := range funcs {
		for _, d := range lib.Drives(f) {
			c, err := lib.Cell(f, d)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "cell %s\n", c.Name)
			hashFloats(w, "cell-scalars", c.Area, c.Resistance, c.SlewFactor,
				c.InputCap, c.MaxLoad, c.SlewBase, c.SlewPerLoad)
			hashFloats(w, "cell-rise", c.IntrinsicRise...)
			hashFloats(w, "cell-fall", c.IntrinsicFall...)
		}
	}
}

// hashCircuit serializes the cut cloud canonically: node count, then
// every node in ID order with its kind, name, flop index, cell binding
// and fanin IDs. Node IDs are assignment order, which the builder fixes,
// so structurally identical circuits serialize identically.
func hashCircuit(w io.Writer, c *netlist.Circuit) {
	fmt.Fprintf(w, "circuit %s %d\n", c.Name, len(c.Nodes))
	for _, n := range c.Nodes {
		cellName := "-"
		if n.Cell != nil {
			cellName = n.Cell.Name
		}
		fmt.Fprintf(w, "node %d %d %s %d %s", n.ID, int(n.Kind), n.Name, n.Flop, cellName)
		for _, f := range n.Fanin {
			fmt.Fprintf(w, " %d", f.ID)
		}
		fmt.Fprintf(w, "\n")
	}
}
