package engine

import (
	"context"
	"testing"
	"time"

	"relatch/internal/obs"
	"relatch/internal/queue"
)

func TestCollectorSamplesGauges(t *testing.T) {
	reg := obs.NewRegistry()
	eng := New(Config{Workers: 2, Cache: mustCache(t, 8, "")})
	defer eng.Close()
	q, err := queue.Open(queue.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if _, err := q.Enqueue("k1", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}

	coll, err := NewCollector(CollectorConfig{Engine: eng, Queue: q, Metrics: reg, Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()

	// The initial sample runs synchronously in NewCollector.
	if got := reg.Gauge("relatch_engine_workers"); got != 2 {
		t.Fatalf("relatch_engine_workers = %d, want 2", got)
	}
	if got := reg.Gauge("relatch_queue_depth"); got != 1 {
		t.Fatalf("relatch_queue_depth = %d, want 1", got)
	}
	if got := reg.Gauge("relatch_cache_entries"); got != 0 {
		t.Fatalf("relatch_cache_entries = %d, want 0", got)
	}

	// A state change shows up on a later tick.
	if _, err := q.Enqueue("k2", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for reg.Gauge("relatch_queue_depth") != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("collector never sampled queue depth 2 (got %d)", reg.Gauge("relatch_queue_depth"))
		}
		time.Sleep(2 * time.Millisecond)
	}
	coll.Close()
	coll.Close() // idempotent
	var nilColl *Collector
	nilColl.Close() // nil-safe
}

func TestCollectorRejectsBadConfig(t *testing.T) {
	if _, err := NewCollector(CollectorConfig{}); err == nil {
		t.Fatal("collector without engine/registry must refuse")
	}
	eng := New(Config{Workers: 1, SolveOverride: func(ctx context.Context, job Job) (*Outcome, error) {
		return nil, nil
	}})
	defer eng.Close()
	if _, err := NewCollector(CollectorConfig{Engine: eng}); err == nil {
		t.Fatal("collector without registry must refuse")
	}
}
