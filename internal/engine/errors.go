package engine

import "errors"

// Sentinels for the retiming job engine. Call sites wrap them with
// fmt.Errorf("engine: %w: ...", Err...) so the HTTP layer's status
// mapping, the durable pump's retry/dead classification and external
// callers all branch with errors.Is instead of string matching.
var (
	// ErrClosed: the engine (or a layer above it) has shut down; the
	// submission is not accepted and will never run.
	ErrClosed = errors.New("engine closed")
	// ErrBadJob: the job itself cannot run or cannot be
	// content-addressed (no circuit/library, unknown approach, options
	// the cache restore path cannot re-derive).
	ErrBadJob = errors.New("invalid job")
	// ErrBadRequest: an HTTP submission is malformed at the protocol
	// level (missing or conflicting inputs). Maps to 400.
	ErrBadRequest = errors.New("invalid request")
	// ErrBadConfig: a constructor was handed an unusable configuration
	// (missing engine/queue/durable layer).
	ErrBadConfig = errors.New("invalid engine config")
	// ErrCacheInvalid: a disk cache entry failed validation — schema or
	// key mismatch, claims diverging from re-derived results, references
	// to unknown nodes/cells. The cache layer treats it as poison and
	// recomputes; it never silently trusts such an entry.
	ErrCacheInvalid = errors.New("cache entry invalid")
)
