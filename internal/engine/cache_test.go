package engine

import (
	"context"
	"encoding/json"
	"os"
	"testing"

	"relatch/internal/obs"
)

func mustCache(t *testing.T, capacity int, dir string) *Cache {
	t.Helper()
	c, err := NewCache(capacity, dir)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestMemoryHitRunsNoSolver(t *testing.T) {
	cache := mustCache(t, 8, "")
	eng := New(Config{Workers: 2, Cache: cache})
	defer eng.Close()

	job := testJob(t, GRAR)
	cold, err := eng.Do(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHit {
		t.Fatal("first solve reported a cache hit")
	}

	// The acceptance check of the warm path: a second identical submit
	// must do zero flow-solver work — the per-request tracer would see
	// any simplex pivot or SSP augmentation the solve performed.
	tr := obs.New("warm")
	warm, err := eng.Do(obs.WithTracer(context.Background(), tr), job)
	if err != nil {
		t.Fatal(err)
	}
	tr.Finish()
	rep := tr.Report()
	if n := rep.Sum("flow.simplex", "pivots") + rep.Sum("flow.ssp", "augmenting_paths"); n != 0 {
		t.Errorf("warm hit ran the solver: %d pivots/augmentations", n)
	}
	if !warm.CacheHit || warm.CacheLayer != "memory" {
		t.Errorf("warm outcome: hit=%v layer=%q", warm.CacheHit, warm.CacheLayer)
	}
	if stripVolatile(warm.Summary()) != stripVolatile(cold.Summary()) {
		t.Errorf("cache hit changed the result:\n cold %+v\n warm %+v", cold.Summary(), warm.Summary())
	}
	st := cache.Stats()
	if st.Hits != 1 || st.Stores != 1 || st.Misses != 1 {
		t.Errorf("cache stats = %+v", st)
	}
}

func TestDiskRoundtripAcrossEngines(t *testing.T) {
	for _, ap := range []Approach{GRAR, Base, NVL, RVL} {
		t.Run(string(ap), func(t *testing.T) {
			dir := t.TempDir()
			job := testJob(t, ap)

			eng1 := New(Config{Workers: 1, Cache: mustCache(t, 8, dir)})
			cold, err := eng1.Do(context.Background(), job)
			eng1.Close()
			if err != nil {
				t.Fatal(err)
			}

			// A fresh engine with an empty memory layer must restore the
			// entry from disk, re-validate and re-certify it.
			eng2 := New(Config{Workers: 1, Cache: mustCache(t, 8, dir)})
			defer eng2.Close()
			warm, err := eng2.Do(context.Background(), job)
			if err != nil {
				t.Fatal(err)
			}
			if !warm.CacheHit || warm.CacheLayer != "disk" {
				t.Fatalf("warm outcome: hit=%v layer=%q", warm.CacheHit, warm.CacheLayer)
			}
			if !warm.Summary().Certified {
				t.Error("restored outcome lost its certificate")
			}
			if stripVolatile(warm.Summary()) != stripVolatile(cold.Summary()) {
				t.Errorf("disk restore changed the result:\n cold %+v\n warm %+v", cold.Summary(), warm.Summary())
			}
			if st := eng2.Stats().Cache; st.DiskHits != 1 || st.Poisoned != 0 {
				t.Errorf("cache stats = %+v", st)
			}
		})
	}
}

func TestPoisonedEntryRecomputedNotServed(t *testing.T) {
	dir := t.TempDir()
	job := testJob(t, GRAR)
	key := mustKey(t, job)

	eng1 := New(Config{Workers: 1, Cache: mustCache(t, 8, dir)})
	if _, err := eng1.Do(context.Background(), job); err != nil {
		t.Fatal(err)
	}
	eng1.Close()

	// Torn write: the entry is not even JSON.
	path := mustCache(t, 8, dir).EntryPath(key)
	if err := os.WriteFile(path, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	cache := mustCache(t, 8, dir)
	eng2 := New(Config{Workers: 1, Cache: cache})
	defer eng2.Close()
	out, err := eng2.Do(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if out.CacheHit {
		t.Error("poisoned entry was served as a cache hit")
	}
	if !out.Summary().Certified {
		t.Error("recomputed outcome not certified")
	}
	if st := cache.Stats(); st.Poisoned != 1 {
		t.Errorf("poisoned = %d, want 1", st.Poisoned)
	}
	// The recompute re-published a valid entry over the torn one.
	if _, err := cache.Probe(context.Background(), key, job); err != nil {
		t.Errorf("entry still bad after recompute: %v", err)
	}
}

func TestTamperedClaimsRejected(t *testing.T) {
	dir := t.TempDir()
	job := testJob(t, GRAR)
	key := mustKey(t, job)

	eng1 := New(Config{Workers: 1, Cache: mustCache(t, 8, dir)})
	if _, err := eng1.Do(context.Background(), job); err != nil {
		t.Fatal(err)
	}
	eng1.Close()

	// Well-formed JSON, wrong claim: the latch count lies. The restore
	// path re-derives the count from the placement and must notice.
	cache := mustCache(t, 8, dir)
	raw, err := os.ReadFile(cache.EntryPath(key))
	if err != nil {
		t.Fatal(err)
	}
	var e map[string]interface{}
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatal(err)
	}
	e["slaves"] = e["slaves"].(float64) + 1
	raw, err = json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cache.EntryPath(key), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := cache.Probe(context.Background(), key, job); err == nil {
		t.Fatal("tampered claim passed validation")
	}
	eng2 := New(Config{Workers: 1, Cache: cache})
	defer eng2.Close()
	out, err := eng2.Do(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if out.CacheHit {
		t.Error("tampered entry was served")
	}
	if st := cache.Stats(); st.Poisoned != 1 {
		t.Errorf("poisoned = %d, want 1", st.Poisoned)
	}
}

func TestLRUEviction(t *testing.T) {
	cache := mustCache(t, 2, "")
	var solves int
	eng := New(Config{
		Workers: 1,
		Cache:   cache,
		SolveOverride: func(ctx context.Context, job Job) (*Outcome, error) {
			solves++
			return &Outcome{Approach: job.Approach}, nil
		},
	})
	defer eng.Close()

	jobs := make([]Job, 3)
	for i := range jobs {
		jobs[i] = testJob(t, GRAR)
		jobs[i].Options.EDLCost = 1.0 + float64(i)
		if _, err := eng.Do(context.Background(), jobs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if st := cache.Stats(); st.Evictions != 1 || st.Stores != 3 {
		t.Fatalf("cache stats = %+v", st)
	}
	// The oldest key fell out: re-submitting it solves again; the newest
	// is still resident.
	if _, err := eng.Do(context.Background(), jobs[0]); err != nil {
		t.Fatal(err)
	}
	if solves != 4 {
		t.Errorf("evicted key not re-solved: %d solves", solves)
	}
	if _, err := eng.Do(context.Background(), jobs[2]); err != nil {
		t.Fatal(err)
	}
	if solves != 4 {
		t.Errorf("resident key re-solved: %d solves", solves)
	}
}

func TestProbeWithoutDiskLayer(t *testing.T) {
	cache := mustCache(t, 2, "")
	if cache.Dir() != "" || cache.EntryPath(Key{}) != "" {
		t.Error("memory-only cache claims a disk layer")
	}
	if _, err := cache.Probe(context.Background(), Key{}, testJob(t, GRAR)); err == nil {
		t.Error("Probe succeeded without a disk layer")
	}
}
