package engine

import (
	"encoding/json"
	"testing"
	"time"

	"relatch/internal/queue"
)

// waitSettled polls the queue until the job is done or dead.
func waitSettled(t *testing.T, q *queue.Queue, id string) queue.Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		j, ok := q.Get(id)
		if !ok {
			t.Fatalf("job %s vanished from the queue", id)
		}
		if j.State == queue.StateDone || j.State == queue.StateDead {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, j.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDurableRecoversJournaledJobs is the restart story end to end:
// jobs journaled by a previous process (no pump ever saw them) are
// picked up by a fresh durable layer and driven to a certified result.
func TestDurableRecoversJournaledJobs(t *testing.T) {
	dir := t.TempDir()
	req := JobRequest{Verilog: testSource, Approach: "grar"}

	// "First process": journal a submission, then die before working it.
	q1, err := queue.Open(queue.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	payload, err := json.Marshal(envelope{Req: req, RequestID: "restart-test"})
	if err != nil {
		t.Fatal(err)
	}
	job, err := BuildJob(req)
	if err != nil {
		t.Fatal(err)
	}
	key, err := job.Key()
	if err != nil {
		t.Fatal(err)
	}
	j, err := q1.Enqueue(key.String(), payload)
	if err != nil {
		t.Fatal(err)
	}
	q1.Close()

	// "Second process": same dir, a real engine behind the pump.
	q2, err := queue.Open(queue.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	eng := New(Config{Workers: 2, Cache: mustCache(t, 8, "")})
	defer eng.Close()
	d, err := NewDurable(DurableConfig{Engine: eng, Queue: q2, Poll: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	got := waitSettled(t, q2, j.ID)
	if got.State != queue.StateDone {
		t.Fatalf("recovered job ended %s (%s)", got.State, got.LastError)
	}
	var res durableResult
	if err := json.Unmarshal(got.Result, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Result.Certified || res.Result.Slaves <= 0 {
		t.Fatalf("recovered result not certified: %+v", res.Result)
	}
}

// TestDurableDuplicateDeliveryCollapses proves the at-least-once queue
// composes with the content-addressed engine into effectively-once
// work: two deliveries of the same request settle as two done jobs but
// only one solve happens.
func TestDurableDuplicateDeliveryCollapses(t *testing.T) {
	q, err := queue.Open(queue.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	eng := New(Config{Workers: 2, Cache: mustCache(t, 8, "")})
	defer eng.Close()
	d, err := NewDurable(DurableConfig{Engine: eng, Queue: q, Poll: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	req := JobRequest{Verilog: testSource, Approach: "grar"}
	j1, err := d.Enqueue(req, "dup-1")
	if err != nil {
		t.Fatal(err)
	}
	j2, err := d.Enqueue(req, "dup-2")
	if err != nil {
		t.Fatal(err)
	}
	if j1.Key != j2.Key {
		t.Fatalf("identical requests got different keys: %s vs %s", j1.Key, j2.Key)
	}
	for _, id := range []string{j1.ID, j2.ID} {
		if got := waitSettled(t, q, id); got.State != queue.StateDone {
			t.Fatalf("job %s ended %s (%s)", id, got.State, got.LastError)
		}
	}
	st := eng.Stats()
	collapsed := st.Deduplicated + st.Cache.Hits + st.Cache.DiskHits
	if st.Submitted != 2 || collapsed < 1 {
		t.Fatalf("duplicate delivery did not collapse: %+v", st)
	}
}

// TestDurableKillsUnbuildableJobs: a journaled payload that no longer
// decodes is a deterministic failure — it goes straight to the dead
// letter instead of burning retries.
func TestDurableKillsUnbuildableJobs(t *testing.T) {
	q, err := queue.Open(queue.Config{MaxAttempts: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	eng := New(Config{Workers: 1})
	defer eng.Close()
	d, err := NewDurable(DurableConfig{Engine: eng, Queue: q, Poll: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	j, err := q.Enqueue("bogus-key", []byte(`{"req":{"approach":"warp"}}`))
	if err != nil {
		t.Fatal(err)
	}
	got := waitSettled(t, q, j.ID)
	if got.State != queue.StateDead || got.Attempts != 1 {
		t.Fatalf("unbuildable job = %+v", got)
	}
}
