package engine

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestSingleflightDeduplicates(t *testing.T) {
	release := make(chan struct{})
	var solves atomic.Int64
	eng := New(Config{
		Workers: 4,
		SolveOverride: func(ctx context.Context, job Job) (*Outcome, error) {
			solves.Add(1)
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return &Outcome{Approach: job.Approach}, nil
		},
	})
	defer eng.Close()

	job := testJob(t, GRAR)
	const n = 8
	tickets := make([]*Ticket, n)
	for i := range tickets {
		tk, err := eng.Submit(context.Background(), job)
		if err != nil {
			t.Fatal(err)
		}
		tickets[i] = tk
	}
	for _, tk := range tickets[1:] {
		if tk.Key != tickets[0].Key {
			t.Fatal("identical jobs got different keys")
		}
	}
	// Hold the leader until every other submission has joined it, so the
	// dedup path is exercised deterministically.
	waitFor(t, "followers to join", func() bool { return eng.Stats().Deduplicated == n-1 })
	close(release)

	shared := 0
	for _, tk := range tickets {
		out, err := tk.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if out.Shared {
			shared++
		}
	}
	if got := solves.Load(); got != 1 {
		t.Errorf("%d solves for %d identical submissions, want 1", got, n)
	}
	if shared != n-1 {
		t.Errorf("%d shared outcomes, want %d", shared, n-1)
	}
	st := eng.Stats()
	if st.Submitted != n || st.Completed != n || st.Failed != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestWorkerPanicBecomesJobError(t *testing.T) {
	var calls atomic.Int64
	eng := New(Config{
		Workers: 1,
		SolveOverride: func(ctx context.Context, job Job) (*Outcome, error) {
			if calls.Add(1) == 1 {
				panic("solver exploded")
			}
			return &Outcome{Approach: job.Approach}, nil
		},
	})
	defer eng.Close()

	_, err := eng.Do(context.Background(), testJob(t, GRAR))
	if err == nil || !strings.Contains(err.Error(), "panicked") || !strings.Contains(err.Error(), "solver exploded") {
		t.Fatalf("panic surfaced as %v", err)
	}
	if st := eng.Stats(); st.Failed != 1 {
		t.Errorf("failed = %d, want 1", st.Failed)
	}
	// The worker survived: the engine keeps serving after a panic.
	if _, err := eng.Do(context.Background(), testJob(t, GRAR)); err != nil {
		t.Fatalf("engine dead after panic: %v", err)
	}
}

func TestJobTimeoutBoundsSolve(t *testing.T) {
	block := func(ctx context.Context, job Job) (*Outcome, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	eng := New(Config{Workers: 1, JobTimeout: 20 * time.Millisecond, SolveOverride: block})
	defer eng.Close()

	if _, err := eng.Do(context.Background(), testJob(t, GRAR)); !IsClosed(err) {
		t.Fatalf("engine-default timeout: got %v", err)
	}
	// A per-job timeout overrides the engine default.
	job := testJob(t, Base)
	job.Timeout = 10 * time.Millisecond
	start := time.Now()
	if _, err := eng.Do(context.Background(), job); !IsClosed(err) {
		t.Fatalf("per-job timeout: got %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("per-job timeout did not bound the solve")
	}
}

func TestCloseCancelsQueuedJobs(t *testing.T) {
	started := make(chan struct{}, 8)
	eng := New(Config{
		Workers: 1,
		SolveOverride: func(ctx context.Context, job Job) (*Outcome, error) {
			started <- struct{}{}
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})

	costs := []float64{1.0, 1.5, 2.0}
	tickets := make([]*Ticket, 0, len(costs))
	for _, c := range costs {
		job := testJob(t, GRAR)
		job.Options.EDLCost = c // three distinct keys, one worker slot
		tk, err := eng.Submit(context.Background(), job)
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	<-started // one job running, two queued on the semaphore
	eng.Close()

	for i, tk := range tickets {
		if _, err := tk.Wait(context.Background()); !IsClosed(err) {
			t.Errorf("ticket %d: close surfaced as %v", i, err)
		}
	}
	if _, err := eng.Submit(context.Background(), testJob(t, GRAR)); err == nil {
		t.Error("submission accepted after Close")
	}
}

func TestSubmitRejectsBadJobs(t *testing.T) {
	eng := New(Config{Workers: 1})
	defer eng.Close()
	if _, err := eng.Submit(context.Background(), Job{Approach: GRAR}); err == nil {
		t.Error("nil-circuit job accepted")
	}
	if _, ok := eng.Get("job-000001"); ok {
		t.Error("rejected job left a ticket behind")
	}
}

func TestStressManyJobsFewKeys(t *testing.T) {
	// 200 submissions over 20 keys on 8 workers, with a memory cache:
	// singleflight covers concurrent duplicates, the cache covers later
	// ones, so each key is solved exactly once. Run under -race this is
	// the engine's concurrency soak.
	cache, err := NewCache(64, "")
	if err != nil {
		t.Fatal(err)
	}
	var solves atomic.Int64
	eng := New(Config{
		Workers: 8,
		Cache:   cache,
		SolveOverride: func(ctx context.Context, job Job) (*Outcome, error) {
			solves.Add(1)
			return &Outcome{Approach: job.Approach}, nil
		},
	})
	defer eng.Close()

	const jobs, keys = 200, 20
	base := testJob(t, GRAR)
	tickets := make([]*Ticket, 0, jobs)
	for i := 0; i < jobs; i++ {
		job := base
		job.Options.EDLCost = 1.0 + float64(i%keys)/100
		tk, err := eng.Submit(context.Background(), job)
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	for _, tk := range tickets {
		if _, err := tk.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if got := solves.Load(); got != keys {
		t.Errorf("%d solves for %d distinct keys", got, keys)
	}
	st := eng.Stats()
	if st.Completed != jobs {
		t.Errorf("completed = %d, want %d", st.Completed, jobs)
	}
	if st.Deduplicated+st.Cache.Hits != jobs-keys {
		t.Errorf("dedup %d + cache hits %d ≠ %d duplicates", st.Deduplicated, st.Cache.Hits, jobs-keys)
	}
	if len(eng.Tickets()) != jobs {
		t.Errorf("ticket ledger has %d entries, want %d", len(eng.Tickets()), jobs)
	}
}

func TestSolveAllApproaches(t *testing.T) {
	eng := New(Config{Workers: 2})
	defer eng.Close()
	for _, ap := range []Approach{GRAR, Base, NVL, EVL, RVL} {
		out, err := eng.Do(context.Background(), testJob(t, ap))
		if err != nil {
			t.Fatalf("%s: %v", ap, err)
		}
		sum := out.Summary()
		if !sum.Certified {
			t.Errorf("%s: outcome not certified", ap)
		}
		if sum.Slaves <= 0 || sum.TotalArea <= 0 {
			t.Errorf("%s: degenerate summary %+v", ap, sum)
		}
		if ap.IsVLib() == (out.Core != nil) || ap.IsVLib() != (out.VLib != nil) {
			t.Errorf("%s: wrong result kind", ap)
		}
	}
}

// stripVolatile zeroes the fields that legitimately vary between
// otherwise identical runs (provenance, not work content).
func stripVolatile(s Summary) Summary {
	s.CacheHit = false
	s.CacheLayer = ""
	return s
}

func TestParallelMatchesSerial(t *testing.T) {
	approaches := []Approach{GRAR, Base, NVL, EVL, RVL}
	sweep := func(workers int) []Summary {
		eng := New(Config{Workers: workers})
		defer eng.Close()
		tickets := make([]*Ticket, 0, 2*len(approaches))
		for _, cost := range []float64{1.0, 2.0} {
			for _, ap := range approaches {
				job := testJob(t, ap)
				job.Options.EDLCost = cost
				tk, err := eng.Submit(context.Background(), job)
				if err != nil {
					t.Fatal(err)
				}
				tickets = append(tickets, tk)
			}
		}
		out := make([]Summary, 0, len(tickets))
		for _, tk := range tickets {
			o, err := tk.Wait(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, stripVolatile(o.Summary()))
		}
		return out
	}

	serial := sweep(1)
	parallel := sweep(8)
	if len(serial) != len(parallel) {
		t.Fatalf("row counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("row %d differs:\n serial  %+v\n parallel %+v", i, serial[i], parallel[i])
		}
	}
}
