package engine

import (
	"testing"
	"time"

	"relatch/internal/bench"
	"relatch/internal/cell"
	"relatch/internal/clocking"
	"relatch/internal/core"
	"relatch/internal/netlist"
	"relatch/internal/sta"
	"relatch/internal/verilog"
)

// testSource is a small retimable module shared by the engine tests.
const testSource = `
module m(a, b, y);
input a, b;
output y;
wire w1, w2;
dff r1(clk, w1, a);
nand g1(w2, w1, b);
nand g2(y, w2, w1);
endmodule
`

// testCircuit parses and cuts testSource with a calibrated scheme.
func testCircuit(t *testing.T, lib *cell.Library) (*netlist.Circuit, clocking.Scheme) {
	t.Helper()
	sc, err := verilog.ParseString(testSource, lib)
	if err != nil {
		t.Fatal(err)
	}
	c, err := sc.Cut()
	if err != nil {
		t.Fatal(err)
	}
	return c, bench.SchemeFor(c, sta.DefaultOptions(lib))
}

// testJob builds a solvable job for the approach; every call re-parses
// the source, so two jobs never share a circuit object.
func testJob(t *testing.T, ap Approach) Job {
	t.Helper()
	lib := cell.Default(1.0)
	c, scheme := testCircuit(t, lib)
	return Job{
		Circuit:  c,
		Approach: ap,
		Options:  core.Options{Scheme: scheme, EDLCost: 1.0},
		PostSwap: ap.IsVLib(),
	}
}

func mustKey(t *testing.T, j Job) Key {
	t.Helper()
	k, err := j.Key()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestKeyStableAcrossBuilds(t *testing.T) {
	// Two independently parsed copies of the same source must hash
	// identically: the key addresses work content, not object identity.
	k1 := mustKey(t, testJob(t, GRAR))
	k2 := mustKey(t, testJob(t, GRAR))
	if k1 != k2 {
		t.Errorf("identical jobs hash differently: %s vs %s", k1, k2)
	}
	if len(k1.String()) != 64 || k1.Short() != k1.String()[:12] {
		t.Errorf("bad key rendering: %q / %q", k1.String(), k1.Short())
	}
}

func TestKeyDistinguishesWork(t *testing.T) {
	base := testJob(t, GRAR)
	seen := map[Key]string{mustKey(t, base): "base"}
	record := func(name string, j Job) {
		k := mustKey(t, j)
		if prev, ok := seen[k]; ok {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[k] = name
	}

	other := testJob(t, Base)
	record("approach base", other)
	for _, ap := range []Approach{NVL, EVL, RVL} {
		record("approach "+string(ap), testJob(t, ap))
	}

	cost := testJob(t, GRAR)
	cost.Options.EDLCost = 2.0
	record("edl cost 2.0", cost)

	scheme := testJob(t, GRAR)
	scheme.Options.Scheme.Phi1 *= 1.5
	record("wider phi1", scheme)

	gate := testJob(t, GRAR)
	gate.Options.TimingModel = sta.ModelGate
	record("gate model", gate)

	renamed := testJob(t, GRAR)
	renamed.Circuit.Name = "m2"
	record("renamed circuit", renamed)

	resized := testJob(t, GRAR)
	for _, n := range resized.Circuit.Nodes {
		if n.Kind == netlist.KindGate {
			up := resized.Circuit.Lib.Upsize(n.Cell)
			if up == nil {
				t.Fatalf("no upsize for %s", n.Cell.Name)
			}
			n.Cell = up
			break
		}
	}
	record("resized gate", resized)
}

func TestKeyCanonicalizesIrrelevantOptions(t *testing.T) {
	// Fields the approach never reads must not split the cache.
	plain := mustKey(t, testJob(t, GRAR))
	noisy := testJob(t, GRAR)
	noisy.PostSwap = true
	noisy.MaxSizingIter = 7
	noisy.Timeout = 3 * time.Second
	if k := mustKey(t, noisy); k != plain {
		t.Error("vlib-only fields leaked into a core job's key")
	}

	vplain := mustKey(t, testJob(t, NVL))
	vnoisy := testJob(t, NVL)
	vnoisy.Options.PivotLimit = 9
	vnoisy.Options.TimingModel = sta.ModelGate
	if k := mustKey(t, vnoisy); k != vplain {
		t.Error("core-only fields leaked into a vlib job's key")
	}
	// But vlib-relevant knobs do count.
	vswap := testJob(t, NVL)
	vswap.PostSwap = false
	if k := mustKey(t, vswap); k == vplain {
		t.Error("PostSwap ignored in a vlib job's key")
	}
}

func TestKeyRejectsUnaddressableJobs(t *testing.T) {
	lib := cell.Default(1.0)
	c, scheme := testCircuit(t, lib)
	good := core.Options{Scheme: scheme, EDLCost: 1.0}

	cases := map[string]Job{
		"nil circuit":  {Approach: GRAR, Options: good},
		"bad approach": {Circuit: c, Approach: "frob", Options: good},
		"sta override": {Circuit: c, Approach: GRAR, Options: func() core.Options {
			o := good
			opt := sta.DefaultOptions(lib)
			o.StaOverride = &opt
			return o
		}()},
		"fixed delays": {Circuit: c, Approach: GRAR, Options: func() core.Options {
			o := good
			o.FixedDelays = map[int]float64{0: 1}
			return o
		}()},
		"zero scheme": {Circuit: c, Approach: GRAR, Options: core.Options{EDLCost: 1.0}},
	}
	for name, job := range cases {
		if _, err := job.Key(); err == nil {
			t.Errorf("%s: key computed for an unaddressable job", name)
		}
	}
	nolib := c.Clone()
	nolib.Lib = nil
	if _, err := (Job{Circuit: nolib, Approach: GRAR, Options: good}).Key(); err == nil {
		t.Error("library-less circuit accepted")
	}
}

func TestParseApproach(t *testing.T) {
	for tok, want := range map[string]Approach{
		"grar": GRAR, "g-rar": GRAR,
		"base": Base,
		"nvl":  NVL, "nvl-rar": NVL,
		"evl": EVL, "evl-rar": EVL,
		"rvl": RVL, "rvl-rar": RVL,
	} {
		got, err := ParseApproach(tok)
		if err != nil || got != want {
			t.Errorf("ParseApproach(%q) = %v, %v", tok, got, err)
		}
	}
	if _, err := ParseApproach("gRAR"); err == nil {
		t.Error("case-mangled token accepted")
	}
	for ap, disp := range map[Approach]string{
		GRAR: "g-rar", Base: "base", NVL: "nvl-rar", EVL: "evl-rar", RVL: "rvl-rar",
	} {
		if got := ap.Display(); got != disp {
			t.Errorf("%s.Display() = %q, want %q", ap, got, disp)
		}
	}
}
