package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"time"

	"relatch/internal/bench"
	"relatch/internal/cell"
	"relatch/internal/clocking"
	"relatch/internal/flow"
	"relatch/internal/netlist"
	"relatch/internal/obs"
	"relatch/internal/sta"
	"relatch/internal/verilog"
)

// ServerConfig configures the HTTP frontend.
type ServerConfig struct {
	// Engine executes the submitted jobs. Required. The server does not
	// own its lifecycle: the caller closes it after shutdown.
	Engine *Engine
	// Tracer, when non-nil, backs /metrics and is attached to every
	// submitted job's context.
	Tracer *obs.Tracer
	// Logger receives request/submission logs (nil = discard).
	Logger *slog.Logger
	// RequestTimeout bounds each HTTP handler (0 = no limit). Jobs are
	// asynchronous, so this only cuts slow clients, not running solves.
	RequestTimeout time.Duration
}

// Server is the rar -serve HTTP frontend: POST /jobs submits a netlist
// plus options, GET /jobs/{id} polls status and result, GET /metrics
// serves the obs counters in Prometheus text format.
type Server struct {
	cfg ServerConfig
	// jobCtx parents every submission, so jobs survive their submitting
	// request and die with the engine, not with the connection.
	jobCtx context.Context
}

// NewServer builds the HTTP frontend over an engine.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("engine: server needs an engine")
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.DiscardLogger()
	}
	return &Server{cfg: cfg, jobCtx: obs.WithTracer(context.Background(), cfg.Tracer)}, nil
}

// Handler returns the route table, wrapped in the request timeout.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	if s.cfg.RequestTimeout <= 0 {
		return mux
	}
	return http.TimeoutHandler(mux, s.cfg.RequestTimeout, "request timed out\n")
}

// ListenAndServe serves on addr until ctx is cancelled, then shuts down
// gracefully (in-flight requests get a drain window). A clean shutdown
// returns nil, so a SIGINT-driven exit reports success.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	srv := &http.Server{Addr: addr, Handler: s.Handler()}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("engine: serve: %w", err)
	}
	s.cfg.Logger.Info("serving", "addr", ln.Addr().String())
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return fmt.Errorf("engine: serve: %w", err)
	case <-ctx.Done():
	}
	s.cfg.Logger.Info("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("engine: shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("engine: serve: %w", err)
	}
	return nil
}

// jobRequest is the POST /jobs payload. Exactly one of Bench (an
// ISCAS'89 profile name) or Verilog (inline structural source) selects
// the circuit.
type jobRequest struct {
	Bench   string `json:"bench,omitempty"`
	Verilog string `json:"verilog,omitempty"`

	Approach string `json:"approach"`
	// C is the error-detecting overhead factor (default 1.0).
	C          *float64 `json:"c,omitempty"`
	Method     string   `json:"method,omitempty"`
	GateModel  bool     `json:"gate_model,omitempty"`
	PivotLimit int      `json:"pivot_limit,omitempty"`
	TimeoutMS  int      `json:"timeout_ms,omitempty"`
}

// jobStatus is the JSON shape of a submitted job, for POST and GET.
type jobStatus struct {
	ID        string   `json:"id"`
	Key       string   `json:"key"`
	Status    string   `json:"status"`
	Error     string   `json:"error,omitempty"`
	Result    *Summary `json:"result,omitempty"`
	RuntimeMS float64  `json:"runtime_ms,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("engine: bad request: %w", err))
		return
	}
	job, err := s.buildJob(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	t, err := s.cfg.Engine.Submit(s.jobCtx, job)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.cfg.Logger.Info("job submitted", "id", t.ID, "key", t.Key.Short(),
		"approach", string(job.Approach), "circuit", job.Circuit.Name)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	writeStatus(w, t)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	t, ok := s.cfg.Engine.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("engine: no job %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeStatus(w, t)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	tickets := s.cfg.Engine.Tickets()
	out := make([]jobStatus, 0, len(tickets))
	for _, t := range tickets {
		out = append(out, statusOf(t))
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.cfg.Tracer.Report().WriteMetrics(w)
	st := s.cfg.Engine.Stats()
	fmt.Fprintf(w, "relatch_engine_jobs_total{outcome=\"completed\"} %d\n", st.Completed)
	fmt.Fprintf(w, "relatch_engine_jobs_total{outcome=\"failed\"} %d\n", st.Failed)
	fmt.Fprintf(w, "relatch_engine_submitted_total %d\n", st.Submitted)
	fmt.Fprintf(w, "relatch_engine_deduplicated_total %d\n", st.Deduplicated)
	fmt.Fprintf(w, "relatch_engine_cache_total{event=\"hit\"} %d\n", st.Cache.Hits)
	fmt.Fprintf(w, "relatch_engine_cache_total{event=\"disk_hit\"} %d\n", st.Cache.DiskHits)
	fmt.Fprintf(w, "relatch_engine_cache_total{event=\"miss\"} %d\n", st.Cache.Misses)
	fmt.Fprintf(w, "relatch_engine_cache_total{event=\"stored\"} %d\n", st.Cache.Stores)
	fmt.Fprintf(w, "relatch_engine_cache_total{event=\"evicted\"} %d\n", st.Cache.Evictions)
	fmt.Fprintf(w, "relatch_engine_cache_total{event=\"poisoned\"} %d\n", st.Cache.Poisoned)
}

// buildJob turns an API request into an engine job: build the circuit,
// derive its clocking, and carry the options over.
func (s *Server) buildJob(req jobRequest) (Job, error) {
	ap, err := ParseApproach(req.Approach)
	if err != nil {
		return Job{}, err
	}
	method, err := flow.ParseMethod(req.Method)
	if err != nil {
		return Job{}, err
	}
	overhead := 1.0
	if req.C != nil {
		overhead = *req.C
	}
	lib := cell.Default(overhead)
	var (
		c      *netlist.Circuit
		scheme clocking.Scheme
	)
	switch {
	case req.Bench != "" && req.Verilog != "":
		return Job{}, fmt.Errorf("engine: request has both bench and verilog")
	case req.Bench != "":
		prof, ok := bench.ProfileByName(req.Bench)
		if !ok {
			return Job{}, fmt.Errorf("engine: unknown benchmark %q", req.Bench)
		}
		seq, err := prof.BuildSeq(lib)
		if err != nil {
			return Job{}, err
		}
		c, scheme, err = prof.CutAndCalibrate(seq)
		if err != nil {
			return Job{}, err
		}
	case req.Verilog != "":
		sc, err := verilog.ParseString(req.Verilog, lib)
		if err != nil {
			return Job{}, err
		}
		c, err = sc.Cut()
		if err != nil {
			return Job{}, err
		}
		scheme = bench.SchemeFor(c, sta.DefaultOptions(lib))
	default:
		return Job{}, fmt.Errorf("engine: request needs bench or verilog")
	}
	job := Job{
		Circuit:  c,
		Approach: ap,
		PostSwap: ap.IsVLib(),
		Timeout:  time.Duration(req.TimeoutMS) * time.Millisecond,
	}
	job.Options.Scheme = scheme
	job.Options.EDLCost = overhead
	job.Options.Method = method
	job.Options.PivotLimit = req.PivotLimit
	if req.GateModel {
		job.Options.TimingModel = sta.ModelGate
	}
	return job, nil
}

func writeStatus(w http.ResponseWriter, t *Ticket) {
	json.NewEncoder(w).Encode(statusOf(t))
}

func statusOf(t *Ticket) jobStatus {
	state, _, _, _ := t.Status()
	js := jobStatus{ID: t.ID, Key: t.Key.String(), Status: state.String()}
	if err := t.Err(); err != nil {
		js.Error = err.Error()
	}
	if out := t.Outcome(); out != nil {
		sum := out.Summary()
		js.Result = &sum
		js.RuntimeMS = float64(out.Runtime.Microseconds()) / 1000
	}
	return js
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
