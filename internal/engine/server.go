package engine

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"relatch/internal/bench"
	"relatch/internal/cell"
	"relatch/internal/clocking"
	"relatch/internal/cluster"
	"relatch/internal/flow"
	"relatch/internal/netlist"
	"relatch/internal/obs"
	"relatch/internal/queue"
	"relatch/internal/sta"
	"relatch/internal/verilog"
)

// maxSubmitBody bounds a POST /jobs payload; inline Verilog sources are
// at most a few hundred kilobytes, so 8 MiB is generous.
const maxSubmitBody = 8 << 20

// maxForwarded bounds the forwarded-job table: the FIFO of job IDs this
// node routed to peers so later polls can be proxied. Aged-out IDs
// answer 404 like any unknown job — the owner still has the record.
const maxForwarded = 4096

// ServerConfig configures the HTTP frontend.
type ServerConfig struct {
	// Durable is the queue-backed execution layer behind every route.
	// Required. The server does not own its lifecycle: the caller closes
	// it (then the queue, then the engine) after shutdown.
	Durable *Durable
	// Tracer, when non-nil, backs /metrics and is attached to every
	// submitted job's context.
	Tracer *obs.Tracer
	// Metrics, when non-nil, is rendered into /metrics alongside the
	// tracer report (the queue's transition counters live here).
	Metrics *obs.Registry
	// Logger receives request/submission logs (nil = discard).
	Logger *slog.Logger
	// RequestTimeout bounds each HTTP handler (0 = no limit). Jobs are
	// asynchronous, so this only cuts slow clients, not running solves.
	// The SSE events route is exempt: it is long-lived by design and
	// bounded by client disconnect and stream close instead.
	RequestTimeout time.Duration
	// Stream, when non-nil, feeds GET /jobs/{id}/events: the live
	// span/stage event stream the queue and tracer publish into. Without
	// it the events route answers 501.
	Stream *obs.Stream
	// SSEHeartbeat is the idle interval between `: heartbeat` comment
	// lines on an events stream (0 = defaultHeartbeat). Heartbeats keep
	// proxies from idling out the connection and bound how long a
	// handler lingers after the client vanishes.
	SSEHeartbeat time.Duration
	// Cluster, when non-nil, makes this node one shard of a multi-node
	// deployment: submissions for keys another node owns are forwarded
	// there, the internal peer routes (/internal/v1/...) are mounted,
	// and the cache gains the peer tier. Peer answers are trusted for
	// routing only — cached claims always pass local revalidation.
	Cluster *cluster.Node
	// Auth, when non-nil, gates the public API behind per-client bearer
	// tokens with rate limits and quotas. Health, readiness, metrics and
	// the internal peer routes stay open: the first three feed probes
	// and scrapers, and peers authenticate nothing because the trust
	// model never believes their payloads anyway.
	Auth *cluster.Auth
}

// Server is the rar -serve HTTP frontend: POST /jobs journals and
// admits a job (202, or 200 straight from cache in degraded mode, or
// 429 + Retry-After when shedding), GET /jobs/{id} polls status with
// attempt/retry detail, GET /jobs?state= filters the queue (including
// the dead letter), /healthz is liveness, /readyz is readiness, and
// GET /metrics serves the obs counters in Prometheus text format.
// Every response carries an X-Request-Id.
type Server struct {
	cfg ServerConfig

	mu        sync.Mutex
	forwarded map[string]string // guarded by mu (job ID → owning peer ID)
	fifo      []string          // guarded by mu (insertion order, bounds forwarded)
}

// NewServer builds the HTTP frontend over a durable layer.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Durable == nil {
		return nil, fmt.Errorf("engine: %w: server needs a durable layer", ErrBadConfig)
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.DiscardLogger()
	}
	return &Server{cfg: cfg}, nil
}

// ctxKey keys the request ID in a request context.
type ctxKey int

const requestIDKey ctxKey = 0

// requestID returns the request's ID, assigned by the middleware.
func requestID(r *http.Request) string {
	id, _ := r.Context().Value(requestIDKey).(string)
	return id
}

// withRequestID honours an incoming X-Request-Id or mints one, sets it
// on the response, and threads it through the request context so job
// submissions can journal it.
func withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			var buf [8]byte
			rand.Read(buf[:])
			id = hex.EncodeToString(buf[:])
		}
		w.Header().Set("X-Request-Id", id)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), requestIDKey, id)))
	})
}

// Handler returns the route table, wrapped in the request-ID middleware
// and the request timeout. The SSE events route mounts outside the
// timeout wrapper: http.TimeoutHandler buffers the response and does
// not implement http.Flusher, which would break streaming.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.withAuth(s.handleSubmit))
	mux.HandleFunc("GET /jobs", s.withAuth(s.handleList))
	mux.HandleFunc("GET /jobs/{id}", s.withAuth(s.handleStatus))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		// Liveness: the process is up and serving HTTP. Nothing else —
		// an overloaded instance is alive, just not ready.
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	if s.cfg.Cluster != nil {
		// The peer protocol: forwarded submissions run locally (never
		// re-forwarded — no routing loops), status polls answer from the
		// local queue only, and the cache route serves raw claim blobs
		// the fetching peer revalidates itself.
		mux.HandleFunc("POST /internal/v1/jobs", s.handleInternalSubmit)
		mux.HandleFunc("GET /internal/v1/jobs/{id}", s.handleInternalStatus)
		mux.HandleFunc("GET /internal/v1/cache/{key}", s.handleCacheEntry)
	}
	var timed http.Handler = mux
	if s.cfg.RequestTimeout > 0 {
		timed = http.TimeoutHandler(mux, s.cfg.RequestTimeout, "request timed out\n")
	}
	outer := http.NewServeMux()
	outer.HandleFunc("GET /jobs/{id}/events", s.withAuth(s.handleEvents))
	outer.Handle("/", timed)
	return withRequestID(outer)
}

// withAuth gates a public route behind the bearer-token policy layer.
// Without an Auth config every request passes — single-node deployments
// keep their open API.
func (s *Server) withAuth(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		a := s.cfg.Auth
		if a == nil {
			next(w, r)
			return
		}
		token := strings.TrimPrefix(r.Header.Get("Authorization"), "Bearer ")
		client, err := a.Admit(token, time.Now())
		switch {
		case errors.Is(err, cluster.ErrUnauthorized):
			w.Header().Set("WWW-Authenticate", `Bearer realm="relatch"`)
			httpError(w, http.StatusUnauthorized, err)
			return
		case errors.Is(err, cluster.ErrRateLimited), errors.Is(err, cluster.ErrQuotaExhausted):
			// Both are 429; quota exhaustion just has a much longer
			// retry horizon, which the body spells out.
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, err)
			return
		case err != nil:
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		s.cfg.Logger.Debug("admitted", "client", client, "request_id", requestID(r))
		next(w, r)
	}
}

// ListenAndServe serves on addr until ctx is cancelled, then shuts down
// gracefully (in-flight requests get a drain window). A clean shutdown
// returns nil, so a SIGINT-driven exit reports success.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	srv := &http.Server{Addr: addr, Handler: s.Handler()}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("engine: serve: %w", err)
	}
	s.cfg.Logger.Info("serving", "addr", ln.Addr().String())
	// The buffer is load-bearing (relint chandisc bug class): when ctx
	// wins the select below, nobody is receiving — an unbuffered send
	// from the Serve goroutine would leak it until the final drain.
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return fmt.Errorf("engine: serve: %w", err)
	case <-ctx.Done():
	}
	s.cfg.Logger.Info("shutting down")
	// Close the event stream first: SSE handlers block in Next and would
	// otherwise hold Shutdown for the full drain window.
	s.cfg.Stream.Close()
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("engine: shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("engine: serve: %w", err)
	}
	return nil
}

// JobRequest is the POST /jobs payload. Exactly one of Bench (an
// ISCAS'89 profile name) or Verilog (inline structural source) selects
// the circuit. It is also the shape journaled into the durable queue,
// which is what makes crash recovery possible: a replayed record
// rebuilds the job from this request and re-runs the full
// solve+certify pipeline.
type JobRequest struct {
	Bench   string `json:"bench,omitempty"`
	Verilog string `json:"verilog,omitempty"`

	Approach string `json:"approach"`
	// C is the error-detecting overhead factor (default 1.0).
	C          *float64 `json:"c,omitempty"`
	Method     string   `json:"method,omitempty"`
	GateModel  bool     `json:"gate_model,omitempty"`
	PivotLimit int      `json:"pivot_limit,omitempty"`
	TimeoutMS  int      `json:"timeout_ms,omitempty"`
}

// jobStatus is the JSON shape of a submitted job, for POST and GET.
type jobStatus struct {
	ID     string `json:"id"`
	Key    string `json:"key"`
	Status string `json:"status"`
	// Attempts counts started attempts; MaxAttempts is the retry budget.
	Attempts    int    `json:"attempts,omitempty"`
	MaxAttempts int    `json:"max_attempts,omitempty"`
	Error       string `json:"error,omitempty"`
	// NextRetryMS is how long until a retrying job becomes eligible
	// again.
	NextRetryMS float64  `json:"next_retry_ms,omitempty"`
	Result      *Summary `json:"result,omitempty"`
	RuntimeMS   float64  `json:"runtime_ms,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	s.submitJob(w, r, false)
}

// handleInternalSubmit accepts a submission forwarded by a peer. It is
// the same pipeline with forwarding disabled: the sender already routed
// the key here, and a second hop could only loop.
func (s *Server) handleInternalSubmit(w http.ResponseWriter, r *http.Request) {
	s.submitJob(w, r, true)
}

func (s *Server) submitJob(w http.ResponseWriter, r *http.Request, internal bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSubmitBody))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("engine: bad request: %w", err))
		return
	}
	var req JobRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("engine: bad request: %w", err))
		return
	}
	if !internal && s.cfg.Cluster != nil && s.forwardSubmit(w, r, req, body) {
		return
	}
	d := s.cfg.Durable
	// Degraded mode: with the worker pool saturated or the queue at
	// capacity, cached keys are still answerable without consuming
	// either — serve them synchronously instead of queueing or shedding.
	if d.Saturated() || d.Queue().Full() {
		if out, ok := d.CachedOutcome(r.Context(), req); ok {
			sum := out.Summary()
			s.cfg.Logger.Info("served from cache (degraded mode)", "key", out.Key.Short(),
				"request_id", requestID(r))
			writeJSON(w, http.StatusOK, jobStatus{
				ID: "cached-" + out.Key.Short(), Key: out.Key.String(), Status: "done",
				Result: &sum, RuntimeMS: float64(out.Runtime.Microseconds()) / 1000,
			})
			return
		}
	}
	j, err := d.Enqueue(req, requestID(r))
	switch {
	case errors.Is(err, queue.ErrFull):
		w.Header().Set("Retry-After", "2")
		httpError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, queue.ErrClosed), errors.Is(err, queue.ErrCrashed):
		w.Header().Set("Retry-After", "10")
		httpError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.cfg.Logger.Info("job accepted", "id", j.ID, "key", j.Key, "request_id", requestID(r))
	// Retry-After on the 202 is the poll-interval hint.
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusAccepted, s.statusOf(j))
}

// forwardSubmit routes a submission to the shard that owns its content
// address and relays the answer. It reports false whenever the local
// pipeline should run instead — the key is self-owned, the request is
// malformed (the local path produces the right 400), or the owner is
// unreachable (degrade, never fail: compute locally rather than bounce
// the client).
func (s *Server) forwardSubmit(w http.ResponseWriter, r *http.Request, req JobRequest, body []byte) bool {
	job, err := BuildJob(req)
	if err != nil {
		return false
	}
	key, err := job.Key()
	if err != nil {
		return false
	}
	peerID, local := s.cfg.Cluster.Route(key.String(), time.Now())
	if local {
		return false
	}
	// The request context carries no tracer (jobs are normally traced by
	// the durable layer); attach the server's so the forward leg shows up
	// in this node's trace with the request ID on it.
	sp, ctx := obs.StartSpan(obs.WithTracer(r.Context(), s.cfg.Tracer), "cluster.forward")
	defer sp.End()
	sp.Attr("peer", peerID)
	sp.Attr("key", key.Short())
	sp.Attr("request_id", requestID(r))
	code, resp, err := s.cfg.Cluster.ForwardJob(ctx, peerID, body, requestID(r))
	if err != nil {
		sp.Add("fallback_local", 1)
		s.cfg.Logger.Warn("forward failed; computing locally",
			"peer", peerID, "key", key.Short(), "request_id", requestID(r), "err", err)
		return false
	}
	// The owner's answer stands — including a 429: its shedding decision
	// reflects the load where the job would actually run, and absorbing
	// the overflow here would defeat it.
	if code == http.StatusAccepted || code == http.StatusOK {
		var js jobStatus
		if jerr := json.Unmarshal(resp, &js); jerr == nil && js.ID != "" {
			s.rememberForward(js.ID, peerID)
		}
	}
	s.cfg.Logger.Info("job forwarded", "peer", peerID, "key", key.Short(),
		"code", code, "request_id", requestID(r))
	w.Header().Set("X-Cluster-Node", peerID)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(resp)
	return true
}

// rememberForward records which peer owns a forwarded job so later
// polls on this node can be proxied there.
func (s *Server) rememberForward(id, peerID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.forwarded == nil {
		s.forwarded = make(map[string]string, 64)
	}
	if _, ok := s.forwarded[id]; !ok {
		s.fifo = append(s.fifo, id)
	}
	s.forwarded[id] = peerID
	for len(s.fifo) > maxForwarded {
		delete(s.forwarded, s.fifo[0])
		s.fifo = s.fifo[1:]
	}
}

// forwardedPeer looks up the owner of a job this node forwarded.
func (s *Server) forwardedPeer(id string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.forwarded[id]
	return p, ok
}

// handleCacheEntry serves the raw on-disk claim blob for a key — the
// peer cache protocol. The response carries claims, never derived
// results, and the fetching peer revalidates them before use, so this
// route needs no authentication to be safe.
func (s *Server) handleCacheEntry(w http.ResponseWriter, r *http.Request) {
	key, err := ParseKey(r.PathValue("key"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	raw, err := s.cfg.Durable.Engine().Cache().RawEntry(r.Context(), key)
	if err != nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("engine: no cache entry %s", key.Short()))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(raw)
}

// handleInternalStatus answers a proxied status poll from the local
// queue only — no second proxy hop.
func (s *Server) handleInternalStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.cfg.Durable.Queue().Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("engine: no job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, s.statusOf(j))
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.cfg.Durable.Queue().Get(id)
	if ok {
		writeJSON(w, http.StatusOK, s.statusOf(j))
		return
	}
	// A job this node forwarded lives in the owner's queue; proxy the
	// poll so the client can keep talking to whichever node accepted it.
	if peerID, fwd := s.forwardedPeer(id); fwd && s.cfg.Cluster != nil {
		code, resp, err := s.cfg.Cluster.JobStatus(r.Context(), peerID, id)
		if err == nil {
			w.Header().Set("X-Cluster-Node", peerID)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(code)
			w.Write(resp)
			return
		}
		s.cfg.Logger.Warn("status proxy failed", "peer", peerID, "id", id, "err", err)
	}
	httpError(w, http.StatusNotFound, fmt.Errorf("engine: no job %q", id))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	want := r.URL.Query().Get("state")
	jobs := s.cfg.Durable.Queue().Jobs()
	out := make([]jobStatus, 0, len(jobs))
	for _, j := range jobs {
		js := s.statusOf(j)
		if want != "" && js.Status != want {
			continue
		}
		out = append(out, js)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if ok, reason := s.cfg.Durable.Ready(); !ok {
		w.Header().Set("Retry-After", "5")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, reason)
		return
	}
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.cfg.Tracer.Report().WriteMetrics(w)
	s.cfg.Metrics.WriteMetrics(w)
	st := s.cfg.Durable.Engine().Stats()
	fmt.Fprintf(w, "relatch_engine_jobs_total{outcome=\"completed\"} %d\n", st.Completed)
	fmt.Fprintf(w, "relatch_engine_jobs_total{outcome=\"failed\"} %d\n", st.Failed)
	fmt.Fprintf(w, "relatch_engine_submitted_total %d\n", st.Submitted)
	fmt.Fprintf(w, "relatch_engine_deduplicated_total %d\n", st.Deduplicated)
	fmt.Fprintf(w, "relatch_engine_cache_total{event=\"hit\"} %d\n", st.Cache.Hits)
	fmt.Fprintf(w, "relatch_engine_cache_total{event=\"disk_hit\"} %d\n", st.Cache.DiskHits)
	fmt.Fprintf(w, "relatch_engine_cache_total{event=\"miss\"} %d\n", st.Cache.Misses)
	fmt.Fprintf(w, "relatch_engine_cache_total{event=\"stored\"} %d\n", st.Cache.Stores)
	fmt.Fprintf(w, "relatch_engine_cache_total{event=\"evicted\"} %d\n", st.Cache.Evictions)
	fmt.Fprintf(w, "relatch_engine_cache_total{event=\"poisoned\"} %d\n", st.Cache.Poisoned)
	fmt.Fprintf(w, "relatch_engine_cache_total{event=\"peer_hit\"} %d\n", st.Cache.PeerHits)
	fmt.Fprintf(w, "relatch_engine_cache_total{event=\"peer_rejected\"} %d\n", st.Cache.PeerRejected)
}

// BuildJob turns an API request into an engine job: build the circuit,
// derive its clocking, and carry the options over. It is deterministic
// in the request, so the durable layer can rebuild a journaled job
// byte-identically after a restart.
func BuildJob(req JobRequest) (Job, error) {
	ap, err := ParseApproach(req.Approach)
	if err != nil {
		return Job{}, err
	}
	method, err := flow.ParseMethod(req.Method)
	if err != nil {
		return Job{}, err
	}
	overhead := 1.0
	if req.C != nil {
		overhead = *req.C
	}
	lib := cell.Default(overhead)
	var (
		c      *netlist.Circuit
		scheme clocking.Scheme
	)
	switch {
	case req.Bench != "" && req.Verilog != "":
		return Job{}, fmt.Errorf("engine: %w: request has both bench and verilog", ErrBadRequest)
	case req.Bench != "":
		prof, ok := bench.ProfileByName(req.Bench)
		if !ok {
			return Job{}, fmt.Errorf("engine: %w: unknown benchmark %q", ErrBadRequest, req.Bench)
		}
		seq, err := prof.BuildSeq(lib)
		if err != nil {
			return Job{}, err
		}
		c, scheme, err = prof.CutAndCalibrate(seq)
		if err != nil {
			return Job{}, err
		}
	case req.Verilog != "":
		sc, err := verilog.ParseString(req.Verilog, lib)
		if err != nil {
			return Job{}, err
		}
		c, err = sc.Cut()
		if err != nil {
			return Job{}, err
		}
		scheme = bench.SchemeFor(c, sta.DefaultOptions(lib))
	default:
		return Job{}, fmt.Errorf("engine: %w: request needs bench or verilog", ErrBadRequest)
	}
	job := Job{
		Circuit:  c,
		Approach: ap,
		PostSwap: ap.IsVLib(),
		Timeout:  time.Duration(req.TimeoutMS) * time.Millisecond,
	}
	job.Options.Scheme = scheme
	job.Options.EDLCost = overhead
	job.Options.Method = method
	job.Options.PivotLimit = req.PivotLimit
	if req.GateModel {
		job.Options.TimingModel = sta.ModelGate
	}
	return job, nil
}

// statusOf renders a queue job for the API, decoding the stored result
// payload for done jobs.
func (s *Server) statusOf(j queue.Job) jobStatus {
	now := s.cfg.Durable.Queue().Now()
	js := jobStatus{
		ID: j.ID, Key: j.Key, Status: j.StatusAt(now),
		Attempts: j.Attempts, MaxAttempts: j.MaxAttempts, Error: j.LastError,
	}
	if j.State == queue.StateQueued && j.NextRetry.After(now) {
		js.NextRetryMS = float64(j.NextRetry.Sub(now).Microseconds()) / 1000
	}
	if j.State == queue.StateDone && len(j.Result) > 0 {
		var res durableResult
		if err := json.Unmarshal(j.Result, &res); err == nil {
			js.Result = &res.Result
			js.RuntimeMS = res.RuntimeMS
		}
	}
	return js
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
