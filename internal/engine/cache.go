package engine

import (
	"container/list"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"relatch/internal/cell"
	"relatch/internal/cert"
	"relatch/internal/core"
	"relatch/internal/flow"
	"relatch/internal/netlist"
	"relatch/internal/obs"
	"relatch/internal/rgraph"
	"relatch/internal/vlib"
)

// entrySchemaVersion is bumped whenever the on-disk entry layout changes;
// entries with another version are treated as misses, not errors.
const entrySchemaVersion = 1

// defaultCapacity is the in-memory LRU size when the caller passes ≤ 0.
const defaultCapacity = 256

// claimEpsilon tolerates float formatting noise when comparing cached
// area claims against re-derived values.
const claimEpsilon = 1e-9

// CacheStats counts cache traffic. Hits are in-memory; DiskHits are
// restores from the on-disk layer (which also populate memory). Poisoned
// counts entries that failed validation and were discarded. PeerHits are
// claim blobs pulled from a cluster peer that survived revalidation;
// PeerRejected counts peer blobs that failed it — the trust gate firing.
type CacheStats struct {
	Hits         int64 `json:"hits"`
	Misses       int64 `json:"misses"`
	DiskHits     int64 `json:"disk_hits"`
	Stores       int64 `json:"stores"`
	Evictions    int64 `json:"evictions"`
	Poisoned     int64 `json:"poisoned"`
	PeerHits     int64 `json:"peer_hits"`
	PeerRejected int64 `json:"peer_rejected"`
}

// PeerFetcher pulls the raw claim blob for a key from a cluster peer.
// A (nil, nil) return is a clean miss. The cache treats whatever comes
// back as untrusted input: it is decoded, restored onto a fresh clone
// and re-certified exactly like a local disk entry before being served
// or stored, so the fetcher needs no integrity guarantees of its own.
type PeerFetcher func(ctx context.Context, key string) ([]byte, error)

// entry is the serializable claim set of a completed job — positions and
// classifications, never derived numbers the restore path can recompute
// and cross-check. A tampered entry therefore cannot smuggle in a wrong
// result: the restore re-evaluates the placement against ground-truth
// timing and re-certifies before anything is served.
type entry struct {
	SchemaVersion int    `json:"schema_version"`
	Key           string `json:"key"`
	Approach      string `json:"approach"`
	Circuit       string `json:"circuit"`

	AtInput []int    `json:"at_input"`
	OnEdge  [][2]int `json:"on_edge"`

	EDMasters []int `json:"ed_masters"`
	Reclaimed []int `json:"reclaimed,omitempty"`
	// Resized lists gate cells the virtual-library incremental compile
	// strengthened, as (node ID, cell name) pairs applied on restore.
	Resized []resize `json:"resized,omitempty"`

	Slaves  int     `json:"slaves"`
	Masters int     `json:"masters"`
	ED      int     `json:"ed"`
	SeqArea float64 `json:"seq_area"`

	Objective       float64        `json:"objective,omitempty"`
	Solver          string         `json:"solver,omitempty"`
	Fallback        bool           `json:"fallback,omitempty"`
	FallbackReason  string         `json:"fallback_reason,omitempty"`
	SolverCertified bool           `json:"solver_certified,omitempty"`
	Classes         map[string]int `json:"classes,omitempty"`

	Relaxed int `json:"relaxed,omitempty"`
	Swaps   int `json:"swaps,omitempty"`
	Upsized int `json:"upsized,omitempty"`
}

type resize struct {
	ID   int    `json:"id"`
	Cell string `json:"cell"`
}

// Cache is the content-addressed result cache: an in-memory LRU over
// live outcomes, with an optional on-disk layer of JSON claim blobs.
// Disk entries are restored onto a fresh clone of the submitted circuit,
// re-evaluated and re-certified before being served — a poisoned file is
// detected, counted, deleted and recomputed, never trusted.
type Cache struct {
	dir string
	cap int

	mu    sync.Mutex
	ll    *list.List            // guarded by mu (front = most recent; values are *lruItem)
	items map[Key]*list.Element // guarded by mu
	stats CacheStats            // guarded by mu
	peer  PeerFetcher           // guarded by mu (set once during serve wiring)
}

type lruItem struct {
	key Key
	out *Outcome
}

// NewCache builds a cache with the given in-memory capacity (≤ 0 means
// the default) and optional disk directory ("" disables the disk layer).
func NewCache(capacity int, dir string) (*Cache, error) {
	if capacity <= 0 {
		capacity = defaultCapacity
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("engine: cache dir: %w", err)
		}
	}
	return &Cache{
		dir:   dir,
		cap:   capacity,
		ll:    list.New(),
		items: make(map[Key]*list.Element),
	}, nil
}

// Dir returns the disk layer directory ("" when memory-only).
func (c *Cache) Dir() string { return c.dir }

// SetPeer installs the cluster peer tier. Called once while the serve
// stack is wired up; a nil fetcher leaves the cache two-layered.
func (c *Cache) SetPeer(fetch PeerFetcher) {
	c.mu.Lock()
	c.peer = fetch
	c.mu.Unlock()
}

func (c *Cache) peerFetcher() PeerFetcher {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.peer
}

// Len returns the number of entries currently resident in the memory
// layer. The serving collector samples it as a gauge.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// EntryPath returns the disk file a key maps to ("" when memory-only).
// Exported for the fault-injection harness, which corrupts entries in
// place to prove poisoned blobs are recomputed rather than served.
func (c *Cache) EntryPath(key Key) string {
	if c.dir == "" {
		return ""
	}
	return filepath.Join(c.dir, key.String()+".json")
}

// Get serves a cached outcome for the key, trying memory then disk.
// The boolean reports whether a validated outcome was produced; every
// failure mode (absent, stale schema, poisoned) degrades to a miss.
func (c *Cache) Get(ctx context.Context, key Key, job Job) (*Outcome, bool) {
	sp, ctx := obsCacheSpan(ctx, key)
	defer sp.End()

	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		out := el.Value.(*lruItem).out
		c.stats.Hits++
		c.mu.Unlock()
		sp.Add("hit", 1)
		hit := *out
		hit.CacheHit = true
		hit.CacheLayer = "memory"
		return &hit, true
	}
	c.mu.Unlock()

	if c.dir != "" {
		out, err := c.Probe(ctx, key, job)
		if err == nil {
			c.mu.Lock()
			c.stats.DiskHits++
			c.insertLocked(key, out)
			c.mu.Unlock()
			sp.Add("disk_hit", 1)
			hit := *out
			hit.CacheHit = true
			hit.CacheLayer = "disk"
			return &hit, true
		}
		if !os.IsNotExist(err) {
			// A present-but-invalid entry is poisoned: drop the file so
			// the recomputed result can take its place.
			c.mu.Lock()
			c.stats.Poisoned++
			c.mu.Unlock()
			sp.Add("poisoned", 1)
			os.Remove(c.EntryPath(key))
		}
	}
	if out, ok := c.peerGet(ctx, sp, key, job); ok {
		return out, true
	}
	c.miss(sp)
	return nil, false
}

// peerGet tries the cluster peer tier. A fetched blob passes the exact
// revalidation gate a local disk entry does — decode, restore onto a
// fresh clone, re-derive, re-certify — before it is served or persisted,
// so a poisoned or malicious peer can never inject an uncertified
// result; at worst its blob is rejected, counted, and the key falls
// through to local compute.
func (c *Cache) peerGet(ctx context.Context, sp *obs.Span, key Key, job Job) (*Outcome, bool) {
	fetch := c.peerFetcher()
	if fetch == nil {
		return nil, false
	}
	raw, err := fetch(ctx, key.String())
	if err != nil || raw == nil {
		return nil, false
	}
	e, err := decodeEntry(raw, key, job)
	var out *Outcome
	if err == nil {
		out, err = c.restore(ctx, key, job, e)
	}
	if err != nil {
		c.mu.Lock()
		c.stats.PeerRejected++
		c.mu.Unlock()
		sp.Add("peer_rejected", 1)
		return nil, false
	}
	c.mu.Lock()
	c.stats.PeerHits++
	c.insertLocked(key, out)
	c.mu.Unlock()
	sp.Add("peer_hit", 1)
	// The blob proved its claims; keep it so the next restart (and our
	// own peers) can serve it from disk.
	c.writeRaw(key, raw)
	hit := *out
	hit.CacheHit = true
	hit.CacheLayer = "peer"
	return &hit, true
}

func (c *Cache) miss(sp *obs.Span) {
	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
	sp.Add("miss", 1)
}

// obsCacheSpan opens the engine.cache span all cache traffic reports on.
func obsCacheSpan(ctx context.Context, key Key) (*obs.Span, context.Context) {
	//relint:ignore obsspan -- the span is returned to the caller, which owns the deferred End
	sp, ctx := obs.StartSpan(ctx, "engine.cache")
	sp.Attr("key", key.Short())
	return sp, ctx
}

// Probe reads, restores and validates the disk entry for a key without
// touching the memory layer or the miss/poison accounting. It returns
// the validation failure verbatim, which is what the fault harness (and
// any operator debugging a cache dir) wants to see.
func (c *Cache) Probe(ctx context.Context, key Key, job Job) (*Outcome, error) {
	if c.dir == "" {
		return nil, fmt.Errorf("engine: cache has no disk layer: %w", os.ErrNotExist)
	}
	raw, err := os.ReadFile(c.EntryPath(key))
	if err != nil {
		return nil, err
	}
	e, err := decodeEntry(raw, key, job)
	if err != nil {
		return nil, err
	}
	return c.restore(ctx, key, job, e)
}

// decodeEntry parses a raw claim blob and checks its header against the
// key and job it is supposed to answer. Shared by the disk and peer
// tiers; the caller still restores (re-evaluates, re-certifies) the
// claims before trusting them.
func decodeEntry(raw []byte, key Key, job Job) (*entry, error) {
	var e entry
	if err := json.Unmarshal(raw, &e); err != nil {
		return nil, fmt.Errorf("engine: cache entry %s: %w", key.Short(), err)
	}
	if e.SchemaVersion != entrySchemaVersion {
		return nil, fmt.Errorf("engine: %w: entry %s: schema %d, want %d",
			ErrCacheInvalid, key.Short(), e.SchemaVersion, entrySchemaVersion)
	}
	if e.Key != key.String() {
		return nil, fmt.Errorf("engine: %w: entry %s: claims key %s", ErrCacheInvalid, key.Short(), e.Key)
	}
	if e.Approach != string(job.Approach) {
		return nil, fmt.Errorf("engine: %w: entry %s: approach %q, want %q",
			ErrCacheInvalid, key.Short(), e.Approach, job.Approach)
	}
	return &e, nil
}

// RawEntry returns the on-disk claim blob for a key — the payload of
// the peer cache protocol. Only the disk layer is served: memory
// outcomes hold live circuit state that cannot be reduced to claims
// without the submitting job, and peers revalidate whatever they get
// anyway, so a disk read is both sufficient and the cheapest honest
// answer. Missing entries report os.ErrNotExist.
func (c *Cache) RawEntry(ctx context.Context, key Key) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("engine: cache entry %s: %w", key.Short(), err)
	}
	if c.dir == "" {
		return nil, fmt.Errorf("engine: cache has no disk layer: %w", os.ErrNotExist)
	}
	return os.ReadFile(c.EntryPath(key))
}

// Put stores a freshly computed outcome in both layers. Outcomes that
// were themselves cache hits are not re-stored.
func (c *Cache) Put(ctx context.Context, key Key, job Job, out *Outcome) {
	if out == nil || out.CacheHit {
		return
	}
	sp, _ := obsCacheSpan(ctx, key)
	defer sp.End()

	c.mu.Lock()
	c.stats.Stores++
	evicted := c.insertLocked(key, out)
	c.mu.Unlock()
	sp.Add("stored", 1)
	if evicted > 0 {
		sp.Add("evicted", int64(evicted))
	}

	if c.dir == "" {
		return
	}
	e, err := encodeEntry(key, job, out)
	if err != nil {
		return // unencodable outcomes simply stay memory-only
	}
	raw, err := json.MarshalIndent(e, "", " ")
	if err != nil {
		return
	}
	c.writeRaw(key, raw)
}

// writeRaw atomically publishes an entry blob to the disk layer: a
// crashed writer must never leave a torn entry that a later Get would
// flag as poisoned.
func (c *Cache) writeRaw(key Key, raw []byte) {
	if c.dir == "" {
		return
	}
	tmp := c.EntryPath(key) + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return
	}
	os.Rename(tmp, c.EntryPath(key))
}

// insertLocked adds an outcome to the LRU (c.mu held) and returns how
// many entries were evicted to make room.
func (c *Cache) insertLocked(key Key, out *Outcome) int {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruItem).out = out
		return 0
	}
	c.items[key] = c.ll.PushFront(&lruItem{key: key, out: out})
	evicted := 0
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*lruItem).key)
		c.stats.Evictions++
		evicted++
	}
	return evicted
}

// encodeEntry reduces an outcome to its serializable claims.
func encodeEntry(key Key, job Job, out *Outcome) (*entry, error) {
	e := &entry{
		SchemaVersion: entrySchemaVersion,
		Key:           key.String(),
		Approach:      string(job.Approach),
		Circuit:       job.Circuit.Name,
	}
	switch {
	case out.Core != nil:
		r := out.Core
		e.AtInput, e.OnEdge = encodePlacement(r.Placement)
		e.EDMasters = sortedTrueKeys(r.EDMasters)
		e.Reclaimed = sortedTrueKeys(r.Reclaimed)
		e.Slaves, e.Masters, e.ED = r.SlaveCount, r.MasterCount, r.EDCount
		e.SeqArea = r.SeqArea
		e.Objective = r.Objective
		e.Solver = r.Solver.String()
		e.Fallback = r.SolverFallback
		e.FallbackReason = r.FallbackReason
		e.SolverCertified = r.SolverCertified
		if len(r.Classes) > 0 {
			e.Classes = make(map[string]int, len(r.Classes))
			for k, v := range r.Classes {
				e.Classes[strconv.Itoa(int(k))] = v
			}
		}
	case out.VLib != nil:
		r := out.VLib
		e.AtInput, e.OnEdge = encodePlacement(r.Placement)
		e.EDMasters = sortedTrueKeys(r.EDMasters)
		e.Slaves, e.Masters, e.ED = r.SlaveCount, r.MasterCount, r.EDCount
		e.SeqArea = r.SeqArea
		e.Relaxed, e.Swaps, e.Upsized = r.Relaxed, r.Swaps, r.Upsized
		for _, n := range r.Circuit.Nodes {
			orig := job.Circuit.Nodes[n.ID]
			if n.Cell != nil && orig.Cell != nil && n.Cell.Name != orig.Cell.Name {
				e.Resized = append(e.Resized, resize{ID: n.ID, Cell: n.Cell.Name})
			}
		}
	default:
		return nil, fmt.Errorf("engine: %w: outcome for %s has no result", ErrCacheInvalid, key.Short())
	}
	return e, nil
}

// restore rebuilds a live outcome from an entry's claims on a fresh
// clone, re-derives everything derivable and certifies the result.
func (c *Cache) restore(ctx context.Context, key Key, job Job, e *entry) (*Outcome, error) {
	start := time.Now()
	p, err := decodePlacement(job.Circuit, e)
	if err != nil {
		return nil, err
	}
	out := &Outcome{Key: key, Approach: job.Approach}
	if job.Approach.IsVLib() {
		if err := c.restoreVLib(ctx, job, e, p, out); err != nil {
			return nil, err
		}
	} else {
		if err := c.restoreCore(ctx, job, e, p, out); err != nil {
			return nil, err
		}
	}
	if ferr := out.Certificate.Err(); ferr != nil {
		return nil, fmt.Errorf("engine: cache entry %s: %w", key.Short(), ferr)
	}
	out.Runtime = time.Since(start)
	return out, nil
}

// restoreCore re-evaluates a cached core placement from scratch and
// cross-checks the entry's claims against the re-derived result.
func (c *Cache) restoreCore(ctx context.Context, job Job, e *entry, p *netlist.Placement, out *Outcome) error {
	clone := job.Circuit.Clone()
	res, err := core.EvaluateCtx(ctx, clone, job.Options, job.Approach.CoreApproach(), p)
	if err != nil {
		return fmt.Errorf("engine: cache entry %s: %w", out.Key.Short(), err)
	}
	if res.SlaveCount != e.Slaves || res.MasterCount != e.Masters || res.EDCount != e.ED {
		return fmt.Errorf("engine: %w: entry %s: claims %d/%d/%d latches, re-derived %d/%d/%d",
			ErrCacheInvalid, out.Key.Short(), e.Slaves, e.Masters, e.ED, res.SlaveCount, res.MasterCount, res.EDCount)
	}
	if math.Abs(res.SeqArea-e.SeqArea) > claimEpsilon {
		return fmt.Errorf("engine: %w: entry %s: claims seq area %g, re-derived %g",
			ErrCacheInvalid, out.Key.Short(), e.SeqArea, res.SeqArea)
	}
	if !sameIDSet(res.EDMasters, e.EDMasters) {
		return fmt.Errorf("engine: %w: entry %s: ED-master claim diverges from re-derived set",
			ErrCacheInvalid, out.Key.Short())
	}
	res.Reclaimed = idSet(e.Reclaimed)
	res.Objective = e.Objective
	if m, merr := flow.ParseMethod(e.Solver); merr == nil {
		res.Solver = m
	}
	res.SolverFallback = e.Fallback
	res.FallbackReason = e.FallbackReason
	res.SolverCertified = e.SolverCertified
	if len(e.Classes) > 0 {
		res.Classes = make(map[rgraph.TargetClass]int, len(e.Classes))
		for k, v := range e.Classes {
			n, perr := strconv.Atoi(k)
			if perr != nil {
				return fmt.Errorf("engine: %w: entry %s: bad class %q", ErrCacheInvalid, out.Key.Short(), k)
			}
			res.Classes[rgraph.TargetClass(n)] = v
		}
	}
	evalOpt := core.EvalOptions(clone, job.Options)
	crt, err := cert.Run(ctx, cert.Subject{
		Original:    cert.Snapshot(job.Circuit),
		Retimed:     clone,
		Placement:   p,
		Scheme:      job.Options.Scheme,
		Latch:       core.SlaveLatch(clone, job.Options),
		StaOptions:  &evalOpt,
		EDMasters:   res.EDMasters,
		Reclaimed:   res.Reclaimed,
		SlaveCount:  res.SlaveCount,
		MasterCount: res.MasterCount,
		EDCount:     res.EDCount,
		SeqArea:     res.SeqArea,
		EDLCost:     job.Options.EDLCost,
		Objective:   res.Objective,
		Approach:    job.Approach.Display(),
	}, cert.Config{})
	if err != nil {
		return fmt.Errorf("engine: cache entry %s: %w", out.Key.Short(), err)
	}
	res.Certificate = crt
	out.Core, out.Certificate = res, crt
	return nil
}

// restoreVLib replays a cached virtual-library result: clone, re-apply
// the recorded resizes, re-validate the placement, recount areas and
// certify against the original shape.
func (c *Cache) restoreVLib(ctx context.Context, job Job, e *entry, p *netlist.Placement, out *Outcome) error {
	clone := job.Circuit.Clone()
	lib := clone.Lib
	for _, rs := range e.Resized {
		if rs.ID < 0 || rs.ID >= len(clone.Nodes) {
			return fmt.Errorf("engine: %w: entry %s: resize of unknown node %d", ErrCacheInvalid, out.Key.Short(), rs.ID)
		}
		n := clone.Nodes[rs.ID]
		cl, ok := lib.ByName(rs.Cell)
		if !ok {
			return fmt.Errorf("engine: %w: entry %s: resize to unknown cell %q", ErrCacheInvalid, out.Key.Short(), rs.Cell)
		}
		if n.Cell == nil {
			return fmt.Errorf("engine: %w: entry %s: resize of non-gate node %d", ErrCacheInvalid, out.Key.Short(), rs.ID)
		}
		n.Cell = cl
	}
	if err := p.Validate(clone); err != nil {
		return fmt.Errorf("engine: cache entry %s: %w", out.Key.Short(), err)
	}
	ed := idSet(e.EDMasters)
	res := &vlib.Result{
		Variant:     job.Approach.Variant(),
		Circuit:     clone,
		Placement:   p,
		EDMasters:   ed,
		SlaveCount:  p.SlaveCount(),
		MasterCount: clone.FlopCount(),
		EDCount:     len(ed),
		Relaxed:     e.Relaxed,
		Swaps:       e.Swaps,
		Upsized:     e.Upsized,
	}
	if res.SlaveCount != e.Slaves || res.MasterCount != e.Masters || res.EDCount != e.ED {
		return fmt.Errorf("engine: %w: entry %s: claims %d/%d/%d latches, re-derived %d/%d/%d",
			ErrCacheInvalid, out.Key.Short(), e.Slaves, e.Masters, e.ED, res.SlaveCount, res.MasterCount, res.EDCount)
	}
	res.SeqArea = cell.SeqAreaOf(lib, job.Options.EDLCost, res.SlaveCount, res.MasterCount, res.EDCount)
	if math.Abs(res.SeqArea-e.SeqArea) > claimEpsilon {
		return fmt.Errorf("engine: %w: entry %s: claims seq area %g, re-derived %g",
			ErrCacheInvalid, out.Key.Short(), e.SeqArea, res.SeqArea)
	}
	res.CombArea = clone.CombArea()
	res.TotalArea = res.SeqArea + res.CombArea
	crt, err := cert.Run(ctx, cert.Subject{
		Original:    cert.Snapshot(job.Circuit),
		Retimed:     clone,
		Placement:   p,
		Scheme:      job.Options.Scheme,
		Latch:       lib.BaseLatch,
		EDMasters:   res.EDMasters,
		SlaveCount:  res.SlaveCount,
		MasterCount: res.MasterCount,
		EDCount:     res.EDCount,
		SeqArea:     res.SeqArea,
		EDLCost:     job.Options.EDLCost,
		Approach:    job.Approach.Display(),
	}, cert.Config{AllowResizing: true, EDSuperset: !job.PostSwap})
	if err != nil {
		return fmt.Errorf("engine: cache entry %s: %w", out.Key.Short(), err)
	}
	out.VLib, out.Certificate = res, crt
	return nil
}

// encodePlacement flattens a placement into sorted ID/edge lists.
func encodePlacement(p *netlist.Placement) (atInput []int, onEdge [][2]int) {
	atInput = sortedTrueKeys(p.AtInput)
	for e, on := range p.OnEdge {
		if on {
			onEdge = append(onEdge, [2]int{e.From, e.To})
		}
	}
	sort.Slice(onEdge, func(i, j int) bool {
		if onEdge[i][0] != onEdge[j][0] {
			return onEdge[i][0] < onEdge[j][0]
		}
		return onEdge[i][1] < onEdge[j][1]
	})
	return atInput, onEdge
}

// decodePlacement rebuilds a placement, bounds-checking IDs against the
// submitted circuit so a corrupt entry fails loudly instead of panicking
// downstream.
func decodePlacement(c *netlist.Circuit, e *entry) (*netlist.Placement, error) {
	p := netlist.NewPlacement()
	for _, id := range e.AtInput {
		if id < 0 || id >= len(c.Nodes) {
			return nil, fmt.Errorf("engine: %w: latch at unknown input %d", ErrCacheInvalid, id)
		}
		p.AtInput[id] = true
	}
	for _, fe := range e.OnEdge {
		if fe[0] < 0 || fe[0] >= len(c.Nodes) || fe[1] < 0 || fe[1] >= len(c.Nodes) {
			return nil, fmt.Errorf("engine: %w: latch on unknown edge %d->%d", ErrCacheInvalid, fe[0], fe[1])
		}
		p.OnEdge[netlist.Edge{From: fe[0], To: fe[1]}] = true
	}
	return p, nil
}

// sortedTrueKeys lists the true keys of a set map, sorted.
func sortedTrueKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k, v := range m {
		if v {
			out = append(out, k)
		}
	}
	sort.Ints(out)
	return out
}

// idSet inverts sortedTrueKeys.
func idSet(ids []int) map[int]bool {
	m := make(map[int]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return m
}

// sameIDSet compares a set map against a sorted ID list.
func sameIDSet(m map[int]bool, ids []int) bool {
	n := 0
	for _, v := range m {
		if v {
			n++
		}
	}
	if n != len(ids) {
		return false
	}
	for _, id := range ids {
		if !m[id] {
			return false
		}
	}
	return true
}
