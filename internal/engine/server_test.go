package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"relatch/internal/obs"
	"relatch/internal/queue"
)

// testStack is the full durable serving stack behind one test server.
type testStack struct {
	eng     *Engine
	q       *queue.Queue
	d       *Durable
	metrics *obs.Registry
	tr      *obs.Tracer
	stream  *obs.Stream
}

// newTestStack assembles engine+queue+pump with test-friendly knobs.
// Mutate cfg/qcfg via the callbacks before the components start.
func newTestStack(t *testing.T, mutate func(*Config, *queue.Config, *DurableConfig)) *testStack {
	t.Helper()
	cfg := Config{Workers: 2, Cache: mustCache(t, 8, "")}
	qcfg := queue.Config{BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond}
	dcfg := DurableConfig{Poll: 2 * time.Millisecond, Sweep: 5 * time.Millisecond}
	if mutate != nil {
		mutate(&cfg, &qcfg, &dcfg)
	}
	st := &testStack{metrics: obs.NewRegistry(), tr: obs.New("serve-test")}
	st.stream = st.tr.EnableStream(256)
	if qcfg.Metrics == nil {
		qcfg.Metrics = st.metrics
	}
	if qcfg.Events == nil {
		qcfg.Events = st.stream
	}
	if cfg.Metrics == nil {
		cfg.Metrics = st.metrics
	}
	if dcfg.Tracer == nil {
		dcfg.Tracer = st.tr
	}
	st.eng = New(cfg)
	var err error
	if st.q, err = queue.Open(qcfg); err != nil {
		t.Fatal(err)
	}
	dcfg.Engine, dcfg.Queue, dcfg.Metrics = st.eng, st.q, st.metrics
	if st.d, err = NewDurable(dcfg); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		st.d.Close()
		st.q.Close()
		st.eng.Close()
	})
	return st
}

func newTestServer(t *testing.T, mutate func(*Config, *queue.Config, *DurableConfig)) (*httptest.Server, *testStack) {
	t.Helper()
	st := newTestStack(t, mutate)
	srv, err := NewServer(ServerConfig{
		Durable:        st.d,
		Tracer:         st.tr,
		Metrics:        st.metrics,
		RequestTimeout: 30 * time.Second,
		Stream:         st.stream,
		SSEHeartbeat:   100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, st
}

func postJob(t *testing.T, ts *httptest.Server, req JobRequest) (jobStatus, *http.Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var js jobStatus
	json.NewDecoder(resp.Body).Decode(&js)
	return js, resp
}

func pollDone(t *testing.T, ts *httptest.Server, id string) jobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var js jobStatus
		err = json.NewDecoder(resp.Body).Decode(&js)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if js.Status == "done" || js.Status == "dead" {
			return js
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q", id, js.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServerSubmitPollComplete(t *testing.T) {
	ts, _ := newTestServer(t, nil)

	js, resp := postJob(t, ts, JobRequest{Verilog: testSource, Approach: "grar"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit returned %d: %+v", resp.StatusCode, js)
	}
	if js.ID == "" || len(js.Key) != 64 {
		t.Fatalf("bad submit response: %+v", js)
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Error("submit response missing X-Request-Id")
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("202 missing the Retry-After poll hint")
	}

	done := pollDone(t, ts, js.ID)
	if done.Status != "done" || done.Error != "" {
		t.Fatalf("job ended %q (%s)", done.Status, done.Error)
	}
	if done.Result == nil || !done.Result.Certified {
		t.Fatalf("completed job not certified: %+v", done.Result)
	}
	if done.Result.Approach != "g-rar" || done.Result.Slaves <= 0 {
		t.Errorf("bad result row: %+v", done.Result)
	}
	if done.RuntimeMS <= 0 {
		t.Errorf("done job reports no runtime: %+v", done)
	}

	// The listing includes the finished job.
	hresp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var all []jobStatus
	err = json.NewDecoder(hresp.Body).Decode(&all)
	hresp.Body.Close()
	if err != nil || len(all) != 1 || all[0].ID != js.ID {
		t.Errorf("listing = %+v (%v)", all, err)
	}

	// An identical resubmission is content-addressed to the same key and
	// completes out of the engine cache.
	again, aresp := postJob(t, ts, JobRequest{Verilog: testSource, Approach: "grar"})
	if aresp.StatusCode != http.StatusAccepted || again.Key != js.Key {
		t.Fatalf("resubmission: code %d key %s, want key %s", aresp.StatusCode, again.Key, js.Key)
	}
	warm := pollDone(t, ts, again.ID)
	if warm.Result == nil || warm.Result.CacheLayer != "memory" {
		t.Errorf("resubmission missed the cache: %+v", warm.Result)
	}
}

func TestServerEchoesRequestID(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/jobs", nil)
	req.Header.Set("X-Request-Id", "req-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "req-42" {
		t.Errorf("X-Request-Id = %q, want the incoming req-42", got)
	}
}

func TestServerShedsWith429WhenFull(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	ts, _ := newTestServer(t, func(cfg *Config, qcfg *queue.Config, _ *DurableConfig) {
		cfg.Workers = 1
		cfg.SolveOverride = func(ctx context.Context, job Job) (*Outcome, error) {
			select {
			case <-block:
			case <-ctx.Done():
			}
			return nil, fmt.Errorf("test solve aborted: %v", ctx.Err())
		}
		qcfg.Capacity = 2
	})

	codes := make(map[int]int)
	var retryAfter string
	for i := 0; i < 4; i++ {
		_, resp := postJob(t, ts, JobRequest{Verilog: testSource, Approach: "grar", TimeoutMS: int(time.Hour.Milliseconds()), PivotLimit: i + 1})
		codes[resp.StatusCode]++
		if resp.StatusCode == http.StatusTooManyRequests {
			retryAfter = resp.Header.Get("Retry-After")
		}
	}
	if codes[http.StatusAccepted] != 2 || codes[http.StatusTooManyRequests] != 2 {
		t.Fatalf("codes = %v, want two 202 and two 429", codes)
	}
	if retryAfter == "" {
		t.Error("429 missing Retry-After")
	}
}

func TestServerServesCacheOnlyWhenSaturated(t *testing.T) {
	// Warm a shared cache with a real solve, then saturate the server's
	// worker pool: the warm key must still be answered, synchronously
	// and straight from the cache.
	cache := mustCache(t, 8, "")
	warmEng := New(Config{Workers: 1, Cache: cache})
	req := JobRequest{Verilog: testSource, Approach: "grar"}
	job, err := BuildJob(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := warmEng.Do(context.Background(), job); err != nil {
		t.Fatal(err)
	}
	warmEng.Close()

	block := make(chan struct{})
	defer close(block)
	ts, st := newTestServer(t, func(cfg *Config, qcfg *queue.Config, _ *DurableConfig) {
		cfg.Workers = 1
		cfg.Cache = cache
		cfg.SolveOverride = func(ctx context.Context, job Job) (*Outcome, error) {
			select {
			case <-block:
			case <-ctx.Done():
			}
			return nil, fmt.Errorf("test solve aborted: %v", ctx.Err())
		}
	})

	// Saturate the single worker with a key that blocks forever. The
	// pivot limit keeps its key distinct from the warm one (timeout is
	// canonicalized out of the key).
	_, resp := postJob(t, ts, JobRequest{Verilog: testSource, Approach: "grar", TimeoutMS: int(time.Hour.Milliseconds()), PivotLimit: 7})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("saturating submit returned %d", resp.StatusCode)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !st.d.Saturated() {
		if time.Now().After(deadline) {
			t.Fatal("worker pool never saturated")
		}
		time.Sleep(2 * time.Millisecond)
	}

	js, resp := postJob(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached submit under saturation returned %d: %+v", resp.StatusCode, js)
	}
	if js.Status != "done" || js.Result == nil || !js.Result.CacheHit {
		t.Fatalf("degraded-mode response not a cache hit: %+v", js)
	}
}

func TestServerDeadLetterInspectable(t *testing.T) {
	ts, _ := newTestServer(t, func(cfg *Config, qcfg *queue.Config, _ *DurableConfig) {
		cfg.SolveOverride = func(ctx context.Context, job Job) (*Outcome, error) {
			return nil, fmt.Errorf("solver permanently broken")
		}
		qcfg.MaxAttempts = 2
	})
	js, resp := postJob(t, ts, JobRequest{Verilog: testSource, Approach: "grar"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit returned %d", resp.StatusCode)
	}
	dead := pollDone(t, ts, js.ID)
	if dead.Status != "dead" || dead.Attempts != 2 || !strings.Contains(dead.Error, "permanently broken") {
		t.Fatalf("dead job = %+v", dead)
	}

	hresp, err := http.Get(ts.URL + "/jobs?state=dead")
	if err != nil {
		t.Fatal(err)
	}
	var deads []jobStatus
	err = json.NewDecoder(hresp.Body).Decode(&deads)
	hresp.Body.Close()
	if err != nil || len(deads) != 1 || deads[0].ID != js.ID {
		t.Errorf("dead listing = %+v (%v)", deads, err)
	}
	hresp, err = http.Get(ts.URL + "/jobs?state=done")
	if err != nil {
		t.Fatal(err)
	}
	deads = nil
	json.NewDecoder(hresp.Body).Decode(&deads)
	hresp.Body.Close()
	if len(deads) != 0 {
		t.Errorf("state=done listing includes the dead job: %+v", deads)
	}
}

func TestServerReportsRetryDetail(t *testing.T) {
	fail := make(chan struct{}, 1)
	fail <- struct{}{}
	ts, _ := newTestServer(t, func(cfg *Config, qcfg *queue.Config, _ *DurableConfig) {
		cfg.SolveOverride = func(ctx context.Context, job Job) (*Outcome, error) {
			select {
			case <-fail:
				return nil, fmt.Errorf("transient solver hiccup")
			default:
				<-ctx.Done() // park until shutdown; the poller reads the retry state meanwhile
				return nil, fmt.Errorf("test solve aborted: %v", ctx.Err())
			}
		}
		qcfg.BaseBackoff = time.Minute
		qcfg.MaxBackoff = time.Minute
	})
	js, _ := postJob(t, ts, JobRequest{Verilog: testSource, Approach: "grar"})

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/jobs/" + js.ID)
		if err != nil {
			t.Fatal(err)
		}
		var got jobStatus
		json.NewDecoder(resp.Body).Decode(&got)
		resp.Body.Close()
		if got.Status == "retrying" {
			if got.Attempts != 1 || !strings.Contains(got.Error, "hiccup") || got.NextRetryMS <= 0 {
				t.Fatalf("retrying status = %+v", got)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never reached retrying state: %+v", got)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestServerReadyzFlipsUnderSustainedOverload(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	ts, _ := newTestServer(t, func(cfg *Config, qcfg *queue.Config, dcfg *DurableConfig) {
		cfg.Workers = 1
		cfg.SolveOverride = func(ctx context.Context, job Job) (*Outcome, error) {
			select {
			case <-block:
			case <-ctx.Done():
			}
			return nil, fmt.Errorf("test solve aborted: %v", ctx.Err())
		}
		qcfg.Capacity = 4
		dcfg.OverloadHighWater = 0.5
		dcfg.OverloadGrace = 20 * time.Millisecond
		dcfg.Sweep = 5 * time.Millisecond
	})

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("fresh server readyz = %d", code)
	}
	// Fill past the high-water mark (2 of 4) with distinct blocking keys.
	for i := 0; i < 3; i++ {
		if _, resp := postJob(t, ts, JobRequest{Verilog: testSource, Approach: "grar", TimeoutMS: int(time.Hour.Milliseconds()), PivotLimit: i + 1}); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d returned %d", i, resp.StatusCode)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for get("/readyz") != http.StatusServiceUnavailable {
		if time.Now().After(deadline) {
			t.Fatal("readyz never flipped unready under sustained overload")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Liveness is unaffected by overload.
	if code := get("/healthz"); code != http.StatusOK {
		t.Errorf("healthz = %d during overload", code)
	}
}

func TestServerMetrics(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	js, _ := postJob(t, ts, JobRequest{Verilog: testSource, Approach: "base"})
	pollDone(t, ts, js.ID)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("metrics Content-Type = %q, want Prometheus 0.0.4 exposition", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	text := buf.String()
	for _, line := range []string{
		"relatch_engine_submitted_total 1",
		`relatch_engine_jobs_total{outcome="completed"} 1`,
		`relatch_engine_cache_total{event="miss"} 1`,
		`relatch_queue_jobs_total{event="enqueued"} 1`,
		`relatch_queue_jobs_total{event="completed"} 1`,
		"relatch_queue_depth 0",
		"# TYPE relatch_job_stage_seconds histogram",
		`relatch_job_stage_seconds_count{stage="solve"} 1`,
		`relatch_job_stage_seconds_count{stage="certify"} 1`,
		`relatch_job_stage_seconds_count{stage="total"} 1`,
		`relatch_job_stage_seconds_count{stage="queue_wait"} 1`,
		"relatch_queue_lease_hold_seconds_count 1",
	} {
		if !strings.Contains(text, line) {
			t.Errorf("metrics missing %q:\n%s", line, text)
		}
	}
	// Parser roundtrip: every emitted line must be valid Prometheus text
	// exposition — names, label escaping, float values, no NaN.
	if err := obs.ValidateMetrics(strings.NewReader(text)); err != nil {
		t.Errorf("metrics page does not scrape cleanly: %v", err)
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	cases := []struct {
		name string
		body string
	}{
		{"not json", "{torn"},
		{"unknown field", `{"approach":"grar","verilog":"x","frob":1}`},
		{"unknown approach", fmt.Sprintf(`{"approach":"warp","verilog":%q}`, testSource)},
		{"no circuit", `{"approach":"grar"}`},
		{"both circuits", fmt.Sprintf(`{"approach":"grar","verilog":%q,"bench":"s1196"}`, testSource)},
		{"unknown bench", `{"approach":"grar","bench":"s0"}`},
		{"bad verilog", `{"approach":"grar","verilog":"module m(; endmodule"}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/jobs/q-99999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id: status %d, want 404", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: status %d", resp.StatusCode)
	}
}

func TestServerGracefulShutdown(t *testing.T) {
	st := newTestStack(t, nil)
	srv, err := NewServer(ServerConfig{Durable: st.d})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(ctx, "127.0.0.1:0") }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown hung")
	}
}

// TestServerServeGoroutineJoins is the regression test for the buffered
// errc in ListenAndServe (relint chandisc bug class): when ctx wins the
// shutdown select, the internal Serve goroutine must still be able to
// deliver its error and exit. An unbuffered errc would strand one Serve
// goroutine per ListenAndServe cycle; repeated cycles would grow the
// goroutine count without bound.
func TestServerServeGoroutineJoins(t *testing.T) {
	st := newTestStack(t, nil)
	srv, err := NewServer(ServerConfig{Durable: st.d})
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		errc := make(chan error, 1)
		go func() { errc <- srv.ListenAndServe(ctx, "127.0.0.1:0") }()
		time.Sleep(20 * time.Millisecond)
		cancel()
		select {
		case err := <-errc:
			if err != nil {
				t.Fatalf("cycle %d: shutdown returned %v", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("cycle %d: shutdown hung", i)
		}
	}
	// Each cycle's goroutines (ListenAndServe wrapper + Serve) must have
	// exited; poll briefly since exits are asynchronous. Allow slack of 2
	// for unrelated runtime/netpoll goroutines that may have started.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked across serve cycles: %d before, %d after", before, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServerRequiresDurable(t *testing.T) {
	if _, err := NewServer(ServerConfig{}); err == nil {
		t.Error("server constructed without a durable layer")
	}
}
