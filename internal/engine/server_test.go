package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"relatch/internal/obs"
)

func newTestServer(t *testing.T) (*httptest.Server, *obs.Tracer) {
	t.Helper()
	tr := obs.New("serve-test")
	eng := New(Config{Workers: 2, Cache: mustCache(t, 8, "")})
	t.Cleanup(eng.Close)
	srv, err := NewServer(ServerConfig{Engine: eng, Tracer: tr, RequestTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, tr
}

func postJob(t *testing.T, ts *httptest.Server, req jobRequest) (jobStatus, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var js jobStatus
	json.NewDecoder(resp.Body).Decode(&js)
	return js, resp.StatusCode
}

func pollDone(t *testing.T, ts *httptest.Server, id string) jobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var js jobStatus
		err = json.NewDecoder(resp.Body).Decode(&js)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if js.Status == StateDone.String() || js.Status == StateFailed.String() {
			return js
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q", id, js.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServerSubmitPollComplete(t *testing.T) {
	ts, _ := newTestServer(t)

	js, code := postJob(t, ts, jobRequest{Verilog: testSource, Approach: "grar"})
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d: %+v", code, js)
	}
	if js.ID == "" || len(js.Key) != 64 {
		t.Fatalf("bad submit response: %+v", js)
	}

	done := pollDone(t, ts, js.ID)
	if done.Status != "done" || done.Error != "" {
		t.Fatalf("job ended %q (%s)", done.Status, done.Error)
	}
	if done.Result == nil || !done.Result.Certified {
		t.Fatalf("completed job not certified: %+v", done.Result)
	}
	if done.Result.Approach != "g-rar" || done.Result.Slaves <= 0 {
		t.Errorf("bad result row: %+v", done.Result)
	}

	// The listing includes the finished job.
	resp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var all []jobStatus
	err = json.NewDecoder(resp.Body).Decode(&all)
	resp.Body.Close()
	if err != nil || len(all) != 1 || all[0].ID != js.ID {
		t.Errorf("listing = %+v (%v)", all, err)
	}

	// An identical resubmission is content-addressed to the same key and
	// served from the cache.
	again, code := postJob(t, ts, jobRequest{Verilog: testSource, Approach: "grar"})
	if code != http.StatusAccepted || again.Key != js.Key {
		t.Fatalf("resubmission: code %d key %s, want key %s", code, again.Key, js.Key)
	}
	warm := pollDone(t, ts, again.ID)
	if warm.Result == nil || warm.Result.CacheLayer != "memory" {
		t.Errorf("resubmission missed the cache: %+v", warm.Result)
	}
}

func TestServerMetrics(t *testing.T) {
	ts, _ := newTestServer(t)
	js, _ := postJob(t, ts, jobRequest{Verilog: testSource, Approach: "base"})
	pollDone(t, ts, js.ID)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	text := buf.String()
	for _, line := range []string{
		"relatch_engine_submitted_total 1",
		`relatch_engine_jobs_total{outcome="completed"} 1`,
		`relatch_engine_cache_total{event="miss"} 1`,
	} {
		if !strings.Contains(text, line) {
			t.Errorf("metrics missing %q:\n%s", line, text)
		}
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []struct {
		name string
		body string
	}{
		{"not json", "{torn"},
		{"unknown field", `{"approach":"grar","verilog":"x","frob":1}`},
		{"unknown approach", fmt.Sprintf(`{"approach":"warp","verilog":%q}`, testSource)},
		{"no circuit", `{"approach":"grar"}`},
		{"both circuits", fmt.Sprintf(`{"approach":"grar","verilog":%q,"bench":"s1196"}`, testSource)},
		{"unknown bench", `{"approach":"grar","bench":"s0"}`},
		{"bad verilog", `{"approach":"grar","verilog":"module m(; endmodule"}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id: status %d, want 404", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: status %d", resp.StatusCode)
	}
}

func TestServerGracefulShutdown(t *testing.T) {
	eng := New(Config{Workers: 1})
	defer eng.Close()
	srv, err := NewServer(ServerConfig{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(ctx, "127.0.0.1:0") }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown hung")
	}
}

func TestServerRequiresEngine(t *testing.T) {
	if _, err := NewServer(ServerConfig{}); err == nil {
		t.Error("engine-less server constructed")
	}
}
