package engine

import (
	"context"
	"fmt"
	"sync"
	"time"

	"relatch/internal/obs"
	"relatch/internal/queue"
)

// CollectorConfig configures the background gauge sampler.
type CollectorConfig struct {
	// Engine is sampled for worker-pool and cache gauges. Required.
	Engine *Engine
	// Queue, when non-nil, is sampled for depth/lease/retry gauges.
	Queue *queue.Queue
	// Metrics receives the sampled gauges. Required.
	Metrics *obs.Registry
	// Interval between samples (≤ 0 means 1s).
	Interval time.Duration
}

// Collector periodically samples point-in-time state — queue depth,
// leased and retrying jobs, busy workers, resident cache entries — into
// registry gauges, so /metrics reflects load without making scrapes
// walk live data structures. Close stops and joins the sampler.
type Collector struct {
	cfg    CollectorConfig
	cancel context.CancelFunc
	ctx    context.Context
	wg     sync.WaitGroup
}

// NewCollector validates the config, takes an initial sample so gauges
// exist before the first tick, and starts the sampling goroutine.
func NewCollector(cfg CollectorConfig) (*Collector, error) {
	if cfg.Engine == nil || cfg.Metrics == nil {
		return nil, fmt.Errorf("engine: %w: collector needs an engine and a registry", ErrBadConfig)
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	c := &Collector{cfg: cfg}
	c.ctx, c.cancel = context.WithCancel(context.Background())
	c.sample()
	c.wg.Add(1)
	go c.loop()
	return c, nil
}

// loop ticks until Close cancels the context (the join point).
func (c *Collector) loop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-t.C:
			c.sample()
		}
	}
}

// sample records one snapshot of every gauge.
func (c *Collector) sample() {
	m := c.cfg.Metrics
	m.Set("relatch_engine_workers", int64(c.cfg.Engine.Workers()))
	m.Set("relatch_engine_workers_busy", int64(c.cfg.Engine.WorkersBusy()))
	if cache := c.cfg.Engine.Cache(); cache != nil {
		m.Set("relatch_cache_entries", int64(cache.Len()))
	}
	if c.cfg.Queue != nil {
		st := c.cfg.Queue.Stats()
		m.Set("relatch_queue_depth", int64(st.Queued))
		m.Set("relatch_queue_leased", int64(st.Leased))
		m.Set("relatch_queue_retrying", int64(st.Retrying))
		m.Set("relatch_queue_done", int64(st.Done))
		m.Set("relatch_queue_dead", int64(st.Dead))
	}
}

// Close stops the sampler and waits for the goroutine to exit.
// Idempotent and nil-safe.
func (c *Collector) Close() {
	if c == nil {
		return
	}
	c.cancel()
	c.wg.Wait()
}
