package cert

import (
	"fmt"
	"sort"

	"relatch/internal/cell"
	"relatch/internal/netlist"
)

// Shape is a structural fingerprint of a cut cloud: enough to decide
// whether two clouds are isomorphic modulo latch positions (and,
// optionally, gate sizing), but holding no pointers into the live
// circuit — so a snapshot taken before the solve stays unaffected by
// any in-place mutation the pipeline performs afterwards.
type Shape struct {
	// Name is the circuit name the snapshot was taken from.
	Name string
	// Inputs and Outputs are boundary node names in declaration order.
	Inputs  []string
	Outputs []string
	// Nodes maps node name to its structural fingerprint.
	Nodes map[string]ShapeNode
}

// ShapeNode is one node's structural fingerprint.
type ShapeNode struct {
	Kind netlist.NodeKind
	// Flop is the master latch index for boundary nodes, -1 for gates.
	Flop int
	// CellName and Func identify the bound cell for gates; Func alone is
	// compared under Config.AllowResizing.
	CellName string
	Func     cell.Function
	// Fanin lists driver names in pin order.
	Fanin []string
	// Pos is the node's source position, carried for diagnostics.
	Pos netlist.Pos
}

// Snapshot fingerprints a circuit. Take it before handing the circuit to
// the solver; Run's structure check compares it against the circuit that
// comes back.
func Snapshot(c *netlist.Circuit) *Shape {
	if c == nil {
		return nil
	}
	sh := &Shape{Name: c.Name, Nodes: make(map[string]ShapeNode, len(c.Nodes))}
	for _, n := range c.Inputs {
		sh.Inputs = append(sh.Inputs, n.Name)
	}
	for _, n := range c.Outputs {
		sh.Outputs = append(sh.Outputs, n.Name)
	}
	for _, n := range c.Nodes {
		sn := ShapeNode{Kind: n.Kind, Flop: n.Flop, Pos: n.Pos}
		if n.Cell != nil {
			sn.CellName = n.Cell.Name
			sn.Func = n.Cell.Func
		}
		sn.Fanin = make([]string, len(n.Fanin))
		for i, f := range n.Fanin {
			if f != nil {
				sn.Fanin[i] = f.Name
			}
		}
		sh.Nodes[n.Name] = sn
	}
	return sh
}

// checkStructure compares the retimed circuit against the pre-solve
// snapshot: same node set, same kinds, same cell bindings (by name, or
// by logic function under AllowResizing), same fanin wiring in pin
// order, same boundary lists. Retiming moves slave latches along edges;
// it never touches the combinational cloud, so any divergence is a
// corruption of the output.
func checkStructure(orig *Shape, retimed *netlist.Circuit, cfg Config) []Finding {
	var fs []Finding
	add := func(node string, pos netlist.Pos, format string, args ...any) {
		fs = append(fs, Finding{Check: "structure", Code: CodeStructure,
			Message: fmt.Sprintf(format, args...), Node: node, Pos: pos})
	}

	got := Snapshot(retimed)
	if !equalStrings(orig.Inputs, got.Inputs) {
		add("", netlist.Pos{}, "input boundary changed: had %d inputs %v, now %d %v",
			len(orig.Inputs), truncNames(orig.Inputs), len(got.Inputs), truncNames(got.Inputs))
	}
	if !equalStrings(orig.Outputs, got.Outputs) {
		add("", netlist.Pos{}, "output boundary changed: had %d outputs %v, now %d %v",
			len(orig.Outputs), truncNames(orig.Outputs), len(got.Outputs), truncNames(got.Outputs))
	}

	names := make([]string, 0, len(orig.Nodes))
	for name := range orig.Nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		on := orig.Nodes[name]
		gn, ok := got.Nodes[name]
		if !ok {
			add(name, on.Pos, "%s dropped from the retimed circuit", on.Kind)
			continue
		}
		if gn.Kind != on.Kind {
			add(name, gn.Pos, "kind changed from %s to %s", on.Kind, gn.Kind)
			continue
		}
		if gn.Flop != on.Flop {
			add(name, gn.Pos, "master latch index changed from %d to %d", on.Flop, gn.Flop)
		}
		if on.Kind == netlist.KindGate {
			switch {
			case cfg.AllowResizing && gn.Func != on.Func:
				add(name, gn.Pos, "logic function changed from %s to %s", on.Func, gn.Func)
			case !cfg.AllowResizing && gn.CellName != on.CellName:
				add(name, gn.Pos, "cell changed from %s to %s", on.CellName, gn.CellName)
			}
		}
		if !equalStrings(on.Fanin, gn.Fanin) {
			add(name, gn.Pos, "fanin rewired from %v to %v", truncNames(on.Fanin), truncNames(gn.Fanin))
		}
	}
	extra := make([]string, 0)
	for name := range got.Nodes {
		if _, ok := orig.Nodes[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		gn := got.Nodes[name]
		add(name, gn.Pos, "%s added to the retimed circuit", gn.Kind)
	}
	// Duplicated gates cannot hide behind the name map: a duplicate
	// name is rejected by the builder, and a duplicate under a fresh
	// name surfaces as an added node above. A count mismatch with equal
	// name sets means aliased nodes, which is worth its own line.
	if len(fs) == 0 && len(retimed.Nodes) != len(orig.Nodes) {
		add("", netlist.Pos{}, "node count changed from %d to %d with identical name sets (aliased nodes)",
			len(orig.Nodes), len(retimed.Nodes))
	}
	return fs
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// truncNames keeps messages bounded on wide-fanin or big-boundary diffs.
func truncNames(names []string) []string {
	const cap = 8
	if len(names) <= cap {
		return names
	}
	out := make([]string, cap+1)
	copy(out, names[:cap])
	out[cap] = fmt.Sprintf("... %d more", len(names)-cap)
	return out
}
