package cert

import (
	"fmt"
	"math"
	"sort"

	"relatch/internal/cell"
	"relatch/internal/netlist"
	"relatch/internal/sta"
)

// checkLabels reconstructs retiming labels from the placement and
// verifies Leiserson-Saxe legality, independently of Placement.Validate
// and rgraph (own topological pass, own fanout derivation).
//
// Let L(v) be the number of slave latches crossed on an input→v path.
// In the cut-cloud formulation the initial weights are w=1 on the
// host→input edges and 0 elsewhere, with r(host)=0, so the retimed
// weights are w_r(host→in) = 1 + r(in) = L(in) and w_r(u→v) = r(v) −
// r(u) = lat(u,v), i.e. L(v) = L(u) + lat(u,v) is forced on *every*
// edge and r(v) = L(v) − 1. Labels therefore exist iff L is
// path-independent (code label-inference); they are legal iff L(v) ∈
// {0, 1}, i.e. r(v) ∈ {−1, 0}, and every placement entry names a real
// input/edge (label-legality); and the boundary is pinned iff every
// output has L = 1 — equivalently r(output) = 0 and the weight of every
// host cycle is preserved (label-pinning). Non-negativity w_r(e) ≥ 0
// holds by construction once L is consistent, since w_r(e) is a latch
// count.
func checkLabels(c *netlist.Circuit, p *netlist.Placement) ([]Finding, error) {
	var fs []Finding
	add := func(code string, n *netlist.Node, format string, args ...any) {
		f := Finding{Check: "labels", Code: code, Message: fmt.Sprintf(format, args...)}
		if n != nil {
			f.Node = n.Name
			f.Pos = n.Pos
		}
		fs = append(fs, f)
	}

	// Placement domain: entries must name real inputs and real edges.
	inputSet := make(map[int]bool, len(c.Inputs))
	for _, in := range c.Inputs {
		inputSet[in.ID] = true
	}
	edgeSet := make(map[netlist.Edge]bool)
	fanout := make([][]int, len(c.Nodes))
	indeg := make([]int, len(c.Nodes))
	for _, n := range c.Nodes {
		indeg[n.ID] = len(n.Fanin)
		for _, f := range n.Fanin {
			if f == nil {
				return nil, fmt.Errorf("node %q has a nil fanin", n.Name)
			}
			edgeSet[netlist.Edge{From: f.ID, To: n.ID}] = true
			fanout[f.ID] = append(fanout[f.ID], n.ID)
		}
	}
	for _, id := range sortedTrueKeys(p.AtInput) {
		if id < 0 || id >= len(c.Nodes) || !inputSet[id] {
			add(CodeLabelLegality, nodeAt(c, id), "slave latch recorded at node %d, which is not a cloud input", id)
		}
	}
	onEdges := make([]netlist.Edge, 0, len(p.OnEdge))
	for e, v := range p.OnEdge {
		if v {
			onEdges = append(onEdges, e)
		}
	}
	sort.Slice(onEdges, func(i, j int) bool {
		if onEdges[i].From != onEdges[j].From {
			return onEdges[i].From < onEdges[j].From
		}
		return onEdges[i].To < onEdges[j].To
	})
	for _, e := range onEdges {
		if !edgeSet[e] {
			add(CodeLabelLegality, nodeAt(c, e.To), "slave latch recorded on edge %v, which does not exist in the circuit", e)
		}
	}

	// Own Kahn pass (the circuit's cached topo may be stale after
	// in-place edits; a certifier must not inherit that trust).
	order := make([]int, 0, len(c.Nodes))
	queue := make([]int, 0, len(c.Nodes))
	deg := make([]int, len(c.Nodes))
	copy(deg, indeg)
	for _, n := range c.Nodes {
		if deg[n.ID] == 0 {
			queue = append(queue, n.ID)
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, s := range fanout[id] {
			deg[s]--
			if deg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != len(c.Nodes) {
		return nil, fmt.Errorf("combinational cycle in the retimed circuit")
	}

	const unset = -1
	L := make([]int, len(c.Nodes))
	for i := range L {
		L[i] = unset
	}
	lat := func(u, v int) int {
		if p.OnEdge[netlist.Edge{From: u, To: v}] {
			return 1
		}
		return 0
	}
	for _, id := range order {
		n := c.Nodes[id]
		if n.Kind == netlist.KindInput {
			L[id] = 0
			if p.AtInput[id] {
				L[id] = 1
			}
			continue
		}
		lo, hi := math.MaxInt, math.MinInt
		for _, f := range n.Fanin {
			if L[f.ID] == unset {
				continue
			}
			cand := L[f.ID] + lat(f.ID, id)
			lo = min(lo, cand)
			hi = max(hi, cand)
		}
		if hi == math.MinInt {
			continue // unreachable from any input; outputs flagged below
		}
		if lo != hi {
			add(CodeLabelInference, n,
				"input paths cross between %d and %d slave latches; no retiming labels satisfy w_r(e) = w(e) + r(v) - r(u) on all edges", lo, hi)
		}
		L[id] = lo
	}
	for _, id := range order {
		n := c.Nodes[id]
		if L[id] != unset && (L[id] < 0 || L[id] > 1) {
			add(CodeLabelLegality, n, "inferred label r = %d outside the legal range {-1, 0}", L[id]-1)
		}
	}
	for _, o := range c.Outputs {
		switch {
		case L[o.ID] == unset:
			add(CodeLabelPinning, o, "output unreachable from any cloud input; its label cannot be pinned")
		case L[o.ID] != 1:
			add(CodeLabelPinning, o,
				"paths to this output cross %d slave latches, want exactly 1 (r pinned to 0 on the boundary; host cycle weight must be preserved)", L[o.ID])
		}
	}
	return fs, nil
}

// checkEDL re-derives error-detecting status from scratch: a fresh
// static-timing pass over the retimed circuit, latch-aware arrivals
// under the certified placement, and a comparison of the claimed ED set
// against the recompute and against the resiliency window.
func checkEDL(s Subject, cfg Config) ([]Finding, error) {
	var fs []Finding
	add := func(code string, n *netlist.Node, format string, args ...any) {
		f := Finding{Check: "edl", Code: code, Message: fmt.Sprintf(format, args...)}
		if n != nil {
			f.Node = n.Name
			f.Pos = n.Pos
		}
		fs = append(fs, f)
	}

	opts := sta.DefaultOptions(s.Retimed.Lib)
	if s.StaOptions != nil {
		opts = *s.StaOptions
	}
	t, err := sta.AnalyzeChecked(s.Retimed, opts)
	if err != nil {
		return nil, err
	}
	la := sta.AnalyzeLatched(t, s.Placement, s.Scheme, s.Latch)
	recomputed := la.EDMasters()
	claimed := trueSet(s.EDMasters)
	period := s.Scheme.Period()

	isOutput := make(map[int]bool, len(s.Retimed.Outputs))
	for _, o := range s.Retimed.Outputs {
		isOutput[o.ID] = true
	}
	for _, id := range sortedTrueKeys(claimed) {
		if !isOutput[id] {
			add(CodeEDLMismatch, nodeAt(s.Retimed, id),
				"claimed error-detecting node %d is not a master endpoint", id)
			continue
		}
		o := s.Retimed.Nodes[id]
		if !recomputed[id] && !cfg.EDSuperset {
			add(CodeEDLMismatch, o,
				"claimed error-detecting, but recomputed arrival %.4g does not exceed the period %.4g", la.EndpointArrival(o), period)
		}
	}
	for _, id := range sortedTrueKeys(recomputed) {
		if !claimed[id] {
			o := s.Retimed.Nodes[id]
			add(CodeEDLMismatch, o,
				"recomputed arrival %.4g exceeds the period %.4g, but the master is not claimed error-detecting", la.EndpointArrival(o), period)
		}
	}
	for _, o := range la.WindowMasters() {
		if !claimed[o.ID] {
			add(CodeEDLWindow, o,
				"arrival %.4g falls inside the resiliency window (%.4g, %.4g] without error detection", la.EndpointArrival(o), period, s.Scheme.MaxStageDelay())
		}
	}
	for _, id := range sortedTrueKeys(s.Reclaimed) {
		if !cfg.StrictReclaim {
			break
		}
		if recomputed[id] && isOutput[id] {
			o := s.Retimed.Nodes[id]
			add(CodeEDLReclaim, o,
				"solver claimed the -c reclaim reward for this master, but ground-truth arrival %.4g makes it error-detecting", la.EndpointArrival(o))
		}
	}
	return fs, nil
}

// checkCost recounts the claimed accounting figures. Counts are
// recounted from the placement and circuit; the claimed sequential area
// is re-derived from the *claimed* counts through cell.SeqAreaOf, so an
// arithmetic error surfaces as cost even when the counts themselves are
// consistent (and vice versa).
func checkCost(s Subject, cfg Config) []Finding {
	var fs []Finding
	add := func(code, format string, args ...any) {
		fs = append(fs, Finding{Check: "cost", Code: code, Message: fmt.Sprintf(format, args...)})
	}

	if got := s.Placement.SlaveCount(); s.SlaveCount != got {
		add(CodeCount, "claimed %d slave latches, placement recount says %d", s.SlaveCount, got)
	}
	if got := s.Retimed.FlopCount(); s.MasterCount != got {
		add(CodeCount, "claimed %d master latches, circuit recount says %d", s.MasterCount, got)
	}
	if got := len(trueSet(s.EDMasters)); s.EDCount != got {
		add(CodeCount, "claimed %d error-detecting masters, claimed set holds %d", s.EDCount, got)
	}

	if math.IsNaN(s.Objective) || math.IsInf(s.Objective, 0) {
		add(CodeCost, "claimed objective %g is not finite", s.Objective)
	}
	want := cell.SeqAreaOf(s.Retimed.Lib, s.EDLCost, s.SlaveCount, s.MasterCount, s.EDCount)
	eps := cfg.epsilon()
	if math.IsNaN(s.SeqArea) || math.IsInf(s.SeqArea, 0) ||
		math.Abs(s.SeqArea-want) > eps*math.Max(1, math.Abs(want)) {
		add(CodeCost, "claimed sequential area %.6g differs from re-derived %.6g (c=%g, slaves=%d, masters=%d, ed=%d)",
			s.SeqArea, want, s.EDLCost, s.SlaveCount, s.MasterCount, s.EDCount)
	}
	return fs
}

// sortedTrueKeys returns the keys mapped to true, ascending, for
// deterministic finding order.
func sortedTrueKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for id, v := range m {
		if v {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// nodeAt returns the node with the given ID when it exists, else nil
// (findings about out-of-range IDs carry no node).
func nodeAt(c *netlist.Circuit, id int) *netlist.Node {
	if id >= 0 && id < len(c.Nodes) {
		return c.Nodes[id]
	}
	return nil
}
