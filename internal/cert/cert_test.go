package cert

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"relatch/internal/cell"
	"relatch/internal/fig4"
	"relatch/internal/netlist"
	"relatch/internal/sta"
)

// subjectFor builds a fully consistent fig4 subject for the given
// placement and claimed ED set; tests then corrupt individual claims.
func subjectFor(t *testing.T, c *netlist.Circuit, p *netlist.Placement, ed map[int]bool) Subject {
	t.Helper()
	opts := sta.DefaultOptions(c.Lib)
	opts.Model = sta.ModelFixed
	opts.FixedDelays = fig4.FixedDelays(c)
	opts.LaunchDelay = 0
	edCount := 0
	for _, v := range ed {
		if v {
			edCount++
		}
	}
	return Subject{
		Original:    Snapshot(c),
		Retimed:     c,
		Placement:   p,
		Scheme:      fig4.Scheme(),
		Latch:       fig4.ZeroLatch(),
		StaOptions:  &opts,
		EDMasters:   ed,
		SlaveCount:  p.SlaveCount(),
		MasterCount: c.FlopCount(),
		EDCount:     edCount,
		SeqArea:     cell.SeqAreaOf(c.Lib, fig4.EDLOverhead, p.SlaveCount(), c.FlopCount(), edCount),
		EDLCost:     fig4.EDLOverhead,
		Approach:    "test",
	}
}

func mustRun(t *testing.T, s Subject, cfg Config) *Certificate {
	t.Helper()
	crt, err := Run(context.Background(), s, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return crt
}

func outID(t *testing.T, c *netlist.Circuit, name string) int {
	t.Helper()
	n, ok := c.Node(name)
	if !ok {
		t.Fatalf("no node %q", name)
	}
	return n.ID
}

// TestCertifyCuts certifies both worked-example placements with their
// paper-stated ED status: Cut1 forces O9 error-detecting, Cut2 keeps it
// normal. Both must come back clean.
func TestCertifyCuts(t *testing.T) {
	c := fig4.MustCircuit()
	for _, tc := range []struct {
		name string
		p    *netlist.Placement
		ed   map[int]bool
	}{
		{"cut1", fig4.Cut1(c), map[int]bool{outID(t, c, "O9"): true}},
		{"cut2", fig4.Cut2(c), map[int]bool{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			crt := mustRun(t, subjectFor(t, c, tc.p, tc.ed), Config{})
			if !crt.Certified() {
				t.Fatalf("not certified: %v", crt.Findings)
			}
			if err := crt.Err(); err != nil {
				t.Fatalf("Err() = %v on a clean certificate", err)
			}
			if len(crt.Checks) != 4 {
				t.Fatalf("got %d checks, want 4", len(crt.Checks))
			}
			for _, ck := range crt.Checks {
				if !ck.Passed || ck.Skipped {
					t.Errorf("check %s: passed=%v skipped=%v", ck.Name, ck.Passed, ck.Skipped)
				}
			}
		})
	}
}

func TestStructureFindings(t *testing.T) {
	orig := fig4.MustCircuit()
	shape := Snapshot(orig)

	t.Run("cell-rebound", func(t *testing.T) {
		mutated := orig.Clone()
		g3, _ := mutated.Node("G3")
		g3.Cell = mutated.Lib.MustCell(cell.FuncInv, 1)
		s := subjectFor(t, mutated, fig4.Cut2(mutated), map[int]bool{})
		s.Original = shape
		crt := mustRun(t, s, Config{})
		if !crt.HasCode(CodeStructure) {
			t.Fatalf("want %s finding, got %v", CodeStructure, crt.Findings)
		}
		// A corrupted cloud must not be timed: edl is skipped.
		for _, ck := range crt.Checks {
			if ck.Name == "edl" && !ck.Skipped {
				t.Errorf("edl ran on a structurally corrupted circuit")
			}
		}
	})

	t.Run("fanin-rewired", func(t *testing.T) {
		mutated := orig.Clone()
		g7, _ := mutated.Node("G7")
		g4, _ := mutated.Node("G4")
		g7.Fanin[0] = g4 // was G5
		s := subjectFor(t, mutated, fig4.Cut2(mutated), map[int]bool{})
		s.Original = shape
		crt := mustRun(t, s, Config{})
		if !crt.HasCode(CodeStructure) {
			t.Fatalf("want %s finding, got %v", CodeStructure, crt.Findings)
		}
	})

	t.Run("resizing-tolerated", func(t *testing.T) {
		mutated := orig.Clone()
		g5, _ := mutated.Node("G5")
		g5.Cell = mutated.Lib.MustCell(cell.FuncInv, 2) // same function, bigger drive
		s := subjectFor(t, mutated, fig4.Cut2(mutated), map[int]bool{})
		s.Original = shape
		if crt := mustRun(t, s, Config{}); !crt.HasCode(CodeStructure) {
			t.Fatalf("strict mode should flag the rebound cell")
		}
		if crt := mustRun(t, s, Config{AllowResizing: true}); crt.HasCode(CodeStructure) {
			t.Fatalf("AllowResizing should accept a same-function resize: %v", crt.Findings)
		}
	})

	t.Run("nil-snapshot-skips", func(t *testing.T) {
		s := subjectFor(t, orig, fig4.Cut2(orig), map[int]bool{})
		s.Original = nil
		crt := mustRun(t, s, Config{})
		if !crt.Certified() {
			t.Fatalf("findings without a snapshot: %v", crt.Findings)
		}
		if crt.Checks[0].Name != "structure" || !crt.Checks[0].Skipped {
			t.Fatalf("structure should be recorded as skipped: %+v", crt.Checks[0])
		}
	})
}

func TestLabelFindings(t *testing.T) {
	c := fig4.MustCircuit()

	t.Run("inference", func(t *testing.T) {
		// Cut1 without the G3→G6 latch: the I1→G6→G7→G8 path crosses no
		// latch while the G4 path crosses one — label off-by-one.
		p := fig4.Cut1(c)
		g3, _ := c.Node("G3")
		g6, _ := c.Node("G6")
		delete(p.OnEdge, netlist.Edge{From: g3.ID, To: g6.ID})
		s := subjectFor(t, c, p, map[int]bool{outID(t, c, "O9"): true})
		crt := mustRun(t, s, Config{})
		if !crt.HasCode(CodeLabelInference) {
			t.Fatalf("want %s finding, got %v", CodeLabelInference, crt.Findings)
		}
	})

	t.Run("legality-domain", func(t *testing.T) {
		p := fig4.Cut2(c)
		g3, _ := c.Node("G3")
		p.AtInput[g3.ID] = true                                  // not an input
		p.OnEdge[netlist.Edge{From: 0, To: len(c.Nodes)}] = true // no such edge
		s := subjectFor(t, c, p, map[int]bool{})
		crt := mustRun(t, s, Config{})
		if !crt.HasCode(CodeLabelLegality) {
			t.Fatalf("want %s finding, got %v", CodeLabelLegality, crt.Findings)
		}
	})

	t.Run("legality-double-latch", func(t *testing.T) {
		p := fig4.Cut1(c)
		g4, _ := c.Node("G4")
		g8, _ := c.Node("G8")
		p.OnEdge[netlist.Edge{From: g4.ID, To: g8.ID}] = true // second latch on the G4 path
		s := subjectFor(t, c, p, map[int]bool{outID(t, c, "O9"): true})
		crt := mustRun(t, s, Config{})
		if !crt.HasCode(CodeLabelLegality) && !crt.HasCode(CodeLabelInference) {
			t.Fatalf("want a label finding, got %v", crt.Findings)
		}
	})

	t.Run("pinning-empty-placement", func(t *testing.T) {
		s := subjectFor(t, c, netlist.NewPlacement(), map[int]bool{})
		crt := mustRun(t, s, Config{})
		if !crt.HasCode(CodeLabelPinning) {
			t.Fatalf("want %s finding, got %v", CodeLabelPinning, crt.Findings)
		}
		for _, ck := range crt.Checks {
			if ck.Name == "edl" && !ck.Skipped {
				t.Errorf("edl ran under an illegal placement")
			}
		}
	})
}

func TestEDLFindings(t *testing.T) {
	c := fig4.MustCircuit()
	o9 := outID(t, c, "O9")

	t.Run("dropped-flag", func(t *testing.T) {
		// Cut1 makes O9 error-detecting (arrival 12 > Π=10); claiming an
		// empty ED set is the silently-dropped-flag corruption.
		s := subjectFor(t, c, fig4.Cut1(c), map[int]bool{})
		crt := mustRun(t, s, Config{})
		if !crt.HasCode(CodeEDLMismatch) {
			t.Fatalf("want %s finding, got %v", CodeEDLMismatch, crt.Findings)
		}
	})

	t.Run("over-claim", func(t *testing.T) {
		// Cut2 keeps O9 normal (arrival 9 ≤ 10); claiming it ED is an
		// over-claim, tolerated only under EDSuperset.
		s := subjectFor(t, c, fig4.Cut2(c), map[int]bool{o9: true})
		if crt := mustRun(t, s, Config{}); !crt.HasCode(CodeEDLMismatch) {
			t.Fatalf("want %s finding in exact mode", CodeEDLMismatch)
		}
		if crt := mustRun(t, s, Config{EDSuperset: true}); crt.HasCode(CodeEDLMismatch) {
			t.Fatalf("EDSuperset should accept the over-claim: %v", crt.Findings)
		}
	})

	t.Run("window", func(t *testing.T) {
		// O9's Cut1 arrival 12 is inside (Π, Π+φ1] = (10, 12.5]: an
		// unclaimed window master is an edl-window finding too.
		s := subjectFor(t, c, fig4.Cut1(c), map[int]bool{})
		crt := mustRun(t, s, Config{})
		if !crt.HasCode(CodeEDLWindow) {
			t.Fatalf("want %s finding, got %v", CodeEDLWindow, crt.Findings)
		}
	})

	t.Run("non-endpoint-claim", func(t *testing.T) {
		g5, _ := c.Node("G5")
		s := subjectFor(t, c, fig4.Cut2(c), map[int]bool{g5.ID: true})
		crt := mustRun(t, s, Config{})
		if !crt.HasCode(CodeEDLMismatch) {
			t.Fatalf("want %s finding for a non-endpoint claim, got %v", CodeEDLMismatch, crt.Findings)
		}
	})

	t.Run("reclaim", func(t *testing.T) {
		s := subjectFor(t, c, fig4.Cut1(c), map[int]bool{o9: true})
		s.Reclaimed = map[int]bool{o9: true}
		if crt := mustRun(t, s, Config{StrictReclaim: true}); !crt.HasCode(CodeEDLReclaim) {
			t.Fatalf("want %s finding under StrictReclaim", CodeEDLReclaim)
		}
		if crt := mustRun(t, s, Config{}); crt.HasCode(CodeEDLReclaim) {
			t.Fatalf("reclaim optimism should not gate by default")
		}
	})
}

func TestCostFindings(t *testing.T) {
	c := fig4.MustCircuit()
	o9 := outID(t, c, "O9")

	t.Run("slave-count", func(t *testing.T) {
		s := subjectFor(t, c, fig4.Cut1(c), map[int]bool{o9: true})
		s.SlaveCount++
		crt := mustRun(t, s, Config{})
		if !crt.HasCode(CodeCount) {
			t.Fatalf("want %s finding, got %v", CodeCount, crt.Findings)
		}
		// The area was derived from the uncorrupted count, so the
		// accounting identity breaks too.
		if !crt.HasCode(CodeCost) {
			t.Fatalf("want %s finding, got %v", CodeCost, crt.Findings)
		}
	})

	t.Run("ed-count", func(t *testing.T) {
		s := subjectFor(t, c, fig4.Cut1(c), map[int]bool{o9: true})
		s.EDCount = 0
		crt := mustRun(t, s, Config{})
		if !crt.HasCode(CodeCount) {
			t.Fatalf("want %s finding, got %v", CodeCount, crt.Findings)
		}
	})

	t.Run("seq-area", func(t *testing.T) {
		s := subjectFor(t, c, fig4.Cut1(c), map[int]bool{o9: true})
		s.SeqArea *= 1.5
		crt := mustRun(t, s, Config{})
		if !crt.HasCode(CodeCost) {
			t.Fatalf("want %s finding, got %v", CodeCost, crt.Findings)
		}
	})

	t.Run("epsilon-tolerates-rounding", func(t *testing.T) {
		s := subjectFor(t, c, fig4.Cut1(c), map[int]bool{o9: true})
		s.SeqArea += s.SeqArea * 1e-9
		if crt := mustRun(t, s, Config{}); crt.HasCode(CodeCost) {
			t.Fatalf("1e-9 relative drift must pass the default epsilon")
		}
	})
}

func TestRunErrors(t *testing.T) {
	c := fig4.MustCircuit()
	good := subjectFor(t, c, fig4.Cut2(c), map[int]bool{})

	t.Run("nil-circuit", func(t *testing.T) {
		s := good
		s.Retimed = nil
		if _, err := Run(context.Background(), s, Config{}); err == nil {
			t.Fatal("want error for nil circuit")
		}
	})
	t.Run("nil-placement", func(t *testing.T) {
		s := good
		s.Placement = nil
		if _, err := Run(context.Background(), s, Config{}); err == nil {
			t.Fatal("want error for nil placement")
		}
	})
	t.Run("bad-scheme", func(t *testing.T) {
		s := good
		s.Scheme.Phi1 = -1
		if _, err := Run(context.Background(), s, Config{}); err == nil {
			t.Fatal("want error for invalid scheme")
		}
	})
	t.Run("cancelled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := Run(ctx, good, Config{}); !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	})
}

func TestCertificateRendering(t *testing.T) {
	c := fig4.MustCircuit()
	s := subjectFor(t, c, fig4.Cut1(c), map[int]bool{})
	crt := mustRun(t, s, Config{})
	if crt.Certified() {
		t.Fatal("fixture should not certify")
	}
	if !errors.Is(crt.Err(), ErrNotCertified) {
		t.Fatalf("Err() = %v, want ErrNotCertified", crt.Err())
	}

	var text bytes.Buffer
	if err := crt.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"NOT CERTIFIED", "edl-mismatch", "FAIL"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text output missing %q:\n%s", want, text.String())
		}
	}

	var buf bytes.Buffer
	if err := crt.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round Certificate
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if round.Circuit != crt.Circuit || len(round.Findings) != len(crt.Findings) {
		t.Fatalf("round-trip mismatch: %+v vs %+v", round, crt)
	}
}
