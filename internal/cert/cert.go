// Package cert is an independent static certifier for retiming output:
// given the original circuit (as a pre-solve structural snapshot), the
// retimed circuit, the slave-latch placement and the solver's claims
// (error-detecting master set, counts, sequential area), it re-derives
// every claim from scratch and emits a machine-checkable Certificate
// with typed findings.
//
// The point is independence: flow.Certify proves the LP answer optimal
// for the network the solver was *given*, but a bug anywhere in rgraph
// model construction, placement lifting, or EDL assignment would ship a
// wrong circuit under a valid LP certificate. This package never looks
// at the retiming graph or the flow network; it re-checks the output
// against the paper's own definitions:
//
//   - retiming labels: reconstruct r(v) from the placement and verify
//     Leiserson-Saxe legality w_r(e) = w(e) + r(v) − r(u) ≥ 0, cycle
//     weight preservation and I/O pinning (check "labels");
//   - structural equivalence: the retimed combinational cloud is
//     isomorphic to the original modulo latch positions — no gate
//     dropped, duplicated or rewired (check "structure");
//   - EDL soundness: the claimed error-detecting master set matches a
//     from-scratch latch-aware timing recompute, and no non-ED master
//     sits inside the resiliency window (check "edl");
//   - cost accounting: slave/master/EDL counts recounted from the
//     placement, and the claimed sequential area re-derived through
//     cell.SeqAreaOf to within epsilon (check "cost").
//
// Finding codes are stable identifiers (structure, label-inference,
// label-legality, label-pinning, edl-mismatch, edl-window, edl-reclaim,
// count, cost) so the fault-injection harness and CI can assert on them.
package cert

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"relatch/internal/cell"
	"relatch/internal/clocking"
	"relatch/internal/netlist"
	"relatch/internal/obs"
	"relatch/internal/sta"
)

// Finding codes. Each code belongs to exactly one check.
const (
	// CodeStructure marks a structural divergence between the original
	// and retimed clouds (gate dropped, added, rewired, or rebound).
	CodeStructure = "structure"
	// CodeLabelInference marks a placement from which no consistent
	// retiming labels can be reconstructed (path latch counts disagree).
	CodeLabelInference = "label-inference"
	// CodeLabelLegality marks labels outside the legal {-1, 0} range or
	// placement entries naming nonexistent inputs/edges.
	CodeLabelLegality = "label-legality"
	// CodeLabelPinning marks an I/O pinning violation: a cloud output
	// whose paths do not cross exactly one slave latch (r(output) ≠ 0).
	CodeLabelPinning = "label-pinning"
	// CodeEDLMismatch marks a claimed error-detecting set that differs
	// from the from-scratch latch-aware recompute.
	CodeEDLMismatch = "edl-mismatch"
	// CodeEDLWindow marks a master whose recomputed arrival falls inside
	// the resiliency window without being claimed error-detecting.
	CodeEDLWindow = "edl-window"
	// CodeEDLReclaim marks a master the solver reclaimed (pseudo-node
	// reward fired) that ground-truth timing makes error-detecting.
	CodeEDLReclaim = "edl-reclaim"
	// CodeCount marks a claimed slave/master/EDL count that disagrees
	// with a recount from the placement and circuit.
	CodeCount = "count"
	// CodeCost marks a claimed objective/area outside epsilon of the
	// re-derived value, or a non-finite claim.
	CodeCost = "cost"
)

// Finding is one certification failure.
type Finding struct {
	// Check names the check that produced the finding ("structure",
	// "labels", "edl", "cost").
	Check string `json:"check"`
	// Code is the stable finding code (see the Code constants).
	Code string `json:"code"`
	// Message is the human-readable description.
	Message string `json:"message"`
	// Node names the offending node; empty for circuit-level findings.
	Node string `json:"node,omitempty"`
	// Pos is the node's source position when known.
	Pos netlist.Pos `json:"pos"`
}

func (f Finding) String() string {
	loc := f.Pos.String()
	if loc == "" {
		loc = "-"
	}
	if f.Node != "" {
		return fmt.Sprintf("%s: %s: %s [%s] (%s)", loc, f.Check, f.Message, f.Code, f.Node)
	}
	return fmt.Sprintf("%s: %s: %s [%s]", loc, f.Check, f.Message, f.Code)
}

// CheckResult summarizes one check of a run.
type CheckResult struct {
	// Name is the check name ("structure", "labels", "edl", "cost").
	Name string `json:"name"`
	// Passed is true when the check ran and produced no findings.
	Passed bool `json:"passed"`
	// Skipped is true when the check did not run — either its input was
	// not supplied (no original snapshot) or a prerequisite check failed
	// (EDL timing is meaningless under an illegal placement).
	Skipped bool `json:"skipped,omitempty"`
	// Findings counts the findings the check produced.
	Findings int `json:"findings"`
}

// Certificate is the outcome of a certification run.
type Certificate struct {
	// Circuit is the certified circuit's name.
	Circuit string `json:"circuit"`
	// Approach records the retiming approach under certification, when
	// the caller supplied one (informational).
	Approach string `json:"approach,omitempty"`
	// Checks lists every check in execution order.
	Checks []CheckResult `json:"checks"`
	// Findings lists every finding in check order.
	Findings []Finding `json:"findings"`

	// Slaves, Masters and ED are the certifier's own recounts (not the
	// subject's claims).
	Slaves  int `json:"slaves"`
	Masters int `json:"masters"`
	ED      int `json:"ed"`
	// SeqArea echoes the claimed sequential area the cost check judged.
	SeqArea float64 `json:"seq_area"`
}

// ErrNotCertified is the sentinel wrapped by Certificate.Err when the
// run produced findings; callers branch on it with errors.Is (cmd/rar
// maps it to exit code 5).
var ErrNotCertified = errors.New("cert: not certified")

// Err returns nil when the certificate is clean and an error wrapping
// ErrNotCertified otherwise.
func (c *Certificate) Err() error {
	if len(c.Findings) == 0 {
		return nil
	}
	return fmt.Errorf("%w: %d finding(s) in %s", ErrNotCertified, len(c.Findings), c.Circuit)
}

// Certified reports whether the run produced no findings.
func (c *Certificate) Certified() bool { return len(c.Findings) == 0 }

// HasCode reports whether any finding carries the given code.
func (c *Certificate) HasCode(code string) bool {
	for _, f := range c.Findings {
		if f.Code == code {
			return true
		}
	}
	return false
}

// WriteText renders the certificate for terminals.
func (c *Certificate) WriteText(w io.Writer) error {
	verdict := "CERTIFIED"
	if !c.Certified() {
		verdict = "NOT CERTIFIED"
	}
	name := c.Circuit
	if c.Approach != "" {
		name += " [" + c.Approach + "]"
	}
	if _, err := fmt.Fprintf(w, "certificate: %s: %s (slaves=%d masters=%d ed=%d seq-area=%.4g)\n",
		name, verdict, c.Slaves, c.Masters, c.ED, c.SeqArea); err != nil {
		return err
	}
	for _, ck := range c.Checks {
		mark := "ok  "
		switch {
		case ck.Skipped:
			mark = "skip"
		case !ck.Passed:
			mark = "FAIL"
		}
		if _, err := fmt.Fprintf(w, "  %s %-9s (%d finding(s))\n", mark, ck.Name, ck.Findings); err != nil {
			return err
		}
	}
	for _, f := range c.Findings {
		if _, err := fmt.Fprintf(w, "  %v\n", f); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the certificate as indented JSON.
func (c *Certificate) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// Subject bundles everything a certification run inspects: the retimed
// circuit with its placement, the solver's claims, and the timing
// context to re-derive EDL status under.
type Subject struct {
	// Original is the pre-solve structural snapshot; nil skips the
	// structure check (the caller kept no snapshot).
	Original *Shape
	// Retimed is the circuit the placement applies to. For the core
	// pipeline this is the input circuit itself (retiming moves latches,
	// not gates); for the virtual-library flows it is the sized clone.
	Retimed *netlist.Circuit
	// Placement is the slave-latch placement under certification.
	Placement *netlist.Placement

	// Scheme, Latch and StaOptions define the timing context for the
	// EDL recompute; nil StaOptions derives sta.DefaultOptions from the
	// retimed circuit's library.
	Scheme     clocking.Scheme
	Latch      cell.Latch
	StaOptions *sta.Options

	// EDMasters is the claimed error-detecting master set (output node
	// IDs; false entries are ignored).
	EDMasters map[int]bool
	// Reclaimed maps target output IDs the solver claimed the −c reward
	// for (rgraph.Solution.PseudoFired): masters the model promised
	// would be non-error-detecting.
	Reclaimed map[int]bool

	// SlaveCount, MasterCount, EDCount and SeqArea are the claimed
	// accounting figures; EDLCost is the overhead factor c they were
	// computed under.
	SlaveCount  int
	MasterCount int
	EDCount     int
	SeqArea     float64
	EDLCost     float64
	// Objective is the solver's claimed objective; it is only sanity
	// checked for finiteness (the LP objective carries a model-internal
	// constant offset, so its value cannot be re-derived output-side).
	Objective float64

	// Approach is an informational tag echoed into the certificate.
	Approach string
}

// Config tunes a run.
type Config struct {
	// EDSuperset accepts a claimed error-detecting set that is a strict
	// superset of the recompute. The decoupled virtual-library flows
	// without post-swap legitimately over-provision EDL; claiming too
	// few is always a finding.
	EDSuperset bool
	// AllowResizing compares gates by logic function instead of by cell
	// name, accepting drive-strength changes from the size-only
	// incremental compile (vlib, ReclaimBySizing).
	AllowResizing bool
	// StrictReclaim turns an optimistically reclaimed master — the
	// solver claimed the −c pseudo-node reward, ground-truth timing
	// makes the master error-detecting anyway — into an edl-reclaim
	// finding. Off by default: the cut set g(t) of Eq. (8–9) is a
	// per-edge first-order model (a shared physical latch launches from
	// its *worst* fanout, the cut membership test only needs *one*
	// conforming fanout), so near the period boundary the reward can
	// legitimately fire without the master escaping the window. The
	// pipeline re-settles ED status by ground truth regardless, so the
	// optimism costs objective accuracy, never output correctness.
	StrictReclaim bool
	// Epsilon is the relative tolerance of the cost check; 0 means the
	// default 1e-6.
	Epsilon float64
}

func (cfg Config) epsilon() float64 {
	if cfg.Epsilon > 0 {
		return cfg.Epsilon
	}
	return 1e-6
}

// Run certifies the subject. It returns an error only when certification
// itself could not run (nil inputs, invalid scheme, cancelled context);
// a completed run with findings returns a nil error and a certificate
// whose Err() reports ErrNotCertified.
func Run(ctx context.Context, s Subject, cfg Config) (*Certificate, error) {
	if s.Retimed == nil {
		return nil, fmt.Errorf("cert: nil retimed circuit")
	}
	if s.Retimed.Lib == nil {
		return nil, fmt.Errorf("cert: circuit %q has no library", s.Retimed.Name)
	}
	if s.Placement == nil {
		return nil, fmt.Errorf("cert: nil placement")
	}
	if err := s.Scheme.Validate(); err != nil {
		return nil, fmt.Errorf("cert: %w", err)
	}
	crt := &Certificate{Circuit: s.Retimed.Name, Approach: s.Approach, SeqArea: s.SeqArea,
		Findings: []Finding{}}

	sp, ctx := obs.StartSpan(ctx, "cert.run")
	defer func() {
		sp.Add("findings", int64(len(crt.Findings)))
		sp.End()
	}()
	sp.Attr("approach", s.Approach)
	record := func(name string, fs []Finding) {
		crt.Checks = append(crt.Checks, CheckResult{
			Name: name, Passed: len(fs) == 0, Findings: len(fs)})
		crt.Findings = append(crt.Findings, fs...)
		sp.Add("checks_run", 1)
	}
	skip := func(name string) {
		crt.Checks = append(crt.Checks, CheckResult{Name: name, Skipped: true})
		sp.Add("checks_skipped", 1)
	}
	guard := func() error {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("cert: %s: %w", s.Retimed.Name, err)
		}
		return nil
	}

	// Structure first: everything downstream interprets the retimed
	// circuit, so a stolen or rewired gate must surface before timing
	// claims are judged on the corrupted cloud.
	structureOK := true
	if s.Original == nil {
		skip("structure")
	} else {
		fs := checkStructure(s.Original, s.Retimed, cfg)
		record("structure", fs)
		structureOK = len(fs) == 0
	}
	if err := guard(); err != nil {
		return nil, err
	}

	labelFs, err := checkLabels(s.Retimed, s.Placement)
	if err != nil {
		return nil, fmt.Errorf("cert: %s: %w", s.Retimed.Name, err)
	}
	record("labels", labelFs)
	labelsOK := len(labelFs) == 0
	if err := guard(); err != nil {
		return nil, err
	}

	// EDL soundness needs a structurally intact circuit and a legal
	// placement: latch-aware arrivals under an illegal placement (or on
	// a rewired cloud) prove nothing about the solver's claims.
	if structureOK && labelsOK {
		fs, err := checkEDL(s, cfg)
		if err != nil {
			return nil, fmt.Errorf("cert: %s: %w", s.Retimed.Name, err)
		}
		record("edl", fs)
	} else {
		skip("edl")
	}
	if err := guard(); err != nil {
		return nil, err
	}

	record("cost", checkCost(s, cfg))

	crt.Slaves = s.Placement.SlaveCount()
	crt.Masters = s.Retimed.FlopCount()
	crt.ED = len(trueSet(s.EDMasters))
	return crt, nil
}

// trueSet normalizes a claim map to its true entries (callers routinely
// carry false entries after latch-type swaps).
func trueSet(m map[int]bool) map[int]bool {
	out := make(map[int]bool, len(m))
	for id, v := range m {
		if v {
			out[id] = true
		}
	}
	return out
}
