package verilog

// CrasherCorpus holds inputs that exercised pathological parser states.
// It is exported so downstream fuzz targets (the lint fuzzer in
// internal/lint) can seed from the same regression corpus: any input the
// parser accepts must also pass through the linter without panicking.
var CrasherCorpus = []string{
	"",
	"module",
	"module ;",
	"module m",
	"module m(",
	"module m(a",
	"module m(a,);",
	"module m(a); input a;",
	"module m(a); input a; endmodule extra",
	"module m(y); output y; endmodule",
	"module m(y); output y; nand g1(y; endmodule",
	"module m(y); output y; nand g1; endmodule",
	"module m(y); output y; nand (y, y); endmodule",
	"module m(a, y); input a; output y; dff r1(clk, y, a, a); endmodule",
	"/*",
	"// only a comment",
	"module m(a, y); input a; output y; nand g1(y, a, a) endmodule",
	"module m(a, y); input a; output y; wire w; nand g1(w, a, w); nand g2(y, w, a); endmodule",
}
