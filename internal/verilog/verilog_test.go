package verilog

import (
	"strings"
	"testing"

	"relatch/internal/cell"
	"relatch/internal/netlist"
)

// s27 is the smallest ISCAS89 benchmark, in the distribution's format.
const s27 = `
// ISCAS89 s27
module s27(CK,G0,G1,G17,G2,G3);
input CK,G0,G1,G2,G3;
output G17;

  wire G5,G10,G6,G11,G7,G13,G14,G8,G15,G12,G16,G9;

  dff DFF_0(CK,G5,G10);
  dff DFF_1(CK,G6,G11);
  dff DFF_2(CK,G7,G13);
  not NOT_0(G14,G0);
  not NOT_1(G17,G11);
  and AND2_0(G8,G14,G6);
  or OR2_0(G15,G12,G8);
  or OR2_1(G16,G3,G8);
  nand NAND2_0(G10,G14,G11);
  nor NOR2_0(G9,G16,G15);
  nor NOR2_1(G11,G5,G9);
  nor NOR2_2(G12,G1,G7);
  nor NOR2_3(G13,G2,G12);
endmodule
`

func TestParseS27(t *testing.T) {
	lib := cell.Default(1.0)
	c, err := ParseString(s27, lib)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "s27" {
		t.Errorf("name = %q", c.Name)
	}
	// CK is a clock, not a data PI.
	if got := len(c.PIs); got != 4 {
		t.Errorf("PIs = %d, want 4", got)
	}
	if got := len(c.POs); got != 1 {
		t.Errorf("POs = %d, want 1", got)
	}
	if got := len(c.FFs); got != 3 {
		t.Errorf("FFs = %d, want 3", got)
	}
	// 10 primitive gates, all with direct library cells.
	gates := 0
	for _, n := range c.Nodes {
		if n.Kind == netlist.SeqGate {
			gates++
		}
	}
	if gates != 10 {
		t.Errorf("gates = %d, want 10", gates)
	}
}

func TestParsedCircuitCuts(t *testing.T) {
	lib := cell.Default(1.0)
	c, err := ParseString(s27, lib)
	if err != nil {
		t.Fatal(err)
	}
	cut, err := c.Cut()
	if err != nil {
		t.Fatal(err)
	}
	if err := cut.Validate(); err != nil {
		t.Fatal(err)
	}
	// 3 flops + 4 registered PIs = 7 cloud inputs.
	if got := len(cut.Inputs); got != 7 {
		t.Errorf("cut inputs = %d, want 7", got)
	}
	if err := netlist.InitialPlacement(cut).Validate(cut); err != nil {
		t.Error(err)
	}
}

func TestWideGateDecomposition(t *testing.T) {
	lib := cell.Default(1.0)
	src := `
module wide(CK,a,b,c,d,e,y);
input CK,a,b,c,d,e;
output y;
  and A1(y,a,b,c,d,e);
endmodule
`
	c, err := ParseString(src, lib)
	if err != nil {
		t.Fatal(err)
	}
	// A 5-input AND becomes a tree of AND2/AND3 cells.
	for _, n := range c.Nodes {
		if n.Kind == netlist.SeqGate && n.Cell.Func.Arity() > 3 {
			t.Errorf("gate %s kept arity %d", n.Name, n.Cell.Func.Arity())
		}
	}
}

func TestExactNandArities(t *testing.T) {
	lib := cell.Default(1.0)
	src := `
module m(CK,a,b,c,d,y);
input CK,a,b,c,d;
output y;
  nand N1(y,a,b,c,d);
endmodule
`
	c, err := ParseString(src, lib)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range c.Nodes {
		if n.Kind == netlist.SeqGate && n.Cell.Func == cell.FuncNand4 {
			found = true
		}
	}
	if !found {
		t.Error("4-input nand should map to NAND4 directly")
	}
}

func TestParseErrors(t *testing.T) {
	lib := cell.Default(1.0)
	cases := map[string]string{
		"no module":    `foo(a);`,
		"unterminated": `module m(a); input a;`,
		"unknown prim": "module m(CK,a,y);\ninput CK,a;\noutput y;\n  frob F(y,a);\nendmodule",
		"undriven out": "module m(CK,a,y);\ninput CK,a;\noutput y;\n  not N(x,a);\nendmodule",
		"double drive": "module m(CK,a,y);\ninput CK,a;\noutput y;\n  not N1(y,a);\n  not N2(y,a);\nendmodule",
		"comb cycle":   "module m(CK,a,y);\ninput CK,a;\noutput y;\n  not N1(y,x);\n  not N2(x,y);\nendmodule",
		"bad dff":      "module m(CK,a,y);\ninput CK,a;\noutput y;\n  dff D(CK,y);\nendmodule",
	}
	for name, src := range cases {
		if _, err := ParseString(src, lib); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCommentsStripped(t *testing.T) {
	lib := cell.Default(1.0)
	src := `
/* header
   block */
module m(CK,a,y); // trailing
input CK,a; output y;
  not N(y,a); /* inline */
endmodule
`
	if _, err := ParseString(src, lib); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTrip(t *testing.T) {
	lib := cell.Default(1.0)
	c1, err := ParseString(s27, lib)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, c1); err != nil {
		t.Fatal(err)
	}
	c2, err := ParseString(sb.String(), lib)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, sb.String())
	}
	if len(c2.FFs) != len(c1.FFs) {
		t.Errorf("FFs: %d vs %d", len(c2.FFs), len(c1.FFs))
	}
	if len(c2.PIs) != len(c1.PIs) {
		t.Errorf("PIs: %d vs %d", len(c2.PIs), len(c1.PIs))
	}
	if len(c2.POs) != len(c1.POs) {
		t.Errorf("POs: %d vs %d", len(c2.POs), len(c1.POs))
	}
	if _, err := c2.Cut(); err != nil {
		t.Errorf("round-tripped circuit does not cut: %v", err)
	}
}

func TestWriteDecomposesComplexCells(t *testing.T) {
	lib := cell.Default(1.0)
	b := netlist.NewSeqBuilder("cx", lib)
	a := b.PI("a")
	c := b.PI("c")
	s := b.PI("s")
	m := b.Gate("m", lib.MustCell(cell.FuncMux2, 1), a, c, s)
	aoi := b.Gate("z", lib.MustCell(cell.FuncAoi21, 1), a, c, m)
	b.PO("y", aoi)
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, sc); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"and", "nor", "not", "or"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in decomposition:\n%s", want, out)
		}
	}
	if _, err := ParseString(out, lib); err != nil {
		t.Fatalf("decomposed output does not re-parse: %v\n%s", err, out)
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("ff0/Q"); got != "ff0_Q" {
		t.Errorf("sanitize = %q", got)
	}
	if got := sanitize("9lives"); got != "n9lives" {
		t.Errorf("sanitize = %q", got)
	}
}
