package verilog_test

import (
	"strings"
	"testing"

	"relatch/internal/bench"
	"relatch/internal/cell"
	"relatch/internal/verilog"
)

// crashers are inputs that exercised pathological parser states; kept as
// an explicit regression corpus so the guards that tamed them stay.
var crashers = []string{
	"",
	"module",
	"module ;",
	"module m",
	"module m(",
	"module m(a",
	"module m(a,);",
	"module m(a); input a;",
	"module m(a); input a; endmodule extra",
	"module m(y); output y; endmodule",
	"module m(y); output y; nand g1(y; endmodule",
	"module m(y); output y; nand g1; endmodule",
	"module m(y); output y; nand (y, y); endmodule",
	"module m(a, y); input a; output y; dff r1(clk, y, a, a); endmodule",
	"/*",
	"// only a comment",
	"module m(a, y); input a; output y; nand g1(y, a, a) endmodule",
	"module m(a, y); input a; output y; wire w; nand g1(w, a, w); nand g2(y, w, a); endmodule",
}

// FuzzParse feeds arbitrary text to the parser. The parser must either
// return an error or produce a design the writer can round-trip; it must
// never panic or stop terminating.
func FuzzParse(f *testing.F) {
	for _, src := range crashers {
		f.Add(src)
	}
	// Seed with real generated netlists so the fuzzer starts from deep
	// inside the accepted grammar (benchgen's output is exactly this).
	lib := cell.Default(1.0)
	for _, name := range []string{"s1196", "s1488"} {
		prof, ok := bench.ProfileByName(name)
		if !ok {
			f.Fatalf("no profile %s", name)
		}
		seq, err := prof.BuildSeq(lib)
		if err != nil {
			f.Fatal(err)
		}
		var sb strings.Builder
		if err := verilog.Write(&sb, seq); err != nil {
			f.Fatal(err)
		}
		f.Add(sb.String())
	}

	f.Fuzz(func(t *testing.T, src string) {
		seq, err := verilog.ParseString(src, lib)
		if err != nil {
			if strings.TrimSpace(err.Error()) == "" {
				t.Fatalf("empty error message for %q", src)
			}
			return
		}
		// Accepted designs must survive a write/re-parse round trip.
		var sb strings.Builder
		if err := verilog.Write(&sb, seq); err != nil {
			t.Fatalf("accepted design failed to write: %v\ninput: %q", err, src)
		}
		again, err := verilog.ParseString(sb.String(), lib)
		if err != nil {
			t.Fatalf("writer output failed to re-parse: %v\ninput: %q\nwritten: %q", err, src, sb.String())
		}
		if len(again.FFs) != len(seq.FFs) || again.GateCount() != seq.GateCount() {
			t.Fatalf("round trip changed the design: %d/%d flops, %d/%d gates\ninput: %q",
				len(seq.FFs), len(again.FFs), seq.GateCount(), again.GateCount(), src)
		}
	})
}

// TestCrashersReturnErrorsOrParse pins the regression corpus outside of
// fuzzing mode: every crasher either errors descriptively or parses.
func TestCrashersReturnErrorsOrParse(t *testing.T) {
	lib := cell.Default(1.0)
	for _, src := range crashers {
		if _, err := verilog.ParseString(src, lib); err != nil {
			if strings.TrimSpace(err.Error()) == "" {
				t.Errorf("empty error for %q", src)
			}
		}
	}
}
