package verilog_test

import (
	"strings"
	"testing"

	"relatch/internal/bench"
	"relatch/internal/cell"
	"relatch/internal/verilog"
)

// crashers aliases the exported regression corpus (see corpus.go) so the
// guards that tamed those pathological parser states stay pinned here.
var crashers = verilog.CrasherCorpus

// FuzzParse feeds arbitrary text to the parser. The parser must either
// return an error or produce a design the writer can round-trip; it must
// never panic or stop terminating.
func FuzzParse(f *testing.F) {
	for _, src := range crashers {
		f.Add(src)
	}
	// Seed with real generated netlists so the fuzzer starts from deep
	// inside the accepted grammar (benchgen's output is exactly this).
	lib := cell.Default(1.0)
	for _, name := range []string{"s1196", "s1488"} {
		prof, ok := bench.ProfileByName(name)
		if !ok {
			f.Fatalf("no profile %s", name)
		}
		seq, err := prof.BuildSeq(lib)
		if err != nil {
			f.Fatal(err)
		}
		var sb strings.Builder
		if err := verilog.Write(&sb, seq); err != nil {
			f.Fatal(err)
		}
		f.Add(sb.String())
	}

	f.Fuzz(func(t *testing.T, src string) {
		seq, err := verilog.ParseString(src, lib)
		if err != nil {
			if strings.TrimSpace(err.Error()) == "" {
				t.Fatalf("empty error message for %q", src)
			}
			return
		}
		// Accepted designs must survive a write/re-parse round trip.
		var sb strings.Builder
		if err := verilog.Write(&sb, seq); err != nil {
			t.Fatalf("accepted design failed to write: %v\ninput: %q", err, src)
		}
		again, err := verilog.ParseString(sb.String(), lib)
		if err != nil {
			t.Fatalf("writer output failed to re-parse: %v\ninput: %q\nwritten: %q", err, src, sb.String())
		}
		if len(again.FFs) != len(seq.FFs) || again.GateCount() != seq.GateCount() {
			t.Fatalf("round trip changed the design: %d/%d flops, %d/%d gates\ninput: %q",
				len(seq.FFs), len(again.FFs), seq.GateCount(), again.GateCount(), src)
		}
	})
}

// TestCrashersReturnErrorsOrParse pins the regression corpus outside of
// fuzzing mode: every crasher either errors descriptively or parses.
func TestCrashersReturnErrorsOrParse(t *testing.T) {
	lib := cell.Default(1.0)
	for _, src := range crashers {
		if _, err := verilog.ParseString(src, lib); err != nil {
			if strings.TrimSpace(err.Error()) == "" {
				t.Errorf("empty error for %q", src)
			}
		}
	}
}
