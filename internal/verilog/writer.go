package verilog

import (
	"fmt"
	"io"
	"strings"

	"relatch/internal/cell"
	"relatch/internal/netlist"
)

// Write emits the flip-flop based circuit in the same structural subset
// Parse reads: primitive gates plus dff(CK, Q, D) instances. Complex
// cells (AOI/OAI/MUX) are decomposed into primitive equivalents, so a
// round trip preserves logic function though not necessarily cell
// bindings.
func Write(w io.Writer, c *netlist.SeqCircuit) error {
	var b strings.Builder
	net := func(n *netlist.SeqNode) string { return sanitize(n.Name) }

	// A primary output can usually expose its driver's net directly; an
	// aliasing buffer is only needed when the driver is a flop or PI, or
	// when several outputs share one driver. This keeps write→parse a
	// fixpoint instead of accreting buffers.
	poNet := make(map[*netlist.SeqNode]string, len(c.POs))
	aliased := make(map[*netlist.SeqNode]bool, len(c.POs))
	usedOut := map[string]bool{}
	for _, po := range c.POs {
		drv := po.Fanin[0]
		name := net(po)
		// A gate-driven output whose name is the driver's (or the
		// parser's generated po_<driver>) exposes the driver net
		// directly; meaningful names keep an aliasing buffer.
		anonymous := name == net(drv) || name == "po_"+net(drv)
		if drv.Kind == netlist.SeqGate && anonymous && !usedOut[net(drv)] {
			poNet[po] = net(drv)
			usedOut[net(drv)] = true
			continue
		}
		poNet[po] = name
		aliased[po] = true
		usedOut[name] = true
	}

	var ports []string
	ports = append(ports, "CK")
	for _, pi := range c.PIs {
		ports = append(ports, net(pi))
	}
	for _, po := range c.POs {
		ports = append(ports, poNet[po])
	}
	fmt.Fprintf(&b, "module %s(%s);\n", sanitize(c.Name), strings.Join(ports, ","))
	fmt.Fprintf(&b, "input CK")
	for _, pi := range c.PIs {
		fmt.Fprintf(&b, ",%s", net(pi))
	}
	fmt.Fprintf(&b, ";\n")
	if len(c.POs) > 0 {
		names := make([]string, len(c.POs))
		for i, po := range c.POs {
			names[i] = poNet[po]
		}
		fmt.Fprintf(&b, "output %s;\n", strings.Join(names, ","))
	}

	aux := 0
	auxNet := func() string {
		aux++
		return fmt.Sprintf("aux_%d", aux)
	}

	for _, n := range c.Nodes {
		switch n.Kind {
		case netlist.SeqFF:
			fmt.Fprintf(&b, "  dff %s(CK,%s,%s);\n", net(n), net(n), net(n.Fanin[0]))
		case netlist.SeqGate:
			emitGate(&b, n, net, auxNet)
		case netlist.SeqPO:
			if aliased[n] {
				fmt.Fprintf(&b, "  buf %s_drv(%s,%s);\n", net(n), poNet[n], net(n.Fanin[0]))
			}
		}
	}
	fmt.Fprintf(&b, "endmodule\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// emitGate writes one gate, decomposing non-primitive cells.
func emitGate(b *strings.Builder, n *netlist.SeqNode, net func(*netlist.SeqNode) string, auxNet func() string) {
	args := func(out string, ins ...string) string {
		return out + "," + strings.Join(ins, ",")
	}
	in := make([]string, len(n.Fanin))
	for i, f := range n.Fanin {
		in[i] = net(f)
	}
	out := net(n)
	prim := map[cell.Function]string{
		cell.FuncInv: "not", cell.FuncBuf: "buf",
		cell.FuncNand2: "nand", cell.FuncNand3: "nand", cell.FuncNand4: "nand",
		cell.FuncNor2: "nor", cell.FuncNor3: "nor", cell.FuncNor4: "nor",
		cell.FuncAnd2: "and", cell.FuncAnd3: "and",
		cell.FuncOr2: "or", cell.FuncOr3: "or",
		cell.FuncXor2: "xor", cell.FuncXnor2: "xnor",
	}
	if p, ok := prim[n.Cell.Func]; ok {
		fmt.Fprintf(b, "  %s %s(%s);\n", p, out, args(out, in...))
		return
	}
	switch n.Cell.Func {
	case cell.FuncAoi21: // !(a·b + c)
		t := auxNet()
		fmt.Fprintf(b, "  and %s_a(%s,%s,%s);\n", out, t, in[0], in[1])
		fmt.Fprintf(b, "  nor %s_n(%s,%s,%s);\n", out, out, t, in[2])
	case cell.FuncOai21: // !((a+b)·c)
		t := auxNet()
		fmt.Fprintf(b, "  or %s_o(%s,%s,%s);\n", out, t, in[0], in[1])
		fmt.Fprintf(b, "  nand %s_n(%s,%s,%s);\n", out, out, t, in[2])
	case cell.FuncMux2: // s ? b : a
		ns, ta, tb := auxNet(), auxNet(), auxNet()
		fmt.Fprintf(b, "  not %s_i(%s,%s);\n", out, ns, in[2])
		fmt.Fprintf(b, "  and %s_a(%s,%s,%s);\n", out, ta, in[0], ns)
		fmt.Fprintf(b, "  and %s_b(%s,%s,%s);\n", out, tb, in[1], in[2])
		fmt.Fprintf(b, "  or %s_o(%s,%s,%s);\n", out, out, ta, tb)
	default:
		// Fall back to a buffer of the first input; unreachable for
		// library-built circuits.
		fmt.Fprintf(b, "  buf %s(%s,%s);\n", out, out, in[0])
	}
}

// sanitize maps arbitrary node names into the subset's identifier space.
func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteRune('_')
		}
	}
	out := b.String()
	if out == "" || out[0] >= '0' && out[0] <= '9' {
		out = "n" + out
	}
	return out
}
