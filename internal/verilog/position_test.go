package verilog_test

import (
	"strings"
	"testing"

	"relatch/internal/cell"
	"relatch/internal/netlist"
	"relatch/internal/verilog"
)

// TestParseNamedPositions pins that every parsed net and instance carries
// the file:line:col of its declaration, and that Cut propagates those
// positions onto the cloud nodes it derives.
func TestParseNamedPositions(t *testing.T) {
	src := `module m(a, b, y);
  input a;
  input b;
  output y;
  wire w;
  nand g1(w, a, b);
  dff r1(clk, q, w);
  nand g2(y, q, b);
endmodule
`
	lib := cell.Default(1.0)
	seq, err := verilog.ParseNamed(strings.NewReader(src), lib, "m.v")
	if err != nil {
		t.Fatal(err)
	}

	// Gate instances are flattened into name__N tree nodes, so look nodes
	// up by declared-name prefix.
	find := func(prefix string) *netlist.SeqNode {
		for _, n := range seq.Nodes {
			if n.Name == prefix || strings.HasPrefix(n.Name, prefix+"__") {
				return n
			}
		}
		t.Fatalf("no node with prefix %q in parsed design", prefix)
		return nil
	}
	byName := map[string]*netlist.SeqNode{}
	want := map[string]netlist.Pos{
		"a":  {File: "m.v", Line: 2, Col: 9},
		"b":  {File: "m.v", Line: 3, Col: 9},
		"g1": {File: "m.v", Line: 6, Col: 3},
		"r1": {File: "m.v", Line: 7, Col: 3},
		"g2": {File: "m.v", Line: 8, Col: 3},
	}
	for name, pos := range want {
		n := find(name)
		byName[name] = n
		if n.Pos != pos {
			t.Errorf("node %q (%q): pos %v, want %v", name, n.Name, n.Pos, pos)
		}
	}
	// The PO wrapper node points at the output declaration.
	if len(seq.POs) != 1 {
		t.Fatalf("got %d POs, want 1", len(seq.POs))
	}
	if got := seq.POs[0].Pos; got != (netlist.Pos{File: "m.v", Line: 4, Col: 10}) {
		t.Errorf("PO pos %v, want m.v:4:10", got)
	}

	// Cut must carry positions onto the cloud nodes.
	cloud, err := seq.Cut()
	if err != nil {
		t.Fatal(err)
	}
	cloudPos := make(map[string]netlist.Pos)
	for _, n := range cloud.Nodes {
		cloudPos[n.Name] = n.Pos
	}
	if cloudPos["r1/Q"] != byName["r1"].Pos {
		t.Errorf("cloud r1/Q pos %v, want flop pos %v", cloudPos["r1/Q"], byName["r1"].Pos)
	}
	if cloudPos[byName["g1"].Name] != byName["g1"].Pos {
		t.Errorf("cloud %s pos %v, want gate pos %v", byName["g1"].Name, cloudPos[byName["g1"].Name], byName["g1"].Pos)
	}

	// Parse (no name) keeps line/col but no file, and the Pos renders as
	// a clickable-style string when complete.
	anon, err := verilog.ParseString(src, lib)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range anon.Nodes {
		if n.Pos.File != "" {
			t.Fatalf("node %q: unexpected file %q from anonymous parse", n.Name, n.Pos.File)
		}
	}
	if s := byName["g1"].Pos.String(); s != "m.v:6:3" {
		t.Errorf("Pos.String() = %q, want m.v:6:3", s)
	}
}

// TestParseErrorsCarryPosition pins that syntax errors name the offending
// location.
func TestParseErrorsCarryPosition(t *testing.T) {
	lib := cell.Default(1.0)
	_, err := verilog.ParseNamed(strings.NewReader("module m(a, y);\n  input a;\n  output y;\n  nand g1(y, a, a)\nendmodule\n"), lib, "bad.v")
	if err == nil {
		t.Fatal("want error for missing semicolon")
	}
	if !strings.Contains(err.Error(), "bad.v:5:") {
		t.Errorf("error %q does not carry a bad.v position", err)
	}
}
