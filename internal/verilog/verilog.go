// Package verilog reads and writes the structural Verilog subset the
// ISCAS89 benchmark distributions use: one module of primitive gate
// instantiations (not/buf/and/nand/or/nor/xor/xnor with arbitrary arity,
// first port the output) plus dff instances (clock, Q, D). Parsing yields
// a netlist.SeqCircuit bound to a cell library; wide gates are decomposed
// into balanced trees of library cells. The writer emits the same subset,
// so real benchmark netlists can replace the synthetic profiles
// one-for-one when available.
package verilog

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"relatch/internal/cell"
	"relatch/internal/netlist"
	"relatch/internal/obs"
)

// primitive gate names of the subset.
var primitiveFuncs = map[string]struct {
	inverted bool
	base     string
}{
	"not":  {true, "buf"},
	"buf":  {false, "buf"},
	"and":  {false, "and"},
	"nand": {true, "and"},
	"or":   {false, "or"},
	"nor":  {true, "or"},
	"xor":  {false, "xor"},
	"xnor": {true, "xor"},
}

// Parse reads one module and builds a flip-flop based circuit over lib.
// Source positions on the resulting nodes carry no file name; use
// ParseNamed when the origin is a file.
func Parse(r io.Reader, lib *cell.Library) (*netlist.SeqCircuit, error) {
	return ParseNamed(r, lib, "")
}

// ParseNamed is Parse with a source name (typically the file path)
// recorded in the netlist.Pos of every parsed net and instance, so
// downstream diagnostics can point back at the declaration.
func ParseNamed(r io.Reader, lib *cell.Library, name string) (*netlist.SeqCircuit, error) {
	src, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	toks, err := tokenize(string(src), name)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, lib: lib, file: name}
	return p.module()
}

// ParseNamedCtx is ParseNamed under a context: when the context carries
// an obs tracer, the parse is recorded as a "verilog.parse" span with
// token and design-size counters, so a traced pipeline shows where front
// end time goes next to the solver spans.
func ParseNamedCtx(ctx context.Context, r io.Reader, lib *cell.Library, name string) (*netlist.SeqCircuit, error) {
	sp, _ := obs.StartSpan(ctx, "verilog.parse")
	defer sp.End()
	sp.Attr("file", name)
	sc, err := ParseNamed(r, lib, name)
	if err != nil {
		sp.Fail(err)
		return nil, err
	}
	if sp.Enabled() {
		sp.Gauge("nodes", int64(len(sc.Nodes)))
		sp.Gauge("inputs", int64(len(sc.PIs)))
		sp.Gauge("outputs", int64(len(sc.POs)))
		sp.Gauge("flops", int64(len(sc.FFs)))
	}
	return sc, nil
}

// ParseString is Parse over a string.
func ParseString(src string, lib *cell.Library) (*netlist.SeqCircuit, error) {
	return Parse(strings.NewReader(src), lib)
}

// token is one lexeme with its 1-based source position.
type token struct {
	text      string
	line, col int
}

// tokenize splits the source into identifiers and punctuation, stripping
// // and /* */ comments, recording the line and column of every token.
func tokenize(src, file string) ([]token, error) {
	var toks []token
	i := 0
	line, col := 1, 1
	// advance consumes n bytes, tracking line/column.
	advance := func(n int) {
		for k := 0; k < n; k++ {
			if src[i+k] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		i += n
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			j := i
			for j < len(src) && src[j] != '\n' {
				j++
			}
			advance(j - i)
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("verilog: %s: unterminated block comment", posString(file, line, col))
			}
			advance(end + 4)
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			advance(1)
		case c == '(' || c == ')' || c == ',' || c == ';':
			toks = append(toks, token{text: string(c), line: line, col: col})
			advance(1)
		default:
			j := i
			for j < len(src) && !strings.ContainsRune(" \t\n\r(),;", rune(src[j])) {
				j++
			}
			toks = append(toks, token{text: src[i:j], line: line, col: col})
			advance(j - i)
		}
	}
	return toks, nil
}

// posString renders a position for an error message ("file:line:col" or
// "line:col" when the source has no name).
func posString(file string, line, col int) string {
	if file == "" {
		return fmt.Sprintf("%d:%d", line, col)
	}
	return fmt.Sprintf("%s:%d:%d", file, line, col)
}

type parser struct {
	toks []token
	pos  int
	lib  *cell.Library
	file string
}

func (p *parser) peek() string {
	if p.pos >= len(p.toks) {
		return ""
	}
	return p.toks[p.pos].text
}

// peekPos returns the position of the upcoming token (or of the last one
// at end of input), for error messages.
func (p *parser) peekPos() netlist.Pos {
	i := p.pos
	if i >= len(p.toks) {
		i = len(p.toks) - 1
	}
	if i < 0 {
		return netlist.Pos{File: p.file}
	}
	return netlist.Pos{File: p.file, Line: p.toks[i].line, Col: p.toks[i].col}
}

func (p *parser) next() string {
	t := p.peek()
	p.pos++
	return t
}

// nextTok returns the upcoming token with its position.
func (p *parser) nextTok() token {
	if p.pos >= len(p.toks) {
		p.pos++
		return token{}
	}
	t := p.toks[p.pos]
	p.pos++
	return t
}

func (p *parser) expect(t string) error {
	at := p.peekPos()
	if got := p.next(); got != t {
		return fmt.Errorf("verilog: %s: expected %q, got %q", at, t, got)
	}
	return nil
}

// identList parses a comma-separated identifier list up to ';'. The loop
// is explicitly bounded by the token count: every iteration must consume
// tokens, so exceeding the budget means the parser stopped advancing on a
// truncated or malformed input and must error rather than spin.
func (p *parser) identList() ([]token, error) {
	var ids []token
	for iter := 0; ; iter++ {
		if iter > len(p.toks)+1 {
			return nil, fmt.Errorf("verilog: identifier list parser stopped advancing (token %d)", p.pos)
		}
		id := p.nextTok()
		if id.text == "" {
			return nil, fmt.Errorf("verilog: unexpected end of input in list")
		}
		ids = append(ids, id)
		switch p.next() {
		case ",":
		case ";":
			return ids, nil
		default:
			return nil, fmt.Errorf("verilog: malformed identifier list near %q", id.text)
		}
	}
}

// instance is one gate or flop statement, resolved after all signals are
// known.
type instance struct {
	prim string
	name string
	args []string
	pos  netlist.Pos // position of the primitive keyword
}

// module parses `module name (ports); input...; output...; wire...;
// instances... endmodule`.
func (p *parser) module() (*netlist.SeqCircuit, error) {
	if err := p.expect("module"); err != nil {
		return nil, err
	}
	name := p.next()
	if err := p.expect("("); err != nil {
		return nil, err
	}
	for p.peek() != ")" && p.peek() != "" {
		p.next()
		if p.peek() == "," {
			p.next()
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}

	var inputs, outputs []token
	var insts []instance
	// Bounded like identList: a statement consumes at least one token, so
	// more iterations than tokens means no progress.
	for iter := 0; ; iter++ {
		if iter > len(p.toks)+1 {
			return nil, fmt.Errorf("verilog: module parser stopped advancing (token %d)", p.pos)
		}
		at := p.peekPos()
		switch t := p.next(); t {
		case "endmodule":
			return p.build(name, inputs, outputs, insts)
		case "input":
			ids, err := p.identList()
			if err != nil {
				return nil, err
			}
			inputs = append(inputs, ids...)
		case "output":
			ids, err := p.identList()
			if err != nil {
				return nil, err
			}
			outputs = append(outputs, ids...)
		case "wire":
			if _, err := p.identList(); err != nil {
				return nil, err
			}
		case "":
			return nil, fmt.Errorf("verilog: missing endmodule")
		default:
			inst := instance{prim: strings.ToLower(t), name: p.next(), pos: at}
			if err := p.expect("("); err != nil {
				return nil, err
			}
			for iter := 0; ; iter++ {
				if iter > len(p.toks)+1 {
					return nil, fmt.Errorf("verilog: argument list of instance %s stopped advancing (token %d)", inst.name, p.pos)
				}
				arg := p.next()
				if arg == ")" {
					break
				}
				if arg == "," {
					continue
				}
				if arg == "" {
					return nil, fmt.Errorf("verilog: unterminated instance %s", inst.name)
				}
				inst.args = append(inst.args, arg)
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
			insts = append(insts, inst)
		}
	}
}

// build resolves instances into a SeqCircuit. Gate instances may appear
// in any order; resolution happens through a signal table with deferred
// fanin hookup via an intermediate representation.
func (p *parser) build(name string, inputs, outputs []token, insts []instance) (*netlist.SeqCircuit, error) {
	b := netlist.NewSeqBuilder(name, p.lib)
	signal := make(map[string]*netlist.SeqNode)
	clocks := make(map[string]bool)
	tokPos := func(t token) netlist.Pos {
		return netlist.Pos{File: p.file, Line: t.line, Col: t.col}
	}

	// Output-aliasing buffers (the Write counterpart emits
	// `buf <net>_drv(<net>, <src>)` to give a primary output its own
	// name) are stripped rather than materialized, so write→parse is a
	// fixpoint on gate count.
	isOutput := make(map[string]bool, len(outputs))
	for _, o := range outputs {
		isOutput[o.text] = true
	}
	alias := make(map[string]string)
	var kept []instance
	for _, inst := range insts {
		if inst.prim == "buf" && len(inst.args) == 2 &&
			isOutput[inst.args[0]] && inst.name == inst.args[0]+"_drv" {
			alias[inst.args[0]] = inst.args[1]
			continue
		}
		kept = append(kept, inst)
	}
	insts = kept

	// Duplicate instance names are a structural error: the builder
	// uniquifies emitted gate names, so without this check two instances
	// sharing a name would silently elaborate as distinct hardware.
	seenInst := make(map[string]bool, len(insts))
	for _, inst := range insts {
		if seenInst[inst.name] {
			return nil, fmt.Errorf("verilog: duplicate instance name %q", inst.name)
		}
		seenInst[inst.name] = true
	}

	for _, in := range inputs {
		signal[in.text] = nil // reserved; materialized below unless a clock
	}
	// Identify clock nets: first argument of every dff.
	for _, inst := range insts {
		if inst.prim == "dff" {
			if len(inst.args) != 3 {
				return nil, fmt.Errorf("verilog: dff %s wants (clk, q, d)", inst.name)
			}
			clocks[inst.args[0]] = true
		}
	}
	for _, in := range inputs {
		if !clocks[in.text] {
			pi := b.PI(in.text)
			pi.Pos = tokPos(in)
			signal[in.text] = pi
		}
	}
	// Flops next: their Q nets become available as sources.
	type pendingFF struct {
		ff *netlist.SeqNode
		d  string
	}
	var ffs []pendingFF
	for _, inst := range insts {
		if inst.prim != "dff" {
			continue
		}
		q, d := inst.args[1], inst.args[2]
		ff := b.FF(inst.name)
		ff.Pos = inst.pos
		if _, dup := signal[q]; dup && signal[q] != nil {
			return nil, fmt.Errorf("verilog: net %s driven twice", q)
		}
		signal[q] = ff
		ffs = append(ffs, pendingFF{ff: ff, d: d})
	}
	// Gates: iterate until fixpoint (fanins may be declared later).
	type pendingGate struct {
		inst instance
	}
	var gates []pendingGate
	for _, inst := range insts {
		if inst.prim != "dff" {
			gates = append(gates, pendingGate{inst: inst})
		}
	}
	emitted := 0
	for len(gates) > 0 {
		var defer2 []pendingGate
		progress := false
		for _, g := range gates {
			prim, ok := primitiveFuncs[g.inst.prim]
			if !ok {
				return nil, fmt.Errorf("verilog: unknown primitive %q", g.inst.prim)
			}
			if len(g.inst.args) < 2 {
				return nil, fmt.Errorf("verilog: gate %s needs an output and at least one input", g.inst.name)
			}
			ready := true
			for _, a := range g.inst.args[1:] {
				if n, ok := signal[a]; !ok || n == nil {
					ready = false
					break
				}
			}
			if !ready {
				defer2 = append(defer2, g)
				continue
			}
			fanin := make([]*netlist.SeqNode, len(g.inst.args)-1)
			for i, a := range g.inst.args[1:] {
				fanin[i] = signal[a]
			}
			out, err := p.emitTree(b, g.inst.name, prim.base, prim.inverted, fanin, &emitted, g.inst.pos)
			if err != nil {
				return nil, err
			}
			outNet := g.inst.args[0]
			if old, dup := signal[outNet]; dup && old != nil {
				return nil, fmt.Errorf("verilog: net %s driven twice", outNet)
			}
			signal[outNet] = out
			progress = true
		}
		if !progress {
			var missing []string
			for _, g := range gates {
				missing = append(missing, g.inst.name)
			}
			sort.Strings(missing)
			return nil, fmt.Errorf("verilog: combinational cycle or undriven nets involving %v", missing)
		}
		gates = defer2
	}
	for _, f := range ffs {
		d, ok := signal[f.d]
		if !ok || d == nil {
			return nil, fmt.Errorf("verilog: flop %s: undriven D net %s", f.ff.Name, f.d)
		}
		b.SetD(f.ff, d)
	}
	for _, out := range outputs {
		src, name := out.text, "po_"+out.text
		if a, ok := alias[out.text]; ok {
			// The aliased name is free to reuse (no gate carries it).
			src, name = a, out.text
		}
		d, ok := signal[src]
		if !ok || d == nil {
			return nil, fmt.Errorf("verilog: %s: undriven output %s", tokPos(out), out.text)
		}
		b.PO(name, d).Pos = tokPos(out)
	}
	return b.Build()
}

// emitTree maps a wide primitive onto library cells: exact-arity cells
// when available, otherwise a balanced tree of 2-input cells, with a
// final inverter for the inverted forms.
func (p *parser) emitTree(b *netlist.SeqBuilder, name, base string, inverted bool, fanin []*netlist.SeqNode, emitted *int, pos netlist.Pos) (*netlist.SeqNode, error) {
	gname := func() string {
		*emitted++
		return fmt.Sprintf("%s__%d", name, *emitted)
	}
	// The library is caller-supplied, so a missing (function, drive) pair
	// is a user-input condition: resolve through Cell and surface the
	// error instead of MustCell's panic.
	gate := func(f cell.Function, fin ...*netlist.SeqNode) (*netlist.SeqNode, error) {
		c, err := p.lib.Cell(f, 1)
		if err != nil {
			return nil, fmt.Errorf("verilog: gate %s: %w", name, err)
		}
		g := b.Gate(gname(), c, fin...)
		g.Pos = pos
		return g, nil
	}

	if base == "buf" {
		f := cell.FuncBuf
		if inverted {
			f = cell.FuncInv
		}
		if len(fanin) != 1 {
			return nil, fmt.Errorf("verilog: %s wants one input", name)
		}
		return gate(f, fanin[0])
	}

	// Exact-arity library matches for the inverted forms.
	if inverted && base == "xor" && len(fanin) == 2 {
		return gate(cell.FuncXnor2, fanin...)
	}
	if inverted && base != "xor" {
		var f cell.Function = -1
		switch {
		case base == "and" && len(fanin) == 2:
			f = cell.FuncNand2
		case base == "and" && len(fanin) == 3:
			f = cell.FuncNand3
		case base == "and" && len(fanin) == 4:
			f = cell.FuncNand4
		case base == "or" && len(fanin) == 2:
			f = cell.FuncNor2
		case base == "or" && len(fanin) == 3:
			f = cell.FuncNor3
		case base == "or" && len(fanin) == 4:
			f = cell.FuncNor4
		}
		if f >= 0 {
			return gate(f, fanin...)
		}
	}
	var two, three cell.Function
	switch base {
	case "and":
		two, three = cell.FuncAnd2, cell.FuncAnd3
	case "or":
		two, three = cell.FuncOr2, cell.FuncOr3
	case "xor":
		two, three = cell.FuncXor2, -1
	default:
		return nil, fmt.Errorf("verilog: unknown base %q", base)
	}
	// Balanced reduction.
	cur := fanin
	for len(cur) > 1 {
		var next []*netlist.SeqNode
		i := 0
		for i+1 < len(cur) {
			if len(cur) == 3 && three >= 0 && i == 0 {
				g, err := gate(three, cur[0], cur[1], cur[2])
				if err != nil {
					return nil, err
				}
				next = append(next, g)
				i += 3
				continue
			}
			g, err := gate(two, cur[i], cur[i+1])
			if err != nil {
				return nil, err
			}
			next = append(next, g)
			i += 2
		}
		if i < len(cur) {
			next = append(next, cur[i])
		}
		cur = next
	}
	out := cur[0]
	if inverted {
		return gate(cell.FuncInv, out)
	}
	return out, nil
}
