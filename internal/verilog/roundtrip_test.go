package verilog

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"relatch/internal/cell"
	"relatch/internal/netlist"
)

// randomSeq builds a random flip-flop design with feedback.
func randomSeq(t *testing.T, seed int64) *netlist.SeqCircuit {
	t.Helper()
	lib := cell.Default(1.0)
	rng := rand.New(rand.NewSource(seed))
	b := netlist.NewSeqBuilder(fmt.Sprintf("rnd%d", seed), lib)
	var pool []*netlist.SeqNode
	for i := 0; i < 2+rng.Intn(4); i++ {
		pool = append(pool, b.PI(fmt.Sprintf("in%d", i)))
	}
	var ffs []*netlist.SeqNode
	for i := 0; i < 1+rng.Intn(4); i++ {
		ff := b.FF(fmt.Sprintf("r%d", i))
		ffs = append(ffs, ff)
		pool = append(pool, ff)
	}
	funcs := []cell.Function{
		cell.FuncInv, cell.FuncBuf, cell.FuncNand2, cell.FuncNor2,
		cell.FuncAnd2, cell.FuncOr2, cell.FuncXor2, cell.FuncXnor2,
		cell.FuncNand3, cell.FuncAoi21, cell.FuncMux2, cell.FuncNand4,
	}
	for i := 0; i < 5+rng.Intn(20); i++ {
		f := funcs[rng.Intn(len(funcs))]
		fanin := make([]*netlist.SeqNode, f.Arity())
		for p := range fanin {
			fanin[p] = pool[rng.Intn(len(pool))]
		}
		g := b.Gate(fmt.Sprintf("g%d", i), lib.MustCell(f, 1), fanin...)
		pool = append(pool, g)
	}
	for _, ff := range ffs {
		b.SetD(ff, pool[len(pool)-1-rand.New(rand.NewSource(seed+int64(ff.ID))).Intn(3)])
	}
	b.PO("out", pool[len(pool)-1])
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestRandomRoundTripProperty: write → parse preserves the interface
// counts and produces a structurally sound, cuttable circuit, for a
// corpus of random designs including complex cells that must decompose.
func TestRandomRoundTripProperty(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		c1 := randomSeq(t, seed)
		var sb strings.Builder
		if err := Write(&sb, c1); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		c2, err := ParseString(sb.String(), c1.Lib)
		if err != nil {
			t.Fatalf("seed %d: re-parse: %v\n%s", seed, err, sb.String())
		}
		if len(c2.PIs) != len(c1.PIs) || len(c2.POs) != len(c1.POs) || len(c2.FFs) != len(c1.FFs) {
			t.Fatalf("seed %d: interface mismatch: PIs %d/%d POs %d/%d FFs %d/%d",
				seed, len(c2.PIs), len(c1.PIs), len(c2.POs), len(c1.POs), len(c2.FFs), len(c1.FFs))
		}
		cut, err := c2.Cut()
		if err != nil {
			t.Fatalf("seed %d: cut: %v", seed, err)
		}
		if err := cut.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// A second round trip must be a fixpoint on gate count (all
		// cells are primitives after the first decomposition).
		var sb2 strings.Builder
		if err := Write(&sb2, c2); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		c3, err := ParseString(sb2.String(), c1.Lib)
		if err != nil {
			t.Fatalf("seed %d: third parse: %v", seed, err)
		}
		if c3.GateCount() != c2.GateCount() {
			t.Errorf("seed %d: second round trip changed gate count %d -> %d",
				seed, c2.GateCount(), c3.GateCount())
		}
	}
}
