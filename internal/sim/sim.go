// Package sim measures error rates of retimed resilient designs by
// random-input timed simulation, reproducing the methodology behind
// Table VIII: each cycle applies fresh values at the master boundary,
// propagates final values with per-edge delays (latch transparency
// included), and counts a cycle as an error when any error-detecting
// master sees its data settle inside the timing resiliency window
// (Π, Π+φ1]. Transitions inside the window of a non-error-detecting
// master or past Π+φ1 anywhere are functional hazards; both are counted
// and asserted zero by the test suite for legal retimings.
package sim

import (
	"context"
	"fmt"
	"math/rand"

	"relatch/internal/cell"
	"relatch/internal/clocking"
	"relatch/internal/netlist"
	"relatch/internal/sta"
)

// Config parameterizes a simulation run.
type Config struct {
	Scheme clocking.Scheme
	Latch  cell.Latch
	Cycles int
	Seed   int64
}

// Stats is the outcome of a run.
type Stats struct {
	Cycles      int
	ErrorCycles int
	// ErrorRate is the percentage of cycles with at least one
	// error-detection event (the unit of Table VIII).
	ErrorRate float64
	// DetectedTransitions counts individual window hits at ED masters.
	DetectedTransitions int
	// MissedViolations counts window hits at non-ED masters: a soundness
	// failure of the ED assignment if nonzero.
	MissedViolations int
	// HardFailures counts arrivals past Π+φ1: a retiming legality
	// failure if nonzero.
	HardFailures int
}

// ErrorRate simulates the placed design for cfg.Cycles random cycles.
// The timing view must belong to the circuit; ed flags the
// error-detecting masters by output node ID.
func ErrorRate(tm *sta.Timing, p *netlist.Placement, ed map[int]bool, cfg Config) (Stats, error) {
	return ErrorRateCtx(context.Background(), tm, p, ed, cfg)
}

// ErrorRateCtx is ErrorRate under a context: the cycle loop — the event
// loop of the simulator — observes cancellation and deadline expiry
// between cycles and surfaces them as errors wrapping ctx.Err().
func ErrorRateCtx(ctx context.Context, tm *sta.Timing, p *netlist.Placement, ed map[int]bool, cfg Config) (Stats, error) {
	c := tm.C
	if cfg.Cycles <= 0 {
		cfg.Cycles = 1000
	}
	if err := cfg.Scheme.Validate(); err != nil {
		return Stats{}, err
	}
	if err := p.Validate(c); err != nil {
		return Stats{}, fmt.Errorf("sim: %w", err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Feedback wiring: an input whose flop index also appears as an
	// output receives that output's captured value next cycle.
	outOfFlop := make(map[int]*netlist.Node)
	for _, o := range c.Outputs {
		outOfFlop[o.Flop] = o
	}

	value := make([]bool, len(c.Nodes))
	prev := make([]bool, len(c.Nodes))
	arrive := make([]float64, len(c.Nodes))
	toggled := make([]bool, len(c.Nodes))
	state := make(map[int]bool) // master value per input node ID

	for _, in := range c.Inputs {
		state[in.ID] = rng.Intn(2) == 1
	}
	evalCycle := func(first bool) error {
		copy(prev, value)
		for _, n := range c.Topo() {
			switch n.Kind {
			case netlist.KindInput:
				value[n.ID] = state[n.ID]
			case netlist.KindGate:
				in := make([]bool, len(n.Fanin))
				for i, f := range n.Fanin {
					in[i] = value[f.ID]
				}
				v, err := n.Cell.Func.Eval(in)
				if err != nil {
					return fmt.Errorf("sim: gate %q: %w", n.Name, err)
				}
				value[n.ID] = v
			case netlist.KindOutput:
				value[n.ID] = value[n.Fanin[0].ID]
			}
		}
		if first {
			copy(prev, value)
		}
		return nil
	}
	if err := evalCycle(true); err != nil {
		return Stats{}, err
	}

	stats := Stats{Cycles: cfg.Cycles}
	open := cfg.Scheme.SlaveOpen()
	period := cfg.Scheme.Period()
	maxStage := cfg.Scheme.MaxStageDelay()

	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		if cycle&63 == 0 {
			select {
			case <-ctx.Done():
				return stats, fmt.Errorf("sim: cancelled after %d of %d cycles: %w", cycle, cfg.Cycles, ctx.Err())
			default:
			}
		}
		// Advance the boundary: feedback flops capture, pure inputs
		// take fresh random values.
		for _, in := range c.Inputs {
			if o, ok := outOfFlop[in.Flop]; ok {
				state[in.ID] = value[o.ID]
			} else {
				state[in.ID] = rng.Intn(2) == 1
			}
		}
		if err := evalCycle(false); err != nil {
			return stats, err
		}

		// Timed propagation of final-value transitions.
		for _, n := range c.Topo() {
			toggled[n.ID] = value[n.ID] != prev[n.ID]
			if !toggled[n.ID] {
				arrive[n.ID] = 0
				continue
			}
			switch n.Kind {
			case netlist.KindInput:
				t := tm.Opt.LaunchDelay
				if p.AtInput[n.ID] {
					t = latchThrough(t, open, cfg.Latch)
				}
				arrive[n.ID] = t
			default:
				worst := 0.0
				for _, u := range n.Fanin {
					if !toggled[u.ID] {
						continue
					}
					t := arrive[u.ID]
					if p.OnEdge[netlist.Edge{From: u.ID, To: n.ID}] {
						t = latchThrough(t, open, cfg.Latch)
					}
					t += tm.EdgeDelay(u, n)
					if t > worst {
						worst = t
					}
				}
				arrive[n.ID] = worst
			}
		}

		errCycle := false
		for _, o := range c.Outputs {
			if !toggled[o.ID] {
				continue
			}
			switch {
			case arrive[o.ID] > maxStage+1e-9:
				stats.HardFailures++
			case arrive[o.ID] > period+1e-9:
				if ed[o.ID] {
					stats.DetectedTransitions++
					errCycle = true
				} else {
					stats.MissedViolations++
				}
			}
		}
		if errCycle {
			stats.ErrorCycles++
		}
	}
	stats.ErrorRate = 100 * float64(stats.ErrorCycles) / float64(stats.Cycles)
	return stats, nil
}

// latchThrough applies slave-latch transparency to a transition arriving
// at time t: wait for the latch to open, then clock-to-Q; or pass
// transparently with D-to-Q.
func latchThrough(t, open float64, l cell.Latch) float64 {
	launch := open + l.ClkToQ
	if d := t + l.DToQ; d > launch {
		launch = d
	}
	return launch
}
