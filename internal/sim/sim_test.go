package sim

import (
	"math/rand"
	"testing"

	"relatch/internal/bench"
	"relatch/internal/cell"
	"relatch/internal/clocking"
	"relatch/internal/core"
	"relatch/internal/netlist"
	"relatch/internal/sta"
)

// windowCircuit builds a buffer chain whose endpoint arrival lands inside
// the resiliency window under the returned scheme.
func windowCircuit(t *testing.T) (*netlist.Circuit, *sta.Timing, clocking.Scheme) {
	t.Helper()
	lib := cell.Default(1.0)
	b := netlist.NewBuilder("win", lib)
	in := b.Input("i", 0)
	cur := in
	for i := 0; i < 6; i++ {
		cur = b.Gate("g"+string(rune('a'+i)), lib.MustCell(cell.FuncBuf, 1), cur)
	}
	b.Output("o", 1, cur)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opt := sta.DefaultOptions(lib)
	opt.LaunchDelay = 0
	tm := sta.Analyze(c, opt)
	arr := tm.Arrival(c.Outputs[0])
	// With the slave latch at the input and zero latch delays, the
	// endpoint settles at φ1+γ1+arr = 0.3P+arr. Choosing P = 1.6·arr
	// puts that arrival (1.48·arr) inside the window (Π, P] =
	// (1.12·arr, 1.6·arr].
	scheme := clocking.Symmetric(arr * 1.6)
	return c, tm, scheme
}

func TestEveryToggleDetected(t *testing.T) {
	c, tm, scheme := windowCircuit(t)
	o := c.Outputs[0]
	// Empty-latch placement is illegal; put the latch at the input and
	// use a zero-delay latch so timing matches the raw analysis.
	p := netlist.InitialPlacement(c)
	latch := cell.Latch{}
	cfg := Config{Scheme: scheme, Latch: latch, Cycles: 400, Seed: 1}
	stats, err := ErrorRate(tm, p, map[int]bool{o.ID: true}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MissedViolations != 0 {
		t.Errorf("missed violations = %d with ED master", stats.MissedViolations)
	}
	if stats.ErrorCycles == 0 {
		t.Fatal("chain toggles on roughly half the cycles; expected errors")
	}
	// A buffer chain toggles its endpoint whenever the input flips
	// (p≈0.5); the error rate should be near 50%.
	if stats.ErrorRate < 25 || stats.ErrorRate > 75 {
		t.Errorf("error rate = %g%%, expected near 50%%", stats.ErrorRate)
	}
}

func TestMissedViolationCounted(t *testing.T) {
	c, tm, scheme := windowCircuit(t)
	p := netlist.InitialPlacement(c)
	cfg := Config{Scheme: scheme, Latch: cell.Latch{}, Cycles: 200, Seed: 2}
	stats, err := ErrorRate(tm, p, nil, cfg) // no ED assigned: unsound
	if err != nil {
		t.Fatal(err)
	}
	if stats.MissedViolations == 0 {
		t.Error("unsound ED assignment must surface as missed violations")
	}
	if stats.ErrorCycles != 0 {
		t.Error("no ED masters, so no error cycles")
	}
}

func TestDeterministicBySeed(t *testing.T) {
	c, tm, scheme := windowCircuit(t)
	p := netlist.InitialPlacement(c)
	ed := map[int]bool{c.Outputs[0].ID: true}
	cfg := Config{Scheme: scheme, Latch: cell.Latch{}, Cycles: 300, Seed: 7}
	a, err := ErrorRate(tm, p, ed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ErrorRate(tm, p, ed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed, different stats: %+v vs %+v", a, b)
	}
	cfg.Seed = 8
	cdiff, err := ErrorRate(tm, p, ed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a == cdiff && a.ErrorCycles > 0 {
		t.Log("different seeds produced identical stats (possible but unlikely)")
	}
}

func TestRejectsIllegalPlacement(t *testing.T) {
	_, tm, scheme := windowCircuit(t)
	cfg := Config{Scheme: scheme, Latch: cell.Latch{}, Cycles: 10, Seed: 1}
	if _, err := ErrorRate(tm, netlist.NewPlacement(), nil, cfg); err == nil {
		t.Error("latch-free placement accepted")
	}
}

// TestRetimedDesignsAreSound: on a random corpus, G-RAR and base results
// must never miss a violation or hard-fail — the ED assignment and the
// retiming legality hold under simulation, not just static analysis.
func TestRetimedDesignsAreSound(t *testing.T) {
	lib := cell.Default(1.0)
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed + 50))
		c, err := bench.RandomCloud("sound", lib, rng, bench.RandomSpec{
			Inputs: 4, Outputs: 3, Gates: 30 + int(seed)*5, Locality: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		scheme := bench.SchemeFor(c, sta.DefaultOptions(lib))
		for _, approach := range []core.Approach{core.ApproachGRAR, core.ApproachBase} {
			res, err := core.Retime(c, core.Options{Scheme: scheme, EDLCost: 1}, approach)
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, approach, err)
			}
			tm := sta.Analyze(c, sta.DefaultOptions(lib))
			stats, err := ErrorRate(tm, res.Placement, res.EDMasters, Config{
				Scheme: scheme, Latch: lib.BaseLatch, Cycles: 300, Seed: seed,
			})
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, approach, err)
			}
			if stats.MissedViolations != 0 {
				t.Errorf("seed %d %v: %d missed violations", seed, approach, stats.MissedViolations)
			}
			if stats.HardFailures != 0 {
				t.Errorf("seed %d %v: %d hard failures", seed, approach, stats.HardFailures)
			}
		}
	}
}
