// Package rgraph builds the paper's modified retiming graph (Section IV)
// and lowers it onto the difference-constraint LP / min-cost-flow layer:
//
//   - regions V_m, V_n, V_r pre-divide the nodes by the latch timing
//     constraints (6) and (7) (Section IV-B),
//   - fanout sharing uses the Leiserson-Saxe mirror-node construction
//     (the m_u nodes of Fig. 5); the breadths β=1/k cancel inside each
//     fanout group, so all LP coefficients stay integral,
//   - for every *target master* t (a master whose error-detecting status
//     depends on the slave positions) the cut set g(t) of Eq. (8–9) is
//     computed and a pseudo node P(t) with the −c reward edge to the host
//     is added (Section IV-A, the red E2/V2 of Fig. 5).
//
// With ResilientAware switched off the construction degenerates to
// classic min-area latch retiming — the paper's Base-Retiming comparison.
package rgraph

import (
	"context"
	"fmt"
	"math"
	"sort"

	"relatch/internal/cell"
	"relatch/internal/clocking"
	"relatch/internal/flow"
	"relatch/internal/netlist"
	"relatch/internal/obs"
	"relatch/internal/sta"
)

// Scale clears the EDL overhead factor c to an integer objective
// coefficient (supports c at millesimal resolution). It is large enough
// that the movement tie-break below can never outweigh a single latch.
const Scale = 100000

// moveCost is the tiny secondary objective added per retimed node: among
// placements of equal latch cost, prefer the one closest to the initial
// positions. Commercial retiming behaves the same way (minimum
// perturbation keeps wiring and load changes small), and the paper's
// base-retiming results — latches staying near the registers, error
// detection staying high — reflect it.
const moveCost = 1

// Config parameterizes graph construction.
type Config struct {
	Scheme clocking.Scheme
	// Latch is the slave latch whose ClkToQ/DToQ enter Eq. (5).
	Latch cell.Latch
	// EDLCost is the overhead factor c: an error-detecting master costs
	// c extra latch-areas.
	EDLCost float64
	// ResilientAware enables the P(t)/E2 construction (G-RAR). When
	// false the graph solves traditional min-area retiming (Base).
	ResilientAware bool
	// MovementPrimary models the commercial baseline's minimum-
	// perturbation behavior (base retiming in the paper's Table VI keeps
	// its slave counts at or just above the register count): latches
	// move only where the latch timing constraints force them, with
	// latch count minimized among the minimal-movement solutions.
	MovementPrimary bool
	// Required optionally sets per-endpoint required times (output node
	// ID → time). Defaults to Π+φ1 (the max stage delay) everywhere.
	// The virtual-library flows use Π for endpoints assigned a
	// non-error-detecting master, which is how the latch-type decision
	// constrains the tool's retiming (Section V).
	Required map[int]float64
	// PivotLimit overrides the simplex pivot budget of the backing flow
	// solve (0 = automatic). Callers use it for early bail-out and tests
	// use it to force the simplex→SSP fallback through the full stack.
	PivotLimit int
}

// TargetClass classifies a master endpoint's error-detecting status
// before solving (Section III / IV-A).
type TargetClass int

const (
	// NeverED: the endpoint meets Π even with slaves at their initial
	// positions; it needs no error detection regardless of retiming.
	NeverED TargetClass = iota
	// AlwaysED: the endpoint exceeds Π even with the furthest-forward
	// legal cut; it must be error-detecting regardless of retiming.
	AlwaysED
	// Target: error detection depends on the slave positions; the graph
	// gets a pseudo node P(t) for it.
	Target
)

func (t TargetClass) String() string {
	switch t {
	case NeverED:
		return "never-ed"
	case AlwaysED:
		return "always-ed"
	case Target:
		return "target"
	}
	return fmt.Sprintf("class(%d)", int(t))
}

// Graph is the constructed retiming graph plus its LP.
type Graph struct {
	C   *netlist.Circuit
	T   *sta.Timing
	Cfg Config

	// Regions by node ID (V_n additionally contains every output node).
	Vm, Vn, Vr map[int]bool

	// Class maps output node ID to its target classification.
	Class map[int]TargetClass
	// GT maps a Target output ID to its cut set g(t), sorted node IDs.
	GT map[int][]int

	dbMax    []float64
	dbAdj    []float64 // required-time-adjusted backward delays
	lp       *flow.DiffLP
	host     int
	varOf    []int       // node ID -> variable
	mirrorOf map[int]int // driver node ID -> mirror variable
	pseudoOf map[int]int // target output ID -> P(t) variable
	numVars  int
}

// Solution is a solved retiming.
type Solution struct {
	// R maps node ID to its retiming value (−1 or 0).
	R map[int]int
	// Placement is the slave-latch placement implied by R.
	Placement *netlist.Placement
	// PseudoFired maps target output IDs to whether the solve claimed
	// the −c reward (all of g(t) retimed), i.e. the model expects the
	// master to be non-error-detecting.
	PseudoFired map[int]bool
	// Objective is the solved LP objective in latch-area units: slave
	// latch count minus c per reclaimed target, up to a constant offset.
	Objective float64
	// Method is the solver that produced the accepted solution; Fallback,
	// FallbackReason and Certified report the hardened solve (see
	// flow.Report).
	Method         flow.Method
	Fallback       bool
	FallbackReason string
	Certified      bool
}

// Build computes regions, classifies endpoints, derives g(t) and
// assembles the LP. The timing analysis must belong to the circuit.
func Build(c *netlist.Circuit, t *sta.Timing, cfg Config) (*Graph, error) {
	if err := cfg.Scheme.Validate(); err != nil {
		return nil, err
	}
	// A NaN/Inf/negative c would poison the integer objective coefficient
	// (cScaled) mid-lowering; reject it before any graph work.
	if v := cfg.EDLCost; math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return nil, fmt.Errorf("rgraph: %w: EDL cost factor c = %g, want finite and non-negative", ErrBadConfig, v)
	}
	g := &Graph{
		C: c, T: t, Cfg: cfg,
		Vm: make(map[int]bool), Vn: make(map[int]bool), Vr: make(map[int]bool),
		Class:    make(map[int]TargetClass),
		GT:       make(map[int][]int),
		mirrorOf: make(map[int]int),
		pseudoOf: make(map[int]int),
	}
	if err := g.computeRegions(); err != nil {
		return nil, err
	}
	g.computeAdjustedBackward()
	g.classifyEndpoints()
	g.buildLP()
	return g, nil
}

// computeRegions fills V_m (must retime through, constraint (7)),
// V_n (must not retime through, constraint (6)) and V_r.
func (g *Graph) computeRegions() error {
	dbMax := g.T.DbMax()
	g.dbMax = dbMax
	fwd := g.Cfg.Scheme.ForwardLimit()
	bwd := g.Cfg.Scheme.BackwardLimit()
	for _, n := range g.C.Nodes {
		if n.Kind == netlist.KindOutput {
			g.Vn[n.ID] = true
			continue
		}
		inVm := dbMax[n.ID] > bwd+eps
		inVn := g.T.Df(n) > fwd+eps
		switch {
		case inVm && inVn:
			return fmt.Errorf("rgraph: %w: node %q needs a latch both before and after it (D^f=%.4g, D^b=%.4g); the stage cannot meet P=%.4g",
				ErrUnretimable, n.Name, g.T.Df(n), dbMax[n.ID], g.Cfg.Scheme.MaxStageDelay())
		case inVm:
			g.Vm[n.ID] = true
		case inVn:
			g.Vn[n.ID] = true
		default:
			g.Vr[n.ID] = true
		}
	}
	return nil
}

const eps = 1e-9

// requiredOf returns the endpoint's required time.
func (g *Graph) requiredOf(o *netlist.Node) float64 {
	if r, ok := g.Cfg.Required[o.ID]; ok {
		return r
	}
	return g.Cfg.Scheme.MaxStageDelay()
}

// computeAdjustedBackward fills dbAdj: like DbMax but with each endpoint
// offset by Π − R(t), so a latch position is legal against every
// downstream endpoint's own required time via one comparison against Π:
//
//	launch(u) + d(edge) + dbAdj(v) ≤ Π  ⟺  A(u,v,t) ≤ R(t) ∀t.
func (g *Graph) computeAdjustedBackward() {
	period := g.Cfg.Scheme.Period()
	db := make([]float64, len(g.C.Nodes))
	for i := range db {
		db[i] = math.Inf(-1)
	}
	for _, o := range g.C.Outputs {
		db[o.ID] = period - g.requiredOf(o)
	}
	topo := g.C.Topo()
	for i := len(topo) - 1; i >= 0; i-- {
		n := topo[i]
		if n.Kind == netlist.KindOutput {
			continue
		}
		for _, f := range n.Fanout {
			if math.IsInf(db[f.ID], -1) {
				continue
			}
			if d := g.T.EdgeDelay(n, f) + db[f.ID]; d > db[n.ID] {
				db[n.ID] = d
			}
		}
	}
	g.dbAdj = db
}

// launch is the Eq. (5) slave launch time for a latch at u's output:
// max{φ1+γ1+ClkToQ, D^f(u)+DToQ}.
func (g *Graph) launch(u *netlist.Node) float64 {
	l := g.Cfg.Scheme.SlaveOpen() + g.Cfg.Latch.ClkToQ
	if d := g.T.Df(u) + g.Cfg.Latch.DToQ; d > l {
		l = d
	}
	return l
}

// alapR returns the furthest-forward legal retiming: r = −1 everywhere
// except V_n. It bounds what retiming can achieve for each endpoint.
func (g *Graph) alapR() map[int]int {
	r := make(map[int]int)
	for _, n := range g.C.Nodes {
		if n.Kind != netlist.KindOutput && !g.Vn[n.ID] {
			r[n.ID] = -1
		}
	}
	return r
}

// classifyEndpoints labels every master endpoint NeverED / AlwaysED /
// Target and computes g(t) for the targets.
func (g *Graph) classifyEndpoints() {
	period := g.Cfg.Scheme.Period()
	initial := sta.AnalyzeLatched(g.T, netlist.InitialPlacement(g.C), g.Cfg.Scheme, g.Cfg.Latch)
	alap := sta.AnalyzeLatched(g.T, netlist.FromRetiming(g.C, g.alapR()), g.Cfg.Scheme, g.Cfg.Latch)
	for _, o := range g.C.Outputs {
		switch {
		case initial.EndpointArrival(o) <= period+eps:
			g.Class[o.ID] = NeverED
		case alap.EndpointArrival(o) > period+eps:
			g.Class[o.ID] = AlwaysED
		default:
			g.Class[o.ID] = Target
			g.GT[o.ID] = g.cutSet(o)
		}
	}
}

// cutSet computes g(t) per Eq. (8–9): nodes v in the fan-in cone of t
// with a fanout position already meeting Π and a fanin position still
// violating it.
func (g *Graph) cutSet(t *netlist.Node) []int {
	db := g.T.BackwardMap(t)
	period := g.Cfg.Scheme.Period()
	s := g.Cfg.Scheme
	l := g.Cfg.Latch
	var cut []int
	for _, v := range g.C.Nodes {
		if v.Kind == netlist.KindOutput || math.IsNaN(db[v.ID]) {
			continue
		}
		// ∃ n ∈ FO(v): A(v,n,t) ≤ Π — equivalently, a latch at v's
		// output meets the period on at least one (in fact, by the
		// shared-latch physical model, on its worst) fanout.
		okForward := false
		for _, n := range v.Fanout {
			if math.IsNaN(db[n.ID]) {
				continue
			}
			if g.T.A(v, n, db, s, l) <= period+eps {
				okForward = true
				break
			}
		}
		if !okForward {
			continue
		}
		// ∃ k ∈ FI(v): A(k,v,t) > Π; for an input node the "fanin" is
		// the host, i.e. the latch at its initial position.
		violBehind := false
		if v.Kind == netlist.KindInput {
			launch := s.SlaveOpen() + l.ClkToQ
			if d := g.T.Opt.LaunchDelay + l.DToQ; d > launch {
				launch = d
			}
			violBehind = launch+db[v.ID] > period+eps
		} else {
			for _, k := range v.Fanin {
				if g.T.A(k, v, db, s, l) > period+eps {
					violBehind = true
					break
				}
			}
		}
		if violBehind {
			cut = append(cut, v.ID)
		}
	}
	cut = g.pruneAncestors(cut)
	sort.Ints(cut)
	return cut
}

// pruneAncestors drops cut members that have another member downstream:
// the w_r ≥ 0 edge constraints already force r(ancestor) ≤ r(descendant),
// so only the frontier is needed — this is where the paper's reverse DFS
// stops, yielding g(O9) = {G5, G6} rather than {I2, G3, G5, G6} in Fig. 4.
func (g *Graph) pruneAncestors(cut []int) []int {
	inCut := make(map[int]bool, len(cut))
	for _, id := range cut {
		inCut[id] = true
	}
	// reaches[id] = true when a cut member is reachable from id through
	// at least one edge (strictly downstream).
	reaches := make([]bool, len(g.C.Nodes))
	topo := g.C.Topo()
	for i := len(topo) - 1; i >= 0; i-- {
		n := topo[i]
		for _, f := range n.Fanout {
			if inCut[f.ID] || reaches[f.ID] {
				reaches[n.ID] = true
				break
			}
		}
	}
	var out []int
	for _, id := range cut {
		if !reaches[id] {
			out = append(out, id)
		}
	}
	return out
}

// edgeWeight is the initial slave-latch count on an edge: 1 on the
// virtual host→input edges, 0 elsewhere (Section III).
func edgeWeight(from *netlist.Node) int64 {
	if from == nil {
		return 1 // host → input
	}
	return 0
}

// buildLP assembles the difference-constraint LP of Eq. (10).
func (g *Graph) buildLP() {
	// Variable layout: one per circuit node, then mirrors, pseudos, host.
	g.varOf = make([]int, len(g.C.Nodes))
	idx := 0
	for _, n := range g.C.Nodes {
		g.varOf[n.ID] = idx
		idx++
	}
	type group struct {
		driver *netlist.Node // nil = host (input latches, unshared)
		sinks  []*netlist.Node
	}
	var groups []group
	for _, n := range g.C.Nodes {
		if len(n.Fanout) == 0 {
			continue
		}
		// Distinct sinks only: parallel pins share one edge.
		seen := make(map[int]bool)
		var sinks []*netlist.Node
		for _, f := range n.Fanout {
			if !seen[f.ID] {
				seen[f.ID] = true
				sinks = append(sinks, f)
			}
		}
		groups = append(groups, group{driver: n, sinks: sinks})
		if len(sinks) > 1 {
			g.mirrorOf[n.ID] = idx
			idx++
		}
	}
	var targets []int
	if g.Cfg.ResilientAware {
		for _, o := range g.C.Outputs {
			if g.Class[o.ID] == Target && len(g.GT[o.ID]) > 0 {
				targets = append(targets, o.ID)
			}
		}
		sort.Ints(targets)
		for _, id := range targets {
			g.pseudoOf[id] = idx
			idx++
		}
	}
	g.host = idx
	idx++
	g.numVars = idx

	lp := flow.NewDiffLP(g.numVars, g.host)

	// Objective weights: normally latch count dominates and movement is
	// a tie-break; under MovementPrimary the ordering flips (see Config).
	latchW, moveW := int64(Scale), int64(moveCost)
	if g.Cfg.MovementPrimary {
		latchW, moveW = 1, Scale
	}

	// Host → input edges: weight 1, one unshared latch each.
	for _, in := range g.C.Inputs {
		v := g.varOf[in.ID]
		lp.Constrain(g.host, v, edgeWeight(nil))
		lp.AddObjective(g.host, -latchW)
		lp.AddObjective(v, latchW)
	}
	// Output → host edges close the retiming cycle (weight 0).
	for _, o := range g.C.Outputs {
		lp.Constrain(g.varOf[o.ID], g.host, 0)
	}
	// Per-edge legality (the exact forms of constraints (6) and (7),
	// generalized to per-endpoint required times): a latch on edge (u,s)
	// sits at u's output, so data must stabilize there before the slave
	// closes (D^f(u) ≤ φ1+γ1+φ2) and the relaunched data must meet every
	// downstream master's required time (launch + edge + dbAdj ≤ Π).
	// Illegal edges get the reverse constraint r(s) − r(u) ≤ 0, pinning
	// their retimed weight to zero. This is finer-grained than the node
	// regions V_m/V_n, which remain as the (consistent) variable bounds.

	// Internal edges and fanout sharing.
	for _, grp := range groups {
		u := g.varOf[grp.driver.ID]
		for _, s := range grp.sinks {
			lp.Constrain(u, g.varOf[s.ID], edgeWeight(grp.driver))
			if !g.EdgeAllowed(grp.driver, s) {
				lp.Constrain(g.varOf[s.ID], u, 0)
			}
		}
		if len(grp.sinks) == 1 {
			// Single fanout: the register count on the edge is
			// w − r(u) + r(v).
			lp.AddObjective(u, -latchW)
			lp.AddObjective(g.varOf[grp.sinks[0].ID], latchW)
			continue
		}
		// Mirror node: registers on the fanout of u number
		// w_max − r(u) + r(m_u); the β=1/k breadths on the 2k edges
		// cancel to integer coefficients ±1.
		m := g.mirrorOf[grp.driver.ID]
		for _, s := range grp.sinks {
			// w(s→m_u) = w_max − w(u,s) = 0 for internal edges.
			lp.Constrain(g.varOf[s.ID], m, 0)
		}
		lp.AddObjective(u, -latchW)
		lp.AddObjective(m, latchW)
	}
	// Movement term: r(v) = −1 costs moveW per node. As a tie-break
	// (moveW = 1) it keeps latches near their initial positions among
	// equal-latch-cost optima; under MovementPrimary it dominates. The
	// secondary term can never outweigh one unit of the primary because
	// the node count stays far below Scale.
	if len(g.C.Nodes)*int(min(latchW, moveW)) < Scale/2 {
		for _, n := range g.C.Nodes {
			if n.Kind != netlist.KindOutput {
				lp.AddObjective(g.varOf[n.ID], -moveW)
			}
		}
	}

	// Pseudo nodes: g(t) → P(t) → host with the −c reward (Eq. 10).
	cScaled := int64(math.Round(g.Cfg.EDLCost * Scale))
	for _, id := range targets {
		p := g.pseudoOf[id]
		for _, gid := range g.GT[id] {
			lp.Constrain(g.varOf[gid], p, 0)
		}
		lp.Constrain(p, g.host, 0)
		// −c·(r(h) − r(P(t))) = +c·r(P(t)) − c·r(h).
		lp.AddObjective(p, cScaled)
		lp.AddObjective(g.host, -cScaled)
	}

	// Region bounds. Inputs whose initial latch position already misses
	// a required time must retime forward (the V_m rule, per-endpoint).
	for _, n := range g.C.Nodes {
		v := g.varOf[n.ID]
		switch {
		case g.Vm[n.ID]:
			lp.Bound(v, -1, -1)
		case n.Kind == netlist.KindInput && !g.InputAllowed(n):
			lp.Bound(v, -1, -1)
		case g.Vn[n.ID]:
			lp.Bound(v, 0, 0)
		default:
			lp.Bound(v, -1, 0)
		}
	}
	// Bound the auxiliary variables in sorted-key order: constraint
	// order fixes the dual network's arc order and hence the simplex
	// pivot path, so map iteration here would make solver-effort
	// counters (and traces) differ between otherwise identical runs.
	for _, m := range sortedValues(g.mirrorOf) {
		lp.Bound(m, -1, 0)
	}
	for _, p := range sortedValues(g.pseudoOf) {
		lp.Bound(p, -1, 0)
	}
	lp.SetPivotLimit(g.Cfg.PivotLimit)
	g.lp = lp
}

// sortedValues returns m's values in ascending key order, for the
// deterministic iteration buildLP needs.
func sortedValues(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	vals := make([]int, len(keys))
	for i, k := range keys {
		vals[i] = m[k]
	}
	return vals
}

// EdgeAllowed reports whether edge (u,v) may legally carry a slave latch:
// data stabilizes at u's output before the slave closes (constraint (6)),
// and the relaunched data meets every downstream master's required time
// (constraint (7), generalized through Eq. (5) launch semantics).
func (g *Graph) EdgeAllowed(u, v *netlist.Node) bool {
	if g.T.Df(u) > g.Cfg.Scheme.ForwardLimit()+eps {
		return false
	}
	if math.IsInf(g.dbAdj[v.ID], -1) {
		return true // no endpoint downstream; any latch is harmless
	}
	return g.launch(u)+g.T.EdgeDelay(u, v)+g.dbAdj[v.ID] <= g.Cfg.Scheme.Period()+eps
}

// InputAllowed reports whether input i may keep its slave latch at the
// initial position (directly after the master's Q pin).
func (g *Graph) InputAllowed(i *netlist.Node) bool {
	if math.IsInf(g.dbAdj[i.ID], -1) {
		return true
	}
	return g.launch(i)+g.dbAdj[i.ID] <= g.Cfg.Scheme.Period()+eps
}

// NumVariables returns the LP variable count (nodes + mirrors + pseudos
// + host).
func (g *Graph) NumVariables() int { return g.numVars }

// NumConstraints returns the LP constraint count.
func (g *Graph) NumConstraints() int { return g.lp.NumConstraints() }

// PreflightLP runs the flow-solver admission checks on the assembled LP
// without solving it: the dual transshipment network must conserve flow
// (flow.ErrUnbalanced otherwise) and stay inside the solver's magnitude
// bounds (flow.ErrOverflow). The lint flow-conservation rule calls this
// to reject a doomed netlist before a solve is attempted.
func (g *Graph) PreflightLP() error {
	if err := g.lp.Preflight(); err != nil {
		return fmt.Errorf("rgraph: %w", err)
	}
	return nil
}

// Solve is SolveCtx under context.Background().
func (g *Graph) Solve(method flow.Method) (*Solution, error) {
	return g.SolveCtx(context.Background(), method)
}

// SolveCtx runs the LP through the selected flow method and lifts the
// duals back to a slave-latch placement. The context bounds the solve;
// cancellation surfaces as an error wrapping ctx.Err().
func (g *Graph) SolveCtx(ctx context.Context, method flow.Method) (*Solution, error) {
	sp, ctx := obs.StartSpan(ctx, "rgraph.solve")
	defer sp.End()
	sp.Gauge("variables", int64(g.numVars))
	sp.Gauge("constraints", int64(g.lp.NumConstraints()))
	sp.Gauge("targets", int64(len(g.pseudoOf)))
	res, err := g.lp.SolveCtx(ctx, method)
	if err != nil {
		sp.Fail(err)
		return nil, fmt.Errorf("rgraph: %w", err)
	}
	sol := &Solution{
		R:              make(map[int]int),
		PseudoFired:    make(map[int]bool),
		Objective:      float64(res.Objective) / Scale,
		Method:         res.Method,
		Fallback:       res.Fallback,
		FallbackReason: res.FallbackReason,
		Certified:      res.Certified,
	}
	// The movement tie-break contributes less than one latch unit in
	// total; Objective remains the latch-cost view.
	for _, n := range g.C.Nodes {
		sol.R[n.ID] = int(res.R[g.varOf[n.ID]])
	}
	for id, p := range g.pseudoOf {
		sol.PseudoFired[id] = res.R[p] == -1
	}
	asp, _ := obs.StartSpan(ctx, "placement.apply")
	defer asp.End()
	sol.Placement = netlist.FromRetiming(g.C, sol.R)
	if err := sol.Placement.Validate(g.C); err != nil {
		asp.Fail(err)
		asp.End()
		return nil, fmt.Errorf("rgraph: solver produced an illegal cut: %w", err)
	}
	asp.Gauge("slaves", int64(sol.Placement.SlaveCount()))
	asp.End()
	return sol, nil
}
