package rgraph

import (
	"math/rand"
	"sort"
	"testing"

	"relatch/internal/bench"
	"relatch/internal/cell"
	"relatch/internal/fig4"
	"relatch/internal/flow"
	"relatch/internal/netlist"
	"relatch/internal/sta"
)

func fig4Graph(t *testing.T, aware bool) (*netlist.Circuit, *Graph) {
	t.Helper()
	c := fig4.MustCircuit()
	tm := sta.Analyze(c, sta.Options{
		Model:       sta.ModelFixed,
		FixedDelays: fig4.FixedDelays(c),
	})
	g, err := Build(c, tm, Config{
		Scheme:         fig4.Scheme(),
		Latch:          fig4.ZeroLatch(),
		EDLCost:        fig4.EDLOverhead,
		ResilientAware: aware,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, g
}

func idsToNames(c *netlist.Circuit, ids map[int]bool) []string {
	var out []string
	for id := range ids {
		out = append(out, c.Nodes[id].Name)
	}
	sort.Strings(out)
	return out
}

func TestFig4Regions(t *testing.T) {
	c, g := fig4Graph(t, true)
	// Section IV-B: V_m = {I1}, V_n = {G7, G8, O9}, V_r = {I2,G3,G4,G5,G6}.
	if got := idsToNames(c, g.Vm); len(got) != 1 || got[0] != "I1" {
		t.Errorf("V_m = %v, want [I1]", got)
	}
	wantVn := []string{"G7", "G8", "O9"}
	gotVn := idsToNames(c, g.Vn)
	if len(gotVn) != len(wantVn) {
		t.Fatalf("V_n = %v, want %v", gotVn, wantVn)
	}
	for i := range wantVn {
		if gotVn[i] != wantVn[i] {
			t.Fatalf("V_n = %v, want %v", gotVn, wantVn)
		}
	}
	wantVr := []string{"G3", "G4", "G5", "G6", "I2"}
	gotVr := idsToNames(c, g.Vr)
	if len(gotVr) != len(wantVr) {
		t.Fatalf("V_r = %v, want %v", gotVr, wantVr)
	}
	for i := range wantVr {
		if gotVr[i] != wantVr[i] {
			t.Fatalf("V_r = %v, want %v", gotVr, wantVr)
		}
	}
}

func TestFig4Classification(t *testing.T) {
	c, g := fig4Graph(t, true)
	o9, _ := c.Node("O9")
	if got := g.Class[o9.ID]; got != Target {
		t.Fatalf("O9 class = %v, want target", got)
	}
	// g(O9) = {G5, G6} (Section IV-A).
	var names []string
	for _, id := range g.GT[o9.ID] {
		names = append(names, c.Nodes[id].Name)
	}
	sort.Strings(names)
	if len(names) != 2 || names[0] != "G5" || names[1] != "G6" {
		t.Errorf("g(O9) = %v, want [G5 G6]", names)
	}
}

func TestFig4GRARSolve(t *testing.T) {
	c, g := fig4Graph(t, true)
	for _, m := range []flow.Method{flow.MethodSimplex, flow.MethodSSP} {
		sol, err := g.Solve(m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		// The paper's ILP solution: r = −1 on I1, I2, G3..G6.
		want := fig4.MustOptimalRetiming(c)
		for _, n := range c.Nodes {
			if sol.R[n.ID] != want[n.ID] {
				t.Errorf("%v: r(%s) = %d, want %d", m, n.Name, sol.R[n.ID], want[n.ID])
			}
		}
		// Cut2: three physical slaves at G4, G5, G6.
		if got := sol.Placement.SlaveCount(); got != 3 {
			t.Errorf("%v: slaves = %d, want 3", m, got)
		}
		o9, _ := c.Node("O9")
		if !sol.PseudoFired[o9.ID] {
			t.Errorf("%v: P(O9) did not fire; model keeps O9 error-detecting", m)
		}
		wantCut := fig4.Cut2(c)
		for e := range wantCut.OnEdge {
			if !sol.Placement.OnEdge[e] {
				t.Errorf("%v: expected latch on %v", m, e)
			}
		}
	}
}

func TestFig4BaseSolve(t *testing.T) {
	_, g := fig4Graph(t, false)
	sol, err := g.Solve(flow.MethodSimplex)
	if err != nil {
		t.Fatal(err)
	}
	// Resiliency-unaware min-area retiming finds the 2-latch cut (Cut1).
	if got := sol.Placement.SlaveCount(); got != 2 {
		t.Errorf("base slaves = %d, want 2", got)
	}
	if len(sol.PseudoFired) != 0 {
		t.Errorf("base retiming must not carry pseudo nodes")
	}
}

func TestFig4ObjectiveGap(t *testing.T) {
	// G-RAR's model objective must beat base's by 1 latch unit:
	// Cut2 = 3 slaves + 0·c vs Cut1 = 2 slaves + 1·c with c = 2.
	_, gA := fig4Graph(t, true)
	solA, err := gA.Solve(flow.MethodSimplex)
	if err != nil {
		t.Fatal(err)
	}
	_, gB := fig4Graph(t, false)
	solB, err := gB.Solve(flow.MethodSimplex)
	if err != nil {
		t.Fatal(err)
	}
	// Same constant offsets, so compare model costs via exact scoring.
	costA := solA.Objective
	costB := solB.Objective
	// The aware objective includes the −c reward; the unaware one does
	// not, so compare reconstructed totals: slaves + c·(unreclaimed).
	totalA := float64(solA.Placement.SlaveCount())
	for id, fired := range solA.PseudoFired {
		_ = id
		if !fired {
			totalA += fig4.EDLOverhead
		}
	}
	totalB := float64(solB.Placement.SlaveCount()) + fig4.EDLOverhead // O9 stays ED
	if totalA != 3 || totalB != 4 {
		t.Errorf("model totals: aware %g (want 3), base %g (want 4)", totalA, totalB)
	}
	_ = costA
	_ = costB
}

func TestGraphCounts(t *testing.T) {
	_, g := fig4Graph(t, true)
	// Variables: 9 nodes + 2 mirrors (G3, I2) + 1 pseudo + host = 13.
	if got := g.NumVariables(); got != 13 {
		t.Errorf("variables = %d, want 13", got)
	}
	if g.NumConstraints() == 0 {
		t.Error("no constraints built")
	}
}

func TestInfeasibleStageRejected(t *testing.T) {
	// One gate with delay 9 out of 12.5 budget: its input side violates
	// the backward limit and its output side the forward limit.
	lib := cell.Default(1)
	b := netlist.NewBuilder("tight", lib)
	in := b.Input("i", 0)
	g1 := b.Gate("g1", lib.MustCell(cell.FuncBuf, 1), in)
	g2 := b.Gate("g2", lib.MustCell(cell.FuncBuf, 1), g1)
	b.Output("o", 1, g2)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tm := sta.Analyze(c, sta.Options{
		Model:       sta.ModelFixed,
		FixedDelays: map[int]float64{g1.ID: 9, g2.ID: 3},
	})
	g, err := Build(c, tm, Config{
		Scheme:  fig4.Scheme(), // limits 7.5/7.5, P = 12.5
		Latch:   fig4.ZeroLatch(),
		EDLCost: 1,
	})
	if err != nil {
		return // rejected at region construction: also acceptable
	}
	if _, err := g.Solve(flow.MethodSimplex); err == nil {
		t.Fatal("expected an infeasibility error: no legal latch position exists")
	}
}

func TestNodeRegionConflictRejectedAtBuild(t *testing.T) {
	// A single gate with delay 9 both exceeds the forward limit at its
	// output and the backward limit at its input side when it also has
	// downstream delay: D^f(g1) = 8 > 7.5 and D^b(g1) includes 8 more.
	lib := cell.Default(1)
	b := netlist.NewBuilder("conflict", lib)
	in := b.Input("i", 0)
	g1 := b.Gate("g1", lib.MustCell(cell.FuncBuf, 1), in)
	g2 := b.Gate("g2", lib.MustCell(cell.FuncBuf, 1), g1)
	b.Output("o", 1, g2)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tm := sta.Analyze(c, sta.Options{
		Model:       sta.ModelFixed,
		FixedDelays: map[int]float64{g1.ID: 8, g2.ID: 8},
	})
	if _, err := Build(c, tm, Config{
		Scheme:  fig4.Scheme(),
		Latch:   fig4.ZeroLatch(),
		EDLCost: 1,
	}); err == nil {
		t.Fatal("expected region conflict at build: g1 violates both limits")
	}
}

func TestClassStrings(t *testing.T) {
	if NeverED.String() != "never-ed" || AlwaysED.String() != "always-ed" || Target.String() != "target" {
		t.Error("class names wrong")
	}
}

// TestRandomCloudsSolvable exercises graph construction and solving on a
// corpus of random clouds with both methods, asserting legality and
// method agreement on the objective.
func TestRandomCloudsSolvable(t *testing.T) {
	lib := cell.Default(1.0)
	rng := rand.New(rand.NewSource(42))
	solved := 0
	for trial := 0; trial < 60; trial++ {
		spec := bench.RandomSpec{
			Inputs:   2 + rng.Intn(4),
			Outputs:  1 + rng.Intn(3),
			Gates:    5 + rng.Intn(18),
			Locality: 3,
		}
		c, err := bench.RandomCloud("rnd", lib, rand.New(rand.NewSource(int64(trial))), spec)
		if err != nil {
			t.Fatal(err)
		}
		opt := sta.DefaultOptions(lib)
		scheme := bench.SchemeFor(c, opt)
		tm := sta.Analyze(c, opt)
		g, err := Build(c, tm, Config{
			Scheme:         scheme,
			Latch:          lib.BaseLatch,
			EDLCost:        1.0,
			ResilientAware: true,
		})
		if err != nil {
			continue // rare tight stage; skip
		}
		simplex, err := g.Solve(flow.MethodSimplex)
		if err != nil {
			t.Fatalf("trial %d simplex: %v", trial, err)
		}
		ssp, err := g.Solve(flow.MethodSSP)
		if err != nil {
			t.Fatalf("trial %d ssp: %v", trial, err)
		}
		if simplex.Objective != ssp.Objective {
			t.Fatalf("trial %d: objective simplex %g vs ssp %g", trial, simplex.Objective, ssp.Objective)
		}
		if err := simplex.Placement.Validate(c); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		solved++
	}
	if solved < 50 {
		t.Errorf("only %d/60 random clouds solvable; generator or regions too tight", solved)
	}
}
