package rgraph

import "errors"

// Sentinels for the constraint-graph lowering. Call sites wrap them with
// fmt.Errorf("rgraph: %w: ...", Err...) so callers classify failures
// with errors.Is across the package boundary.
var (
	// ErrBadConfig: the lowering configuration itself is unusable
	// (non-finite EDL cost factor, invalid scheme).
	ErrBadConfig = errors.New("invalid lowering config")
	// ErrUnretimable: the circuit admits no legal two-phase latch
	// placement at the requested period — a property of the input, not a
	// solver failure, so retrying with another method cannot help.
	ErrUnretimable = errors.New("no legal retiming exists")
)
