package rgraph

import (
	"strings"
	"testing"
)

func TestWriteDOTFig4(t *testing.T) {
	_, g := fig4Graph(t, true)
	var sb strings.Builder
	if err := g.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Structure of Fig. 5: blue V1/E1 with host, mirrors for the
	// multi-fanout nodes G3 and I2, and the red pseudo node P(O9) fed by
	// the cut set {G5, G6} with its −c reward edge to the host.
	for _, want := range []string{
		"digraph retiming",
		"host [shape=doublecircle",
		`"m_G3" [shape=diamond`,
		`"m_I2" [shape=diamond`,
		`"P_O9" [shape=octagon, color=red`,
		`"G5" -> "P_O9" [color=red]`,
		`"G6" -> "P_O9" [color=red]`,
		`"P_O9" -> host [color=red, label="-c=2"]`,
		`host -> "I1" [color=blue, label="w=1"]`,
		`"O9" -> host [color=blue, style=dashed]`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in DOT output:\n%s", want, out)
		}
	}
	// Region shapes: I1 in V_m (invtriangle), G7 in V_n (box).
	if !strings.Contains(out, `"I1" [shape=invtriangle`) {
		t.Error("I1 should render as a V_m node")
	}
	if !strings.Contains(out, `"G7" [shape=box`) {
		t.Error("G7 should render as a V_n node")
	}
}

func TestWriteDOTBaseHasNoPseudo(t *testing.T) {
	_, g := fig4Graph(t, false)
	var sb strings.Builder
	if err := g.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "P_O9") {
		t.Error("base graph must not carry pseudo nodes")
	}
}
