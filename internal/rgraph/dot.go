package rgraph

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteDOT renders the modified retiming graph in Graphviz DOT form, in
// the visual language of the paper's Fig. 5: the original retiming nodes
// and edges (V1/E1) in blue — host node, gate nodes, fanout-sharing
// mirror nodes m_u — and the resiliency extension (V2/E2) in red — one
// pseudo node P(t) per target master with its g(t) edges and the −c
// reward edge back to the host. Edge labels carry the initial weights
// w(e); region membership is encoded in the node shapes.
func (g *Graph) WriteDOT(w io.Writer) error {
	var b strings.Builder
	b.WriteString("digraph retiming {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [fontsize=10];\n")
	b.WriteString("  host [shape=doublecircle, color=blue];\n")

	quote := func(s string) string { return fmt.Sprintf("%q", s) }
	for _, n := range g.C.Nodes {
		shape := "ellipse"
		switch {
		case g.Vm[n.ID]:
			shape = "invtriangle" // must retime through
		case g.Vn[n.ID]:
			shape = "box" // must not pass
		}
		fmt.Fprintf(&b, "  %s [shape=%s, color=blue];\n", quote(n.Name), shape)
	}
	var mirrors []int
	for id := range g.mirrorOf {
		mirrors = append(mirrors, id)
	}
	sort.Ints(mirrors)
	for _, id := range mirrors {
		fmt.Fprintf(&b, "  %s [shape=diamond, color=blue, label=%s];\n",
			quote("m_"+g.C.Nodes[id].Name), quote("m_"+g.C.Nodes[id].Name))
	}
	var pseudos []int
	for id := range g.pseudoOf {
		pseudos = append(pseudos, id)
	}
	sort.Ints(pseudos)
	for _, id := range pseudos {
		fmt.Fprintf(&b, "  %s [shape=octagon, color=red, label=%s];\n",
			quote("P_"+g.C.Nodes[id].Name), quote("P("+g.C.Nodes[id].Name+")"))
	}

	// E1: host→inputs (w=1), internal edges (w=0), outputs→host.
	for _, in := range g.C.Inputs {
		fmt.Fprintf(&b, "  host -> %s [color=blue, label=\"w=1\"];\n", quote(in.Name))
	}
	for _, e := range g.C.Edges() {
		fmt.Fprintf(&b, "  %s -> %s [color=blue];\n",
			quote(g.C.Nodes[e.From].Name), quote(g.C.Nodes[e.To].Name))
	}
	for _, o := range g.C.Outputs {
		fmt.Fprintf(&b, "  %s -> host [color=blue, style=dashed];\n", quote(o.Name))
	}
	// Mirror edges.
	for _, id := range mirrors {
		n := g.C.Nodes[id]
		seen := map[int]bool{}
		for _, f := range n.Fanout {
			if seen[f.ID] {
				continue
			}
			seen[f.ID] = true
			fmt.Fprintf(&b, "  %s -> %s [color=blue, style=dotted];\n",
				quote(f.Name), quote("m_"+n.Name))
		}
	}
	// E2: g(t) → P(t) → host with the −c reward.
	for _, id := range pseudos {
		for _, gid := range g.GT[id] {
			fmt.Fprintf(&b, "  %s -> %s [color=red];\n",
				quote(g.C.Nodes[gid].Name), quote("P_"+g.C.Nodes[id].Name))
		}
		fmt.Fprintf(&b, "  %s -> host [color=red, label=\"-c=%g\"];\n",
			quote("P_"+g.C.Nodes[id].Name), g.Cfg.EDLCost)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
