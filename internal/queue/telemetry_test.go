package queue

import (
	"context"
	"errors"
	"testing"
	"time"

	"relatch/internal/obs"
)

// drainStages reads stage events for one job id off a subscription
// until want stages arrived or the context dies.
func drainStages(t *testing.T, sub *obs.Subscription, id string, want int) []string {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var stages []string
	for len(stages) < want {
		ev, err := sub.Next(ctx)
		if err != nil {
			t.Fatalf("after %v: %v", stages, err)
		}
		if ev.Kind == "stage" && ev.Scope == id {
			stages = append(stages, ev.Name)
		}
	}
	return stages
}

// TestQueueStageEventsAndHistograms drives one job through the happy
// path and one through fail→retry→dead, asserting the stage events the
// SSE layer consumes arrive in lifecycle order and the lease-hold /
// retry-delay histograms absorb the expected observations.
func TestQueueStageEventsAndHistograms(t *testing.T) {
	now := time.Unix(1000, 0)
	reg := obs.NewRegistry()
	stream := obs.NewStream(64)
	q, err := Open(Config{
		Metrics: reg,
		Events:  stream,
		Clock:   func() time.Time { return now },
		Jitter:  func() float64 { return 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	sub, err := stream.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// Happy path: queued → leased → done, with a lease held for 3s.
	jb, err := q.Enqueue("happy", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	leased, ok, err := q.Lease()
	if err != nil || !ok {
		t.Fatalf("lease: ok=%v err=%v", ok, err)
	}
	if leased.LeasedAt != now {
		t.Fatalf("LeasedAt = %v, want %v", leased.LeasedAt, now)
	}
	now = now.Add(3 * time.Second)
	if err := q.Complete(leased.ID, leased.Lease, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	got := drainStages(t, sub, jb.ID, 3)
	want := []string{"queued", "leased", "done"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("happy path stages = %v, want %v", got, want)
		}
	}
	hold := reg.Histogram("relatch_queue_lease_hold_seconds")
	if hold.Count() != 1 || hold.Sum() != 3*time.Second {
		t.Fatalf("lease hold: count=%d sum=%v, want 1 × 3s", hold.Count(), hold.Sum())
	}

	// Failure path: one retry (with its backoff delay observed), then
	// killed straight to the dead letter.
	jb2, err := q.Enqueue("doomed", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	l2, ok, err := q.Lease()
	if err != nil || !ok {
		t.Fatalf("lease 2: ok=%v err=%v", ok, err)
	}
	if err := q.Fail(l2.ID, l2.Lease, errors.New("transient")); err != nil {
		t.Fatal(err)
	}
	retry := reg.Histogram("relatch_queue_retry_delay_seconds")
	if retry.Count() != 1 {
		t.Fatalf("retry delay count = %d, want 1", retry.Count())
	}
	now = now.Add(time.Hour) // past any backoff
	l3, ok, err := q.Lease()
	if err != nil || !ok {
		t.Fatalf("lease 3: ok=%v err=%v", ok, err)
	}
	if err := q.Kill(l3.ID, l3.Lease, errors.New("permanent")); err != nil {
		t.Fatal(err)
	}
	got2 := drainStages(t, sub, jb2.ID, 5)
	want2 := []string{"queued", "leased", "retrying", "leased", "dead"}
	for i := range want2 {
		if got2[i] != want2[i] {
			t.Fatalf("failure path stages = %v, want %v", got2, want2)
		}
	}
	// Both the failed and the killed lease held time get observed.
	if hold.Count() != 3 {
		t.Fatalf("lease hold count = %d, want 3 (done + fail + kill)", hold.Count())
	}
}

// TestQueueWithoutTelemetryConfigured proves the Events/Metrics hooks
// are fully optional: a bare queue runs the same lifecycle with no
// stream and no registry attached.
func TestQueueWithoutTelemetryConfigured(t *testing.T) {
	q, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	jb, err := q.Enqueue("k", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	l, ok, err := q.Lease()
	if err != nil || !ok {
		t.Fatalf("lease: ok=%v err=%v", ok, err)
	}
	if err := q.Complete(l.ID, l.Lease, nil); err != nil {
		t.Fatal(err)
	}
	if got, _ := q.Get(jb.ID); got.State != StateDone {
		t.Fatalf("state = %v, want done", got.State)
	}
}
