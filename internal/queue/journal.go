package queue

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Journal file layout: a queue directory holds numbered segment files
// (wal-00000001.log, wal-00000002.log, ...) of framed records. Each
// frame is
//
//	[4-byte little-endian payload length][4-byte CRC32 (IEEE) of payload][JSON payload]
//
// written with a single Write and fsynced before the enclosing queue
// operation returns, so a frame is either fully durable or a torn tail.
// Replay reads segments in order; every segment but the last must be
// fully valid (mid-file corruption is a hard ErrCorrupt — committed
// history must not silently vanish), while the last segment tolerates a
// torn final frame by truncating it away, which is exactly the state a
// crash mid-append leaves behind.
//
// Rotation doubles as compaction: when the active segment outgrows
// MaxSegmentBytes, a new segment is started with one "snap" record per
// retained job (the full job state), and every older segment is
// deleted. A crash between writing the new segment and deleting the old
// ones is safe because snap records replay as upserts.

const (
	segPrefix = "wal-"
	segSuffix = ".log"
	// maxRecordBytes bounds one frame; a length header beyond it is
	// corruption, not a huge record.
	maxRecordBytes = 4 << 20
	frameHeader    = 8
)

// record is the journal's one serialized transition. Type selects which
// fields are meaningful.
type record struct {
	Seq  uint64 `json:"seq"`
	Type string `json:"type"` // submit, snap, lease, complete, fail, recover, dead
	ID   string `json:"id"`

	// submit/snap fields. Payload is opaque bytes (base64 in the JSON
	// encoding), so callers may journal anything, not just valid JSON.
	Key         string `json:"key,omitempty"`
	Payload     []byte `json:"payload,omitempty"`
	MaxAttempts int    `json:"max_attempts,omitempty"`
	EnqueuedNS  int64  `json:"enqueued_ns,omitempty"`
	State       string `json:"state,omitempty"` // snap only

	// lease/fail/recover/dead fields.
	Lease     uint64 `json:"lease,omitempty"`
	ExpiryNS  int64  `json:"expiry_ns,omitempty"`
	Attempts  int    `json:"attempts,omitempty"`
	Error     string `json:"error,omitempty"`
	NextRetNS int64  `json:"next_retry_ns,omitempty"`

	// complete field. Opaque bytes, like Payload.
	Result []byte `json:"result,omitempty"`
}

// journal owns the active segment file of a queue directory.
type journal struct {
	dir     string
	maxSeg  int64
	f       *os.File
	segIdx  int
	size    int64
	lastSeq uint64
}

// Segments lists the journal segment files of a queue directory in
// replay order. Exported for the fault-injection harness and smoke
// scripts, which corrupt or truncate segments to prove the recovery
// contract.
//
//relint:ignore ctxthread -- one-shot directory listing for the fault harness and smoke scripts, never on the serving path
func Segments(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("queue: %w", err)
	}
	var segs []string
	for _, e := range ents {
		name := e.Name()
		if strings.HasPrefix(name, segPrefix) && strings.HasSuffix(name, segSuffix) {
			segs = append(segs, filepath.Join(dir, name))
		}
	}
	sort.Strings(segs)
	return segs, nil
}

func segIndex(path string) int {
	base := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(path), segPrefix), segSuffix)
	n, err := strconv.Atoi(base)
	if err != nil {
		return 0
	}
	return n
}

func segPath(dir string, idx int) string {
	return filepath.Join(dir, fmt.Sprintf("%s%08d%s", segPrefix, idx, segSuffix))
}

// openJournal replays every segment of dir and opens the last one for
// appending (creating segment 1 in an empty dir). It returns the
// replayed records in order.
func openJournal(dir string, maxSeg int64) (*journal, []record, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("queue: journal dir: %w", err)
	}
	segs, err := Segments(dir)
	if err != nil {
		return nil, nil, err
	}
	j := &journal{dir: dir, maxSeg: maxSeg, segIdx: 1}
	var recs []record
	for i, seg := range segs {
		last := i == len(segs)-1
		segRecs, goodLen, rerr := readSegment(seg, last)
		if rerr != nil {
			return nil, nil, rerr
		}
		if last {
			// A torn tail is truncated away so the next append starts on
			// a clean frame boundary.
			if info, serr := os.Stat(seg); serr == nil && info.Size() > goodLen {
				if terr := os.Truncate(seg, goodLen); terr != nil {
					return nil, nil, fmt.Errorf("queue: truncating torn tail of %s: %w", seg, terr)
				}
			}
			j.segIdx = segIndex(seg)
			j.size = goodLen
		}
		recs = append(recs, segRecs...)
	}
	for _, r := range recs {
		if r.Seq > j.lastSeq {
			j.lastSeq = r.Seq
		}
	}
	f, err := os.OpenFile(segPath(dir, j.segIdx), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("queue: opening segment: %w", err)
	}
	j.f = f
	return j, recs, nil
}

// readSegment decodes one segment. In tolerant mode (the last segment)
// a torn final frame ends the scan at goodLen; in strict mode any
// malformed frame is ErrCorrupt. A frame with a bad CRC that is not the
// file's final frame is corruption in both modes.
func readSegment(path string, tolerant bool) (recs []record, goodLen int64, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("queue: %w", err)
	}
	off := 0
	for off < len(raw) {
		if len(raw)-off < frameHeader {
			if tolerant {
				return recs, int64(off), nil // torn header
			}
			return nil, 0, fmt.Errorf("queue: %s: %w: truncated frame header at offset %d", path, ErrCorrupt, off)
		}
		n := int(binary.LittleEndian.Uint32(raw[off:]))
		sum := binary.LittleEndian.Uint32(raw[off+4:])
		if n > maxRecordBytes {
			return nil, 0, fmt.Errorf("queue: %s: %w: frame length %d at offset %d exceeds limit", path, ErrCorrupt, n, off)
		}
		if len(raw)-off-frameHeader < n {
			if tolerant {
				return recs, int64(off), nil // torn payload
			}
			return nil, 0, fmt.Errorf("queue: %s: %w: truncated frame payload at offset %d", path, ErrCorrupt, off)
		}
		payload := raw[off+frameHeader : off+frameHeader+n]
		atEOF := off+frameHeader+n == len(raw)
		if crc32.ChecksumIEEE(payload) != sum {
			if tolerant && atEOF {
				return recs, int64(off), nil // torn final frame
			}
			return nil, 0, fmt.Errorf("queue: %s: %w: CRC mismatch at offset %d", path, ErrCorrupt, off)
		}
		var r record
		if uerr := json.Unmarshal(payload, &r); uerr != nil {
			if tolerant && atEOF {
				return recs, int64(off), nil
			}
			return nil, 0, fmt.Errorf("queue: %s: %w: undecodable record at offset %d: %v", path, ErrCorrupt, off, uerr)
		}
		recs = append(recs, r)
		off += frameHeader + n
	}
	return recs, int64(off), nil
}

// append frames, writes and fsyncs one record. The caller holds the
// queue lock and has already assigned r.Seq.
func (j *journal) append(r record) error {
	payload, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("queue: encoding journal record: %w", err)
	}
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeader:], payload)
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("queue: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("queue: journal sync: %w", err)
	}
	j.size += int64(len(frame))
	return nil
}

// shouldCompact reports whether the active segment has outgrown its
// budget.
func (j *journal) shouldCompact() bool {
	return j.maxSeg > 0 && j.size > j.maxSeg
}

// compact rotates to a fresh segment seeded with the given snapshot
// records, then deletes every older segment.
//
//relint:ignore journalfirst -- segment rotation, not a replayed state transition: the handle/index/size swap selects the new segment the snapshot appends then write to, and a failed append still poisons the queue via the appendLocked caller
func (j *journal) compact(snaps []record) error {
	newIdx := j.segIdx + 1
	f, err := os.OpenFile(segPath(j.dir, newIdx), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("queue: compaction segment: %w", err)
	}
	old := j.f
	oldIdx := j.segIdx
	j.f, j.segIdx, j.size = f, newIdx, 0
	for _, r := range snaps {
		if err := j.append(r); err != nil {
			return err
		}
	}
	old.Close()
	for idx := oldIdx; idx >= 1; idx-- {
		path := segPath(j.dir, idx)
		if _, serr := os.Stat(path); serr != nil {
			break
		}
		if rerr := os.Remove(path); rerr != nil {
			return fmt.Errorf("queue: removing compacted segment: %w", rerr)
		}
	}
	return nil
}

func (j *journal) close() error {
	if j == nil || j.f == nil {
		return nil
	}
	return j.f.Close()
}
