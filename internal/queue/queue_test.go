package queue

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"relatch/internal/obs"
)

// fakeClock is an injectable, advanceable time source.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func openTest(t *testing.T, cfg Config) *Queue {
	t.Helper()
	q, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { q.Close() })
	return q
}

func TestLifecycleQueuedLeasedDone(t *testing.T) {
	q := openTest(t, Config{})
	j, err := q.Enqueue("key-a", []byte(`{"n":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if j.ID == "" || j.State != StateQueued {
		t.Fatalf("enqueue snapshot = %+v", j)
	}

	leased, ok, err := q.Lease()
	if err != nil || !ok || leased.ID != j.ID || leased.Lease == 0 {
		t.Fatalf("lease = %+v ok=%v err=%v", leased, ok, err)
	}
	if _, ok, _ := q.Lease(); ok {
		t.Fatal("leased the same job twice")
	}
	if err := q.Complete(leased.ID, leased.Lease, []byte(`{"done":true}`)); err != nil {
		t.Fatal(err)
	}
	got, ok := q.Get(j.ID)
	if !ok || got.State != StateDone || string(got.Result) != `{"done":true}` {
		t.Fatalf("done job = %+v", got)
	}
	st := q.Stats()
	if st.Done != 1 || st.Completed != 1 || st.Depth != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRetryBackoffThenDead(t *testing.T) {
	clk := newFakeClock()
	reg := obs.NewRegistry()
	q := openTest(t, Config{
		MaxAttempts: 3, BaseBackoff: time.Second, MaxBackoff: 10 * time.Second,
		Clock: clk.Now, Jitter: func() float64 { return 0.5 }, Metrics: reg,
	})
	j, err := q.Enqueue("key-a", nil)
	if err != nil {
		t.Fatal(err)
	}

	for attempt := 1; attempt <= 2; attempt++ {
		leased, ok, err := q.Lease()
		if err != nil || !ok {
			t.Fatalf("attempt %d: lease ok=%v err=%v", attempt, ok, err)
		}
		if err := q.Fail(leased.ID, leased.Lease, errors.New("solver exploded")); err != nil {
			t.Fatal(err)
		}
		got, _ := q.Get(j.ID)
		if got.Attempts != attempt || got.LastError != "solver exploded" {
			t.Fatalf("attempt %d: job = %+v", attempt, got)
		}
		if got.StatusAt(clk.Now()) != "retrying" {
			t.Fatalf("attempt %d: status %q, want retrying", attempt, got.StatusAt(clk.Now()))
		}
		// Backoff gates the next lease until the clock passes NextRetry.
		if _, ok, _ := q.Lease(); ok {
			t.Fatalf("attempt %d: leased before backoff elapsed", attempt)
		}
		clk.Advance(got.NextRetry.Sub(clk.Now()) + time.Millisecond)
	}

	// Third failure exhausts the budget: dead letter, not another retry.
	leased, ok, err := q.Lease()
	if err != nil || !ok {
		t.Fatalf("final lease ok=%v err=%v", ok, err)
	}
	if err := q.Fail(leased.ID, leased.Lease, errors.New("still broken")); err != nil {
		t.Fatal(err)
	}
	got, _ := q.Get(j.ID)
	if got.State != StateDead || got.Attempts != 3 {
		t.Fatalf("dead job = %+v", got)
	}
	if n := reg.Counter("relatch_queue_dead_total"); n != 1 {
		t.Errorf("dead_total = %d", n)
	}
	if n := reg.Counter("relatch_queue_retries_total"); n != 2 {
		t.Errorf("retries_total = %d", n)
	}
}

func TestBackoffGrowsExponentiallyWithCap(t *testing.T) {
	q := openTest(t, Config{
		BaseBackoff: time.Second, MaxBackoff: 4 * time.Second,
		Jitter: func() float64 { return 0.5 }, // neutral jitter: ×1.0
	})
	for attempt, want := range map[int]time.Duration{
		1: time.Second, 2: 2 * time.Second, 3: 4 * time.Second, 5: 4 * time.Second,
	} {
		if got := q.backoff(attempt); got != want {
			t.Errorf("backoff(%d) = %v, want %v", attempt, got, want)
		}
	}
}

func TestCapacitySheds(t *testing.T) {
	q := openTest(t, Config{Capacity: 2})
	for i := 0; i < 2; i++ {
		if _, err := q.Enqueue(fmt.Sprintf("k%d", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := q.Enqueue("k2", nil); !errors.Is(err, ErrFull) {
		t.Fatalf("overflow enqueue err = %v, want ErrFull", err)
	}
	if !q.Full() {
		t.Error("Full() = false at capacity")
	}
	if st := q.Stats(); st.Shed != 1 {
		t.Errorf("shed = %d", st.Shed)
	}
	// Completing a job frees a slot.
	leased, _, _ := q.Lease()
	if err := q.Complete(leased.ID, leased.Lease, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Enqueue("k2", nil); err != nil {
		t.Fatalf("enqueue after drain: %v", err)
	}
}

func TestLeaseExpiryRequeuesWithFencing(t *testing.T) {
	clk := newFakeClock()
	q := openTest(t, Config{LeaseTTL: time.Minute, MaxAttempts: 5, BaseBackoff: time.Millisecond, Clock: clk.Now})
	if _, err := q.Enqueue("k", nil); err != nil {
		t.Fatal(err)
	}
	first, ok, _ := q.Lease()
	if !ok {
		t.Fatal("no lease")
	}
	clk.Advance(2 * time.Minute)
	n, err := q.ExpireLeases()
	if err != nil || n != 1 {
		t.Fatalf("expired %d leases, err %v", n, err)
	}
	// The slow worker's completion with the cut lease must be fenced out.
	if err := q.Complete(first.ID, first.Lease, nil); !errors.Is(err, ErrStaleLease) {
		t.Fatalf("stale complete err = %v, want ErrStaleLease", err)
	}
	clk.Advance(time.Second)
	second, ok, _ := q.Lease()
	if !ok || second.ID != first.ID || second.Lease == first.Lease || second.Attempts != 1 {
		t.Fatalf("re-lease = %+v ok=%v (first lease %d)", second, ok, first.Lease)
	}
	if err := q.Complete(second.ID, second.Lease, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	// Settling a done job again (duplicate delivery) is also fenced.
	if err := q.Complete(second.ID, second.Lease, []byte("again")); !errors.Is(err, ErrStaleLease) {
		t.Fatalf("double complete err = %v, want ErrStaleLease", err)
	}
}

func TestReopenRecoversQueuedAndLeased(t *testing.T) {
	dir := t.TempDir()
	q, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := q.Enqueue("key-a", []byte("pa"))
	b, _ := q.Enqueue("key-b", []byte("pb"))
	c, _ := q.Enqueue("key-c", []byte("pc"))
	leased, ok, _ := q.Lease() // a goes in flight
	if !ok || leased.ID != a.ID {
		t.Fatalf("lease = %+v", leased)
	}
	done, ok, _ := q.Lease() // b completes
	if !ok || done.ID != b.ID {
		t.Fatalf("lease = %+v", done)
	}
	if err := q.Complete(done.ID, done.Lease, []byte("rb")); err != nil {
		t.Fatal(err)
	}
	q.Close() // simulated crash: the leased job never settles

	q2 := openTest(t, Config{Dir: dir})
	ra, ok := q2.Get(a.ID)
	if !ok || ra.State != StateQueued || ra.Attempts != 1 || ra.Key != "key-a" {
		t.Fatalf("recovered in-flight job = %+v", ra)
	}
	rb, ok := q2.Get(b.ID)
	if !ok || rb.State != StateDone || string(rb.Result) != "rb" {
		t.Fatalf("recovered done job = %+v", rb)
	}
	rc, ok := q2.Get(c.ID)
	if !ok || rc.State != StateQueued || rc.Attempts != 0 || string(rc.Payload) != "pc" {
		t.Fatalf("recovered queued job = %+v", rc)
	}
	if st := q2.Stats(); st.Recovered != 1 {
		t.Errorf("recovered = %d", st.Recovered)
	}
	// New IDs continue past the recovered ones.
	d, err := q2.Enqueue("key-d", nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.ID <= c.ID {
		t.Errorf("new ID %s does not extend recovered sequence (last %s)", d.ID, c.ID)
	}
}

func TestReopenToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	q, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := q.Enqueue("key-a", nil)
	b, _ := q.Enqueue("key-b", nil)
	q.Close()

	segs, err := Segments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments = %v (%v)", segs, err)
	}
	// Tear the last frame mid-payload, as a crash mid-append would.
	info, _ := os.Stat(segs[0])
	if err := os.Truncate(segs[0], info.Size()-5); err != nil {
		t.Fatal(err)
	}

	q2 := openTest(t, Config{Dir: dir})
	if _, ok := q2.Get(a.ID); !ok {
		t.Fatal("first (fully journaled) job lost")
	}
	if _, ok := q2.Get(b.ID); ok {
		t.Fatal("torn-tail job resurrected from a partial record")
	}
	// The truncated journal accepts appends again.
	if _, err := q2.Enqueue("key-c", nil); err != nil {
		t.Fatal(err)
	}
}

func TestReopenRejectsMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	q, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	q.Enqueue("key-a", []byte("aaaaaaaa"))
	q.Enqueue("key-b", []byte("bbbbbbbb"))
	q.Close()

	segs, _ := Segments(dir)
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the first record's payload: committed history
	// no longer matches its CRC and there are valid frames after it.
	raw[frameHeader+4] ^= 0xff
	if err := os.WriteFile(segs[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: dir}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open err = %v, want ErrCorrupt", err)
	}
}

func TestReopenRejectsInsaneFrameLength(t *testing.T) {
	dir := t.TempDir()
	q, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	q.Enqueue("key-a", nil)
	q.Enqueue("key-b", nil)
	q.Close()

	segs, _ := Segments(dir)
	raw, _ := os.ReadFile(segs[0])
	binary.LittleEndian.PutUint32(raw, uint32(maxRecordBytes+1))
	os.WriteFile(segs[0], raw, 0o644)
	if _, err := Open(Config{Dir: dir}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open err = %v, want ErrCorrupt", err)
	}
}

func TestCompactionRotatesAndSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	q, err := Open(Config{Dir: dir, MaxSegmentBytes: 512, RetainTerminal: 4})
	if err != nil {
		t.Fatal(err)
	}
	var last Job
	for i := 0; i < 40; i++ {
		j, err := q.Enqueue(fmt.Sprintf("key-%02d", i), []byte(`{"payload":"xxxxxxxxxxxxxxxx"}`))
		if err != nil {
			t.Fatal(err)
		}
		leased, ok, _ := q.Lease()
		if !ok {
			t.Fatal("no lease")
		}
		if err := q.Complete(leased.ID, leased.Lease, []byte("r")); err != nil {
			t.Fatal(err)
		}
		last = j
	}
	segs, _ := Segments(dir)
	if len(segs) != 1 {
		t.Fatalf("compaction left %d segments: %v", len(segs), segs)
	}
	q.Close()

	q2 := openTest(t, Config{Dir: dir, MaxSegmentBytes: 512, RetainTerminal: 4})
	jobs := q2.Jobs()
	if len(jobs) > 8 {
		t.Fatalf("retention kept %d terminal jobs", len(jobs))
	}
	got, ok := q2.Get(last.ID)
	if !ok || got.State != StateDone {
		t.Fatalf("latest job after compaction+reopen = %+v ok=%v", got, ok)
	}
}

func TestSecondOpenSameProcessRefused(t *testing.T) {
	dir := t.TempDir()
	q := openTest(t, Config{Dir: dir})
	if _, err := Open(Config{Dir: dir}); err == nil {
		t.Fatal("second open of a locked dir succeeded")
	}
	q.Close()
	// After a clean close the dir opens again.
	q2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	q2.Close()
}

func TestStaleLockFromDeadProcessStolen(t *testing.T) {
	dir := t.TempDir()
	// Fabricate a lock from a pid that cannot be running.
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir+"/queue.lock", []byte("999999999\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	q, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("stale lock not stolen: %v", err)
	}
	q.Close()
}

func TestAppendHookCrashPoisonsQueue(t *testing.T) {
	calls := 0
	q := openTest(t, Config{AppendHook: func(string, uint64) error {
		calls++
		if calls > 1 {
			return errors.New("simulated crash")
		}
		return nil
	}})
	if _, err := q.Enqueue("k1", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Enqueue("k2", nil); err == nil {
		t.Fatal("append past the crash point succeeded")
	}
	// The queue is poisoned: nothing else is accepted.
	if _, _, err := q.Lease(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash lease err = %v, want ErrCrashed", err)
	}
	if _, err := q.Enqueue("k3", nil); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash enqueue err = %v, want ErrCrashed", err)
	}
}

func TestKillGoesStraightToDead(t *testing.T) {
	q := openTest(t, Config{MaxAttempts: 5})
	j, _ := q.Enqueue("k", nil)
	leased, _, _ := q.Lease()
	if err := q.Kill(leased.ID, leased.Lease, errors.New("request no longer builds")); err != nil {
		t.Fatal(err)
	}
	got, _ := q.Get(j.ID)
	if got.State != StateDead || got.LastError != "request no longer builds" {
		t.Fatalf("killed job = %+v", got)
	}
}

func TestUnknownJobAndClosedQueue(t *testing.T) {
	q := openTest(t, Config{})
	if err := q.Complete("q-99999999", 1, nil); !errors.Is(err, ErrNoJob) {
		t.Fatalf("unknown complete err = %v", err)
	}
	q.Close()
	if _, err := q.Enqueue("k", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed enqueue err = %v", err)
	}
}
