// Package queue is the durable job queue behind the retiming service:
// a write-ahead journal of submit/lease/complete/fail transitions over
// an in-memory lease/retry state machine. Restarting a process on the
// same directory replays the journal and recovers every queued and
// in-flight job — in-flight leases are returned to the queue — so a
// crash loses no accepted work. Workers take time-bounded leases
// guarded by fencing tokens; an expired lease re-queues the job with an
// attempt counter and exponential backoff with jitter, and a job that
// exhausts its retry budget lands in a dead-letter state that stays
// inspectable instead of vanishing. A bounded capacity sheds load with
// ErrFull so overload degrades into explicit backpressure, never into
// unbounded memory growth.
//
// The queue stores opaque payloads; the engine layer journals the
// original API request, which is what makes recovery possible — a
// replayed submit rebuilds the job from first principles and re-runs
// the full solve+certify pipeline, so nothing restored is served
// uncertified.
package queue

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"relatch/internal/obs"
)

// Sentinel errors for the queue's failure modes.
var (
	// ErrFull rejects an Enqueue beyond Capacity (load shedding).
	ErrFull = errors.New("queue full")
	// ErrStaleLease rejects a transition carrying a lease token that no
	// longer owns the job — the double-delivery guard.
	ErrStaleLease = errors.New("stale lease")
	// ErrCorrupt marks unrecoverable journal damage (anything beyond a
	// torn final frame).
	ErrCorrupt = errors.New("journal corrupt")
	// ErrClosed rejects operations after Close.
	ErrClosed = errors.New("queue closed")
	// ErrCrashed marks a queue whose journal append failed; the
	// in-memory state can no longer be trusted to match disk, so every
	// later operation is refused (the process-restart analogue in
	// tests and the chaos harness).
	ErrCrashed = errors.New("queue crashed")
	// ErrNoJob rejects transitions on unknown job IDs.
	ErrNoJob = errors.New("no such job")
	// ErrLocked rejects opening a queue directory that another live
	// process (or this one) already owns.
	ErrLocked = errors.New("queue dir locked")
)

// State is a job's position in the queue lifecycle.
type State int

// Job states. StateQueued covers both ready jobs and jobs waiting out a
// retry backoff; String renders the latter as "retrying".
const (
	StateQueued State = iota
	StateLeased
	StateDone
	StateDead
)

func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateLeased:
		return "leased"
	case StateDone:
		return "done"
	case StateDead:
		return "dead"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Job is a caller-visible snapshot of one queued unit of work.
type Job struct {
	ID      string
	Key     string
	Payload json.RawMessage

	State       State
	Attempts    int
	MaxAttempts int
	LastError   string
	NextRetry   time.Time
	LeaseExpiry time.Time
	Lease       uint64
	Result      json.RawMessage
	EnqueuedAt  time.Time
	// LeasedAt is when the current lease was taken (zero when not
	// leased, and after a restart replay — recovered leases are requeued
	// anyway). It feeds the lease-hold histogram on settlement.
	LeasedAt time.Time
}

// StatusAt renders the lifecycle state for displays: a queued job still
// waiting out its backoff reads "retrying".
func (j Job) StatusAt(now time.Time) string {
	if j.State == StateQueued && j.Attempts > 0 && j.NextRetry.After(now) {
		return "retrying"
	}
	return j.State.String()
}

// job is the internal mutable record behind a Job snapshot.
type job struct {
	Job
}

// Config configures a queue.
type Config struct {
	// Dir is the journal directory; "" runs the queue memory-only (no
	// durability, same semantics otherwise).
	Dir string
	// Capacity bounds live (queued + leased) jobs; Enqueue beyond it
	// returns ErrFull. ≤ 0 means 1024.
	Capacity int
	// LeaseTTL bounds one lease; an expired lease re-queues the job.
	// ≤ 0 means 2 minutes.
	LeaseTTL time.Duration
	// MaxAttempts is the per-job retry budget; the attempt that exhausts
	// it moves the job to the dead-letter state. ≤ 0 means 5.
	MaxAttempts int
	// BaseBackoff/MaxBackoff shape the exponential retry delay
	// (base·2^(attempt−1), capped, ±20% jitter). ≤ 0 means 250ms / 1m.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// MaxSegmentBytes triggers journal compaction; ≤ 0 means 4 MiB.
	MaxSegmentBytes int64
	// RetainTerminal bounds how many done/dead jobs stay inspectable;
	// ≤ 0 means 1024.
	RetainTerminal int
	// Metrics, when non-nil, receives relatch_queue_* counters/gauges
	// on every transition, plus the lease-hold and retry-delay
	// histograms.
	Metrics *obs.Registry
	// Events, when non-nil, receives a "stage" StreamEvent (scope =
	// job ID) on every lifecycle transition: queued, leased, done,
	// retrying, dead. Published under the queue lock, so subscribers
	// observe stages in state-machine order; the stream itself never
	// blocks (drop-oldest ring), so a slow SSE client cannot stall a
	// transition.
	Events *obs.Stream
	// Clock and Jitter are injectable for tests (defaults: time.Now and
	// math/rand).
	Clock  func() time.Time
	Jitter func() float64
	// AppendHook, when non-nil, runs before every journal append; an
	// error simulates a crash at that record boundary: the append never
	// happens, the operation fails, and the queue refuses further work
	// with ErrCrashed. Exists for the fault-injection harness.
	AppendHook func(recType string, seq uint64) error
}

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 1024
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 2 * time.Minute
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 5
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 250 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = time.Minute
	}
	if c.MaxSegmentBytes <= 0 {
		c.MaxSegmentBytes = 4 << 20
	}
	if c.RetainTerminal <= 0 {
		c.RetainTerminal = 1024
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	if c.Jitter == nil {
		c.Jitter = rand.Float64
	}
	return c
}

// Stats is a point-in-time snapshot of queue activity.
type Stats struct {
	Queued   int `json:"queued"`
	Retrying int `json:"retrying"`
	Leased   int `json:"leased"`
	Done     int `json:"done"`
	Dead     int `json:"dead"`
	// Depth is the backlog the admission controller sheds on:
	// queued + retrying + leased.
	Depth    int `json:"depth"`
	Capacity int `json:"capacity"`

	Enqueued     int64 `json:"enqueued"`
	Completed    int64 `json:"completed"`
	Retries      int64 `json:"retries"`
	DeadTotal    int64 `json:"dead_total"`
	LeaseExpired int64 `json:"lease_expired"`
	Shed         int64 `json:"shed"`
	Recovered    int64 `json:"recovered"`
}

// openDirs guards against two queues in one process sharing a journal
// directory; cross-process sharing is refused via the pid lock file.
var (
	openDirsMu sync.Mutex
	openDirs   = map[string]bool{} // guarded by openDirsMu
)

// Queue is the durable job queue. All methods are safe for concurrent
// use.
type Queue struct {
	cfg Config
	// hLeaseHold / hRetryDelay are set once in Open (before the queue is
	// shared) and immutable after; their record path is lock-free.
	hLeaseHold  *obs.Histogram
	hRetryDelay *obs.Histogram

	mu      sync.Mutex
	j       *journal        // guarded by mu (nil when memory-only)
	unlock  func()          // guarded by mu
	jobs    map[string]*job // guarded by mu
	order   []string        // guarded by mu (submission order)
	nextID  uint64          // guarded by mu
	nextSeq uint64          // guarded by mu
	counts  Stats           // guarded by mu
	closed  bool            // guarded by mu
	crashed error           // guarded by mu
}

// Open builds a queue over dir, replaying any existing journal. Leased
// jobs found in the journal — work that was in flight when the previous
// process died — return to the queue with their attempt counter bumped,
// so a job that keeps killing its worker still exhausts a budget
// instead of crash-looping forever.
func Open(cfg Config) (*Queue, error) {
	cfg = cfg.withDefaults()
	q := &Queue{cfg: cfg, jobs: make(map[string]*job)}
	q.hLeaseHold = cfg.Metrics.Histogram("relatch_queue_lease_hold_seconds")
	q.hRetryDelay = cfg.Metrics.Histogram("relatch_queue_retry_delay_seconds")
	if cfg.Dir == "" {
		q.updateGaugesLocked()
		return q, nil
	}
	unlock, err := acquireLock(cfg.Dir)
	if err != nil {
		return nil, err
	}
	j, recs, err := openJournal(cfg.Dir, cfg.MaxSegmentBytes)
	if err != nil {
		unlock()
		return nil, err
	}
	q.j, q.unlock = j, unlock
	q.replay(recs)
	q.nextSeq = j.lastSeq
	// Journal the recovery of every job that was leased at crash time,
	// so a second replay sees the requeue instead of re-bumping it.
	for _, id := range q.order {
		jb := q.jobs[id]
		if jb.State != StateLeased {
			continue
		}
		jb.State = StateQueued
		jb.Attempts++
		jb.LastError = "recovered: lease cut by restart"
		jb.NextRetry = time.Time{}
		jb.LeaseExpiry = time.Time{}
		q.counts.Recovered++
		cfg.Metrics.Add(`relatch_queue_jobs_total{event="recovered"}`, 1)
		if jb.Attempts >= jb.MaxAttempts {
			if err := q.markDeadLocked(jb, jb.Attempts, jb.LastError); err != nil {
				q.closeLocked()
				return nil, err
			}
			continue
		}
		if err := q.appendLocked(record{
			Type: "recover", ID: jb.ID, Attempts: jb.Attempts, Error: jb.LastError,
		}); err != nil {
			q.closeLocked()
			return nil, err
		}
	}
	if err := q.maybeCompactLocked(); err != nil {
		q.closeLocked()
		return nil, err
	}
	q.updateGaugesLocked()
	return q, nil
}

// replay rebuilds the in-memory state from journal records.
//
//relint:ignore guardedby -- replay runs only from Open before the Queue is published; no other goroutine can observe the fields yet, so locking would be pure overhead
func (q *Queue) replay(recs []record) {
	for _, r := range recs {
		switch r.Type {
		case "submit", "snap":
			jb, known := q.jobs[r.ID]
			if !known {
				jb = &job{}
				q.jobs[r.ID] = jb
				q.order = append(q.order, r.ID)
			}
			jb.ID, jb.Key, jb.Payload = r.ID, r.Key, r.Payload
			jb.MaxAttempts = r.MaxAttempts
			jb.EnqueuedAt = time.Unix(0, r.EnqueuedNS)
			if r.Type == "snap" {
				jb.State = parseState(r.State)
				jb.Attempts = r.Attempts
				jb.LastError = r.Error
				jb.Lease = r.Lease
				jb.Result = r.Result
				if r.NextRetNS > 0 {
					jb.NextRetry = time.Unix(0, r.NextRetNS)
				}
				if r.ExpiryNS > 0 {
					jb.LeaseExpiry = time.Unix(0, r.ExpiryNS)
				}
			} else {
				jb.State = StateQueued
			}
			if n := idNumber(r.ID); n > q.nextID {
				q.nextID = n
			}
		case "lease":
			if jb, ok := q.jobs[r.ID]; ok {
				jb.State = StateLeased
				jb.Lease = r.Lease
				jb.LeaseExpiry = time.Unix(0, r.ExpiryNS)
			}
		case "complete":
			if jb, ok := q.jobs[r.ID]; ok {
				jb.State = StateDone
				jb.Result = r.Result
				jb.LastError = ""
			}
		case "fail", "recover":
			if jb, ok := q.jobs[r.ID]; ok {
				jb.State = StateQueued
				jb.Attempts = r.Attempts
				jb.LastError = r.Error
				jb.Lease = 0
				jb.LeaseExpiry = time.Time{}
				if r.NextRetNS > 0 {
					jb.NextRetry = time.Unix(0, r.NextRetNS)
				} else {
					jb.NextRetry = time.Time{}
				}
			}
		case "dead":
			if jb, ok := q.jobs[r.ID]; ok {
				jb.State = StateDead
				jb.LastError = r.Error
				jb.Attempts = r.Attempts
			}
		}
	}
	// Rebuild lifetime counters that survive restarts only approximately:
	// current states are exact, totals restart from the replayed view.
	for _, id := range q.order {
		switch q.jobs[id].State {
		case StateDone:
			q.counts.Completed++
		case StateDead:
			q.counts.DeadTotal++
		}
		q.counts.Enqueued++
	}
}

func parseState(s string) State {
	switch s {
	case "leased":
		return StateLeased
	case "done":
		return StateDone
	case "dead":
		return StateDead
	}
	return StateQueued
}

func idNumber(id string) uint64 {
	n, err := strconv.ParseUint(strings.TrimPrefix(id, "q-"), 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// Close releases the journal and directory lock. Safe to call twice.
func (q *Queue) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closeLocked()
}

func (q *Queue) closeLocked() error {
	if q.closed {
		return nil
	}
	q.closed = true
	err := q.j.close()
	if q.unlock != nil {
		q.unlock()
	}
	return err
}

// guardLocked refuses operations on closed or crashed queues.
func (q *Queue) guardLocked() error {
	if q.closed {
		return fmt.Errorf("queue: %w", ErrClosed)
	}
	if q.crashed != nil {
		return fmt.Errorf("queue: %w: %v", ErrCrashed, q.crashed)
	}
	return nil
}

// appendLocked assigns the next sequence number and journals one
// record (no-op memory-only). An AppendHook error or write failure
// poisons the queue: state and disk may diverge, so nothing further is
// accepted.
func (q *Queue) appendLocked(r record) error {
	//relint:ignore journalfirst -- this IS the append primitive: the seq must be assigned before the record carrying it is written, and a failed write poisons the queue (ErrCrashed), so memory and disk can never silently diverge
	q.nextSeq++
	r.Seq = q.nextSeq
	if q.cfg.AppendHook != nil {
		if err := q.cfg.AppendHook(r.Type, r.Seq); err != nil {
			q.crashed = err
			return fmt.Errorf("queue: journal append (%s %s): %w", r.Type, r.ID, err)
		}
	}
	if q.j == nil {
		return nil
	}
	if err := q.j.append(r); err != nil {
		q.crashed = err
		return err
	}
	return nil
}

// maybeCompactLocked rotates the journal once the active segment
// outgrows its budget. It must run only after the in-memory state has
// absorbed the latest transition: the compaction snapshot replaces the
// old segments, so snapshotting before the mutation would erase the
// record that was just written.
func (q *Queue) maybeCompactLocked() error {
	if q.j == nil || !q.j.shouldCompact() {
		return nil
	}
	if err := q.j.compact(q.snapshotLocked()); err != nil {
		q.crashed = err
		return err
	}
	return nil
}

// snapshotLocked renders every retained job as a snap record for
// compaction.
func (q *Queue) snapshotLocked() []record {
	snaps := make([]record, 0, len(q.order))
	for _, id := range q.order {
		jb := q.jobs[id]
		q.nextSeq++
		snaps = append(snaps, record{
			Seq: q.nextSeq, Type: "snap", ID: jb.ID, Key: jb.Key,
			Payload: jb.Payload, MaxAttempts: jb.MaxAttempts,
			EnqueuedNS: jb.EnqueuedAt.UnixNano(), State: jb.State.String(),
			Attempts: jb.Attempts, Error: jb.LastError, Lease: jb.Lease,
			ExpiryNS: nanosOrZero(jb.LeaseExpiry), NextRetNS: nanosOrZero(jb.NextRetry),
			Result: jb.Result,
		})
	}
	return snaps
}

func nanosOrZero(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

// liveLocked counts jobs occupying capacity.
func (q *Queue) liveLocked() int {
	n := 0
	for _, id := range q.order {
		if s := q.jobs[id].State; s == StateQueued || s == StateLeased {
			n++
		}
	}
	return n
}

// Enqueue journals and admits one job, returning its snapshot. A full
// queue sheds the submission with ErrFull — the caller turns that into
// 429 + Retry-After.
func (q *Queue) Enqueue(key string, payload []byte) (Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if err := q.guardLocked(); err != nil {
		return Job{}, err
	}
	if q.liveLocked() >= q.cfg.Capacity {
		q.counts.Shed++
		q.cfg.Metrics.Add(`relatch_queue_jobs_total{event="shed"}`, 1)
		return Job{}, fmt.Errorf("queue: %w: %d live jobs at capacity %d", ErrFull, q.liveLocked(), q.cfg.Capacity)
	}
	nextID := q.nextID + 1
	jb := &job{Job: Job{
		ID:          fmt.Sprintf("q-%08d", nextID),
		Key:         key,
		Payload:     append(json.RawMessage(nil), payload...),
		State:       StateQueued,
		MaxAttempts: q.cfg.MaxAttempts,
		EnqueuedAt:  q.cfg.Clock(),
	}}
	// Journal first: the job is owed to the client only once the submit
	// record is durable, which is why the HTTP 202 may trust it. The ID
	// counter is speculative in a local until then, so a failed append
	// needs no rollback.
	if err := q.appendLocked(record{
		Type: "submit", ID: jb.ID, Key: key, Payload: jb.Payload,
		MaxAttempts: jb.MaxAttempts, EnqueuedNS: jb.EnqueuedAt.UnixNano(),
	}); err != nil {
		return Job{}, err
	}
	q.nextID = nextID
	q.jobs[jb.ID] = jb
	q.order = append(q.order, jb.ID)
	q.counts.Enqueued++
	q.cfg.Metrics.Add(`relatch_queue_jobs_total{event="enqueued"}`, 1)
	q.publishStageLocked(jb.ID, "queued")
	q.updateGaugesLocked()
	if err := q.maybeCompactLocked(); err != nil {
		return Job{}, err
	}
	return jb.Job, nil
}

// publishStageLocked emits one lifecycle stage event for live (SSE)
// consumers. Publishing while q.mu is held serializes the stage stream
// with the state machine — a subscriber can never see "leased" before
// "queued" — and stays safe because Stream.Publish never blocks.
func (q *Queue) publishStageLocked(id, stage string) {
	q.cfg.Events.Publish(obs.StreamEvent{Kind: "stage", Scope: id, Name: stage})
}

// Lease hands the oldest eligible job to a worker under a TTL-bounded,
// token-fenced lease. The boolean is false when nothing is eligible
// (empty queue or every queued job still waiting out its backoff).
func (q *Queue) Lease() (Job, bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if err := q.guardLocked(); err != nil {
		return Job{}, false, err
	}
	now := q.cfg.Clock()
	for _, id := range q.order {
		jb := q.jobs[id]
		if jb.State != StateQueued || jb.NextRetry.After(now) {
			continue
		}
		//relint:ignore journalfirst -- lease tokens ride the sequence space (unique, monotonic); a burned seq is harmless on its own and a failed append below poisons the queue anyway
		q.nextSeq++
		tok := q.nextSeq
		expiry := now.Add(q.cfg.LeaseTTL)
		if err := q.appendLocked(record{
			Type: "lease", ID: jb.ID, Lease: tok, ExpiryNS: expiry.UnixNano(),
		}); err != nil {
			return Job{}, false, err
		}
		jb.State = StateLeased
		jb.Lease = tok
		jb.LeaseExpiry = expiry
		jb.LeasedAt = now
		q.cfg.Metrics.Add(`relatch_queue_jobs_total{event="leased"}`, 1)
		q.publishStageLocked(jb.ID, "leased")
		q.updateGaugesLocked()
		if err := q.maybeCompactLocked(); err != nil {
			return Job{}, false, err
		}
		return jb.Job, true, nil
	}
	return Job{}, false, nil
}

// checkLeaseLocked resolves a transition's job and fences its token.
func (q *Queue) checkLeaseLocked(id string, lease uint64) (*job, error) {
	jb, ok := q.jobs[id]
	if !ok {
		return nil, fmt.Errorf("queue: %w: %s", ErrNoJob, id)
	}
	if jb.State != StateLeased || jb.Lease != lease {
		return nil, fmt.Errorf("queue: %w: job %s is %s under lease %d, caller holds %d",
			ErrStaleLease, id, jb.State, jb.Lease, lease)
	}
	return jb, nil
}

// Complete settles a leased job as done with its result payload. A
// stale lease token — the job expired and was handed to another worker,
// or was already settled — is rejected, which is what keeps duplicate
// deliveries from double-publishing results.
func (q *Queue) Complete(id string, lease uint64, result []byte) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if err := q.guardLocked(); err != nil {
		return err
	}
	jb, err := q.checkLeaseLocked(id, lease)
	if err != nil {
		return err
	}
	res := append(json.RawMessage(nil), result...)
	if err := q.appendLocked(record{Type: "complete", ID: id, Result: res}); err != nil {
		return err
	}
	jb.State = StateDone
	jb.Result = res
	jb.LastError = ""
	jb.Lease, jb.LeaseExpiry = 0, time.Time{}
	q.observeLeaseHoldLocked(jb)
	q.counts.Completed++
	q.cfg.Metrics.Add(`relatch_queue_jobs_total{event="completed"}`, 1)
	q.publishStageLocked(jb.ID, "done")
	q.trimTerminalLocked()
	q.updateGaugesLocked()
	return q.maybeCompactLocked()
}

// observeLeaseHoldLocked records how long the settling worker held its
// lease and clears the mark. Replay-recovered jobs carry a zero
// LeasedAt and record nothing.
func (q *Queue) observeLeaseHoldLocked(jb *job) {
	if jb.LeasedAt.IsZero() {
		return
	}
	q.hLeaseHold.Observe(q.cfg.Clock().Sub(jb.LeasedAt))
	jb.LeasedAt = time.Time{}
}

// Fail settles a leased attempt as failed: the job re-queues with
// backoff until its budget is spent, then moves to the dead letter.
func (q *Queue) Fail(id string, lease uint64, cause error) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if err := q.guardLocked(); err != nil {
		return err
	}
	jb, err := q.checkLeaseLocked(id, lease)
	if err != nil {
		return err
	}
	return q.failLocked(jb, errString(cause))
}

// Kill settles a leased job straight into the dead-letter state, for
// errors that are deterministic (a payload that no longer builds) and
// would only burn the retry budget.
func (q *Queue) Kill(id string, lease uint64, cause error) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if err := q.guardLocked(); err != nil {
		return err
	}
	jb, err := q.checkLeaseLocked(id, lease)
	if err != nil {
		return err
	}
	return q.markDeadLocked(jb, jb.Attempts+1, errString(cause))
}

// failLocked applies one failed attempt: retry with backoff or dead.
// The attempt count advances in a local until the fail record is
// durable (write-ahead contract).
func (q *Queue) failLocked(jb *job, cause string) error {
	attempts := jb.Attempts + 1
	if attempts >= jb.MaxAttempts {
		return q.markDeadLocked(jb, attempts, cause)
	}
	delay := q.backoff(attempts)
	next := q.cfg.Clock().Add(delay)
	if err := q.appendLocked(record{
		Type: "fail", ID: jb.ID, Attempts: attempts, Error: cause,
		NextRetNS: next.UnixNano(),
	}); err != nil {
		return err
	}
	jb.Attempts = attempts
	jb.State = StateQueued
	jb.LastError = cause
	jb.NextRetry = next
	jb.Lease, jb.LeaseExpiry = 0, time.Time{}
	q.observeLeaseHoldLocked(jb)
	q.hRetryDelay.Observe(delay)
	q.counts.Retries++
	q.cfg.Metrics.Add("relatch_queue_retries_total", 1)
	q.publishStageLocked(jb.ID, "retrying")
	q.updateGaugesLocked()
	return q.maybeCompactLocked()
}

// markDeadLocked journals and applies the dead-letter transition.
// attempts is the count the dead record should carry; it lands on the
// job only after the record is durable (write-ahead contract).
func (q *Queue) markDeadLocked(jb *job, attempts int, cause string) error {
	if err := q.appendLocked(record{
		Type: "dead", ID: jb.ID, Attempts: attempts, Error: cause,
	}); err != nil {
		return err
	}
	jb.Attempts = attempts
	jb.State = StateDead
	jb.LastError = cause
	jb.Lease, jb.LeaseExpiry = 0, time.Time{}
	q.observeLeaseHoldLocked(jb)
	q.counts.DeadTotal++
	q.cfg.Metrics.Add("relatch_queue_dead_total", 1)
	q.publishStageLocked(jb.ID, "dead")
	q.trimTerminalLocked()
	q.updateGaugesLocked()
	return q.maybeCompactLocked()
}

// backoff computes the jittered exponential retry delay for an attempt.
func (q *Queue) backoff(attempt int) time.Duration {
	d := q.cfg.BaseBackoff
	for i := 1; i < attempt && d < q.cfg.MaxBackoff; i++ {
		d *= 2
	}
	if d > q.cfg.MaxBackoff {
		d = q.cfg.MaxBackoff
	}
	// ±20% jitter decorrelates retry storms after a shared failure.
	return time.Duration(float64(d) * (0.8 + 0.4*q.cfg.Jitter()))
}

// ExpireLeases sweeps leases past their TTL, re-queueing (or
// dead-lettering) the jobs as failed attempts. It returns how many
// leases expired.
func (q *Queue) ExpireLeases() (int, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if err := q.guardLocked(); err != nil {
		return 0, err
	}
	now := q.cfg.Clock()
	expired := 0
	for _, id := range q.order {
		jb := q.jobs[id]
		if jb.State != StateLeased || jb.LeaseExpiry.After(now) {
			continue
		}
		expired++
		q.counts.LeaseExpired++
		q.cfg.Metrics.Add("relatch_queue_lease_expired_total", 1)
		if err := q.failLocked(jb, fmt.Sprintf("lease expired after %v", q.cfg.LeaseTTL)); err != nil {
			return expired, err
		}
	}
	return expired, nil
}

// trimTerminalLocked drops the oldest terminal jobs beyond the
// retention bound so the inspection surface stays bounded too.
func (q *Queue) trimTerminalLocked() {
	terminal := 0
	for _, id := range q.order {
		if s := q.jobs[id].State; s == StateDone || s == StateDead {
			terminal++
		}
	}
	if terminal <= q.cfg.RetainTerminal {
		return
	}
	keep := q.order[:0]
	for _, id := range q.order {
		s := q.jobs[id].State
		if (s == StateDone || s == StateDead) && terminal > q.cfg.RetainTerminal {
			terminal--
			delete(q.jobs, id)
			continue
		}
		keep = append(keep, id)
	}
	q.order = keep
}

// Get returns a job snapshot by ID.
func (q *Queue) Get(id string) (Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	jb, ok := q.jobs[id]
	if !ok {
		return Job{}, false
	}
	return jb.Job, true
}

// Jobs lists every retained job in submission order.
func (q *Queue) Jobs() []Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Job, 0, len(q.order))
	for _, id := range q.order {
		out = append(out, q.jobs[id].Job)
	}
	return out
}

// Err reports the queue's ability to accept transitions: nil when
// healthy, a wrapped ErrClosed or ErrCrashed otherwise.
func (q *Queue) Err() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.guardLocked()
}

// Full reports whether the next Enqueue would shed.
func (q *Queue) Full() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.liveLocked() >= q.cfg.Capacity
}

// Now returns the queue's clock reading, so callers render "retrying"
// consistently with the queue's own backoff decisions.
func (q *Queue) Now() time.Time { return q.cfg.Clock() }

// Stats returns a snapshot of the queue's counters.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := q.counts
	now := q.cfg.Clock()
	for _, id := range q.order {
		jb := q.jobs[id]
		switch jb.State {
		case StateQueued:
			if jb.Attempts > 0 && jb.NextRetry.After(now) {
				s.Retrying++
			} else {
				s.Queued++
			}
		case StateLeased:
			s.Leased++
		case StateDone:
			s.Done++
		case StateDead:
			s.Dead++
		}
	}
	s.Depth = s.Queued + s.Retrying + s.Leased
	s.Capacity = q.cfg.Capacity
	return s
}

// updateGaugesLocked publishes the depth gauges after a transition.
func (q *Queue) updateGaugesLocked() {
	if q.cfg.Metrics == nil {
		return
	}
	queued, leased := 0, 0
	for _, id := range q.order {
		switch q.jobs[id].State {
		case StateQueued:
			queued++
		case StateLeased:
			leased++
		}
	}
	q.cfg.Metrics.Set("relatch_queue_depth", int64(queued+leased))
	q.cfg.Metrics.Set("relatch_queue_leased", int64(leased))
}

func errString(err error) string {
	if err == nil {
		return "unspecified failure"
	}
	return err.Error()
}

// acquireLock takes the queue directory's single-writer lock: an
// in-process registry catches two queues over one dir in the same
// process, and a pid file refuses a directory another live process
// owns. A lock left behind by a SIGKILLed process is stolen, which is
// what lets a crashed service restart on its own queue dir.
func acquireLock(dir string) (func(), error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("queue: lock dir: %w", err)
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("queue: lock dir: %w", err)
	}
	openDirsMu.Lock()
	if openDirs[abs] {
		openDirsMu.Unlock()
		return nil, fmt.Errorf("queue: %w: %s is already open in this process", ErrLocked, dir)
	}
	openDirs[abs] = true
	openDirsMu.Unlock()
	release := func() {
		openDirsMu.Lock()
		delete(openDirs, abs)
		openDirsMu.Unlock()
	}

	path := filepath.Join(dir, "queue.lock")
	for tries := 0; tries < 3; tries++ {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			fmt.Fprintf(f, "%d\n", os.Getpid())
			f.Close()
			return func() {
				os.Remove(path)
				release()
			}, nil
		}
		raw, rerr := os.ReadFile(path)
		if rerr != nil {
			if os.IsNotExist(rerr) {
				continue // raced with another unlock; retry the create
			}
			release()
			return nil, fmt.Errorf("queue: reading lock: %w", rerr)
		}
		pid, _ := strconv.Atoi(strings.TrimSpace(string(raw)))
		if pid > 0 && pid != os.Getpid() && pidAlive(pid) {
			release()
			return nil, fmt.Errorf("queue: %w: %s held by running process %d", ErrLocked, dir, pid)
		}
		os.Remove(path) // stale lock from a dead process: steal it
	}
	release()
	return nil, fmt.Errorf("queue: %w: could not acquire lock on %s", ErrLocked, dir)
}

// pidAlive reports whether a process with the pid exists.
func pidAlive(pid int) bool {
	p, err := os.FindProcess(pid)
	if err != nil {
		return false
	}
	return p.Signal(syscall.Signal(0)) == nil
}
