package clocking_test

import (
	"fmt"

	"relatch/internal/clocking"
)

// The worked example of the paper's Fig. 4 uses φ1=γ1=φ2=γ2=2.5: a
// period of 10 with a 2.5 resiliency window.
func ExampleScheme() {
	s := clocking.Scheme{Phi1: 2.5, Gamma1: 2.5, Phi2: 2.5, Gamma2: 2.5}
	fmt.Println(s.Period(), s.MaxStageDelay(), s.ResiliencyWindow())
	fmt.Println(s.SlaveOpen(), s.SlaveClose(), s.BackwardLimit())
	// Output:
	// 10 12.5 2.5
	// 5 7.5 7.5
}

// Symmetric derives the evaluation clocking of Section VI-A from a stage
// budget P: φ1 = 0.3P, γ1 = 0, φ2 = 0.35P, γ2 = 0.05P.
func ExampleSymmetric() {
	s := clocking.Symmetric(1.0)
	fmt.Printf("Pi=%.2f window=%.2f stage budget=%.2f\n",
		s.Period(), s.ResiliencyWindow(), s.MaxStageDelay())
	// Output:
	// Pi=0.70 window=0.30 stage budget=1.00
}

// WindowContains tells whether an arrival at a master latch falls inside
// the timing resiliency window (Π, Π+φ1], forcing error detection.
func ExampleScheme_WindowContains() {
	s := clocking.Symmetric(1.0)
	for _, arrival := range []float64{0.65, 0.75, 1.05} {
		fmt.Println(arrival, s.WindowContains(arrival))
	}
	// Output:
	// 0.65 false
	// 0.75 true
	// 1.05 false
}
