package clocking

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSymmetricMatchesPaperRatios(t *testing.T) {
	// Section VI-A: φ1 = 0.3P, γ1 = 0, φ2 = 0.35P, γ2 = 0.05P,
	// so Π = 0.7P and Π + φ1 = P.
	const p = 2.0
	s := Symmetric(p)
	if !almost(s.Phi1, 0.6) || !almost(s.Gamma1, 0) || !almost(s.Phi2, 0.7) || !almost(s.Gamma2, 0.1) {
		t.Fatalf("Symmetric(%g) = %+v", p, s)
	}
	if !almost(s.Period(), 0.7*p) {
		t.Errorf("Period = %g, want %g", s.Period(), 0.7*p)
	}
	if !almost(s.MaxStageDelay(), p) {
		t.Errorf("MaxStageDelay = %g, want %g", s.MaxStageDelay(), p)
	}
}

func TestFig4SchemeConstants(t *testing.T) {
	// The worked example of Fig. 4 uses φ1=γ1=φ2=γ2=2.5.
	s := Scheme{Phi1: 2.5, Gamma1: 2.5, Phi2: 2.5, Gamma2: 2.5}
	if !almost(s.Period(), 10) {
		t.Errorf("Π = %g, want 10", s.Period())
	}
	if !almost(s.ForwardLimit(), 7.5) {
		t.Errorf("forward limit φ1+γ1+φ2 = %g, want 7.5", s.ForwardLimit())
	}
	if !almost(s.BackwardLimit(), 7.5) {
		t.Errorf("backward limit φ2+γ2+φ1 = %g, want 7.5", s.BackwardLimit())
	}
	if !almost(s.SlaveOpen(), 5) {
		t.Errorf("slave open φ1+γ1 = %g, want 5", s.SlaveOpen())
	}
	if !almost(s.MaxStageDelay(), 12.5) {
		t.Errorf("Π+φ1 = %g, want 12.5", s.MaxStageDelay())
	}
}

func TestWindowContains(t *testing.T) {
	s := Symmetric(1.0) // Π = 0.7, window (0.7, 1.0]
	cases := []struct {
		arrival float64
		want    bool
	}{
		{0.0, false}, {0.5, false}, {0.7, false},
		{0.700001, true}, {0.9, true}, {1.0, true},
		{1.000001, false},
	}
	for _, c := range cases {
		if got := s.WindowContains(c.arrival); got != c.want {
			t.Errorf("WindowContains(%g) = %v, want %v", c.arrival, got, c.want)
		}
	}
}

func TestValidate(t *testing.T) {
	good := Symmetric(1)
	if err := good.Validate(); err != nil {
		t.Errorf("valid scheme rejected: %v", err)
	}
	bad := []Scheme{
		{Phi1: 0, Phi2: 1},
		{Phi1: 1, Phi2: 0},
		{Phi1: 1, Phi2: 1, Gamma1: -0.1},
		{Phi1: 1, Phi2: 1, Gamma2: -0.1},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("invalid scheme accepted: %+v", s)
		}
	}
}

func TestSchemeIdentities(t *testing.T) {
	// Property: the derived quantities satisfy their defining identities
	// for any positive scheme.
	err := quick.Check(func(a, b, c, d uint16) bool {
		s := Scheme{
			Phi1:   0.1 + float64(a)/100,
			Gamma1: float64(b) / 100,
			Phi2:   0.1 + float64(c)/100,
			Gamma2: float64(d) / 100,
		}
		return almost(s.Period(), s.Phi1+s.Gamma1+s.Phi2+s.Gamma2) &&
			almost(s.MaxStageDelay(), s.Period()+s.Phi1) &&
			almost(s.SlaveClose(), s.SlaveOpen()+s.Phi2) &&
			almost(s.BackwardLimit(), s.Phi2+s.Gamma2+s.Phi1) &&
			almost(s.ForwardLimit(), s.SlaveClose())
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestWaveform(t *testing.T) {
	s := Symmetric(1.0)
	w := s.Waveform(40)
	lines := strings.Split(strings.TrimRight(w, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("waveform has %d lines, want 3:\n%s", len(lines), w)
	}
	if !strings.HasPrefix(lines[0], "phi1:") || !strings.HasPrefix(lines[1], "phi2:") || !strings.HasPrefix(lines[2], "TRW :") {
		t.Fatalf("unexpected waveform labels:\n%s", w)
	}
	// Phase 1 must be high at the start and during the trailing window.
	body := lines[0][6:]
	if body[0] != '^' {
		t.Errorf("phi1 must open the cycle high:\n%s", w)
	}
	if body[len(body)-1] != '^' {
		t.Errorf("phi1 must be high during the trailing resiliency window:\n%s", w)
	}
	// The two phases must never be high simultaneously.
	p1, p2 := lines[0][6:], lines[1][6:]
	for i := range p1 {
		if p1[i] == '^' && p2[i] == '^' {
			t.Fatalf("overlapping phases at column %d:\n%s", i, w)
		}
	}
}

func TestWaveformMinWidth(t *testing.T) {
	s := Symmetric(1.0)
	if w := s.Waveform(1); !strings.Contains(w, "phi1") {
		t.Error("tiny width should still render")
	}
}
