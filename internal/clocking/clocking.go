// Package clocking models the symmetric two-phase clock scheme of a
// latch-based resilient circuit (Section II-A of the paper):
//
//	Π = ⟨φ1, γ1, φ2, γ2⟩
//
// where φi is the transparent window of phase i and γi the gap from the
// falling edge of phase i to the rising edge of phase i+1. Master latches
// are clocked by phase 1 and may be error-detecting; slave latches are
// clocked by phase 2 and time-borrow. The timing resiliency window equals
// φ1: data arriving at a master inside (Π, Π+φ1] is caught by the EDL and
// the next stage's clock is delayed by φ1.
package clocking

import (
	"fmt"
	"strings"
)

// Scheme is one two-phase clock configuration. All durations share a unit
// (nanoseconds throughout this repository).
type Scheme struct {
	Phi1   float64 // transparent window of phase 1 (= resiliency window)
	Gamma1 float64 // gap from phase-1 fall to phase-2 rise
	Phi2   float64 // transparent window of phase 2
	Gamma2 float64 // gap from phase-2 fall to the next phase-1 rise
}

// Symmetric builds the clocking used for all experiments in the paper
// (Section VI-A): given the maximum stage delay P, the resiliency window
// φ1 = 0.3P, γ1 = 0, φ2 = 0.35P, γ2 = 0.05P, so Π = 0.7P and Π + φ1 = P.
func Symmetric(maxStageDelay float64) Scheme {
	p := maxStageDelay
	return Scheme{
		Phi1:   0.30 * p,
		Gamma1: 0,
		Phi2:   0.35 * p,
		Gamma2: 0.05 * p,
	}
}

// Period Π is the clock period: φ1 + γ1 + φ2 + γ2.
func (s Scheme) Period() float64 {
	return s.Phi1 + s.Gamma1 + s.Phi2 + s.Gamma2
}

// MaxStageDelay is the maximum legal combinational delay P between master
// stages, Π + φ1: a stage may overrun the period by the resiliency window
// at the cost of an error-detection event.
func (s Scheme) MaxStageDelay() float64 {
	return s.Period() + s.Phi1
}

// ResiliencyWindow returns the width φ1 of the timing resiliency window.
func (s Scheme) ResiliencyWindow() float64 { return s.Phi1 }

// SlaveOpen is the time, relative to a master launch at t=0, at which the
// slave latches of the stage become transparent: φ1 + γ1.
func (s Scheme) SlaveOpen() float64 { return s.Phi1 + s.Gamma1 }

// SlaveClose is the time at which the slave latches close:
// φ1 + γ1 + φ2. Data must stabilize through a slave before this —
// constraint (6): D^f(v) ≤ φ1 + γ1 + φ2 for a slave placed at gate v.
func (s Scheme) SlaveClose() float64 { return s.Phi1 + s.Gamma1 + s.Phi2 }

// ForwardLimit is the slave time-borrowing bound of constraint (6),
// an alias of SlaveClose kept for readability at call sites.
func (s Scheme) ForwardLimit() float64 { return s.SlaveClose() }

// BackwardLimit is the bound of constraint (7): a slave at gate v needs
// D^b(v,t) ≤ φ2 + γ2 + φ1 for every terminating master t, so data
// launched at the slave opening still reaches t before its own close.
func (s Scheme) BackwardLimit() float64 { return s.Phi2 + s.Gamma2 + s.Phi1 }

// WindowContains reports whether an arrival time at a master latch falls
// inside the timing resiliency window (Π, Π+φ1], forcing error detection.
func (s Scheme) WindowContains(arrival float64) bool {
	return arrival > s.Period() && arrival <= s.MaxStageDelay()
}

// Validate checks the scheme is physically meaningful.
func (s Scheme) Validate() error {
	switch {
	case s.Phi1 <= 0:
		return fmt.Errorf("clocking: φ1 must be positive, got %g", s.Phi1)
	case s.Phi2 <= 0:
		return fmt.Errorf("clocking: φ2 must be positive, got %g", s.Phi2)
	case s.Gamma1 < 0:
		return fmt.Errorf("clocking: γ1 must be non-negative, got %g", s.Gamma1)
	case s.Gamma2 < 0:
		return fmt.Errorf("clocking: γ2 must be non-negative, got %g", s.Gamma2)
	}
	return nil
}

// String renders the scheme in the paper's Π = ⟨φ1,γ1,φ2,γ2⟩ notation.
func (s Scheme) String() string {
	return fmt.Sprintf("Pi=<%g,%g,%g,%g> (period %g, max stage delay %g)",
		s.Phi1, s.Gamma1, s.Phi2, s.Gamma2, s.Period(), s.MaxStageDelay())
}

// Waveform renders an ASCII reproduction of Fig. 1: the two clock phases
// over one period plus the resiliency window of the following cycle.
// width is the number of character columns per period.
func (s Scheme) Waveform(width int) string {
	if width < 16 {
		width = 16
	}
	total := s.Period() + s.Phi1 // show the trailing resiliency window
	cols := int(float64(width) * total / s.Period())
	col := func(t float64) int {
		c := int(t / total * float64(cols))
		if c >= cols {
			c = cols - 1
		}
		return c
	}
	p1 := make([]byte, cols)
	p2 := make([]byte, cols)
	win := make([]byte, cols)
	for i := range p1 {
		p1[i], p2[i], win[i] = '_', '_', ' '
	}
	// Phase 1 high during [0, φ1) and again at [Π, Π+φ1).
	for i := col(0); i < col(s.Phi1); i++ {
		p1[i] = '^'
	}
	for i := col(s.Period()); i < cols; i++ {
		p1[i] = '^'
	}
	// Phase 2 high during [φ1+γ1, φ1+γ1+φ2).
	for i := col(s.SlaveOpen()); i < col(s.SlaveClose()); i++ {
		p2[i] = '^'
	}
	// Resiliency window of the next master stage: (Π, Π+φ1].
	for i := col(s.Period()); i < cols; i++ {
		win[i] = '~'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "phi1: %s\n", p1)
	fmt.Fprintf(&b, "phi2: %s\n", p2)
	fmt.Fprintf(&b, "TRW : %s\n", win)
	return b.String()
}
