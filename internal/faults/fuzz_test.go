package faults

import (
	"context"
	"testing"
	"time"

	"relatch/internal/cell"
	"relatch/internal/core"
	"relatch/internal/verilog"
)

// FuzzCert drives the full parse → cut → retime → certify pipeline on
// arbitrary Verilog, seeded with the parser's crasher corpus. Errors at
// any stage are acceptable outcomes; panics are not. When retiming
// succeeds, the post-solve certification gate inside core.RetimeCtx has
// by construction found nothing — the fuzzer asserts the certificate is
// actually attached and clean so the gate cannot be silently bypassed.
func FuzzCert(f *testing.F) {
	for _, src := range verilog.CrasherCorpus {
		f.Add(src)
	}
	f.Add(goodSource)

	lib := cell.Default(1.0)
	f.Fuzz(func(t *testing.T, src string) {
		sc, err := verilog.ParseString(src, lib)
		if err != nil {
			return
		}
		c, err := sc.Cut()
		if err != nil {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		res, err := core.RetimeCtx(ctx, c, core.Options{Scheme: goodScheme(), EDLCost: 1}, core.ApproachGRAR)
		if err != nil {
			return
		}
		if res.Certificate == nil {
			t.Fatalf("retiming succeeded without attaching a certificate")
		}
		if !res.Certificate.Certified() {
			t.Fatalf("uncertified result returned without error: %v", res.Certificate.Findings)
		}
	})
}
