package faults

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"relatch/internal/cell"
	"relatch/internal/cluster"
	"relatch/internal/engine"
)

// clusterFaults attacks the sharded serving tier: malformed membership,
// duplicated peers, credentials the policy layer must refuse, dead
// peers, and — the trust invariant — peer cache entries whose claims
// have been tampered with. Every corruption must surface as a
// descriptive error at the layer that owns it; the one deliberate
// exception is the tampered entry, where the cache API degrades to a
// miss by design, so that case asserts the rejection accounting fired
// and surfaces the underlying validation error via Probe.
func clusterFaults(lib *cell.Library) []Fault {
	return []Fault{
		{
			Name:  "membership entry without a URL",
			Class: "cluster/bad-membership",
			Inject: func(context.Context) error {
				_, err := cluster.ParsePeers("node-a=http://127.0.0.1:1,node-b")
				return err
			},
		},
		{
			Name:  "self missing from the membership list",
			Class: "cluster/bad-membership",
			Inject: func(context.Context) error {
				specs, err := cluster.ParsePeers("node-a=http://127.0.0.1:1")
				if err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				_, err = cluster.New(cluster.Config{Self: "node-z", Peers: specs})
				return err
			},
		},
		{
			Name:  "two peers sharing one node ID",
			Class: "cluster/duplicate-peer",
			Inject: func(context.Context) error {
				_, err := cluster.New(cluster.Config{Self: "node-a", Peers: []cluster.PeerSpec{
					{ID: "node-a"},
					{ID: "node-b", URL: "http://127.0.0.1:1"},
					{ID: "node-b", URL: "http://127.0.0.1:2"},
				}})
				return err
			},
		},
		{
			Name:  "bearer token no policy grants",
			Class: "cluster/unknown-token",
			Inject: func(context.Context) error {
				auth, err := cluster.NewAuth([]cluster.Policy{{Name: "ci", Token: "good"}}, nil)
				if err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				_, err = auth.Admit("stolen", time.Now())
				return err
			},
		},
		{
			Name:  "client bursting past its token bucket",
			Class: "cluster/rate-limited",
			Inject: func(context.Context) error {
				auth, err := cluster.NewAuth([]cluster.Policy{
					{Name: "ci", Token: "t", Rate: 0.001, Burst: 1},
				}, nil)
				if err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				now := time.Now()
				if _, err := auth.Admit("t", now); err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				_, err = auth.Admit("t", now)
				return err
			},
		},
		{
			Name:  "client past its lifetime quota",
			Class: "cluster/quota-exhausted",
			Inject: func(context.Context) error {
				auth, err := cluster.NewAuth([]cluster.Policy{
					{Name: "ci", Token: "t", Quota: 1},
				}, nil)
				if err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				now := time.Now()
				if _, err := auth.Admit("t", now); err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				_, err = auth.Admit("t", now)
				return err
			},
		},
		{
			Name:  "forward to a peer that is not listening",
			Class: "cluster/peer-down",
			Inject: func(ctx context.Context) error {
				node, err := cluster.New(cluster.Config{
					Self: "node-a",
					Peers: []cluster.PeerSpec{
						{ID: "node-a"},
						// TEST-NET-1 address: nothing routes there, so the
						// dial fails fast inside the configured timeout.
						{ID: "node-b", URL: "http://192.0.2.1:9"},
					},
					Timeout: 200 * time.Millisecond,
				})
				if err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				_, _, err = node.ForwardJob(ctx, "node-b", []byte(`{}`), "req-faults")
				return err
			},
		},
		{
			Name:  "peer cache entry with tampered claims",
			Class: "cluster/tampered-peer-entry",
			Inject: func(ctx context.Context) error {
				dir, err := os.MkdirTemp("", "relatch-faults-peer")
				if err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				defer os.RemoveAll(dir)
				cache, err := engine.NewCache(4, dir)
				if err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				job, err := engineJob(lib)
				if err != nil {
					return err
				}
				key, err := job.Key()
				if err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				// Warm the "peer's" disk with a genuine solve, then inflate
				// its area claim: still well-formed JSON with an honest
				// header, only the claim lies.
				eng := engine.New(engine.Config{Workers: 1, Cache: cache})
				defer eng.Close()
				if _, err := eng.Do(ctx, job); err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				raw, err := cache.RawEntry(ctx, key)
				if err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				var claims map[string]any
				if err := json.Unmarshal(raw, &claims); err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				area, _ := claims["seq_area"].(float64)
				claims["seq_area"] = area + 1
				tampered, err := json.Marshal(claims)
				if err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				if err := os.WriteFile(cache.EntryPath(key), tampered, 0o644); err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				// A fetching node wires the tampered peer behind a fresh
				// cache: the revalidation gate must reject the blob (a
				// degrade-to-miss by design, so silence here means the lie
				// was served) ...
				fetcher, err := engine.NewCache(4, "")
				if err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				fetcher.SetPeer(func(context.Context, string) ([]byte, error) {
					return tampered, nil
				})
				if _, ok := fetcher.Get(ctx, key, job); ok {
					return nil // harness fails this: tampered claims were served
				}
				if fetcher.Stats().PeerRejected != 1 {
					return nil // harness fails this: the gate never fired
				}
				// ... and Probe surfaces the same gate's verdict as the
				// descriptive error this harness reports.
				_, err = cache.Probe(ctx, key, job)
				return err
			},
		},
	}
}
