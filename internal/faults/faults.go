// Package faults is a fault-injection harness for the retiming pipeline:
// it deliberately corrupts netlists, timing options, clock schemes and
// flow networks, then drives the public API entry points and checks that
// every corruption surfaces as a descriptive wrapped error — never a
// panic and never a hang. The test suite runs the whole catalog with a
// per-case deadline; the catalog is exported so new fault classes can be
// registered next to the code they attack.
package faults

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"relatch/internal/bench"
	"relatch/internal/cell"
	"relatch/internal/cert"
	"relatch/internal/clocking"
	"relatch/internal/core"
	"relatch/internal/experiments"
	"relatch/internal/fig4"
	"relatch/internal/flow"
	"relatch/internal/lint"
	"relatch/internal/netlist"
	"relatch/internal/sim"
	"relatch/internal/sta"
	"relatch/internal/verilog"
	"relatch/internal/vlib"
)

// Fault is one injected corruption paired with the API call it attacks.
type Fault struct {
	// Name identifies the case in test output.
	Name string
	// Class is the taxonomy bucket (e.g. "verilog/comb-cycle"); the suite
	// asserts a minimum number of distinct classes stay covered.
	Class string
	// Inject performs the corruption and exercises the API under ctx,
	// returning whatever the API returned. The harness fails the case if
	// the call panics, hangs past the deadline, or returns nil.
	Inject func(ctx context.Context) error
}

// Check runs one fault deadline-bounded and panic-guarded. It returns
// nil when the API under attack correctly surfaced a descriptive error,
// and an explanation of the robustness violation otherwise.
func Check(f Fault, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	type outcome struct {
		err      error
		panicked interface{}
	}
	done := make(chan outcome, 1)
	go func() {
		var o outcome
		defer func() {
			if r := recover(); r != nil {
				o.panicked = r
			}
			done <- o
		}()
		o.err = f.Inject(ctx)
	}()

	// The context deadline bounds well-behaved APIs; the outer timer is
	// the hang detector for code that ignores its context entirely.
	select {
	case o := <-done:
		switch {
		case o.panicked != nil:
			return fmt.Errorf("faults: %s panicked: %v", f.Name, o.panicked)
		case o.err == nil:
			return fmt.Errorf("faults: %s accepted the corrupted input", f.Name)
		case strings.TrimSpace(o.err.Error()) == "":
			return fmt.Errorf("faults: %s returned an empty error message", f.Name)
		}
		return nil
	case <-time.After(2*timeout + time.Second):
		return fmt.Errorf("faults: %s hung past its %v deadline", f.Name, timeout)
	}
}

// goodSource is a well-formed module the mutation cases start from.
const goodSource = `
module m(a, b, y);
input a, b;
output y;
wire w1, w2;
dff r1(clk, w1, a);
nand g1(w2, w1, b);
nand g2(y, w2, w1);
endmodule
`

// goodCircuit parses goodSource and cuts it; the catalog relies on it
// never failing (asserted by the suite's self-test).
func goodCircuit(lib *cell.Library) (*netlist.Circuit, error) {
	sc, err := verilog.ParseString(goodSource, lib)
	if err != nil {
		return nil, err
	}
	return sc.Cut()
}

func goodScheme() clocking.Scheme {
	return clocking.Scheme{Phi1: 0.5, Gamma1: 0.5, Phi2: 0.5, Gamma2: 0.5}
}

// Catalog returns every registered fault.
func Catalog() []Fault {
	lib := cell.Default(1.0)
	parse := func(src string) func(context.Context) error {
		return func(context.Context) error {
			_, err := verilog.ParseString(src, lib)
			return err
		}
	}
	catalog := []Fault{
		// --- netlist corruptions reaching the verilog elaborator ---
		{
			Name:  "combinational cycle through two nands",
			Class: "verilog/comb-cycle",
			Inject: parse(`module m(a, y); input a; output y;
				wire w1, w2;
				nand g1(w1, a, w2); nand g2(w2, w1, a); nand g3(y, w1, w2);
				endmodule`),
		},
		{
			Name:  "output net never driven",
			Class: "verilog/dangling-net",
			Inject: parse(`module m(a, y); input a; output y;
				wire w; nand g1(w, a, a);
				endmodule`),
		},
		{
			Name:  "gate input from undeclared, undriven net",
			Class: "verilog/dangling-net",
			Inject: parse(`module m(a, y); input a; output y;
				nand g1(y, a, ghost);
				endmodule`),
		},
		{
			Name:  "two instances named g1",
			Class: "verilog/duplicate-instance",
			Inject: parse(`module m(a, b, y); input a, b; output y;
				wire w; nand g1(w, a, b); nand g1(y, w, a);
				endmodule`),
		},
		{
			Name:  "net driven by two gates",
			Class: "verilog/double-driven-net",
			Inject: parse(`module m(a, b, y); input a, b; output y;
				nand g1(y, a, b); nand g2(y, b, a);
				endmodule`),
		},
		{
			Name:  "unknown primitive",
			Class: "verilog/unknown-primitive",
			Inject: parse(`module m(a, y); input a; output y;
				frobnicate g1(y, a);
				endmodule`),
		},
		{
			Name:   "module truncated before endmodule",
			Class:  "verilog/truncated-module",
			Inject: parse(`module m(a, y); input a; output y; nand g1(y, a, a);`),
		},
		{
			Name:  "dff with wrong port count",
			Class: "verilog/width-mismatch",
			Inject: parse(`module m(a, y); input a; output y;
				dff r1(clk, y);
				endmodule`),
		},
		{
			Name:  "gate fanin/arity mismatch after in-place edit",
			Class: "netlist/width-mismatch",
			Inject: func(ctx context.Context) error {
				c, err := goodCircuit(lib)
				if err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				for _, n := range c.Nodes {
					if n.Kind == netlist.KindGate && len(n.Fanin) == 2 {
						n.Fanin = n.Fanin[:1] // now violates the cell's arity
						break
					}
				}
				_, err = sta.AnalyzeChecked(c, sta.DefaultOptions(lib))
				return err
			},
		},

		// --- cell-level corruptions ---
		{
			Name:  "Eval with wrong input width",
			Class: "cell/bad-arity",
			Inject: func(context.Context) error {
				_, err := cell.FuncNand2.Eval([]bool{true})
				return err
			},
		},
		{
			Name:  "Eval of an unknown function",
			Class: "cell/bad-arity",
			Inject: func(context.Context) error {
				_, err := cell.Function(999).Eval(nil)
				return err
			},
		},

		// --- STA option corruptions ---
		{
			Name:  "negative launch delay",
			Class: "sta/negative-delay",
			Inject: func(ctx context.Context) error {
				c, err := goodCircuit(lib)
				if err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				opt := sta.DefaultOptions(lib)
				opt.LaunchDelay = -1
				_, err = sta.AnalyzeChecked(c, opt)
				return err
			},
		},
		{
			Name:  "NaN input slew",
			Class: "sta/nan-delay",
			Inject: func(ctx context.Context) error {
				c, err := goodCircuit(lib)
				if err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				opt := sta.DefaultOptions(lib)
				opt.InputSlew = math.NaN()
				_, err = sta.AnalyzeChecked(c, opt)
				return err
			},
		},

		// --- clock scheme corruptions through the retimers ---
		{
			Name:  "zero phase width into core.RetimeCtx",
			Class: "clocking/zero-phase",
			Inject: func(ctx context.Context) error {
				c, err := goodCircuit(lib)
				if err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				s := goodScheme()
				s.Phi1 = 0
				_, err = core.RetimeCtx(ctx, c, core.Options{Scheme: s, EDLCost: 1}, core.ApproachGRAR)
				return err
			},
		},
		{
			Name:  "negative borrow window into vlib.RetimeCtx",
			Class: "clocking/negative-slack",
			Inject: func(ctx context.Context) error {
				c, err := goodCircuit(lib)
				if err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				s := goodScheme()
				s.Gamma1 = -0.25
				_, err = vlib.RetimeCtx(ctx, c, vlib.Options{Scheme: s, EDLCost: 1}, vlib.RVL)
				return err
			},
		},
		{
			Name:  "nil circuit into core.RetimeCtx",
			Class: "core/nil-circuit",
			Inject: func(ctx context.Context) error {
				_, err := core.RetimeCtx(ctx, nil, core.Options{Scheme: goodScheme(), EDLCost: 1}, core.ApproachBase)
				return err
			},
		},

		// --- simulator corruptions ---
		{
			Name:  "nil placement into the simulator",
			Class: "sim/nil-placement",
			Inject: func(ctx context.Context) error {
				c, err := goodCircuit(lib)
				if err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				tm := sta.Analyze(c, sta.DefaultOptions(lib))
				_, err = sim.ErrorRateCtx(ctx, tm, nil, nil, sim.Config{Scheme: goodScheme(), Latch: lib.BaseLatch, Cycles: 8})
				return err
			},
		},
		{
			Name:  "placement with no slave latch on any path",
			Class: "sim/illegal-placement",
			Inject: func(ctx context.Context) error {
				c, err := goodCircuit(lib)
				if err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				tm := sta.Analyze(c, sta.DefaultOptions(lib))
				_, err = sim.ErrorRateCtx(ctx, tm, netlist.NewPlacement(), nil, sim.Config{Scheme: goodScheme(), Latch: lib.BaseLatch, Cycles: 8})
				return err
			},
		},

		// --- flow network corruptions ---
		{
			Name:  "demands that do not sum to zero",
			Class: "flow/unbalanced",
			Inject: func(ctx context.Context) error {
				nw := flow.NewNetwork(2)
				nw.SetDemand(0, 3)
				if _, err := nw.AddArc(0, 1, 1, flow.Unbounded); err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				_, _, err := nw.SolveMethod(ctx, flow.MethodAuto)
				return err
			},
		},
		{
			Name:  "overflow-scale arc costs",
			Class: "flow/overflow-cost",
			Inject: func(ctx context.Context) error {
				nw := flow.NewNetwork(2)
				nw.SetDemand(0, -1)
				nw.SetDemand(1, 1)
				for i := 0; i < 2; i++ {
					if _, err := nw.AddArc(0, 1, flow.Unbounded, flow.Unbounded); err != nil {
						return fmt.Errorf("faults: bad fixture: %v", err)
					}
				}
				_, _, err := nw.SolveMethod(ctx, flow.MethodAuto)
				return err
			},
		},
		{
			Name:  "arc endpoint outside the node range",
			Class: "flow/bad-arc",
			Inject: func(ctx context.Context) error {
				nw := flow.NewNetwork(2)
				_, err := nw.AddArc(0, 7, 1, flow.Unbounded)
				return err
			},
		},
		{
			Name:  "self-loop arc",
			Class: "flow/bad-arc",
			Inject: func(ctx context.Context) error {
				nw := flow.NewNetwork(2)
				_, err := nw.AddArc(1, 1, 1, flow.Unbounded)
				return err
			},
		},
		{
			Name:  "negative arc capacity",
			Class: "flow/bad-arc",
			Inject: func(ctx context.Context) error {
				nw := flow.NewNetwork(2)
				_, err := nw.AddArc(0, 1, 1, -5)
				return err
			},
		},
		{
			Name:  "demand with no path to satisfy it",
			Class: "flow/infeasible",
			Inject: func(ctx context.Context) error {
				nw := flow.NewNetwork(3)
				nw.SetDemand(0, -2)
				nw.SetDemand(2, 2)
				if _, err := nw.AddArc(0, 1, 1, flow.Unbounded); err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				_, _, err := nw.SolveMethod(ctx, flow.MethodAuto)
				return err
			},
		},
		{
			Name:  "negative cycle with unbounded capacity",
			Class: "flow/unbounded",
			Inject: func(ctx context.Context) error {
				nw := flow.NewNetwork(2)
				if _, err := nw.AddArc(0, 1, -2, flow.Unbounded); err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				if _, err := nw.AddArc(1, 0, 1, flow.Unbounded); err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				_, _, err := nw.SolveMethod(ctx, flow.MethodAuto)
				return err
			},
		},

		// --- corrupted netlists through the lint engine ---
		// Each case mutilates a sound circuit in place and asserts the
		// linter reports error findings (rep.Err() != nil) without ever
		// panicking — the harness's recover() is the panic detector.
		{
			Name:  "lint on a node with a corrupted ID",
			Class: "lint/malformed-structure",
			Inject: func(ctx context.Context) error {
				c, err := goodCircuit(lib)
				if err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				c.Nodes[0].ID = len(c.Nodes) + 7
				return lintFindings(ctx, c, nil)
			},
		},
		{
			Name:  "lint on a combinational cycle spliced between gates",
			Class: "lint/comb-cycle",
			Inject: func(ctx context.Context) error {
				c, err := goodCircuit(lib)
				if err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				var down, up *netlist.Node
			outer:
				for _, n := range c.Nodes {
					if n.Kind != netlist.KindGate {
						continue
					}
					for _, f := range n.Fanin {
						if f.Kind == netlist.KindGate {
							down, up = n, f
							break outer
						}
					}
				}
				if down == nil {
					return fmt.Errorf("faults: bad fixture: no gate-to-gate edge")
				}
				up.Fanin[0] = down // up -> down -> up
				return lintFindings(ctx, c, nil)
			},
		},
		{
			Name:  "lint on two nodes sharing one name",
			Class: "lint/multi-driven-net",
			Inject: func(ctx context.Context) error {
				c, err := goodCircuit(lib)
				if err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				var gates []*netlist.Node
				for _, n := range c.Nodes {
					if n.Kind == netlist.KindGate {
						gates = append(gates, n)
					}
				}
				if len(gates) < 2 {
					return fmt.Errorf("faults: bad fixture: need two gates")
				}
				gates[1].Name = gates[0].Name
				return lintFindings(ctx, c, nil)
			},
		},
		{
			Name:  "lint on a primary output with its driver severed",
			Class: "lint/undriven-output",
			Inject: func(ctx context.Context) error {
				c, err := goodCircuit(lib)
				if err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				if len(c.Outputs) == 0 {
					return fmt.Errorf("faults: bad fixture: no outputs")
				}
				c.Outputs[0].Fanin = nil
				return lintFindings(ctx, c, nil)
			},
		},
		{
			Name:  "lint on a gate with fewer fanins than its cell arity",
			Class: "lint/width-mismatch",
			Inject: func(ctx context.Context) error {
				c, err := goodCircuit(lib)
				if err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				for _, n := range c.Nodes {
					if n.Kind == netlist.KindGate && len(n.Fanin) == 2 {
						n.Fanin = n.Fanin[:1]
						return lintFindings(ctx, c, nil)
					}
				}
				return fmt.Errorf("faults: bad fixture: no two-input gate")
			},
		},
		{
			Name:  "lint on a placement latching one path twice",
			Class: "lint/double-latch",
			Inject: func(ctx context.Context) error {
				c, err := goodCircuit(lib)
				if err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				p := netlist.InitialPlacement(c)
				var down, up *netlist.Node
			outer:
				for _, n := range c.Nodes {
					if n.Kind != netlist.KindGate {
						continue
					}
					for _, f := range n.Fanin {
						if f.Kind == netlist.KindGate {
							down, up = n, f
							break outer
						}
					}
				}
				if down == nil {
					return fmt.Errorf("faults: bad fixture: no gate-to-gate edge")
				}
				p.OnEdge[netlist.Edge{From: up.ID, To: down.ID}] = true
				return lintFindings(ctx, c, p)
			},
		},
		{
			Name:  "lint on a placement leaving one path latch-free",
			Class: "lint/unbalanced-cut",
			Inject: func(ctx context.Context) error {
				c, err := goodCircuit(lib)
				if err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				if len(c.Inputs) == 0 {
					return fmt.Errorf("faults: bad fixture: no inputs")
				}
				p := netlist.InitialPlacement(c)
				delete(p.AtInput, c.Inputs[0].ID)
				return lintFindings(ctx, c, p)
			},
		},

		// --- benchmark/experiment layer ---
		{
			Name:  "unknown benchmark name into the sweep",
			Class: "experiments/unknown-benchmark",
			Inject: func(ctx context.Context) error {
				_, err := experiments.RunCtx(ctx, experiments.Config{Profiles: []string{"s0"}})
				return err
			},
		},
		{
			Name:  "plasma generator with no registered inputs",
			Class: "bench/bad-profile",
			Inject: func(context.Context) error {
				p, ok := bench.ProfileByName("Plasma")
				if !ok {
					return fmt.Errorf("faults: bad fixture: no Plasma profile")
				}
				p.PIRegs = 0
				_, err := p.BuildSeq(lib)
				return err
			},
		},

		// --- certifier corruptions: each mutates one facet of a solver
		// result that all earlier layers accept, and requires the
		// certificate to carry the matching finding code ---
		{
			Name:  "placement with one retiming label off by one latch",
			Class: "cert/label-off-by-one",
			Inject: func(ctx context.Context) error {
				c := fig4.MustCircuit()
				p := fig4.Cut1(c)
				g3, ok1 := c.Node("G3")
				g6, ok2 := c.Node("G6")
				if !ok1 || !ok2 {
					return fmt.Errorf("faults: bad fixture: fig4 nodes missing")
				}
				e := netlist.Edge{From: g3.ID, To: g6.ID}
				if !p.OnEdge[e] {
					return fmt.Errorf("faults: bad fixture: Cut1 has no latch on G3→G6")
				}
				delete(p.OnEdge, e)
				s := certSubject(c, p, map[int]bool{mustNodeID(c, "O9"): true})
				return certFindings(ctx, s, cert.CodeLabelInference)
			},
		},
		{
			Name:  "retimed circuit missing a gate the original had",
			Class: "cert/stolen-gate",
			Inject: func(ctx context.Context) error {
				c := fig4.MustCircuit()
				s := certSubject(c, fig4.Cut2(c), map[int]bool{})
				// The snapshot claims a gate the retimed circuit no longer
				// carries — the solver "stole" it from the cloud.
				s.Original.Nodes["G99"] = cert.ShapeNode{
					Kind:     netlist.KindGate,
					CellName: "nand2_x1",
					Func:     cell.FuncNand2,
					Fanin:    []string{"I1", "I2"},
				}
				return certFindings(ctx, s, cert.CodeStructure)
			},
		},
		{
			Name:  "result silently dropping an error-detecting flag",
			Class: "cert/dropped-edl-flag",
			Inject: func(ctx context.Context) error {
				c := fig4.MustCircuit()
				// Cut1 makes O9 error-detecting (arrival 12 > Π = 10);
				// claim nothing is, and keep the counts/area consistent
				// with the lie so only the EDL recompute can expose it.
				s := certSubject(c, fig4.Cut1(c), map[int]bool{})
				return certFindings(ctx, s, cert.CodeEDLMismatch)
			},
		},
		{
			Name:  "claimed objective diverging from the area identity",
			Class: "cert/objective-mismatch",
			Inject: func(ctx context.Context) error {
				c := fig4.MustCircuit()
				s := certSubject(c, fig4.Cut2(c), map[int]bool{})
				s.SeqArea *= 1.5
				return certFindings(ctx, s, cert.CodeCost)
			},
		},
	}
	catalog = append(catalog, engineFaults(lib)...)
	catalog = append(catalog, queueFaults()...)
	catalog = append(catalog, clusterFaults(lib)...)
	return append(catalog, obsFaults()...)
}

// certSubject assembles a fully consistent fig4 certification subject;
// cert fault cases then corrupt exactly one facet of it.
func certSubject(c *netlist.Circuit, p *netlist.Placement, ed map[int]bool) cert.Subject {
	opts := sta.DefaultOptions(c.Lib)
	opts.Model = sta.ModelFixed
	opts.FixedDelays = fig4.FixedDelays(c)
	opts.LaunchDelay = 0
	edCount := 0
	for _, v := range ed {
		if v {
			edCount++
		}
	}
	return cert.Subject{
		Original:    cert.Snapshot(c),
		Retimed:     c,
		Placement:   p,
		Scheme:      fig4.Scheme(),
		Latch:       fig4.ZeroLatch(),
		StaOptions:  &opts,
		EDMasters:   ed,
		SlaveCount:  p.SlaveCount(),
		MasterCount: c.FlopCount(),
		EDCount:     edCount,
		SeqArea:     cell.SeqAreaOf(c.Lib, fig4.EDLOverhead, p.SlaveCount(), c.FlopCount(), edCount),
		EDLCost:     fig4.EDLOverhead,
		Approach:    "faults",
	}
}

// mustNodeID resolves a node name the fig4 fixture is known to define.
func mustNodeID(c *netlist.Circuit, name string) int {
	n, ok := c.Node(name)
	if !ok {
		return -1
	}
	return n.ID
}

// certFindings certifies a corrupted subject and reports the outcome the
// way lintFindings does for lint: a Run failure surfaces as-is, and the
// certificate error counts as detection only when it carries the finding
// code the corruption should produce — a clean certificate, or one that
// flags the wrong facet, returns nil so Check fails the case.
func certFindings(ctx context.Context, s cert.Subject, code string) error {
	crt, err := cert.Run(ctx, s, cert.Config{})
	if err != nil {
		return err
	}
	if !crt.HasCode(code) {
		return nil
	}
	return crt.Err()
}

// lintFindings lints a corrupted circuit and reports its error findings.
// A run failure (nil circuit, internal panic) surfaces as-is; otherwise
// the report's ErrFindings (nil when the corruption went undetected)
// becomes the fault outcome, so Check fails on both panics and silence.
func lintFindings(ctx context.Context, c *netlist.Circuit, p *netlist.Placement) error {
	rep, err := lint.Run(ctx, lint.Input{Circuit: c, Placement: p}, lint.Config{})
	if err != nil {
		return err
	}
	return rep.Err()
}

// Classes returns the set of distinct fault classes in the catalog.
func Classes(faults []Fault) map[string]int {
	m := make(map[string]int)
	for _, f := range faults {
		m[f.Class]++
	}
	return m
}
