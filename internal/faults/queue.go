package faults

import (
	"context"
	"encoding/binary"
	"fmt"
	"os"

	"relatch/internal/queue"
)

// queueDir makes a throwaway journal directory; the caller's deferred
// cleanup removes it.
func queueDir() (string, func(), error) {
	dir, err := os.MkdirTemp("", "relatch-faults-queue")
	if err != nil {
		return "", nil, fmt.Errorf("faults: bad fixture: %v", err)
	}
	return dir, func() { os.RemoveAll(dir) }, nil
}

// queueFaults attacks the durable job queue: crashes at journal record
// boundaries, corrupted committed history, leases expiring mid-solve,
// duplicate deliveries, overflow and double-opened directories. Every
// corruption must surface as a descriptive error — a crash may lose the
// torn tail, but committed history must never silently change, a stale
// lease must never settle a job, and a full queue must shed rather than
// grow without bound. The positive recovery invariants (reopen after a
// torn tail, no accepted job lost) live in this package's recovery
// test.
func queueFaults() []Fault {
	return []Fault{
		{
			Name:  "crash between journal records",
			Class: "queue/crash-between-records",
			Inject: func(ctx context.Context) error {
				dir, cleanup, err := queueDir()
				if err != nil {
					return err
				}
				defer cleanup()
				crashed := false
				q, err := queue.Open(queue.Config{
					Dir: dir,
					AppendHook: func(recType string, seq uint64) error {
						if crashed {
							return fmt.Errorf("process died before record %d hit the journal", seq)
						}
						return nil
					},
				})
				if err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				defer q.Close()
				if _, err := q.Enqueue("k1", nil); err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				crashed = true
				// The submit whose record never became durable must fail —
				// a 202 for it would be a lie — and the queue must refuse
				// further work rather than let memory and disk diverge.
				if _, err := q.Enqueue("k2", nil); err == nil {
					return nil // harness fails this: the lost record was accepted
				}
				_, _, err = q.Lease()
				return err
			},
		},
		{
			Name:  "journal truncated inside committed history",
			Class: "queue/journal-truncation",
			Inject: func(ctx context.Context) error {
				dir, cleanup, err := queueDir()
				if err != nil {
					return err
				}
				defer cleanup()
				q, err := queue.Open(queue.Config{Dir: dir})
				if err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				for i := 0; i < 3; i++ {
					if _, err := q.Enqueue(fmt.Sprintf("k%d", i), nil); err != nil {
						q.Close()
						return fmt.Errorf("faults: bad fixture: %v", err)
					}
				}
				q.Close()
				segs, err := queue.Segments(dir)
				if err != nil || len(segs) == 0 {
					return fmt.Errorf("faults: bad fixture: no segments (%v)", err)
				}
				// Cut a committed frame's length header so a later frame's
				// bytes parse against the wrong checksum: damage inside
				// history, not a torn tail.
				raw, err := os.ReadFile(segs[0])
				if err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				binary.LittleEndian.PutUint32(raw, binary.LittleEndian.Uint32(raw)+3)
				if err := os.WriteFile(segs[0], raw, 0o644); err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				_, err = queue.Open(queue.Config{Dir: dir})
				return err
			},
		},
		{
			Name:  "lease expiring under a slow worker",
			Class: "queue/lease-expiry-mid-solve",
			Inject: func(ctx context.Context) error {
				q, err := queue.Open(queue.Config{
					LeaseTTL:    1, // nanosecond lease: expired the moment it is taken
					BaseBackoff: 1,
				})
				if err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				defer q.Close()
				if _, err := q.Enqueue("k", nil); err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				slow, ok, err := q.Lease()
				if err != nil || !ok {
					return fmt.Errorf("faults: bad fixture: lease ok=%v err=%v", ok, err)
				}
				if n, err := q.ExpireLeases(); err != nil || n != 1 {
					return fmt.Errorf("faults: bad fixture: expired %d (%v)", n, err)
				}
				// The slow worker finally finishes — its settle must be
				// fenced out, not accepted over the requeued job.
				return q.Complete(slow.ID, slow.Lease, []byte(`{}`))
			},
		},
		{
			Name:  "duplicate delivery settling twice",
			Class: "queue/double-delivery",
			Inject: func(ctx context.Context) error {
				q, err := queue.Open(queue.Config{})
				if err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				defer q.Close()
				if _, err := q.Enqueue("k", nil); err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				j, ok, err := q.Lease()
				if err != nil || !ok {
					return fmt.Errorf("faults: bad fixture: lease ok=%v err=%v", ok, err)
				}
				if err := q.Complete(j.ID, j.Lease, []byte(`{"n":1}`)); err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				// The second delivery of the same completion must be
				// rejected, never double-publish a result.
				return q.Complete(j.ID, j.Lease, []byte(`{"n":2}`))
			},
		},
		{
			Name:  "queue at capacity",
			Class: "queue/overflow",
			Inject: func(ctx context.Context) error {
				q, err := queue.Open(queue.Config{Capacity: 1})
				if err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				defer q.Close()
				if _, err := q.Enqueue("k1", nil); err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				_, err = q.Enqueue("k2", nil)
				return err
			},
		},
		{
			Name:  "journal directory opened twice",
			Class: "queue/locked-dir",
			Inject: func(ctx context.Context) error {
				dir, cleanup, err := queueDir()
				if err != nil {
					return err
				}
				defer cleanup()
				q, err := queue.Open(queue.Config{Dir: dir})
				if err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				defer q.Close()
				q2, err := queue.Open(queue.Config{Dir: dir})
				if err == nil {
					q2.Close()
				}
				return err
			},
		},
	}
}
