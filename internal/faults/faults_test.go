package faults

import (
	"testing"
	"time"

	"relatch/internal/cell"
)

// TestFixtureIsWellFormed guards the catalog's starting point: the
// mutations are only meaningful if the unmutated module parses.
func TestFixtureIsWellFormed(t *testing.T) {
	c, err := goodCircuit(cell.Default(1.0))
	if err != nil {
		t.Fatalf("good fixture rejected: %v", err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("good fixture invalid: %v", err)
	}
	if err := goodScheme().Validate(); err != nil {
		t.Fatalf("good scheme invalid: %v", err)
	}
}

// TestCatalog injects every fault and requires a descriptive error —
// no panic, no hang — within the per-case deadline.
func TestCatalog(t *testing.T) {
	for _, f := range Catalog() {
		f := f
		t.Run(f.Class+"/"+f.Name, func(t *testing.T) {
			t.Parallel()
			if err := Check(f, 10*time.Second); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestCatalogCoversRequiredClasses pins the breadth of the harness: at
// least thirty distinct fault classes must stay registered.
func TestCatalogCoversRequiredClasses(t *testing.T) {
	classes := Classes(Catalog())
	if len(classes) < 30 {
		t.Fatalf("catalog covers %d classes, want >= 30: %v", len(classes), classes)
	}
	for _, required := range []string{
		"verilog/comb-cycle",
		"verilog/dangling-net",
		"verilog/duplicate-instance",
		"verilog/width-mismatch",
		"flow/unbalanced",
		"flow/overflow-cost",
		"sta/negative-delay",
		"cert/label-off-by-one",
		"cert/stolen-gate",
		"cert/dropped-edl-flag",
		"cert/objective-mismatch",
		"engine/worker-panic",
		"engine/poisoned-cache",
		"engine/cancelled-queue",
		"engine/deadline",
		"engine/bad-job",
		"obs/slow-subscriber",
		"obs/subscriber-disconnect",
		"obs/teardown-record",
		"cluster/bad-membership",
		"cluster/duplicate-peer",
		"cluster/unknown-token",
		"cluster/rate-limited",
		"cluster/quota-exhausted",
		"cluster/peer-down",
		"cluster/tampered-peer-entry",
	} {
		if classes[required] == 0 {
			t.Errorf("required fault class %s missing", required)
		}
	}
}
