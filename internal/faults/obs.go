package faults

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"relatch/internal/obs"
)

// obsFaults attacks the live telemetry plane: a subscriber that stops
// reading, a client that vanishes mid-stream, and a scrape racing a
// registry teardown. The invariant under attack is the one DESIGN.md
// pins for the whole telemetry layer: observability must never block,
// reorder or corrupt the serving path — a slow SSE consumer costs that
// consumer dropped events (ErrLagged), never a stalled publisher; an
// abandoned subscription must be releasable without tearing the
// stream; and a histogram recorded during registry teardown must stay
// memory-safe while the torn-down registry refuses to render.
func obsFaults() []Fault {
	return []Fault{
		{
			Name:  "subscriber stops reading while publishers burst",
			Class: "obs/slow-subscriber",
			Inject: func(ctx context.Context) error {
				s := obs.NewStream(8)
				defer s.Close()
				sub, err := s.Subscribe(0)
				if err != nil {
					return err
				}
				defer sub.Close()
				// Publish far past the ring capacity with nobody reading.
				// The contract: this loop must finish (never block).
				done := make(chan struct{})
				go func() {
					for i := 0; i < 100; i++ {
						s.Publish(obs.StreamEvent{Kind: "event", Name: "burst"})
					}
					close(done)
				}()
				select {
				case <-done:
				case <-time.After(2 * time.Second):
					return nil // publisher blocked on a slow consumer: harness fails on nil
				}
				// The lagging subscriber must learn about the gap.
				if _, err := sub.Next(ctx); !errors.Is(err, obs.ErrLagged) {
					return nil
				}
				return fmt.Errorf("faults: ring overwrote unread events without blocking: %w", obs.ErrLagged)
			},
		},
		{
			Name:  "client disconnects and abandons its subscription",
			Class: "obs/subscriber-disconnect",
			Inject: func(ctx context.Context) error {
				s := obs.NewStream(8)
				defer s.Close()
				sub, err := s.Subscribe(0)
				if err != nil {
					return err
				}
				// A dead client manifests as a cancelled context: the
				// blocked read must return promptly, not hang.
				gone, cancel := context.WithCancel(ctx)
				cancel()
				if _, err := sub.Next(gone); err == nil {
					return nil
				}
				// The handler's cleanup path must fully detach the
				// subscription — anything left attached is a leak.
				sub.Close()
				if s.Subscribers() != 0 {
					return nil
				}
				_, err = sub.Next(ctx)
				if !errors.Is(err, obs.ErrClosed) {
					return nil
				}
				return fmt.Errorf("faults: disconnect released the subscription: %w", err)
			},
		},
		{
			Name:  "histogram records racing a registry teardown",
			Class: "obs/teardown-record",
			Inject: func(ctx context.Context) error {
				r := obs.NewRegistry()
				h := r.Histogram("faults_teardown_seconds")
				stop := make(chan struct{})
				var wg sync.WaitGroup
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
							h.Observe(time.Millisecond)
						}
					}
				}()
				// Tear the registry down while records are in flight: the
				// vended histogram must stay memory-safe, and a scrape
				// against the closed registry must refuse, not render a
				// half-torn page.
				r.Close()
				err := r.WriteMetrics(io.Discard)
				close(stop)
				wg.Wait()
				if !errors.Is(err, obs.ErrClosed) {
					return nil
				}
				return fmt.Errorf("faults: closed registry refused the scrape: %w", err)
			},
		},
	}
}
