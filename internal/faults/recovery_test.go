package faults

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"relatch/internal/engine"
	"relatch/internal/queue"
)

// TestCrashRecoveryProperty is the durability acceptance property: for
// every crash point between journal records, every job the queue
// accepted before the crash is driven to done (with a certified
// result) or dead by a restarted engine — never lost. The crash is
// injected via the queue's AppendHook, which kills the journal exactly
// at a record boundary; the restart replays the surviving records.
func TestCrashRecoveryProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("crash matrix is slow")
	}
	// Distinct pivot limits give each request a distinct content key, so
	// recovery has real per-job work to account for.
	requests := make([]engine.JobRequest, 4)
	for i := range requests {
		requests[i] = engine.JobRequest{Verilog: goodSource, Approach: "grar", PivotLimit: i + 1}
	}
	// Crash after N journal appends, for every N that falls inside the
	// submit burst (each submit is one record; the pump may interleave
	// lease/complete records, which is part of the point).
	for crashAfter := 1; crashAfter <= 6; crashAfter++ {
		t.Run(fmt.Sprintf("crash-after-%d-records", crashAfter), func(t *testing.T) {
			dir := t.TempDir()
			accepted := crashPhase(t, dir, requests, crashAfter)
			recoverPhase(t, dir, accepted)
		})
	}
}

// crashPhase runs a serving stack against a journal that dies after
// crashAfter appends, submits the requests, and returns the IDs the
// queue accepted (the jobs that are owed). The stack is torn down as a
// crashed process would leave it: without settling in-flight work.
func crashPhase(t *testing.T, dir string, requests []engine.JobRequest, crashAfter int) []string {
	t.Helper()
	appends := 0
	q, err := queue.Open(queue.Config{
		Dir:         dir,
		MaxAttempts: 3,
		BaseBackoff: time.Millisecond,
		AppendHook: func(recType string, seq uint64) error {
			appends++
			if appends > crashAfter {
				return fmt.Errorf("injected crash before record %d", seq)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	eng := engine.New(engine.Config{Workers: 2})
	defer eng.Close()
	d, err := engine.NewDurable(engine.DurableConfig{
		Engine: eng, Queue: q, Poll: time.Millisecond, Sweep: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	var accepted []string
	for _, req := range requests {
		j, err := d.Enqueue(req, "crash-test")
		if err != nil {
			// The crash hit this submit (or an earlier pump transition):
			// the record never became durable, so the job was never owed.
			break
		}
		accepted = append(accepted, j.ID)
	}
	return accepted
}

// recoverPhase restarts on the journal dir and asserts every accepted
// job settles as done (certified) or dead.
func recoverPhase(t *testing.T, dir string, accepted []string) {
	t.Helper()
	q, err := queue.Open(queue.Config{Dir: dir, MaxAttempts: 3, BaseBackoff: time.Millisecond})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer q.Close()
	eng := engine.New(engine.Config{Workers: 2})
	defer eng.Close()
	d, err := engine.NewDurable(engine.DurableConfig{
		Engine: eng, Queue: q, Poll: time.Millisecond, Sweep: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	deadline := time.Now().Add(60 * time.Second)
	for _, id := range accepted {
		for {
			j, ok := q.Get(id)
			if !ok {
				t.Fatalf("accepted job %s lost across the crash", id)
			}
			if j.State == queue.StateDone {
				if res, cert := recoveredSummary(t, j); !cert {
					t.Fatalf("job %s served uncertified after recovery: %s", id, res)
				}
				break
			}
			if j.State == queue.StateDead {
				break // retry budget exhausted is a legal terminal state
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in %s after recovery", id, j.State)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// recoveredSummary decodes a done job's stored result and reports
// whether it is certified.
func recoveredSummary(t *testing.T, j queue.Job) (string, bool) {
	t.Helper()
	var res struct {
		Result engine.Summary `json:"result"`
	}
	if err := json.Unmarshal(j.Result, &res); err != nil {
		t.Fatalf("job %s result undecodable: %v", j.ID, err)
	}
	return fmt.Sprintf("%+v", res.Result), res.Result.Certified
}
