package faults

import (
	"context"
	"fmt"
	"os"
	"time"

	"relatch/internal/bench"
	"relatch/internal/cell"
	"relatch/internal/core"
	"relatch/internal/engine"
	"relatch/internal/sta"
)

// engineJob builds a solvable engine job over the shared good fixture,
// with a calibrated scheme so the uncorrupted job is known to retime.
func engineJob(lib *cell.Library) (engine.Job, error) {
	c, err := goodCircuit(lib)
	if err != nil {
		return engine.Job{}, fmt.Errorf("faults: bad fixture: %v", err)
	}
	scheme := bench.SchemeFor(c, sta.DefaultOptions(lib))
	return engine.Job{
		Circuit:  c,
		Approach: engine.GRAR,
		Options:  core.Options{Scheme: scheme, EDLCost: 1},
	}, nil
}

// engineFaults attacks the retiming job engine: worker panics, poisoned
// on-disk cache entries, cancellation with jobs queued, and jobs that
// cannot be content-addressed. Every corruption must surface as a
// descriptive per-job error — never a crashed worker, a hung ticket or a
// wrong result served from a bad cache entry.
func engineFaults(lib *cell.Library) []Fault {
	return []Fault{
		{
			Name:  "worker panicking mid-solve",
			Class: "engine/worker-panic",
			Inject: func(ctx context.Context) error {
				eng := engine.New(engine.Config{
					Workers: 1,
					SolveOverride: func(context.Context, engine.Job) (*engine.Outcome, error) {
						panic("solver corrupted its own state")
					},
				})
				defer eng.Close()
				job, err := engineJob(lib)
				if err != nil {
					return err
				}
				_, err = eng.Do(ctx, job)
				return err
			},
		},
		{
			Name:  "poisoned on-disk cache entry",
			Class: "engine/poisoned-cache",
			Inject: func(ctx context.Context) error {
				dir, err := os.MkdirTemp("", "relatch-faults-cache")
				if err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				defer os.RemoveAll(dir)
				cache, err := engine.NewCache(4, dir)
				if err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				job, err := engineJob(lib)
				if err != nil {
					return err
				}
				key, err := job.Key()
				if err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				// Warm the disk layer with a genuine solve, then tear the
				// entry the way a crashed writer or bit rot would.
				eng := engine.New(engine.Config{Workers: 1, Cache: cache})
				defer eng.Close()
				if _, err := eng.Do(ctx, job); err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				if err := os.WriteFile(cache.EntryPath(key), []byte("{torn"), 0o644); err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				// Probe surfaces the validation failure the engine's Get
				// path turns into a silent recompute.
				_, err = cache.Probe(ctx, key, job)
				return err
			},
		},
		{
			Name:  "engine closed with jobs still queued",
			Class: "engine/cancelled-queue",
			Inject: func(ctx context.Context) error {
				eng := engine.New(engine.Config{
					Workers: 1,
					SolveOverride: func(sctx context.Context, job engine.Job) (*engine.Outcome, error) {
						<-sctx.Done() // a solve that only ends when cancelled
						return nil, sctx.Err()
					},
				})
				job, err := engineJob(lib)
				if err != nil {
					return err
				}
				queued, err := engineJob(lib)
				if err != nil {
					return err
				}
				queued.Options.EDLCost = 2 // distinct key, waits for the only worker
				if _, err := eng.Submit(ctx, job); err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				t, err := eng.Submit(ctx, queued)
				if err != nil {
					return fmt.Errorf("faults: bad fixture: %v", err)
				}
				closed := make(chan struct{})
				go func() {
					defer close(closed)
					time.Sleep(10 * time.Millisecond)
					eng.Close()
				}()
				_, err = t.Wait(ctx)
				<-closed
				return err
			},
		},
		{
			Name:  "deadline expiring under a stuck solve",
			Class: "engine/deadline",
			Inject: func(ctx context.Context) error {
				eng := engine.New(engine.Config{
					Workers:    1,
					JobTimeout: 10 * time.Millisecond,
					SolveOverride: func(sctx context.Context, job engine.Job) (*engine.Outcome, error) {
						<-sctx.Done()
						return nil, sctx.Err()
					},
				})
				defer eng.Close()
				job, err := engineJob(lib)
				if err != nil {
					return err
				}
				_, err = eng.Do(ctx, job)
				return err
			},
		},
		{
			Name:  "job that cannot be content-addressed",
			Class: "engine/bad-job",
			Inject: func(ctx context.Context) error {
				eng := engine.New(engine.Config{Workers: 1})
				defer eng.Close()
				job, err := engineJob(lib)
				if err != nil {
					return err
				}
				opt := sta.DefaultOptions(lib)
				job.Options.StaOverride = &opt
				_, err = eng.Do(ctx, job)
				return err
			},
		},
	}
}
