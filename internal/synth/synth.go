// Package synth is the mini logic-synthesis substrate standing in for the
// commercial tool of the paper's flows: a netlist database with
// report_timing-style queries, a size-only incremental compile (the step
// both G-RAR and the virtual-library flows run after retiming to fix
// residual violations, Section VI-B/C), and timing-driven latch-type
// swapping used by the virtual-library post-retiming step.
package synth

import (
	"fmt"
	"sort"

	"relatch/internal/cell"
	"relatch/internal/clocking"
	"relatch/internal/netlist"
	"relatch/internal/sta"
)

// Tool wraps one circuit with cached timing, invalidated on edits.
type Tool struct {
	C   *netlist.Circuit
	Opt sta.Options

	timing *sta.Timing
}

// New creates a tool over the circuit. The circuit is edited in place by
// compile steps; clone it first if the original must survive.
func New(c *netlist.Circuit, opt sta.Options) *Tool {
	return &Tool{C: c, Opt: opt}
}

// Timing returns the current timing view, re-analyzing after edits.
func (t *Tool) Timing() *sta.Timing {
	if t.timing == nil {
		t.timing = sta.Analyze(t.C, t.Opt)
	}
	return t.timing
}

// Invalidate drops the cached timing after an external circuit edit.
func (t *Tool) Invalidate() { t.timing = nil }

// PathPoint is one hop of a report_timing path.
type PathPoint struct {
	Node    *netlist.Node
	Arrival float64
}

// PathReport is a report_timing result for one endpoint.
type PathReport struct {
	Endpoint *netlist.Node
	Arrival  float64
	Required float64
	Slack    float64
	Points   []PathPoint
}

// ReportTiming reports the worst path into the endpoint against the given
// required time.
func (t *Tool) ReportTiming(endpoint *netlist.Node, required float64) (PathReport, error) {
	tm := t.Timing()
	rep := PathReport{
		Endpoint: endpoint,
		Arrival:  tm.Arrival(endpoint),
		Required: required,
	}
	rep.Slack = rep.Required - rep.Arrival
	path, err := tm.CriticalPathTo(endpoint)
	if err != nil {
		return PathReport{}, fmt.Errorf("synth: %w", err)
	}
	for _, n := range path {
		rep.Points = append(rep.Points, PathPoint{Node: n, Arrival: tm.Df(n)})
	}
	return rep, nil
}

// CompileResult summarizes a size-only incremental compile.
type CompileResult struct {
	Upsized    int
	Iterations int
	AreaDelta  float64
	// Met reports whether all required times were satisfied.
	Met bool
}

// SizeOnlyCompile upsizes gates along violating critical paths until the
// per-endpoint required times are met or no further upsize helps. It
// mirrors the "incremental compile step in which we allow only sizing of
// gates" of Section VI-B. Latches in the placement (if non-nil) gate the
// timing through the scheme, reproducing the post-retiming fixup.
func (t *Tool) SizeOnlyCompile(required map[int]float64, p *netlist.Placement, scheme clocking.Scheme, latch cell.Latch, maxIter int) CompileResult {
	res := CompileResult{}
	if maxIter <= 0 {
		maxIter = 5 * t.C.GateCount()
	}
	for iter := 0; iter < maxIter; iter++ {
		res.Iterations = iter + 1
		worstSlack := 0.0
		var worst *netlist.Node
		arr := t.endpointArrivals(p, scheme, latch)
		for _, o := range t.C.Outputs {
			req, ok := required[o.ID]
			if !ok {
				continue
			}
			if slack := req - arr[o.ID]; slack < worstSlack-1e-12 {
				worstSlack = slack
				worst = o
			}
		}
		if worst == nil {
			res.Met = true
			return res
		}
		if !t.upsizeOnPath(worst, &res) {
			// No further sizing available on the failing path.
			return res
		}
	}
	// Budget exhausted; report current state.
	arr := t.endpointArrivals(p, scheme, latch)
	res.Met = true
	for id, req := range required {
		if arr[id] > req+1e-12 {
			res.Met = false
			break
		}
	}
	return res
}

// endpointArrivals computes arrivals, optionally latch-aware.
func (t *Tool) endpointArrivals(p *netlist.Placement, scheme clocking.Scheme, latch cell.Latch) map[int]float64 {
	tm := t.Timing()
	out := make(map[int]float64, len(t.C.Outputs))
	if p == nil {
		for _, o := range t.C.Outputs {
			out[o.ID] = tm.Arrival(o)
		}
		return out
	}
	la := sta.AnalyzeLatched(tm, p, scheme, latch)
	for _, o := range t.C.Outputs {
		out[o.ID] = la.EndpointArrival(o)
	}
	return out
}

// upsizeOnPath picks the most effective upsizable gate on the endpoint's
// critical path and upsizes it. Returns false when nothing can improve.
func (t *Tool) upsizeOnPath(endpoint *netlist.Node, res *CompileResult) bool {
	tm := t.Timing()
	path, err := tm.CriticalPathTo(endpoint)
	if err != nil {
		// A broken path query means no safe upsizing target exists.
		return false
	}
	type candidate struct {
		n    *netlist.Node
		gain float64
	}
	var cands []candidate
	for _, n := range path {
		if n.Kind != netlist.KindGate {
			continue
		}
		up := t.C.Lib.Upsize(n.Cell)
		if up == nil {
			continue
		}
		// First-order gain: drive resistance drop times load.
		gain := (n.Cell.Resistance - up.Resistance) * tm.Load(n)
		cands = append(cands, candidate{n: n, gain: gain})
	}
	if len(cands) == 0 {
		return false
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].gain > cands[j].gain })
	pick := cands[0].n
	up := t.C.Lib.Upsize(pick.Cell)
	res.AreaDelta += up.Area - pick.Cell.Area
	res.Upsized++
	pick.Cell = up
	t.Invalidate()
	return true
}

// LatchTypeSwap flips master latch types by measured timing: endpoints
// arriving within the period become non-error-detecting, later arrivals
// become error-detecting. It returns the ED set and the number of swaps
// relative to the provided current assignment — the virtual-library
// post-retiming step of Section V/VI-C.
func LatchTypeSwap(tm *sta.Timing, p *netlist.Placement, scheme clocking.Scheme, latch cell.Latch, current map[int]bool) (ed map[int]bool, swaps int) {
	la := sta.AnalyzeLatched(tm, p, scheme, latch)
	ed = la.EDMasters()
	for _, o := range tm.C.Outputs {
		if ed[o.ID] != current[o.ID] {
			swaps++
		}
	}
	return ed, swaps
}

// RequiredTimes builds the per-endpoint required-time map from an ED
// assignment: Π for normal masters, Π+φ1 for error-detecting ones.
func RequiredTimes(c *netlist.Circuit, scheme clocking.Scheme, ed map[int]bool) map[int]float64 {
	req := make(map[int]float64, len(c.Outputs))
	for _, o := range c.Outputs {
		if ed[o.ID] {
			req[o.ID] = scheme.MaxStageDelay()
		} else {
			req[o.ID] = scheme.Period()
		}
	}
	return req
}

// FixViolations is the convenience loop the retiming flows share: create
// max-delay constraints for paths ending at non-error-detecting masters
// (required = Π) and error-detecting ones (required = Π+φ1), then run the
// size-only compile against them.
func (t *Tool) FixViolations(p *netlist.Placement, scheme clocking.Scheme, latch cell.Latch, ed map[int]bool) CompileResult {
	req := RequiredTimes(t.C, scheme, ed)
	// Slave latches also need their own setup met; the latched analysis
	// inside SizeOnlyCompile covers endpoints, and slave-side violations
	// surface as endpoint lateness through the D-to-Q propagation, so a
	// single constraint set suffices for the fixup loop.
	return t.SizeOnlyCompile(req, p, scheme, latch, 0)
}

// String describes the tool state briefly.
func (t *Tool) String() string {
	return fmt.Sprintf("synth.Tool{%s: %d gates, model %v}", t.C.Name, t.C.GateCount(), t.Opt.Model)
}
