package synth

import (
	"testing"

	"relatch/internal/cell"
	"relatch/internal/clocking"
	"relatch/internal/netlist"
	"relatch/internal/sta"
)

// chain builds i -> g0 -> g1 -> ... -> o with weak drives and a heavy
// load so sizing has room to help.
func chain(t *testing.T, n int) *netlist.Circuit {
	t.Helper()
	lib := cell.Default(1.0)
	b := netlist.NewBuilder("chain", lib)
	prev := netlist.Node{}
	_ = prev
	in := b.Input("i", 0)
	cur := in
	for i := 0; i < n; i++ {
		cur = b.Gate(nodeName(i), lib.MustCell(cell.FuncBuf, 1), cur)
	}
	// Heavy fan-out load on the last gate: four inverters.
	for j := 0; j < 4; j++ {
		b.Gate(loadName(j), lib.MustCell(cell.FuncInv, 1), cur)
	}
	b.Output("o", 1, cur)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func nodeName(i int) string { return "g" + string(rune('a'+i)) }
func loadName(i int) string { return "ld" + string(rune('a'+i)) }

func TestReportTiming(t *testing.T) {
	c := chain(t, 5)
	tool := New(c, sta.DefaultOptions(c.Lib))
	o := c.Outputs[0]
	rep, err := tool.ReportTiming(o, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Arrival <= 0 {
		t.Fatalf("arrival = %g, want positive", rep.Arrival)
	}
	if rep.Slack != rep.Required-rep.Arrival {
		t.Error("slack identity broken")
	}
	if len(rep.Points) < 6 {
		t.Errorf("path has %d points, want input + 5 gates + output", len(rep.Points))
	}
	if rep.Points[0].Node.Kind != netlist.KindInput {
		t.Error("path must start at an input")
	}
}

func TestSizeOnlyCompileFixesViolation(t *testing.T) {
	c := chain(t, 6)
	tool := New(c, sta.DefaultOptions(c.Lib))
	o := c.Outputs[0]
	before := tool.Timing().Arrival(o)
	// Require 80% of current arrival: must upsize to close.
	req := map[int]float64{o.ID: before * 0.8}
	res := tool.SizeOnlyCompile(req, nil, clocking.Scheme{}, cell.Latch{}, 0)
	after := tool.Timing().Arrival(o)
	if res.Upsized == 0 {
		t.Fatal("no gates upsized")
	}
	if after >= before {
		t.Errorf("arrival did not improve: %g -> %g", before, after)
	}
	if res.AreaDelta <= 0 {
		t.Error("upsizing must cost area")
	}
	if res.Met && after > req[o.ID]+1e-12 {
		t.Error("reported met but violation remains")
	}
}

func TestSizeOnlyCompileStopsWhenImpossible(t *testing.T) {
	c := chain(t, 6)
	tool := New(c, sta.DefaultOptions(c.Lib))
	o := c.Outputs[0]
	req := map[int]float64{o.ID: 1e-6} // unreachable
	res := tool.SizeOnlyCompile(req, nil, clocking.Scheme{}, cell.Latch{}, 0)
	if res.Met {
		t.Error("impossible requirement reported as met")
	}
	// Every gate can be upsized at most twice (X1→X2→X4).
	if res.Upsized > 2*c.GateCount() {
		t.Errorf("upsized %d times with only %d gates", res.Upsized, c.GateCount())
	}
}

func TestSizeOnlyCompileNoopWhenMet(t *testing.T) {
	c := chain(t, 3)
	tool := New(c, sta.DefaultOptions(c.Lib))
	o := c.Outputs[0]
	req := map[int]float64{o.ID: tool.Timing().Arrival(o) * 2}
	res := tool.SizeOnlyCompile(req, nil, clocking.Scheme{}, cell.Latch{}, 0)
	if !res.Met || res.Upsized != 0 {
		t.Errorf("expected a met no-op, got %+v", res)
	}
}

func TestLatchTypeSwap(t *testing.T) {
	c := chain(t, 5)
	tm := sta.Analyze(c, sta.DefaultOptions(c.Lib))
	o := c.Outputs[0]
	scheme := clocking.Symmetric(tm.Arrival(o) * 3) // generous: nothing ED
	p := netlist.InitialPlacement(c)
	current := map[int]bool{o.ID: true} // wrongly marked ED
	ed, swaps := LatchTypeSwap(tm, p, scheme, c.Lib.BaseLatch, current)
	if ed[o.ID] {
		t.Error("endpoint comfortably meets Π; swap should clear ED")
	}
	if swaps != 1 {
		t.Errorf("swaps = %d, want 1", swaps)
	}
}

func TestRequiredTimes(t *testing.T) {
	c := chain(t, 3)
	s := clocking.Symmetric(1.0)
	o := c.Outputs[0]
	req := RequiredTimes(c, s, map[int]bool{o.ID: true})
	if req[o.ID] != s.MaxStageDelay() {
		t.Errorf("ED endpoint required = %g, want %g", req[o.ID], s.MaxStageDelay())
	}
	req = RequiredTimes(c, s, nil)
	if req[o.ID] != s.Period() {
		t.Errorf("normal endpoint required = %g, want %g", req[o.ID], s.Period())
	}
}

func TestToolString(t *testing.T) {
	c := chain(t, 2)
	tool := New(c, sta.DefaultOptions(c.Lib))
	if s := tool.String(); s == "" {
		t.Error("empty description")
	}
}
