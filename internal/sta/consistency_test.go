package sta_test

import (
	"math"
	"math/rand"
	"testing"

	"relatch/internal/bench"
	"relatch/internal/cell"
	"relatch/internal/clocking"
	"relatch/internal/netlist"
	"relatch/internal/sta"
)

// TestEquationFiveMatchesLatchedAnalysis is the consistency property the
// whole retiming model rests on: for any legal single-latch-per-path
// placement, the latch-aware arrival at an endpoint equals the maximum of
// Eq. (5)'s AFrom over the latched drivers in its fan-in cone — i.e. the
// LP's timing model and the sign-off analysis are the same function.
func TestEquationFiveMatchesLatchedAnalysis(t *testing.T) {
	lib := cell.Default(1.0)
	latch := lib.BaseLatch
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c, err := bench.RandomCloud("eq5", lib, rng, bench.RandomSpec{
			Inputs:   2 + rng.Intn(4),
			Outputs:  1 + rng.Intn(3),
			Gates:    8 + rng.Intn(25),
			Locality: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		tm := sta.Analyze(c, sta.DefaultOptions(lib))
		scheme := bench.SchemeFor(c, sta.DefaultOptions(lib))

		// Random legal placement: choose r ∈ {−1,0} monotone along
		// edges by thresholding a random topological rank.
		r := randomLegalRetiming(c, rng)
		p := netlist.FromRetiming(c, r)
		if p.Validate(c) != nil {
			continue
		}
		la := sta.AnalyzeLatched(tm, p, scheme, latch)

		for _, o := range c.Outputs {
			want := eqFiveArrival(tm, c, p, o, scheme, latch)
			got := la.EndpointArrival(o)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("seed %d endpoint %s: latched arrival %.9f, Eq. (5) max %.9f",
					seed, o.Name, got, want)
			}
		}
	}
}

// randomLegalRetiming assigns r by a random cut along the topological
// order: every node before the cut retimes, every node after stays, which
// keeps w_r ≥ 0 on all edges... except edges jumping the cut backwards
// are impossible by topology, so the assignment is always legal.
func randomLegalRetiming(c *netlist.Circuit, rng *rand.Rand) map[int]int {
	topo := c.Topo()
	// The cut must respect edges: use a monotone threshold on the
	// longest-path level, so no edge jumps the cut backwards.
	level := make(map[int]int, len(topo))
	maxLevel := 0
	for _, n := range topo {
		l := 0
		for _, f := range n.Fanin {
			if level[f.ID]+1 > l {
				l = level[f.ID] + 1
			}
		}
		level[n.ID] = l
		if l > maxLevel {
			maxLevel = l
		}
	}
	cut := rng.Intn(maxLevel + 1)
	r := make(map[int]int)
	for _, n := range topo {
		if n.Kind != netlist.KindOutput && level[n.ID] < cut {
			r[n.ID] = -1
		}
	}
	return r
}

// eqFiveArrival computes max over latched drivers u in FIC(o) of
// AFrom(u, o) — the Eq. (5) view of the endpoint arrival.
func eqFiveArrival(tm *sta.Timing, c *netlist.Circuit, p *netlist.Placement, o *netlist.Node, s clocking.Scheme, l cell.Latch) float64 {
	db := tm.BackwardMap(o)
	cone := c.FaninCone(o)
	worst := math.Inf(-1)
	launchOnly := true
	for id := range cone {
		u := c.Nodes[id]
		latched := p.AtInput[u.ID]
		if !latched {
			for _, v := range u.Fanout {
				if cone[v.ID] && p.OnEdge[netlist.Edge{From: u.ID, To: v.ID}] {
					latched = true
					break
				}
			}
		}
		if !latched {
			continue
		}
		launchOnly = false
		// Per-edge accuracy: only latched edges inside the cone count.
		if p.AtInput[u.ID] {
			if a := tm.AFrom(u, db, s, l); a > worst {
				worst = a
			}
			continue
		}
		for _, v := range u.Fanout {
			if !cone[v.ID] || !p.OnEdge[netlist.Edge{From: u.ID, To: v.ID}] {
				continue
			}
			if a := tm.A(u, v, db, s, l); a > worst {
				worst = a
			}
		}
	}
	if launchOnly {
		return 0
	}
	return worst
}

// TestCloneIsolation: resizing a cloned circuit's gate must not affect
// the original (the virtual-library flow depends on this).
func TestCloneIsolation(t *testing.T) {
	lib := cell.Default(1.0)
	rng := rand.New(rand.NewSource(3))
	c, err := bench.RandomCloud("clone", lib, rng, bench.RandomSpec{Inputs: 3, Outputs: 2, Gates: 12})
	if err != nil {
		t.Fatal(err)
	}
	clone := c.Clone()
	var gate *netlist.Node
	for _, n := range clone.Nodes {
		if n.Kind == netlist.KindGate && lib.Upsize(n.Cell) != nil {
			gate = n
			break
		}
	}
	if gate == nil {
		t.Skip("no upsizable gate")
	}
	before := c.Nodes[gate.ID].Cell
	gate.Cell = lib.Upsize(gate.Cell)
	if c.Nodes[gate.ID].Cell != before {
		t.Fatal("resizing the clone mutated the original")
	}
	if err := clone.Validate(); err != nil {
		t.Fatal(err)
	}
	// Timing of the original must be unchanged.
	a := sta.Analyze(c, sta.DefaultOptions(lib))
	b := sta.Analyze(clone, sta.DefaultOptions(lib))
	diff := false
	for _, o := range c.Outputs {
		if math.Abs(a.Arrival(o)-b.Arrival(clone.Nodes[o.ID])) > 1e-12 {
			diff = true
		}
	}
	if !diff {
		t.Log("resize did not change any endpoint timing (acceptable; off-path gate)")
	}
}
