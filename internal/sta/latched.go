package sta

import (
	"fmt"

	"relatch/internal/cell"
	"relatch/internal/clocking"
	"relatch/internal/netlist"
)

// Latched is the timing view of a cloud with slave latches inserted at a
// given placement: arrivals account for latch transparency (a signal
// reaching a latch before it opens waits until φ1+γ1, then launches with
// the latch's clock-to-Q; a signal arriving while transparent passes with
// the D-to-Q delay).
type Latched struct {
	T      *Timing
	P      *netlist.Placement
	Scheme clocking.Scheme
	Latch  cell.Latch

	arrival []float64
}

// AnalyzeLatched computes latch-aware arrivals over the placement.
func AnalyzeLatched(t *Timing, p *netlist.Placement, s clocking.Scheme, l cell.Latch) *Latched {
	la := &Latched{T: t, P: p, Scheme: s, Latch: l,
		arrival: make([]float64, len(t.C.Nodes))}
	open := s.SlaveOpen()
	through := func(arr float64, latched bool) float64 {
		if !latched {
			return arr
		}
		launch := open + l.ClkToQ
		if d := arr + l.DToQ; d > launch {
			launch = d
		}
		return launch
	}
	for _, n := range t.C.Topo() {
		switch n.Kind {
		case netlist.KindInput:
			la.arrival[n.ID] = through(t.Opt.LaunchDelay, p.AtInput[n.ID])
		default:
			arr := 0.0
			for _, u := range n.Fanin {
				a := through(la.arrival[u.ID],
					p.OnEdge[netlist.Edge{From: u.ID, To: n.ID}])
				a += t.EdgeDelay(u, n)
				if a > arr {
					arr = a
				}
			}
			la.arrival[n.ID] = arr
		}
	}
	return la
}

// Arrival returns the latch-aware arrival at the output of n. For nodes
// carrying a slave latch this is the arrival at the latch *input*; the
// downstream launch time is applied on the consuming edge.
func (la *Latched) Arrival(n *netlist.Node) float64 { return la.arrival[n.ID] }

// EndpointArrival returns the arrival at a master latch D pin.
func (la *Latched) EndpointArrival(o *netlist.Node) float64 { return la.arrival[o.ID] }

// MustBeED reports whether the endpoint's arrival falls past the period,
// forcing its master latch to be error-detecting.
func (la *Latched) MustBeED(o *netlist.Node) bool {
	return la.arrival[o.ID] > la.Scheme.Period()+timingEpsilon
}

// EDMasters returns the set of endpoint node IDs that must be
// error-detecting under this placement.
func (la *Latched) EDMasters() map[int]bool {
	ed := make(map[int]bool)
	for _, o := range la.T.C.Outputs {
		if la.MustBeED(o) {
			ed[o.ID] = true
		}
	}
	return ed
}

// WindowMasters returns the endpoints whose arrival lands inside the
// scheme's resiliency window under this placement — masters that would
// need error detection. This is the cheap bound behind the lint
// resiliency-window preview: one latch-aware arrival pass, no retiming.
func (la *Latched) WindowMasters() []*netlist.Node {
	var out []*netlist.Node
	for _, o := range la.T.C.Outputs {
		if la.Scheme.WindowContains(la.arrival[o.ID]) {
			out = append(out, o)
		}
	}
	return out
}

// timingEpsilon absorbs float rounding when comparing against clock
// boundaries (delays here are O(1) ns).
const timingEpsilon = 1e-9

// Violation describes a timing-legality failure of a placement.
type Violation struct {
	Node   *netlist.Node
	Kind   string // "slave-setup" or "endpoint-setup"
	Have   float64
	Limit  float64
	Target *netlist.Node // endpoint involved, if any
}

func (v Violation) String() string {
	return fmt.Sprintf("%s at %s: arrival %.4g > limit %.4g", v.Kind, v.Node.Name, v.Have, v.Limit)
}

// Violations checks the two latch-timing constraints of Section III:
// data must stabilize at every slave latch input before the slave closes
// (constraint (6): arrival ≤ φ1+γ1+φ2), and data must reach every master
// before its own closing edge (arrival ≤ Π+φ1, the max stage delay P).
func (la *Latched) Violations() []Violation {
	var out []Violation
	closeAt := la.Scheme.SlaveClose()
	for _, id := range la.P.LatchedDrivers() {
		n := la.T.C.Nodes[id]
		if la.arrival[id] > closeAt+timingEpsilon {
			out = append(out, Violation{Node: n, Kind: "slave-setup", Have: la.arrival[id], Limit: closeAt})
		}
	}
	maxStage := la.Scheme.MaxStageDelay()
	for _, o := range la.T.C.Outputs {
		if la.arrival[o.ID] > maxStage+timingEpsilon {
			out = append(out, Violation{Node: o, Kind: "endpoint-setup", Have: la.arrival[o.ID], Limit: maxStage})
		}
	}
	return out
}
