package sta

import (
	"math"
	"testing"

	"relatch/internal/cell"
	"relatch/internal/fig4"
	"relatch/internal/netlist"
)

func fig4Timing(t *testing.T) (*netlist.Circuit, *Timing) {
	t.Helper()
	c := fig4.MustCircuit()
	tm := Analyze(c, Options{
		Model:       ModelFixed,
		FixedDelays: fig4.FixedDelays(c),
	})
	return c, tm
}

func node(t *testing.T, c *netlist.Circuit, name string) *netlist.Node {
	t.Helper()
	n, ok := c.Node(name)
	if !ok {
		t.Fatalf("node %s missing", name)
	}
	return n
}

func TestFig4ForwardDelays(t *testing.T) {
	c, tm := fig4Timing(t)
	// The D^f column of Fig. 4's table.
	want := map[string]float64{
		"I1": 0, "I2": 0,
		"G3": 2, "G4": 4, "G5": 5, "G6": 7, "G7": 8, "G8": 9, "O9": 9,
	}
	for name, df := range want {
		if got := tm.Df(node(t, c, name)); got != df {
			t.Errorf("D^f(%s) = %g, want %g", name, got, df)
		}
	}
}

func TestFig4BackwardDelays(t *testing.T) {
	c, tm := fig4Timing(t)
	o9 := node(t, c, "O9")
	db := tm.BackwardMap(o9)
	// The D^b(v, O9) column of Fig. 4's table.
	want := map[string]float64{
		"I1": 9, "I2": 7,
		"G3": 7, "G4": 1, "G5": 2, "G6": 2, "G7": 1, "G8": 0, "O9": 0,
	}
	for name, w := range want {
		if got := db[node(t, c, name).ID]; got != w {
			t.Errorf("D^b(%s, O9) = %g, want %g", name, got, w)
		}
	}
}

func TestFig4EquationFive(t *testing.T) {
	c, tm := fig4Timing(t)
	o9 := node(t, c, "O9")
	db := tm.BackwardMap(o9)
	s := fig4.Scheme()
	l := fig4.ZeroLatch()
	cases := []struct {
		u, v string
		want float64
	}{
		// The four A values Section IV-A states for g(O9).
		{"G6", "G7", 9},
		{"G3", "G6", 12},
		{"G5", "G7", 7},
		{"I2", "G5", 12},
	}
	for _, cse := range cases {
		got := tm.A(node(t, c, cse.u), node(t, c, cse.v), db, s, l)
		if got != cse.want {
			t.Errorf("A(%s,%s,O9) = %g, want %g", cse.u, cse.v, got, cse.want)
		}
	}
}

func TestFig4AFrom(t *testing.T) {
	c, tm := fig4Timing(t)
	o9 := node(t, c, "O9")
	db := tm.BackwardMap(o9)
	s := fig4.Scheme()
	l := fig4.ZeroLatch()
	// A latch at G6's output: max(5, 7) + D^b(G6) = 9.
	if got := tm.AFrom(node(t, c, "G6"), db, s, l); got != 9 {
		t.Errorf("AFrom(G6) = %g, want 9", got)
	}
	// A latch at G3's output: max(5, 2) + D^b(G3) = 12 (Cut1's arrival).
	if got := tm.AFrom(node(t, c, "G3"), db, s, l); got != 12 {
		t.Errorf("AFrom(G3) = %g, want 12", got)
	}
}

func TestFig4DbMax(t *testing.T) {
	c, tm := fig4Timing(t)
	db := tm.DbMax()
	// With a single endpoint, DbMax must match BackwardMap(O9).
	per := tm.BackwardMap(node(t, c, "O9"))
	for _, n := range c.Nodes {
		if math.IsNaN(per[n.ID]) {
			continue
		}
		if db[n.ID] != per[n.ID] {
			t.Errorf("DbMax(%s) = %g, want %g", n.Name, db[n.ID], per[n.ID])
		}
	}
}

func TestBackwardMapOutsideCone(t *testing.T) {
	lib := cell.Default(1)
	b := netlist.NewBuilder("two", lib)
	i1 := b.Input("i1", 0)
	i2 := b.Input("i2", 1)
	g1 := b.Gate("g1", lib.MustCell(cell.FuncInv, 1), i1)
	g2 := b.Gate("g2", lib.MustCell(cell.FuncInv, 1), i2)
	o1 := b.Output("o1", 2, g1)
	b.Output("o2", 3, g2)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tm := Analyze(c, DefaultOptions(lib))
	db := tm.BackwardMap(o1)
	if !math.IsNaN(db[g2.ID]) {
		t.Error("node outside the fan-in cone must be NaN")
	}
	if db[g1.ID] != 0 {
		t.Errorf("D^b(g1,o1) = %g, want 0", db[g1.ID])
	}
}

func TestFig4LatchedCut1(t *testing.T) {
	c, tm := fig4Timing(t)
	la := AnalyzeLatched(tm, fig4.Cut1(c), fig4.Scheme(), fig4.ZeroLatch())
	o9 := node(t, c, "O9")
	if got := la.EndpointArrival(o9); got != 12 {
		t.Errorf("Cut1 arrival at O9 = %g, want 12", got)
	}
	if !la.MustBeED(o9) {
		t.Error("Cut1 must force O9 to be error-detecting")
	}
	if v := la.Violations(); len(v) != 0 {
		t.Errorf("Cut1 should be legal, got violations %v", v)
	}
}

func TestFig4LatchedCut2(t *testing.T) {
	c, tm := fig4Timing(t)
	la := AnalyzeLatched(tm, fig4.Cut2(c), fig4.Scheme(), fig4.ZeroLatch())
	o9 := node(t, c, "O9")
	if got := la.EndpointArrival(o9); got != 9 {
		t.Errorf("Cut2 arrival at O9 = %g, want 9", got)
	}
	if la.MustBeED(o9) {
		t.Error("Cut2 must leave O9 non-error-detecting")
	}
	if ed := la.EDMasters(); len(ed) != 0 {
		t.Errorf("EDMasters = %v, want empty", ed)
	}
	if v := la.Violations(); len(v) != 0 {
		t.Errorf("Cut2 should be legal, got violations %v", v)
	}
}

func TestLatchedDetectsSlaveSetupViolation(t *testing.T) {
	c, tm := fig4Timing(t)
	// A latch at G8's output has D^f(G8) = 9 > 7.5 = φ1+γ1+φ2,
	// violating constraint (6).
	g8 := node(t, c, "G8")
	o9 := node(t, c, "O9")
	p := netlist.NewPlacement()
	p.OnEdge[netlist.Edge{From: g8.ID, To: o9.ID}] = true
	la := AnalyzeLatched(tm, p, fig4.Scheme(), fig4.ZeroLatch())
	found := false
	for _, v := range la.Violations() {
		if v.Kind == "slave-setup" && v.Node.Name == "G8" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a slave-setup violation at G8, got %v", la.Violations())
	}
}

func TestLatchedInitialPlacement(t *testing.T) {
	c, tm := fig4Timing(t)
	la := AnalyzeLatched(tm, netlist.InitialPlacement(c), fig4.Scheme(), fig4.ZeroLatch())
	// With latches at the inputs, every path launches at the slave
	// opening (5), so O9 sees 5 + D^b(input) = 5 + 9 = 14 via I1 — an
	// endpoint-setup violation (needs 12.5), exactly why I1 ∈ V_m.
	o9 := node(t, c, "O9")
	if got := la.EndpointArrival(o9); got != 14 {
		t.Errorf("initial arrival at O9 = %g, want 14", got)
	}
	if len(la.Violations()) == 0 {
		t.Error("initial placement should violate endpoint setup")
	}
}

func TestPathModelDiamond(t *testing.T) {
	lib := cell.Default(1)
	b := netlist.NewBuilder("diamond", lib)
	in := b.Input("i", 0)
	a := b.Gate("a", lib.MustCell(cell.FuncBuf, 1), in)
	g1 := b.Gate("b", lib.MustCell(cell.FuncInv, 1), a)
	g2 := b.Gate("c", lib.MustCell(cell.FuncInv, 4), a)
	d := b.Gate("d", lib.MustCell(cell.FuncNand2, 1), g1, g2)
	b.Output("o", 1, d)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tm := Analyze(c, DefaultOptions(lib))
	// Arrivals must be strictly increasing along every edge.
	for _, n := range c.Nodes {
		for _, f := range n.Fanout {
			if f.Kind == netlist.KindGate && tm.Df(f) <= tm.Df(n) {
				t.Errorf("arrival not increasing across %s -> %s: %g vs %g",
					n.Name, f.Name, tm.Df(n), tm.Df(f))
			}
		}
	}
	// a drives two loads; a single-fanout gate of the same cell in
	// isolation would be faster. Check load is accumulated.
	if tm.Load(a) <= tm.Load(g1) {
		t.Errorf("load(a)=%g should exceed load(b)=%g", tm.Load(a), tm.Load(g1))
	}
	_ = g2
	_ = d
}

func TestGateModelIsConservative(t *testing.T) {
	c := fig4.MustCircuit()
	lib := c.Lib
	path := Analyze(c, DefaultOptions(lib))
	gate := Analyze(c, GateOptions(lib))
	for _, o := range c.Outputs {
		if gate.Arrival(o) < path.Arrival(o) {
			t.Errorf("gate model arrival %g at %s below path model %g",
				gate.Arrival(o), o.Name, path.Arrival(o))
		}
	}
	for _, n := range c.Nodes {
		if n.Kind != netlist.KindGate {
			continue
		}
		for _, u := range n.Fanin {
			if gate.EdgeDelay(u, n) < path.EdgeDelay(u, n) {
				t.Errorf("gate-model edge delay through %s not conservative", n.Name)
			}
		}
	}
}

func TestCriticalPathTo(t *testing.T) {
	c, tm := fig4Timing(t)
	o9 := node(t, c, "O9")
	path, err := tm.CriticalPathTo(o9)
	if err != nil {
		t.Fatal(err)
	}
	// Critical path: I1 -> G3 -> G6 -> G7 -> G8 -> O9 (arrival 9).
	want := []string{"I1", "G3", "G6", "G7", "G8", "O9"}
	if len(path) != len(want) {
		t.Fatalf("path length %d, want %d: %v", len(path), len(want), names(path))
	}
	for i, n := range path {
		if n.Name != want[i] {
			t.Fatalf("critical path %v, want %v", names(path), want)
		}
	}
}

func names(ns []*netlist.Node) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = n.Name
	}
	return out
}

func TestNearCriticalFig4(t *testing.T) {
	_, tm := fig4Timing(t)
	// Arrival at O9 is 9 < Π = 10, so no near-critical endpoints.
	if nce := tm.NearCritical(fig4.Scheme()); len(nce) != 0 {
		t.Errorf("NearCritical = %v, want none", names(nce))
	}
}

func TestModelStrings(t *testing.T) {
	if ModelPath.String() != "path" || ModelGate.String() != "gate" || ModelFixed.String() != "fixed" {
		t.Error("model names wrong")
	}
}
