package sta

import "errors"

// ErrBadInput classifies every way externally supplied material can
// poison an analysis: unknown timing models, non-finite or negative
// delays/slews/capacitances, nil or structurally cyclic circuits. Call
// sites wrap it with fmt.Errorf("sta: %w: ...", ErrBadInput) so callers
// distinguish bad input from solver failures with errors.Is.
var ErrBadInput = errors.New("invalid timing input")
