// Package sta is the static timing engine. It provides the quantities the
// retiming formulation of the paper is built on:
//
//   - D^f(u): the maximum delay from any master launch to the output of
//     gate u (forward arrival),
//   - D^b(v,t): the maximum delay from a slave latch at the output of
//     gate v to the target master t (backward delay),
//   - A(u,v,t): Eq. (5), the arrival at t with a slave latch on edge (u,v),
//
// under three delay models: a path-based model with pin-to-pin delays,
// load and slew dependence (the journal paper's model, Section VI-B); a
// conservative gate-based model using fixed worst-case cell delays (the
// original DAC paper's model, used as the Table II baseline); and a fixed
// per-node model used for the worked example of Fig. 4 and in tests.
package sta

import (
	"context"
	"fmt"
	"math"

	"relatch/internal/cell"
	"relatch/internal/clocking"
	"relatch/internal/netlist"
	"relatch/internal/obs"
)

// Model selects how edge delays are computed.
type Model int

const (
	// ModelPath computes pin-to-pin delays with load and slew dependence.
	ModelPath Model = iota
	// ModelGate uses a fixed conservative worst-case delay per cell.
	ModelGate
	// ModelFixed uses explicit per-node delays from Options.FixedDelays.
	ModelFixed
)

func (m Model) String() string {
	switch m {
	case ModelPath:
		return "path"
	case ModelGate:
		return "gate"
	case ModelFixed:
		return "fixed"
	}
	return fmt.Sprintf("model(%d)", int(m))
}

// Options configures an analysis.
type Options struct {
	Model Model

	// FixedDelays maps node ID to d(v) for ModelFixed. Nodes without an
	// entry have zero delay.
	FixedDelays map[int]float64

	// InputSlew is the transition time presented at cloud inputs.
	InputSlew float64
	// WireCapPerFanout adds load per fanout connection.
	WireCapPerFanout float64
	// LaunchDelay is the master latch clock-to-Q added at every input.
	LaunchDelay float64
	// EndpointCap is the load an output node (a master latch D pin)
	// presents to its driver.
	EndpointCap float64
}

// Validate rejects option sets that would poison an analysis: unknown
// models, and negative or non-finite delays, slews, and capacitances
// (which would propagate NaN/−∞ arrivals through every downstream
// constraint).
func (o Options) Validate() error {
	switch o.Model {
	case ModelPath, ModelGate, ModelFixed:
	default:
		return fmt.Errorf("sta: %w: unknown timing model %d", ErrBadInput, int(o.Model))
	}
	check := func(name string, v float64) error {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("sta: %w: %s = %g, want finite and non-negative", ErrBadInput, name, v)
		}
		return nil
	}
	for name, v := range map[string]float64{
		"InputSlew":        o.InputSlew,
		"WireCapPerFanout": o.WireCapPerFanout,
		"LaunchDelay":      o.LaunchDelay,
		"EndpointCap":      o.EndpointCap,
	} {
		if err := check(name, v); err != nil {
			return err
		}
	}
	for id, d := range o.FixedDelays {
		if math.IsNaN(d) || math.IsInf(d, 0) || d < 0 {
			return fmt.Errorf("sta: %w: fixed delay %g on node %d, want finite and non-negative", ErrBadInput, d, id)
		}
	}
	return nil
}

// DefaultOptions returns path-based options calibrated to the library.
func DefaultOptions(lib *cell.Library) Options {
	return Options{
		Model:            ModelPath,
		InputSlew:        0.010,
		WireCapPerFanout: 0.25,
		LaunchDelay:      lib.BaseLatch.ClkToQ,
		EndpointCap:      lib.BaseLatch.InputCap,
	}
}

// GateOptions returns the conservative gate-delay options used to
// reproduce the "Gate" columns of Table II.
func GateOptions(lib *cell.Library) Options {
	o := DefaultOptions(lib)
	o.Model = ModelGate
	return o
}

// Timing holds the analysis result for one circuit under one option set.
type Timing struct {
	C   *netlist.Circuit
	Opt Options

	arrival []float64 // D^f at every node output
	slew    []float64
	load    []float64
}

// AnalyzeChecked validates the circuit and options before running the
// forward pass — the hardened entry point for externally supplied inputs.
func AnalyzeChecked(c *netlist.Circuit, opt Options) (*Timing, error) {
	if c == nil {
		return nil, fmt.Errorf("sta: %w: nil circuit", ErrBadInput)
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("sta: %w", err)
	}
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	return Analyze(c, opt), nil
}

// AnalyzeCtx is Analyze under a context: the pass itself never blocks,
// but when the context carries a tracer the analysis is recorded as an
// "sta.analyze" span with its node count and relaxation count (one
// relaxation per fanin edge of the single topological sweep — the
// quantity retiming literature reports as STA cost).
func AnalyzeCtx(ctx context.Context, c *netlist.Circuit, opt Options) *Timing {
	sp, _ := obs.StartSpan(ctx, "sta.analyze")
	defer sp.End()
	t := Analyze(c, opt)
	if sp.Enabled() {
		sp.Attr("model", opt.Model.String())
		sp.Gauge("nodes", int64(len(c.Nodes)))
		var relaxations int64
		for _, n := range c.Nodes {
			if n.Kind != netlist.KindInput {
				relaxations += int64(len(n.Fanin))
			}
		}
		sp.Add("relaxations", relaxations)
	}
	return t
}

// Analyze runs a full forward timing pass.
func Analyze(c *netlist.Circuit, opt Options) *Timing {
	t := &Timing{
		C:       c,
		Opt:     opt,
		arrival: make([]float64, len(c.Nodes)),
		slew:    make([]float64, len(c.Nodes)),
		load:    make([]float64, len(c.Nodes)),
	}
	// Loads first (purely structural).
	for _, n := range c.Nodes {
		t.load[n.ID] = t.outputLoad(n)
	}
	for _, n := range c.Topo() {
		switch n.Kind {
		case netlist.KindInput:
			t.arrival[n.ID] = opt.LaunchDelay
			t.slew[n.ID] = opt.InputSlew
		case netlist.KindGate, netlist.KindOutput:
			arr := 0.0
			for _, u := range n.Fanin {
				if a := t.arrival[u.ID] + t.EdgeDelay(u, n); a > arr {
					arr = a
				}
			}
			t.arrival[n.ID] = arr
			if n.Kind == netlist.KindGate {
				t.slew[n.ID] = n.Cell.OutputSlew(t.load[n.ID])
			}
		}
	}
	return t
}

// outputLoad returns the capacitive load seen at the output of n.
func (t *Timing) outputLoad(n *netlist.Node) float64 {
	load := 0.0
	for _, f := range n.Fanout {
		switch f.Kind {
		case netlist.KindOutput:
			load += t.Opt.EndpointCap
		default:
			for pin, u := range f.Fanin {
				if u == n {
					load += f.Cell.InputCap
					_ = pin
				}
			}
		}
		load += t.Opt.WireCapPerFanout
	}
	return load
}

// EdgeDelay returns the delay contributed by traversing node v when
// entered from driver u: the pin-to-pin delay of gate v, or zero when v
// is an output node (a master D pin reached by wire).
func (t *Timing) EdgeDelay(u, v *netlist.Node) float64 {
	if v.Kind != netlist.KindGate {
		return 0
	}
	switch t.Opt.Model {
	case ModelFixed:
		return t.Opt.FixedDelays[v.ID]
	case ModelGate:
		return v.Cell.WorstDelay()
	}
	worst := 0.0
	for pin, f := range v.Fanin {
		if f != u {
			continue
		}
		if d := v.Cell.Delay(pin, t.load[v.ID], t.slew[u.ID]); d > worst {
			worst = d
		}
	}
	return worst
}

// Df returns the forward arrival D^f at the output of n.
func (t *Timing) Df(n *netlist.Node) float64 { return t.arrival[n.ID] }

// Slew returns the output transition time at n.
func (t *Timing) Slew(n *netlist.Node) float64 { return t.slew[n.ID] }

// Load returns the capacitive load at the output of n.
func (t *Timing) Load(n *netlist.Node) float64 { return t.load[n.ID] }

// Arrival returns the data arrival time at an endpoint (output node),
// with no slave latches in the path — the flip-flop design view used for
// the near-critical-endpoint counts of Table I.
func (t *Timing) Arrival(o *netlist.Node) float64 { return t.arrival[o.ID] }

// BackwardMap computes D^b(v, target) for every node v in the fan-in cone
// of target, indexed by node ID; entries outside the cone are NaN.
// D^b(v,t) is the maximum delay from the *output* of v to t, so a node
// directly driving the target has D^b = 0.
func (t *Timing) BackwardMap(target *netlist.Node) []float64 {
	db := make([]float64, len(t.C.Nodes))
	for i := range db {
		db[i] = math.NaN()
	}
	cone := t.C.FaninCone(target)
	db[target.ID] = 0
	topo := t.C.Topo()
	for i := len(topo) - 1; i >= 0; i-- {
		n := topo[i]
		if !cone[n.ID] || n == target {
			continue
		}
		best := math.Inf(-1)
		for _, f := range n.Fanout {
			if !cone[f.ID] || math.IsNaN(db[f.ID]) {
				continue
			}
			if d := t.EdgeDelay(n, f) + db[f.ID]; d > best {
				best = d
			}
		}
		if !math.IsInf(best, -1) {
			db[n.ID] = best
		}
	}
	return db
}

// DbMax computes, for every node v, the maximum D^b(v,t) over all
// endpoints t in a single backward pass. It determines the region V_m
// (constraint (7)) without per-target maps.
func (t *Timing) DbMax() []float64 {
	db := make([]float64, len(t.C.Nodes))
	for i := range db {
		db[i] = math.Inf(-1)
	}
	for _, o := range t.C.Outputs {
		db[o.ID] = 0
	}
	topo := t.C.Topo()
	for i := len(topo) - 1; i >= 0; i-- {
		n := topo[i]
		if n.Kind == netlist.KindOutput {
			continue
		}
		for _, f := range n.Fanout {
			if math.IsInf(db[f.ID], -1) {
				continue
			}
			if d := t.EdgeDelay(n, f) + db[f.ID]; d > db[n.ID] {
				db[n.ID] = d
			}
		}
	}
	return db
}

// A computes Eq. (5): the arrival time at target when a slave latch sits
// on edge (u,v), given the backward map of the target and the slave latch
// cell:
//
//	A(u,v,t) = max{φ1+γ1+ClkToQ, D^f(u)+DToQ} + d(v) + D^b(v,t)
func (t *Timing) A(u, v *netlist.Node, db []float64, s clocking.Scheme, l cell.Latch) float64 {
	if math.IsNaN(db[v.ID]) {
		return math.NaN()
	}
	launch := s.SlaveOpen() + l.ClkToQ
	if d := t.arrival[u.ID] + l.DToQ; d > launch {
		launch = d
	}
	return launch + t.EdgeDelay(u, v) + db[v.ID]
}

// AFrom computes the arrival at the target when a physical slave latch
// sits at the *output* of node u (covering all of u's latched fanout
// edges): max over fanout edges of A(u,v,t), which collapses to
// max{φ1+γ1+ClkToQ, D^f(u)+DToQ} + D^b(u,t).
func (t *Timing) AFrom(u *netlist.Node, db []float64, s clocking.Scheme, l cell.Latch) float64 {
	if math.IsNaN(db[u.ID]) {
		return math.NaN()
	}
	launch := s.SlaveOpen() + l.ClkToQ
	if d := t.arrival[u.ID] + l.DToQ; d > launch {
		launch = d
	}
	return launch + db[u.ID]
}

// NearCritical returns the endpoints whose flip-flop-design arrival
// exceeds the period Π — the NCE count of Table I and the endpoints that
// must be error-detecting before retiming.
func (t *Timing) NearCritical(s clocking.Scheme) []*netlist.Node {
	var out []*netlist.Node
	for _, o := range t.C.Outputs {
		if t.arrival[o.ID] > s.Period() {
			out = append(out, o)
		}
	}
	return out
}

// CriticalPathTo walks the worst arrival path from an endpoint back to a
// cloud input, returning it input-first. It is the query the size-only
// incremental compile uses to pick cells to upsize. The walk is bounded
// by the node count: on a circuit whose fanin relation contains a cycle
// (impossible for netlist.Builder outputs, possible for hand-assembled
// graphs) it returns an error instead of spinning.
func (t *Timing) CriticalPathTo(o *netlist.Node) ([]*netlist.Node, error) {
	var rev []*netlist.Node
	n := o
	for steps := 0; ; steps++ {
		if steps > len(t.C.Nodes) {
			return nil, fmt.Errorf("sta: %w: critical path to %q exceeds %d nodes (fanin cycle?)", ErrBadInput, o.Name, len(t.C.Nodes))
		}
		rev = append(rev, n)
		if n.Kind == netlist.KindInput || len(n.Fanin) == 0 {
			break
		}
		worst := n.Fanin[0]
		worstArr := math.Inf(-1)
		for _, u := range n.Fanin {
			if a := t.arrival[u.ID] + t.EdgeDelay(u, n); a > worstArr {
				worstArr = a
				worst = u
			}
		}
		n = worst
	}
	path := make([]*netlist.Node, len(rev))
	for i, n := range rev {
		path[len(rev)-1-i] = n
	}
	return path, nil
}
