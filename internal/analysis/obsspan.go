package analysis

import (
	"go/ast"
)

// Rule obsspan: a span started with obs.StartSpan must have a deferred
// End in the same function, so the span closes on every path — early
// returns, error exits, panics. Explicit early End calls remain fine
// (Span.End is first-call-wins idempotent, so the deferred one becomes
// a no-op safety net and recorded durations stay accurate); what the
// rule rejects is relying on explicit Ends alone, where a new early
// return silently leaks an open span and the trace tree loses a node.
//
// Matching is syntactic: `sp, ctx := obs.StartSpan(...)` requires a
// `defer sp.End()` (or a deferred closure containing sp.End()) in the
// innermost enclosing function. Spans assigned to `_` are deliberate
// discards and skipped.
func checkObsSpan(p *Pass) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch t := n.(type) {
			case *ast.FuncDecl:
				if t.Body != nil {
					out = append(out, p.checkSpanFunc(t.Body)...)
				}
			case *ast.FuncLit:
				if t.Body != nil {
					out = append(out, p.checkSpanFunc(t.Body)...)
				}
			}
			return true
		})
	}
	return out
}

// checkSpanFunc checks the spans started directly in one function body.
// Nested function literals are separate scopes — their spans are
// checked by their own visit, and their defers don't cover this body.
func (p *Pass) checkSpanFunc(body *ast.BlockStmt) []Diagnostic {
	var out []Diagnostic
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 || len(assign.Lhs) == 0 {
			return true
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok || !selectorOn(call, "obs", "StartSpan") {
			return true
		}
		span, ok := assign.Lhs[0].(*ast.Ident)
		if !ok || span.Name == "_" {
			return true
		}
		if !hasDeferredEnd(body, span.Name) {
			out = append(out, p.diag("obsspan", assign.Pos(),
				"span %s from obs.StartSpan has no deferred End in this function; add `defer %s.End()` so the span closes on every path (explicit early Ends stay valid — End is idempotent)",
				span.Name, span.Name))
		}
		return true
	})
	return out
}

// hasDeferredEnd reports whether the body contains `defer name.End()`
// or a deferred function literal calling name.End().
func hasDeferredEnd(body *ast.BlockStmt, name string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch t := n.(type) {
		case *ast.DeferStmt:
			if callsEndOn(t.Call, name) {
				found = true
				return false
			}
			if lit, ok := t.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(in ast.Node) bool {
					if call, ok := in.(*ast.CallExpr); ok && callsEndOn(call, name) {
						found = true
						return false
					}
					return true
				})
			}
			return false // deferred call handled above; skip normal descent
		case *ast.FuncLit:
			return false // nested scope: its defers don't cover this body
		}
		return true
	})
	return found
}

// callsEndOn matches name.End(...).
func callsEndOn(call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == name
}
