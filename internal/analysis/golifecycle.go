package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Rule golifecycle: a goroutine nobody waits for is a goroutine nobody
// can shut down — it outlives graceful shutdown (the engine's
// Close/wg.Wait contract), holds references past their lifetime, and
// turns `go test -race` runs flaky when it touches test state after
// the test returns. Every `go` statement in library code must
// therefore be tied to a join the spawner (or owner) can observe:
//
//   - a WaitGroup/errgroup-style Done call in the spawned body
//     (engine.Durable's workers and sweeper: `defer d.wg.Done()`),
//   - a send or close on a channel the owner receives from
//     (server.ListenAndServe's `errc <- srv.Serve(ln)`,
//     faults' `done <- o`),
//   - or a ctx-bound receive loop that exits on cancellation
//     (`case <-d.ctx.Done(): return`).
//
// Recognition is syntactic over the spawned body (a function literal,
// or a same-package function/method resolved by name): any Done call,
// channel send, close, or receive counts as tied. Spawns whose callee
// cannot be resolved are skipped, best-effort. cmd/ and build/ are out
// of scope — a main owns its process lifetime, and the runtime reaps
// everything at exit.
func checkGoLifecycle(p *Pass) []Diagnostic {
	slashed := "/" + p.Path + "/"
	if (strings.Contains(slashed, "/cmd/") || strings.Contains(slashed, "/build/") || strings.Contains(slashed, "/examples/")) &&
		!strings.Contains(slashed, "/testdata/src/golifecycle/") {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var body *ast.BlockStmt
			switch fun := g.Call.Fun.(type) {
			case *ast.FuncLit:
				body = fun.Body
			default:
				name := calleeName(g.Call)
				if fn := localFuncDecl(p, name); fn != nil {
					body = fn.Body
				}
			}
			if body == nil || goroutineTied(body) {
				return true
			}
			out = append(out, p.diag("golifecycle", g.Pos(),
				"fire-and-forget goroutine: the spawned body neither signals a WaitGroup (Done), nor sends/closes a channel, nor loops on a ctx receive — nothing can join or stop it"))
			return true
		})
	}
	return out
}

// localFuncDecl finds a same-package function or method body by bare
// name (best-effort: the first match wins, which is enough for the
// repo's `go d.worker()` / `go e.run(...)` spawns).
func localFuncDecl(p *Pass, name string) *ast.FuncDecl {
	if name == "" {
		return nil
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Name.Name == name && fn.Body != nil {
				return fn
			}
		}
	}
	return nil
}

// goroutineTied reports whether a spawned body contains any join
// signal: a Done() call, a channel send, a close, or a receive.
func goroutineTied(body *ast.BlockStmt) bool {
	tied := false
	ast.Inspect(body, func(n ast.Node) bool {
		if tied {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt:
			tied = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				tied = true
			}
		case *ast.CallExpr:
			if name := calleeName(x); name == "Done" || name == "close" {
				tied = true
			}
		case *ast.RangeStmt:
			// `for range ch` over a channel joins on close; over other
			// types it is just a loop, but the spawned pump bodies that
			// range do so over channels — accept it.
			if _, isIdent := x.X.(*ast.Ident); isIdent {
				tied = true
			}
		}
		return !tied
	})
	return tied
}
