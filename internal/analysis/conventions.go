package analysis

import (
	"go/ast"
	"strings"
)

// Rules barepanic and stderr: the two file-local conventions migrated
// from build/analyzers (the third, context plumbing, grew into
// ctxthread).
//
// barepanic: library code returns errors. panic( is allowed only in
// the fault-injection harness (internal/faults, whose whole job is
// provoking failures) and in functions whose name starts with Must —
// the established idiom for fixture constructors with documented panic
// behavior (cell.MustCell, fig4.MustCircuit). Test files are excluded
// at load time.
//
// stderr: library and example code must not write progress with
// fmt.Fprint*(os.Stderr, ...) — structured logging through log/slog
// with an obs handler (obs.NewLogger) owns those lines. Direct stderr
// writes are allowed only in cmd/ (the CLIs own their error text and
// exit codes) and under build/ (repo tooling).
func checkBarePanic(p *Pass) []Diagnostic {
	if strings.Contains(p.Path+"/", "internal/faults/") && !strings.Contains(p.Path, "testdata/src/barepanic") {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || strings.HasPrefix(fn.Name.Name, "Must") {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					out = append(out, p.diag("barepanic", call.Pos(),
						"bare panic in %s: return an error, or rename the function Must%s", fn.Name.Name, fn.Name.Name))
				}
				return true
			})
		}
	}
	return out
}

func checkStderr(p *Pass) []Diagnostic {
	slashed := p.Path + "/"
	if (strings.Contains(slashed, "cmd/") || strings.Contains(slashed, "build/")) &&
		!strings.Contains(p.Path, "testdata/src/stderr") {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				pkg, ok := sel.X.(*ast.Ident)
				if !ok || pkg.Name != "fmt" {
					return true
				}
				switch sel.Sel.Name {
				case "Fprint", "Fprintf", "Fprintln":
				default:
					return true
				}
				argSel, ok := call.Args[0].(*ast.SelectorExpr)
				if !ok {
					return true
				}
				argPkg, ok := argSel.X.(*ast.Ident)
				if !ok || argPkg.Name != "os" || argSel.Sel.Name != "Stderr" {
					return true
				}
				out = append(out, p.diag("stderr", call.Pos(),
					"%s writes to os.Stderr directly: use log/slog via obs.NewLogger (stderr belongs to cmd/)", fn.Name.Name))
				return true
			})
		}
	}
	return out
}
