// Package golifecycle is the golden fixture for the golifecycle rule:
// fire-and-forget goroutines against the three sanctioned join shapes
// (WaitGroup Done, channel send/close, ctx-bound receive loop), for
// both function-literal and same-package-method spawns.
package golifecycle

import (
	"context"
	"sync"
)

// Orphan spawns a goroutine nothing can join or stop.
func Orphan() {
	go func() { // want "fire-and-forget goroutine"
		println("nobody waits for me")
	}()
}

// Waited ties the goroutine to a WaitGroup.
func Waited(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		println("joined")
	}()
}

// ChannelJoined sends its result; the spawner receives it.
func ChannelJoined(work func() error) error {
	errc := make(chan error, 1)
	go func() { errc <- work() }()
	return <-errc
}

// Closer signals completion by closing a channel.
func Closer() <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		println("work")
	}()
	return done
}

// CtxBound loops on cancellation: the owner stops it through ctx.
func CtxBound(ctx context.Context, tick func()) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				tick()
			}
		}
	}()
}

// Pump mirrors the engine.Durable shape: method spawns resolved by
// name in the same package.
type Pump struct {
	wg sync.WaitGroup
}

// Start spawns one joined worker and one orphan.
func (p *Pump) Start() {
	p.wg.Add(1)
	go p.loop()
	go p.leak() // want "fire-and-forget goroutine"
}

func (p *Pump) loop() {
	defer p.wg.Done()
	println("pumping")
}

func (p *Pump) leak() {
	println("leaking")
}

// Collector mirrors the engine.Collector shape: a constructor spawns a
// ticker loop joined by WaitGroup Done plus a ctx-bound receive, and
// Close cancels and waits. Both join signals are sanctioned; the spawn
// must not be flagged.
type Collector struct {
	wg     sync.WaitGroup
	ctx    context.Context
	cancel context.CancelFunc
}

// NewCollector starts the sampling goroutine its Close joins.
func NewCollector() *Collector {
	c := &Collector{}
	c.ctx, c.cancel = context.WithCancel(context.Background())
	c.wg.Add(1)
	go c.loop()
	return c
}

func (c *Collector) loop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.ctx.Done():
			return
		default:
			println("sample")
		}
	}
}

// Close stops and joins the sampler.
func (c *Collector) Close() {
	c.cancel()
	c.wg.Wait()
}

// TickerOrphan spawns a periodic sampler nothing can stop: the classic
// collector leak the rule must keep catching.
type TickerOrphan struct{}

// Start leaks the sampling goroutine.
func (o *TickerOrphan) Start() {
	go o.sample() // want "fire-and-forget goroutine"
}

func (o *TickerOrphan) sample() {
	for {
		println("sampling forever")
	}
}
