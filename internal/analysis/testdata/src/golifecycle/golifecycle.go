// Package golifecycle is the golden fixture for the golifecycle rule:
// fire-and-forget goroutines against the three sanctioned join shapes
// (WaitGroup Done, channel send/close, ctx-bound receive loop), for
// both function-literal and same-package-method spawns.
package golifecycle

import (
	"context"
	"sync"
)

// Orphan spawns a goroutine nothing can join or stop.
func Orphan() {
	go func() { // want "fire-and-forget goroutine"
		println("nobody waits for me")
	}()
}

// Waited ties the goroutine to a WaitGroup.
func Waited(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		println("joined")
	}()
}

// ChannelJoined sends its result; the spawner receives it.
func ChannelJoined(work func() error) error {
	errc := make(chan error, 1)
	go func() { errc <- work() }()
	return <-errc
}

// Closer signals completion by closing a channel.
func Closer() <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		println("work")
	}()
	return done
}

// CtxBound loops on cancellation: the owner stops it through ctx.
func CtxBound(ctx context.Context, tick func()) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				tick()
			}
		}
	}()
}

// Pump mirrors the engine.Durable shape: method spawns resolved by
// name in the same package.
type Pump struct {
	wg sync.WaitGroup
}

// Start spawns one joined worker and one orphan.
func (p *Pump) Start() {
	p.wg.Add(1)
	go p.loop()
	go p.leak() // want "fire-and-forget goroutine"
}

func (p *Pump) loop() {
	defer p.wg.Done()
	println("pumping")
}

func (p *Pump) leak() {
	println("leaking")
}
