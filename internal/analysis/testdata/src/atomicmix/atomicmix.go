// Package atomicmix is the golden fixture for the atomicmix rule:
// fields and package vars touched through sync/atomic must never also
// be accessed plainly; all-atomic and never-atomic variables stay
// silent.
package atomicmix

import "sync/atomic"

// Counter mixes disciplines on one field and keeps them straight on
// the other two.
type Counter struct {
	hits  int64 // every access atomic: fine
	total int64 // mixed: flagged below
	plain int   // never atomic: fine
}

// Inc is all-atomic.
func (c *Counter) Inc() {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddInt64(&c.total, 1)
}

// Hits is all-atomic.
func (c *Counter) Hits() int64 {
	return atomic.LoadInt64(&c.hits)
}

// Snapshot reads total plainly even though Inc bumps it atomically.
func (c *Counter) Snapshot() int64 {
	c.plain++
	return c.total // want "accessed plainly here but atomically"
}

var generation int64

// Advance bumps the package counter atomically.
func Advance() {
	atomic.AddInt64(&generation, 1)
}

// Peek reads it plainly: same object, mixed discipline.
func Peek() int64 {
	return generation // want "accessed plainly here but atomically"
}
