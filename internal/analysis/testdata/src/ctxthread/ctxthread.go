// Package ctxthread is the golden fixture for the ctxthread rule:
// exported entry points must thread context.Context to *Ctx APIs and,
// in guarantee-chain packages, to blocking I/O.
package ctxthread

import (
	"context"
	"os"
)

// SolveCtx is the context-threaded API surface.
func SolveCtx(ctx context.Context, n int) int { return n }

// Broken forwards to a *Ctx API without accepting a context itself.
func Broken(n int) int {
	return SolveCtx(nil, n) // want "calls SolveCtx without"
}

// Shim passes an explicit no-context — the documented exemption for
// edges that genuinely have none.
func Shim(n int) int {
	return SolveCtx(context.Background(), n)
}

// Drive threads its own context through: fine.
func Drive(ctx context.Context, n int) int {
	return SolveCtx(ctx, n)
}

// Slurp does blocking I/O from an exported context-less function.
func Slurp(path string) ([]byte, error) {
	return os.ReadFile(path) // want "blocking I/O"
}

// NewStore is a constructor: construction and teardown run at the
// pipeline edges and are exempt from the I/O clause.
func NewStore(path string) ([]byte, error) {
	return os.ReadFile(path)
}
