// Package stderr is the golden fixture for the stderr rule: library
// code does not write to os.Stderr directly.
package stderr

import (
	"fmt"
	"os"
	"strings"
)

// Report writes progress straight to stderr from library code.
func Report(msg string) {
	fmt.Fprintf(os.Stderr, "relint: %s\n", msg) // want "os.Stderr directly"
}

// Render writes to a caller-supplied writer: fine.
func Render(sb *strings.Builder, msg string) {
	fmt.Fprintln(sb, msg)
}
