// Package barepanic is the golden fixture for the barepanic rule:
// library code returns errors.
package barepanic

import "errors"

// Explode panics instead of returning the error it already has.
func Explode(ok bool) error {
	if !ok {
		panic("boom") // want "bare panic"
	}
	return nil
}

// MustExplode documents its panic in the name — the sanctioned idiom
// for fixture constructors.
func MustExplode(ok bool) {
	if !ok {
		panic(errors.New("boom"))
	}
}
