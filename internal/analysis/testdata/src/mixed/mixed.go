// Package mixed is the suppression-interplay fixture: the statement
// `b.a.mu.Lock()` in Backward carries both a guardedby violation (the
// pointer field a is annotated `guarded by amu`, which is not held)
// and a lockorder cycle edge (B.mu → A.mu, reversing Forward's
// A.mu → B.mu), and the //relint:ignore above it names only guardedby.
// The directive must silence exactly that rule — the lockorder finding
// on the same line survives. TestSuppressionInterplay asserts both
// directions; there are no want comments because this fixture is
// driven by that test, not by TestRuleFixtures.
package mixed

import "sync"

type A struct {
	mu sync.Mutex
	b  *B
}

type B struct {
	mu  sync.Mutex
	amu sync.Mutex
	a   *A // guarded by amu
}

// Forward pins the A.mu → B.mu direction of the cycle.
func (a *A) Forward() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.b.mu.Lock()
	a.b.mu.Unlock()
}

// Backward reverses the order through the guarded pointer field.
func (b *B) Backward() {
	b.mu.Lock()
	defer b.mu.Unlock()
	//relint:ignore guardedby -- interplay fixture: audited access; must not silence the lockorder finding on the same line
	b.a.mu.Lock()
	b.a.mu.Unlock() //relint:ignore guardedby -- interplay fixture: companion unlock of the audited access
}
