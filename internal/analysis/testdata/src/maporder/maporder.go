// Package maporder is the golden fixture for the maporder rule:
// ordered work driven by randomized map iteration.
package maporder

import (
	"fmt"
	"sort"
)

// lpSink mimics the difference-constraint LP builder whose insertion
// order decides the dual network's arc order.
type lpSink struct{}

func (lpSink) Bound(v, lo, hi int) {}

type graph struct {
	mirrorOf map[int]int
}

// PR5 replays the PR 5 determinism bug: bound insertion ordered by map
// iteration, which randomized the simplex pivot path across -j levels.
func PR5(g graph) {
	var lp lpSink
	for _, m := range g.mirrorOf {
		lp.Bound(m, -1, 0) // want "order-sensitive sink"
	}
}

// CollectUnsorted builds a slice in randomized order and returns it as-is.
func CollectUnsorted(set map[string]bool) []string {
	var out []string
	for k := range set {
		out = append(out, k) // want "order-dependent slice"
	}
	return out
}

// CollectSorted is the sanctioned collect-then-sort idiom: the append
// is unordered, the sort after the loop restores determinism.
func CollectSorted(set map[string]bool) []string {
	var out []string
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Dump writes output lines in randomized order.
func Dump(set map[string]int) {
	for k, v := range set {
		fmt.Printf("%s=%d\n", k, v) // want "randomized order"
	}
}

// PerKey appends only to a slice declared inside the loop body — fresh
// per iteration, so order cannot leak out.
func PerKey(set map[string][]int) map[string]int {
	counts := make(map[string]int)
	for k, vs := range set {
		local := []int{}
		for _, v := range vs {
			local = append(local, v)
		}
		counts[k] = len(local)
	}
	return counts
}
