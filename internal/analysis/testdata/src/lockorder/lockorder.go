// Package lockorder is the golden fixture for the lockorder rule: a
// two-mutex cycle built from one direct nested Lock and one transitive
// acquisition through a callee, a legal one-way ordering, and a
// same-class re-acquisition under lock (self-deadlock).
package lockorder

import "sync"

type A struct {
	mu sync.Mutex
	b  *B
}

type B struct {
	mu sync.Mutex
	a  *A
}

// Forward acquires A.mu → B.mu directly.
func (a *A) Forward() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.b.mu.Lock() // want "lock-order cycle"
	a.b.mu.Unlock()
}

// Backward acquires B.mu → A.mu through a callee, closing the cycle.
func (b *B) Backward() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.a.Touch() // want "lock-order cycle"
}

// Touch takes and releases A.mu; Backward inherits the acquisition.
func (a *A) Touch() {
	a.mu.Lock()
	a.mu.Unlock()
}

// Reenter calls back into a method that takes the mutex it already
// holds: sync.Mutex self-deadlocks.
func (a *A) Reenter() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.Touch() // want "self-deadlock"
}

// C → D is a one-way ordering: edges without a reverse path are the
// canonical order, not findings.
type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }

func Chain(c *C, d *D) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d.mu.Lock()
	d.mu.Unlock()
}

// Sequential takes the same two locks without overlap: release before
// acquire creates no edge in either direction.
func Sequential(d *D, c *C) {
	d.mu.Lock()
	d.mu.Unlock()
	c.mu.Lock()
	c.mu.Unlock()
}
