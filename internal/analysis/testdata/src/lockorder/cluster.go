// cluster.go pins the PR 10 bug class: the serving cluster's front-door
// mutexes (auth policy layer, per-peer circuit breaker) must stay leaf
// locks. Holding one while acquiring the other — here through two
// transitive leaf callees, the shape a helper refactor would introduce —
// closes a cycle between the admission path and the failure path.
package lockorder

import "sync"

type Auth struct {
	mu sync.Mutex
	br *Breaker
}

type Breaker struct {
	mu   sync.Mutex
	auth *Auth
}

// Admit consults the breaker while still holding the policy lock.
func (a *Auth) Admit() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.br.allow() // want "lock-order cycle"
}

// allow is the breaker-side leaf Admit inherits.
func (b *Breaker) allow() {
	b.mu.Lock()
	b.mu.Unlock()
}

// Trip charges the client while still holding the breaker lock,
// closing the cycle in the other direction.
func (b *Breaker) Trip() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.auth.charge() // want "lock-order cycle"
}

// charge is the auth-side leaf Trip inherits.
func (a *Auth) charge() {
	a.mu.Lock()
	a.mu.Unlock()
}

// AdmitThenProbe is the fixed shape the real cluster package uses:
// decide under one lock, release it, then touch the other. No overlap,
// no edge.
func (a *Auth) AdmitThenProbe() {
	a.mu.Lock()
	a.mu.Unlock()
	a.br.allow()
}
