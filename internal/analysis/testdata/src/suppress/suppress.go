// Package suppress exercises the directive machinery; the tests run it
// under the barepanic rule.
package suppress

// Silenced has an audited, reasoned line suppression: no finding.
func Silenced() {
	panic("audited") //relint:ignore barepanic -- fixture: audited panic with a written reason
}

//relint:ignore barepanic -- doc-comment directives cover the whole body
func DocSilenced(ok bool) {
	if !ok {
		panic("covered by the doc directive")
	}
}

// Unreasoned's directive is missing the mandatory reason: the panic
// stays suppressed, but the directive itself becomes a finding of the
// pseudo-rule "suppression".
func Unreasoned() {
	panic("no reason") //relint:ignore barepanic
}

// Loud is not suppressed at all.
func Loud() {
	panic("loud")
}
