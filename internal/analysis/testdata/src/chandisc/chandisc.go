// Package chandisc is the golden fixture for the chandisc rule: the
// three ownership violations (closing a received channel, sending
// after a close, an unbuffered goroutine-fed channel under an
// early-returning select) and their sanctioned counterparts.
package chandisc

import "context"

// DrainAndClose closes a channel it received — the caller, or another
// sender, may still be sending.
func DrainAndClose(ch chan int) {
	for range ch {
	}
	close(ch) // want "closes a channel received as a parameter"
}

// Produce owns its channel: making, sending, closing in one body is
// the canonical producer shape (close precedes no send here).
func Produce(n int) <-chan int {
	ch := make(chan int, n)
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)
	return ch
}

// SendAfterClose panics at the send on every schedule.
func SendAfterClose() {
	ch := make(chan int, 1)
	close(ch)
	ch <- 1 // want "send on ch after a close"
}

// LeakyServe replays the engine/server.go bug class: when ctx wins the
// select, the unbuffered send blocks forever and the goroutine leaks.
func LeakyServe(ctx context.Context, serve func() error) error {
	errc := make(chan error) // want "make it buffered"
	go func() { errc <- serve() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// BufferedServe is the fix: the one-slot buffer lets the loser of the
// race finish its send and exit.
func BufferedServe(ctx context.Context, serve func() error) error {
	errc := make(chan error, 1)
	go func() { errc <- serve() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// SoleReader never abandons the channel — a plain receive has no other
// case to win — so unbuffered is legal.
func SoleReader(serve func() error) error {
	errc := make(chan error)
	go func() { errc <- serve() }()
	return <-errc
}
