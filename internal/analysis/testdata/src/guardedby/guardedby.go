// Package guardedby is the golden fixture for the guardedby rule:
// annotated fields accessed with and without their mutex held,
// branch-aware early-exit unlocking, the *Locked helper convention,
// closures as fresh scopes, package-level guarded vars, and a
// misspelled annotation. Lines without a want comment pin the
// sanctioned idioms.
package guardedby

import "sync"

// Box mirrors the engine/queue shape: one mutex, several fields it
// guards, one field it does not.
type Box struct {
	mu    sync.Mutex
	count int // guarded by mu
	last  int // guarded by mu
	name  string
	bad   int // guarded by lock // want "Box.lock does not exist"
}

// Good is the canonical access shape: lock, defer unlock, touch.
func (b *Box) Good() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.count
}

// Toggle unlocks and then keeps mutating — the classic stale-critical-
// section bug.
func (b *Box) Toggle() {
	b.mu.Lock()
	b.count++
	b.mu.Unlock()
	b.last = 7 // want "Box.last is accessed without holding mu"
}

// Branchy replays engine.Submit's early-exit shape: the unlocking arm
// returns, so the fall-through path still holds the lock and its
// accesses are legal.
func (b *Box) Branchy(stop bool) {
	b.mu.Lock()
	if stop {
		b.mu.Unlock()
		return
	}
	b.count--
	b.mu.Unlock()
}

// BranchyLeak unlocks in a non-terminating arm: after the if, the lock
// is only maybe-held, which counts as not held.
func (b *Box) BranchyLeak(flip bool) {
	b.mu.Lock()
	if flip {
		b.mu.Unlock()
	}
	b.count++ // want "Box.count is accessed without holding mu"
	if !flip {
		b.mu.Unlock()
	}
}

// Bare reads without any locking at all.
func (b *Box) Bare() int {
	return b.count // want "Box.count is accessed without holding mu"
}

// addLocked follows the *Locked convention: the caller holds mu, so
// the body is exempt.
func (b *Box) addLocked(n int) {
	b.count += n
	b.last = b.count
}

// ViaHelper drives the helper under the lock — the sanctioned split.
func (b *Box) ViaHelper() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.addLocked(1)
}

// Name touches only the unannotated field: no locking required.
func (b *Box) Name() string { return b.name }

// Escape returns a closure: the closure may run on any goroutine
// later, so it starts with nothing held even though the method locked.
func (b *Box) Escape() func() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return func() int {
		return b.count // want "Box.count is accessed without holding mu"
	}
}

// EscapeLocking is the fixed version: the closure locks for itself.
func (b *Box) EscapeLocking() func() int {
	return func() int {
		b.mu.Lock()
		defer b.mu.Unlock()
		return b.count
	}
}

var regMu sync.Mutex

var registry = map[string]int{} // guarded by regMu

// Register drives the package-level pair correctly, then slips.
func Register(k string) {
	regMu.Lock()
	registry[k] = 1
	regMu.Unlock()
	delete(registry, k) // want "registry is accessed without holding regMu"
}
