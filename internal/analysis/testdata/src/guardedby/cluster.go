// cluster.go pins the PR 10 bug class: the cluster package's token
// bucket and breaker state are annotated `guarded by mu`, and the rule
// must catch the tempting shapes — recording a metric-adjacent field
// after the early release, and snapshotting bucket levels lock-free.
package guardedby

import "sync"

// Gate mirrors cluster.Auth/Breaker: decision state under one mutex,
// with metrics deliberately recorded after release (the repo's lock
// order makes these mutexes leaves).
type Gate struct {
	mu     sync.Mutex
	tokens float64 // guarded by mu
	fails  int     // guarded by mu
	client string
}

// Admit is the sanctioned shape: drain the bucket under the lock,
// return the decision, record metrics on unannotated state afterwards.
func (g *Gate) Admit() bool {
	g.mu.Lock()
	ok := g.tokens >= 1
	if ok {
		g.tokens--
	}
	g.mu.Unlock()
	return ok
}

// Trip releases before charging the failure counter — the bug the
// metrics-after-unlock convention invites.
func (g *Gate) Trip() {
	g.mu.Lock()
	g.mu.Unlock()
	g.fails++ // want "Gate.fails is accessed without holding mu"
}

// Level snapshots the bucket without any locking at all.
func (g *Gate) Level() float64 {
	return g.tokens // want "Gate.tokens is accessed without holding mu"
}

// refillLocked follows the *Locked convention: callers hold mu.
func (g *Gate) refillLocked(n float64) {
	g.tokens += n
	g.fails = 0
}

// Refill drives the helper under the lock — the sanctioned split.
func (g *Gate) Refill() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.refillLocked(1)
}

// Client touches only the unannotated field: no locking required.
func (g *Gate) Client() string { return g.client }
