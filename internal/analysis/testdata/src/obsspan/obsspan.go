// Package obsspan is the golden fixture for the obsspan rule: a span
// started with obs.StartSpan needs a deferred End in its function.
// The obs variable below mimics the repo's obs package — the rule's
// matching is syntactic on the obs.StartSpan spelling.
package obsspan

import "context"

type span struct{}

func (*span) End() {}

type tracer struct{}

func (tracer) StartSpan(ctx context.Context, name string) (*span, context.Context) {
	return &span{}, ctx
}

var obs tracer

// Leaky starts a span and never defers its End: a new early return
// would leak it.
func Leaky(ctx context.Context) {
	sp, _ := obs.StartSpan(ctx, "leaky") // want "no deferred End"
	_ = sp
}

// Covered has the deferred safety net plus a valid explicit early End
// (End is first-call-wins idempotent).
func Covered(ctx context.Context) {
	sp, ctx2 := obs.StartSpan(ctx, "covered")
	defer sp.End()
	_ = ctx2
	sp.End()
}

// Closure defers End through a function literal: also fine.
func Closure(ctx context.Context) {
	sp, _ := obs.StartSpan(ctx, "closure")
	defer func() { sp.End() }()
}

// Discarded spans (blank identifier) are deliberate and skipped.
func Discarded(ctx context.Context) {
	_, ctx2 := obs.StartSpan(ctx, "discard")
	_ = ctx2
}

// Nested function literals are separate scopes: the goroutine's span
// needs its own defer, and not having one is flagged there.
func Nested(ctx context.Context) {
	go func() {
		sp, _ := obs.StartSpan(ctx, "inner") // want "no deferred End"
		_ = sp
	}()
}

// Subscriber mirrors the SSE handler shape: the span is deferred-Ended
// up front, then the function loops consuming events with early
// returns on every exit path. The single defer covers them all — no
// finding.
func Subscriber(ctx context.Context, next func() (int, error)) {
	sp, _ := obs.StartSpan(ctx, "subscriber")
	defer sp.End()
	for {
		ev, err := next()
		if err != nil {
			return
		}
		if ev < 0 {
			return
		}
	}
}
