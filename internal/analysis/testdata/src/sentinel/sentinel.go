// Package sentinel is the golden fixture for the sentinel rule: errors
// returned from guarantee-chain packages wrap a declared sentinel.
package sentinel

import (
	"errors"
	"fmt"
)

// ErrBad is the declared sentinel — package-level errors.New is the
// sentinel declaration itself and is fine.
var ErrBad = errors.New("bad input")

// Check mixes the two violation shapes with the correct idiom.
func Check(n int) error {
	if n < 0 {
		return errors.New("negative") // want "errors.New at a return site"
	}
	if n > 100 {
		return fmt.Errorf("too big: %d", n) // want "without %w at a return site"
	}
	if n == 13 {
		return fmt.Errorf("sentinel: %w: unlucky %d", ErrBad, n)
	}
	return nil
}
