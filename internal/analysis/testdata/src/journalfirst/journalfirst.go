// Package journalfirst is the golden fixture for the journalfirst
// rule: the write-ahead contract of internal/queue.
package journalfirst

type record struct {
	ID string
}

type journal struct{}

func (journal) append(r record) error { return nil }

// Queue mirrors the shape of queue.Queue: a journal handle, replayed
// state (nextID, jobs), and exempt infrastructure (counts).
type Queue struct {
	j      journal
	nextID int
	counts int
	jobs   map[string]record
}

// EnqueueBad mutates replayed state before the journal append: a crash
// between the two lines leaves memory ahead of the journal.
func (q *Queue) EnqueueBad(id string) error {
	q.nextID++ // want "before the journal append"
	q.counts++ // metrics counters are never replayed: exempt
	rec := record{ID: id}
	if err := q.j.append(rec); err != nil {
		return err
	}
	q.jobs[id] = rec
	return nil
}

// EnqueueGood is the sanctioned idiom: compute into locals, append the
// record built from them, then mutate.
func (q *Queue) EnqueueGood(id string) error {
	nextID := q.nextID + 1
	rec := record{ID: id}
	if err := q.j.append(rec); err != nil {
		return err
	}
	q.nextID = nextID
	q.jobs[id] = rec
	return nil
}

// Submit reaches the journal through an append-like callee; mutating
// first is the same crash window one call deeper.
func (q *Queue) Submit(id string) error {
	q.nextID++ // want "before the journal append"
	return q.EnqueueGood(id)
}

// retire journals a termination record for a job handle passed by
// pointer: handles into shared state are tainted like the receiver.
func (q *Queue) retire(jb *record, cause string) error {
	jb.ID = cause // want "before the journal append"
	return q.j.append(*jb)
}
