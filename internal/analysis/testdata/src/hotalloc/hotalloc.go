// Package hotalloc is the golden fixture for the hotalloc rule:
// allocation sources inside //relint:hot solver loops.
package hotalloc

import "fmt"

type item struct{ v, d int }

// SolveSimplexCtx is a declared hot function with no annotated loop:
// the rule demands the annotation so hygiene is actually checked.
func SolveSimplexCtx(xs []int) int { // want "declared hot function"
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// SolveSSPCtx exercises every allocation class inside one hot loop.
func SolveSSPCtx(xs []int, sink func(interface{})) int {
	total := 0
	buf := make([]int, 0, len(xs))
	//relint:hot
	for _, x := range xs {
		it := item{v: x}                // want "composite literal"
		f := func() int { return it.v } // want "closure"
		buf = append(buf, f())          // want "append inside a hot loop"
		fmt.Sprint(x)                   // want "fmt.Sprint"
		sink(x)                         // want "boxes it"
		total += x
	}
	return total + len(buf)
}

// Drain shows the return-statement exemption: one-shot exits do not
// run per iteration, so the append below is not flagged.
func Drain(xs []int) []int {
	out := make([]int, 0, len(xs))
	//relint:hot
	for i, x := range xs {
		if x < 0 {
			return append(out, i)
		}
		out = out[:i]
	}
	return out
}
