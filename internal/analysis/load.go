package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Tree is a loaded source tree: one Pass per package directory, sharing
// a FileSet and a (cached) importer.
type Tree struct {
	Fset *token.FileSet
	Pkgs []*Pass
	// TypeErrors collects non-fatal type-checker complaints. A building
	// repo produces none; they are surfaced (not fatal) so an importer
	// hiccup degrades rules to syntactic coverage instead of killing the
	// gate with a false positive.
	TypeErrors []error
}

// Load walks root for Go package directories and loads each one. Roots
// may carry a trailing "/..." (the go tool spelling); it is equivalent
// to the bare directory, since Load always walks recursively. Skipped:
// VCS metadata, testdata trees (fixtures are loaded explicitly by
// tests via LoadDir), and materialized build outputs.
func Load(root string, cfg Config) (*Tree, error) {
	root = strings.TrimSuffix(root, "/...")
	if root == "" {
		root = "."
	}
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata", "lint-benches", "node_modules":
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("analysis: walking %s: %w", root, err)
	}
	sort.Strings(dirs)
	t := &Tree{Fset: token.NewFileSet()}
	imp := newImporter(t.Fset)
	for _, dir := range dirs {
		p, err := t.loadDir(dir, filepath.ToSlash(filepath.Clean(dir)), imp, cfg)
		if err != nil {
			return nil, err
		}
		if p != nil {
			t.Pkgs = append(t.Pkgs, p)
		}
	}
	return t, nil
}

// LoadDir loads a single package directory (used by the fixture tests).
// The Pass path is the directory as given, slash-normalized, so fixture
// scoping on "testdata/src/<rule>" works from any root.
func LoadDir(dir string, cfg Config) (*Tree, error) {
	t := &Tree{Fset: token.NewFileSet()}
	p, err := t.loadDir(dir, filepath.ToSlash(filepath.Clean(dir)), newImporter(t.Fset), cfg)
	if err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	t.Pkgs = append(t.Pkgs, p)
	return t, nil
}

// loadDir parses and type-checks one package directory. Type errors are
// collected, not fatal: rules degrade to syntactic coverage.
func (t *Tree) loadDir(dir, rel string, imp types.Importer, cfg Config) (*Pass, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, perr := parser.ParseFile(t.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if perr != nil {
			return nil, fmt.Errorf("analysis: %w", perr)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Uses:  make(map[*ast.Ident]types.Object),
		Defs:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { t.TypeErrors = append(t.TypeErrors, err) },
	}
	path := rel
	if path == "" {
		path = "."
	}
	// Check errors are already collected via conf.Error; the returned
	// error only repeats the first one.
	conf.Check(path, t.Fset, files, info) //nolint:errcheck
	return &Pass{Fset: t.Fset, Path: rel, Files: files, Info: info, Config: cfg}, nil
}

// newImporter returns the stdlib source importer: it type-checks
// imports (standard library and module-internal alike) from source, so
// the driver needs neither export data nor third-party loaders. Results
// are cached per importer, which Load shares across the whole tree.
func newImporter(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "source", nil)
}
