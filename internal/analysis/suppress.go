package analysis

import (
	"go/ast"
	"strings"
)

// Suppression syntax:
//
//	//relint:ignore <rule>[,<rule>] -- <reason>
//
// On (or directly above) a line, the directive suppresses the named
// rules' findings anchored to that line. In a function's doc comment it
// suppresses them for the whole function body — the form used where one
// audited design decision would otherwise need a comment per statement
// (e.g. queue.Open's replay reconstruction).
//
// The reason is mandatory. A directive without one is reported as a
// finding of the pseudo-rule "suppression": an unexplained suppression
// is exactly the kind of silent exception this package exists to
// prevent.

const ignorePrefix = "//relint:ignore"

// suppressions indexes the directives of one package.
type suppressions struct {
	// byLine maps file → line → suppressed rule IDs. A directive covers
	// its own line and the next one, so both trailing and
	// line-above placements work.
	byLine map[string]map[int]map[string]bool
	// malformed collects directives missing their mandatory reason.
	malformed []Diagnostic
}

// covers reports whether the diagnostic is suppressed.
func (s *suppressions) covers(d Diagnostic) bool {
	lines := s.byLine[d.File]
	if lines == nil {
		return false
	}
	rules := lines[d.Line]
	return rules != nil && (rules[d.Rule] || rules["*"])
}

// collectSuppressions scans a package's comments for directives.
func collectSuppressions(p *Pass) *suppressions {
	s := &suppressions{byLine: make(map[string]map[int]map[string]bool)}
	for _, f := range p.Files {
		// Function-doc directives cover the whole function body.
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil || fn.Body == nil {
				continue
			}
			for _, c := range fn.Doc.List {
				rules, ok := s.parse(p, c)
				if !ok {
					continue
				}
				file, from, _ := p.position(fn.Body.Pos())
				_, to, _ := p.position(fn.Body.End())
				for line := from; line <= to; line++ {
					s.mark(file, line, rules)
				}
			}
		}
		for _, grp := range f.Comments {
			for _, c := range grp.List {
				rules, ok := s.parse(p, c)
				if !ok {
					continue
				}
				file, line, _ := p.position(c.Pos())
				s.mark(file, line, rules)
				s.mark(file, line+1, rules)
			}
		}
	}
	return s
}

// parse extracts the rule list of one directive comment, recording a
// "suppression" finding when the mandatory reason is missing.
func (s *suppressions) parse(p *Pass, c *ast.Comment) ([]string, bool) {
	text := strings.TrimSpace(c.Text)
	if !strings.HasPrefix(text, ignorePrefix) {
		return nil, false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
	spec, reason, found := strings.Cut(rest, "--")
	if !found || strings.TrimSpace(reason) == "" {
		s.malformed = append(s.malformed, p.diag("suppression", c.Pos(),
			"suppression without a reason: write %s <rule> -- <why this site is exempt>", ignorePrefix))
		// The directive still suppresses; the malformed finding is the
		// enforcement, and double-reporting the original rule would
		// punish the site twice for one mistake.
	}
	var rules []string
	for _, r := range strings.Split(spec, ",") {
		if r = strings.TrimSpace(r); r != "" {
			rules = append(rules, r)
		}
	}
	if len(rules) == 0 {
		return nil, false
	}
	return rules, true
}

func (s *suppressions) mark(file string, line int, rules []string) {
	lines := s.byLine[file]
	if lines == nil {
		lines = make(map[int]map[string]bool)
		s.byLine[file] = lines
	}
	set := lines[line]
	if set == nil {
		set = make(map[string]bool)
		lines[line] = set
	}
	for _, r := range rules {
		set[r] = true
	}
}
