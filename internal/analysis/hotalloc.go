package analysis

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Rule hotalloc: the simplex pivot loop and the SSP augmentation loop
// are the repo's hottest code — ROADMAP's solver-speed campaign lives
// or dies on their per-iteration allocation count, and the
// AllocsPerRun gates in internal/flow/alloc_test.go hold the measured
// baseline. This rule is the static half of that gate: it keeps
// allocation sources from creeping back in between benchmark runs.
//
// Mechanics: the functions named in hotFuncs must each contain at
// least one loop annotated
//
//	//relint:hot
//
// (on the line directly above the for/range statement). Inside an
// annotated loop — nested loops included — the rule flags:
//
//   - composite literals (struct/slice/map construction per iteration);
//   - function literals (closure allocation; hoist before the loop);
//   - append calls (growth re-allocation; hoist a reused buffer and
//     reset with [:0], or allowlist the audited amortized ones);
//   - fmt.* calls (interface boxing plus formatting state);
//   - concrete-to-interface argument conversions (boxing — the
//     container/heap trap: heap.Push(pq, item) boxes every item).
//
// Anything inside a return statement is exempt (one-shot error exits
// don't run per iteration). Surviving audited sites live in the
// allowlist file (cmd/relint -allow, default
// internal/analysis/hotalloc.allow), keyed "file:func:kind:detail" —
// e.g. "simplex.go:SolveSimplexCtx:append:chain". Unused allowlist
// keys are findings too, so the file can't rot.
var hotFuncs = []string{"SolveSimplexCtx", "SolveSSPCtx"}

const hotMarker = "//relint:hot"

func checkHotAlloc(p *Pass) []Diagnostic {
	if !inScope(p.Path, "hotalloc", "internal/flow") {
		return nil
	}
	required := make(map[string]bool, len(hotFuncs))
	for _, n := range hotFuncs {
		required[n] = true
	}
	used := make(map[string]bool, len(p.Config.HotAllow))
	var out []Diagnostic
	for _, f := range p.Files {
		marks := hotMarkLines(p, f)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			hotLoops := annotatedLoops(p, fn.Body, marks)
			if required[fn.Name.Name] && len(hotLoops) == 0 {
				out = append(out, p.diag("hotalloc", fn.Pos(),
					"%s is a declared hot function but contains no %s-annotated loop; annotate its inner loop so allocation hygiene is checked", fn.Name.Name, hotMarker))
			}
			for _, loop := range hotLoops {
				out = append(out, p.checkHotLoop(fn, loop, used)...)
			}
		}
	}
	stale := make([]string, 0, len(p.Config.HotAllow))
	for key := range p.Config.HotAllow {
		if !used[key] {
			stale = append(stale, key)
		}
	}
	sort.Strings(stale)
	for _, key := range stale {
		out = append(out, Diagnostic{File: filepath.Join(p.Path, "hotalloc.allow"), Line: 1, Col: 1, Rule: "hotalloc",
			Message: fmt.Sprintf("allowlist entry %q matches no finding; remove it (stale audited sites hide future regressions)", key)})
	}
	return out
}

// hotMarkLines collects the line numbers of //relint:hot comments.
func hotMarkLines(p *Pass, f *ast.File) map[int]bool {
	marks := make(map[int]bool)
	for _, grp := range f.Comments {
		for _, c := range grp.List {
			if strings.HasPrefix(strings.TrimSpace(c.Text), hotMarker) {
				_, line, _ := p.position(c.Pos())
				marks[line] = true
			}
		}
	}
	return marks
}

// annotatedLoops returns the outermost loops annotated with a hot
// marker on their own or the preceding line. Loops nested inside an
// annotated loop are covered by their ancestor and not returned
// separately.
func annotatedLoops(p *Pass, body *ast.BlockStmt, marks map[int]bool) []ast.Stmt {
	var loops []ast.Stmt
	inside := func(n ast.Node) bool {
		for _, l := range loops {
			if n.Pos() >= l.Pos() && n.End() <= l.End() {
				return true
			}
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if inside(n) {
				return true
			}
			_, line, _ := p.position(n.Pos())
			if marks[line] || marks[line-1] {
				loops = append(loops, n.(ast.Stmt))
			}
		}
		return true
	})
	return loops
}

// checkHotLoop flags allocation sources inside one annotated loop.
func (p *Pass) checkHotLoop(fn *ast.FuncDecl, loop ast.Stmt, used map[string]bool) []Diagnostic {
	var out []Diagnostic
	returns := returnRanges(loop)
	flag := func(pos token.Pos, kind, detail, format string, args ...any) {
		key := p.allowKey(fn, kind, detail)
		if p.Config.HotAllow[key] {
			used[key] = true
			return
		}
		d := p.diag("hotalloc", pos, format, args...)
		d.Message += fmt.Sprintf(" (allowlist key %q)", key)
		out = append(out, d)
	}
	ast.Inspect(loop, func(n ast.Node) bool {
		if n == nil || n == loop {
			return true
		}
		if insideRanges(n.Pos(), returns) {
			return true
		}
		switch t := n.(type) {
		case *ast.CompositeLit:
			flag(t.Pos(), "lit", typeName(t.Type),
				"composite literal allocates every iteration of a hot loop; hoist it before the loop and reuse")
		case *ast.FuncLit:
			flag(t.Pos(), "closure", "func",
				"closure allocates every iteration of a hot loop; hoist it before the loop")
			return false // the allocation is the literal itself, not its body
		case *ast.CallExpr:
			if id, ok := t.Fun.(*ast.Ident); ok && id.Name == "append" && len(t.Args) > 0 {
				flag(t.Pos(), "append", rootName(t.Args[0]),
					"append inside a hot loop can reallocate; preallocate capacity or reuse a hoisted buffer with [:0] (target %s)", describeExpr(t.Args[0]))
				return true
			}
			if sel, ok := t.Fun.(*ast.SelectorExpr); ok {
				if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "fmt" {
					flag(t.Pos(), "call", "fmt."+sel.Sel.Name,
						"fmt.%s inside a hot loop boxes its arguments and allocates formatting state; move it out of the loop", sel.Sel.Name)
					return true
				}
			}
			p.ifaceBoxing(t, flag)
		}
		return true
	})
	return out
}

// ifaceBoxing flags concrete arguments passed to interface parameters
// (type-information permitting; silent when types are unavailable).
func (p *Pass) ifaceBoxing(call *ast.CallExpr, flag func(token.Pos, string, string, string, ...any)) {
	tv, ok := p.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		atv, ok := p.Info.Types[arg]
		if !ok || atv.Type == nil {
			continue
		}
		if _, argIface := atv.Type.Underlying().(*types.Interface); argIface {
			continue
		}
		if isUntypedNil(atv.Type) {
			continue
		}
		flag(arg.Pos(), "iface", calleeName(call),
			"passing a concrete value to an interface parameter of %s boxes it (heap allocation) every iteration; use a concrete-typed variant", calleeName(call))
	}
}

// isUntypedNil reports the untyped nil type (no boxing happens).
func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// allowKey renders the allowlist key for a finding site.
func (p *Pass) allowKey(fn *ast.FuncDecl, kind, detail string) string {
	file, _, _ := p.position(fn.Pos())
	return fmt.Sprintf("%s:%s:%s:%s", filepath.Base(file), fn.Name.Name, kind, detail)
}

// rootName extracts the root identifier of an expression for allowlist
// keys.
func rootName(e ast.Expr) string {
	for {
		switch t := e.(type) {
		case *ast.Ident:
			return t.Name
		case *ast.SelectorExpr:
			return t.Sel.Name
		case *ast.IndexExpr:
			e = t.X
		case *ast.SliceExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		default:
			return "expr"
		}
	}
}

// typeName renders a composite literal's type for allowlist keys.
func typeName(e ast.Expr) string {
	if e == nil {
		return "untyped"
	}
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.SelectorExpr:
		return describeExpr(t)
	case *ast.ArrayType:
		return "[]" + typeName(t.Elt)
	case *ast.MapType:
		return "map"
	}
	return "composite"
}

// returnRanges collects the source ranges of return statements (exempt
// one-shot exits).
func returnRanges(root ast.Node) [][2]token.Pos {
	var out [][2]token.Pos
	ast.Inspect(root, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok {
			out = append(out, [2]token.Pos{r.Pos(), r.End()})
		}
		return true
	})
	return out
}

func insideRanges(pos token.Pos, ranges [][2]token.Pos) bool {
	for _, r := range ranges {
		if pos >= r[0] && pos <= r[1] {
			return true
		}
	}
	return false
}

// LoadHotAllow parses the hotalloc allowlist file: one
// "file:func:kind:detail" key per line, '#' comments and blank lines
// ignored. A missing file yields an empty allowlist (not an error) so
// fixture runs need no file.
func LoadHotAllow(path string) (map[string]bool, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]bool{}, nil
		}
		return nil, fmt.Errorf("analysis: %w", err)
	}
	defer f.Close()
	allow := make(map[string]bool)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		if line = strings.TrimSpace(line); line != "" {
			allow[line] = true
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	return allow, nil
}
