package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Rule chandisc: channel ownership discipline. Go's runtime turns the
// two classic ownership mistakes into panics (close of closed
// channel, send on closed channel) and the third into a silent
// goroutine leak, so all three are checked statically:
//
//   - Only the owning sender closes: close(ch) where ch is a
//     parameter of the enclosing function is closing a channel the
//     function does not own — the caller (or another sender) may
//     still send. Ownership stays with whoever made the channel.
//
//   - No send after a close on any path: within one function body, a
//     send on a channel that an earlier statement closes is a
//     guaranteed or schedule-dependent panic.
//
//   - Goroutine-fed channels under early-returning readers are
//     buffered: the pattern
//
//     errc := make(chan error)
//     go func() { errc <- serve() }()
//     select { case err := <-errc: ...  case <-ctx.Done(): return ... }
//
//     leaks the sender forever when ctx wins the race. A one-slot
//     buffer (make(chan error, 1)) lets the send complete and the
//     goroutine exit — the exact bug class engine/server.go's
//     ListenAndServe guards against. The plain `return <-errc` shape
//     (no select, reader cannot abandon the channel) stays legal
//     unbuffered.
func checkChanDisc(p *Pass) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				if x.Body != nil {
					out = append(out, p.checkChanBody(x.Type.Params, x.Body)...)
				}
			case *ast.FuncLit:
				out = append(out, p.checkChanBody(x.Type.Params, x.Body)...)
			}
			return true
		})
	}
	return out
}

// checkChanBody runs the three channel checks over one function body.
// Nested function literals are their own scopes and get their own
// visit from checkChanDisc, so subtrees under them are skipped here —
// except goroutine literals, which checkChanBody inspects itself for
// sends into the spawning function's channels.
func (p *Pass) checkChanBody(params *ast.FieldList, body *ast.BlockStmt) []Diagnostic {
	var out []Diagnostic
	paramObjs := paramObjects(p, params)
	closed := map[types.Object]token.Pos{} // first close position per channel object
	unbuffered := map[types.Object]token.Pos{}
	goroutineSends := map[types.Object]bool{}
	selectRecv := map[types.Object]bool{}

	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "close" && len(x.Args) == 1 {
				if arg, ok := x.Args[0].(*ast.Ident); ok {
					obj := p.Info.Uses[arg]
					if obj == nil {
						return true
					}
					if _, first := closed[obj]; !first {
						closed[obj] = x.Pos()
					}
					if paramObjs[obj] {
						out = append(out, p.diag("chandisc", x.Pos(),
							"close(%s) closes a channel received as a parameter — only the owning sender (whoever made the channel) may close it", arg.Name))
					}
				}
			}
		case *ast.AssignStmt:
			// ch := make(chan T) — record unbuffered locals.
			if len(x.Lhs) == 1 && len(x.Rhs) == 1 {
				if id, ok := x.Lhs[0].(*ast.Ident); ok {
					if call, ok := x.Rhs[0].(*ast.CallExpr); ok && calleeName(call) == "make" && len(call.Args) == 1 {
						if _, isChan := call.Args[0].(*ast.ChanType); isChan {
							if obj := p.Info.Defs[id]; obj != nil {
								unbuffered[obj] = x.Pos()
							}
						}
					}
				}
			}
		case *ast.GoStmt:
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if send, ok := m.(*ast.SendStmt); ok {
						if id, ok := send.Chan.(*ast.Ident); ok {
							if obj := p.Info.Uses[id]; obj != nil {
								goroutineSends[obj] = true
							}
						}
					}
					return true
				})
			}
			return false
		case *ast.SelectStmt:
			if len(x.Body.List) < 2 {
				return true
			}
			for _, c := range x.Body.List {
				cc, ok := c.(*ast.CommClause)
				if !ok || cc.Comm == nil {
					continue
				}
				for _, id := range commRecvIdents(cc.Comm) {
					if obj := p.Info.Uses[id]; obj != nil {
						selectRecv[obj] = true
					}
				}
			}
		}
		return true
	})

	// Send-after-close: a send later in the body than a close of the
	// same channel object.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		send, ok := n.(*ast.SendStmt)
		if !ok {
			return true
		}
		id, ok := send.Chan.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Info.Uses[id]
		if obj == nil {
			return true
		}
		if pos, wasClosed := closed[obj]; wasClosed && send.Pos() > pos {
			out = append(out, p.diag("chandisc", send.Pos(),
				"send on %s after a close on the same path — send on closed channel panics", id.Name))
		}
		return true
	})

	type leak struct {
		pos  token.Pos
		name string
	}
	var leaks []leak
	for obj, pos := range unbuffered {
		if goroutineSends[obj] && selectRecv[obj] {
			leaks = append(leaks, leak{pos, obj.Name()})
		}
	}
	sort.Slice(leaks, func(i, j int) bool { return leaks[i].pos < leaks[j].pos })
	for _, l := range leaks {
		out = append(out, p.diag("chandisc", l.pos,
			"%s is unbuffered, fed from a goroutine, and read under a select whose other case can return first — the sender leaks when it loses the race; make it buffered (make(chan …, 1))", l.name))
	}
	return out
}

// paramObjects collects the declared objects of a parameter list.
func paramObjects(p *Pass, params *ast.FieldList) map[types.Object]bool {
	out := map[types.Object]bool{}
	if params == nil {
		return out
	}
	for _, field := range params.List {
		for _, name := range field.Names {
			if obj := p.Info.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// commRecvIdents extracts the channel identifiers received from in a
// select comm statement (`case v := <-ch:`, `case <-ch:`).
func commRecvIdents(comm ast.Stmt) []*ast.Ident {
	var out []*ast.Ident
	collect := func(e ast.Expr) {
		if un, ok := e.(*ast.UnaryExpr); ok && un.Op == token.ARROW {
			if id, ok := un.X.(*ast.Ident); ok {
				out = append(out, id)
			}
		}
	}
	switch c := comm.(type) {
	case *ast.ExprStmt:
		collect(c.X)
	case *ast.AssignStmt:
		for _, r := range c.Rhs {
			collect(r)
		}
	}
	return out
}
