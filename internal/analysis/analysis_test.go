package analysis

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// Fixture tests: every rule has a golden package under
// testdata/src/<rule>/ whose violations are annotated with trailing
//
//	// want "message substring"
//
// comments. Matching is bidirectional — every want must be produced,
// and every finding must be wanted — so fixtures pin both the hits and
// the deliberate non-hits (exemptions, sanctioned idioms).

var wantRe = regexp.MustCompile(`want "([^"]*)"`)

type wantAnnot struct {
	file   string
	line   int
	substr string
}

func collectWants(t *testing.T, tree *Tree) []wantAnnot {
	t.Helper()
	var out []wantAnnot
	for _, p := range tree.Pkgs {
		for _, f := range p.Files {
			for _, grp := range f.Comments {
				for _, c := range grp.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					file, line, _ := p.position(c.Pos())
					out = append(out, wantAnnot{file: file, line: line, substr: m[1]})
				}
			}
		}
	}
	return out
}

func loadFixture(t *testing.T, name string, cfg Config) *Tree {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	tree, err := LoadDir(dir, cfg)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	if len(tree.TypeErrors) > 0 {
		t.Fatalf("fixture %s has type errors (rules would degrade to syntactic coverage): %v", dir, tree.TypeErrors)
	}
	return tree
}

func TestRuleFixtures(t *testing.T) {
	for _, rule := range Catalogue() {
		rule := rule
		t.Run(rule.ID, func(t *testing.T) {
			t.Parallel()
			tree := loadFixture(t, rule.ID, Config{HotAllow: map[string]bool{}})
			diags := tree.Run([]Rule{rule})
			wants := collectWants(t, tree)
			if len(wants) == 0 {
				t.Fatalf("fixture for %s has no want annotations; every rule must fire on its fixture", rule.ID)
			}
			matches := func(d Diagnostic, w wantAnnot) bool {
				return d.File == w.file && d.Line == w.line && strings.Contains(d.Message, w.substr)
			}
			for _, w := range wants {
				found := false
				for _, d := range diags {
					if matches(d, w) {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("%s:%d: rule %s produced no finding containing %q; findings: %v",
						w.file, w.line, rule.ID, w.substr, diags)
				}
			}
			for _, d := range diags {
				found := false
				for _, w := range wants {
					if matches(d, w) {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("unexpected finding: %s", d)
				}
			}
		})
	}
}

// TestPR5BugClassCaught is the acceptance check from the issue:
// re-introducing the PR 5 bug (LP bound insertion ordered by map
// iteration, `for _, m := range g.mirrorOf { lp.Bound(m, -1, 0) }`)
// must be flagged by maporder. The fixture replays the snippet
// verbatim.
func TestPR5BugClassCaught(t *testing.T) {
	tree := loadFixture(t, "maporder", Config{})
	rules, err := Select("maporder")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range tree.Run(rules) {
		if strings.Contains(d.Message, "PR 5: buildLP bound insertion") {
			return
		}
	}
	t.Fatal("maporder did not flag the PR 5 bound-insertion pattern")
}

func TestSuppressions(t *testing.T) {
	tree := loadFixture(t, "suppress", Config{})
	rules, err := Select("barepanic")
	if err != nil {
		t.Fatal(err)
	}
	diags := tree.Run(rules)
	var supp, bare int
	for _, d := range diags {
		switch d.Rule {
		case "suppression":
			supp++
			if !strings.Contains(d.Message, "without a reason") {
				t.Errorf("unexpected suppression finding: %s", d)
			}
		case "barepanic":
			bare++
			if !strings.Contains(d.Message, "Loud") {
				t.Errorf("barepanic should only survive in Loud: %s", d)
			}
		default:
			t.Errorf("unexpected rule in suppression fixture: %s", d)
		}
	}
	if supp != 1 || bare != 1 {
		t.Errorf("got %d suppression + %d barepanic findings, want 1 + 1: %v", supp, bare, diags)
	}
}

// TestSuppressionInterplay pins the scoping of suppression directives
// across rules: in the mixed fixture, one line carries both a
// guardedby violation and a lockorder cycle edge, and the directive
// above it names only guardedby. The guardedby finding must vanish,
// the lockorder finding on the very same line must survive.
func TestSuppressionInterplay(t *testing.T) {
	tree := loadFixture(t, "mixed", Config{})
	rules, err := Select("guardedby,lockorder")
	if err != nil {
		t.Fatal(err)
	}
	// Locate the directive so the assertion is anchored to its line,
	// not to a hard-coded line number.
	directiveLine := 0
	var file string
	for _, p := range tree.Pkgs {
		for _, f := range p.Files {
			for _, grp := range f.Comments {
				for _, c := range grp.List {
					if strings.HasPrefix(c.Text, "//relint:ignore guardedby") &&
						strings.Contains(c.Text, "must not silence") {
						file, directiveLine, _ = p.position(c.Pos())
					}
				}
			}
		}
	}
	if directiveLine == 0 {
		t.Fatal("mixed fixture lost its //relint:ignore guardedby directive")
	}
	targetLine := directiveLine + 1
	var lockorderOnTarget bool
	for _, d := range tree.Run(rules) {
		switch d.Rule {
		case "guardedby":
			t.Errorf("guardedby finding survived its suppression: %s", d)
		case "lockorder":
			if d.File == file && d.Line == targetLine {
				lockorderOnTarget = true
			}
		default:
			t.Errorf("unexpected finding in mixed fixture: %s", d)
		}
	}
	if !lockorderOnTarget {
		t.Errorf("the guardedby suppression silenced the lockorder finding on %s:%d too", file, targetLine)
	}
}

// TestHotAllowlist checks both directions of the allowlist: a matching
// key silences its finding, and a key matching nothing is itself
// reported as stale.
func TestHotAllowlist(t *testing.T) {
	allow := map[string]bool{
		"hotalloc.go:SolveSSPCtx:append:buf": true,
		"hotalloc.go:Gone:lit:item":          true, // matches nothing: stale
	}
	tree := loadFixture(t, "hotalloc", Config{HotAllow: allow})
	rules, err := Select("hotalloc")
	if err != nil {
		t.Fatal(err)
	}
	var staleSeen, appendSeen bool
	for _, d := range tree.Run(rules) {
		if strings.Contains(d.Message, "matches no finding") &&
			strings.Contains(d.Message, "hotalloc.go:Gone:lit:item") {
			staleSeen = true
		}
		if strings.Contains(d.Message, "append inside a hot loop") {
			appendSeen = true
		}
	}
	if !staleSeen {
		t.Error("stale allowlist key was not reported")
	}
	if appendSeen {
		t.Error("allowlisted append finding was still reported")
	}
}

// TestRepoClean is the make analyze gate as a test: the full catalogue
// over the whole repo with the committed allowlist must be
// finding-free, and the seed tree must type-check cleanly so no rule
// silently degrades.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide source type-check is slow")
	}
	allow, err := LoadHotAllow("hotalloc.allow")
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Load("../..", Config{HotAllow: allow})
	if err != nil {
		t.Fatal(err)
	}
	for _, terr := range tree.TypeErrors {
		t.Errorf("type error: %v", terr)
	}
	for _, d := range tree.Run(Catalogue()) {
		t.Errorf("finding on seed tree: %s", d)
	}
}

func TestSelect(t *testing.T) {
	rules, err := Select("maporder, hotalloc")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 || rules[0].ID != "maporder" || rules[1].ID != "hotalloc" {
		t.Errorf("Select returned %v", rules)
	}
	if _, err := Select("nope"); err == nil {
		t.Error("Select accepted an unknown rule")
	}
	all, err := Select(" ")
	if err != nil || len(all) != len(Catalogue()) {
		t.Errorf("empty selection should return the full catalogue, got %d rules (err %v)", len(all), err)
	}
}

func TestDiagnosticFormat(t *testing.T) {
	d := Diagnostic{File: "a/b.go", Line: 3, Col: 7, Rule: "maporder", Message: "boom"}
	if got, want := d.String(), "a/b.go:3:7: error: boom [maporder]"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestWriteJSONNeverNull(t *testing.T) {
	var sb strings.Builder
	if err := WriteJSON(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(sb.String()); got != "[]" {
		t.Errorf("WriteJSON(nil) = %q, want []", got)
	}
}
