package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Rule lockorder: deadlocks need no data race — two goroutines taking
// the same two mutexes in opposite orders is enough, and `go test
// -race` only sees it when the schedules actually collide. This rule
// builds the repo-wide mutex acquisition graph and fails on cycles, so
// the canonical order recorded in DESIGN.md §5.12 (today:
// queue.Queue.mu → obs.Registry.mu and engine.Durable.mu →
// obs.Registry.mu; every other mutex is a leaf) is pinned by CI rather
// than by convention.
//
// It is the catalogue's only tree-level rule (Rule.CheckTree): the
// interesting edges cross packages — internal/queue holds Queue.mu
// while bumping obs metrics — so a per-package pass could never see
// them.
//
// Mechanics:
//
//   - A lock class is a mutex-typed struct field, keyed
//     "pkg.Type.field" ("queue.Queue.mu"), or a package-level mutex
//     var, keyed "pkg.var" ("queue.openDirsMu"). Classes are types,
//     not instances: locking two different Spans is one class.
//   - Within each function, a class is held from its Lock/RLock call
//     to the first later Unlock/RUnlock of the same class, or to the
//     end of the body when the unlock is deferred.
//   - While a class is held, a direct Lock of another class adds an
//     edge, and so does any call to a function whose own (transitive)
//     acquisition set is known — resolved by name across packages,
//     best-effort, so function values and interface methods are
//     skipped rather than guessed.
//   - Every edge that lies on a cycle is reported at its acquisition
//     site, including self-edges: re-acquiring a class already held is
//     a self-deadlock with sync.Mutex (and with two instances of one
//     class it is an undefined instance order, which needs an explicit
//     hierarchy anyway).
func checkLockOrder(t *Tree) []Diagnostic {
	idx := buildFuncIndex(t)
	acq := buildAcquireSets(t, idx)

	type edge struct {
		from, to string
		p        *Pass
		pos      token.Pos
	}
	var edges []edge
	seen := map[string]bool{}
	addEdge := func(from, to string, p *Pass, pos token.Pos) {
		key := from + "\x00" + to
		if seen[key] {
			return
		}
		seen[key] = true
		edges = append(edges, edge{from, to, p, pos})
	}

	forEachFuncBody(t, func(p *Pass, fn *ast.FuncDecl) {
		events := lockEvents(p, fn.Body)
		for _, lk := range events {
			if lk.kind != lockAcquire {
				continue
			}
			end := fn.Body.End()
			for _, ul := range events {
				if ul.kind == lockRelease && ul.class == lk.class && ul.pos > lk.pos && ul.pos < end {
					end = ul.pos
				}
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				// Code inside a function literal or `go` statement does
				// not run at this position (and a spawned goroutine's
				// locks are concurrent with ours, not nested under them).
				switch n.(type) {
				case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok || call.Pos() <= lk.pos || call.Pos() >= end {
					return true
				}
				if class, op := mutexOpClass(p, call); class != "" {
					if op == "Lock" || op == "RLock" {
						addEdge(lk.class, class, p, call.Pos())
					}
					return true
				}
				if key := calleeKey(p, call); key != "" {
					for to := range acq[key] {
						addEdge(lk.class, to, p, call.Pos())
					}
				}
				return true
			})
		}
	})

	// Adjacency over classes; an edge is reported iff its head can
	// reach its tail (the edge lies on a cycle).
	adj := map[string]map[string]bool{}
	for _, e := range edges {
		if adj[e.from] == nil {
			adj[e.from] = map[string]bool{}
		}
		adj[e.from][e.to] = true
	}
	reaches := func(from, target string) bool {
		stack := []string{from}
		visited := map[string]bool{}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if n == target {
				return true
			}
			if visited[n] {
				continue
			}
			visited[n] = true
			nexts := make([]string, 0, len(adj[n]))
			for next := range adj[n] {
				nexts = append(nexts, next)
			}
			sort.Strings(nexts)
			stack = append(stack, nexts...)
		}
		return false
	}

	var out []Diagnostic
	for _, e := range edges {
		switch {
		case e.from == e.to:
			out = append(out, e.p.diag("lockorder", e.pos,
				"%s is re-acquired while already held — a self-deadlock with sync.Mutex; release first, or split the critical section with a *Locked helper", e.from))
		case reaches(e.to, e.from):
			out = append(out, e.p.diag("lockorder", e.pos,
				"%s is acquired while %s is held, and elsewhere the order is reversed — a lock-order cycle (%s); pin one canonical acquisition order (see DESIGN.md §5.12)", e.to, e.from, cyclePath(adj, e.from, e.to)))
		}
	}
	return out
}

// cyclePath renders one from→…→from witness path for the message.
func cyclePath(adj map[string]map[string]bool, from, to string) string {
	// BFS from `to` back to `from`; the edge from→to plus that path is
	// the cycle.
	parent := map[string]string{to: ""}
	queue := []string{to}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n == from {
			break
		}
		var nexts []string
		for next := range adj[n] {
			nexts = append(nexts, next)
		}
		sort.Strings(nexts)
		for _, next := range nexts {
			if _, ok := parent[next]; !ok {
				parent[next] = n
				queue = append(queue, next)
			}
		}
	}
	path := []string{from}
	for n := from; n != to; {
		n = parent[n]
		if n == "" {
			break
		}
		path = append(path, n)
	}
	// The collected chain runs from→…→to; reversed it reads
	// to→…→from, and prefixing `from` closes the cycle.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return from + " → " + strings.Join(path, " → ")
}

type lockEventKind int

const (
	lockAcquire lockEventKind = iota
	lockRelease
)

type lockEvent struct {
	class string
	kind  lockEventKind
	pos   token.Pos
}

// lockEvents collects the mutex operations of one body. Deferred
// unlocks are omitted on purpose: a deferred release keeps the class
// held to the end of the body. Function literals and `go` statements
// are separate execution contexts and are skipped.
func lockEvents(p *Pass, body *ast.BlockStmt) []lockEvent {
	var out []lockEvent
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.DeferStmt, *ast.FuncLit, *ast.GoStmt:
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		class, op := mutexOpClass(p, call)
		if class == "" {
			return true
		}
		switch op {
		case "Lock", "RLock":
			out = append(out, lockEvent{class, lockAcquire, call.Pos()})
		case "Unlock", "RUnlock":
			out = append(out, lockEvent{class, lockRelease, call.Pos()})
		}
		return true
	})
	return out
}

// mutexOpClass decodes a sync.Mutex/RWMutex Lock/Unlock/RLock/RUnlock
// call into its lock class ("" when the call is anything else).
func mutexOpClass(p *Pass, call *ast.CallExpr) (class, op string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", ""
	}
	tv, ok := p.Info.Types[sel.X]
	if !ok || !isSyncMutex(tv.Type) {
		return "", ""
	}
	switch x := sel.X.(type) {
	case *ast.Ident:
		// Package-level (or local) mutex var.
		if obj, ok := p.Info.Uses[x]; ok && obj.Pkg() != nil {
			return obj.Pkg().Name() + "." + x.Name, sel.Sel.Name
		}
		return "", ""
	case *ast.SelectorExpr:
		// Struct-field mutex: class is the owning named type.
		if name := namedTypeKey(p, x.X); name != "" {
			return name + "." + x.Sel.Name, sel.Sel.Name
		}
	}
	return "", ""
}

func isSyncMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	s := t.String()
	return s == "sync.Mutex" || s == "sync.RWMutex"
}

// namedTypeKey resolves an expression to "pkg.Type" via type info,
// dereferencing pointers ("" when unresolved or unnamed).
func namedTypeKey(p *Pass, e ast.Expr) string {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Name() + "." + named.Obj().Name()
}

// funcKey identifies a function across the tree: "pkg.Type.Method" for
// methods, "pkg.Func" for free functions. Keys are name-based because
// types.Object identity does not hold between a package checked
// standalone and the same package seen through the importer.
func funcDeclKey(p *Pass, fn *ast.FuncDecl) string {
	pkg := ""
	if len(p.Files) > 0 {
		pkg = p.Files[0].Name.Name
	}
	if recv := receiverTypeName(fn); recv != "" {
		return pkg + "." + recv + "." + fn.Name.Name
	}
	return pkg + "." + fn.Name.Name
}

// calleeKey resolves a call site to a funcDeclKey, best-effort: method
// calls through a resolvable named receiver type, package-qualified
// calls, and same-package bare calls. Function values, builtins and
// interface methods yield "".
func calleeKey(p *Pass, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if obj, ok := p.Info.Uses[fun]; ok {
			if _, isFunc := obj.(*types.Func); !isFunc {
				return ""
			}
		}
		pkg := ""
		if len(p.Files) > 0 {
			pkg = p.Files[0].Name.Name
		}
		return pkg + "." + fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
				return pn.Imported().Name() + "." + fun.Sel.Name
			}
		}
		if name := namedTypeKey(p, fun.X); name != "" {
			return name + "." + fun.Sel.Name
		}
	}
	return ""
}

type indexedFunc struct {
	p  *Pass
	fn *ast.FuncDecl
}

func buildFuncIndex(t *Tree) map[string]indexedFunc {
	idx := map[string]indexedFunc{}
	forEachFuncBody(t, func(p *Pass, fn *ast.FuncDecl) {
		idx[funcDeclKey(p, fn)] = indexedFunc{p, fn}
	})
	return idx
}

// buildAcquireSets computes, for every indexed function, the set of
// lock classes it (transitively) acquires, by fixpoint over the
// name-resolved call graph.
func buildAcquireSets(t *Tree, idx map[string]indexedFunc) map[string]map[string]bool {
	direct := map[string]map[string]bool{}
	calls := map[string][]string{}
	keys := make([]string, 0, len(idx))
	for key := range idx {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		f := idx[key]
		set := map[string]bool{}
		for _, ev := range lockEvents(f.p, f.fn.Body) {
			if ev.kind == lockAcquire {
				set[ev.class] = true
			}
		}
		// Deferred Lock would be nonsense; deferred Unlock is a release,
		// but the class was still acquired — lockEvents' acquire entries
		// already cover it.
		direct[key] = set
		ast.Inspect(f.fn.Body, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if k := calleeKey(f.p, call); k != "" && k != key {
					calls[key] = append(calls[key], k)
				}
			}
			return true
		})
	}
	acq := map[string]map[string]bool{}
	for key, set := range direct {
		acq[key] = copyHeld(set)
	}
	for changed := true; changed; {
		changed = false
		for key, callees := range calls {
			for _, callee := range callees {
				for class := range acq[callee] {
					if !acq[key][class] {
						acq[key][class] = true
						changed = true
					}
				}
			}
		}
	}
	return acq
}

// forEachFuncBody visits every FuncDecl with a body in the tree.
func forEachFuncBody(t *Tree, visit func(p *Pass, fn *ast.FuncDecl)) {
	for _, p := range t.Pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
					visit(p, fn)
				}
			}
		}
	}
}
