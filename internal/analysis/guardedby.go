package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// Rule guardedby: the static half of the mutex contract that
// `go test -race` checks dynamically. A struct field whose declaration
// carries the annotation
//
//	count int // guarded by mu
//
// (in its trailing comment or the doc comment above it) may only be
// read or written through the method receiver while the named mutex —
// a sibling field of the same struct — is held. The same syntax on a
// package-level var names a package-level mutex. The race job only
// catches lock omissions the tests happen to interleave; this rule
// catches them on every path, in every method, before the code runs.
//
// The walker tracks held mutexes through Lock/RLock, Unlock/RUnlock
// and `defer mu.Unlock()` (held to function end), and is branch-aware:
// an early-exit arm like engine.Submit's
//
//	e.mu.Lock()
//	if e.closed { e.mu.Unlock(); return ... }
//	...mutations...
//	e.mu.Unlock()
//
// keeps the lock held on the fall-through path because the unlocking
// arm terminates. After a branch where no arm terminates, a mutex
// counts as held only if every arm left it held.
//
// Conventions recognized:
//   - Methods whose name ends in "Locked" (insertLocked, failLocked)
//     are callee-side helpers; the caller holds the lock, so their
//     bodies are exempt.
//   - Function literals are separate goroutine-able scopes and start
//     with no locks held, except deferred literals, which inherit the
//     locks held at the defer site (the `defer func() { ... }()`
//     unlock idiom).
//   - Free functions (constructors like New/Open building a value
//     before publication) have no receiver and are out of scope.
//
// An annotation naming a mutex that is not a field of the same struct
// is itself a finding — a typo there would otherwise silently disable
// the check.
//
// The pattern is anchored to the start of a comment line so that prose
// which merely mentions "guarded by" (like this very doc comment's
// examples) does not register an annotation.
var guardedByRe = regexp.MustCompile(`(?m)^guarded by (\w+)`)

// guardSpec is one annotated struct type: field name → guarding mutex
// field name.
type guardSpec map[string]string

func checkGuardedBy(p *Pass) []Diagnostic {
	var out []Diagnostic
	typeGuards := map[string]guardSpec{}   // struct type name → spec
	pkgGuards := map[types.Object]string{} // package-level var object → mutex var name
	for _, f := range p.Files {
		out = append(out, collectGuardAnnotations(p, f, typeGuards, pkgGuards)...)
	}
	if len(typeGuards) == 0 && len(pkgGuards) == 0 {
		return out
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || strings.HasSuffix(fn.Name.Name, "Locked") {
				continue
			}
			recv := receiverName(fn)
			typ := receiverTypeName(fn)
			var fields guardSpec
			if recv != "" {
				fields = typeGuards[typ]
			}
			if len(fields) == 0 && len(pkgGuards) == 0 {
				continue
			}
			w := &lockWalker{p: p, recv: recv, typ: typ, fields: fields, pkg: pkgGuards}
			w.walkStmts(fn.Body.List, map[string]bool{})
			out = append(out, w.out...)
		}
	}
	return out
}

// collectGuardAnnotations parses `// guarded by <mutex>` annotations
// from struct fields and package-level vars, validating that a struct
// annotation names a sibling field. Package-level guards are keyed by
// types.Object so that shadowing locals or same-named struct fields
// cannot alias them.
func collectGuardAnnotations(p *Pass, f *ast.File, typeGuards map[string]guardSpec, pkgGuards map[types.Object]string) []Diagnostic {
	var out []Diagnostic
	guardOf := func(field *ast.Field) string {
		for _, grp := range []*ast.CommentGroup{field.Doc, field.Comment} {
			if grp == nil {
				continue
			}
			if m := guardedByRe.FindStringSubmatch(grp.Text()); m != nil {
				return m[1]
			}
		}
		return ""
	}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			switch sp := spec.(type) {
			case *ast.TypeSpec:
				st, ok := sp.Type.(*ast.StructType)
				if !ok {
					continue
				}
				fieldNames := map[string]bool{}
				for _, field := range st.Fields.List {
					for _, name := range field.Names {
						fieldNames[name.Name] = true
					}
				}
				for _, field := range st.Fields.List {
					mu := guardOf(field)
					if mu == "" {
						continue
					}
					if !fieldNames[mu] {
						out = append(out, p.diag("guardedby", field.Pos(),
							"field is annotated `guarded by %s` but %s.%s does not exist; the annotation would silently check nothing", mu, sp.Name.Name, mu))
						continue
					}
					for _, name := range field.Names {
						g := typeGuards[sp.Name.Name]
						if g == nil {
							g = guardSpec{}
							typeGuards[sp.Name.Name] = g
						}
						g[name.Name] = mu
					}
				}
			case *ast.ValueSpec:
				var mu string
				if sp.Comment != nil {
					if m := guardedByRe.FindStringSubmatch(sp.Comment.Text()); m != nil {
						mu = m[1]
					}
				}
				if mu == "" && sp.Doc != nil {
					if m := guardedByRe.FindStringSubmatch(sp.Doc.Text()); m != nil {
						mu = m[1]
					}
				}
				if mu == "" && gd.Doc != nil && len(gd.Specs) == 1 {
					if m := guardedByRe.FindStringSubmatch(gd.Doc.Text()); m != nil {
						mu = m[1]
					}
				}
				if mu == "" {
					continue
				}
				for _, name := range sp.Names {
					if obj := p.Info.Defs[name]; obj != nil {
						pkgGuards[obj] = mu
					}
				}
			}
		}
	}
	return out
}

// receiverTypeName extracts the bare receiver type name of a method.
func receiverTypeName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return ""
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// lockWalker tracks the set of held mutexes (by name) through one
// function body and flags guarded accesses made without the guard.
type lockWalker struct {
	p      *Pass
	recv   string                  // receiver identifier (e.g. "q")
	typ    string                  // receiver type name for messages (e.g. "Queue")
	fields guardSpec               // receiver field → mutex field
	pkg    map[types.Object]string // package var object → package mutex var
	out    []Diagnostic
}

// walkStmts walks a statement list, mutating held in place. Branch
// constructs copy held for each arm and merge afterwards.
func (w *lockWalker) walkStmts(stmts []ast.Stmt, held map[string]bool) {
	for _, s := range stmts {
		w.walkStmt(s, held)
	}
}

func (w *lockWalker) walkStmt(s ast.Stmt, held map[string]bool) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if w.lockToggle(st.X, held) {
			return
		}
		w.checkExpr(st.X, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the mutex held to function end.
		if mu, op := w.mutexCall(st.Call); mu != "" && (op == "Unlock" || op == "RUnlock") {
			return
		}
		// A deferred literal runs with whatever the function holds at
		// return; approximate with the locks held at the defer site.
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			w.walkStmts(lit.Body.List, copyHeld(held))
			return
		}
		w.checkExpr(st.Call, held)
	case *ast.GoStmt:
		// A spawned goroutine holds nothing.
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			w.walkStmts(lit.Body.List, map[string]bool{})
			for _, arg := range st.Call.Args {
				w.checkExpr(arg, held)
			}
			return
		}
		w.checkExpr(st.Call, held)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			w.checkExpr(e, held)
		}
		for _, e := range st.Lhs {
			w.checkExpr(e, held)
		}
	case *ast.IncDecStmt:
		w.checkExpr(st.X, held)
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			w.checkExpr(e, held)
		}
	case *ast.IfStmt:
		w.walkIf(st, held)
	case *ast.BlockStmt:
		w.walkStmts(st.List, held)
	case *ast.ForStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, held)
		}
		if st.Cond != nil {
			w.checkExpr(st.Cond, held)
		}
		// Loop bodies may run zero times: lock-state changes inside do
		// not escape to the code after the loop.
		body := copyHeld(held)
		w.walkStmts(st.Body.List, body)
		if st.Post != nil {
			w.walkStmt(st.Post, body)
		}
	case *ast.RangeStmt:
		w.checkExpr(st.X, held)
		w.walkStmts(st.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, held)
		}
		if st.Tag != nil {
			w.checkExpr(st.Tag, held)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.checkExpr(e, held)
				}
				w.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, held)
		}
		w.walkStmt(st.Assign, held)
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				arm := copyHeld(held)
				if cc.Comm != nil {
					w.walkStmt(cc.Comm, arm)
				}
				w.walkStmts(cc.Body, arm)
			}
		}
	case *ast.LabeledStmt:
		w.walkStmt(st.Stmt, held)
	case *ast.SendStmt:
		w.checkExpr(st.Chan, held)
		w.checkExpr(st.Value, held)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.checkExpr(v, held)
					}
				}
			}
		}
	}
}

// walkIf handles the branch merge: arms get copies of the held set;
// if one arm terminates (return/panic/...), the fall-through state is
// the other arm's; otherwise a mutex stays held only if both arms kept
// it held.
func (w *lockWalker) walkIf(st *ast.IfStmt, held map[string]bool) {
	if st.Init != nil {
		w.walkStmt(st.Init, held)
	}
	w.checkExpr(st.Cond, held)
	thenHeld := copyHeld(held)
	w.walkStmts(st.Body.List, thenHeld)
	elseHeld := copyHeld(held)
	elseTerm := false
	switch e := st.Else.(type) {
	case *ast.BlockStmt:
		w.walkStmts(e.List, elseHeld)
		elseTerm = terminates(e.List)
	case *ast.IfStmt:
		w.walkIf(e, elseHeld)
	}
	thenTerm := terminates(st.Body.List)
	var merged map[string]bool
	switch {
	case thenTerm && !elseTerm:
		merged = elseHeld
	case elseTerm && !thenTerm:
		merged = thenHeld
	default:
		merged = intersectHeld(thenHeld, elseHeld)
	}
	for k := range held {
		delete(held, k)
	}
	for k := range merged {
		held[k] = true
	}
}

// terminates reports whether a statement list always leaves the
// function (or at least the enclosing loop): its last statement is a
// return, a branch, a panic/Fatal-style call, or a goto.
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			name := calleeName(call)
			return name == "panic" || name == "Fatal" || name == "Fatalf" || name == "Exit"
		}
	case *ast.BlockStmt:
		return terminates(last.List)
	}
	return false
}

// mutexCall decodes recv.mu.Lock() / pkgMu.Lock() style calls,
// returning the mutex name ("" when the call is not a tracked mutex
// operation) and the operation.
func (w *lockWalker) mutexCall(call *ast.CallExpr) (mu, op string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", ""
	}
	switch x := sel.X.(type) {
	case *ast.Ident:
		// Package-level mutex: lock state tracked by its own name.
		return x.Name, sel.Sel.Name
	case *ast.SelectorExpr:
		// recv.mu.Lock(): track by field name, receiver-rooted only.
		if id, ok := x.X.(*ast.Ident); ok && id.Name == w.recv {
			return x.Sel.Name, sel.Sel.Name
		}
	}
	return "", ""
}

// lockToggle applies a Lock/Unlock statement to the held set,
// reporting whether the expression was consumed.
func (w *lockWalker) lockToggle(e ast.Expr, held map[string]bool) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	mu, op := w.mutexCall(call)
	if mu == "" {
		return false
	}
	switch op {
	case "Lock", "RLock":
		held[mu] = true
	case "Unlock", "RUnlock":
		delete(held, mu)
	}
	return true
}

// checkExpr flags guarded accesses in an expression while their mutex
// is not held. Nested function literals are separate scopes.
func (w *lockWalker) checkExpr(e ast.Expr, held map[string]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			w.walkStmts(x.Body.List, map[string]bool{})
			return false
		case *ast.CallExpr:
			// A nested recv.mu.Lock() inside a larger expression is not
			// an access to a guarded field; leave its lock effect to the
			// statement walker (only statement-position calls toggle).
			return true
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok && id.Name == w.recv && w.recv != "" {
				if mu, guarded := w.fields[x.Sel.Name]; guarded && !held[mu] {
					w.out = append(w.out, w.p.diag("guardedby", x.Pos(),
						"%s.%s is accessed without holding %s (annotated `guarded by %s`); lock it, or move the access into a *Locked helper", w.typ, x.Sel.Name, mu, mu))
				}
				return false
			}
		case *ast.Ident:
			if mu, guarded := w.pkg[w.p.Info.Uses[x]]; guarded && !held[mu] {
				w.out = append(w.out, w.p.diag("guardedby", x.Pos(),
					"%s is accessed without holding %s (annotated `guarded by %s`)", x.Name, mu, mu))
			}
		}
		return true
	})
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		if v {
			out[k] = v
		}
	}
	return out
}

func intersectHeld(a, b map[string]bool) map[string]bool {
	out := map[string]bool{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}
