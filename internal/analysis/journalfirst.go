package analysis

import (
	"go/ast"
	"go/token"
)

// Rule journalfirst: internal/queue's durability contract is
// write-ahead — a 202 response means the job is owed, which is only
// true if the submit record hits the journal before any in-memory
// state reflects it. A method that mutates queue state first and
// appends second has a crash window where memory and journal disagree,
// and replay resurrects a state the caller never observed.
//
// Detection is two-pass and name-based (the journal primitive is
// unexported, so types don't help across files):
//
//  1. Collect "append-like" methods: those whose body calls the journal
//     primitive (a selector call named `append` — the builtin is an
//     Ident, so there is no collision) or another append-like method,
//     to a fixpoint.
//  2. In every method that calls an append-like callee, flag receiver
//     state mutations (assignments/IncDec whose left side is rooted at
//     the receiver, or at a local bound to receiver state via `:=`)
//     positioned before the first append-like call.
//
// Plain-identifier assignments (`attempts := jb.Attempts + 1`) are
// local copies, never shared state, and are not flagged — the idiom
// for fixing a violation is exactly "compute into locals, append the
// record built from them, then mutate". Infrastructure fields that the
// journal never replays (metrics counters, the poison flag, the
// journal handle itself, locks, config) are exempt by field name.
var journalExemptFields = map[string]bool{
	"counts": true, "crashed": true, "j": true, "unlock": true,
	"cfg": true, "mu": true,
}

func checkJournalFirst(p *Pass) []Diagnostic {
	if !inScope(p.Path, "journalfirst", "internal/queue") {
		return nil
	}
	appendLike := collectAppendLike(p)
	var out []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Recv == nil {
				continue
			}
			out = append(out, p.checkJournalOrder(fn, appendLike)...)
		}
	}
	return out
}

// collectAppendLike computes, to a fixpoint, the set of method names
// whose bodies reach a journal append.
func collectAppendLike(p *Pass) map[string]bool {
	set := make(map[string]bool)
	methods := make(map[string]*ast.FuncDecl)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Recv == nil {
				continue
			}
			methods[fn.Name.Name] = fn
			if callsJournalAppend(fn.Body, nil) {
				set[fn.Name.Name] = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for name, fn := range methods {
			if !set[name] && callsJournalAppend(fn.Body, set) {
				set[name] = true
				changed = true
			}
		}
	}
	return set
}

// callsJournalAppend reports whether the body contains a call to the
// journal primitive (selector named `append`) or, when extra is
// non-nil, to any method named in extra.
func callsJournalAppend(body *ast.BlockStmt, extra map[string]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "append" || (extra != nil && extra[sel.Sel.Name]) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// checkJournalOrder flags receiver state mutations before the first
// append-like call of one method.
func (p *Pass) checkJournalOrder(fn *ast.FuncDecl, appendLike map[string]bool) []Diagnostic {
	recv := receiverName(fn)
	if recv == "" {
		return nil
	}
	firstAppend := firstAppendPos(fn.Body, appendLike)
	if !firstAppend.IsValid() {
		return nil
	}
	// Shared state reachable from this method: the receiver, pointer
	// parameters (markDeadLocked-style helpers get *job handles into
	// receiver-owned state), and locals aliased via := (jb := q.jobs[id]).
	tainted := map[string]bool{recv: true}
	for _, field := range fn.Type.Params.List {
		if _, ok := field.Type.(*ast.StarExpr); !ok {
			continue
		}
		for _, name := range field.Names {
			tainted[name.Name] = true
		}
	}
	var out []Diagnostic
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok.String() == ":=" && mentionsAny(st.Rhs, tainted) {
				for _, lhs := range st.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
						tainted[id.Name] = true
					}
				}
				return true
			}
			if st.Pos() >= firstAppend {
				return true
			}
			for _, lhs := range st.Lhs {
				if root, path := selectorRoot(lhs); root != "" && tainted[root] && !exemptPath(path) {
					out = append(out, p.diag("journalfirst", st.Pos(),
						"%s mutates queue state (%s) before the journal append on the same path; append the record first, then mutate (write-ahead contract)",
						funcName(fn), describeExpr(lhs)))
				}
			}
		case *ast.IncDecStmt:
			if st.Pos() >= firstAppend {
				return true
			}
			if root, path := selectorRoot(st.X); root != "" && tainted[root] && !exemptPath(path) {
				out = append(out, p.diag("journalfirst", st.Pos(),
					"%s mutates queue state (%s) before the journal append on the same path; append the record first, then mutate (write-ahead contract)",
					funcName(fn), describeExpr(st.X)))
			}
		}
		return true
	})
	return out
}

// receiverName extracts the receiver identifier of a method.
func receiverName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return ""
	}
	return fn.Recv.List[0].Names[0].Name
}

// firstAppendPos returns the position of the first append-like call in
// the body (token.NoPos when absent).
func firstAppendPos(body *ast.BlockStmt, appendLike map[string]bool) token.Pos {
	pos := token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "append" || appendLike[sel.Sel.Name] {
				if !pos.IsValid() || call.Pos() < pos {
					pos = call.Pos()
				}
			}
		}
		return true
	})
	return pos
}

// selectorRoot decomposes a left-hand side into its root identifier and
// the selector field names along the path. Plain identifiers return an
// empty root: assigning to a local copy is never a shared-state
// mutation.
func selectorRoot(e ast.Expr) (root string, path []string) {
	for {
		switch t := e.(type) {
		case *ast.SelectorExpr:
			path = append(path, t.Sel.Name)
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.Ident:
			if len(path) == 0 {
				return "", nil
			}
			return t.Name, path
		default:
			return "", nil
		}
	}
}

// exemptPath reports whether any field on the selector path is
// journal-exempt infrastructure.
func exemptPath(path []string) bool {
	for _, f := range path {
		if journalExemptFields[f] {
			return true
		}
	}
	return false
}

// mentionsAny reports whether any expression references one of the
// named identifiers.
func mentionsAny(exprs []ast.Expr, names map[string]bool) bool {
	for _, e := range exprs {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && names[id.Name] {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
