package analysis

import (
	"go/ast"
	"go/types"
)

// Rule maporder: Go randomizes map iteration order, so a `for range`
// over a map must not do ordered work in its body. PR 5 hit this in
// production: rgraph.buildLP added mirror/pseudo Bound constraints by
// ranging over maps, which randomized the dual network's arc order and
// therefore the simplex pivot path — -j N and -j 1 produced different
// solver-effort counters for identical inputs. The fix (sort keys, then
// iterate the sorted slice) is now the required idiom, and this rule is
// the compile-gate that keeps the bug class out of the solver-speed
// rewrites ROADMAP plans.
//
// Flagged inside a map-range body:
//
//   - append to a slice declared outside the loop — unless that slice is
//     later passed to a sort.*/slices.Sort* call in the same function
//     (the sanctioned collect-then-sort idiom, e.g. rgraph.sortedValues);
//   - writer calls (fmt.Fprint*/Print*, Write/WriteString/...): output
//     would render in random order;
//   - ordered-sink methods (Constrain, Bound, AddArc, AddBound,
//     SetDemand, Push, Enqueue, Append, Emit): solver/LP input and
//     queue-like structures are order-sensitive by construction.
//
// Not flagged: map/set writes (m[k] = v commutes), counter aggregation,
// and appends to slices declared inside the loop body (fresh per
// iteration). The rule needs type information to recognize map ranges;
// expressions the checker could not type are skipped.
var orderedSinks = map[string]bool{
	"Constrain": true, "Bound": true, "AddArc": true, "AddBound": true,
	"SetDemand": true, "Push": true, "Enqueue": true, "Append": true,
	"Emit": true,
}

var writerCalls = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

var sortCalls = map[string]bool{
	// sort.*
	"Sort": true, "Stable": true, "Slice": true, "SliceStable": true,
	"Strings": true, "Ints": true, "Float64s": true,
	// slices.* (Sort shared above)
	"SortFunc": true, "SortStableFunc": true,
}

func checkMapOrder(p *Pass) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		forEachFunc(f, func(body *ast.BlockStmt, _ *ast.FuncDecl) {
			ast.Inspect(body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok || !p.isMapType(rs.X) {
					return true
				}
				out = append(out, p.checkMapRange(rs, body)...)
				return true
			})
		})
	}
	return out
}

// forEachFunc visits every function body of a file exactly once at its
// own nesting level: FuncDecls with their enclosing decl, and top-level
// function literals with a nil decl. Rules that need "the enclosing
// function" (for sort-later exemptions, defer matching) get a stable
// scope this way.
func forEachFunc(f *ast.File, visit func(body *ast.BlockStmt, fn *ast.FuncDecl)) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				visit(d.Body, d)
			}
		case *ast.GenDecl:
			ast.Inspect(d, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok && lit.Body != nil {
					visit(lit.Body, nil)
					return false
				}
				return true
			})
		}
	}
}

// isMapType reports whether the expression's static type is a map.
func (p *Pass) isMapType(e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkMapRange inspects one map-range body. fnBody is the innermost
// enclosing function body, searched for later sort calls.
func (p *Pass) checkMapRange(rs *ast.RangeStmt, fnBody *ast.BlockStmt) []Diagnostic {
	var out []Diagnostic
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
			if target, outer := p.appendTarget(call.Args[0], rs.Body); outer != nil {
				if target != nil && p.sortedLater(target, rs, fnBody) {
					return true
				}
				out = append(out, p.diag("maporder", call.Pos(),
					"append to %s inside `for range` over a map builds an order-dependent slice from randomized iteration; sort the keys first (PR 5 bug class)",
					describeExpr(call.Args[0])))
			}
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			name := sel.Sel.Name
			if writerCalls[name] {
				out = append(out, p.diag("maporder", call.Pos(),
					"%s inside `for range` over a map writes output in randomized order; iterate sorted keys instead", name))
				return true
			}
			if orderedSinks[name] && !declaredInside(sel.X, rs.Body, p) {
				out = append(out, p.diag("maporder", call.Pos(),
					"%s inside `for range` over a map feeds an order-sensitive sink in randomized order; iterate sorted keys instead (PR 5: buildLP bound insertion)", name))
			}
		}
		return true
	})
	return out
}

// appendTarget classifies an append's first argument. It returns the
// target identifier (nil when the target is an index/selector
// expression) and a non-nil marker when the target lives outside the
// loop body — the order-sensitive case.
func (p *Pass) appendTarget(arg ast.Expr, loop *ast.BlockStmt) (id *ast.Ident, outer ast.Expr) {
	switch t := arg.(type) {
	case *ast.Ident:
		if obj := p.Info.Uses[t]; obj != nil && obj.Pos() >= loop.Pos() && obj.Pos() <= loop.End() {
			return t, nil // fresh slice per iteration: order-safe
		}
		return t, t
	case *ast.IndexExpr, *ast.SelectorExpr:
		return nil, t
	}
	return nil, nil
}

// declaredInside reports whether the expression is an identifier whose
// declaration sits inside the loop body (per-iteration state).
func declaredInside(e ast.Expr, loop *ast.BlockStmt, p *Pass) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	obj := p.Info.Uses[id]
	return obj != nil && obj.Pos() >= loop.Pos() && obj.Pos() <= loop.End()
}

// sortedLater reports whether the identifier's object is an argument of
// a sort.*/slices.Sort* call after the loop in the same function — the
// collect-then-sort idiom.
func (p *Pass) sortedLater(id *ast.Ident, rs *ast.RangeStmt, fnBody *ast.BlockStmt) bool {
	obj := p.Info.Uses[id]
	if obj == nil {
		obj = p.Info.Defs[id]
	}
	if obj == nil {
		return false
	}
	sorted := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, selOK := call.Fun.(*ast.SelectorExpr)
		if !selOK || !sortCalls[sel.Sel.Name] {
			return true
		}
		if pkg, pkgOK := sel.X.(*ast.Ident); !pkgOK || (pkg.Name != "sort" && pkg.Name != "slices") {
			return true
		}
		for _, arg := range call.Args {
			found := false
			ast.Inspect(arg, func(an ast.Node) bool {
				if aid, aok := an.(*ast.Ident); aok && p.Info.Uses[aid] == obj {
					found = true
					return false
				}
				return true
			})
			if found {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

// describeExpr renders a short name for messages.
func describeExpr(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.SelectorExpr:
		return describeExpr(t.X) + "." + t.Sel.Name
	case *ast.IndexExpr:
		return describeExpr(t.X) + "[...]"
	}
	return "slice"
}
