package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Rule atomicmix: sync/atomic only synchronizes with itself. A field
// incremented with atomic.AddInt64 but read with a plain load is a
// data race the compiler will happily reorder around — the plain
// access gets none of the atomic's ordering guarantees, and the race
// detector only notices when both sides run concurrently under test.
// The discipline is binary: once any access to a variable goes through
// sync/atomic, every access must (or the variable moves under a mutex
// and the atomics go away).
//
// Mechanics: within a package, every `atomic.Fn(&x, ...)` call marks
// x's object (field or variable, resolved through type info) as
// atomic. Any identifier resolving to the same object outside an
// atomic call's argument list is flagged, pointing back at the first
// atomic site. Object identity is package-local, which is exactly the
// scope where the repo declares its counters; atomic.Value and the Go
// 1.19 typed wrappers (atomic.Int64 etc.) enforce themselves through
// their method set and need no rule.
func checkAtomicMix(p *Pass) []Diagnostic {
	type site struct {
		pos  token.Pos
		file string
		line int
	}
	atomicObjs := map[types.Object]site{}
	var callRanges [][2]token.Pos

	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "atomic" {
				return true
			}
			if _, isPkg := p.Info.Uses[sel.X.(*ast.Ident)].(*types.PkgName); !isPkg && p.Info.Uses[sel.X.(*ast.Ident)] != nil {
				return true // a local variable named atomic, not the package
			}
			callRanges = append(callRanges, [2]token.Pos{call.Pos(), call.End()})
			if len(call.Args) == 0 {
				return true
			}
			un, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				return true
			}
			var target *ast.Ident
			switch x := un.X.(type) {
			case *ast.Ident:
				target = x
			case *ast.SelectorExpr:
				target = x.Sel
			}
			if target == nil {
				return true
			}
			obj := p.Info.Uses[target]
			if obj == nil {
				obj = p.Info.Defs[target]
			}
			if obj == nil {
				return true
			}
			if _, seen := atomicObjs[obj]; !seen {
				file, line, _ := p.position(call.Pos())
				atomicObjs[obj] = site{pos: call.Pos(), file: file, line: line}
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return nil
	}

	inAtomicCall := func(pos token.Pos) bool {
		for _, r := range callRanges {
			if pos >= r[0] && pos < r[1] {
				return true
			}
		}
		return false
	}

	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := p.Info.Uses[id]
			if obj == nil {
				return true
			}
			s, isAtomic := atomicObjs[obj]
			if !isAtomic || inAtomicCall(id.Pos()) {
				return true
			}
			out = append(out, p.diag("atomicmix", id.Pos(),
				"%s is accessed plainly here but atomically at %s:%d — mixing gives the plain access no ordering guarantees; use sync/atomic on every access or move it under a mutex", id.Name, s.file, s.line))
			return true
		})
	}
	return out
}
