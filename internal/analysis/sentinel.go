package analysis

import (
	"go/ast"
	"strings"
)

// Rule sentinel: errors leaving a guarantee-chain package must be
// classifiable with errors.Is. Every package in the chain declares its
// failure modes as sentinels (flow.ErrInfeasible, queue.ErrStaleLease,
// cert.ErrNotCertified, ...) and call sites wrap them:
//
//	return fmt.Errorf("flow: %w: net %d demand %d", ErrUnbalanced, n, d)
//
// A bare fmt.Errorf without %w, or errors.New, at a return site
// produces an error no caller can branch on — the engine's retry/dead
// classification and the CLI's exit-code mapping both depend on Is
// working across package boundaries. Flagged: errors.New(...) and
// fmt.Errorf with a string-literal format lacking %w, directly inside a
// ReturnStmt of a chain package. Package-level `var ErrX = errors.New`
// declarations are the sentinels themselves and are fine.
func checkSentinel(p *Pass) []Diagnostic {
	if !inScope(p.Path, "sentinel", chainPackages...) {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			for _, res := range ret.Results {
				ast.Inspect(res, func(rn ast.Node) bool {
					call, ok := rn.(*ast.CallExpr)
					if !ok {
						return true
					}
					if selectorOn(call, "errors", "New") {
						out = append(out, p.diag("sentinel", call.Pos(),
							"errors.New at a return site: wrap a declared sentinel with fmt.Errorf(\"...: %%w: ...\", ErrX) so callers can errors.Is across the package boundary"))
						return true
					}
					if selectorOn(call, "fmt", "Errorf") && len(call.Args) > 0 {
						if lit, ok := call.Args[0].(*ast.BasicLit); ok && !strings.Contains(lit.Value, "%w") {
							out = append(out, p.diag("sentinel", call.Pos(),
								"fmt.Errorf without %%w at a return site: wrap a declared sentinel (or the upstream error) so callers can errors.Is across the package boundary"))
						}
					}
					return true
				})
			}
			return true
		})
	}
	return out
}
