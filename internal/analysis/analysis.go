// Package analysis is the repo's source-code analogue of internal/cert:
// a stdlib-only static-analysis driver (go/ast + go/types) with a
// catalogue of rules that machine-enforce the coding invariants past PRs
// established the hard way. Where internal/lint checks the netlists the
// pipeline consumes and internal/cert checks the results it produces,
// this package checks the Go sources that implement the guarantee chain
// — because Leiserson–Saxe legality, EDL-set correctness and certified
// flow solutions only mean something if the implementation stays
// deterministic and disciplined while the hot paths get rewritten.
//
// The catalogue (see Catalogue) encodes one invariant per rule:
//
//   - maporder: no ordered work inside `for range` over a map — the
//     PR 5 bug class, where randomized iteration over buildLP's
//     mirror/pseudo maps changed the dual network's arc order and hence
//     the simplex pivot path, breaking -j N ≡ -j 1 row identity.
//   - ctxthread: exported entry points thread context.Context to *Ctx
//     APIs and to blocking I/O in the guarantee-chain packages.
//   - sentinel: errors returned from guarantee-chain packages wrap a
//     declared sentinel (or an upstream error) with %w — never a bare
//     fmt.Errorf / errors.New at a return site.
//   - journalfirst: in internal/queue, no in-memory state mutation
//     precedes the corresponding journal append on the same path (the
//     "202 means the job is owed" durability contract).
//   - hotalloc: no composite literals, closures, appends or
//     interface-converting calls inside the annotated pivot/augmentation
//     loops of internal/flow, minus an audited allowlist.
//   - obsspan: a started obs span has a deferred End on every path.
//   - barepanic, stderr: the original build/analyzers conventions,
//     migrated (library code returns errors; stderr belongs to cmd/).
//   - guardedby: struct fields annotated `// guarded by mu` are only
//     accessed while the named mutex is held on the same receiver
//     (Lock/Unlock/defer tracked; *Locked helpers exempt).
//   - lockorder: the repo-wide mutex acquisition graph is acyclic, so
//     the canonical lock order recorded in DESIGN.md §5.12 stays the
//     only one.
//   - golifecycle: every `go` statement outside cmd/ is tied to a
//     join — WaitGroup Done, a channel send/close the spawner waits
//     on, or a ctx-bound loop. No fire-and-forget goroutines.
//   - chandisc: channel ownership discipline — only the owner closes,
//     no send after a close in the same body, and goroutine-fed
//     channels whose select reader can return early are buffered.
//   - atomicmix: a field accessed through sync/atomic is never also
//     accessed plainly.
//
// Diagnostics carry file:line:col positions and render in the
// internal/lint format. Findings can be suppressed per line or per
// function with
//
//	//relint:ignore <rule>[,<rule>] -- <reason>
//
// where the reason is mandatory: a suppression without one is itself a
// finding. Placed on (or directly above) the offending line it covers
// that line; placed in a function's doc comment it covers the whole
// function.
package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"
)

// Diagnostic is one finding of one rule at one source position.
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// String renders the diagnostic in the internal/lint format:
// file:line:col: error: message [rule]. Every analysis finding is an
// error — the catalogue gates CI, so there is no warning tier.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: error: %s [%s]", d.File, d.Line, d.Col, d.Message, d.Rule)
}

// Rule is one registered invariant check.
type Rule struct {
	// ID identifies the rule in diagnostics, -rules filters and
	// suppression comments.
	ID string
	// Doc is a one-line description for usage text and DESIGN.md.
	Doc string
	// Check inspects one package and returns its findings. Suppression
	// filtering happens in the driver, not in rules. Nil for tree-level
	// rules.
	Check func(*Pass) []Diagnostic
	// CheckTree inspects the whole load at once and runs exactly once
	// per Run. Rules whose invariant spans packages (lockorder's
	// acquisition graph crosses engine → obs and queue → obs) use this
	// instead of Check.
	CheckTree func(*Tree) []Diagnostic
}

// Pass is one package as a rule sees it: parsed files, positions, and
// (best-effort) type information.
type Pass struct {
	// Fset resolves token positions for every file of the load.
	Fset *token.FileSet
	// Path is the slash-form directory of the package relative to the
	// analysis root (e.g. "internal/queue"). Rules scope themselves on
	// it; fixture packages under testdata/src/<rule> are always in scope
	// for their rule.
	Path string
	// Files are the package's non-test files, parsed with comments.
	Files []*ast.File
	// Info carries type information. Expressions the checker could not
	// resolve are simply absent, so rules must treat lookups as
	// best-effort.
	Info *types.Info
	// Config carries driver-level knobs (the hotalloc allowlist).
	Config Config
}

// Config carries the driver knobs shared by cmd/relint and the tests.
type Config struct {
	// HotAllow is the parsed hot-path allocation allowlist: audited
	// sites the hotalloc rule stays silent on. Keys are
	// "file:func:kind:detail" (see hotalloc.go).
	HotAllow map[string]bool
}

// position converts a token.Pos into the Diagnostic fields.
func (p *Pass) position(pos token.Pos) (string, int, int) {
	pp := p.Fset.Position(pos)
	return pp.Filename, pp.Line, pp.Column
}

// diag builds a Diagnostic for a rule at a position.
func (p *Pass) diag(rule string, pos token.Pos, format string, args ...any) Diagnostic {
	file, line, col := p.position(pos)
	return Diagnostic{File: file, Line: line, Col: col, Rule: rule, Message: fmt.Sprintf(format, args...)}
}

// Catalogue returns the full rule set in documentation order.
func Catalogue() []Rule {
	return []Rule{
		{ID: "maporder", Doc: "no ordered work (appends, writes, solver/LP input) inside `for range` over a map unless keys are sorted first", Check: checkMapOrder},
		{ID: "ctxthread", Doc: "exported functions thread context.Context to *Ctx APIs, and to blocking I/O in the guarantee-chain packages", Check: checkCtxThread},
		{ID: "sentinel", Doc: "errors returned from guarantee-chain packages wrap a declared sentinel or upstream error with %w", Check: checkSentinel},
		{ID: "journalfirst", Doc: "in internal/queue, journal appends precede the in-memory state mutations they record", Check: checkJournalFirst},
		{ID: "hotalloc", Doc: "no composite literals, closures, appends or interface conversions inside //relint:hot solver loops (allowlist-audited)", Check: checkHotAlloc},
		{ID: "obsspan", Doc: "a started obs span has a deferred End on every path", Check: checkObsSpan},
		{ID: "barepanic", Doc: "no bare panic outside tests, Must* constructors and the fault harness", Check: checkBarePanic},
		{ID: "stderr", Doc: "no direct fmt.Fprint*(os.Stderr, ...) outside cmd/ and build/ — library progress goes through obs logging", Check: checkStderr},
		{ID: "guardedby", Doc: "fields annotated `// guarded by mu` are accessed only while the named mutex is held on the same receiver (*Locked helpers exempt)", Check: checkGuardedBy},
		{ID: "lockorder", Doc: "the repo-wide mutex acquisition graph stays acyclic — one canonical lock order, no cycles, no same-class re-acquisition under lock", CheckTree: checkLockOrder},
		{ID: "golifecycle", Doc: "every `go` statement outside cmd/ joins somewhere: WaitGroup Done, channel send/close, or a ctx-bound receive loop", Check: checkGoLifecycle},
		{ID: "chandisc", Doc: "channel discipline: no closing channels you don't own, no send after close, buffered channels under early-returning select readers", Check: checkChanDisc},
		{ID: "atomicmix", Doc: "a variable accessed via sync/atomic is never also read or written plainly", Check: checkAtomicMix},
	}
}

// Select filters the catalogue to the named rules (comma-separated IDs);
// an empty selection returns the full catalogue.
func Select(ids string) ([]Rule, error) {
	all := Catalogue()
	if strings.TrimSpace(ids) == "" {
		return all, nil
	}
	byID := make(map[string]Rule, len(all))
	for _, r := range all {
		byID[r.ID] = r
	}
	var out []Rule
	for _, id := range strings.Split(ids, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		r, ok := byID[id]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown rule %q", id)
		}
		out = append(out, r)
	}
	return out, nil
}

// Run applies the rules to every package of the tree, filters
// suppressed findings, and returns the survivors sorted by position.
// Package-level rules (Check) run per package; tree-level rules
// (CheckTree) run once over the whole load with every package's
// suppressions in effect. Suppression directives missing their
// mandatory reason surface as findings of the pseudo-rule
// "suppression".
func (t *Tree) Run(rules []Rule) []Diagnostic {
	var out []Diagnostic
	var sups []*suppressions
	for _, p := range t.Pkgs {
		sup := collectSuppressions(p)
		sups = append(sups, sup)
		out = append(out, sup.malformed...)
		for _, r := range rules {
			if r.Check == nil {
				continue
			}
			for _, d := range r.Check(p) {
				if sup.covers(d) {
					continue
				}
				out = append(out, d)
			}
		}
	}
	for _, r := range rules {
		if r.CheckTree == nil {
			continue
		}
	tree:
		for _, d := range r.CheckTree(t) {
			for _, sup := range sups {
				if sup.covers(d) {
					continue tree
				}
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		if out[i].Col != out[j].Col {
			return out[i].Col < out[j].Col
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// WriteJSON renders diagnostics as a JSON array (never null).
func WriteJSON(w io.Writer, ds []Diagnostic) error {
	if ds == nil {
		ds = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ds)
}

// inScope reports whether a package path is covered by a rule that
// applies to the given package prefixes. Matching is on path-segment
// boundaries anywhere in the path, so scoping survives running relint
// from a subdirectory or with an absolute root. Fixture packages under
// testdata/src/<rule> are always in scope for their own rule, which is
// how the golden tests exercise rules whose real scope is a specific
// internal package.
func inScope(path, rule string, prefixes ...string) bool {
	slashed := "/" + path + "/"
	if strings.Contains(slashed, "/testdata/src/"+rule+"/") {
		return true
	}
	for _, pre := range prefixes {
		if strings.Contains(slashed, "/"+pre+"/") {
			return true
		}
	}
	return false
}

// chainPackages are the guarantee-chain packages: the code between a
// parsed netlist and a certified result. ctxthread's I/O clause and
// sentinel scope themselves to these.
var chainPackages = []string{
	"internal/flow",
	"internal/sta",
	"internal/rgraph",
	"internal/core",
	"internal/engine",
	"internal/queue",
	"internal/vlib",
	"internal/cluster",
}

// funcName renders a FuncDecl name for messages (with receiver type).
func funcName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fn.Name.Name
	}
	return fn.Name.Name
}

// calleeName extracts the bare function or method name of a call.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// selectorOn reports whether the call is pkg.Name(...) for a plain
// package-qualified selector (syntactic: the identifier text, which is
// the import name every repo package uses unaliased).
func selectorOn(call *ast.CallExpr, pkg, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == pkg
}
