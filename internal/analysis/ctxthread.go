package analysis

import (
	"go/ast"
	"strings"
)

// Rule ctxthread: cancellation must reach the solver from every public
// entry point. Two clauses:
//
//  1. Repo-wide (migrated from build/analyzers): an exported function
//     that calls an exported *Ctx API (SolveCtx, RetimeCtx, RunCtx, ...)
//     must itself accept a context.Context. Wrappers that explicitly
//     pass context.Background()/context.TODO() as the first argument
//     are the documented "I have no context" shims and are exempt, as
//     are function literals that take their own context parameter
//     (registered callbacks are a separate plumbing scope).
//
//  2. Guarantee-chain packages only: an exported function without a
//     context parameter must not make blocking I/O calls directly
//     (os.Open/ReadFile/..., net.Listen/Dial, http.*, exec.*) —
//     long-running pipeline work has to stay cancellable end to end.
//     Constructors and teardown (New*, Open*, Close*, Must*) are
//     exempt: they run once at the edges, not inside the pipeline.
var ioCalls = map[string]map[string]bool{
	"os": {
		"Open": true, "OpenFile": true, "Create": true, "ReadFile": true,
		"WriteFile": true, "ReadDir": true, "Remove": true, "RemoveAll": true,
		"Rename": true, "MkdirAll": true, "Mkdir": true,
	},
	"net":  {"Listen": true, "Dial": true, "DialTimeout": true, "ListenPacket": true},
	"http": {"Get": true, "Post": true, "PostForm": true, "Head": true, "Do": true},
	"exec": {"Command": true, "CommandContext": true, "LookPath": true},
}

func checkCtxThread(p *Pass) []Diagnostic {
	var out []Diagnostic
	ioScope := inScope(p.Path, "ctxthread", chainPackages...)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() || acceptsContext(fn.Type) {
				continue
			}
			out = append(out, p.unthreadedCtxCalls(fn)...)
			if ioScope && !exemptFromIO(fn.Name.Name) {
				out = append(out, p.unthreadedIOCalls(fn)...)
			}
		}
	}
	return out
}

// exemptFromIO: construction and teardown run at the pipeline edges.
func exemptFromIO(name string) bool {
	for _, pre := range []string{"Must", "New", "Open", "Close"} {
		if strings.HasPrefix(name, pre) {
			return true
		}
	}
	return false
}

// acceptsContext reports whether any parameter has type context.Context.
func acceptsContext(ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if sel, ok := field.Type.(*ast.SelectorExpr); ok {
			if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "context" && sel.Sel.Name == "Context" {
				return true
			}
		}
	}
	return false
}

// unthreadedCtxCalls is clause 1: *Ctx callees inside a context-less
// exported function.
func (p *Pass) unthreadedCtxCalls(fn *ast.FuncDecl) []Diagnostic {
	var out []Diagnostic
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && acceptsContext(lit.Type) {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		// Only exported-style *Ctx callees count as API entry points;
		// local helpers like newCtx are not cancellation surfaces.
		if !strings.HasSuffix(name, "Ctx") || name == "Ctx" || !ast.IsExported(name) {
			return true
		}
		if len(call.Args) > 0 && isExplicitNoContext(call.Args[0]) {
			return true
		}
		out = append(out, p.diag("ctxthread", call.Pos(),
			"exported %s calls %s without accepting a context.Context parameter", fn.Name.Name, name))
		return true
	})
	return out
}

// unthreadedIOCalls is clause 2: direct blocking I/O inside a
// context-less exported function of a guarantee-chain package.
func (p *Pass) unthreadedIOCalls(fn *ast.FuncDecl) []Diagnostic {
	var out []Diagnostic
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && acceptsContext(lit.Type) {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if names := ioCalls[pkg.Name]; names != nil && names[sel.Sel.Name] {
			out = append(out, p.diag("ctxthread", call.Pos(),
				"exported %s does blocking I/O (%s.%s) without accepting a context.Context parameter",
				fn.Name.Name, pkg.Name, sel.Sel.Name))
		}
		return true
	})
	return out
}

// isExplicitNoContext matches context.Background() / context.TODO().
func isExplicitNoContext(arg ast.Expr) bool {
	call, ok := arg.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == "context" && (sel.Sel.Name == "Background" || sel.Sel.Name == "TODO")
}
