package edl

import (
	"strings"
	"testing"

	"relatch/internal/cell"
	"relatch/internal/netlist"
	"relatch/internal/verilog"
)

// smallSeq builds a 3-flop design to instrument.
func smallSeq(t *testing.T) *netlist.SeqCircuit {
	t.Helper()
	lib := cell.Default(1.0)
	b := netlist.NewSeqBuilder("dut", lib)
	a := b.PI("a")
	x := b.PI("x")
	r1 := b.FF("r1")
	r2 := b.FF("r2")
	r3 := b.FF("r3")
	g1 := b.Gate("g1", lib.MustCell(cell.FuncNand2, 1), a, r1)
	g2 := b.Gate("g2", lib.MustCell(cell.FuncXor2, 1), g1, x)
	g3 := b.Gate("g3", lib.MustCell(cell.FuncInv, 1), r2)
	b.SetD(r1, g2)
	b.SetD(r2, g1)
	b.SetD(r3, g3)
	b.PO("y", g3)
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestInstrumentStructure(t *testing.T) {
	sc := smallSeq(t)
	inst, err := Instrument(sc, []string{"r1", "r2"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Two shadow flops appear on top of the original three.
	if got := len(inst.FFs); got != 5 {
		t.Errorf("FFs = %d, want 5", got)
	}
	// Two XOR comparators plus one OR (2-signal cluster tree).
	if got := inst.GateCount(); got != sc.GateCount()+3 {
		t.Errorf("gates = %d, want %d", got, sc.GateCount()+3)
	}
	// One cluster → one error output, plus the original PO.
	if got := len(inst.POs); got != 2 {
		t.Errorf("POs = %d, want 2", got)
	}
	if _, err := inst.Cut(); err != nil {
		t.Fatalf("instrumented design does not cut: %v", err)
	}
	// Shadow flop samples the same D net as the protected register.
	var shadow *netlist.SeqNode
	for _, n := range inst.Nodes {
		if n.Name == "shadow_r1" {
			shadow = n
		}
	}
	if shadow == nil {
		t.Fatal("shadow_r1 missing")
	}
	if shadow.Fanin[0].Name != "g2" {
		t.Errorf("shadow_r1 samples %q, want g2", shadow.Fanin[0].Name)
	}
}

func TestInstrumentClustering(t *testing.T) {
	lib := cell.Default(1.0)
	b := netlist.NewSeqBuilder("many", lib)
	pi := b.PI("a")
	var names []string
	for i := 0; i < 10; i++ {
		ff := b.FF("f" + string(rune('0'+i)))
		b.SetD(ff, b.Gate("g"+string(rune('0'+i)), lib.MustCell(cell.FuncInv, 1), pi))
		names = append(names, ff.Name)
	}
	last, _ := b.Build()
	inst, err := Instrument(last, names, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 10 protected flops at cluster size 4 → 3 error outputs.
	errPOs := 0
	for _, po := range inst.POs {
		if strings.HasPrefix(po.Name, "error_") {
			errPOs++
		}
	}
	if errPOs != 3 {
		t.Errorf("error outputs = %d, want 3", errPOs)
	}
	// OR gates: (4-1)+(4-1)+(2-1) = 7.
	orGates := 0
	for _, n := range inst.Nodes {
		if n.Kind == netlist.SeqGate && strings.HasPrefix(n.Name, "ortree_") {
			orGates++
		}
	}
	if orGates != 7 {
		t.Errorf("OR tree gates = %d, want 7", orGates)
	}
}

func TestInstrumentUnknownFlop(t *testing.T) {
	sc := smallSeq(t)
	if _, err := Instrument(sc, []string{"nope"}, 4); err == nil {
		t.Error("unknown register accepted")
	}
}

func TestInstrumentedDesignWritesVerilog(t *testing.T) {
	sc := smallSeq(t)
	inst, err := Instrument(sc, []string{"r1", "r3"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := verilog.Write(&sb, inst); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"dff shadow_r1", "xor err_r1", "error_0"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in emitted Verilog:\n%s", want, out)
		}
	}
	if _, err := verilog.ParseString(out, sc.Lib); err != nil {
		t.Fatalf("instrumented Verilog does not re-parse: %v", err)
	}
}
