package edl

import (
	"fmt"
	"sort"

	"relatch/internal/cell"
	"relatch/internal/netlist"
)

// Instrument returns a copy of the flip-flop design with error-detection
// circuitry attached to the named registers, materializing Fig. 2(a)'s
// shadow-flip-flop detector structurally: each protected register gains a
// shadow flip-flop sampling the same data net (in the real circuit it
// samples at the resiliency-window opening; functionally it is a
// delayed copy) and an XOR comparator, and the per-cluster error signals
// are collected by balanced OR trees into error_<k> primary outputs —
// the "smartly grouped clusters" of Section II-A. The TDTB variant of
// Fig. 2(b) shares this structural skeleton (its C-element is a holding
// stage like the shadow flop); only the area model in this package
// distinguishes them.
//
// The result is a plain flip-flop netlist: it cuts, retimes, simulates
// and writes to Verilog like any other design.
func Instrument(sc *netlist.SeqCircuit, protect []string, clusterSize int) (*netlist.SeqCircuit, error) {
	if clusterSize <= 0 {
		clusterSize = 8
	}
	want := make(map[string]bool, len(protect))
	for _, name := range protect {
		want[name] = true
	}

	b := netlist.NewSeqBuilder(sc.Name+"_edl", sc.Lib)
	mapped := make([]*netlist.SeqNode, len(sc.Nodes))

	for _, pi := range sc.PIs {
		mapped[pi.ID] = b.PI(pi.Name)
	}
	for _, ff := range sc.FFs {
		mapped[ff.ID] = b.FF(ff.Name)
	}
	// Gates in dependency order (fanins are PIs, FFs or earlier gates).
	remaining := make([]*netlist.SeqNode, 0, len(sc.Nodes))
	for _, n := range sc.Nodes {
		if n.Kind == netlist.SeqGate {
			remaining = append(remaining, n)
		}
	}
	for len(remaining) > 0 {
		progress := false
		next := remaining[:0]
		for _, g := range remaining {
			ready := true
			for _, f := range g.Fanin {
				if mapped[f.ID] == nil {
					ready = false
					break
				}
			}
			if !ready {
				next = append(next, g)
				continue
			}
			fanin := make([]*netlist.SeqNode, len(g.Fanin))
			for i, f := range g.Fanin {
				fanin[i] = mapped[f.ID]
			}
			mapped[g.ID] = b.Gate(g.Name, g.Cell, fanin...)
			progress = true
		}
		if !progress {
			return nil, fmt.Errorf("edl: combinational cycle in %s", sc.Name)
		}
		remaining = append([]*netlist.SeqNode(nil), next...)
	}
	for _, ff := range sc.FFs {
		b.SetD(mapped[ff.ID], mapped[ff.Fanin[0].ID])
	}
	for _, po := range sc.POs {
		b.PO(po.Name, mapped[po.Fanin[0].ID])
	}

	// Detectors: shadow flop on the protected register's D net plus an
	// XOR against the register output.
	var protectedIDs []int
	found := make(map[string]bool)
	for _, ff := range sc.FFs {
		if want[ff.Name] {
			protectedIDs = append(protectedIDs, ff.ID)
			found[ff.Name] = true
		}
	}
	for _, name := range protect {
		if !found[name] {
			return nil, fmt.Errorf("edl: no flip-flop named %q", name)
		}
	}
	sort.Ints(protectedIDs)
	xorCell := sc.Lib.MustCell(cell.FuncXor2, 1)
	orCell := sc.Lib.MustCell(cell.FuncOr2, 1)

	var errSignals []*netlist.SeqNode
	for _, id := range protectedIDs {
		ff := sc.Nodes[id]
		shadow := b.FF("shadow_" + ff.Name)
		b.SetD(shadow, mapped[ff.Fanin[0].ID])
		errSignals = append(errSignals,
			b.Gate("err_"+ff.Name, xorCell, mapped[ff.ID], shadow))
	}

	// Cluster OR trees into error outputs.
	clusters := BuildClusters(protectedIDs, clusterSize)
	offset := 0
	for k, cl := range clusters {
		members := errSignals[offset : offset+len(cl.Members)]
		offset += len(cl.Members)
		cur := append([]*netlist.SeqNode(nil), members...)
		level := 0
		for len(cur) > 1 {
			var nxt []*netlist.SeqNode
			for i := 0; i+1 < len(cur); i += 2 {
				nxt = append(nxt, b.Gate(fmt.Sprintf("ortree_%d_%d_%d", k, level, i/2), orCell, cur[i], cur[i+1]))
			}
			if len(cur)%2 == 1 {
				nxt = append(nxt, cur[len(cur)-1])
			}
			cur = nxt
			level++
		}
		b.PO(fmt.Sprintf("error_%d", k), cur[0])
	}
	return b.Build()
}
