package edl

import (
	"testing"
	"testing/quick"

	"relatch/internal/cell"
)

func TestDesignAreas(t *testing.T) {
	lib := cell.Default(1.0)
	sh := NewDesign(lib, ShadowFF)
	td := NewDesign(lib, TDTB)
	if sh.Area() <= sh.LatchArea || td.Area() <= td.LatchArea {
		t.Fatal("detector area must be positive")
	}
	// The shadow flip-flop design is the heavier one: it carries a full
	// MSFF, while TDTB needs only an XOR and a C-element (Fig. 2).
	if sh.DetectorArea <= td.DetectorArea {
		t.Errorf("shadow-FF detector %g must exceed TDTB %g", sh.DetectorArea, td.DetectorArea)
	}
}

func TestORTreeGates(t *testing.T) {
	cases := map[int]int{0: 0, 1: 0, 2: 1, 3: 2, 8: 7, 100: 99}
	for n, want := range cases {
		if got := ORTreeGates(n); got != want {
			t.Errorf("ORTreeGates(%d) = %d, want %d", n, got, want)
		}
	}
	depths := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 8: 3, 9: 4}
	for n, want := range depths {
		if got := ORTreeDepth(n); got != want {
			t.Errorf("ORTreeDepth(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestBuildClusters(t *testing.T) {
	ids := []int{9, 3, 5, 1, 7, 2, 8, 4, 6, 0}
	clusters := BuildClusters(ids, 4)
	if len(clusters) != 3 {
		t.Fatalf("clusters = %d, want 3 (4+4+2)", len(clusters))
	}
	total := 0
	last := -1
	for _, cl := range clusters {
		total += len(cl.Members)
		for _, m := range cl.Members {
			if m <= last {
				t.Error("cluster members must be globally sorted")
			}
			last = m
		}
		if cl.ORGates != ORTreeGates(len(cl.Members)) {
			t.Error("OR gate count inconsistent")
		}
	}
	if total != len(ids) {
		t.Errorf("clustered %d of %d latches", total, len(ids))
	}
}

func TestClusterProperty(t *testing.T) {
	err := quick.Check(func(n uint8, size uint8) bool {
		ids := make([]int, int(n)%64)
		for i := range ids {
			ids[i] = i
		}
		cl := BuildClusters(ids, int(size)%10)
		got := 0
		for _, c := range cl {
			got += len(c.Members)
		}
		return got == len(ids)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestOverheadFactorInPaperRange(t *testing.T) {
	// Section II-B: amortized EDL area ranges from 50% to 2X of a latch.
	lib := cell.Default(1.0)
	ranges := map[Kind][2]float64{
		// TDTB is the lean design the low end of the sweep represents;
		// the shadow flip-flop carries a whole MSFF and sits at or
		// above the sweep's top (the paper's c=2 point).
		TDTB:     {0.5, 2.5},
		ShadowFF: {1.0, 4.0},
	}
	for k, bounds := range ranges {
		for _, size := range []int{2, 4, 8, 16} {
			c := OverheadFactor(lib, k, size)
			if c < bounds[0] || c > bounds[1] {
				t.Errorf("%v cluster %d: c = %g outside [%g, %g]", k, size, c, bounds[0], bounds[1])
			}
		}
	}
	// TDTB with large clusters approaches the low end; shadow-FF with
	// small clusters the high end.
	lo := OverheadFactor(lib, TDTB, 16)
	hi := OverheadFactor(lib, ShadowFF, 2)
	if lo >= hi {
		t.Errorf("expected TDTB/16 (%g) below shadow-FF/2 (%g)", lo, hi)
	}
}

func TestOverheadMonotonicInClusterSize(t *testing.T) {
	// Per-latch OR-tree share is (n−1)/n of an OR gate: it grows with
	// the cluster size and saturates below one full OR gate per latch.
	lib := cell.Default(1.0)
	prev := OverheadFactor(lib, TDTB, 1)
	for size := 2; size <= 32; size *= 2 {
		cur := OverheadFactor(lib, TDTB, size)
		if cur < prev-1e-9 {
			t.Errorf("overhead should grow with cluster size: %g -> %g at %d", prev, cur, size)
		}
		prev = cur
	}
	limit := OverheadFactor(lib, TDTB, 1) + lib.MustCell(cell.FuncOr2, 1).Area/NewDesign(lib, TDTB).LatchArea
	if OverheadFactor(lib, TDTB, 1<<16) > limit {
		t.Error("overhead must saturate below one OR gate per latch")
	}
}

func TestAggregateArea(t *testing.T) {
	lib := cell.Default(1.0)
	ids := []int{0, 1, 2, 3}
	clusters := BuildClusters(ids, 4)
	area := AggregateArea(lib, TDTB, 10, clusters)
	d := NewDesign(lib, TDTB)
	or := lib.MustCell(cell.FuncOr2, 1).Area
	want := 10*lib.BaseLatch.Area + 4*d.DetectorArea + 3*or
	if area != want {
		t.Errorf("AggregateArea = %g, want %g", area, want)
	}
}

func TestKindString(t *testing.T) {
	if ShadowFF.String() != "shadow-ff" || TDTB.String() != "tdtb" {
		t.Error("kind names wrong")
	}
}
