// Package edl models the error-detecting latch designs of Fig. 2 and the
// per-stage error aggregation they require: (a) a time-borrowing latch
// with a shadow master-slave flip-flop and an XOR comparator, and (b) a
// transition-detecting time-borrowing latch (TDTB) with an XOR transition
// detector and an asymmetric C-element. Error signals within a pipeline
// stage are collected by an OR tree into one stage error, and the
// amortized area of detector + OR-tree share over a plain latch yields
// the overhead factor c the retiming algorithms consume — the paper
// sweeps c over 0.5–2 to cover exactly this design space.
package edl

import (
	"fmt"
	"math"
	"sort"

	"relatch/internal/cell"
)

// Kind selects an error-detecting latch design.
type Kind int

const (
	// ShadowFF is Fig. 2(a): latch + shadow master-slave flip-flop
	// sampling at the resiliency window opening + XOR comparator.
	ShadowFF Kind = iota
	// TDTB is Fig. 2(b): latch + XOR transition detector + asymmetric
	// C-element holding the error.
	TDTB
)

func (k Kind) String() string {
	if k == TDTB {
		return "tdtb"
	}
	return "shadow-ff"
}

// Design is one materialized error-detecting latch.
type Design struct {
	Kind Kind
	// Component areas, taken from the library.
	LatchArea    float64
	DetectorArea float64
}

// NewDesign builds the design's area model from the library: the shadow
// flip-flop variant pays a full flip-flop plus an XOR; the TDTB pays an
// XOR plus a C-element (modeled as an AOI-class cell, the standard
// static C-element implementation).
func NewDesign(lib *cell.Library, k Kind) Design {
	d := Design{Kind: k, LatchArea: lib.BaseLatch.Area}
	xor := lib.MustCell(cell.FuncXor2, 1).Area
	switch k {
	case ShadowFF:
		d.DetectorArea = lib.FF.Area + xor
	case TDTB:
		celement := lib.MustCell(cell.FuncAoi21, 1).Area
		d.DetectorArea = xor + celement
	}
	return d
}

// Area is the total area of one error-detecting latch instance,
// excluding its share of the OR tree.
func (d Design) Area() float64 { return d.LatchArea + d.DetectorArea }

// ORTreeGates returns the number of 2-input OR gates needed to collect n
// error signals into one.
func ORTreeGates(n int) int {
	if n <= 1 {
		return 0
	}
	return n - 1
}

// ORTreeDepth returns the level count of a balanced 2-input OR tree.
func ORTreeDepth(n int) int {
	if n <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

// Cluster is one group of error-detecting latches sharing an OR tree;
// the paper notes detectors must be grouped "into manageable clusters"
// to meet the error-signal timing (Section II-A).
type Cluster struct {
	Members []int // output node IDs
	ORGates int
	Depth   int
}

// BuildClusters splits the ED masters into clusters of at most maxSize,
// deterministic in the input order of IDs.
func BuildClusters(ids []int, maxSize int) []Cluster {
	if maxSize <= 0 {
		maxSize = 8
	}
	sorted := append([]int(nil), ids...)
	sort.Ints(sorted)
	var out []Cluster
	for len(sorted) > 0 {
		n := maxSize
		if len(sorted) < n {
			n = len(sorted)
		}
		out = append(out, Cluster{
			Members: sorted[:n:n],
			ORGates: ORTreeGates(n),
			Depth:   ORTreeDepth(n),
		})
		sorted = sorted[n:]
	}
	return out
}

// OverheadFactor computes the amortized EDL overhead c for a design and
// cluster size: (detector + OR-tree share) / latch area. For the default
// library this spans roughly the paper's 0.5–2 sweep across the two
// designs and practical cluster sizes.
func OverheadFactor(lib *cell.Library, k Kind, clusterSize int) float64 {
	if clusterSize < 1 {
		clusterSize = 1
	}
	d := NewDesign(lib, k)
	or := lib.MustCell(cell.FuncOr2, 1).Area
	treeShare := float64(ORTreeGates(clusterSize)) * or / float64(clusterSize)
	return (d.DetectorArea + treeShare) / d.LatchArea
}

// AggregateArea returns the total sequential + detection area of an ED
// assignment under explicit clustering: every master pays a latch;
// ED masters add their detector; each cluster adds its OR tree.
func AggregateArea(lib *cell.Library, k Kind, masters int, clusters []Cluster) float64 {
	d := NewDesign(lib, k)
	or := lib.MustCell(cell.FuncOr2, 1).Area
	area := float64(masters) * lib.BaseLatch.Area
	for _, cl := range clusters {
		area += float64(len(cl.Members)) * d.DetectorArea
		area += float64(cl.ORGates) * or
	}
	return area
}

// String renders a cluster summary.
func (c Cluster) String() string {
	return fmt.Sprintf("cluster{%d latches, %d OR gates, depth %d}", len(c.Members), c.ORGates, c.Depth)
}
