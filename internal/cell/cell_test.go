package cell

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFunctionArity(t *testing.T) {
	cases := []struct {
		f    Function
		want int
	}{
		{FuncInv, 1}, {FuncBuf, 1},
		{FuncNand2, 2}, {FuncNor2, 2}, {FuncAnd2, 2}, {FuncOr2, 2},
		{FuncXor2, 2}, {FuncXnor2, 2},
		{FuncNand3, 3}, {FuncNor3, 3}, {FuncAnd3, 3}, {FuncOr3, 3},
		{FuncAoi21, 3}, {FuncOai21, 3}, {FuncMux2, 3},
		{FuncNand4, 4}, {FuncNor4, 4},
	}
	for _, c := range cases {
		if got := c.f.Arity(); got != c.want {
			t.Errorf("%v.Arity() = %d, want %d", c.f, got, c.want)
		}
	}
}

func TestFunctionEvalTruthTables(t *testing.T) {
	// Exhaustive truth tables for every function.
	ref := map[Function]func(in []bool) bool{
		FuncInv:   func(in []bool) bool { return !in[0] },
		FuncBuf:   func(in []bool) bool { return in[0] },
		FuncNand2: func(in []bool) bool { return !(in[0] && in[1]) },
		FuncNor2:  func(in []bool) bool { return !(in[0] || in[1]) },
		FuncAnd2:  func(in []bool) bool { return in[0] && in[1] },
		FuncOr2:   func(in []bool) bool { return in[0] || in[1] },
		FuncXor2:  func(in []bool) bool { return in[0] != in[1] },
		FuncXnor2: func(in []bool) bool { return in[0] == in[1] },
		FuncNand3: func(in []bool) bool { return !(in[0] && in[1] && in[2]) },
		FuncNor3:  func(in []bool) bool { return !(in[0] || in[1] || in[2]) },
		FuncAnd3:  func(in []bool) bool { return in[0] && in[1] && in[2] },
		FuncOr3:   func(in []bool) bool { return in[0] || in[1] || in[2] },
		FuncAoi21: func(in []bool) bool { return !(in[0] && in[1] || in[2]) },
		FuncOai21: func(in []bool) bool { return !((in[0] || in[1]) && in[2]) },
		FuncMux2: func(in []bool) bool {
			if in[2] {
				return in[1]
			}
			return in[0]
		},
		FuncNand4: func(in []bool) bool { return !(in[0] && in[1] && in[2] && in[3]) },
		FuncNor4:  func(in []bool) bool { return !(in[0] || in[1] || in[2] || in[3]) },
	}
	for f, want := range ref {
		n := f.Arity()
		for bits := 0; bits < 1<<n; bits++ {
			in := make([]bool, n)
			for i := range in {
				in[i] = bits>>i&1 == 1
			}
			got, err := f.Eval(in)
			if err != nil {
				t.Fatalf("%v.Eval(%v): %v", f, in, err)
			}
			if got != want(in) {
				t.Errorf("%v.Eval(%v) = %v, want %v", f, in, got, want(in))
			}
		}
	}
}

func TestFunctionEvalBadArityReturnsError(t *testing.T) {
	if _, err := FuncNand2.Eval([]bool{true}); err == nil {
		t.Fatal("Eval with wrong arity did not return an error")
	}
	if _, err := Function(999).Eval(nil); err == nil {
		t.Fatal("Eval of unknown function did not return an error")
	}
}

func TestDefaultLibraryCompleteness(t *testing.T) {
	lib := Default(1.0)
	for _, f := range lib.Functions() {
		drives := lib.Drives(f)
		if len(drives) != 3 {
			t.Errorf("%v: want 3 drive strengths, got %v", f, drives)
		}
		for _, d := range drives {
			c, err := lib.Cell(f, d)
			if err != nil {
				t.Fatalf("Cell(%v, %d): %v", f, d, err)
			}
			if c.Func != f || c.Drive != d {
				t.Errorf("Cell(%v,%d) returned %s", f, d, c.Name)
			}
			if len(c.IntrinsicRise) != f.Arity() || len(c.IntrinsicFall) != f.Arity() {
				t.Errorf("%s: intrinsic tables do not match arity", c.Name)
			}
			if c.Area <= 0 || c.InputCap <= 0 || c.Resistance <= 0 {
				t.Errorf("%s: non-positive physical parameters", c.Name)
			}
		}
	}
}

func TestByName(t *testing.T) {
	lib := Default(1.0)
	c, ok := lib.ByName("NAND2_X2")
	if !ok {
		t.Fatal("NAND2_X2 not found by name")
	}
	if c.Func != FuncNand2 || c.Drive != 2 {
		t.Errorf("ByName returned wrong cell %s", c.Name)
	}
	if _, ok := lib.ByName("NO_SUCH_CELL"); ok {
		t.Error("ByName found a nonexistent cell")
	}
}

func TestUpsizeChain(t *testing.T) {
	lib := Default(1.0)
	x1 := lib.MustCell(FuncInv, 1)
	x2 := lib.Upsize(x1)
	if x2 == nil || x2.Drive != 2 {
		t.Fatalf("Upsize(X1) = %v, want drive 2", x2)
	}
	x4 := lib.Upsize(x2)
	if x4 == nil || x4.Drive != 4 {
		t.Fatalf("Upsize(X2) = %v, want drive 4", x4)
	}
	if lib.Upsize(x4) != nil {
		t.Error("Upsize(strongest) should be nil")
	}
}

func TestUpsizeReducesResistance(t *testing.T) {
	lib := Default(1.0)
	for _, f := range lib.Functions() {
		var prev *Cell
		for _, d := range lib.Drives(f) {
			c := lib.MustCell(f, d)
			if prev != nil {
				if c.Resistance >= prev.Resistance {
					t.Errorf("%s: resistance %g not below %s's %g", c.Name, c.Resistance, prev.Name, prev.Resistance)
				}
				if c.Area <= prev.Area {
					t.Errorf("%s: area %g not above %s's %g", c.Name, c.Area, prev.Name, prev.Area)
				}
			}
			prev = c
		}
	}
}

func TestDelayMonotonicInLoad(t *testing.T) {
	lib := Default(1.0)
	c := lib.MustCell(FuncNand2, 1)
	err := quick.Check(func(load1, load2, slew uint16) bool {
		l1, l2 := float64(load1)/1000, float64(load2)/1000
		s := float64(slew) / 10000
		if l1 > l2 {
			l1, l2 = l2, l1
		}
		return c.Delay(0, l1, s) <= c.Delay(0, l2, s)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestWorstDelayIsConservative(t *testing.T) {
	lib := Default(1.0)
	for _, f := range lib.Functions() {
		for _, d := range lib.Drives(f) {
			c := lib.MustCell(f, d)
			w := c.WorstDelay()
			for pin := 0; pin < f.Arity(); pin++ {
				if got := c.Delay(pin, 3.0, 0.02); got > w {
					t.Errorf("%s pin %d: realistic delay %g exceeds WorstDelay %g", c.Name, pin, got, w)
				}
			}
		}
	}
}

func TestLatchAreaScalesWithOverhead(t *testing.T) {
	for _, c := range []float64{0.5, 1.0, 2.0} {
		lib := Default(c)
		normal := lib.LatchArea(LatchNormal)
		ed := lib.LatchArea(LatchErrorDetecting)
		want := normal * (1 + c)
		if math.Abs(ed-want) > 1e-12 {
			t.Errorf("c=%g: ED latch area %g, want %g", c, ed, want)
		}
		if lib.LatchArea(LatchVirtualNonED) != normal {
			t.Errorf("c=%g: virtual non-ED latch must keep normal area", c)
		}
	}
}

func TestLatchFlopAreaRatio(t *testing.T) {
	lib := Default(1.0)
	ratio := lib.BaseLatch.Area / lib.FF.Area
	if math.Abs(ratio-0.43) > 1e-9 {
		t.Errorf("latch/FF area ratio = %g, want 0.43 (paper, Section VI-D)", ratio)
	}
}

func TestLatchDToQExceedsClkToQ(t *testing.T) {
	lib := Default(1.0)
	l := lib.BaseLatch
	if l.DToQ <= l.ClkToQ {
		t.Errorf("DToQ %g must exceed ClkToQ %g (Section III notes up to 40%% difference)", l.DToQ, l.ClkToQ)
	}
	if l.DToQ > 1.45*l.ClkToQ {
		t.Errorf("DToQ %g more than 45%% above ClkToQ %g", l.DToQ, l.ClkToQ)
	}
}

func TestLatchVariantNames(t *testing.T) {
	lib := Default(2.0)
	if v := lib.LatchVariant(LatchErrorDetecting); v.Name != "DLATCH_ED_X1" || v.Area != lib.BaseLatch.Area*3 {
		t.Errorf("ED variant wrong: %+v", v)
	}
	if v := lib.LatchVariant(LatchVirtualNonED); v.Name != "DLATCH_NED_X1" || v.Area != lib.BaseLatch.Area {
		t.Errorf("NED variant wrong: %+v", v)
	}
	if v := lib.LatchVariant(LatchNormal); v.Name != "DLATCH_X1" {
		t.Errorf("normal variant wrong: %+v", v)
	}
}

func TestVirtualLibrary(t *testing.T) {
	lib := Default(2.0)
	const window = 0.3
	groups := lib.VirtualLibrary(window)
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3 (Section V)", len(groups))
	}
	nonED, ed, normal := groups[0], groups[1], groups[2]
	if nonED.Kind != LatchVirtualNonED || ed.Kind != LatchErrorDetecting || normal.Kind != LatchNormal {
		t.Fatal("group kinds wrong")
	}
	// Group 1: extended setup models "arrival must precede the window".
	if nonED.Setup != lib.BaseLatch.Setup+window {
		t.Errorf("non-ED setup = %g, want base+window %g", nonED.Setup, lib.BaseLatch.Setup+window)
	}
	if nonED.Area != lib.BaseLatch.Area {
		t.Error("non-ED latch must keep base area")
	}
	// Group 2: area scaled by 1+c.
	if ed.Area != lib.BaseLatch.Area*3 {
		t.Errorf("ED area = %g, want %g", ed.Area, lib.BaseLatch.Area*3)
	}
	if ed.Setup != lib.BaseLatch.Setup {
		t.Error("ED latch keeps the base setup")
	}
	// Group 3: untouched.
	if normal != lib.BaseLatch {
		t.Error("third group must be the unmodified base latch")
	}
}
