// Package cell models a synthetic standard-cell library: combinational
// cells at several drive strengths, flip-flops, and the latch family a
// two-phase resilient design needs (normal latches plus error-detecting
// latches whose area is scaled by the EDL overhead factor c).
//
// The delay model is a linear NLDM-style approximation,
//
//	delay(pin→out) = intrinsic + resistance·loadCap + slewFactor·inputSlew
//
// with separate rise/fall intrinsics per input pin. All results in the
// reproduced paper are area and delay *ratios* against one fixed library,
// so the absolute calibration below (roughly a 28nm-class library with
// latch area = 43% of flip-flop area, and a latch D→Q delay 40% larger
// than its clk→Q delay, both figures taken from the paper) is what matters.
package cell

import (
	"fmt"
	"sort"
	"strings"
)

// Function identifies the logic function a combinational cell computes.
type Function int

// Supported combinational functions.
const (
	FuncInv Function = iota
	FuncBuf
	FuncNand2
	FuncNor2
	FuncAnd2
	FuncOr2
	FuncXor2
	FuncXnor2
	FuncNand3
	FuncNor3
	FuncAnd3
	FuncOr3
	FuncAoi21 // !(a·b + c)
	FuncOai21 // !((a+b)·c)
	FuncMux2  // s ? b : a  (pins: a, b, s)
	FuncNand4
	FuncNor4
	numFunctions
)

var functionNames = map[Function]string{
	FuncInv: "INV", FuncBuf: "BUF",
	FuncNand2: "NAND2", FuncNor2: "NOR2", FuncAnd2: "AND2", FuncOr2: "OR2",
	FuncXor2: "XOR2", FuncXnor2: "XNOR2",
	FuncNand3: "NAND3", FuncNor3: "NOR3", FuncAnd3: "AND3", FuncOr3: "OR3",
	FuncAoi21: "AOI21", FuncOai21: "OAI21", FuncMux2: "MUX2",
	FuncNand4: "NAND4", FuncNor4: "NOR4",
}

// String returns the conventional library name of the function.
func (f Function) String() string {
	if s, ok := functionNames[f]; ok {
		return s
	}
	return fmt.Sprintf("FUNC(%d)", int(f))
}

// Arity returns the number of input pins of the function.
func (f Function) Arity() int {
	switch f {
	case FuncInv, FuncBuf:
		return 1
	case FuncNand2, FuncNor2, FuncAnd2, FuncOr2, FuncXor2, FuncXnor2:
		return 2
	case FuncNand3, FuncNor3, FuncAnd3, FuncOr3, FuncAoi21, FuncOai21, FuncMux2:
		return 3
	case FuncNand4, FuncNor4:
		return 4
	}
	return 0
}

// Eval computes the boolean output of the function for the given inputs.
// Arity mismatches and unimplemented functions return errors rather than
// panicking: Eval sits on the simulation hot path for externally supplied
// netlists, so malformed inputs must degrade to a diagnosis, not a crash.
func (f Function) Eval(in []bool) (bool, error) {
	if len(in) != f.Arity() {
		return false, fmt.Errorf("cell: %v expects %d inputs, got %d", f, f.Arity(), len(in))
	}
	switch f {
	case FuncInv:
		return !in[0], nil
	case FuncBuf:
		return in[0], nil
	case FuncNand2:
		return !(in[0] && in[1]), nil
	case FuncNor2:
		return !(in[0] || in[1]), nil
	case FuncAnd2:
		return in[0] && in[1], nil
	case FuncOr2:
		return in[0] || in[1], nil
	case FuncXor2:
		return in[0] != in[1], nil
	case FuncXnor2:
		return in[0] == in[1], nil
	case FuncNand3:
		return !(in[0] && in[1] && in[2]), nil
	case FuncNor3:
		return !(in[0] || in[1] || in[2]), nil
	case FuncAnd3:
		return in[0] && in[1] && in[2], nil
	case FuncOr3:
		return in[0] || in[1] || in[2], nil
	case FuncAoi21:
		return !(in[0] && in[1] || in[2]), nil
	case FuncOai21:
		return !((in[0] || in[1]) && in[2]), nil
	case FuncMux2:
		if in[2] {
			return in[1], nil
		}
		return in[0], nil
	case FuncNand4:
		return !(in[0] && in[1] && in[2] && in[3]), nil
	case FuncNor4:
		return !(in[0] || in[1] || in[2] || in[3]), nil
	}
	return false, fmt.Errorf("cell: Eval not implemented for %v", f)
}

// Cell is one combinational standard cell (a function at a drive strength).
type Cell struct {
	Name  string
	Func  Function
	Drive int // drive strength index: 1, 2, 4, ...

	Area float64

	// IntrinsicRise/Fall hold the zero-load pin-to-output delay for each
	// input pin, for an output rise/fall respectively.
	IntrinsicRise []float64
	IntrinsicFall []float64

	// Resistance is the delay added per unit of load capacitance.
	Resistance float64
	// SlewFactor is the delay added per unit of input slew.
	SlewFactor float64

	// InputCap is the capacitance each input pin presents to its driver.
	InputCap float64
	// MaxLoad is the library's max-capacitance limit for the output pin.
	MaxLoad float64

	// SlewBase and SlewPerLoad model the output transition time.
	SlewBase    float64
	SlewPerLoad float64
}

// Delay returns the pin-to-output delay from input pin through the cell
// driving loadCap, for the worse of rise and fall, given the input slew.
func (c *Cell) Delay(pin int, loadCap, inputSlew float64) float64 {
	r := c.IntrinsicRise[pin]
	f := c.IntrinsicFall[pin]
	worst := r
	if f > worst {
		worst = f
	}
	return worst + c.Resistance*loadCap + c.SlewFactor*inputSlew
}

// DelayRF returns separate rise and fall pin-to-output delays.
func (c *Cell) DelayRF(pin int, loadCap, inputSlew float64) (rise, fall float64) {
	rise = c.IntrinsicRise[pin] + c.Resistance*loadCap + c.SlewFactor*inputSlew
	fall = c.IntrinsicFall[pin] + c.Resistance*loadCap + c.SlewFactor*inputSlew
	return rise, fall
}

// OutputSlew returns the transition time at the cell output for loadCap.
func (c *Cell) OutputSlew(loadCap float64) float64 {
	return c.SlewBase + c.SlewPerLoad*loadCap
}

// WorstDelay is the conservative, load-independent gate delay used by the
// gate-based timing model of the original DAC paper: the worst pin
// intrinsic plus the delay of driving a pessimistic reference load at a
// pessimistic reference slew (roughly a fanout-of-4 corner, some 15–30%
// above typical path-based delays — matching the pessimism the journal
// paper measures for the DAC paper's gate-delay model in Table II).
func (c *Cell) WorstDelay() float64 {
	worst := 0.0
	for pin := range c.IntrinsicRise {
		if d := c.Delay(pin, refPessimisticLoad, refPessimisticSlew); d > worst {
			worst = d
		}
	}
	return worst
}

// refPessimisticSlew and refPessimisticLoad are the corner the gate-based
// delay model assumes for every cell regardless of context.
const (
	refPessimisticSlew = 0.025
	refPessimisticLoad = 3.0
)

// LatchKind distinguishes the sequential cells in the library.
type LatchKind int

// Latch kinds. The "virtual" kinds are the resynthesis-library variants of
// Section V: a normal latch whose setup is extended by the resiliency
// window, and an error-detecting latch whose area carries the EDL overhead.
const (
	// LatchNormal is a plain transparent latch from the base library.
	LatchNormal LatchKind = iota
	// LatchErrorDetecting is a latch plus its amortized error-detecting
	// logic (shadow flip-flop or transition detector plus its share of
	// the OR tree). Its area is Latch.Area · (1 + c).
	LatchErrorDetecting
	// LatchVirtualNonED is the virtual-library non-error-detecting latch:
	// same area as normal, but setup extended so arrivals must precede
	// the resiliency window.
	LatchVirtualNonED
)

func (k LatchKind) String() string {
	switch k {
	case LatchNormal:
		return "latch"
	case LatchErrorDetecting:
		return "latch-ed"
	case LatchVirtualNonED:
		return "latch-ned"
	}
	return fmt.Sprintf("latch(%d)", int(k))
}

// Latch describes the timing and area of a transparent latch cell.
type Latch struct {
	Name string
	Kind LatchKind

	Area float64

	// ClkToQ is the clock-to-output delay when data arrived before the
	// latch opened; DToQ is the data-to-output delay through a transparent
	// latch. The paper notes DToQ can exceed ClkToQ by up to 40% in a
	// modern library, and Eq. (5) depends on the distinction.
	ClkToQ float64
	DToQ   float64

	Setup    float64
	Hold     float64
	InputCap float64
	Drive    int
	// Resistance/SlewBase/SlewPerLoad let an inserted latch participate
	// in load-dependent timing like any other cell.
	Resistance  float64
	SlewBase    float64
	SlewPerLoad float64
}

// FlipFlop describes the master-slave flip-flop cell of the original,
// non-resilient designs (Table I).
type FlipFlop struct {
	Name     string
	Area     float64
	ClkToQ   float64
	Setup    float64
	Hold     float64
	InputCap float64
}

// Library is a complete cell library: combinational cells indexed by
// function and drive, one flip-flop, and the latch family.
type Library struct {
	Name string

	cells  map[Function][]*Cell // sorted by Drive ascending
	byName map[string]*Cell

	FF FlipFlop

	// BaseLatch is the plain library latch (drive 1).
	BaseLatch Latch

	// EDLOverhead is the amortized error-detecting overhead factor c:
	// an error-detecting latch occupies BaseLatch.Area · (1 + c).
	EDLOverhead float64
}

// SeqAreaOf is the sequential-area formula of the paper's objective:
// latch area · (slaves + masters) + c · latch area · ED. It is the
// single definition shared by core's evaluation, the virtual-library
// flows, reports and the output certifier.
func SeqAreaOf(lib *Library, edlCost float64, slaves, masters, ed int) float64 {
	a := lib.BaseLatch.Area
	return a*float64(slaves+masters) + edlCost*a*float64(ed)
}

// Default returns the library used throughout the reproduction, with the
// EDL overhead factor c (the paper sweeps c over 0.5, 1.0, 2.0).
func Default(edlOverhead float64) *Library {
	lib := &Library{
		Name:        "relatch28",
		cells:       make(map[Function][]*Cell),
		byName:      make(map[string]*Cell),
		EDLOverhead: edlOverhead,
	}

	// Base (drive-1) parameters per function: area, intrinsic rise/fall
	// per pin, resistance, input cap. Delays in ns, caps in arbitrary
	// femtofarad-like units, areas in µm²-like units, all consistent
	// with a 28nm-class library where an INV_X1 is ~0.6 area units and
	// ~12ps intrinsic.
	type proto struct {
		f          Function
		area       float64
		rise, fall float64 // base intrinsic for pin 0; later pins slower
		res        float64
		cap        float64
	}
	protos := []proto{
		{FuncInv, 0.60, 0.010, 0.008, 0.0040, 1.0},
		{FuncBuf, 0.90, 0.018, 0.016, 0.0036, 1.0},
		{FuncNand2, 0.90, 0.014, 0.011, 0.0048, 1.1},
		{FuncNor2, 0.90, 0.016, 0.012, 0.0052, 1.1},
		{FuncAnd2, 1.20, 0.022, 0.019, 0.0044, 1.0},
		{FuncOr2, 1.20, 0.024, 0.020, 0.0046, 1.0},
		{FuncXor2, 1.80, 0.032, 0.030, 0.0056, 1.6},
		{FuncXnor2, 1.80, 0.033, 0.031, 0.0056, 1.6},
		{FuncNand3, 1.20, 0.018, 0.015, 0.0054, 1.2},
		{FuncNor3, 1.20, 0.021, 0.016, 0.0060, 1.2},
		{FuncAnd3, 1.50, 0.026, 0.023, 0.0048, 1.1},
		{FuncOr3, 1.50, 0.028, 0.024, 0.0050, 1.1},
		{FuncAoi21, 1.20, 0.019, 0.016, 0.0056, 1.2},
		{FuncOai21, 1.20, 0.020, 0.017, 0.0056, 1.2},
		{FuncMux2, 1.80, 0.028, 0.026, 0.0052, 1.3},
		{FuncNand4, 1.50, 0.022, 0.018, 0.0060, 1.3},
		{FuncNor4, 1.50, 0.026, 0.020, 0.0068, 1.3},
	}

	for _, p := range protos {
		for _, drive := range []int{1, 2, 4} {
			d := float64(drive)
			n := p.f.Arity()
			rise := make([]float64, n)
			fall := make([]float64, n)
			for pin := 0; pin < n; pin++ {
				// Later pins are structurally slower (series stacks).
				penalty := 1.0 + 0.05*float64(pin)
				rise[pin] = p.rise * penalty
				fall[pin] = p.fall * penalty
			}
			c := &Cell{
				Name:          fmt.Sprintf("%s_X%d", p.f, drive),
				Func:          p.f,
				Drive:         drive,
				Area:          p.area * (0.7 + 0.3*d),
				IntrinsicRise: rise,
				IntrinsicFall: fall,
				Resistance:    p.res / d,
				SlewFactor:    0.10,
				InputCap:      p.cap * (0.8 + 0.2*d),
				MaxLoad:       12.0 * d,
				SlewBase:      0.004,
				SlewPerLoad:   0.0016 / d,
			}
			lib.cells[p.f] = append(lib.cells[p.f], c)
			lib.byName[c.Name] = c
		}
	}
	for f := range lib.cells {
		sort.Slice(lib.cells[f], func(i, j int) bool {
			return lib.cells[f][i].Drive < lib.cells[f][j].Drive
		})
	}

	lib.FF = FlipFlop{
		Name:     "DFF_X1",
		Area:     6.00,
		ClkToQ:   0.045,
		Setup:    0.020,
		Hold:     0.004,
		InputCap: 1.2,
	}
	// Latch area is 43% of the flip-flop area, matching the efficiency
	// the paper reports for its commercial library (Section VI-D).
	lib.BaseLatch = Latch{
		Name:        "DLATCH_X1",
		Kind:        LatchNormal,
		Area:        lib.FF.Area * 0.43,
		ClkToQ:      0.025,
		DToQ:        0.035, // 40% above ClkToQ, per Section III
		Setup:       0.012,
		Hold:        0.006,
		InputCap:    1.1,
		Drive:       1,
		Resistance:  0.0040,
		SlewBase:    0.004,
		SlewPerLoad: 0.0016,
	}
	return lib
}

// Cell returns the cell implementing f at the given drive strength.
func (l *Library) Cell(f Function, drive int) (*Cell, error) {
	for _, c := range l.cells[f] {
		if c.Drive == drive {
			return c, nil
		}
	}
	return nil, fmt.Errorf("cell: library %s has no %v at drive X%d", l.Name, f, drive)
}

// MustCell is Cell but panics on a missing cell. The panic is a provably
// internal invariant, not a user-input path: every library this package
// constructs (Default, VirtualLibrary) provides every function at drives
// 1, 2 and 4, and callers handling externally chosen (function, drive)
// pairs must use Cell instead — the verilog elaborator does.
func (l *Library) MustCell(f Function, drive int) *Cell {
	c, err := l.Cell(f, drive)
	if err != nil {
		panic(err)
	}
	return c
}

// ByName looks a combinational cell up by its library name (e.g. NAND2_X2).
func (l *Library) ByName(name string) (*Cell, bool) {
	c, ok := l.byName[strings.ToUpper(name)]
	return c, ok
}

// Drives lists the available drive strengths for a function, ascending.
func (l *Library) Drives(f Function) []int {
	out := make([]int, 0, len(l.cells[f]))
	for _, c := range l.cells[f] {
		out = append(out, c.Drive)
	}
	return out
}

// Upsize returns the next stronger cell with the same function, or nil if
// c is already the strongest available.
func (l *Library) Upsize(c *Cell) *Cell {
	variants := l.cells[c.Func]
	for i, v := range variants {
		if v.Drive == c.Drive && i+1 < len(variants) {
			return variants[i+1]
		}
	}
	return nil
}

// Functions lists every function the library implements, in a stable order.
func (l *Library) Functions() []Function {
	out := make([]Function, 0, len(l.cells))
	for f := Function(0); f < numFunctions; f++ {
		if len(l.cells[f]) > 0 {
			out = append(out, f)
		}
	}
	return out
}

// LatchArea returns the area of a latch of the given kind under the
// library's EDL overhead factor.
func (l *Library) LatchArea(k LatchKind) float64 {
	switch k {
	case LatchErrorDetecting:
		return l.BaseLatch.Area * (1 + l.EDLOverhead)
	default:
		return l.BaseLatch.Area
	}
}

// LatchVariant materializes the latch cell of the given kind. Error
// detection scales area; the virtual non-ED variant only changes Kind
// (its extended setup is enforced by the retiming flow, not the cell).
func (l *Library) LatchVariant(k LatchKind) Latch {
	v := l.BaseLatch
	v.Kind = k
	v.Area = l.LatchArea(k)
	switch k {
	case LatchErrorDetecting:
		v.Name = "DLATCH_ED_X1"
	case LatchVirtualNonED:
		v.Name = "DLATCH_NED_X1"
	}
	return v
}

// VirtualLibrary materializes the resynthesis library of Section V: every
// latch gains two variants, forming the three groups the virtual-library
// retiming flows choose among — (1) non-error-detecting latches whose
// setup is extended by the resiliency window (arrivals must precede
// φ1+γ1), (2) error-detecting latches with area scaled by 1+c (arrivals
// may run to φ1+γ1+φ1), and (3) the unmodified base latch for
// non-error-detecting pipeline stages. resiliencyWindow is φ1 in the
// latches' time unit.
func (l *Library) VirtualLibrary(resiliencyWindow float64) []Latch {
	nonED := l.LatchVariant(LatchVirtualNonED)
	nonED.Setup = l.BaseLatch.Setup + resiliencyWindow
	ed := l.LatchVariant(LatchErrorDetecting)
	return []Latch{nonED, ed, l.BaseLatch}
}
