// Package fig4 builds the worked example of the paper's Fig. 4/5: a
// nine-node cut cloud with two master-driven inputs (I1, I2), gates
// G3..G8 and one target master O9, under the clocking
// φ1 = γ1 = φ2 = γ2 = 2.5 with zero latch delays.
//
// The gate delays below are reconstructed so that every number the paper
// states holds exactly:
//
//	D^f: G3=2 G4=4 G5=5 G6=7 G7=8 G8=9 O9=9
//	D^b(I1,O9)=9  D^b(I2,O9)=7
//	A(G6,G7,O9)=9  A(G3,G6,O9)=12  A(G5,G7,O9)=7  A(I2,G5,O9)=12
//	V_m={I1}  V_n={G7,G8,O9}  V_r={I2,G3,G4,G5,G6}  g(O9)={G5,G6}
//	Cut1 (latches at G3, I2): 2 slaves, O9 error-detecting, arrival 12
//	Cut2 (latches at G4, G5, G6): 3 slaves, O9 normal, arrival 9
//
// The package exists so that sta, rgraph, core and the examples all
// golden-check against the same fixture.
package fig4

import (
	"fmt"

	"relatch/internal/cell"
	"relatch/internal/clocking"
	"relatch/internal/netlist"
)

// Scheme is the example's clocking: Π = 10, resiliency window 2.5,
// forward/backward borrowing limits 7.5.
func Scheme() clocking.Scheme {
	return clocking.Scheme{Phi1: 2.5, Gamma1: 2.5, Phi2: 2.5, Gamma2: 2.5}
}

// Delays maps gate name to the fixed delay d(v) used by the example.
var Delays = map[string]float64{
	"G3": 2, "G4": 2, "G5": 5, "G6": 5, "G7": 1, "G8": 1,
}

// EDLOverhead is the example's c: an error-detecting master costs 3 area
// units against 1 for a slave or normal master ("Suppose the area cost of
// an error-detecting latch is three units ... i.e. c = 2").
const EDLOverhead = 2.0

// ZeroLatch returns the example's idealized slave latch with D_l = 0:
// zero clock-to-Q and D-to-Q delays.
func ZeroLatch() cell.Latch { return cell.Latch{Name: "IDEAL", Area: 1} }

// Circuit builds the example cloud. Cell bindings are arbitrary (the
// example is driven by its fixed delays, supplied to sta as overrides).
func Circuit() (*netlist.Circuit, error) {
	lib := cell.Default(EDLOverhead)
	b := netlist.NewBuilder("fig4", lib)
	i1 := b.Input("I1", 0)
	i2 := b.Input("I2", 1)
	g3 := b.Gate("G3", lib.MustCell(cell.FuncBuf, 1), i1)
	g4 := b.Gate("G4", lib.MustCell(cell.FuncNand2, 1), g3, i2)
	g5 := b.Gate("G5", lib.MustCell(cell.FuncInv, 1), i2)
	g6 := b.Gate("G6", lib.MustCell(cell.FuncInv, 1), g3)
	g7 := b.Gate("G7", lib.MustCell(cell.FuncNor2, 1), g5, g6)
	g8 := b.Gate("G8", lib.MustCell(cell.FuncAnd2, 1), g4, g7)
	b.Output("O9", 2, g8)
	return b.Build()
}

// MustCircuit is Circuit but panics on error, for tests and examples.
func MustCircuit() *netlist.Circuit {
	c, err := Circuit()
	if err != nil {
		panic(fmt.Sprintf("fig4: %v", err))
	}
	return c
}

// FixedDelays returns the per-node delay override map keyed by node ID
// for use with the sta package's fixed-delay model.
func FixedDelays(c *netlist.Circuit) map[int]float64 {
	m := make(map[int]float64)
	for _, n := range c.Nodes {
		if d, ok := Delays[n.Name]; ok {
			m[n.ID] = d
		}
	}
	return m
}

// Cut1 returns the first candidate placement discussed in the paper:
// slave latches at the output of G3 and at input I2 (2 physical latches;
// forces O9 to be error-detecting; total cost 5 at c = 2).
func Cut1(c *netlist.Circuit) *netlist.Placement {
	p := netlist.NewPlacement()
	g3, _ := c.Node("G3")
	g4, _ := c.Node("G4")
	g6, _ := c.Node("G6")
	i2, _ := c.Node("I2")
	p.OnEdge[netlist.Edge{From: g3.ID, To: g4.ID}] = true
	p.OnEdge[netlist.Edge{From: g3.ID, To: g6.ID}] = true
	p.AtInput[i2.ID] = true
	return p
}

// Cut2 returns the optimal placement: slave latches at the outputs of G4,
// G5 and G6 (3 physical latches; O9 stays normal; total cost 4 at c = 2).
func Cut2(c *netlist.Circuit) *netlist.Placement {
	p := netlist.NewPlacement()
	pairs := [][2]string{{"G4", "G8"}, {"G5", "G7"}, {"G6", "G7"}}
	for _, pr := range pairs {
		u, _ := c.Node(pr[0])
		v, _ := c.Node(pr[1])
		p.OnEdge[netlist.Edge{From: u.ID, To: v.ID}] = true
	}
	return p
}

// MustOptimalRetiming returns the r-vector the paper's ILP produces:
// r = −1 on I1, I2, G3, G4, G5, G6 and 0 elsewhere. It panics if c is
// not the Fig. 4 circuit.
func MustOptimalRetiming(c *netlist.Circuit) map[int]int {
	r := make(map[int]int)
	for _, name := range []string{"I1", "I2", "G3", "G4", "G5", "G6"} {
		n, ok := c.Node(name)
		if !ok {
			panic("fig4: missing node " + name)
		}
		r[n.ID] = -1
	}
	return r
}
