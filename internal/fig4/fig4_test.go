package fig4

import (
	"testing"

	"relatch/internal/netlist"
)

func TestCircuitStructure(t *testing.T) {
	c := MustCircuit()
	if got := len(c.Inputs); got != 2 {
		t.Errorf("inputs = %d, want 2 (I1, I2)", got)
	}
	if got := len(c.Outputs); got != 1 {
		t.Errorf("outputs = %d, want 1 (O9)", got)
	}
	if got := c.GateCount(); got != 6 {
		t.Errorf("gates = %d, want 6 (G3..G8)", got)
	}
	// The paper's connectivity: G3→{G4,G6}, I2→{G4,G5}, G5/G6→G7,
	// G4/G7→G8, G8→O9.
	edges := map[string][]string{
		"I1": {"G3"}, "G3": {"G4", "G6"}, "I2": {"G4", "G5"},
		"G5": {"G7"}, "G6": {"G7"}, "G7": {"G8"}, "G4": {"G8"}, "G8": {"O9"},
	}
	for from, tos := range edges {
		u, ok := c.Node(from)
		if !ok {
			t.Fatalf("missing node %s", from)
		}
		for _, to := range tos {
			v, _ := c.Node(to)
			found := false
			for _, f := range u.Fanout {
				if f == v {
					found = true
				}
			}
			if !found {
				t.Errorf("missing edge %s -> %s", from, to)
			}
		}
	}
}

func TestSchemeConstants(t *testing.T) {
	s := Scheme()
	if s.Period() != 10 || s.MaxStageDelay() != 12.5 {
		t.Errorf("scheme %v: want Π=10, P=12.5", s)
	}
	if EDLOverhead != 2.0 {
		t.Errorf("c = %g, want 2 (the example's 3-unit ED latch)", EDLOverhead)
	}
}

func TestCutsAreLegal(t *testing.T) {
	c := MustCircuit()
	for name, p := range map[string]*netlist.Placement{"Cut1": Cut1(c), "Cut2": Cut2(c)} {
		if err := p.Validate(c); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if got := Cut1(c).SlaveCount(); got != 2 {
		t.Errorf("Cut1 slaves = %d, want 2", got)
	}
	if got := Cut2(c).SlaveCount(); got != 3 {
		t.Errorf("Cut2 slaves = %d, want 3", got)
	}
}

func TestOptimalRetimingMatchesCut2(t *testing.T) {
	c := MustCircuit()
	p := netlist.FromRetiming(c, MustOptimalRetiming(c))
	if err := p.Validate(c); err != nil {
		t.Fatal(err)
	}
	want := Cut2(c)
	for e := range want.OnEdge {
		if !p.OnEdge[e] {
			t.Errorf("r-vector placement misses latch on %v", e)
		}
	}
	if p.SlaveCount() != want.SlaveCount() {
		t.Errorf("slaves %d, want %d", p.SlaveCount(), want.SlaveCount())
	}
}

func TestZeroLatch(t *testing.T) {
	l := ZeroLatch()
	if l.ClkToQ != 0 || l.DToQ != 0 || l.Setup != 0 {
		t.Error("the example's latch must have zero delays (D_l = 0)")
	}
}
