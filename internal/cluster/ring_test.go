package cluster

import (
	"errors"
	"fmt"
	"testing"
)

func TestRingDeterministicAndDistinct(t *testing.T) {
	r1, err := NewRing([]string{"n1", "n2", "n3"}, 0)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	r2, err := NewRing([]string{"n3", "n1", "n2"}, 0) // order must not matter
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%03d", i)
		a, b := r1.Owners(key, 2), r2.Owners(key, 2)
		if len(a) != 2 || len(b) != 2 {
			t.Fatalf("Owners(%q) lengths: %d, %d", key, len(a), len(b))
		}
		if a[0] != b[0] || a[1] != b[1] {
			t.Fatalf("Owners(%q) differ across construction orders: %v vs %v", key, a, b)
		}
		if a[0] == a[1] {
			t.Fatalf("Owners(%q) not distinct: %v", key, a)
		}
	}
	// Replication count clamps to the membership size.
	if got := r1.Owners("k", 10); len(got) != 3 {
		t.Fatalf("Owners clamped = %v, want 3 distinct nodes", got)
	}
}

func TestRingSpreadsKeys(t *testing.T) {
	r, err := NewRing([]string{"n1", "n2", "n3"}, 0)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	counts := map[string]int{}
	const keys = 600
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("key-%04d", i))]++
	}
	for _, id := range r.Nodes() {
		if counts[id] < keys/6 {
			t.Fatalf("node %s owns only %d/%d keys — ring badly unbalanced: %v", id, counts[id], keys, counts)
		}
	}
}

// TestRingConsistency is the consistent-hashing contract: dropping one
// member only moves the keys that member owned; every other key keeps
// its owner.
func TestRingConsistency(t *testing.T) {
	full, err := NewRing([]string{"n1", "n2", "n3"}, 0)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	reduced, err := NewRing([]string{"n1", "n2"}, 0)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	moved := 0
	for i := 0; i < 400; i++ {
		key := fmt.Sprintf("key-%04d", i)
		before, after := full.Owner(key), reduced.Owner(key)
		if before == "n3" {
			moved++
			continue
		}
		if before != after {
			t.Fatalf("key %q moved %s→%s although its owner survived", key, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("no key was owned by the removed node — test is vacuous")
	}
	// The routing-time equivalent: skipping a dead owner lands on the
	// next replica, which is the reduced ring's choice for those keys.
	for i := 0; i < 400; i++ {
		key := fmt.Sprintf("key-%04d", i)
		owners := full.Owners(key, 3)
		var skipDead []string
		for _, id := range owners {
			if id != "n3" {
				skipDead = append(skipDead, id)
			}
		}
		if skipDead[0] != reduced.Owner(key) {
			t.Fatalf("key %q: skipping dead owner gives %s, reduced ring gives %s", key, skipDead[0], reduced.Owner(key))
		}
	}
}

func TestRingRejectsBadMembership(t *testing.T) {
	for _, nodes := range [][]string{nil, {}, {""}, {"a", "a"}} {
		if _, err := NewRing(nodes, 0); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("NewRing(%v) error = %v, want ErrBadConfig", nodes, err)
		}
	}
}
