package cluster

import (
	"testing"
	"time"
)

func TestBreakerTripAndRecover(t *testing.T) {
	b := NewBreaker(3, 100*time.Millisecond, time.Second)
	now := time.Unix(1000, 0)
	if !b.Allow(now) {
		t.Fatal("fresh breaker must allow traffic")
	}
	if b.Failure(now) {
		t.Fatal("first failure must not open the circuit")
	}
	if b.Failure(now) {
		t.Fatal("second failure must not open the circuit")
	}
	if !b.Failure(now) {
		t.Fatal("third failure must report the closed→open transition")
	}
	if b.Allow(now) {
		t.Fatal("open circuit must refuse traffic")
	}
	// Jitter is at most +25%, so after 1.25*base the window has passed.
	later := now.Add(125 * time.Millisecond)
	if !b.Allow(later) {
		t.Fatal("circuit must half-open once the backoff window passes")
	}
	b.Success()
	if b.Fails() != 0 || !b.Allow(now) {
		t.Fatal("success must close the circuit and reset the failure count")
	}
}

func TestBreakerBackoffGrowsAndCaps(t *testing.T) {
	const base, max = 100 * time.Millisecond, 400 * time.Millisecond
	b := NewBreaker(1, base, max)
	now := time.Unix(2000, 0)
	prev := time.Duration(0)
	for i := 0; i < 6; i++ {
		b.Failure(now)
		win := b.openUntil.Sub(now)
		if win < time.Duration(0.75*float64(base)) {
			t.Fatalf("failure %d: window %v below jittered base", i, win)
		}
		if win > time.Duration(1.25*float64(max)) {
			t.Fatalf("failure %d: window %v above jittered cap", i, win)
		}
		if i >= 1 && i <= 2 && win < prev/2 {
			t.Fatalf("failure %d: window %v shrank too much from %v", i, win, prev)
		}
		prev = win
	}
}

func TestBreakerReopenIsNotATransition(t *testing.T) {
	b := NewBreaker(1, time.Minute, time.Hour)
	now := time.Unix(3000, 0)
	if !b.Failure(now) {
		t.Fatal("first failure at threshold 1 must open")
	}
	// Still inside the open window: extending it is not a new trip.
	if b.Failure(now.Add(time.Second)) {
		t.Fatal("failure while already open must not report a transition")
	}
}
