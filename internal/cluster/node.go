// Package cluster turns the single-node retiming service into a
// sharded multi-node system. It provides the pieces the engine
// frontend composes: a consistent-hash ring (virtual nodes,
// replication) over job content addresses with a static membership
// list, an HTTP peer client for the internal protocol
// (POST /internal/v1/jobs forwards a submission to the owner shard,
// GET /internal/v1/cache/{key} pulls a warm claim blob,
// GET /internal/v1/jobs/{id} proxies a status poll), per-peer failure
// handling (request timeouts, a small circuit breaker with jittered
// exponential backoff), and a front-door policy layer (bearer tokens,
// token-bucket rate limits, admission quotas).
//
// Trust model — claims, not results: the peer protocol only ever
// moves serializable claim blobs (the engine cache's entry format) and
// job requests. A peer-fetched entry is restored onto a locally built
// circuit, re-evaluated and re-certified (cert.Run) before it is
// served or stored, so a poisoned or malicious peer can corrupt
// nothing: at worst it costs the local recompute that would have
// happened anyway. Failure model — degrade, never fail: when the
// owner shard is unreachable the submission is computed locally; when
// every peer is down the node behaves exactly like a single-node
// deployment.
package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"

	"relatch/internal/obs"
)

// Peer-client defaults; Config can override.
const (
	defaultTimeout  = 2 * time.Second
	defaultReplicas = 2
	// maxPeerBody bounds how much of a peer response is read: claim
	// blobs and job statuses are small; anything bigger is hostile.
	maxPeerBody = 4 << 20
)

// PeerSpec names one member of the static cluster membership.
type PeerSpec struct {
	ID  string
	URL string
}

// ParsePeers parses a -peers flag value: comma-separated id=url pairs,
// e.g. "n1=http://10.0.0.1:8080,n2=http://10.0.0.2:8080". The self
// entry may omit the URL ("n1=").
func ParsePeers(s string) ([]PeerSpec, error) {
	var specs []PeerSpec
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		id, rawURL, ok := strings.Cut(tok, "=")
		if !ok || id == "" {
			return nil, fmt.Errorf("cluster: %w: peer %q is not id=url", ErrBadConfig, tok)
		}
		if rawURL != "" {
			u, err := url.Parse(rawURL)
			if err != nil || u.Scheme == "" || u.Host == "" {
				return nil, fmt.Errorf("cluster: %w: peer %q has a malformed URL", ErrBadConfig, tok)
			}
		}
		specs = append(specs, PeerSpec{ID: id, URL: strings.TrimSuffix(rawURL, "/")})
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("cluster: %w: empty peer list", ErrBadConfig)
	}
	return specs, nil
}

// Config configures a cluster node.
type Config struct {
	// Self is this node's ID; it must appear in Peers.
	Self string
	// Peers is the full static membership, self included (self's URL
	// may be empty — a node never dials itself).
	Peers []PeerSpec
	// VNodes is the virtual-node count per member (≤ 0 = 64).
	VNodes int
	// Replicas is how many ring owners a key has (≤ 0 = 2, clamped to
	// the membership size). The first live owner serves the key; the
	// rest are fallbacks and extra peer-cache sources.
	Replicas int
	// Timeout bounds each peer HTTP exchange (≤ 0 = 2s).
	Timeout time.Duration
	// BreakerThreshold/BreakerBase/BreakerMax tune the per-peer
	// circuit breaker (≤ 0 = 3 failures, 250ms base, 15s cap).
	BreakerThreshold int
	BreakerBase      time.Duration
	BreakerMax       time.Duration
	// Metrics receives the relatch_cluster_* families (nil = none).
	Metrics *obs.Registry
	// Client overrides the peer HTTP client (nil = one with Timeout).
	Client *http.Client
}

// peer is one remote member: its base URL and breaker. Immutable after
// New except for the breaker's own state.
type peer struct {
	id   string
	base string
	br   *Breaker
}

// Node is one shard of the cluster: the ring, the remote peers and the
// outbound half of the peer protocol. All fields are set in New and
// never mutated, so Node needs no lock of its own; per-peer state
// lives in each breaker.
type Node struct {
	cfg    Config
	ring   *Ring
	self   string
	peers  map[string]*peer
	order  []string // remote peer IDs, sorted — deterministic iteration
	client *http.Client
}

// New builds a node over a static membership. Self must be a member;
// every remote member needs a URL.
func New(cfg Config) (*Node, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: %w: node needs a self ID", ErrBadConfig)
	}
	ids := make([]string, 0, len(cfg.Peers))
	for _, p := range cfg.Peers {
		ids = append(ids, p.ID)
	}
	ring, err := NewRing(ids, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = defaultReplicas
	}
	if cfg.Replicas > len(ids) {
		cfg.Replicas = len(ids)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = defaultTimeout
	}
	n := &Node{cfg: cfg, ring: ring, self: cfg.Self, peers: make(map[string]*peer), client: cfg.Client}
	if n.client == nil {
		n.client = &http.Client{Timeout: cfg.Timeout}
	}
	selfSeen := false
	for _, p := range cfg.Peers {
		if p.ID == cfg.Self {
			selfSeen = true
			continue
		}
		if p.URL == "" {
			return nil, fmt.Errorf("cluster: %w: remote peer %q has no URL", ErrBadConfig, p.ID)
		}
		if _, dup := n.peers[p.ID]; dup {
			return nil, fmt.Errorf("cluster: %w: duplicate peer ID %q", ErrBadConfig, p.ID)
		}
		n.peers[p.ID] = &peer{id: p.ID, base: p.URL,
			br: NewBreaker(cfg.BreakerThreshold, cfg.BreakerBase, cfg.BreakerMax)}
		n.order = append(n.order, p.ID)
	}
	if !selfSeen {
		return nil, fmt.Errorf("cluster: %w: self %q is not in the peer list", ErrBadConfig, cfg.Self)
	}
	sort.Strings(n.order)
	cfg.Metrics.Set(obs.MetricClusterPeers, int64(len(n.order)))
	return n, nil
}

// Self returns this node's ID.
func (n *Node) Self() string { return n.self }

// Members returns the full membership size (self included).
func (n *Node) Members() int { return len(n.order) + 1 }

// Owners returns the replication-ordered owner list for a key.
func (n *Node) Owners(key string) []string { return n.ring.Owners(key, n.cfg.Replicas) }

// Route picks where a key's submission should run right now: the first
// owner that is either self or a peer whose breaker admits traffic.
// When no owner is reachable it degrades to local compute — the
// "degrade, never fail" contract.
func (n *Node) Route(key string, now time.Time) (peerID string, local bool) {
	for _, id := range n.Owners(key) {
		if id == n.self {
			return "", true
		}
		if p, ok := n.peers[id]; ok && p.br.Allow(now) {
			return id, false
		}
	}
	return "", true
}

// ForwardJob pushes a raw submission body to a peer's internal job
// endpoint, propagating the request ID, and returns the peer's status
// code and body. Transport failures and 5xx answers count against the
// peer's breaker and come back wrapping ErrPeerDown, which tells the
// caller to fall back to local compute.
func (n *Node) ForwardJob(ctx context.Context, peerID string, body []byte, requestID string) (int, []byte, error) {
	p, ok := n.peers[peerID]
	if !ok {
		return 0, nil, fmt.Errorf("cluster: %w: %q", ErrBadPeer, peerID)
	}
	code, resp, err := n.exchange(ctx, p, http.MethodPost, p.base+"/internal/v1/jobs", body, requestID)
	if err != nil {
		n.count(obs.MetricClusterForward, "outcome", "fallback_local")
		return 0, nil, err
	}
	n.count(obs.MetricClusterForward, "outcome", "ok")
	return code, resp, nil
}

// JobStatus proxies a status poll to the peer that owns a forwarded
// job.
func (n *Node) JobStatus(ctx context.Context, peerID, jobID string) (int, []byte, error) {
	p, ok := n.peers[peerID]
	if !ok {
		return 0, nil, fmt.Errorf("cluster: %w: %q", ErrBadPeer, peerID)
	}
	code, resp, err := n.exchange(ctx, p, http.MethodGet, p.base+"/internal/v1/jobs/"+url.PathEscape(jobID), nil, "")
	if err != nil {
		n.count(obs.MetricClusterStatusProxied, "outcome", "error")
		return 0, nil, err
	}
	n.count(obs.MetricClusterStatusProxied, "outcome", "ok")
	return code, resp, nil
}

// FetchEntry pulls the raw claim blob for a key from the first remote
// owner that has it. A (nil, nil) return is a clean miss. The caller
// (the engine cache) revalidates the blob before trusting a byte of
// it; this method only moves bytes.
func (n *Node) FetchEntry(ctx context.Context, key string) ([]byte, error) {
	now := time.Now()
	for _, id := range n.Owners(key) {
		if id == n.self {
			continue
		}
		p, ok := n.peers[id]
		if !ok || !p.br.Allow(now) {
			continue
		}
		code, body, err := n.exchange(ctx, p, http.MethodGet, p.base+"/internal/v1/cache/"+url.PathEscape(key), nil, "")
		switch {
		case err != nil:
			n.count(obs.MetricClusterPeerFetch, "outcome", "error")
			continue
		case code == http.StatusOK:
			n.count(obs.MetricClusterPeerFetch, "outcome", "hit")
			return body, nil
		default:
			n.count(obs.MetricClusterPeerFetch, "outcome", "miss")
		}
	}
	return nil, nil
}

// exchange runs one peer HTTP round trip under the node timeout and
// settles the peer's breaker. 5xx answers are peer failures (the peer
// is up but sick); 2xx—4xx are protocol answers the caller interprets.
func (n *Node) exchange(ctx context.Context, p *peer, method, target string, body []byte, requestID string) (int, []byte, error) {
	ctx, cancel := context.WithTimeout(ctx, n.cfg.Timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = strings.NewReader(string(body))
	}
	req, err := http.NewRequestWithContext(ctx, method, target, rd)
	if err != nil {
		return 0, nil, fmt.Errorf("cluster: peer %s: %w", p.id, err)
	}
	req.Header.Set("Accept", "application/json")
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if requestID != "" {
		req.Header.Set("X-Request-Id", requestID)
	}
	resp, err := n.client.Do(req)
	if err != nil {
		n.fail(p)
		return 0, nil, fmt.Errorf("cluster: %w: %s: %v", ErrPeerDown, p.id, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerBody))
	if err != nil {
		n.fail(p)
		return 0, nil, fmt.Errorf("cluster: %w: %s: reading response: %v", ErrPeerDown, p.id, err)
	}
	if resp.StatusCode >= http.StatusInternalServerError {
		n.fail(p)
		return 0, nil, fmt.Errorf("cluster: %w: %s answered %d", ErrPeerDown, p.id, resp.StatusCode)
	}
	p.br.Success()
	return resp.StatusCode, raw, nil
}

// fail settles a breaker failure and counts the closed→open trip.
func (n *Node) fail(p *peer) {
	if p.br.Failure(time.Now()) {
		n.count(obs.MetricClusterBreakerOpen, "peer", p.id)
	}
}

// count bumps one labelled cluster counter (no-op without a registry).
func (n *Node) count(family, label, value string) {
	n.cfg.Metrics.Add(obs.Label(family, label, value), 1)
}
