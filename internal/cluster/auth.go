package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"relatch/internal/obs"
)

// Policy is one client's access grant: a bearer token plus the knobs
// that bound what it may do. Zero Rate/Quota mean unlimited.
type Policy struct {
	// Name identifies the client in logs and metrics; never the token.
	Name string `json:"name"`
	// Token is the bearer credential presented as
	// `Authorization: Bearer <token>`.
	Token string `json:"token"`
	// Rate is the sustained admission rate in requests/second,
	// enforced by a token bucket (0 = unlimited).
	Rate float64 `json:"rate,omitempty"`
	// Burst is the bucket capacity — how far above Rate a client may
	// spike (0 = max(Rate, 1)).
	Burst float64 `json:"burst,omitempty"`
	// Quota caps total admitted requests over the process lifetime
	// (0 = unlimited). Exhaustion is terminal until restart or a
	// raised quota, unlike the self-refilling rate limit.
	Quota int64 `json:"quota,omitempty"`
}

// authFile is the on-disk shape -auth-file points at.
type authFile struct {
	Clients []Policy `json:"clients"`
}

// clientState is one client's live accounting. All fields are guarded
// by Auth.mu (the struct has no mutex of its own; instances only live
// inside Auth.clients).
type clientState struct {
	pol    Policy
	tokens float64
	last   time.Time
	used   int64
}

// Auth is the front-door policy layer: per-client bearer tokens, a
// token-bucket rate limit and a lifetime admission quota, with
// decision accounting in the obs registry
// (relatch_cluster_auth_total{result=...} plus a per-client admitted
// counter). The mutex is a leaf in the repo lock order: metrics are
// recorded after it is released.
type Auth struct {
	metrics *obs.Registry

	mu      sync.Mutex
	clients map[string]*clientState // guarded by mu (keyed by token; states mutate under mu)
}

// NewAuth builds the policy layer from explicit grants. Tokens must be
// non-empty and distinct; names must be non-empty (they key metrics).
func NewAuth(pols []Policy, metrics *obs.Registry) (*Auth, error) {
	if len(pols) == 0 {
		return nil, fmt.Errorf("cluster: %w: auth needs at least one client policy", ErrBadConfig)
	}
	a := &Auth{metrics: metrics, clients: make(map[string]*clientState, len(pols))}
	for _, p := range pols {
		switch {
		case p.Token == "":
			return nil, fmt.Errorf("cluster: %w: client %q has an empty token", ErrBadConfig, p.Name)
		case p.Name == "":
			return nil, fmt.Errorf("cluster: %w: client policy with an unnamed token", ErrBadConfig)
		case p.Rate < 0 || p.Burst < 0 || p.Quota < 0:
			return nil, fmt.Errorf("cluster: %w: client %q has a negative rate, burst or quota", ErrBadConfig, p.Name)
		}
		if _, dup := a.clients[p.Token]; dup {
			return nil, fmt.Errorf("cluster: %w: duplicate token for client %q", ErrBadConfig, p.Name)
		}
		if p.Rate > 0 && p.Burst == 0 {
			p.Burst = p.Rate
			if p.Burst < 1 {
				p.Burst = 1
			}
		}
		a.clients[p.Token] = &clientState{pol: p, tokens: p.Burst}
	}
	return a, nil
}

// OpenAuth loads an auth file: {"clients":[{"name":...,"token":...,
// "rate":...,"burst":...,"quota":...}, ...]}.
func OpenAuth(path string, metrics *obs.Registry) (*Auth, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: auth file: %w", err)
	}
	var f authFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("cluster: %w: auth file %s: %v", ErrBadConfig, path, err)
	}
	return NewAuth(f.Clients, metrics)
}

// Clients returns the number of configured client policies.
func (a *Auth) Clients() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.clients)
}

// Admit decides one request: it resolves the token, charges the quota
// and the token bucket, and returns the client name on success or a
// policy sentinel (ErrUnauthorized, ErrRateLimited, ErrQuotaExhausted)
// on refusal. now is a parameter so tests can drive the bucket clock.
func (a *Auth) Admit(token string, now time.Time) (string, error) {
	name, err := a.admit(token, now)
	switch {
	case err == nil:
		a.metrics.Add(obs.Label(obs.MetricClusterAuth, "result", "ok"), 1)
		a.metrics.Add(obs.Label(obs.MetricClusterAuth, "client", name), 1)
	case err == ErrUnauthorized:
		a.metrics.Add(obs.Label(obs.MetricClusterAuth, "result", "unauthorized"), 1)
	case err == ErrRateLimited:
		a.metrics.Add(obs.Label(obs.MetricClusterAuth, "result", "rate_limited"), 1)
	case err == ErrQuotaExhausted:
		a.metrics.Add(obs.Label(obs.MetricClusterAuth, "result", "quota"), 1)
	}
	if err != nil {
		if name == "" {
			return "", fmt.Errorf("cluster: %w", err)
		}
		return name, fmt.Errorf("cluster: client %q: %w", name, err)
	}
	return name, nil
}

// admit is the locked decision core; metrics happen in Admit after the
// lock is released (leaf-mutex discipline).
func (a *Auth) admit(token string, now time.Time) (string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, ok := a.clients[token]
	if token == "" || !ok {
		return "", ErrUnauthorized
	}
	if st.pol.Quota > 0 && st.used >= st.pol.Quota {
		return st.pol.Name, ErrQuotaExhausted
	}
	if st.pol.Rate > 0 {
		if !st.last.IsZero() {
			st.tokens += now.Sub(st.last).Seconds() * st.pol.Rate
			if st.tokens > st.pol.Burst {
				st.tokens = st.pol.Burst
			}
		}
		st.last = now
		if st.tokens < 1 {
			return st.pol.Name, ErrRateLimited
		}
		st.tokens--
	}
	st.used++
	return st.pol.Name, nil
}

// Used returns how many requests the named client has been admitted
// for (0 for unknown clients). For tests and quota dashboards.
func (a *Auth) Used(name string) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, st := range a.clients {
		if st.pol.Name == name {
			return st.used
		}
	}
	return 0
}
