package cluster

import (
	"sync"
	"time"
)

// Breaker defaults; Config can override all three.
const (
	defaultBreakerThreshold = 3
	defaultBreakerBase      = 250 * time.Millisecond
	defaultBreakerMax       = 15 * time.Second
)

// Breaker is a small per-peer circuit breaker. Consecutive failures at
// or past the threshold open the circuit for an exponentially growing,
// jittered backoff window; any success closes it again. While open,
// Allow reports false and the router skips the peer (falling through
// to the next replica or to local compute), so a dead peer costs one
// timed-out probe per backoff window instead of one per request. The
// jitter (±25%) keeps a fleet of nodes from re-probing a recovering
// peer in lockstep.
//
// The mutex is a leaf in the repo lock order (DESIGN.md §5.12): no
// callee is invoked while it is held.
type Breaker struct {
	threshold int
	base, max time.Duration

	mu        sync.Mutex
	fails     int       // guarded by mu
	openUntil time.Time // guarded by mu
	rng       uint64    // guarded by mu (xorshift state for backoff jitter)
}

// NewBreaker builds a breaker that opens after threshold consecutive
// failures, backing off from base doubling up to max (≤ 0 picks the
// package defaults).
func NewBreaker(threshold int, base, max time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = defaultBreakerThreshold
	}
	if base <= 0 {
		base = defaultBreakerBase
	}
	if max <= 0 {
		max = defaultBreakerMax
	}
	return &Breaker{threshold: threshold, base: base, max: max,
		rng: uint64(time.Now().UnixNano()) | 1}
}

// Allow reports whether a request may be sent to the peer now.
func (b *Breaker) Allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return now.After(b.openUntil) || b.openUntil.IsZero()
}

// Success records a successful exchange and closes the circuit.
func (b *Breaker) Success() {
	b.mu.Lock()
	b.fails = 0
	b.openUntil = time.Time{}
	b.mu.Unlock()
}

// Failure records a failed exchange. Once the consecutive-failure
// count reaches the threshold the circuit opens for a jittered
// exponential backoff window; the return value reports a closed→open
// transition (the event the breaker-trip metric counts).
func (b *Breaker) Failure(now time.Time) (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.fails < b.threshold {
		return false
	}
	wasOpen := !b.openUntil.IsZero() && now.Before(b.openUntil)
	delay := b.base
	for i := b.threshold; i < b.fails && delay < b.max; i++ {
		delay *= 2
	}
	if delay > b.max {
		delay = b.max
	}
	// xorshift64: cheap deterministic-state jitter in [0.75, 1.25).
	b.rng ^= b.rng << 13
	b.rng ^= b.rng >> 7
	b.rng ^= b.rng << 17
	jitter := 0.75 + float64(b.rng%1024)/2048
	b.openUntil = now.Add(time.Duration(float64(delay) * jitter))
	return !wasOpen
}

// Fails returns the current consecutive-failure count (for tests and
// status reporting).
func (b *Breaker) Fails() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fails
}
