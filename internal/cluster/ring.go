package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
)

// defaultVNodes is the virtual-node count per physical node. 64 points
// per node keeps the per-node load share within a few percent of 1/N
// for small clusters while the ring stays tiny (N*64 points).
const defaultVNodes = 64

// ringPoint is one virtual node: a position on the hash circle owned
// by a physical node.
type ringPoint struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring over node IDs: each node is hashed
// onto the circle at VNodes positions, and a key belongs to the first
// node clockwise from the key's own hash. Membership is static (the
// -peers list); "rebalance on peer death" is a routing-time concern —
// Owners returns the replication-ordered candidate list and the caller
// skips dead entries, which is exactly the consistent-hashing
// guarantee: removing a node only reassigns the keys it owned.
//
// A Ring is immutable after construction and safe for concurrent use.
type Ring struct {
	points []ringPoint
	nodes  []string
}

// NewRing builds a ring over the given node IDs with vnodes virtual
// nodes each (≤ 0 means the default). IDs must be non-empty and
// distinct.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: %w: ring needs at least one node", ErrBadConfig)
	}
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	ids := append([]string(nil), nodes...)
	sort.Strings(ids)
	for i, id := range ids {
		if id == "" {
			return nil, fmt.Errorf("cluster: %w: empty node ID", ErrBadConfig)
		}
		if i > 0 && ids[i-1] == id {
			return nil, fmt.Errorf("cluster: %w: duplicate node ID %q", ErrBadConfig, id)
		}
	}
	r := &Ring{nodes: ids, points: make([]ringPoint, 0, len(ids)*vnodes)}
	for _, id := range ids {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(id + "#" + strconv.Itoa(v)), node: id})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// Nodes returns the sorted member IDs.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Owners returns up to n distinct nodes responsible for key, in
// replication order: the key's owner first, then the next distinct
// nodes clockwise. Deterministic in (membership, key).
func (r *Ring) Owners(key string, n int) []string {
	if n <= 0 {
		n = 1
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(owners) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			owners = append(owners, p.node)
		}
	}
	return owners
}

// Owner returns the single node responsible for key.
func (r *Ring) Owner(key string) string { return r.Owners(key, 1)[0] }

// ringHash maps a string onto the hash circle. SHA-256 (truncated to
// 64 bits) rather than FNV: node IDs and content addresses are short
// and structured, and a cryptographic hash keeps vnode placement
// uniform regardless of ID shape.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}
