package cluster

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"relatch/internal/obs"
)

func TestAuthAdmitPaths(t *testing.T) {
	reg := obs.NewRegistry()
	a, err := NewAuth([]Policy{
		{Name: "ci", Token: "tok-ci", Rate: 2, Burst: 2},
		{Name: "batch", Token: "tok-batch", Quota: 2},
		{Name: "free", Token: "tok-free"},
	}, reg)
	if err != nil {
		t.Fatalf("NewAuth: %v", err)
	}
	now := time.Unix(5000, 0)

	if _, err := a.Admit("", now); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("empty token: %v, want ErrUnauthorized", err)
	}
	if _, err := a.Admit("nope", now); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("unknown token: %v, want ErrUnauthorized", err)
	}

	// Rate limit: burst of 2 admits two, then refuses until refill.
	for i := 0; i < 2; i++ {
		if name, err := a.Admit("tok-ci", now); err != nil || name != "ci" {
			t.Fatalf("burst admit %d: name=%q err=%v", i, name, err)
		}
	}
	if _, err := a.Admit("tok-ci", now); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("exhausted bucket: %v, want ErrRateLimited", err)
	}
	// 2 req/s refills one token in 500ms.
	if _, err := a.Admit("tok-ci", now.Add(time.Second/2)); err != nil {
		t.Fatalf("refilled bucket: %v", err)
	}

	// Quota: terminal after 2 admits, regardless of elapsed time.
	for i := 0; i < 2; i++ {
		if _, err := a.Admit("tok-batch", now); err != nil {
			t.Fatalf("quota admit %d: %v", i, err)
		}
	}
	if _, err := a.Admit("tok-batch", now.Add(time.Hour)); !errors.Is(err, ErrQuotaExhausted) {
		t.Fatalf("exhausted quota: %v, want ErrQuotaExhausted", err)
	}
	if got := a.Used("batch"); got != 2 {
		t.Fatalf("Used(batch) = %d, want 2", got)
	}

	// Unlimited client: no rate, no quota.
	for i := 0; i < 50; i++ {
		if _, err := a.Admit("tok-free", now); err != nil {
			t.Fatalf("unlimited admit %d: %v", i, err)
		}
	}

	var assert = func(label string, want int64) {
		t.Helper()
		if got := reg.Counter(label); got != want {
			t.Fatalf("%s = %d, want %d", label, got, want)
		}
	}
	assert(obs.Label(obs.MetricClusterAuth, "result", "unauthorized"), 2)
	assert(obs.Label(obs.MetricClusterAuth, "result", "rate_limited"), 1)
	assert(obs.Label(obs.MetricClusterAuth, "result", "quota"), 1)
	assert(obs.Label(obs.MetricClusterAuth, "client", "free"), 50)
}

func TestAuthRejectsBadPolicies(t *testing.T) {
	cases := [][]Policy{
		nil,
		{{Name: "a", Token: ""}},
		{{Name: "", Token: "t"}},
		{{Name: "a", Token: "t", Rate: -1}},
		{{Name: "a", Token: "t"}, {Name: "b", Token: "t"}},
	}
	for i, pols := range cases {
		if _, err := NewAuth(pols, nil); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("case %d: error = %v, want ErrBadConfig", i, err)
		}
	}
}

func TestOpenAuth(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "auth.json")
	blob := `{"clients":[{"name":"ci","token":"tok","rate":5,"quota":100}]}`
	if err := os.WriteFile(path, []byte(blob), 0o600); err != nil {
		t.Fatal(err)
	}
	a, err := OpenAuth(path, nil)
	if err != nil {
		t.Fatalf("OpenAuth: %v", err)
	}
	if a.Clients() != 1 {
		t.Fatalf("Clients() = %d, want 1", a.Clients())
	}
	if name, err := a.Admit("tok", time.Unix(1, 0)); err != nil || name != "ci" {
		t.Fatalf("Admit: name=%q err=%v", name, err)
	}

	if _, err := OpenAuth(filepath.Join(dir, "missing.json"), nil); err == nil {
		t.Fatal("OpenAuth on a missing file must fail")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenAuth(bad, nil); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("OpenAuth on malformed JSON: %v, want ErrBadConfig", err)
	}
}
