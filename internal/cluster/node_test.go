package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"relatch/internal/obs"
)

func TestParsePeers(t *testing.T) {
	specs, err := ParsePeers("n1=http://127.0.0.1:1234, n2=http://127.0.0.1:5678/ ,n3=")
	if err != nil {
		t.Fatalf("ParsePeers: %v", err)
	}
	want := []PeerSpec{
		{ID: "n1", URL: "http://127.0.0.1:1234"},
		{ID: "n2", URL: "http://127.0.0.1:5678"}, // trailing slash trimmed
		{ID: "n3", URL: ""},                      // self entry may omit the URL
	}
	if len(specs) != len(want) {
		t.Fatalf("got %d specs, want %d: %v", len(specs), len(want), specs)
	}
	for i := range want {
		if specs[i] != want[i] {
			t.Fatalf("spec %d = %+v, want %+v", i, specs[i], want[i])
		}
	}
	for _, bad := range []string{"", "   ", "nourl", "=http://x", "n1=:not-a-url"} {
		if _, err := ParsePeers(bad); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("ParsePeers(%q) error = %v, want ErrBadConfig", bad, err)
		}
	}
}

func TestNewNodeValidation(t *testing.T) {
	cases := []Config{
		{Self: "", Peers: []PeerSpec{{ID: "n1", URL: "http://x"}}},
		{Self: "n9", Peers: []PeerSpec{{ID: "n1", URL: "http://x"}}},             // self not a member
		{Self: "n1", Peers: []PeerSpec{{ID: "n1"}, {ID: "n2"}}},                  // remote without URL
		{Self: "n1", Peers: []PeerSpec{{ID: "n1"}, {ID: "n1", URL: "http://x"}}}, // duplicate ID
	}
	for i, cfg := range cases {
		if _, err := New(cfg); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("case %d: error = %v, want ErrBadConfig", i, err)
		}
	}
	reg := obs.NewRegistry()
	n, err := New(Config{Self: "n1", Peers: []PeerSpec{{ID: "n1"}, {ID: "n2", URL: "http://h2"}, {ID: "n3", URL: "http://h3"}}, Metrics: reg})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if n.Members() != 3 || n.Self() != "n1" {
		t.Fatalf("Members=%d Self=%q", n.Members(), n.Self())
	}
	if got := reg.Gauge(obs.MetricClusterPeers); got != 2 {
		t.Fatalf("peer gauge = %d, want 2", got)
	}
}

// TestRouteDegradesToLocal checks the routing ladder: self-owned keys
// run locally, peer-owned keys forward, and a key whose every remote
// owner is circuit-broken falls back to local compute.
func TestRouteDegradesToLocal(t *testing.T) {
	n, err := New(Config{
		Self:             "n1",
		Peers:            []PeerSpec{{ID: "n1"}, {ID: "n2", URL: "http://h2"}, {ID: "n3", URL: "http://h3"}},
		Replicas:         2,
		BreakerThreshold: 1,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	now := time.Unix(9000, 0)

	// Find a key owned by a remote node with a remote second replica.
	var key, owner string
	for i := 0; i < 200 && key == ""; i++ {
		k := "key-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		owners := n.Owners(k)
		if owners[0] != "n1" && owners[1] != "n1" {
			key, owner = k, owners[0]
		}
	}
	if key == "" {
		t.Fatal("no fully-remote key found in the probe set")
	}

	if id, local := n.Route(key, now); local || id != owner {
		t.Fatalf("Route(%q) = (%q, %v), want owner %q", key, id, local, owner)
	}
	// Break the first owner: routing moves to the second replica.
	n.peers[owner].br.Failure(now)
	second := n.Owners(key)[1]
	if id, local := n.Route(key, now); local || id != second {
		t.Fatalf("Route with owner broken = (%q, %v), want %q", id, local, second)
	}
	// Break every remote owner: degrade to local compute.
	n.peers[second].br.Failure(now)
	if _, local := n.Route(key, now); !local {
		t.Fatal("Route with all owners broken must degrade to local")
	}

	// A self-owned key always runs locally.
	for i := 0; i < 200; i++ {
		k := "self-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		if n.Owners(k)[0] == "n1" {
			if _, local := n.Route(k, now); !local {
				t.Fatalf("Route(%q) should be local: self owns it", k)
			}
			return
		}
	}
	t.Fatal("no self-owned key found in the probe set")
}

func TestForwardJobAndFetchEntry(t *testing.T) {
	var gotRequestID, gotAccept string
	peerSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost && r.URL.Path == "/internal/v1/jobs":
			gotRequestID = r.Header.Get("X-Request-Id")
			gotAccept = r.Header.Get("Accept")
			w.WriteHeader(http.StatusAccepted)
			w.Write([]byte(`{"id":"j1"}`))
		case r.Method == http.MethodGet && r.URL.Path == "/internal/v1/cache/deadbeef":
			w.Write([]byte(`{"schema_version":1}`))
		case r.Method == http.MethodGet && r.URL.Path == "/internal/v1/jobs/j1":
			w.Write([]byte(`{"state":"done"}`))
		default:
			http.NotFound(w, r)
		}
	}))
	defer peerSrv.Close()

	reg := obs.NewRegistry()
	n, err := New(Config{Self: "n1", Peers: []PeerSpec{{ID: "n1"}, {ID: "n2", URL: peerSrv.URL}}, Metrics: reg})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx := context.Background()

	code, body, err := n.ForwardJob(ctx, "n2", []byte(`{"name":"x"}`), "req-abc")
	if err != nil || code != http.StatusAccepted {
		t.Fatalf("ForwardJob: code=%d err=%v", code, err)
	}
	if string(body) != `{"id":"j1"}` || gotRequestID != "req-abc" || gotAccept != "application/json" {
		t.Fatalf("ForwardJob plumbing: body=%q requestID=%q accept=%q", body, gotRequestID, gotAccept)
	}
	if _, _, err := n.ForwardJob(ctx, "ghost", nil, ""); !errors.Is(err, ErrBadPeer) {
		t.Fatalf("ForwardJob to unknown peer: %v, want ErrBadPeer", err)
	}

	if code, body, err := n.JobStatus(ctx, "n2", "j1"); err != nil || code != http.StatusOK || string(body) != `{"state":"done"}` {
		t.Fatalf("JobStatus: code=%d body=%q err=%v", code, body, err)
	}

	// The remote owner of "deadbeef" serves the blob; a missing key is
	// a clean miss (nil, nil).
	blob, err := n.FetchEntry(ctx, "deadbeef")
	if err != nil {
		t.Fatalf("FetchEntry: %v", err)
	}
	if n.Owners("deadbeef")[0] == "n2" || n.Owners("deadbeef")[1] == "n2" {
		if string(blob) != `{"schema_version":1}` {
			t.Fatalf("FetchEntry blob = %q", blob)
		}
	}
	if blob, err := n.FetchEntry(ctx, "no-such-key"); err != nil || blob != nil {
		t.Fatalf("FetchEntry miss: blob=%q err=%v", blob, err)
	}

	if got := reg.Counter(obs.Label(obs.MetricClusterForward, "outcome", "ok")); got != 1 {
		t.Fatalf("forward ok counter = %d, want 1", got)
	}
}

// TestPeerFailureTripsBreaker drives a dead peer: transport errors wrap
// ErrPeerDown, the breaker opens after the threshold and the trip is
// counted once.
func TestPeerFailureTripsBreaker(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer dead.Close()

	reg := obs.NewRegistry()
	n, err := New(Config{
		Self:             "n1",
		Peers:            []PeerSpec{{ID: "n1"}, {ID: "n2", URL: dead.URL}},
		BreakerThreshold: 2,
		BreakerBase:      time.Minute,
		Metrics:          reg,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, _, err := n.ForwardJob(ctx, "n2", nil, ""); !errors.Is(err, ErrPeerDown) {
			t.Fatalf("attempt %d: %v, want ErrPeerDown", i, err)
		}
	}
	if n.peers["n2"].br.Allow(time.Now()) {
		t.Fatal("breaker must be open after repeated 5xx answers")
	}
	if got := reg.Counter(obs.Label(obs.MetricClusterBreakerOpen, "peer", "n2")); got != 1 {
		t.Fatalf("breaker-open counter = %d, want 1 (one transition)", got)
	}
	if got := reg.Counter(obs.Label(obs.MetricClusterForward, "outcome", "fallback_local")); got != 3 {
		t.Fatalf("fallback counter = %d, want 3", got)
	}
}
