package cluster

import "errors"

// Sentinel errors of the cluster layer. Everything returned across the
// package boundary wraps one of these (or an upstream error) so the
// serve frontend can branch with errors.Is: bad static configuration
// is a startup failure, peer trouble selects the local-compute
// fallback, and the three policy sentinels map onto 401/429.
var (
	// ErrBadConfig marks invalid static configuration: empty or
	// duplicate membership, a self ID missing from the peer list, a
	// malformed -peers or auth-file entry.
	ErrBadConfig = errors.New("bad cluster config")
	// ErrBadPeer marks a reference to a node ID outside the membership.
	ErrBadPeer = errors.New("unknown peer")
	// ErrPeerDown marks a peer that is unreachable, answering 5xx, or
	// circuit-broken. Callers degrade (compute locally), never fail.
	ErrPeerDown = errors.New("peer unavailable")
	// ErrUnauthorized marks a missing or unknown bearer token (401).
	ErrUnauthorized = errors.New("unauthorized")
	// ErrRateLimited marks a client that exhausted its token bucket;
	// the request may be retried after a short wait (429).
	ErrRateLimited = errors.New("rate limited")
	// ErrQuotaExhausted marks a client that used up its admission
	// quota; retrying does not help until the quota is raised (429).
	ErrQuotaExhausted = errors.New("quota exhausted")
)
