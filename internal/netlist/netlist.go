// Package netlist holds the gate-level circuit model used throughout the
// repository. Following Section III of the paper, a sequential circuit is
// *cut at its flip-flops*: every flip-flop is converted into a fixed master
// latch and a retimable slave latch, and the resulting combinational cloud
// is represented as a DAG whose sources are master-latch outputs and whose
// sinks are master-latch inputs. Slave latches live on edges of this cloud
// (initially at the cloud inputs) and are repositioned by retiming.
package netlist

import (
	"fmt"
	"sort"

	"relatch/internal/cell"
)

// Pos is a source position (file:line:col) attached to circuit elements
// parsed from a netlist file, so diagnostics can point back at the
// declaration that introduced a net or instance. The zero value means
// "no source position" (programmatically built circuits).
type Pos struct {
	File string
	Line int // 1-based; 0 means unknown
	Col  int // 1-based; 0 means unknown
}

// IsZero reports whether the position carries no source information.
func (p Pos) IsZero() bool { return p.File == "" && p.Line == 0 && p.Col == 0 }

// String renders "file:line:col", omitting unknown parts.
func (p Pos) String() string {
	switch {
	case p.IsZero():
		return ""
	case p.File == "":
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	case p.Line == 0:
		return p.File
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// NodeKind classifies nodes of the cut combinational cloud.
type NodeKind int

const (
	// KindInput is a cloud source: the Q output of a fixed master latch.
	KindInput NodeKind = iota
	// KindGate is a combinational gate.
	KindGate
	// KindOutput is a cloud sink: the D input of a fixed master latch.
	KindOutput
)

func (k NodeKind) String() string {
	switch k {
	case KindInput:
		return "input"
	case KindGate:
		return "gate"
	case KindOutput:
		return "output"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Node is one vertex of the cut cloud. Inputs have no fanin; outputs have
// exactly one fanin and no fanout; gates have Cell.Func.Arity() fanins.
type Node struct {
	ID   int
	Name string
	Kind NodeKind

	// Pos is the source position of the declaration this node came from,
	// when the circuit was parsed from a netlist file; zero otherwise.
	Pos Pos

	// Cell is the bound library cell; nil for inputs and outputs.
	Cell *cell.Cell

	// Fanin lists driver nodes in pin order; Fanout is derived by Build.
	Fanin  []*Node
	Fanout []*Node

	// Flop is the index of the master latch this input or output node
	// belongs to, or -1 for gates. An input and an output node with the
	// same Flop index are the Q and D sides of the same pipeline
	// register boundary only when the circuit was built from a
	// flip-flop design in which that flop's Q feeds logic and its D is
	// driven by logic; the two sides are otherwise independent.
	Flop int
}

// Edge identifies a directed connection between two nodes by ID. A pair of
// nodes is treated as a single edge even if it spans several pins, because
// a slave latch placed on the connection is shared by all of them.
type Edge struct {
	From, To int
}

func (e Edge) String() string { return fmt.Sprintf("%d->%d", e.From, e.To) }

// Circuit is a cut combinational cloud plus its master-latch boundary.
type Circuit struct {
	Name string
	Lib  *cell.Library

	// Nodes is indexed by Node.ID. Inputs and Outputs alias into it.
	Nodes   []*Node
	Inputs  []*Node
	Outputs []*Node

	topo []*Node // cached topological order over all nodes
}

// Builder incrementally constructs a Circuit and validates it on Build.
type Builder struct {
	c      *Circuit
	byName map[string]*Node
	err    error
}

// NewBuilder starts a circuit with the given name and library.
func NewBuilder(name string, lib *cell.Library) *Builder {
	return &Builder{
		c:      &Circuit{Name: name, Lib: lib},
		byName: make(map[string]*Node),
	}
}

func (b *Builder) add(n *Node) *Node {
	if b.err == nil {
		if _, dup := b.byName[n.Name]; dup {
			b.err = fmt.Errorf("netlist: duplicate node name %q", n.Name)
			return n
		}
		b.byName[n.Name] = n
	}
	n.ID = len(b.c.Nodes)
	b.c.Nodes = append(b.c.Nodes, n)
	return n
}

// Input adds a cloud source (a master latch Q pin). flop associates the
// node with a master latch index; pass a fresh index per master.
func (b *Builder) Input(name string, flop int) *Node {
	n := b.add(&Node{Name: name, Kind: KindInput, Flop: flop})
	b.c.Inputs = append(b.c.Inputs, n)
	return n
}

// Gate adds a combinational gate bound to the given cell, with fanins in
// pin order.
func (b *Builder) Gate(name string, c *cell.Cell, fanin ...*Node) *Node {
	if b.err == nil && c == nil {
		b.err = fmt.Errorf("netlist: gate %q has no cell", name)
	}
	if b.err == nil && c != nil && len(fanin) != c.Func.Arity() {
		b.err = fmt.Errorf("netlist: gate %q: cell %s wants %d fanins, got %d",
			name, c.Name, c.Func.Arity(), len(fanin))
	}
	return b.add(&Node{Name: name, Kind: KindGate, Cell: c, Fanin: fanin, Flop: -1})
}

// Output adds a cloud sink (a master latch D pin) driven by from.
func (b *Builder) Output(name string, flop int, from *Node) *Node {
	n := b.add(&Node{Name: name, Kind: KindOutput, Flop: flop, Fanin: []*Node{from}})
	b.c.Outputs = append(b.c.Outputs, n)
	return n
}

// Build finalizes the circuit: derives fanouts, checks the graph is a DAG
// with well-formed boundary nodes, and caches a topological order.
func (b *Builder) Build() (*Circuit, error) {
	if b.err != nil {
		return nil, b.err
	}
	c := b.c
	for _, n := range c.Nodes {
		for _, f := range n.Fanin {
			if f == nil {
				return nil, fmt.Errorf("netlist: %s %q has a nil fanin", n.Kind, n.Name)
			}
			if f.Kind == KindOutput {
				return nil, fmt.Errorf("netlist: output %q fans out to %q", f.Name, n.Name)
			}
			f.Fanout = append(f.Fanout, n)
		}
		if n.Kind == KindInput && len(n.Fanin) != 0 {
			return nil, fmt.Errorf("netlist: input %q has fanin", n.Name)
		}
	}
	topo, err := c.computeTopo()
	if err != nil {
		return nil, err
	}
	c.topo = topo
	return c, nil
}

// computeTopo returns a topological order or an error naming a cycle node.
func (c *Circuit) computeTopo() ([]*Node, error) {
	indeg := make([]int, len(c.Nodes))
	for _, n := range c.Nodes {
		indeg[n.ID] = len(n.Fanin)
	}
	queue := make([]*Node, 0, len(c.Nodes))
	for _, n := range c.Nodes {
		if indeg[n.ID] == 0 {
			queue = append(queue, n)
		}
	}
	order := make([]*Node, 0, len(c.Nodes))
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, f := range n.Fanout {
			indeg[f.ID]--
			if indeg[f.ID] == 0 {
				queue = append(queue, f)
			}
		}
	}
	if len(order) != len(c.Nodes) {
		for _, n := range c.Nodes {
			if indeg[n.ID] > 0 {
				return nil, fmt.Errorf("netlist: combinational cycle through %q", n.Name)
			}
		}
	}
	return order, nil
}

// Topo returns the cached topological order (inputs first).
func (c *Circuit) Topo() []*Node { return c.topo }

// Node looks a node up by name; the second result reports existence.
func (c *Circuit) Node(name string) (*Node, bool) {
	for _, n := range c.Nodes {
		if n.Name == name {
			return n, true
		}
	}
	return nil, false
}

// GateCount returns the number of combinational gates.
func (c *Circuit) GateCount() int {
	count := 0
	for _, n := range c.Nodes {
		if n.Kind == KindGate {
			count++
		}
	}
	return count
}

// FlopCount returns the number of distinct master latch indices on the
// circuit boundary. For a flip-flop design cut at its flops, this is the
// original flop count.
func (c *Circuit) FlopCount() int {
	seen := make(map[int]bool)
	for _, n := range c.Inputs {
		seen[n.Flop] = true
	}
	for _, n := range c.Outputs {
		seen[n.Flop] = true
	}
	return len(seen)
}

// CombArea returns the total area of the combinational gates.
func (c *Circuit) CombArea() float64 {
	area := 0.0
	for _, n := range c.Nodes {
		if n.Kind == KindGate {
			area += n.Cell.Area
		}
	}
	return area
}

// FaninCone returns the set of node IDs in the fan-in cone of t,
// including t itself (FIC(t) in the paper).
func (c *Circuit) FaninCone(t *Node) map[int]bool {
	cone := make(map[int]bool)
	var walk func(n *Node)
	walk = func(n *Node) {
		if cone[n.ID] {
			return
		}
		cone[n.ID] = true
		for _, f := range n.Fanin {
			walk(f)
		}
	}
	walk(t)
	return cone
}

// FanoutCone returns the set of node IDs reachable from s, including s.
func (c *Circuit) FanoutCone(s *Node) map[int]bool {
	cone := make(map[int]bool)
	var walk func(n *Node)
	walk = func(n *Node) {
		if cone[n.ID] {
			return
		}
		cone[n.ID] = true
		for _, f := range n.Fanout {
			walk(f)
		}
	}
	walk(s)
	return cone
}

// Edges returns every distinct edge of the cloud in a stable order.
func (c *Circuit) Edges() []Edge {
	seen := make(map[Edge]bool)
	var out []Edge
	for _, n := range c.topo {
		for _, f := range n.Fanin {
			e := Edge{From: f.ID, To: n.ID}
			if !seen[e] {
				seen[e] = true
				out = append(out, e)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// LogicDepth returns the maximum number of gates on any input→output path.
func (c *Circuit) LogicDepth() int {
	depth := make([]int, len(c.Nodes))
	maxDepth := 0
	for _, n := range c.topo {
		d := 0
		for _, f := range n.Fanin {
			if depth[f.ID] > d {
				d = depth[f.ID]
			}
		}
		if n.Kind == KindGate {
			d++
		}
		depth[n.ID] = d
		if d > maxDepth {
			maxDepth = d
		}
	}
	return maxDepth
}

// Clone deep-copies the circuit structure. Cell bindings are shared (the
// library is immutable) but may be swapped per-gate afterwards, which is
// what the size-only incremental compile does.
func (c *Circuit) Clone() *Circuit {
	out := &Circuit{Name: c.Name, Lib: c.Lib}
	out.Nodes = make([]*Node, len(c.Nodes))
	for i, n := range c.Nodes {
		out.Nodes[i] = &Node{
			ID: n.ID, Name: n.Name, Kind: n.Kind, Cell: n.Cell, Flop: n.Flop,
			Pos: n.Pos,
		}
	}
	for i, n := range c.Nodes {
		cn := out.Nodes[i]
		cn.Fanin = make([]*Node, len(n.Fanin))
		for p, f := range n.Fanin {
			cn.Fanin[p] = out.Nodes[f.ID]
		}
		cn.Fanout = make([]*Node, len(n.Fanout))
		for p, f := range n.Fanout {
			cn.Fanout[p] = out.Nodes[f.ID]
		}
	}
	out.Inputs = make([]*Node, len(c.Inputs))
	for i, n := range c.Inputs {
		out.Inputs[i] = out.Nodes[n.ID]
	}
	out.Outputs = make([]*Node, len(c.Outputs))
	for i, n := range c.Outputs {
		out.Outputs[i] = out.Nodes[n.ID]
	}
	out.topo = make([]*Node, len(c.topo))
	for i, n := range c.topo {
		out.topo[i] = out.Nodes[n.ID]
	}
	return out
}

// Validate re-checks structural invariants; it is cheap and intended for
// use in tests and after in-place edits such as gate resizing.
func (c *Circuit) Validate() error {
	for _, n := range c.Nodes {
		switch n.Kind {
		case KindInput:
			if len(n.Fanin) != 0 {
				return fmt.Errorf("netlist: input %q has fanin", n.Name)
			}
		case KindOutput:
			if len(n.Fanin) != 1 {
				return fmt.Errorf("netlist: output %q has %d fanins", n.Name, len(n.Fanin))
			}
			if len(n.Fanout) != 0 {
				return fmt.Errorf("netlist: output %q has fanout", n.Name)
			}
		case KindGate:
			if n.Cell == nil {
				return fmt.Errorf("netlist: gate %q has no cell", n.Name)
			}
			if len(n.Fanin) != n.Cell.Func.Arity() {
				return fmt.Errorf("netlist: gate %q fanin/arity mismatch", n.Name)
			}
		}
	}
	_, err := c.computeTopo()
	return err
}
