package netlist

import (
	"fmt"

	"relatch/internal/cell"
)

// SeqKind classifies nodes of a flip-flop based sequential circuit, the
// form in which benchmarks arrive before conversion to two-phase latches.
type SeqKind int

const (
	SeqPI SeqKind = iota
	SeqPO
	SeqGate
	SeqFF
)

func (k SeqKind) String() string {
	switch k {
	case SeqPI:
		return "pi"
	case SeqPO:
		return "po"
	case SeqGate:
		return "gate"
	case SeqFF:
		return "ff"
	}
	return fmt.Sprintf("seqkind(%d)", int(k))
}

// SeqNode is one element of a flip-flop based design: a primary input or
// output, a combinational gate, or a D flip-flop (single D fanin).
type SeqNode struct {
	ID     int
	Name   string
	Kind   SeqKind
	Cell   *cell.Cell
	Fanin  []*SeqNode
	Fanout []*SeqNode

	// Pos is the source position of the declaration this node came from,
	// when the design was parsed from a netlist file; zero otherwise.
	Pos Pos
}

// SeqCircuit is a flip-flop based sequential design.
type SeqCircuit struct {
	Name  string
	Lib   *cell.Library
	Nodes []*SeqNode
	PIs   []*SeqNode
	POs   []*SeqNode
	FFs   []*SeqNode
}

// SeqBuilder constructs a SeqCircuit.
type SeqBuilder struct {
	c      *SeqCircuit
	byName map[string]*SeqNode
	err    error

	autoFile string
	nextPos  Pos
	added    int
}

// NewSeqBuilder starts a flip-flop based circuit.
func NewSeqBuilder(name string, lib *cell.Library) *SeqBuilder {
	return &SeqBuilder{
		c:      &SeqCircuit{Name: name, Lib: lib},
		byName: make(map[string]*SeqNode),
	}
}

// AutoPos stamps every subsequently added node with a synthetic source
// position — the given pseudo-file plus the node's 1-based creation
// ordinal as its line. Programmatic generators (bench profiles, the
// Plasma walker) use it so their circuits carry positions through Cut
// into lint and certification diagnostics, the same as parsed netlists:
// the "line" points back at the generator's emission order.
func (b *SeqBuilder) AutoPos(file string) *SeqBuilder {
	b.autoFile = file
	return b
}

// At sets an explicit source position for the next added node only,
// overriding AutoPos for that node.
func (b *SeqBuilder) At(pos Pos) *SeqBuilder {
	b.nextPos = pos
	return b
}

func (b *SeqBuilder) add(n *SeqNode) *SeqNode {
	if b.err == nil {
		if _, dup := b.byName[n.Name]; dup {
			b.err = fmt.Errorf("netlist: duplicate node name %q", n.Name)
			return n
		}
		b.byName[n.Name] = n
	}
	b.added++
	switch {
	case !b.nextPos.IsZero():
		n.Pos = b.nextPos
		b.nextPos = Pos{}
	case b.autoFile != "":
		n.Pos = Pos{File: b.autoFile, Line: b.added, Col: 1}
	}
	n.ID = len(b.c.Nodes)
	b.c.Nodes = append(b.c.Nodes, n)
	return n
}

// PI adds a primary input.
func (b *SeqBuilder) PI(name string) *SeqNode {
	n := b.add(&SeqNode{Name: name, Kind: SeqPI})
	b.c.PIs = append(b.c.PIs, n)
	return n
}

// PO adds a primary output driven by from.
func (b *SeqBuilder) PO(name string, from *SeqNode) *SeqNode {
	n := b.add(&SeqNode{Name: name, Kind: SeqPO, Fanin: []*SeqNode{from}})
	b.c.POs = append(b.c.POs, n)
	return n
}

// Gate adds a combinational gate.
func (b *SeqBuilder) Gate(name string, c *cell.Cell, fanin ...*SeqNode) *SeqNode {
	if b.err == nil && c == nil {
		b.err = fmt.Errorf("netlist: gate %q has no cell", name)
	}
	if b.err == nil && c != nil && len(fanin) != c.Func.Arity() {
		b.err = fmt.Errorf("netlist: gate %q: cell %s wants %d fanins, got %d",
			name, c.Name, c.Func.Arity(), len(fanin))
	}
	return b.add(&SeqNode{Name: name, Kind: SeqGate, Cell: c, Fanin: fanin})
}

// FF adds a D flip-flop. Its D fanin may be connected later with SetD,
// which permits feedback through registers.
func (b *SeqBuilder) FF(name string) *SeqNode {
	n := b.add(&SeqNode{Name: name, Kind: SeqFF})
	b.c.FFs = append(b.c.FFs, n)
	return n
}

// SetD connects the D input of flip-flop ff to driver from.
func (b *SeqBuilder) SetD(ff, from *SeqNode) {
	if b.err == nil && ff.Kind != SeqFF {
		b.err = fmt.Errorf("netlist: SetD on non-flop %q", ff.Name)
		return
	}
	if b.err == nil && len(ff.Fanin) != 0 {
		b.err = fmt.Errorf("netlist: flop %q already has a D driver", ff.Name)
		return
	}
	ff.Fanin = []*SeqNode{from}
}

// Build finalizes the sequential circuit.
func (b *SeqBuilder) Build() (*SeqCircuit, error) {
	if b.err != nil {
		return nil, b.err
	}
	c := b.c
	for _, n := range c.Nodes {
		if n.Kind == SeqFF && len(n.Fanin) != 1 {
			return nil, fmt.Errorf("netlist: flop %q has no D driver", n.Name)
		}
		for _, f := range n.Fanin {
			if f == nil {
				return nil, fmt.Errorf("netlist: %s %q has a nil fanin", n.Kind, n.Name)
			}
			f.Fanout = append(f.Fanout, n)
		}
	}
	return c, nil
}

// Clone deep-copies the sequential circuit (cells shared, structure
// copied) so retiming transforms can reshape it without touching the
// original.
func (c *SeqCircuit) Clone() *SeqCircuit {
	out := &SeqCircuit{Name: c.Name, Lib: c.Lib}
	out.Nodes = make([]*SeqNode, len(c.Nodes))
	for i, n := range c.Nodes {
		out.Nodes[i] = &SeqNode{ID: n.ID, Name: n.Name, Kind: n.Kind, Cell: n.Cell, Pos: n.Pos}
	}
	for i, n := range c.Nodes {
		cn := out.Nodes[i]
		cn.Fanin = make([]*SeqNode, len(n.Fanin))
		for p, f := range n.Fanin {
			cn.Fanin[p] = out.Nodes[f.ID]
		}
		cn.Fanout = make([]*SeqNode, len(n.Fanout))
		for p, f := range n.Fanout {
			cn.Fanout[p] = out.Nodes[f.ID]
		}
	}
	remap := func(ns []*SeqNode) []*SeqNode {
		out2 := make([]*SeqNode, len(ns))
		for i, n := range ns {
			out2[i] = out.Nodes[n.ID]
		}
		return out2
	}
	out.PIs = remap(c.PIs)
	out.POs = remap(c.POs)
	out.FFs = remap(c.FFs)
	return out
}

// Compact drops the given nodes from the circuit and renumbers IDs.
// Callers are responsible for having rewired all references first.
func (c *SeqCircuit) Compact(dead map[*SeqNode]bool) {
	filter := func(ns []*SeqNode) []*SeqNode {
		out := ns[:0]
		for _, n := range ns {
			if !dead[n] {
				out = append(out, n)
			}
		}
		return out
	}
	c.Nodes = filter(c.Nodes)
	c.FFs = filter(c.FFs)
	c.PIs = filter(c.PIs)
	c.POs = filter(c.POs)
	for i, n := range c.Nodes {
		n.ID = i
	}
}

// GateCount returns the number of combinational gates.
func (c *SeqCircuit) GateCount() int {
	count := 0
	for _, n := range c.Nodes {
		if n.Kind == SeqGate {
			count++
		}
	}
	return count
}

// FFArea returns the total flip-flop area of the design.
func (c *SeqCircuit) FFArea() float64 {
	return float64(len(c.FFs)) * c.Lib.FF.Area
}

// CombArea returns the combinational area of the design.
func (c *SeqCircuit) CombArea() float64 {
	area := 0.0
	for _, n := range c.Nodes {
		if n.Kind == SeqGate {
			area += n.Cell.Area
		}
	}
	return area
}

// TotalArea is the flip-flop based design area reported in Table I.
func (c *SeqCircuit) TotalArea() float64 { return c.FFArea() + c.CombArea() }

// Cut converts the flip-flop design into the cut two-phase form of
// Section III: every flip-flop becomes a fixed master latch (one cloud
// input for its Q side, one cloud output for its D side), and — because a
// two-phase latch design needs every cloud path registered — the primary
// I/O boundary is registered as well, each PI and PO receiving its own
// master latch index. Flop indices 0..len(FFs)-1 are the original flops,
// followed by PI latches and then PO latches.
func (c *SeqCircuit) Cut() (*Circuit, error) {
	b := NewBuilder(c.Name, c.Lib)
	mapped := make([]*Node, len(c.Nodes))
	flopIndex := make(map[*SeqNode]int, len(c.FFs))
	flop := 0

	// Sources first: flop Q sides and registered PIs.
	for _, ff := range c.FFs {
		flopIndex[ff] = flop
		mapped[ff.ID] = b.Input(ff.Name+"/Q", flop)
		mapped[ff.ID].Pos = ff.Pos
		flop++
	}
	for _, pi := range c.PIs {
		mapped[pi.ID] = b.Input(pi.Name, flop)
		mapped[pi.ID].Pos = pi.Pos
		flop++
	}

	// Gates in dependency order: every gate's fanins are flops, PIs or
	// earlier gates, so iterate until all are mapped.
	remaining := make([]*SeqNode, 0, len(c.Nodes))
	for _, n := range c.Nodes {
		if n.Kind == SeqGate {
			remaining = append(remaining, n)
		}
	}
	for len(remaining) > 0 {
		progress := false
		next := remaining[:0]
		for _, g := range remaining {
			ready := true
			for _, f := range g.Fanin {
				if mapped[f.ID] == nil {
					ready = false
					break
				}
			}
			if !ready {
				next = append(next, g)
				continue
			}
			fanin := make([]*Node, len(g.Fanin))
			for i, f := range g.Fanin {
				fanin[i] = mapped[f.ID]
			}
			mapped[g.ID] = b.Gate(g.Name, g.Cell, fanin...)
			mapped[g.ID].Pos = g.Pos
			progress = true
		}
		if !progress {
			return nil, fmt.Errorf("netlist: %s: combinational cycle not broken by flip-flops", c.Name)
		}
		remaining = append([]*SeqNode(nil), next...)
	}

	// Sinks: flop D sides and registered POs.
	for _, ff := range c.FFs {
		d := ff.Fanin[0]
		if mapped[d.ID] == nil {
			return nil, fmt.Errorf("netlist: flop %q D driver %q not mapped", ff.Name, d.Name)
		}
		b.Output(ff.Name+"/D", flopIndex[ff], mapped[d.ID]).Pos = ff.Pos
	}
	for _, po := range c.POs {
		d := po.Fanin[0]
		if mapped[d.ID] == nil {
			return nil, fmt.Errorf("netlist: PO %q driver %q not mapped", po.Name, d.Name)
		}
		b.Output(po.Name, flop, mapped[d.ID]).Pos = po.Pos
		flop++
	}
	return b.Build()
}
