package netlist

import (
	"strings"
	"testing"

	"relatch/internal/cell"
)

func lib() *cell.Library { return cell.Default(1.0) }

// buildDiamond builds i -> a -> {b, c} -> d -> o.
func buildDiamond(t *testing.T) *Circuit {
	t.Helper()
	l := lib()
	b := NewBuilder("diamond", l)
	in := b.Input("i", 0)
	a := b.Gate("a", l.MustCell(cell.FuncBuf, 1), in)
	g1 := b.Gate("b", l.MustCell(cell.FuncInv, 1), a)
	g2 := b.Gate("c", l.MustCell(cell.FuncInv, 1), a)
	d := b.Gate("d", l.MustCell(cell.FuncNand2, 1), g1, g2)
	b.Output("o", 1, d)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBuilderBasics(t *testing.T) {
	c := buildDiamond(t)
	if got := c.GateCount(); got != 4 {
		t.Errorf("GateCount = %d, want 4", got)
	}
	if got := len(c.Inputs); got != 1 {
		t.Errorf("inputs = %d, want 1", got)
	}
	if got := len(c.Outputs); got != 1 {
		t.Errorf("outputs = %d, want 1", got)
	}
	if got := c.FlopCount(); got != 2 {
		t.Errorf("FlopCount = %d, want 2", got)
	}
	a, ok := c.Node("a")
	if !ok {
		t.Fatal("node a missing")
	}
	if len(a.Fanout) != 2 {
		t.Errorf("a fanout = %d, want 2", len(a.Fanout))
	}
	if err := c.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestBuilderRejectsDuplicateNames(t *testing.T) {
	l := lib()
	b := NewBuilder("dup", l)
	b.Input("x", 0)
	b.Input("x", 1)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("expected duplicate-name error, got %v", err)
	}
}

func TestBuilderRejectsArityMismatch(t *testing.T) {
	l := lib()
	b := NewBuilder("arity", l)
	in := b.Input("x", 0)
	b.Gate("g", l.MustCell(cell.FuncNand2, 1), in) // needs 2 fanins
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "fanins") {
		t.Errorf("expected arity error, got %v", err)
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	c := buildDiamond(t)
	pos := make(map[int]int)
	for i, n := range c.Topo() {
		pos[n.ID] = i
	}
	for _, n := range c.Nodes {
		for _, f := range n.Fanin {
			if pos[f.ID] >= pos[n.ID] {
				t.Errorf("topo order violates edge %s -> %s", f.Name, n.Name)
			}
		}
	}
}

func TestFaninFanoutCones(t *testing.T) {
	c := buildDiamond(t)
	o := c.Outputs[0]
	cone := c.FaninCone(o)
	if len(cone) != 6 {
		t.Errorf("fan-in cone of o has %d nodes, want all 6", len(cone))
	}
	bNode, _ := c.Node("b")
	fo := c.FanoutCone(bNode)
	// b, d, o
	if len(fo) != 3 {
		t.Errorf("fan-out cone of b has %d nodes, want 3", len(fo))
	}
}

func TestEdgesStable(t *testing.T) {
	c := buildDiamond(t)
	e1 := c.Edges()
	e2 := c.Edges()
	if len(e1) != 6 {
		t.Errorf("edge count = %d, want 6", len(e1))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("Edges() is not deterministic")
		}
	}
}

func TestLogicDepth(t *testing.T) {
	c := buildDiamond(t)
	if got := c.LogicDepth(); got != 3 {
		t.Errorf("LogicDepth = %d, want 3 (a,b,d)", got)
	}
}

func TestInitialPlacement(t *testing.T) {
	c := buildDiamond(t)
	p := InitialPlacement(c)
	if got := p.SlaveCount(); got != 1 {
		t.Errorf("initial SlaveCount = %d, want 1", got)
	}
	if err := p.Validate(c); err != nil {
		t.Errorf("initial placement invalid: %v", err)
	}
}

func TestPlacementSharing(t *testing.T) {
	c := buildDiamond(t)
	a, _ := c.Node("a")
	bN, _ := c.Node("b")
	cN, _ := c.Node("c")
	p := NewPlacement()
	p.OnEdge[Edge{From: a.ID, To: bN.ID}] = true
	p.OnEdge[Edge{From: a.ID, To: cN.ID}] = true
	// Two latched edges with the same driver share one physical latch.
	if got := p.SlaveCount(); got != 1 {
		t.Errorf("shared SlaveCount = %d, want 1", got)
	}
	if err := p.Validate(c); err != nil {
		t.Errorf("placement should be legal: %v", err)
	}
	if !p.LatchOnEdge(a, bN) || !p.LatchOnEdge(a, cN) {
		t.Error("LatchOnEdge should see both latched edges")
	}
}

func TestPlacementValidateCatchesUnbalancedCut(t *testing.T) {
	c := buildDiamond(t)
	a, _ := c.Node("a")
	bN, _ := c.Node("b")
	p := NewPlacement()
	p.OnEdge[Edge{From: a.ID, To: bN.ID}] = true // path via c has no latch
	if err := p.Validate(c); err == nil {
		t.Error("unbalanced cut accepted")
	}
}

func TestPlacementValidateCatchesDoubleLatch(t *testing.T) {
	c := buildDiamond(t)
	in := c.Inputs[0]
	a, _ := c.Node("a")
	bN, _ := c.Node("b")
	cN, _ := c.Node("c")
	p := NewPlacement()
	p.AtInput[in.ID] = true
	p.OnEdge[Edge{From: a.ID, To: bN.ID}] = true
	p.OnEdge[Edge{From: a.ID, To: cN.ID}] = true
	if err := p.Validate(c); err == nil {
		t.Error("double-latched path accepted")
	}
}

func TestFromRetiming(t *testing.T) {
	c := buildDiamond(t)
	in := c.Inputs[0]
	a, _ := c.Node("a")
	r := map[int]int{in.ID: -1, a.ID: -1}
	p := FromRetiming(c, r)
	// Latches should be on a->b and a->c, one physical latch.
	if got := p.SlaveCount(); got != 1 {
		t.Errorf("SlaveCount = %d, want 1", got)
	}
	if p.AtInput[in.ID] {
		t.Error("input latch should have moved forward")
	}
	if err := p.Validate(c); err != nil {
		t.Errorf("retimed placement invalid: %v", err)
	}
}

func TestFromRetimingIdentity(t *testing.T) {
	c := buildDiamond(t)
	p := FromRetiming(c, nil)
	if !p.AtInput[c.Inputs[0].ID] || len(p.OnEdge) != 0 {
		t.Error("zero retiming must reproduce the initial placement")
	}
}

func TestPlacementClone(t *testing.T) {
	c := buildDiamond(t)
	p := InitialPlacement(c)
	q := p.Clone()
	q.AtInput[c.Inputs[0].ID] = false
	if !p.AtInput[c.Inputs[0].ID] {
		t.Error("Clone is not a deep copy")
	}
}

func TestCombArea(t *testing.T) {
	c := buildDiamond(t)
	want := 0.0
	for _, name := range []string{"a", "b", "c", "d"} {
		n, _ := c.Node(name)
		want += n.Cell.Area
	}
	if got := c.CombArea(); got != want {
		t.Errorf("CombArea = %g, want %g", got, want)
	}
}

func TestSeqCircuitCut(t *testing.T) {
	l := lib()
	b := NewSeqBuilder("seq", l)
	pi := b.PI("x")
	ff1 := b.FF("r1")
	ff2 := b.FF("r2")
	g1 := b.Gate("g1", l.MustCell(cell.FuncNand2, 1), pi, ff1)
	g2 := b.Gate("g2", l.MustCell(cell.FuncInv, 1), g1)
	b.SetD(ff1, g2) // feedback through register
	b.SetD(ff2, g1)
	b.PO("y", g2)
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sc.FFs); got != 2 {
		t.Fatalf("FF count = %d, want 2", got)
	}
	cut, err := sc.Cut()
	if err != nil {
		t.Fatal(err)
	}
	// Inputs: 2 flop Q sides + 1 registered PI = 3.
	if got := len(cut.Inputs); got != 3 {
		t.Errorf("cut inputs = %d, want 3", got)
	}
	// Outputs: 2 flop D sides + 1 registered PO = 3.
	if got := len(cut.Outputs); got != 3 {
		t.Errorf("cut outputs = %d, want 3", got)
	}
	if err := cut.Validate(); err != nil {
		t.Errorf("cut circuit invalid: %v", err)
	}
	// Q and D sides of the same flop share a flop index.
	q, _ := cut.Node("r1/Q")
	d, _ := cut.Node("r1/D")
	if q.Flop != d.Flop {
		t.Errorf("r1 Q/D flop indices differ: %d vs %d", q.Flop, d.Flop)
	}
	if err := InitialPlacement(cut).Validate(cut); err != nil {
		t.Errorf("initial placement on cut circuit invalid: %v", err)
	}
}

func TestSeqCircuitCutBreaksCycles(t *testing.T) {
	l := lib()
	b := NewSeqBuilder("cyc", l)
	ff := b.FF("r")
	g := b.Gate("g", l.MustCell(cell.FuncInv, 1), ff)
	b.SetD(ff, g)
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Cut(); err != nil {
		t.Fatalf("register feedback loop should cut cleanly: %v", err)
	}
}

func TestSeqCircuitCombCycleRejected(t *testing.T) {
	l := lib()
	b := NewSeqBuilder("combcyc", l)
	// Build a purely combinational cycle by hand: g1 <- g2 <- g1.
	g1 := b.Gate("g1", l.MustCell(cell.FuncInv, 1), nil)
	g2 := b.Gate("g2", l.MustCell(cell.FuncInv, 1), g1)
	g1.Fanin[0] = g2
	ff := b.FF("r")
	b.SetD(ff, g2)
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Cut(); err == nil {
		t.Error("combinational cycle not detected")
	}
}

func TestSeqAreas(t *testing.T) {
	l := lib()
	b := NewSeqBuilder("areas", l)
	pi := b.PI("x")
	ff := b.FF("r")
	g := b.Gate("g", l.MustCell(cell.FuncNand2, 1), pi, ff)
	b.SetD(ff, g)
	b.PO("y", g)
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sc.FFArea(), l.FF.Area; got != want {
		t.Errorf("FFArea = %g, want %g", got, want)
	}
	gn := sc.Nodes[2]
	if sc.CombArea() != gn.Cell.Area {
		t.Errorf("CombArea = %g, want %g", sc.CombArea(), gn.Cell.Area)
	}
	if sc.TotalArea() != sc.FFArea()+sc.CombArea() {
		t.Error("TotalArea must be FF + comb")
	}
}

func TestSeqBuilderErrors(t *testing.T) {
	l := lib()
	b := NewSeqBuilder("errs", l)
	ff := b.FF("r")
	pi := b.PI("x")
	b.SetD(ff, pi)
	b.SetD(ff, pi) // second driver
	if _, err := b.Build(); err == nil {
		t.Error("double SetD accepted")
	}

	b2 := NewSeqBuilder("errs2", l)
	b2.FF("r") // never driven
	if _, err := b2.Build(); err == nil {
		t.Error("undriven flop accepted")
	}
}
