package netlist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"relatch/internal/cell"
)

// randomChainFork builds a deterministic family of circuits indexed by a
// seed: an input fans out into two reconverging branches of random
// lengths, exercising sharing, reconvergence and multi-level cuts.
func randomChainFork(seed int64) *Circuit {
	lib := cell.Default(1.0)
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder("quick", lib)
	in := b.Input("i", 0)
	mkChain := func(prefix string, n int, from *Node) *Node {
		cur := from
		for k := 0; k < n; k++ {
			cur = b.Gate(prefix+string(rune('a'+k)), lib.MustCell(cell.FuncBuf, 1), cur)
		}
		return cur
	}
	left := mkChain("l", 1+rng.Intn(4), in)
	right := mkChain("r", 1+rng.Intn(4), in)
	join := b.Gate("j", lib.MustCell(cell.FuncNand2, 1), left, right)
	tail := mkChain("t", rng.Intn(3), join)
	b.Output("o", 1, tail)
	c, err := b.Build()
	if err != nil {
		panic(err)
	}
	return c
}

// Property: FromRetiming of any monotone level-threshold assignment is a
// legal placement, and every legal placement's slave count is at least 1
// and at most the edge count.
func TestQuickFromRetimingLegality(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	err := quick.Check(func(seed int64, cutAt uint8) bool {
		c := randomChainFork(seed % 64)
		// Monotone assignment by longest-path level.
		level := make(map[int]int)
		maxL := 0
		for _, n := range c.Topo() {
			l := 0
			for _, f := range n.Fanin {
				if level[f.ID]+1 > l {
					l = level[f.ID] + 1
				}
			}
			level[n.ID] = l
			if l > maxL {
				maxL = l
			}
		}
		cut := int(cutAt) % (maxL + 1)
		r := map[int]int{}
		for _, n := range c.Topo() {
			if n.Kind != KindOutput && level[n.ID] < cut {
				r[n.ID] = -1
			}
		}
		p := FromRetiming(c, r)
		if err := p.Validate(c); err != nil {
			return false
		}
		sc := p.SlaveCount()
		return sc >= 1 && sc <= len(c.Edges())+len(c.Inputs)
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

// Property: cloning preserves structure and placement legality transfers.
func TestQuickCloneStructure(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100}
	err := quick.Check(func(seed int64) bool {
		c := randomChainFork(seed % 64)
		cl := c.Clone()
		if len(cl.Nodes) != len(c.Nodes) || cl.GateCount() != c.GateCount() {
			return false
		}
		for i, n := range c.Nodes {
			m := cl.Nodes[i]
			if m.Name != n.Name || m.Kind != n.Kind || len(m.Fanin) != len(n.Fanin) || len(m.Fanout) != len(n.Fanout) {
				return false
			}
			if m == n {
				return false // must be distinct objects
			}
		}
		p := InitialPlacement(c)
		return p.Validate(cl) == nil
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

// Property: LatchOnEdge agrees with the placement maps.
func TestQuickLatchOnEdge(t *testing.T) {
	c := randomChainFork(7)
	p := InitialPlacement(c)
	for _, e := range c.Edges() {
		u, v := c.Nodes[e.From], c.Nodes[e.To]
		want := u.Kind == KindInput // initial latches sit at the inputs
		if got := p.LatchOnEdge(u, v); got != want {
			t.Errorf("LatchOnEdge(%s,%s) = %v, want %v", u.Name, v.Name, got, want)
		}
	}
}
