package netlist

import (
	"testing"

	"relatch/internal/cell"
)

// TestSeqBuilderAutoPos checks that programmatically built sequential
// circuits carry synthetic source positions through Cut, the way parsed
// netlists carry real ones: AutoPos stamps creation ordinals, At
// overrides the next node, and the cut cloud inherits every position.
func TestSeqBuilderAutoPos(t *testing.T) {
	l := cell.Default(1.0)
	b := NewSeqBuilder("gen", l).AutoPos("bench://gen")
	pi := b.PI("in")
	ff := b.FF("r1")
	b.At(Pos{File: "custom.v", Line: 42, Col: 7})
	g := b.Gate("g1", l.MustCell(cell.FuncNand2, 1), pi, ff)
	b.SetD(ff, g)
	b.PO("out", g)
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	for _, n := range sc.Nodes {
		if n.Pos.IsZero() {
			t.Errorf("node %q has no position", n.Name)
		}
	}
	if got := sc.Nodes[0].Pos; got.File != "bench://gen" || got.Line != 1 {
		t.Errorf("first node pos = %v, want bench://gen:1", got)
	}
	if got := sc.Nodes[1].Pos; got.Line != 2 {
		t.Errorf("second node line = %d, want creation ordinal 2", got.Line)
	}
	if got := g.Pos; got != (Pos{File: "custom.v", Line: 42, Col: 7}) {
		t.Errorf("At override not applied: %v", got)
	}
	// At applies to one node only; the PO falls back to AutoPos.
	if got := sc.POs[0].Pos; got.File != "bench://gen" {
		t.Errorf("PO pos = %v, want AutoPos fallback", got)
	}

	cut, err := sc.Cut()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range cut.Nodes {
		if n.Pos.IsZero() {
			t.Errorf("cut node %q lost its position", n.Name)
		}
	}
	gc, ok := cut.Node("g1")
	if !ok {
		t.Fatal("g1 missing from cut")
	}
	if gc.Pos.File != "custom.v" {
		t.Errorf("cut gate pos = %v, want custom.v carried through", gc.Pos)
	}
}

// TestSeqBuilderNoPosByDefault pins the zero-value behavior: without
// AutoPos/At nothing is stamped (parsed circuits set positions
// explicitly and must not be overwritten by ordinals).
func TestSeqBuilderNoPosByDefault(t *testing.T) {
	l := cell.Default(1.0)
	b := NewSeqBuilder("plain", l)
	pi := b.PI("in")
	b.PO("out", pi)
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range sc.Nodes {
		if !n.Pos.IsZero() {
			t.Errorf("node %q unexpectedly has position %v", n.Name, n.Pos)
		}
	}
}
