package netlist

import (
	"fmt"
	"sort"
)

// Placement records where the slave latches sit in the cut cloud. A slave
// latch can sit either directly at a cloud input (its initial position, at
// the output of the master latch) or on an internal edge after retiming.
//
// Latch sharing follows Leiserson-Saxe: one physical latch at the output
// of driver u serves every latched fanout edge of u, so the physical latch
// count is the number of distinct latched drivers (plus latched inputs,
// where the "driver" is the master latch itself).
type Placement struct {
	// AtInput marks cloud inputs whose slave latch is still at the
	// master output (the position before retiming).
	AtInput map[int]bool
	// OnEdge marks internal edges carrying a slave latch.
	OnEdge map[Edge]bool
}

// NewPlacement returns an empty placement.
func NewPlacement() *Placement {
	return &Placement{AtInput: make(map[int]bool), OnEdge: make(map[Edge]bool)}
}

// InitialPlacement returns the pre-retiming placement: one slave latch at
// every cloud input, per Section III ("slave latches before retiming are
// at the inputs of the circuit").
func InitialPlacement(c *Circuit) *Placement {
	p := NewPlacement()
	for _, in := range c.Inputs {
		p.AtInput[in.ID] = true
	}
	return p
}

// Clone deep-copies the placement.
func (p *Placement) Clone() *Placement {
	q := NewPlacement()
	for id, v := range p.AtInput {
		q.AtInput[id] = v
	}
	for e, v := range p.OnEdge {
		q.OnEdge[e] = v
	}
	return q
}

// SlaveCount returns the number of physical slave latches, with fanout
// sharing: one latch per latched input plus one per distinct driver node
// with at least one latched fanout edge.
func (p *Placement) SlaveCount() int {
	count := 0
	for _, latched := range p.AtInput {
		if latched {
			count++
		}
	}
	drivers := make(map[int]bool)
	for e, latched := range p.OnEdge {
		if latched {
			drivers[e.From] = true
		}
	}
	return count + len(drivers)
}

// LatchedDrivers returns the IDs of nodes that carry a physical slave
// latch at their output (including latched inputs), sorted.
func (p *Placement) LatchedDrivers() []int {
	set := make(map[int]bool)
	for id, latched := range p.AtInput {
		if latched {
			set[id] = true
		}
	}
	for e, latched := range p.OnEdge {
		if latched {
			set[e.From] = true
		}
	}
	out := make([]int, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// LatchOnEdge reports whether a signal travelling from node u to node v
// crosses a slave latch, counting a latch at input u as on all of u's
// fanout edges.
func (p *Placement) LatchOnEdge(u, v *Node) bool {
	if u.Kind == KindInput && p.AtInput[u.ID] {
		return true
	}
	return p.OnEdge[Edge{From: u.ID, To: v.ID}]
}

// PathLatchUnset marks nodes unreachable from any cloud input in the
// bounds returned by PathLatchBounds.
const PathLatchUnset = -1

// PathLatchBounds runs a single topological pass computing, for every
// node, the minimum and maximum number of slave latches crossed on any
// input→node path under this placement. Unreachable nodes hold
// PathLatchUnset in both slices. The topological order is recomputed
// (rather than read from the Build-time cache) so the pass stays sound
// after in-place edits; a combinational cycle surfaces as an error.
//
// This is the single implementation of the Section III path-latch
// invariant: Placement.Validate and the lint double-latch and
// unbalanced-cut rules all interpret these bounds.
func (p *Placement) PathLatchBounds(c *Circuit) (minL, maxL []int, err error) {
	if p == nil {
		return nil, nil, fmt.Errorf("netlist: nil placement")
	}
	topo, err := c.computeTopo()
	if err != nil {
		return nil, nil, err
	}
	minL = make([]int, len(c.Nodes))
	maxL = make([]int, len(c.Nodes))
	for i := range minL {
		minL[i], maxL[i] = PathLatchUnset, PathLatchUnset
	}
	for _, n := range topo {
		if n.Kind == KindInput {
			minL[n.ID], maxL[n.ID] = 0, 0
			if p.AtInput[n.ID] {
				minL[n.ID], maxL[n.ID] = 1, 1
			}
			continue
		}
		for _, f := range n.Fanin {
			if minL[f.ID] == PathLatchUnset {
				continue // unreachable fanin contributes no path
			}
			lat := 0
			if p.OnEdge[Edge{From: f.ID, To: n.ID}] {
				lat = 1
			}
			lo, hi := minL[f.ID]+lat, maxL[f.ID]+lat
			if minL[n.ID] == PathLatchUnset || lo < minL[n.ID] {
				minL[n.ID] = lo
			}
			if hi > maxL[n.ID] {
				maxL[n.ID] = hi
			}
		}
	}
	return minL, maxL, nil
}

// Validate checks retiming legality per Section III: every path from a
// cloud input to a cloud output must cross exactly one slave latch. The
// bounds come from PathLatchBounds, the shared implementation of the
// invariant.
func (p *Placement) Validate(c *Circuit) error {
	minL, maxL, err := p.PathLatchBounds(c)
	if err != nil {
		return err
	}
	for _, n := range c.Nodes {
		if n.Kind == KindInput {
			continue
		}
		for _, f := range n.Fanin {
			if f != nil && minL[f.ID] == PathLatchUnset {
				return fmt.Errorf("netlist: node %q unreachable from inputs", f.Name)
			}
		}
	}
	for _, o := range c.Outputs {
		if minL[o.ID] != 1 || maxL[o.ID] != 1 {
			return fmt.Errorf("netlist: output %q sees between %d and %d slave latches on its paths, want exactly 1",
				o.Name, minL[o.ID], maxL[o.ID])
		}
	}
	return nil
}

// FromRetiming converts a retiming vector r (r[id] ∈ {-1, 0}, indexed by
// node ID; missing entries are 0) into a placement: a cloud input keeps
// its latch when r(input)=0, and an internal edge (u,v) receives a latch
// when r(v)−r(u) = 1. This is w_r(e) = w(e) − r(u) + r(v) specialized to
// the initial weights of Section III (w=1 on the host→input edges, 0
// elsewhere, r(host)=0).
func FromRetiming(c *Circuit, r map[int]int) *Placement {
	p := NewPlacement()
	rv := func(n *Node) int { return r[n.ID] }
	for _, in := range c.Inputs {
		if rv(in) == 0 {
			p.AtInput[in.ID] = true
		}
	}
	for _, e := range c.Edges() {
		u, v := c.Nodes[e.From], c.Nodes[e.To]
		if rv(v)-rv(u) == 1 {
			p.OnEdge[e] = true
		}
	}
	return p
}
