// Package report renders the experiment results as aligned text,
// Markdown and CSV tables, in the layout of the paper's Tables I–IX.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid with optional footnotes.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// New creates an empty table.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// widths computes per-column display widths.
func (t *Table) widths() []int {
	w := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		w[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(w) && len(cell) > w[i] {
				w[i] = len(cell)
			}
		}
	}
	return w
}

// String renders the table as aligned plain text.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	w := t.widths()
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w[i], cell)
		}
		b.WriteString("\n")
	}
	line(t.Columns)
	total := 0
	for _, x := range w {
		total += x + 2
	}
	b.WriteString(strings.Repeat("-", total-2) + "\n")
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored Markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells with commas are
// quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
		}
		return s
	}
	row := func(cells []string) {
		out := make([]string, len(cells))
		for i, c := range cells {
			out[i] = esc(c)
		}
		b.WriteString(strings.Join(out, ",") + "\n")
	}
	row(t.Columns)
	for _, r := range t.Rows {
		row(r)
	}
	return b.String()
}

// F formats a float with the given number of decimals.
func F(x float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, x)
}

// I formats an integer.
func I(x int) string { return fmt.Sprintf("%d", x) }

// Impr formats the improvement of "ours" against a baseline in percent,
// the paper's Impr(%) columns: positive when ours is smaller.
func Impr(base, ours float64) string {
	if base == 0 {
		return "n/a"
	}
	return F(100*(base-ours)/base, 2)
}

// ImprValue returns the raw improvement percentage.
func ImprValue(base, ours float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (base - ours) / base
}

// Mean averages a slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
