package report

import (
	"math"
	"strings"
	"testing"
)

func sample() *Table {
	t := New("Demo", "Circuit", "Area", "Impr(%)")
	t.AddRow("s1196", F(376.18, 2), Impr(400, 376.18))
	t.AddRow("s1238", F(334.89, 2))
	t.AddNote("hello %d", 42)
	return t
}

func TestString(t *testing.T) {
	out := sample().String()
	for _, want := range []string{"Demo", "Circuit", "s1196", "376.18", "note: hello 42"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Alignment: all data lines equal prefix width for first column.
	lines := strings.Split(out, "\n")
	if !strings.HasPrefix(lines[1], "Circuit") {
		t.Errorf("header misplaced: %q", lines[1])
	}
}

func TestMarkdown(t *testing.T) {
	out := sample().Markdown()
	if !strings.Contains(out, "| Circuit | Area | Impr(%) |") {
		t.Errorf("bad header:\n%s", out)
	}
	if !strings.Contains(out, "|---|---|---|") {
		t.Errorf("missing separator:\n%s", out)
	}
	if !strings.Contains(out, "*hello 42*") {
		t.Errorf("missing note:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	tab := New("x", "a", "b")
	tab.AddRow(`with,comma`, `with"quote`)
	out := tab.CSV()
	if !strings.Contains(out, `"with,comma"`) {
		t.Errorf("comma not quoted: %s", out)
	}
	if !strings.Contains(out, `"with""quote"`) {
		t.Errorf("quote not escaped: %s", out)
	}
}

func TestShortRowsPadded(t *testing.T) {
	tab := New("x", "a", "b", "c")
	tab.AddRow("only")
	if got := len(tab.Rows[0]); got != 3 {
		t.Errorf("row padded to %d cells, want 3", got)
	}
}

func TestImpr(t *testing.T) {
	if got := Impr(100, 90); got != "10.00" {
		t.Errorf("Impr = %s", got)
	}
	if got := Impr(100, 110); got != "-10.00" {
		t.Errorf("Impr = %s", got)
	}
	if got := Impr(0, 5); got != "n/a" {
		t.Errorf("Impr with zero base = %s", got)
	}
	if v := ImprValue(200, 150); math.Abs(v-25) > 1e-12 {
		t.Errorf("ImprValue = %g", v)
	}
	if v := ImprValue(0, 150); v != 0 {
		t.Errorf("ImprValue zero base = %g", v)
	}
}

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %g", got)
	}
	if got := Mean([]float64{1, 2, 3}); math.Abs(got-2) > 1e-12 {
		t.Errorf("Mean = %g", got)
	}
}

func TestFAndI(t *testing.T) {
	if F(3.14159, 3) != "3.142" || I(7) != "7" {
		t.Error("formatting helpers wrong")
	}
}
