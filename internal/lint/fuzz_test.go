package lint_test

import (
	"context"
	"strings"
	"testing"

	"relatch/internal/cell"
	"relatch/internal/clocking"
	"relatch/internal/lint"
	"relatch/internal/verilog"
)

// FuzzLint drives arbitrary text through parse → cut → lint. Seeded from
// the parser's crasher corpus: any input the parser accepts — however
// pathological — must lint without panicking, and Run must return a
// report, never an error, on a well-formed context.
func FuzzLint(f *testing.F) {
	for _, src := range verilog.CrasherCorpus {
		f.Add(src)
	}
	f.Add(cleanSrc)
	lib := cell.Default(1.0)
	scheme := clocking.Symmetric(1.0)

	f.Fuzz(func(t *testing.T, src string) {
		seq, err := verilog.ParseString(src, lib)
		if err != nil {
			return
		}
		c, err := seq.Cut()
		if err != nil {
			return
		}
		rep, err := lint.Run(context.Background(), lint.Input{
			Circuit: c, Scheme: &scheme, EDLCost: 1.0,
		}, lint.Config{})
		if err != nil {
			t.Fatalf("lint.Run errored on an accepted design: %v\ninput: %q", err, src)
		}
		// Build-accepted circuits are structurally sound by construction:
		// the structural error rules must stay silent on them.
		for _, d := range rep.Diagnostics {
			switch d.Rule {
			case "malformed-structure", "comb-cycle", "undriven-output", "width-mismatch", "multi-driven-net":
				t.Fatalf("structural rule %s fired on a Build-accepted circuit: %v\ninput: %q", d.Rule, d, src)
			}
		}
	})
}

// TestLintCrasherCorpus pins the corpus outside fuzzing mode.
func TestLintCrasherCorpus(t *testing.T) {
	lib := cell.Default(1.0)
	scheme := clocking.Symmetric(1.0)
	for _, src := range verilog.CrasherCorpus {
		seq, err := verilog.ParseString(src, lib)
		if err != nil {
			continue
		}
		c, err := seq.Cut()
		if err != nil {
			continue
		}
		if _, err := lint.Run(context.Background(), lint.Input{
			Circuit: c, Scheme: &scheme, EDLCost: 1.0,
		}, lint.Config{}); err != nil {
			t.Errorf("lint.Run errored on crasher %q: %v", strings.TrimSpace(src), err)
		}
	}
}
