package lint

import (
	"math"

	"relatch/internal/cell"
	"relatch/internal/netlist"
	"relatch/internal/rgraph"
	"relatch/internal/sta"
)

// maxEDLCost bounds the error-detecting overhead factor far below the
// point where its Scale-multiplied integer form could overflow the flow
// solver's magnitude budget.
const maxEDLCost = 1e9

// registry is the rule catalogue, in execution order: structural rules
// first (later rules gate on their outcome through the context flags),
// then placement rules, then the timing-backed previews.
var registry = []Rule{
	{
		ID:       "malformed-structure",
		Severity: SeverityError,
		Doc:      "node list, IDs, kinds and fanin pointers are internally consistent",
		Check:    checkMalformedStructure,
	},
	{
		ID:       "comb-cycle",
		Severity: SeverityError,
		Doc:      "no combinational cycles",
		Check:    checkCombCycle,
	},
	{
		ID:       "multi-driven-net",
		Severity: SeverityError,
		Doc:      "every net has a single driver",
		Check:    checkMultiDriven,
	},
	{
		ID:       "undriven-output",
		Severity: SeverityError,
		Doc:      "every primary output has a driver",
		Check:    checkUndrivenOutput,
	},
	{
		ID:       "width-mismatch",
		Severity: SeverityError,
		Doc:      "gate fanin counts match their cell's arity",
		Check:    checkWidthMismatch,
	},
	{
		ID:       "zero-delay-cell",
		Severity: SeverityError,
		Doc:      "cell delay tables are complete, finite and positive",
		Check:    checkZeroDelayCell,
	},
	{
		ID:       "floating-net",
		Severity: SeverityWarning,
		Doc:      "no net is left undriven into nothing (node without fanout)",
		Check:    checkFloatingNet,
	},
	{
		ID:       "dead-cone",
		Severity: SeverityWarning,
		Doc:      "no logic cone is unreachable from every primary output",
		Check:    checkDeadCone,
	},
	{
		ID:       "double-latch",
		Severity: SeverityError,
		Doc:      "no input→output path crosses more than one slave latch",
		Check:    checkDoubleLatch,
	},
	{
		ID:       "unbalanced-cut",
		Severity: SeverityError,
		Doc:      "every input→output path crosses the same single slave latch count",
		Check:    checkUnbalancedCut,
	},
	{
		ID:       "resiliency-window",
		Severity: SeverityWarning,
		Doc:      "preview of masters whose arrival lands in the resiliency window",
		Check:    checkResiliencyWindow,
	},
	{
		ID:       "flow-conservation",
		Severity: SeverityError,
		Doc:      "the retiming LP's flow dual passes the solver admission checks",
		Check:    checkFlowConservation,
	},
}

func checkMalformedStructure(cx *Context, r Rule) []Diagnostic {
	var out []Diagnostic
	for _, is := range cx.issues {
		out = append(out, r.at(cx, is.node, "%s", is.msg))
	}
	return out
}

func checkCombCycle(cx *Context, r Rule) []Diagnostic {
	var out []Diagnostic
	for i, nd := range cx.C.Nodes {
		if nd != nil && cx.inCycle[i] {
			out = append(out, r.at(cx, nd, "%s %q is part of a combinational cycle", nd.Kind, nd.Name))
		}
	}
	return out
}

func checkMultiDriven(cx *Context, r Rule) []Diagnostic {
	var out []Diagnostic
	seen := make(map[string]bool, len(cx.C.Nodes))
	for _, nd := range cx.C.Nodes {
		if nd == nil {
			continue
		}
		if seen[nd.Name] {
			out = append(out, r.at(cx, nd, "net %q has more than one driver", nd.Name))
		}
		seen[nd.Name] = true
		if nd.Kind == netlist.KindOutput && len(nd.Fanin) > 1 {
			out = append(out, r.at(cx, nd, "output %q is driven by %d nets, want 1", nd.Name, len(nd.Fanin)))
		}
	}
	return out
}

func checkUndrivenOutput(cx *Context, r Rule) []Diagnostic {
	var out []Diagnostic
	for _, nd := range cx.C.Nodes {
		if nd != nil && nd.Kind == netlist.KindOutput && len(nd.Fanin) == 0 {
			out = append(out, r.at(cx, nd, "output %q has no driver", nd.Name))
		}
	}
	return out
}

func checkWidthMismatch(cx *Context, r Rule) []Diagnostic {
	var out []Diagnostic
	for _, nd := range cx.C.Nodes {
		if nd == nil || nd.Kind != netlist.KindGate || nd.Cell == nil {
			continue
		}
		if want := nd.Cell.Func.Arity(); len(nd.Fanin) != want {
			out = append(out, r.at(cx, nd, "gate %q has %d fanins, cell %s wants %d",
				nd.Name, len(nd.Fanin), nd.Cell.Name, want))
		}
	}
	return out
}

func checkZeroDelayCell(cx *Context, r Rule) []Diagnostic {
	var out []Diagnostic
	// One diagnostic per offending cell, anchored at its first user: a
	// bad cell shared by hundreds of gates is one problem, not hundreds.
	seen := make(map[*cell.Cell]bool)
	bad := func(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) || v < 0 }
	for _, nd := range cx.C.Nodes {
		if nd == nil || nd.Kind != netlist.KindGate || nd.Cell == nil || seen[nd.Cell] {
			continue
		}
		c := nd.Cell
		seen[c] = true
		arity := c.Func.Arity()
		if len(c.IntrinsicRise) != arity || len(c.IntrinsicFall) != arity {
			out = append(out, r.at(cx, nd, "cell %s delay table has %d/%d pin entries for arity %d",
				c.Name, len(c.IntrinsicRise), len(c.IntrinsicFall), arity))
			continue
		}
		if bad(c.Resistance) || bad(c.SlewFactor) {
			out = append(out, r.at(cx, nd, "cell %s has invalid load/slew coefficients (R=%g, S=%g)",
				c.Name, c.Resistance, c.SlewFactor))
		}
		for pin := 0; pin < arity; pin++ {
			rise, fall := c.IntrinsicRise[pin], c.IntrinsicFall[pin]
			switch {
			case bad(rise) || bad(fall):
				out = append(out, r.at(cx, nd, "cell %s pin %d has negative or non-finite delay (rise=%g, fall=%g)",
					c.Name, pin, rise, fall))
			case rise == 0 && fall == 0:
				out = append(out, r.at(cx, nd, "cell %s pin %d has zero delay", c.Name, pin))
			}
		}
	}
	return out
}

func checkFloatingNet(cx *Context, r Rule) []Diagnostic {
	var out []Diagnostic
	for i, nd := range cx.C.Nodes {
		if nd == nil || nd.Kind == netlist.KindOutput {
			continue
		}
		if len(cx.fanout[i]) == 0 {
			out = append(out, r.at(cx, nd, "%s %q drives nothing", nd.Kind, nd.Name))
		}
	}
	return out
}

func checkDeadCone(cx *Context, r Rule) []Diagnostic {
	var out []Diagnostic
	for i, nd := range cx.C.Nodes {
		if nd == nil || nd.Kind == netlist.KindOutput {
			continue
		}
		// Floating nodes (no fanout at all) are the floating-net rule's
		// business; this one flags connected logic that still reaches no
		// output — a dead cone feeding other dead logic.
		if len(cx.fanout[i]) > 0 && !cx.reaches[i] {
			out = append(out, r.at(cx, nd, "%s %q reaches no primary output (dead logic cone)", nd.Kind, nd.Name))
		}
	}
	return out
}

// pathBounds runs the shared Section III invariant when the structure
// supports it; nil otherwise.
func (cx *Context) pathBounds() (minL, maxL []int, ok bool) {
	if !cx.structOK || !cx.acyclic {
		return nil, nil, false
	}
	minL, maxL, err := cx.placement().PathLatchBounds(cx.C)
	if err != nil {
		return nil, nil, false
	}
	return minL, maxL, true
}

func checkDoubleLatch(cx *Context, r Rule) []Diagnostic {
	_, maxL, ok := cx.pathBounds()
	if !ok {
		return nil
	}
	var out []Diagnostic
	for _, o := range cx.C.Outputs {
		if maxL[o.ID] > 1 {
			out = append(out, r.at(cx, o, "a path to output %q crosses %d slave latches, want exactly 1", o.Name, maxL[o.ID]))
		}
	}
	return out
}

func checkUnbalancedCut(cx *Context, r Rule) []Diagnostic {
	minL, maxL, ok := cx.pathBounds()
	if !ok {
		return nil
	}
	var out []Diagnostic
	for _, o := range cx.C.Outputs {
		switch {
		case minL[o.ID] == netlist.PathLatchUnset:
			// Unreachable output: the undriven-output / dead-cone rules own it.
		case minL[o.ID] != maxL[o.ID]:
			out = append(out, r.at(cx, o, "paths to output %q cross between %d and %d slave latches, want exactly 1",
				o.Name, minL[o.ID], maxL[o.ID]))
		case minL[o.ID] == 0:
			out = append(out, r.at(cx, o, "no path to output %q crosses a slave latch", o.Name))
		}
	}
	return out
}

// timingView builds the latch-aware arrival view behind the timing
// previews; ok is false when prerequisites are missing (no scheme, no
// library, corrupted structure or stale topo cache).
func (cx *Context) timingView() (*sta.Latched, bool) {
	if cx.In.Scheme == nil || cx.C.Lib == nil || !cx.topoCacheOK {
		return nil, false
	}
	if err := cx.In.Scheme.Validate(); err != nil {
		return nil, false
	}
	t, err := sta.AnalyzeChecked(cx.C, cx.staOptions())
	if err != nil {
		return nil, false
	}
	return sta.AnalyzeLatched(t, cx.placement(), *cx.In.Scheme, cx.C.Lib.BaseLatch), true
}

func checkResiliencyWindow(cx *Context, r Rule) []Diagnostic {
	la, ok := cx.timingView()
	if !ok {
		return nil
	}
	var out []Diagnostic
	for _, o := range la.WindowMasters() {
		out = append(out, r.at(cx, o,
			"arrival %.4g at master %q lands in the resiliency window at period %.4g — the master would need error detection",
			la.EndpointArrival(o), o.Name, cx.In.Scheme.Period()))
	}
	return out
}

func checkFlowConservation(cx *Context, r Rule) []Diagnostic {
	if cx.In.Scheme == nil || cx.C.Lib == nil || !cx.topoCacheOK {
		return nil
	}
	if err := cx.In.Scheme.Validate(); err != nil {
		return nil
	}
	c := cx.In.EDLCost
	if math.IsNaN(c) || math.IsInf(c, 0) || c < 0 || c > maxEDLCost {
		return []Diagnostic{r.at(cx, nil,
			"EDL cost factor c = %g, want finite, non-negative and at most %g", c, float64(maxEDLCost))}
	}
	t, err := sta.AnalyzeChecked(cx.C, cx.staOptions())
	if err != nil {
		return nil
	}
	g, err := rgraph.Build(cx.C, t, rgraph.Config{
		Scheme:         *cx.In.Scheme,
		Latch:          cx.C.Lib.BaseLatch,
		EDLCost:        cx.In.EDLCost,
		ResilientAware: true,
	})
	if err != nil {
		return []Diagnostic{r.at(cx, nil, "retiming graph construction failed: %v", err)}
	}
	if err := g.PreflightLP(); err != nil {
		return []Diagnostic{r.at(cx, nil, "retiming LP flow dual rejected: %v", err)}
	}
	return nil
}
