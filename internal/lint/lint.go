// Package lint is a rule-based static analyzer for cut clouds and latch
// placements: a pre-flight pass that finds every structural violation up
// front, with file:line diagnostics, instead of burning a flow solve on a
// doomed netlist. The design follows the go vet analyzer idiom — a
// registry of small independent rules, each producing positioned
// diagnostics, with per-rule enable/disable.
//
// Severity policy: a rule is an Error when the G-RAR pipeline cannot
// produce a meaningful result on a circuit that trips it (cycles,
// undriven outputs, malformed cells, illegal placements, unsolvable flow
// duals); it is a Warning when the condition is legal but worth knowing
// (unused logic, masters previewed to need error detection). Only
// error-severity diagnostics are "findings": they gate core.RetimeCtx and
// drive rar's exit code 4. Seed benchmarks legitimately contain floating
// gates and dead cones, so those stay warnings.
package lint

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"relatch/internal/clocking"
	"relatch/internal/netlist"
	"relatch/internal/obs"
	"relatch/internal/sta"
)

// Severity grades a diagnostic.
type Severity int

const (
	// SeverityWarning marks conditions that are legal but suspicious.
	SeverityWarning Severity = iota
	// SeverityError marks conditions under which a retiming solve cannot
	// produce a meaningful result.
	SeverityError
)

func (s Severity) String() string {
	if s == SeverityError {
		return "error"
	}
	return "warning"
}

// MarshalJSON encodes the severity as its string form.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// Diagnostic is one finding of one rule.
type Diagnostic struct {
	// Rule is the ID of the rule that produced the diagnostic.
	Rule string `json:"rule"`
	// Severity grades the diagnostic (see the package severity policy).
	Severity Severity `json:"severity"`
	// Message is the human-readable description.
	Message string `json:"message"`
	// Node names the offending node/net; empty for circuit-level findings.
	Node string `json:"node,omitempty"`
	// Pos is the source position of the offending declaration when the
	// circuit was parsed from a file; for circuit-level findings it
	// carries only the source file name.
	Pos netlist.Pos `json:"pos"`
}

func (d Diagnostic) String() string {
	loc := d.Pos.String()
	if loc == "" {
		loc = "-"
	}
	if d.Node != "" {
		return fmt.Sprintf("%s: %s: %s [%s] (%s)", loc, d.Severity, d.Message, d.Rule, d.Node)
	}
	return fmt.Sprintf("%s: %s: %s [%s]", loc, d.Severity, d.Message, d.Rule)
}

// Rule is one registered check.
type Rule struct {
	// ID identifies the rule in diagnostics, Config.Disabled and docs.
	ID string
	// Severity applies to every diagnostic the rule produces.
	Severity Severity
	// Doc is a one-line description for usage text and DESIGN.md.
	Doc string
	// Check inspects the context and returns diagnostics. A rule whose
	// prerequisites are missing (no scheme, corrupted structure) returns
	// nil rather than guessing.
	Check func(*Context, Rule) []Diagnostic
}

// at builds a diagnostic of this rule anchored at node n (nil for
// circuit-level findings, which carry the input's source file instead).
func (r Rule) at(cx *Context, n *netlist.Node, format string, args ...any) Diagnostic {
	d := Diagnostic{Rule: r.ID, Severity: r.Severity, Message: fmt.Sprintf(format, args...)}
	if n != nil {
		d.Node = n.Name
		d.Pos = n.Pos
	}
	if d.Pos.IsZero() {
		d.Pos = netlist.Pos{File: cx.In.File}
	}
	return d
}

// Rules returns the registered catalogue in registration order.
func Rules() []Rule {
	out := make([]Rule, len(registry))
	copy(out, registry)
	return out
}

// Input is the subject of a lint run.
type Input struct {
	// Circuit is the cut cloud to analyze. Required.
	Circuit *netlist.Circuit
	// Placement is the slave-latch placement to check; nil means the
	// pre-retiming initial placement (one latch at every cloud input).
	Placement *netlist.Placement
	// Scheme enables the timing-backed rules (resiliency-window preview,
	// flow-conservation pre-check); nil skips them.
	Scheme *clocking.Scheme
	// StaOptions overrides the timing options of the timing-backed rules;
	// nil derives sta.DefaultOptions from the circuit's library.
	StaOptions *sta.Options
	// EDLCost is the error-detecting overhead factor checked by the
	// flow-conservation rule.
	EDLCost float64
	// File is the source path of the netlist, attached to circuit-level
	// diagnostics that have no node to point at.
	File string
}

// Config tunes a run.
type Config struct {
	// Disabled skips rules by ID. Unknown IDs are rejected by Validate.
	Disabled map[string]bool
	// ErrorsOnly restricts the run to error-severity rules — the cheap
	// pre-flight gate configuration used by core.RetimeCtx.
	ErrorsOnly bool
}

// Validate rejects configs naming unknown rules (flag-typo guard).
func (cfg Config) Validate() error {
	known := make(map[string]bool, len(registry))
	for _, r := range registry {
		known[r.ID] = true
	}
	for id := range cfg.Disabled {
		if !known[id] {
			return fmt.Errorf("lint: unknown rule %q", id)
		}
	}
	return nil
}

// Report is the outcome of a run.
type Report struct {
	// Circuit is the analyzed circuit's name.
	Circuit string `json:"circuit"`
	// Diagnostics lists every diagnostic in rule-registration order.
	Diagnostics []Diagnostic `json:"diagnostics"`
}

// Counts returns the number of error- and warning-severity diagnostics.
func (r *Report) Counts() (errs, warns int) {
	for _, d := range r.Diagnostics {
		if d.Severity == SeverityError {
			errs++
		} else {
			warns++
		}
	}
	return errs, warns
}

// Findings returns the error-severity diagnostics — the subset that
// gates a retiming run and drives exit code 4.
func (r *Report) Findings() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diagnostics {
		if d.Severity == SeverityError {
			out = append(out, d)
		}
	}
	return out
}

// ErrFindings is the sentinel wrapped by Report.Err when error-severity
// findings are present; callers branch on it with errors.Is (cmd/rar maps
// it to exit code 4).
var ErrFindings = errors.New("lint: findings")

// Err returns nil when the report has no error-severity findings, and an
// error wrapping ErrFindings otherwise.
func (r *Report) Err() error {
	if errs, _ := r.Counts(); errs > 0 {
		return fmt.Errorf("%w: %d error finding(s) in %s", ErrFindings, errs, r.Circuit)
	}
	return nil
}

// WriteText prints one line per diagnostic plus a summary.
func (r *Report) WriteText(w io.Writer) {
	for _, d := range r.Diagnostics {
		fmt.Fprintln(w, d)
	}
	errs, warns := r.Counts()
	fmt.Fprintf(w, "%s: %d error(s), %d warning(s)\n", r.Circuit, errs, warns)
}

// WriteJSON encodes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Run executes every enabled rule over the input and collects the
// diagnostics. It never panics on corrupted circuits: the context
// rebuilds connectivity defensively, structure-dependent rules skip
// themselves when prerequisites fail, and a rule that panics anyway is
// converted into an error. The context bounds the run; cancellation
// between rules surfaces as an error wrapping ctx.Err().
func Run(ctx context.Context, in Input, cfg Config) (rep *Report, err error) {
	if in.Circuit == nil {
		return nil, fmt.Errorf("lint: nil circuit")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sp, ctx := obs.StartSpan(ctx, "lint.run")
	defer func() {
		if rep != nil {
			errs, warns := rep.Counts()
			sp.Add("findings_error", int64(errs))
			sp.Add("findings_warning", int64(warns))
		}
		sp.Fail(err)
		sp.End()
	}()
	cx := newContext(in)
	rep = &Report{Circuit: in.Circuit.Name}
	defer func() {
		if p := recover(); p != nil {
			rep, err = nil, fmt.Errorf("lint: rule panicked: %v", p)
		}
	}()
	for _, r := range registry {
		if cfg.Disabled[r.ID] {
			continue
		}
		if cfg.ErrorsOnly && r.Severity != SeverityError {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		rep.Diagnostics = append(rep.Diagnostics, r.Check(cx, r)...)
		sp.Add("rules_run", 1)
	}
	return rep, nil
}

// structIssue is one structural defect recorded while the context builds
// its defensive view; the malformed-structure rule formats them.
type structIssue struct {
	node *netlist.Node // may be nil (nil slot)
	msg  string
}

// Context is the precomputed view rules share. Connectivity is rebuilt
// from Fanin pointers alone — Fanout, cached topo order and node IDs are
// never trusted, so rules stay sound on circuits corrupted after Build.
type Context struct {
	In Input
	C  *netlist.Circuit

	// index maps a node pointer to its slot in C.Nodes (first occurrence).
	index map[*netlist.Node]int
	// fanout is the derived fanout adjacency, by slot.
	fanout [][]int
	// order is a topological order of slots; partial when cyclic.
	order []int
	// inCycle marks slots left unprocessed by the topological pass.
	inCycle []bool
	// reaches marks slots from which some output node is reachable.
	reaches []bool

	issues []structIssue
	// structOK means no structural issues: node IDs match slots, fanins
	// resolve, kinds are coherent. Placement and timing rules require it.
	structOK bool
	// acyclic means the defensive topological pass processed every node.
	acyclic bool
	// topoCacheOK means the circuit's cached Topo() is still a valid
	// topological order of the current structure; the sta-backed rules
	// require it because sta.Analyze walks the cache.
	topoCacheOK bool
}

func newContext(in Input) *Context {
	c := in.Circuit
	cx := &Context{In: in, C: c}
	n := len(c.Nodes)
	cx.index = make(map[*netlist.Node]int, n)
	for i, nd := range c.Nodes {
		if nd == nil {
			cx.issues = append(cx.issues, structIssue{msg: fmt.Sprintf("nil node at slot %d", i)})
			continue
		}
		if _, dup := cx.index[nd]; dup {
			cx.issues = append(cx.issues, structIssue{node: nd, msg: fmt.Sprintf("node %q appears twice in the node list", nd.Name)})
			continue
		}
		cx.index[nd] = i
		if nd.ID != i {
			cx.issues = append(cx.issues, structIssue{node: nd, msg: fmt.Sprintf("node %q has ID %d at slot %d", nd.Name, nd.ID, i)})
		}
		switch nd.Kind {
		case netlist.KindInput, netlist.KindGate, netlist.KindOutput:
		default:
			cx.issues = append(cx.issues, structIssue{node: nd, msg: fmt.Sprintf("node %q has unknown kind %d", nd.Name, int(nd.Kind))})
		}
		if nd.Kind == netlist.KindInput && len(nd.Fanin) != 0 {
			cx.issues = append(cx.issues, structIssue{node: nd, msg: fmt.Sprintf("input %q has fanin", nd.Name)})
		}
		if nd.Kind == netlist.KindGate && nd.Cell == nil {
			cx.issues = append(cx.issues, structIssue{node: nd, msg: fmt.Sprintf("gate %q has no cell", nd.Name)})
		}
	}
	for _, rooted := range [][]*netlist.Node{c.Inputs, c.Outputs} {
		for _, nd := range rooted {
			if nd == nil {
				cx.issues = append(cx.issues, structIssue{msg: "nil entry in the input/output list"})
			} else if _, ok := cx.index[nd]; !ok {
				cx.issues = append(cx.issues, structIssue{node: nd, msg: fmt.Sprintf("boundary node %q is not in the node list", nd.Name)})
			}
		}
	}

	// Derived fanout + indegrees, from Fanin pointers alone.
	cx.fanout = make([][]int, n)
	indeg := make([]int, n)
	for i, nd := range c.Nodes {
		if nd == nil {
			continue
		}
		for _, f := range nd.Fanin {
			if f == nil {
				cx.issues = append(cx.issues, structIssue{node: nd, msg: fmt.Sprintf("%s %q has a nil fanin", nd.Kind, nd.Name)})
				continue
			}
			j, ok := cx.index[f]
			if !ok {
				cx.issues = append(cx.issues, structIssue{node: nd, msg: fmt.Sprintf("%s %q has a fanin outside the node list", nd.Kind, nd.Name)})
				continue
			}
			if f.Kind == netlist.KindOutput {
				cx.issues = append(cx.issues, structIssue{node: nd, msg: fmt.Sprintf("output %q fans out to %q", f.Name, nd.Name)})
			}
			cx.fanout[j] = append(cx.fanout[j], i)
			indeg[i]++
		}
	}
	cx.structOK = len(cx.issues) == 0

	// Defensive Kahn pass over the derived adjacency.
	live := 0
	queue := make([]int, 0, n)
	for i, nd := range c.Nodes {
		if nd == nil {
			continue
		}
		live++
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	cx.order = make([]int, 0, live)
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		cx.order = append(cx.order, i)
		for _, j := range cx.fanout[i] {
			if indeg[j]--; indeg[j] == 0 {
				queue = append(queue, j)
			}
		}
	}
	cx.acyclic = len(cx.order) == live
	cx.inCycle = make([]bool, n)
	for i, nd := range c.Nodes {
		cx.inCycle[i] = nd != nil && indeg[i] > 0
	}

	// Output reachability, by reverse walk over Fanin.
	cx.reaches = make([]bool, n)
	var stack []int
	for _, o := range c.Outputs {
		if i, ok := cx.index[o]; ok && !cx.reaches[i] {
			cx.reaches[i] = true
			stack = append(stack, i)
		}
	}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range c.Nodes[i].Fanin {
			if f == nil {
				continue
			}
			if j, ok := cx.index[f]; ok && !cx.reaches[j] {
				cx.reaches[j] = true
				stack = append(stack, j)
			}
		}
	}

	// Is the cached topo order still valid for the current structure?
	cx.topoCacheOK = cx.structOK && cx.acyclic && validTopoCache(c, cx.index)
	return cx
}

// validTopoCache reports whether c.Topo() covers every node exactly once
// with all fanins ordered first.
func validTopoCache(c *netlist.Circuit, index map[*netlist.Node]int) bool {
	topo := c.Topo()
	if len(topo) != len(c.Nodes) {
		return false
	}
	pos := make(map[*netlist.Node]int, len(topo))
	for i, nd := range topo {
		if nd == nil {
			return false
		}
		if _, dup := pos[nd]; dup {
			return false
		}
		if _, ok := index[nd]; !ok {
			return false
		}
		pos[nd] = i
	}
	for _, nd := range topo {
		for _, f := range nd.Fanin {
			fp, ok := pos[f]
			if !ok || fp >= pos[nd] {
				return false
			}
		}
	}
	return true
}

// placement returns the placement under check: the supplied one, or the
// pre-retiming initial placement.
func (cx *Context) placement() *netlist.Placement {
	if cx.In.Placement != nil {
		return cx.In.Placement
	}
	return netlist.InitialPlacement(cx.C)
}

// staOptions returns the timing options of the timing-backed rules.
func (cx *Context) staOptions() sta.Options {
	if cx.In.StaOptions != nil {
		return *cx.In.StaOptions
	}
	return sta.DefaultOptions(cx.C.Lib)
}
