package lint_test

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"relatch/internal/bench"
	"relatch/internal/cell"
	"relatch/internal/clocking"
	"relatch/internal/fig4"
	"relatch/internal/lint"
	"relatch/internal/netlist"
	"relatch/internal/sta"
	"relatch/internal/verilog"
)

// cleanSrc is the shared fixture: a two-gate pipeline stage with one
// state register. Every net is used, so a lint of the untouched circuit
// is silent; the per-rule tests corrupt the parsed circuit in place.
const cleanSrc = `module fix(a, b, y);
  input a;
  input b;
  output y;
  wire w;
  nand g1(w, a, b);
  dff r1(clk, q, w);
  nand g2(y, q, b);
endmodule
`

const fixFile = "fix.v"

func parseFix(t *testing.T, src string) *netlist.Circuit {
	t.Helper()
	seq, err := verilog.ParseNamed(strings.NewReader(src), cell.Default(1.0), fixFile)
	if err != nil {
		t.Fatal(err)
	}
	c, err := seq.Cut()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// nodeByPrefix finds the cloud node for a declared name (gate instances
// are flattened into name__N tree nodes).
func nodeByPrefix(t *testing.T, c *netlist.Circuit, prefix string) *netlist.Node {
	t.Helper()
	for _, n := range c.Nodes {
		if n.Name == prefix || strings.HasPrefix(n.Name, prefix+"__") {
			return n
		}
	}
	t.Fatalf("no node with prefix %q", prefix)
	return nil
}

func runLint(t *testing.T, in lint.Input, cfg lint.Config) *lint.Report {
	t.Helper()
	rep, err := lint.Run(context.Background(), in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func diagsFor(rep *lint.Report, rule string) []lint.Diagnostic {
	var out []lint.Diagnostic
	for _, d := range rep.Diagnostics {
		if d.Rule == rule {
			out = append(out, d)
		}
	}
	return out
}

// wantDiag asserts exactly one diagnostic of the rule, anchored at the
// named node with a position in the fixture file.
func wantDiag(t *testing.T, rep *lint.Report, rule, node string) lint.Diagnostic {
	t.Helper()
	ds := diagsFor(rep, rule)
	if len(ds) == 0 {
		t.Fatalf("no %s diagnostic; report:\n%v", rule, rep.Diagnostics)
	}
	for _, d := range ds {
		if d.Node == node {
			if d.Pos.File != fixFile || d.Pos.Line == 0 {
				t.Errorf("%s diagnostic at %q, want a %s position with a line", rule, d.Pos, fixFile)
			}
			return d
		}
	}
	t.Fatalf("%s diagnostics %v name no node %q", rule, ds, node)
	return lint.Diagnostic{}
}

func TestCleanFixtureSilent(t *testing.T) {
	c := parseFix(t, cleanSrc)
	scheme := clocking.Symmetric(1.0)
	rep := runLint(t, lint.Input{Circuit: c, Scheme: &scheme, EDLCost: 1.0, File: fixFile}, lint.Config{})
	if len(rep.Diagnostics) != 0 {
		t.Fatalf("clean fixture produced diagnostics:\n%v", rep.Diagnostics)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("clean fixture Err() = %v", err)
	}
}

func TestRuleMalformedStructure(t *testing.T) {
	c := parseFix(t, cleanSrc)
	g1 := nodeByPrefix(t, c, "g1")
	g1.ID = 42
	rep := runLint(t, lint.Input{Circuit: c, File: fixFile}, lint.Config{})
	wantDiag(t, rep, "malformed-structure", g1.Name)
}

func TestRuleCombCycle(t *testing.T) {
	c := parseFix(t, cleanSrc)
	g1 := nodeByPrefix(t, c, "g1")
	g2 := nodeByPrefix(t, c, "g2")
	g1.Fanin[0] = g2
	g2.Fanin[0] = g1
	rep := runLint(t, lint.Input{Circuit: c, File: fixFile}, lint.Config{})
	d := wantDiag(t, rep, "comb-cycle", g1.Name)
	if d.Severity != lint.SeverityError {
		t.Errorf("comb-cycle severity %v, want error", d.Severity)
	}
}

func TestRuleMultiDrivenNet(t *testing.T) {
	c := parseFix(t, cleanSrc)
	g1 := nodeByPrefix(t, c, "g1")
	g2 := nodeByPrefix(t, c, "g2")
	g2.Name = g1.Name
	rep := runLint(t, lint.Input{Circuit: c, File: fixFile}, lint.Config{})
	wantDiag(t, rep, "multi-driven-net", g1.Name)
}

func TestRuleUndrivenOutput(t *testing.T) {
	c := parseFix(t, cleanSrc)
	po, ok := c.Node("po_y")
	if !ok {
		t.Fatal("no po_y node")
	}
	po.Fanin = nil
	rep := runLint(t, lint.Input{Circuit: c, File: fixFile}, lint.Config{})
	wantDiag(t, rep, "undriven-output", "po_y")
}

func TestRuleWidthMismatch(t *testing.T) {
	c := parseFix(t, cleanSrc)
	g1 := nodeByPrefix(t, c, "g1")
	g1.Fanin = g1.Fanin[:1]
	rep := runLint(t, lint.Input{Circuit: c, File: fixFile}, lint.Config{})
	wantDiag(t, rep, "width-mismatch", g1.Name)
}

func TestRuleZeroDelayCell(t *testing.T) {
	c := parseFix(t, cleanSrc)
	g1 := nodeByPrefix(t, c, "g1")
	cc := *g1.Cell
	cc.IntrinsicRise = []float64{0, 0}
	cc.IntrinsicFall = []float64{0, 0}
	g1.Cell = &cc
	rep := runLint(t, lint.Input{Circuit: c, File: fixFile}, lint.Config{})
	wantDiag(t, rep, "zero-delay-cell", g1.Name)

	// Negative delay is the other face of the same rule.
	c2 := parseFix(t, cleanSrc)
	g := nodeByPrefix(t, c2, "g2")
	cn := *g.Cell
	cn.IntrinsicRise = []float64{-0.1, 0.1}
	cn.IntrinsicFall = []float64{0.1, 0.1}
	g.Cell = &cn
	rep2 := runLint(t, lint.Input{Circuit: c2, File: fixFile}, lint.Config{})
	wantDiag(t, rep2, "zero-delay-cell", g.Name)
}

func TestRuleFloatingNet(t *testing.T) {
	src := `module fix(a, b, c, y);
  input a;
  input b;
  input c;
  output y;
  nand g1(y, a, b);
endmodule
`
	c := parseFix(t, src)
	rep := runLint(t, lint.Input{Circuit: c, File: fixFile}, lint.Config{})
	d := wantDiag(t, rep, "floating-net", "c")
	if d.Severity != lint.SeverityWarning {
		t.Errorf("floating-net severity %v, want warning", d.Severity)
	}
	if err := rep.Err(); err != nil {
		t.Errorf("warnings alone should not be findings, got %v", err)
	}
}

func TestRuleDeadCone(t *testing.T) {
	src := `module fix(a, b, y);
  input a;
  input b;
  output y;
  wire w2;
  wire w3;
  nand g1(y, a, b);
  nand g3(w2, a, b);
  nand g4(w3, w2, w2);
endmodule
`
	c := parseFix(t, src)
	g3 := nodeByPrefix(t, c, "g3")
	rep := runLint(t, lint.Input{Circuit: c, File: fixFile}, lint.Config{})
	wantDiag(t, rep, "dead-cone", g3.Name)
	// g4 drives nothing at all: that is the floating-net rule's finding.
	g4 := nodeByPrefix(t, c, "g4")
	wantDiag(t, rep, "floating-net", g4.Name)
	if ds := diagsFor(rep, "dead-cone"); len(ds) != 1 {
		t.Errorf("dead-cone fired %d times, want 1 (floating nodes excluded): %v", len(ds), ds)
	}
}

func TestRuleDoubleLatch(t *testing.T) {
	c := parseFix(t, cleanSrc)
	g1 := nodeByPrefix(t, c, "g1")
	r1d, ok := c.Node("r1/D")
	if !ok {
		t.Fatal("no r1/D node")
	}
	p := netlist.InitialPlacement(c)
	p.OnEdge[netlist.Edge{From: g1.ID, To: r1d.ID}] = true
	rep := runLint(t, lint.Input{Circuit: c, Placement: p, File: fixFile}, lint.Config{})
	wantDiag(t, rep, "double-latch", "r1/D")
	if ds := diagsFor(rep, "unbalanced-cut"); len(ds) != 0 {
		t.Errorf("balanced double latch also tripped unbalanced-cut: %v", ds)
	}
	// The shared invariant: netlist.Placement.Validate rejects the same
	// placement through the same PathLatchBounds implementation.
	if err := p.Validate(c); err == nil {
		t.Error("Placement.Validate accepted a double-latched placement")
	}
}

func TestRuleUnbalancedCut(t *testing.T) {
	c := parseFix(t, cleanSrc)
	a, ok := c.Node("a")
	if !ok {
		t.Fatal("no input a")
	}
	p := netlist.InitialPlacement(c)
	delete(p.AtInput, a.ID)
	rep := runLint(t, lint.Input{Circuit: c, Placement: p, File: fixFile}, lint.Config{})
	wantDiag(t, rep, "unbalanced-cut", "r1/D")
	if err := p.Validate(c); err == nil {
		t.Error("Placement.Validate accepted an unbalanced placement")
	}
}

func TestRuleResiliencyWindow(t *testing.T) {
	c := parseFix(t, cleanSrc)
	lib := c.Lib
	if lib.BaseLatch.ClkToQ > 1 {
		t.Fatalf("fixture assumes BaseLatch.ClkToQ ≤ 1, got %g", lib.BaseLatch.ClkToQ)
	}
	g1 := nodeByPrefix(t, c, "g1")
	g2 := nodeByPrefix(t, c, "g2")
	// Fixed delays: the po_y path costs 7, the r1/D path 1. With
	// Π = ⟨3,0,4,1⟩ (period 8, window (8,11]), the po_y arrival
	// 3 + ClkToQ + 7 lands in the window; r1/D stays clean.
	scheme := clocking.Scheme{Phi1: 3, Gamma1: 0, Phi2: 4, Gamma2: 1}
	opts := sta.Options{Model: sta.ModelFixed, FixedDelays: map[int]float64{g1.ID: 1, g2.ID: 7}}
	rep := runLint(t, lint.Input{Circuit: c, Scheme: &scheme, StaOptions: &opts, EDLCost: 1, File: fixFile}, lint.Config{})
	d := wantDiag(t, rep, "resiliency-window", "po_y")
	if d.Severity != lint.SeverityWarning {
		t.Errorf("resiliency-window severity %v, want warning", d.Severity)
	}
	if ds := diagsFor(rep, "resiliency-window"); len(ds) != 1 {
		t.Errorf("resiliency-window fired %d times, want 1: %v", len(ds), ds)
	}
}

func TestRuleFlowConservation(t *testing.T) {
	c := parseFix(t, cleanSrc)
	scheme := clocking.Symmetric(1.0)
	rep := runLint(t, lint.Input{Circuit: c, Scheme: &scheme, EDLCost: math.Inf(1), File: fixFile}, lint.Config{})
	ds := diagsFor(rep, "flow-conservation")
	if len(ds) != 1 {
		t.Fatalf("flow-conservation fired %d times, want 1: %v", len(ds), rep.Diagnostics)
	}
	d := ds[0]
	if d.Node != "" {
		t.Errorf("flow-conservation diagnostic anchored at node %q, want circuit level", d.Node)
	}
	if d.Pos.File != fixFile {
		t.Errorf("flow-conservation position %q, want the source file %s", d.Pos, fixFile)
	}
	if err := rep.Err(); !errors.Is(err, lint.ErrFindings) {
		t.Errorf("Err() = %v, want ErrFindings", err)
	}
}

func TestConfigValidateAndDisable(t *testing.T) {
	if err := (lint.Config{Disabled: map[string]bool{"no-such-rule": true}}).Validate(); err == nil {
		t.Error("Validate accepted an unknown rule ID")
	}
	c := parseFix(t, cleanSrc)
	g1 := nodeByPrefix(t, c, "g1")
	g1.Fanin = g1.Fanin[:1]
	rep := runLint(t, lint.Input{Circuit: c, File: fixFile},
		lint.Config{Disabled: map[string]bool{"width-mismatch": true}})
	if ds := diagsFor(rep, "width-mismatch"); len(ds) != 0 {
		t.Errorf("disabled rule still fired: %v", ds)
	}
}

func TestErrorsOnlySkipsWarnings(t *testing.T) {
	src := `module fix(a, b, y);
  input a;
  input b;
  output y;
  nand g1(y, a, a);
endmodule
`
	c := parseFix(t, src) // input b unused → floating-net warning
	rep := runLint(t, lint.Input{Circuit: c, File: fixFile}, lint.Config{ErrorsOnly: true})
	if len(rep.Diagnostics) != 0 {
		t.Fatalf("ErrorsOnly run produced diagnostics: %v", rep.Diagnostics)
	}
}

func TestRunHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := parseFix(t, cleanSrc)
	if _, err := lint.Run(ctx, lint.Input{Circuit: c}, lint.Config{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run under a cancelled context = %v, want context.Canceled", err)
	}
	if _, err := lint.Run(context.Background(), lint.Input{}, lint.Config{}); err == nil {
		t.Fatal("Run accepted a nil circuit")
	}
}

func TestRulesCatalogue(t *testing.T) {
	rules := lint.Rules()
	if len(rules) < 10 {
		t.Fatalf("catalogue has %d rules, want at least 10", len(rules))
	}
	seen := make(map[string]bool)
	for _, r := range rules {
		if r.ID == "" || r.Doc == "" || r.Check == nil {
			t.Errorf("rule %+v is incomplete", r.ID)
		}
		if seen[r.ID] {
			t.Errorf("duplicate rule ID %q", r.ID)
		}
		seen[r.ID] = true
	}
}

func TestReportJSON(t *testing.T) {
	c := parseFix(t, cleanSrc)
	g1 := nodeByPrefix(t, c, "g1")
	g1.Fanin = g1.Fanin[:1]
	rep := runLint(t, lint.Input{Circuit: c, File: fixFile}, lint.Config{})
	var sb strings.Builder
	if err := rep.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"width-mismatch"`, `"severity": "error"`, `"fix.v"`} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("JSON output missing %s:\n%s", want, sb.String())
		}
	}
	var tb strings.Builder
	rep.WriteText(&tb)
	if !strings.Contains(tb.String(), "width-mismatch") {
		t.Errorf("text output missing the rule ID:\n%s", tb.String())
	}
}

// TestSeedBenchmarksNoFindings pins the acceptance criterion: every seed
// benchmark lints finding-free (warnings — floating gates, dead cones,
// window masters — are expected; error findings are not).
func TestSeedBenchmarksNoFindings(t *testing.T) {
	lib := cell.Default(1.0)
	for _, prof := range bench.ISCAS89 {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			c, scheme, err := prof.Build(lib)
			if err != nil {
				t.Fatal(err)
			}
			cfg := lint.Config{}
			if prof.Gates > 1000 {
				// The flow pre-check rebuilds the full retiming graph;
				// bound test time on the big circuits.
				cfg.Disabled = map[string]bool{"flow-conservation": true}
			}
			rep, err := lint.Run(context.Background(), lint.Input{
				Circuit: c, Scheme: &scheme, EDLCost: 1.0,
			}, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if fs := rep.Findings(); len(fs) != 0 {
				t.Fatalf("seed benchmark %s has lint findings:\n%v", prof.Name, fs)
			}
		})
	}
}

// TestFig4NoFindings lints the paper's worked example.
func TestFig4NoFindings(t *testing.T) {
	c := fig4.MustCircuit()
	scheme := fig4.Scheme()
	opts := sta.Options{Model: sta.ModelFixed, FixedDelays: fig4.FixedDelays(c)}
	for _, p := range []*netlist.Placement{nil, fig4.Cut1(c), fig4.Cut2(c)} {
		rep, err := lint.Run(context.Background(), lint.Input{
			Circuit: c, Placement: p, Scheme: &scheme, StaOptions: &opts, EDLCost: fig4.EDLOverhead,
		}, lint.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if fs := rep.Findings(); len(fs) != 0 {
			t.Fatalf("fig4 worked example has lint findings:\n%v", fs)
		}
	}
}
