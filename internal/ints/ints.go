// Package ints holds the shared integer helpers that used to be
// duplicated as per-package locals. Min/max need no helper since Go
// 1.21 — the builtins cover every ordered type — so only the helpers
// the builtins do not provide live here.
package ints

// Abs64 returns |v|. The caller is responsible for v != math.MinInt64
// (the flow layer bounds magnitudes well below that before arithmetic).
func Abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
