package exact

import (
	"testing"

	"relatch/internal/fig4"
	"relatch/internal/rgraph"
	"relatch/internal/sta"
)

func fig4Graph(t *testing.T, aware bool) *rgraph.Graph {
	t.Helper()
	c := fig4.MustCircuit()
	tm := sta.Analyze(c, sta.Options{
		Model:       sta.ModelFixed,
		FixedDelays: fig4.FixedDelays(c),
	})
	g, err := rgraph.Build(c, tm, rgraph.Config{
		Scheme:         fig4.Scheme(),
		Latch:          fig4.ZeroLatch(),
		EDLCost:        fig4.EDLOverhead,
		ResilientAware: aware,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSearchFindsCut2(t *testing.T) {
	g := fig4Graph(t, true)
	best, err := Search(g)
	if err != nil {
		t.Fatal(err)
	}
	// Cut2: 3 slaves + 0 error-detecting = cost 3 in the model (the
	// target master's base latch is in neither side of the model cost).
	if best.Cost != 3 {
		t.Errorf("optimal model cost = %g, want 3", best.Cost)
	}
	// The paper's r-vector must be among the optima; verify its cost.
	want := fig4.MustOptimalRetiming(g.C)
	r := make(map[int]int)
	for _, n := range g.C.Nodes {
		r[n.ID] = want[n.ID]
	}
	if got := ModelCost(g, r); got != best.Cost {
		t.Errorf("paper's retiming costs %g, oracle found %g", got, best.Cost)
	}
}

func TestSearchSlavesFindsCut1(t *testing.T) {
	g := fig4Graph(t, false)
	best, err := SearchSlaves(g)
	if err != nil {
		t.Fatal(err)
	}
	if best.Cost != 2 {
		t.Errorf("minimum slave count = %g, want 2 (Cut1)", best.Cost)
	}
}

func TestEnumerateVisitsOnlyLegal(t *testing.T) {
	g := fig4Graph(t, true)
	count := 0
	err := Enumerate(g, func(r map[int]int) {
		count++
		// Every visited assignment satisfies w_r >= 0 and the region
		// pins: I1 must be retimed, V_n must not.
		for _, n := range g.C.Nodes {
			switch n.Name {
			case "I1":
				if r[n.ID] != -1 {
					t.Fatal("V_m pin violated")
				}
			case "G7", "G8", "O9":
				if r[n.ID] != 0 {
					t.Fatal("V_n pin violated")
				}
			}
		}
		for _, e := range g.C.Edges() {
			if r[e.To]-r[e.From] < 0 {
				t.Fatal("edge weight went negative")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Fatal("no legal assignments visited")
	}
	// Free nodes are V_r = {I2, G3, G4, G5, G6}: at most 2^5 assignments.
	if count > 32 {
		t.Errorf("visited %d assignments, more than the free space allows", count)
	}
}
