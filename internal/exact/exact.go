// Package exact is a brute-force retiming oracle for small circuits: it
// enumerates every legal retiming assignment r ∈ {−1,0}^V and returns the
// one minimizing the paper's objective (slave latches plus c per
// error-detecting master, under the graph model's target classification).
// It exists purely to validate the flow-based solver — property tests
// compare the two on hundreds of random circuits.
package exact

import (
	"fmt"
	"math"

	"relatch/internal/netlist"
	"relatch/internal/rgraph"
)

// Best is the result of an exhaustive search.
type Best struct {
	R    map[int]int
	Cost float64 // slaves + c·(model-ED masters), in latch units
	N    int     // legal assignments examined
}

// maxFreeNodes bounds the enumeration to keep the oracle tractable.
const maxFreeNodes = 22

// Enumerate visits every legal retiming assignment (respecting the
// graph's regions, per-edge legality and w_r ≥ 0) exactly once.
func Enumerate(g *rgraph.Graph, visit func(r map[int]int)) error {
	var free []*netlist.Node
	r := make(map[int]int)
	for _, n := range g.C.Nodes {
		switch {
		case g.Vm[n.ID]:
			r[n.ID] = -1
		case g.Vn[n.ID] || n.Kind == netlist.KindOutput:
			r[n.ID] = 0
		default:
			free = append(free, n)
		}
	}
	if len(free) > maxFreeNodes {
		return fmt.Errorf("exact: %d free nodes exceeds the oracle limit %d", len(free), maxFreeNodes)
	}
	total := 1 << len(free)
	for bits := 0; bits < total; bits++ {
		for i, n := range free {
			if bits>>i&1 == 1 {
				r[n.ID] = -1
			} else {
				r[n.ID] = 0
			}
		}
		if !legal(g, r) {
			continue
		}
		visit(r)
	}
	return nil
}

// Search enumerates legal retimings of the graph's circuit and keeps the
// model-cost optimum: c for every AlwaysED endpoint and for every Target
// endpoint whose cut set g(t) is not fully retimed — the same model the
// LP of Eq. (10) optimizes, so the two must agree exactly.
func Search(g *rgraph.Graph) (*Best, error) {
	best := &Best{Cost: math.Inf(1)}
	err := Enumerate(g, func(r map[int]int) {
		cost := modelCost(g, r)
		best.N++
		if cost < best.Cost {
			best.Cost = cost
			best.R = copyR(r)
		}
	})
	if err != nil {
		return nil, err
	}
	if best.R == nil {
		return nil, fmt.Errorf("exact: no legal retiming exists")
	}
	return best, nil
}

// SearchSlaves returns the minimum physical slave-latch count over all
// legal retimings — the objective of base (resiliency-unaware) min-area
// retiming.
func SearchSlaves(g *rgraph.Graph) (*Best, error) {
	best := &Best{Cost: math.Inf(1)}
	err := Enumerate(g, func(r map[int]int) {
		p := netlist.FromRetiming(g.C, r)
		cost := float64(p.SlaveCount())
		best.N++
		if cost < best.Cost {
			best.Cost = cost
			best.R = copyR(r)
		}
	})
	if err != nil {
		return nil, err
	}
	if best.R == nil {
		return nil, fmt.Errorf("exact: no legal retiming exists")
	}
	return best, nil
}

// legal checks w_r(e) ≥ 0 on every edge (no internal edge may run from a
// stay-put node into a retimed node) and rejects latches on edges the
// timing constraints (6)/(7) forbid.
func legal(g *rgraph.Graph, r map[int]int) bool {
	for _, e := range g.C.Edges() {
		// All in-cloud edges have initial weight 0; the host→input
		// edges (weight 1) satisfy 1 + r(i) ≥ 0 for any r(i) ≥ −1.
		w := -int64(r[e.From]) + int64(r[e.To])
		if w < 0 {
			return false
		}
		if w == 1 && !g.EdgeAllowed(g.C.Nodes[e.From], g.C.Nodes[e.To]) {
			return false
		}
	}
	for _, in := range g.C.Inputs {
		if r[in.ID] == 0 && !g.InputAllowed(in) {
			return false
		}
	}
	return true
}

// ModelCost scores an assignment under the graph model: physical slave
// latches (with fanout sharing) plus c per error-detecting master.
func modelCost(g *rgraph.Graph, r map[int]int) float64 {
	p := netlist.FromRetiming(g.C, r)
	cost := float64(p.SlaveCount())
	for _, o := range g.C.Outputs {
		switch g.Class[o.ID] {
		case rgraph.AlwaysED:
			cost += g.Cfg.EDLCost
		case rgraph.Target:
			if !reclaimed(g, o.ID, r) {
				cost += g.Cfg.EDLCost
			}
		}
	}
	return cost
}

// ModelCost exposes the model scoring for tests.
func ModelCost(g *rgraph.Graph, r map[int]int) float64 { return modelCost(g, r) }

// reclaimed reports whether every gate of g(t) has been retimed through,
// freeing master t from error detection in the model.
func reclaimed(g *rgraph.Graph, target int, r map[int]int) bool {
	for _, gid := range g.GT[target] {
		if r[gid] != -1 {
			return false
		}
	}
	return len(g.GT[target]) > 0
}

func copyR(r map[int]int) map[int]int {
	out := make(map[int]int, len(r))
	for k, v := range r {
		out[k] = v
	}
	return out
}
