// Package vlib implements the virtual-library retiming flows of
// Section V: the base cell library is augmented with an error-detecting
// latch (area scaled by 1+c) and a non-error-detecting latch whose setup
// is extended by the resiliency window, and a conventional synthesis flow
// retimes under those types. The three variants differ in how master
// latches are typed before retiming:
//
//   - NVL-RAR: every master starts non-error-detecting,
//   - EVL-RAR: every master starts error-detecting,
//   - RVL-RAR: near-critical endpoints start error-detecting, the rest
//     normal (the variant the paper finds best).
//
// Because the tool decides latch types separately from retiming — the
// decoupling the paper identifies as the VL approach's weakness — the
// type assignment only reaches the retimer as per-endpoint max-delay
// constraints, and the retimer itself minimizes latch count alone. An
// optional post-retiming step (Section VI-C) swaps latch types by
// measured timing, and a size-only incremental compile fixes residual
// violations.
package vlib

import (
	"context"
	"fmt"
	"sort"
	"time"

	"relatch/internal/clocking"
	"relatch/internal/core"
	"relatch/internal/flow"
	"relatch/internal/netlist"
	"relatch/internal/obs"
	"relatch/internal/rgraph"
	"relatch/internal/sta"
	"relatch/internal/synth"
)

// Variant selects the initial latch-type assignment.
type Variant int

const (
	// NVL types every master non-error-detecting initially.
	NVL Variant = iota
	// EVL types every master error-detecting initially.
	EVL
	// RVL types near-critical endpoints error-detecting, others normal.
	RVL
)

func (v Variant) String() string {
	switch v {
	case NVL:
		return "nvl-rar"
	case EVL:
		return "evl-rar"
	case RVL:
		return "rvl-rar"
	}
	return fmt.Sprintf("vl(%d)", int(v))
}

// Options configures a virtual-library retiming run.
type Options struct {
	Scheme  clocking.Scheme
	EDLCost float64
	Method  flow.Method
	// PostSwap enables the post-retiming latch-type swap; the paper
	// adds it to every VL variant after finding it lifts RVL-RAR's high
	// overhead average improvement from −0.36% to 9.6%.
	PostSwap bool
	// MaxSizingIter caps the incremental compile (0 = automatic).
	MaxSizingIter int
}

// Result is a completed virtual-library retiming run.
type Result struct {
	Variant   Variant
	Circuit   *netlist.Circuit // the sized clone the flow worked on
	Placement *netlist.Placement
	EDMasters map[int]bool

	SlaveCount  int
	MasterCount int
	EDCount     int

	SeqArea   float64
	CombArea  float64
	TotalArea float64

	// Relaxed counts endpoints the flow had to flip to error-detecting
	// to make its type assignment feasible before retiming.
	Relaxed int
	// Swaps counts post-retiming latch-type changes.
	Swaps int
	// Upsized counts gates the incremental compile strengthened.
	Upsized int

	Runtime time.Duration
}

// initialTypes assigns master types per the variant (Section VI-C).
func initialTypes(c *netlist.Circuit, tm *sta.Timing, s clocking.Scheme, v Variant) map[int]bool {
	ed := make(map[int]bool)
	switch v {
	case EVL:
		for _, o := range c.Outputs {
			ed[o.ID] = true
		}
	case NVL:
		// all false
	case RVL:
		for _, o := range tm.NearCritical(s) {
			ed[o.ID] = true
		}
	}
	return ed
}

// Retime runs the virtual-library flow. The input circuit is cloned; the
// clone (possibly resized by the incremental compile) is returned in the
// result.
func Retime(cin *netlist.Circuit, opt Options, variant Variant) (*Result, error) {
	return RetimeCtx(context.Background(), cin, opt, variant)
}

// RetimeCtx is Retime under a context: the repeated flow solves of the
// relax-and-retry loop observe cancellation and deadline expiry.
func RetimeCtx(ctx context.Context, cin *netlist.Circuit, opt Options, variant Variant) (res *Result, err error) {
	start := time.Now()
	var attempts int64
	if cin == nil {
		return nil, fmt.Errorf("vlib: %w: nil circuit", ErrBadInput)
	}
	if err := opt.Scheme.Validate(); err != nil {
		return nil, err
	}
	sp, ctx := obs.StartSpan(ctx, "vlib.retime")
	sp.Attr("variant", variant.String())
	sp.Attr("circuit", cin.Name)
	defer func() {
		if res != nil {
			sp.Add("attempts", attempts)
			sp.Add("relaxed", int64(res.Relaxed))
			sp.Add("swaps", int64(res.Swaps))
			sp.Add("upsized", int64(res.Upsized))
		}
		sp.Fail(err)
		sp.End()
	}()
	c := cin.Clone()
	lib := c.Lib
	staOpt := sta.DefaultOptions(lib)
	tool := synth.New(c, staOpt)
	latch := lib.BaseLatch

	ed := initialTypes(c, tool.Timing(), opt.Scheme, variant)
	res = &Result{Variant: variant, Circuit: c}

	// The tool retimes for minimum latch count under the type-derived
	// max-delay constraints; infeasible type assignments are repaired by
	// flipping the most violating endpoints to error-detecting, the way
	// the commercial flow "fixes timing violations by switching some
	// non-error-detecting latches" (Section V).
	var sol *rgraph.Solution
	for attempt := 0; ; attempt++ {
		attempts++
		g, err := rgraph.Build(c, tool.Timing(), rgraph.Config{
			Scheme:         opt.Scheme,
			Latch:          latch,
			EDLCost:        opt.EDLCost,
			ResilientAware: false,
			// The virtual library rides the commercial tool's own
			// retiming command, which shares the baseline's minimum-
			// perturbation behavior; only the latch-type-derived
			// required times differ.
			MovementPrimary: true,
			Required:        synth.RequiredTimes(c, opt.Scheme, ed),
		})
		if err != nil {
			return nil, fmt.Errorf("vlib: %v: %w", variant, err)
		}
		sol, err = g.SolveCtx(ctx, opt.Method)
		if err == nil {
			break
		}
		if ctx.Err() != nil {
			return nil, fmt.Errorf("vlib: %v: %w", variant, err)
		}
		relaxed := relaxWorst(c, tool.Timing(), opt.Scheme, ed)
		if relaxed == 0 || attempt > len(c.Outputs) {
			return nil, fmt.Errorf("vlib: %v: retiming infeasible even fully error-detecting: %w", variant, err)
		}
		res.Relaxed += relaxed
	}
	p := sol.Placement

	// Post-retiming swap: align types with measured latch-aware timing.
	if opt.PostSwap {
		newED, swaps := synth.LatchTypeSwap(tool.Timing(), p, opt.Scheme, latch, ed)
		ed = newED
		res.Swaps = swaps
	} else {
		// Without the swap the decoupled flow keeps its pre-retiming
		// types, but genuine violations must still be repaired upward
		// (non-ED masters that miss Π become ED — the tool cannot ship
		// a timing violation).
		la := sta.AnalyzeLatched(tool.Timing(), p, opt.Scheme, latch)
		for _, o := range c.Outputs {
			if !ed[o.ID] && la.MustBeED(o) {
				ed[o.ID] = true
				res.Relaxed++
			}
		}
	}

	// Size-only incremental compile against the final required times.
	comp := tool.FixViolations(p, opt.Scheme, latch, ed)
	res.Upsized = comp.Upsized

	// After sizing, re-settle types against ground truth once more when
	// swapping is enabled (sizing can only have improved arrivals).
	if opt.PostSwap {
		newED, swaps := synth.LatchTypeSwap(tool.Timing(), p, opt.Scheme, latch, ed)
		res.Swaps += swaps
		ed = newED
	}

	res.Placement = p
	res.EDMasters = ed
	res.SlaveCount = p.SlaveCount()
	res.MasterCount = c.FlopCount()
	res.EDCount = len(filterTrue(ed))
	res.SeqArea = core.SeqAreaOf(lib, opt.EDLCost, res.SlaveCount, res.MasterCount, res.EDCount)
	res.CombArea = c.CombArea()
	res.TotalArea = res.SeqArea + res.CombArea
	res.Runtime = time.Since(start)
	return res, nil
}

// relaxWorst flips the non-ED endpoint with the worst unlatched arrival
// to error-detecting; returns the number of flips (0 or 1).
func relaxWorst(c *netlist.Circuit, tm *sta.Timing, s clocking.Scheme, ed map[int]bool) int {
	var worst *netlist.Node
	worstArr := 0.0
	for _, o := range c.Outputs {
		if ed[o.ID] {
			continue
		}
		if a := tm.Arrival(o); a > worstArr {
			worstArr = a
			worst = o
		}
	}
	if worst == nil {
		return 0
	}
	ed[worst.ID] = true
	return 1
}

func filterTrue(m map[int]bool) []int {
	var out []int
	for k, v := range m {
		if v {
			out = append(out, k)
		}
	}
	sort.Ints(out)
	return out
}
