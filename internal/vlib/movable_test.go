package vlib

import (
	"testing"

	"relatch/internal/bench"
	"relatch/internal/cell"
	"relatch/internal/clocking"
	"relatch/internal/netlist"
	"relatch/internal/sta"
)

// shiftable builds a design where sliding a master forward rebalances the
// stages: a one-gate stage feeds a flop feeding a five-gate stage whose
// endpoint sits past Π until the flop moves one gate later.
func shiftable(t *testing.T) (*netlist.SeqCircuit, clocking.Scheme) {
	t.Helper()
	lib := cell.Default(1.0)
	b := netlist.NewSeqBuilder("shift", lib)
	pi := b.PI("a")
	d1 := b.Gate("d1", lib.MustCell(cell.FuncBuf, 1), pi)
	ff := b.FF("f1")
	b.SetD(ff, d1)
	cur := ff
	for i := 0; i < 5; i++ {
		cur = b.Gate(nm("c", i), lib.MustCell(cell.FuncBuf, 1), cur)
	}
	b.PO("y", cur)
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cut, err := sc.Cut()
	if err != nil {
		t.Fatal(err)
	}
	// Place Π between the 4-gate and 5-gate stage delays so exactly one
	// forward master move clears the near-critical endpoint.
	tm := sta.Analyze(cut, sta.DefaultOptions(lib))
	worst := 0.0
	for _, o := range cut.Outputs {
		if a := tm.Arrival(o); a > worst {
			worst = a
		}
	}
	return sc, clocking.Symmetric(worst * 1.28) // Π ≈ 0.9·worst
}

func nm(p string, i int) string { return p + string(rune('0'+i)) }

func TestForwardMoveRebalancesStages(t *testing.T) {
	sc, scheme := shiftable(t)
	res, err := RetimeMovableMaster(sc, scheme, Options{Scheme: scheme, EDLCost: 2, PostSwap: true}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.Moves == 0 {
		t.Fatal("expected at least one accepted master move")
	}
	// State-preserving moves keep the register count.
	if res.Movable.MasterCount != res.Fixed.MasterCount {
		t.Errorf("movable masters %d differ from fixed %d; single-input moves must preserve the count",
			res.Movable.MasterCount, res.Fixed.MasterCount)
	}
	if res.Movable.EDCount > res.Fixed.EDCount {
		t.Errorf("the accepted move should not add error detection: %d -> %d",
			res.Fixed.EDCount, res.Movable.EDCount)
	}
	if err := res.Movable.Placement.Validate(res.Movable.Circuit); err != nil {
		t.Fatal(err)
	}
}

func TestApplyMoveBackward(t *testing.T) {
	lib := cell.Default(1.0)
	b := netlist.NewSeqBuilder("back", lib)
	pi := b.PI("a")
	g := b.Gate("g", lib.MustCell(cell.FuncInv, 1), pi)
	f := b.FF("f")
	b.SetD(f, g)
	out := b.Gate("o1", lib.MustCell(cell.FuncInv, 1), f)
	b.PO("y", out)
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var gate *netlist.SeqNode
	for _, n := range sc.Nodes {
		if n.Name == "g" {
			gate = n
		}
	}
	if !backwardMovable(gate) {
		t.Fatal("single-input g should be backward movable")
	}
	if err := applyMove(sc, gate.ID, false); err != nil {
		t.Fatal(err)
	}
	// The output flop became an input flop; the count is preserved.
	if got := len(sc.FFs); got != 1 {
		t.Errorf("FFs = %d, want 1", got)
	}
	// The flop now sits before g: its D driver is the primary input.
	if sc.FFs[0].Fanin[0].Kind != netlist.SeqPI {
		t.Errorf("moved flop should capture the primary input, got %v", sc.FFs[0].Fanin[0].Kind)
	}
	if _, err := sc.Cut(); err != nil {
		t.Fatalf("moved circuit does not cut: %v", err)
	}
}

func TestMultiInputGatesAreNotMovable(t *testing.T) {
	lib := cell.Default(1.0)
	b := netlist.NewSeqBuilder("multi", lib)
	f1 := b.FF("f1")
	f2 := b.FF("f2")
	pi := b.PI("a")
	g := b.Gate("g", lib.MustCell(cell.FuncNand2, 1), f1, f2)
	b.SetD(f1, b.Gate("d1", lib.MustCell(cell.FuncBuf, 1), pi))
	b.SetD(f2, b.Gate("d2", lib.MustCell(cell.FuncInv, 1), pi))
	ff3 := b.FF("f3")
	b.SetD(ff3, g)
	b.PO("y", ff3)
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var gate *netlist.SeqNode
	for _, n := range sc.Nodes {
		if n.Name == "g" {
			gate = n
		}
	}
	// Merging f1/f2 (forward) or splitting f3 (backward) across the
	// 2-input NAND would change the state encoding: both are barred.
	if forwardMovable(gate) {
		t.Error("2-input gate must not be forward movable")
	}
	if backwardMovable(gate) {
		t.Error("2-input gate must not be backward movable")
	}
}

func TestMovableOnProfile(t *testing.T) {
	lib := cell.Default(1.0)
	p, _ := bench.ProfileByName("s1196")
	sc, err := p.BuildSeq(lib)
	if err != nil {
		t.Fatal(err)
	}
	cut, err := sc.Cut()
	if err != nil {
		t.Fatal(err)
	}
	scheme := bench.SchemeFor(cut, sta.DefaultOptions(lib))
	res, err := RetimeMovableMaster(sc, scheme, Options{Scheme: scheme, EDLCost: 1, PostSwap: true}, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Table IX's observation: little to no gain either way, but both
	// runs must be legal and comparable.
	if res.Fixed == nil || res.Movable == nil {
		t.Fatal("missing results")
	}
	ratio := res.Movable.TotalArea / res.Fixed.TotalArea
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("movable/fixed area ratio %g outside the little-to-no-gain band", ratio)
	}
}
