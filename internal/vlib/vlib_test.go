package vlib

import (
	"math/rand"
	"testing"

	"relatch/internal/bench"
	"relatch/internal/cell"
	"relatch/internal/core"
	"relatch/internal/netlist"
	"relatch/internal/sta"
)

func corpus(t *testing.T, n int) []*netlist.Circuit {
	t.Helper()
	lib := cell.Default(1.0)
	var out []*netlist.Circuit
	for seed := int64(0); seed < int64(n); seed++ {
		rng := rand.New(rand.NewSource(seed + 900))
		c, err := bench.RandomCloud("vl", lib, rng, bench.RandomSpec{
			Inputs:   3 + rng.Intn(3),
			Outputs:  2 + rng.Intn(3),
			Gates:    20 + rng.Intn(40),
			Locality: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, c)
	}
	return out
}

func TestVariantsRunAndAreLegal(t *testing.T) {
	for i, c := range corpus(t, 8) {
		scheme := bench.SchemeFor(c, sta.DefaultOptions(c.Lib))
		for _, v := range []Variant{NVL, EVL, RVL} {
			res, err := Retime(c, Options{Scheme: scheme, EDLCost: 1, PostSwap: true}, v)
			if err != nil {
				t.Fatalf("circuit %d %v: %v", i, v, err)
			}
			if err := res.Placement.Validate(res.Circuit); err != nil {
				t.Fatalf("circuit %d %v: %v", i, v, err)
			}
			if res.SlaveCount <= 0 || res.TotalArea <= 0 {
				t.Errorf("circuit %d %v: degenerate result %+v", i, v, res)
			}
			// The flow must not mutate the caller's circuit.
			if res.Circuit == c {
				t.Fatal("flow operated on the input circuit instead of a clone")
			}
		}
	}
}

func TestEVLKeepsAllEDWithoutSwap(t *testing.T) {
	c := corpus(t, 1)[0]
	scheme := bench.SchemeFor(c, sta.DefaultOptions(c.Lib))
	res, err := Retime(c, Options{Scheme: scheme, EDLCost: 2}, EVL)
	if err != nil {
		t.Fatal(err)
	}
	// Without the post-swap the decoupled flow keeps every master
	// error-detecting (its initial types).
	if res.EDCount != len(res.Circuit.Outputs) {
		t.Errorf("EVL without swap: ED = %d, want all %d", res.EDCount, len(res.Circuit.Outputs))
	}
}

func TestPostSwapNeverIncreasesED(t *testing.T) {
	for i, c := range corpus(t, 6) {
		scheme := bench.SchemeFor(c, sta.DefaultOptions(c.Lib))
		noswap, err := Retime(c, Options{Scheme: scheme, EDLCost: 2}, EVL)
		if err != nil {
			t.Fatalf("circuit %d: %v", i, err)
		}
		swap, err := Retime(c, Options{Scheme: scheme, EDLCost: 2, PostSwap: true}, EVL)
		if err != nil {
			t.Fatalf("circuit %d: %v", i, err)
		}
		if swap.EDCount > noswap.EDCount {
			t.Errorf("circuit %d: post-swap increased ED %d -> %d", i, noswap.EDCount, swap.EDCount)
		}
		if swap.TotalArea > noswap.TotalArea+1e-9 {
			t.Errorf("circuit %d: post-swap increased area %g -> %g", i, noswap.TotalArea, swap.TotalArea)
		}
	}
}

func TestGRARBeatsOrMatchesVLOnAverage(t *testing.T) {
	// The paper's central comparison (Table V): G-RAR ≥ RVL-RAR on
	// aggregate total area.
	var grar, rvl float64
	for i, c := range corpus(t, 10) {
		scheme := bench.SchemeFor(c, sta.DefaultOptions(c.Lib))
		opt := core.Options{Scheme: scheme, EDLCost: 2}
		g, err := core.Retime(c, opt, core.ApproachGRAR)
		if err != nil {
			t.Fatalf("circuit %d: %v", i, err)
		}
		v, err := Retime(c, Options{Scheme: scheme, EDLCost: 2, PostSwap: true}, RVL)
		if err != nil {
			t.Fatalf("circuit %d: %v", i, err)
		}
		grar += g.TotalArea
		rvl += v.TotalArea
	}
	if grar > rvl*1.02 {
		t.Errorf("G-RAR aggregate area %g worse than RVL %g", grar, rvl)
	}
}

func TestVariantString(t *testing.T) {
	if NVL.String() != "nvl-rar" || EVL.String() != "evl-rar" || RVL.String() != "rvl-rar" {
		t.Error("variant names wrong")
	}
}
