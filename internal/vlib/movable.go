package vlib

import (
	"context"
	"fmt"
	"math"

	"relatch/internal/clocking"
	"relatch/internal/netlist"
	"relatch/internal/sta"
)

// MovableResult pairs the fixed-master RVL-RAR run with the run obtained
// after releasing the master "do-not-retime" constraint (Section VI-E,
// Table IX): master latches are moved by classic flip-flop retiming
// transforms on the sequential design before cutting, the way the
// commercial flow is free to do when the constraint is dropped.
type MovableResult struct {
	Fixed   *Result
	Movable *Result
	// Moves is the number of accepted master moves; Tried counts all
	// candidates examined.
	Moves int
	Tried int
}

// RetimeMovableMaster runs fixed-master RVL-RAR on the design's cut and
// then re-runs it after a hill climb over legal master (flip-flop)
// moves: a forward move collapses the registers feeding a gate into one
// at its output, a backward move splits a gate's output register onto
// its inputs. Moves are accepted when they shrink the estimated
// sequential cost (2 latches per flop plus c per near-critical endpoint)
// without breaking the stage budget. maxTrials bounds the search.
func RetimeMovableMaster(sc *netlist.SeqCircuit, scheme clocking.Scheme, opt Options, maxTrials int) (*MovableResult, error) {
	return RetimeMovableMasterCtx(context.Background(), sc, scheme, opt, maxTrials)
}

// RetimeMovableMasterCtx is RetimeMovableMaster under a context: the hill
// climb checks for cancellation between trials, and both RVL-RAR runs
// observe it through their flow solves.
func RetimeMovableMasterCtx(ctx context.Context, sc *netlist.SeqCircuit, scheme clocking.Scheme, opt Options, maxTrials int) (*MovableResult, error) {
	if maxTrials <= 0 {
		maxTrials = 64
	}
	cut0, err := sc.Cut()
	if err != nil {
		return nil, err
	}
	fixed, err := RetimeCtx(ctx, cut0, opt, RVL)
	if err != nil {
		return nil, err
	}
	res := &MovableResult{Fixed: fixed}

	cur := sc.Clone()
	curScore, err := masterScore(cur, scheme, opt)
	if err != nil {
		// The starting design sits exactly at the stage budget; no move
		// may consume headroom, which the per-candidate check enforces.
		curScore = math.Inf(1)
	}
	for trial := 0; trial < maxTrials; trial++ {
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("vlib: movable-master search cancelled after %d trials: %w", trial, ctx.Err())
		default:
		}
		move := findMove(cur, trial)
		if move == nil {
			break
		}
		res.Tried++
		cand := cur.Clone()
		if err := applyMove(cand, move.gateID, move.forward); err != nil {
			continue
		}
		score, err := masterScore(cand, scheme, opt)
		if err != nil {
			continue // move broke the stage budget or legality
		}
		if score < curScore-1e-9 {
			cur = cand
			curScore = score
			res.Moves++
		}
	}

	cutN, err := cur.Cut()
	if err != nil {
		return nil, err
	}
	movable, err := RetimeCtx(ctx, cutN, opt, RVL)
	if err != nil {
		return nil, err
	}
	res.Movable = movable
	return res, nil
}

// masterScore estimates the sequential cost of a master placement: two
// latches per boundary register plus c per near-critical endpoint, in
// latch-area units. It errors when the design no longer fits the stage
// budget under the (fixed) clock scheme.
func masterScore(sc *netlist.SeqCircuit, scheme clocking.Scheme, opt Options) (float64, error) {
	c, err := sc.Cut()
	if err != nil {
		return 0, err
	}
	tm := sta.Analyze(c, sta.DefaultOptions(c.Lib))
	nce := 0
	margin := c.Lib.BaseLatch.DToQ
	for _, o := range c.Outputs {
		a := tm.Arrival(o)
		if a > scheme.MaxStageDelay()-margin+1e-9 {
			return 0, fmt.Errorf("vlib: %w: movable master breaks the stage budget at %s", ErrNotMovable, o.Name)
		}
		if a > scheme.Period() {
			nce++
		}
	}
	return 2*float64(c.FlopCount()) + opt.EDLCost*float64(nce), nil
}

type moveSpec struct {
	gateID  int
	forward bool
}

// findMove scans for the trial-th legal move candidate, preferring
// forward moves (they can merge registers).
func findMove(sc *netlist.SeqCircuit, trial int) *moveSpec {
	var cands []moveSpec
	for _, n := range sc.Nodes {
		if n.Kind != netlist.SeqGate {
			continue
		}
		if forwardMovable(n) {
			cands = append(cands, moveSpec{gateID: n.ID, forward: true})
		}
		if backwardMovable(n) {
			cands = append(cands, moveSpec{gateID: n.ID, forward: false})
		}
	}
	if len(cands) == 0 {
		return nil
	}
	m := cands[trial%len(cands)]
	return &m
}

// forwardMovable: every fanin is a flop whose only fanout is this gate.
// Moves are restricted to single-input gates: merging several flops into
// one changes the state encoding, which the flow rules out to preserve
// the circuit's initial state — the same concern that made the paper fix
// the master latches in the first place (Section III, [15]). This is why
// releasing the constraint buys so little in Table IX.
func forwardMovable(g *netlist.SeqNode) bool {
	if len(g.Fanin) != 1 {
		return false
	}
	f := g.Fanin[0]
	return f.Kind == netlist.SeqFF && len(f.Fanout) == 1
}

// backwardMovable: the gate has one input and every fanout is a flop
// (whose D is this gate); see forwardMovable for the single-input
// state-preservation restriction.
func backwardMovable(g *netlist.SeqNode) bool {
	if len(g.Fanin) != 1 || len(g.Fanout) == 0 {
		return false
	}
	for _, f := range g.Fanout {
		if f.Kind != netlist.SeqFF {
			return false
		}
	}
	return true
}

// applyMove performs the flip-flop retiming transform in place.
func applyMove(sc *netlist.SeqCircuit, gateID int, forward bool) error {
	g := sc.Nodes[gateID]
	if g.Kind != netlist.SeqGate {
		return fmt.Errorf("vlib: %w: node %d is not a gate", ErrBadInput, gateID)
	}
	dead := map[*netlist.SeqNode]bool{}
	if forward {
		if !forwardMovable(g) {
			return fmt.Errorf("vlib: %w: gate %s is not forward-movable", ErrNotMovable, g.Name)
		}
		// g consumes the flops' D drivers directly; one new flop
		// captures g; g's old consumers read the new flop.
		newFF := &netlist.SeqNode{
			ID:   len(sc.Nodes),
			Name: fmt.Sprintf("mv%d_%s", len(sc.Nodes), g.Name),
			Kind: netlist.SeqFF,
		}
		sc.Nodes = append(sc.Nodes, newFF)
		sc.FFs = append(sc.FFs, newFF)
		for p, f := range g.Fanin {
			drv := f.Fanin[0]
			g.Fanin[p] = drv
			replaceFanout(drv, f, g)
			dead[f] = true
		}
		newFF.Fanin = []*netlist.SeqNode{g}
		newFF.Fanout = g.Fanout
		for _, cons := range g.Fanout {
			replaceFanin(cons, g, newFF)
		}
		g.Fanout = []*netlist.SeqNode{newFF}
	} else {
		if !backwardMovable(g) {
			return fmt.Errorf("vlib: %w: gate %s is not backward-movable", ErrNotMovable, g.Name)
		}
		// One new flop per distinct fanin; g's output flops disappear
		// and their consumers read g directly.
		newFFOf := map[*netlist.SeqNode]*netlist.SeqNode{}
		for p, drv := range g.Fanin {
			ff, ok := newFFOf[drv]
			if !ok {
				ff = &netlist.SeqNode{
					ID:    len(sc.Nodes),
					Name:  fmt.Sprintf("mv%d_%s_%d", len(sc.Nodes), g.Name, p),
					Kind:  netlist.SeqFF,
					Fanin: []*netlist.SeqNode{drv},
				}
				sc.Nodes = append(sc.Nodes, ff)
				sc.FFs = append(sc.FFs, ff)
				replaceFanout(drv, g, ff)
				newFFOf[drv] = ff
			} else if p > 0 {
				// The driver already feeds the new flop; drop the
				// extra fanout reference to g.
				removeFanout(drv, g)
			}
			g.Fanin[p] = ff
			ff.Fanout = append(ff.Fanout, g)
		}
		oldFanouts := g.Fanout
		g.Fanout = nil
		for _, ff := range oldFanouts {
			dead[ff] = true
			for _, cons := range ff.Fanout {
				replaceFanin(cons, ff, g)
				g.Fanout = append(g.Fanout, cons)
			}
		}
	}
	sc.Compact(dead)
	return nil
}

func replaceFanin(n, old, new2 *netlist.SeqNode) {
	for i, f := range n.Fanin {
		if f == old {
			n.Fanin[i] = new2
		}
	}
}

func replaceFanout(n, old, new2 *netlist.SeqNode) {
	for i, f := range n.Fanout {
		if f == old {
			n.Fanout[i] = new2
			return
		}
	}
}

func removeFanout(n, x *netlist.SeqNode) {
	for i, f := range n.Fanout {
		if f == x {
			n.Fanout = append(n.Fanout[:i], n.Fanout[i+1:]...)
			return
		}
	}
}
