package vlib

import "errors"

// Sentinels for the flip-flop baseline retimer. Call sites wrap them
// with fmt.Errorf("vlib: %w: ...", Err...) so callers classify failures
// with errors.Is across the package boundary.
var (
	// ErrBadInput: a caller mistake (nil circuit, a node that is not a
	// gate) rather than a property of the retiming search.
	ErrBadInput = errors.New("invalid vlib input")
	// ErrNotMovable: the requested flip-flop move is illegal on this
	// gate, or the transformed circuit breaks the stage budget.
	ErrNotMovable = errors.New("move not applicable")
)
