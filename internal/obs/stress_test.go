package obs

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"
)

// TestExporterConcurrencyStress hammers one tracer from writer
// goroutines (span trees, counters, events — with the live stream
// enabled so every write also publishes) while reader goroutines
// concurrently render every export format and registry histograms
// absorb observations. It asserts nothing beyond "no race, no panic,
// no torn render": the point is that `go test -race ./internal/obs`
// proves the telemetry plane safe under full read/write concurrency.
func TestExporterConcurrencyStress(t *testing.T) {
	tr := New("stress")
	stream := tr.EnableStream(128)
	reg := NewRegistry()
	ctx := WithTracer(context.Background(), tr)

	const writers, readers, rounds = 4, 3, 200
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			h := reg.Histogram(fmt.Sprintf(`stress_seconds{writer="%d"}`, w))
			for i := 0; i < rounds; i++ {
				sp, sctx := StartSpan(ctx, "stage")
				sp.SetScope(fmt.Sprintf("job-%d-%d", w, i))
				child, _ := StartSpan(sctx, "solve")
				child.Add("pivots", int64(i))
				child.Gauge("nodes", int64(i))
				child.Attr("method", "simplex")
				child.Event("tick")
				child.End()
				sp.End()
				h.Observe(time.Duration(i) * time.Microsecond)
				reg.Add("stress_total", 1)
				reg.Set("stress_gauge", int64(i))
			}
		}(w)
	}

	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rep := tr.Report()
				rep.WriteText(io.Discard)
				if err := rep.WriteJSON(io.Discard); err != nil {
					t.Error(err)
					return
				}
				if err := rep.WriteChromeTrace(io.Discard); err != nil {
					t.Error(err)
					return
				}
				rep.WriteMetrics(io.Discard)
				if err := reg.WriteMetrics(io.Discard); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// A draining subscriber keeps the stream's consumer side exercised;
	// it exits on ErrClosed when the stream closes below.
	sub, err := stream.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		defer sub.Close()
		drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		for {
			if _, err := sub.Next(drainCtx); err != nil && !errors.Is(err, ErrLagged) {
				return
			}
		}
	}()

	done := make(chan struct{})
	go func() {
		writerWG.Wait()
		close(stop)
		stream.Close()
		readerWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("stress goroutines did not finish")
	}
}
