package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
)

// TestDisabledFastPath: without a tracer, StartSpan returns a nil span
// and the unchanged context, and every method no-ops.
func TestDisabledFastPath(t *testing.T) {
	ctx := context.Background()
	sp, ctx2 := StartSpan(ctx, "x")
	if sp != nil {
		t.Fatalf("StartSpan without tracer returned %v, want nil", sp)
	}
	if ctx2 != ctx {
		t.Fatalf("StartSpan without tracer derived a new context")
	}
	if sp.Enabled() {
		t.Fatal("nil span reports Enabled")
	}
	// All nil-receiver methods must be safe.
	sp.Add("c", 1)
	sp.Gauge("g", 2)
	sp.Attr("k", "v")
	sp.Event("e")
	sp.Fail(nil)
	sp.End()
	if sp.Counter("c") != 0 || sp.Name() != "" || sp.Duration() != 0 {
		t.Fatal("nil span leaked state")
	}
	if FromContext(ctx) != nil {
		t.Fatal("FromContext without tracer is non-nil")
	}
	var tr *Tracer
	if tr.Report() != nil {
		t.Fatal("nil tracer Report is non-nil")
	}
	tr.Finish()
}

// TestSpanTree: nesting follows the context, counters/gauges/attrs
// accumulate, and Report queries see them.
func TestSpanTree(t *testing.T) {
	tr := New("root")
	ctx := WithTracer(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("FromContext did not return the attached tracer")
	}

	a, ctx2 := StartSpan(ctx, "stage.a")
	a.Add("work", 3)
	a.Add("work", 4)
	a.Gauge("size", 10)
	a.Attr("mode", "fast")
	b, _ := StartSpan(ctx2, "stage.b")
	b.Add("work", 5)
	b.Event("fallback")
	b.End()
	a.End()
	// Sibling of a, same name as b.
	b2, _ := StartSpan(ctx, "stage.b")
	b2.Add("work", 2)
	b2.End()
	tr.Finish()

	rep := tr.Report()
	if got := rep.Sum("stage.a", "work"); got != 7 {
		t.Fatalf("Sum(stage.a, work) = %d, want 7", got)
	}
	if got := rep.Sum("stage.b", "work"); got != 7 {
		t.Fatalf("Sum(stage.b, work) = %d, want 7 across both spans", got)
	}
	if n := len(rep.Spans("stage.b")); n != 2 {
		t.Fatalf("Spans(stage.b) = %d spans, want 2", n)
	}
	if n := len(rep.Spans("")); n != 4 {
		t.Fatalf("Spans(\"\") = %d spans, want 4", n)
	}
	root := rep.Root()
	if root.Name() != "root" || len(root.Children()) != 2 {
		t.Fatalf("root %q has %d children, want 2", root.Name(), len(root.Children()))
	}
	if v, ok := rep.Spans("stage.a")[0].GaugeValue("size"); !ok || v != 10 {
		t.Fatalf("gauge size = %d,%v", v, ok)
	}
	if rep.Spans("stage.a")[0].AttrValue("mode") != "fast" {
		t.Fatal("attr mode lost")
	}
}

// TestWriteText: the outline includes every span name, counters and the
// event marker, indented by depth.
func TestWriteText(t *testing.T) {
	tr := New("run")
	ctx := WithTracer(context.Background(), tr)
	a, ctx := StartSpan(ctx, "parent")
	b, _ := StartSpan(ctx, "child")
	b.Add("pivots", 42)
	b.Event("fallback")
	b.End()
	a.End()
	tr.Finish()

	var buf bytes.Buffer
	tr.Report().WriteText(&buf)
	out := buf.String()
	for _, want := range []string{"run ", "\n  parent ", "\n    child ", "pivots=42", "[fallback @"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
}

// TestWriteJSON: the machine JSON round-trips and preserves structure.
func TestWriteJSON(t *testing.T) {
	tr := New("run")
	ctx := WithTracer(context.Background(), tr)
	a, _ := StartSpan(ctx, "solve")
	a.Add("pivots", 9)
	a.Attr("method", "simplex")
	a.End()
	tr.Finish()

	var buf bytes.Buffer
	if err := tr.Report().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Name     string `json:"name"`
		DurNs    int64  `json:"dur_ns"`
		Children []struct {
			Name     string            `json:"name"`
			Counters map[string]int64  `json:"counters"`
			Attrs    map[string]string `json:"attrs"`
		} `json:"children"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if got.Name != "run" || len(got.Children) != 1 {
		t.Fatalf("unexpected shape: %+v", got)
	}
	c := got.Children[0]
	if c.Name != "solve" || c.Counters["pivots"] != 9 || c.Attrs["method"] != "simplex" {
		t.Fatalf("child lost data: %+v", c)
	}
}

// TestWriteChromeTrace: the trace-event JSON parses, contains one
// complete event per span with pid/tid/ts/dur, and instant events for
// span events.
func TestWriteChromeTrace(t *testing.T) {
	tr := New("run")
	ctx := WithTracer(context.Background(), tr)
	a, ctx := StartSpan(ctx, "flow.solve")
	b, _ := StartSpan(ctx, "flow.simplex")
	b.Add("pivots", 7)
	b.End()
	a.Event("fallback")
	a.End()
	tr.Finish()

	var buf bytes.Buffer
	if err := tr.Report().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var got struct {
		TraceEvents []struct {
			Name  string                 `json:"name"`
			Phase string                 `json:"ph"`
			Ts    float64                `json:"ts"`
			Pid   int                    `json:"pid"`
			Args  map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("invalid chrome trace JSON: %v\n%s", err, buf.String())
	}
	byName := map[string]string{}
	var sawPivots bool
	for _, e := range got.TraceEvents {
		byName[e.Name] = e.Phase
		if e.Pid != 1 {
			t.Fatalf("event %q pid %d, want 1", e.Name, e.Pid)
		}
		if e.Name == "flow.simplex" && e.Args["pivots"] == float64(7) {
			sawPivots = true
		}
	}
	if byName["run"] != "X" || byName["flow.solve"] != "X" || byName["flow.simplex"] != "X" {
		t.Fatalf("missing complete events: %v", byName)
	}
	if byName["fallback"] != "i" {
		t.Fatalf("fallback event phase %q, want i", byName["fallback"])
	}
	if !sawPivots {
		t.Fatal("pivots counter not exported in args")
	}
}

// TestWriteMetrics: the Prometheus-style dump aggregates counters by
// (span, counter) across same-named spans.
func TestWriteMetrics(t *testing.T) {
	tr := New("run")
	ctx := WithTracer(context.Background(), tr)
	for i := 0; i < 2; i++ {
		s, _ := StartSpan(ctx, "flow.simplex")
		s.Add("pivots", 10)
		s.Gauge("arcs", 33)
		s.End()
	}
	tr.Finish()

	var buf bytes.Buffer
	tr.Report().WriteMetrics(&buf)
	out := buf.String()
	for _, want := range []string{
		`relatch_span_total{span="flow.simplex"} 2`,
		`relatch_counter_total{span="flow.simplex",counter="pivots"} 20`,
		`relatch_gauge{span="flow.simplex",gauge="arcs"} 33`,
		"# TYPE relatch_span_duration_seconds counter",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, out)
		}
	}
}

// TestConcurrentSpans: sibling spans recording in parallel must be safe
// (run under -race in make check).
func TestConcurrentSpans(t *testing.T) {
	tr := New("run")
	ctx := WithTracer(context.Background(), tr)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, sctx := StartSpan(ctx, "worker")
			for j := 0; j < 100; j++ {
				s.Add("ops", 1)
			}
			c, _ := StartSpan(sctx, "inner")
			c.End()
			s.End()
		}()
	}
	wg.Wait()
	tr.Finish()
	if got := tr.Report().Sum("worker", "ops"); got != 800 {
		t.Fatalf("concurrent ops = %d, want 800", got)
	}
}

// TestLogHandler: the compact line format renders message, attrs,
// groups and quoting; level filtering works; DiscardLogger drops all.
func TestLogHandler(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, slog.LevelInfo)
	log.Debug("hidden")
	log.Info("generated", "bench", "s1196", "gates", 529)
	log.With("c", 1.5).WithGroup("solver").Warn("fell back", "reason", "pivot limit")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Fatalf("debug line not filtered:\n%s", out)
	}
	for _, want := range []string{
		"INFO generated bench=s1196 gates=529",
		"WARN fell back c=1.5",
		`solver.reason="pivot limit"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("log output missing %q:\n%s", want, out)
		}
	}
	var dbuf bytes.Buffer
	d := DiscardLogger()
	d.Error("nope")
	if dbuf.Len() != 0 {
		t.Fatal("discard logger wrote output")
	}
	if d.Enabled(context.Background(), slog.LevelError) {
		t.Fatal("discard logger enabled")
	}
}
