package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Registry is a process-wide metrics sink for components whose lifetime
// outlives any single traced request — the durable job queue, lease
// sweeps, recovery replays. Spans cover work that happens inside one
// context; the registry covers state transitions that happen on
// background goroutines and must still show up on /metrics. All methods
// are safe on a nil receiver (no-ops) and for concurrent use, matching
// the Span conventions.
type Registry struct {
	mu       sync.Mutex
	counters map[string]int64 // guarded by mu
	gauges   map[string]int64 // guarded by mu
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]int64),
		gauges:   make(map[string]int64),
	}
}

// Add increments a monotonic counter. The name may carry a literal
// Prometheus label set, e.g. `relatch_queue_jobs_total{event="retry"}`.
func (r *Registry) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Set records a point-in-time gauge value; the last write wins.
func (r *Registry) Set(name string, v int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// Counter returns a counter's accumulated value (0 when absent).
func (r *Registry) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Gauge returns a gauge's last value (0 when absent).
func (r *Registry) Gauge(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name]
}

// WriteMetrics renders every counter and gauge in Prometheus text
// format, sorted by name so output is diff-stable.
func (r *Registry) WriteMetrics(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	lines := make([]string, 0, len(r.counters)+len(r.gauges))
	for k, v := range r.counters {
		lines = append(lines, fmt.Sprintf("%s %d", k, v))
	}
	for k, v := range r.gauges {
		lines = append(lines, fmt.Sprintf("%s %d", k, v))
	}
	r.mu.Unlock()
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}
