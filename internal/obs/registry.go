package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Registry is a process-wide metrics sink for components whose lifetime
// outlives any single traced request — the durable job queue, lease
// sweeps, recovery replays. Spans cover work that happens inside one
// context; the registry covers state transitions that happen on
// background goroutines and must still show up on /metrics. All methods
// are safe on a nil receiver (no-ops) and for concurrent use, matching
// the Span conventions.
type Registry struct {
	mu       sync.Mutex
	counters map[string]int64      // guarded by mu
	gauges   map[string]int64      // guarded by mu
	hists    map[string]*Histogram // guarded by mu (the *Histogram itself is lock-free)
	closed   bool                  // guarded by mu
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]int64),
		gauges:   make(map[string]int64),
		hists:    make(map[string]*Histogram),
	}
}

// Close marks the registry torn down: later Add/Set calls are dropped,
// Histogram stops vending (returns nil, whose record path is a no-op)
// and WriteMetrics refuses with ErrClosed. Histograms vended before the
// close stay safe to Observe — the records just never render again.
// Idempotent and nil-safe.
func (r *Registry) Close() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
}

// Add increments a monotonic counter. The name may carry a literal
// Prometheus label set, e.g. `relatch_queue_jobs_total{event="retry"}`.
func (r *Registry) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if !r.closed {
		r.counters[name] += delta
	}
	r.mu.Unlock()
}

// Set records a point-in-time gauge value; the last write wins.
func (r *Registry) Set(name string, v int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if !r.closed {
		r.gauges[name] = v
	}
	r.mu.Unlock()
}

// Histogram returns the latency histogram registered under name,
// creating it with DefaultLatencyBuckets on first use. The name may
// carry a literal Prometheus label set, e.g.
// `relatch_job_stage_seconds{stage="solve"}`; the `_bucket` exposition
// merges `le` into it. Returns nil — an inert histogram — on a nil or
// closed registry, so record sites need no guards.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(name, DefaultLatencyBuckets())
		r.hists[name] = h
	}
	return h
}

// Counter returns a counter's accumulated value (0 when absent).
func (r *Registry) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Gauge returns a gauge's last value (0 when absent).
func (r *Registry) Gauge(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name]
}

// WriteMetrics renders every counter, gauge and histogram in
// Prometheus text format, sorted by name so output is diff-stable.
// Histograms render after the scalar lines, with one `# TYPE ...
// histogram` header per base name even when several label sets share
// it. A closed registry refuses with a wrapped ErrClosed — scrapes
// racing a teardown get an error, never a half-rendered page.
func (r *Registry) WriteMetrics(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return fmt.Errorf("obs: write metrics: registry %w", ErrClosed)
	}
	lines := make([]string, 0, len(r.counters)+len(r.gauges))
	for k, v := range r.counters {
		lines = append(lines, fmt.Sprintf("%s %d", k, v))
	}
	for k, v := range r.gauges {
		lines = append(lines, fmt.Sprintf("%s %d", k, v))
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, name := range sortedKeys(r.hists) {
		hists = append(hists, r.hists[name])
	}
	r.mu.Unlock()
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	lastBase := ""
	for _, h := range hists {
		if base, _ := splitMetricName(h.name); base != lastBase {
			lastBase = base
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", base); err != nil {
				return err
			}
		}
		if err := h.writeSeries(w); err != nil {
			return err
		}
	}
	return nil
}
