package obs

import (
	"io"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// DefaultLatencyBuckets returns the log-spaced upper bounds (seconds)
// used for every latency histogram in the repo: 100µs doubling up to
// ~210s, which brackets everything from a cache hit to a Plasma-scale
// G-RAR solve. 22 buckets keeps the record path one cache line of
// counters and the +Inf tail catches pathological outliers.
func DefaultLatencyBuckets() []float64 {
	b := make([]float64, 22)
	v := 100e-6
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}

// Histogram is a fixed-bucket latency histogram with a lock-free record
// path: Observe is a binary search plus three atomic adds, safe for
// concurrent use and for nil receivers (no-op), matching the Span/
// Registry conventions. Quantiles are estimated Prometheus-style by
// linear interpolation inside the winning bucket, and the series render
// in Prometheus text exposition (`_bucket`/`_sum`/`_count`).
type Histogram struct {
	name   string
	bounds []float64 // upper bounds in seconds, strictly ascending

	counts []atomic.Int64 // len(bounds)+1; the last slot is +Inf
	sumNS  atomic.Int64
	n      atomic.Int64
}

// NewHistogram builds a histogram over the given bucket upper bounds
// (seconds). Bounds must be strictly ascending and non-empty; anything
// else falls back to DefaultLatencyBuckets so a bad literal can never
// produce a histogram that drops observations.
func NewHistogram(name string, bounds []float64) *Histogram {
	ok := len(bounds) > 0
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			ok = false
			break
		}
	}
	if !ok {
		bounds = DefaultLatencyBuckets()
	}
	h := &Histogram{
		name:   name,
		bounds: append([]float64(nil), bounds...),
	}
	h.counts = make([]atomic.Int64, len(h.bounds)+1)
	return h
}

// Name returns the metric name the histogram was registered under
// (may carry a literal Prometheus label set).
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Observe records one duration. Allocation-free and lock-free: the
// serving hot path records per-stage latencies through here on every
// job without contending with /metrics readers.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	s := d.Seconds()
	// Binary search for the first bound >= s; `le` is inclusive, so an
	// observation equal to a bound lands in that bound's bucket. Misses
	// past the last bound land in the +Inf slot.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < s {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.sumNS.Add(int64(d))
	h.n.Add(1)
}

// Count returns how many observations the histogram has absorbed.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the total of every observed duration.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sumNS.Load())
}

// snapshotCounts reads the per-bucket counters into a plain slice and
// returns their total. Concurrent Observes may skew individual buckets
// by an in-flight observation, but the returned total always equals the
// sum of the returned buckets, so cumulative renders stay consistent.
func (h *Histogram) snapshotCounts() ([]int64, int64) {
	counts := make([]int64, len(h.counts))
	total := int64(0)
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	return counts, total
}

// Quantile estimates the q-th quantile (0 < q ≤ 1) by linear
// interpolation inside the bucket containing the target rank — the
// same estimate a Prometheus histogram_quantile produces. It returns 0
// for an empty histogram (never NaN), and observations in the +Inf
// bucket clamp to the largest finite bound.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	counts, total := h.snapshotCounts()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := float64(0)
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		upper := h.bounds[len(h.bounds)-1]
		if i < len(h.bounds) {
			upper = h.bounds[i]
		}
		lower := float64(0)
		if i > 0 {
			lower = h.bounds[i-1]
		}
		if upper < lower {
			upper = lower
		}
		sec := lower + (upper-lower)*(rank-prev)/float64(c)
		return time.Duration(sec * float64(time.Second))
	}
	return time.Duration(h.bounds[len(h.bounds)-1] * float64(time.Second))
}

// splitMetricName splits a registered name into its base and any
// literal label set: `x_seconds{stage="solve"}` → ("x_seconds",
// `stage="solve"`). The bucket series merges `le` into that label set.
func splitMetricName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// writeSeries renders the `_bucket`/`_sum`/`_count` sample lines in
// Prometheus text exposition. The caller owns the `# TYPE` line (one
// per base name, even when several label sets share it).
func (h *Histogram) writeSeries(w io.Writer) error {
	base, labels := splitMetricName(h.name)
	counts, total := h.snapshotCounts()
	var b strings.Builder
	cum := int64(0)
	for i := range counts {
		cum += counts[i]
		le := "+Inf"
		if i < len(h.bounds) {
			le = strconv.FormatFloat(h.bounds[i], 'g', -1, 64)
		}
		b.WriteString(base)
		b.WriteString("_bucket{")
		if labels != "" {
			b.WriteString(labels)
			b.WriteString(",")
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteString(`"} `)
		b.WriteString(strconv.FormatInt(cum, 10))
		b.WriteString("\n")
	}
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	b.WriteString(base)
	b.WriteString("_sum")
	b.WriteString(suffix)
	b.WriteString(" ")
	b.WriteString(strconv.FormatFloat(float64(h.sumNS.Load())/1e9, 'g', -1, 64))
	b.WriteString("\n")
	b.WriteString(base)
	b.WriteString("_count")
	b.WriteString(suffix)
	b.WriteString(" ")
	b.WriteString(strconv.FormatInt(total, 10))
	b.WriteString("\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteMetrics renders the histogram standalone — a `# TYPE` line plus
// its series — for callers (cmd/loadgen) using a histogram outside a
// Registry.
func (h *Histogram) WriteMetrics(w io.Writer) error {
	if h == nil {
		return nil
	}
	base, _ := splitMetricName(h.name)
	if _, err := io.WriteString(w, "# TYPE "+base+" histogram\n"); err != nil {
		return err
	}
	return h.writeSeries(w)
}
