// Package obs is the pipeline's tracing and metrics substrate: a
// context-carried span tree with per-span counters, gauges, attributes
// and instant events, plus exporters (text tree, machine JSON, Chrome
// trace-event format, Prometheus-style metrics text) and a slog handler
// for structured progress logging. It depends only on the standard
// library.
//
// Tracing is opt-in per context. A caller that wants a trace creates a
// Tracer, attaches it with WithTracer, and hands the context down the
// pipeline; instrumented stages call StartSpan. When no tracer is
// attached, StartSpan returns a nil *Span after a single context lookup,
// and every *Span method is a nil-receiver no-op — the disabled path
// costs one allocation-free branch per call site, so instrumentation can
// stay on permanently (BenchmarkRetimeTraced / BenchmarkRetimeUntraced
// in the repo root guard the overhead).
//
// Counters follow the retiming literature's convention of treating
// solver iteration counts as the first-class cost signal: the flow layer
// records simplex pivots and SSP augmenting paths per solve, and every
// other stage reports its own work units (lint rules fired, STA
// relaxations, certifier findings, LP sizes).
package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// ctxKey carries the current *Span. A single key serves both tracer
// discovery (the span holds its tracer) and parent/child nesting.
type ctxKey struct{}

// Tracer owns one span tree. The zero value is not usable; call New.
type Tracer struct {
	root *Span
	// stream, when set via EnableStream, receives a live StreamEvent for
	// every span start/end, counter add and instant event. The atomic
	// pointer keeps the disabled path one load with no lock.
	stream atomic.Pointer[Stream]
}

// New creates a tracer whose root span is open from now until the first
// Report call that observes it finished (or Finish).
func New(name string) *Tracer {
	t := &Tracer{}
	t.root = &Span{tracer: t, name: name, start: time.Now()}
	return t
}

// Root returns the tracer's root span.
func (t *Tracer) Root() *Span { return t.root }

// EnableStream attaches a live event stream of the given capacity
// (≤ 0 means DefaultStreamCapacity) to the tracer: from then on every
// span start/end, counter add and instant event publishes a
// StreamEvent. The first call wins; later calls return the existing
// stream. Nil-safe (returns nil, and a nil *Stream is inert).
func (t *Tracer) EnableStream(capacity int) *Stream {
	if t == nil {
		return nil
	}
	st := NewStream(capacity)
	if t.stream.CompareAndSwap(nil, st) {
		return st
	}
	return t.stream.Load()
}

// Stream returns the tracer's live event stream (nil until
// EnableStream).
func (t *Tracer) Stream() *Stream {
	if t == nil {
		return nil
	}
	return t.stream.Load()
}

// Finish ends the root span. Idempotent.
func (t *Tracer) Finish() {
	if t != nil {
		t.root.End()
	}
}

// Report returns the exportable view of the span tree. The report wraps
// the live tree: exporting after more spans complete reflects them, so
// core can attach a report mid-pipeline and the CLI can export the full
// picture at exit.
func (t *Tracer) Report() *Report {
	if t == nil {
		return nil
	}
	return &Report{root: t.root}
}

// WithTracer attaches the tracer to the context; descendant StartSpan
// calls nest under its root span.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t.root)
}

// FromContext returns the tracer carried by the context, or nil when
// tracing is off.
func FromContext(ctx context.Context) *Tracer {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	if s == nil {
		return nil
	}
	return s.tracer
}

// StartSpan opens a child of the context's current span and returns it
// with a derived context carrying it. With tracing off it returns
// (nil, ctx) after one context lookup — the documented fast path.
// The caller must End the span (defer sp.End() is the idiom).
func StartSpan(ctx context.Context, name string) (*Span, context.Context) {
	parent, _ := ctx.Value(ctxKey{}).(*Span)
	if parent == nil {
		return nil, ctx
	}
	s := parent.newChild(name)
	return s, context.WithValue(ctx, ctxKey{}, s)
}

// Event is an instant marker inside a span (e.g. the simplex→SSP
// fallback decision).
type Event struct {
	Name string
	At   time.Time
}

// Span is one timed node of the trace tree. All methods are safe on a
// nil receiver (no-ops) and safe for concurrent use: each span guards
// its own state with a mutex, so sibling stages running in parallel
// never contend on a shared sink.
type Span struct {
	tracer *Tracer
	name   string
	start  time.Time

	mu       sync.Mutex
	end      time.Time         // guarded by mu
	scope    string            // guarded by mu (stream correlation key, inherited by children)
	counters map[string]int64  // guarded by mu
	gauges   map[string]int64  // guarded by mu
	attrs    map[string]string // guarded by mu
	events   []Event           // guarded by mu
	children []*Span           // guarded by mu
}

func (s *Span) newChild(name string) *Span {
	c := &Span{tracer: s.tracer, name: name, start: time.Now()}
	s.mu.Lock()
	scope := s.scope
	s.children = append(s.children, c)
	s.mu.Unlock()
	c.mu.Lock()
	c.scope = scope
	c.mu.Unlock()
	c.publish("span_start", name, scope, 0)
	return c
}

// publish forwards one event to the tracer's live stream when one is
// attached. Callers must not hold s.mu: the stream has its own lock and
// the span lock must never order under it.
func (s *Span) publish(kind, name, scope string, value int64) {
	if st := s.tracer.stream.Load(); st != nil {
		st.Publish(StreamEvent{Kind: kind, Name: name, Scope: scope, Value: value})
	}
}

// SetScope tags the span — and every child started after the call —
// with a stream correlation key. The serving stack sets the durable job
// ID here so SSE consumers can filter the process-wide stream down to
// one job's events.
func (s *Span) SetScope(scope string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.scope = scope
	s.mu.Unlock()
}

// Scope returns the span's stream correlation key ("" on nil or unset).
func (s *Span) Scope() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.scope
}

// Enabled reports whether the span records anything; callers use it to
// skip derived-statistic computation on the disabled path.
func (s *Span) Enabled() bool { return s != nil }

// Name returns the span name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Start returns the span's start time.
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// End closes the span. The first call wins; later calls are no-ops, so
// a deferred End composes with early explicit ones.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	first := s.end.IsZero()
	if first {
		s.end = time.Now()
	}
	dur := s.end.Sub(s.start)
	scope := s.scope
	s.mu.Unlock()
	if first {
		s.publish("span_end", s.name, scope, int64(dur))
	}
}

// endTime returns the recorded end, or the latest descendant activity
// for a still-open span (so mid-pipeline reports render sensibly).
func (s *Span) endTime() time.Time {
	s.mu.Lock()
	end := s.end
	children := s.children
	s.mu.Unlock()
	if !end.IsZero() {
		return end
	}
	end = s.start
	for _, c := range children {
		if ce := c.endTime(); ce.After(end) {
			end = ce
		}
	}
	return end
}

// Duration returns the span's wall time (through the latest descendant
// when the span is still open).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return s.endTime().Sub(s.start)
}

// Add increments a counter (monotonic work units: pivots, augmenting
// paths, rules fired).
func (s *Span) Add(name string, delta int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.counters == nil {
		s.counters = make(map[string]int64)
	}
	s.counters[name] += delta
	scope := s.scope
	s.mu.Unlock()
	s.publish("counter", name, scope, delta)
}

// Gauge records a point-in-time value (node counts, LP sizes). The last
// write wins.
func (s *Span) Gauge(name string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.gauges == nil {
		s.gauges = make(map[string]int64)
	}
	s.gauges[name] = v
	s.mu.Unlock()
}

// Attr records a string attribute (solver method, approach, model).
func (s *Span) Attr(key, val string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string)
	}
	s.attrs[key] = val
	s.mu.Unlock()
}

// Event records an instant marker at the current time.
func (s *Span) Event(name string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.events = append(s.events, Event{Name: name, At: time.Now()})
	scope := s.scope
	s.mu.Unlock()
	s.publish("event", name, scope, 0)
}

// Fail records the error as the span's "error" attribute; nil errors are
// ignored, so `defer func() { sp.Fail(err); sp.End() }()` is safe on the
// success path.
func (s *Span) Fail(err error) {
	if s == nil || err == nil {
		return
	}
	s.Attr("error", err.Error())
}

// Counter returns the counter's accumulated value (0 when absent).
func (s *Span) Counter(name string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters[name]
}

// GaugeValue returns the gauge's last value and whether it was set.
func (s *Span) GaugeValue(name string) (int64, bool) {
	if s == nil {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.gauges[name]
	return v, ok
}

// AttrValue returns the attribute value ("" when absent).
func (s *Span) AttrValue(key string) string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.attrs[key]
}

// Events returns a copy of the span's recorded instant events.
func (s *Span) Events() []Event {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}

// Children returns a copy of the span's current children.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Span, len(s.children))
	copy(out, s.children)
	return out
}

// snapshot captures a consistent copy of the span's recorded state.
func (s *Span) snapshot() (end time.Time, counters, gauges map[string]int64, attrs map[string]string, events []Event, children []*Span) {
	s.mu.Lock()
	defer s.mu.Unlock()
	counters = make(map[string]int64, len(s.counters))
	for k, v := range s.counters {
		counters[k] = v
	}
	gauges = make(map[string]int64, len(s.gauges))
	for k, v := range s.gauges {
		gauges[k] = v
	}
	attrs = make(map[string]string, len(s.attrs))
	for k, v := range s.attrs {
		attrs[k] = v
	}
	events = append([]Event(nil), s.events...)
	children = append([]*Span(nil), s.children...)
	return s.end, counters, gauges, attrs, events, children
}
