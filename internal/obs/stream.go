package obs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Sentinel errors for the live event stream.
var (
	// ErrClosed rejects operations on a closed stream, subscription or
	// registry.
	ErrClosed = errors.New("closed")
	// ErrLagged tells a slow subscriber that the ring overwrote events
	// it had not consumed yet. The subscription stays usable: the next
	// read resumes at the oldest retained event.
	ErrLagged = errors.New("subscriber lagged")
)

// DefaultStreamCapacity is the ring size used when EnableStream or
// NewStream gets a non-positive capacity.
const DefaultStreamCapacity = 4096

// StreamEvent is one live telemetry event: a span lifecycle edge, a
// counter increment, an instant event, or an explicit lifecycle stage
// published by a state machine (the queue). Scope correlates events to
// a unit of work — the serving stack sets it to the durable job ID.
type StreamEvent struct {
	// Seq is the stream-assigned, strictly increasing sequence number;
	// it doubles as the SSE event id for last-event-id resume.
	Seq uint64 `json:"seq"`
	// AtNS is the publish time in Unix nanoseconds.
	AtNS int64 `json:"at_ns"`
	// Scope correlates the event to a unit of work ("" = process-wide).
	Scope string `json:"scope,omitempty"`
	// Kind is one of "stage", "span_start", "span_end", "counter",
	// "event".
	Kind string `json:"kind"`
	// Name is the stage, span or counter name.
	Name string `json:"name"`
	// Value carries the counter delta or the span duration (ns).
	Value int64 `json:"value,omitempty"`
}

// Stream is a bounded broadcast ring of StreamEvents. Publish never
// blocks: when the ring is full the oldest event is overwritten
// (drop-oldest) and a lagging subscriber learns about the gap through
// ErrLagged on its next read — the hot path must never wait on a slow
// SSE client. All methods are nil-receiver no-ops or safe defaults.
type Stream struct {
	capacity int

	mu      sync.Mutex
	ring    []StreamEvent   // guarded by mu (circular buffer)
	start   int             // guarded by mu (index of oldest retained event)
	count   int             // guarded by mu (retained events)
	nextSeq uint64          // guarded by mu (seq of the newest published event)
	subs    []*Subscription // guarded by mu
	closed  bool            // guarded by mu
}

// NewStream builds a stream retaining up to capacity events
// (≤ 0 means DefaultStreamCapacity).
func NewStream(capacity int) *Stream {
	if capacity <= 0 {
		capacity = DefaultStreamCapacity
	}
	return &Stream{capacity: capacity, ring: make([]StreamEvent, capacity)}
}

// Publish stamps the event with the next sequence number and the
// current time, appends it (dropping the oldest when full) and nudges
// every subscriber. It never blocks and is a no-op on a nil or closed
// stream.
func (s *Stream) Publish(ev StreamEvent) {
	if s == nil {
		return
	}
	now := time.Now().UnixNano()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.nextSeq++
	ev.Seq = s.nextSeq
	ev.AtNS = now
	if s.count < s.capacity {
		s.ring[(s.start+s.count)%s.capacity] = ev
		s.count++
	} else {
		s.ring[s.start] = ev
		s.start = (s.start + 1) % s.capacity
	}
	for _, sub := range s.subs {
		// Non-blocking nudge: the 1-slot buffer coalesces bursts, and a
		// subscriber that already has a pending nudge needs no more.
		select {
		case sub.notify <- struct{}{}:
		default:
		}
	}
	s.mu.Unlock()
}

// Close stops the stream: later Publishes drop, blocked subscribers
// drain what the ring retains and then get ErrClosed. Idempotent and
// nil-safe.
func (s *Stream) Close() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		for _, sub := range s.subs {
			select {
			case sub.notify <- struct{}{}:
			default:
			}
		}
	}
	s.mu.Unlock()
}

// Subscribers returns how many subscriptions are currently attached —
// the leak signal the fault harness checks after client disconnects.
func (s *Stream) Subscribers() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}

// Subscribe attaches a cursor after sequence afterSeq (0 = from the
// oldest retained event). A resume point that has already fallen off
// the ring is clamped forward and surfaces once as ErrLagged on the
// first read, so a reconnecting client knows its history has a gap.
func (s *Stream) Subscribe(afterSeq uint64) (*Subscription, error) {
	if s == nil {
		return nil, fmt.Errorf("obs: subscribe: no stream: %w", ErrClosed)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("obs: subscribe: %w", ErrClosed)
	}
	sub := &Subscription{stream: s, notify: make(chan struct{}, 1)}
	sub.attachLocked(afterSeq)
	return sub, nil
}

// attachLocked positions the fresh cursor after afterSeq — clamped into
// the retained window, recording any gap — and registers it. Caller
// holds stream.mu.
func (sub *Subscription) attachLocked(afterSeq uint64) {
	s := sub.stream
	oldest := s.oldestSeqLocked()
	sub.next = afterSeq + 1
	if sub.next < oldest {
		if afterSeq > 0 {
			sub.lagged = oldest - sub.next
		}
		sub.next = oldest
	}
	if sub.next > s.nextSeq+1 {
		sub.next = s.nextSeq + 1
	}
	s.subs = append(s.subs, sub)
}

// oldestSeqLocked returns the sequence number of the oldest retained
// event (nextSeq+1 when the ring is empty).
func (s *Stream) oldestSeqLocked() uint64 {
	if s.count == 0 {
		return s.nextSeq + 1
	}
	return s.nextSeq - uint64(s.count) + 1
}

// Subscription is one consumer cursor over a Stream. Close detaches it;
// a subscription abandoned by a disconnected client must be Closed or
// it counts as a leak (Stream.Subscribers).
type Subscription struct {
	stream *Stream
	notify chan struct{}

	next   uint64 // guarded by stream.mu (next seq to deliver)
	lagged uint64 // guarded by stream.mu (events lost before first read)
	closed bool   // guarded by stream.mu
}

// Close detaches the subscription from its stream. Idempotent.
func (sub *Subscription) Close() {
	if sub == nil {
		return
	}
	s := sub.stream
	s.mu.Lock()
	sub.detachLocked()
	s.mu.Unlock()
}

// detachLocked marks the subscription closed and removes it from the
// stream's roster. Caller holds stream.mu; idempotent.
func (sub *Subscription) detachLocked() {
	if sub.closed {
		return
	}
	sub.closed = true
	s := sub.stream
	for i, x := range s.subs {
		if x == sub {
			s.subs = append(s.subs[:i], s.subs[i+1:]...)
			break
		}
	}
}

// Next returns the next event, blocking until one is published, the
// context is cancelled (wrapped ctx.Err()), or the stream/subscription
// closes (wrapped ErrClosed). When the ring overwrote unread events the
// call reports the gap once as ErrLagged — with the drop count — and
// subsequent reads continue from the oldest retained event.
func (sub *Subscription) Next(ctx context.Context) (StreamEvent, error) {
	if sub == nil {
		return StreamEvent{}, fmt.Errorf("obs: next: no subscription: %w", ErrClosed)
	}
	s := sub.stream
	for {
		s.mu.Lock()
		ev, wait, err := sub.pollLocked()
		s.mu.Unlock()
		if !wait {
			return ev, err
		}
		select {
		case <-ctx.Done():
			return StreamEvent{}, fmt.Errorf("obs: next: %w", ctx.Err())
		case <-sub.notify:
		}
	}
}

// pollLocked advances the cursor one step: a deliverable event, a
// terminal error (closed / lag gap), or wait=true when the cursor is
// caught up and the caller should block for a nudge. Caller holds
// stream.mu.
func (sub *Subscription) pollLocked() (StreamEvent, bool, error) {
	s := sub.stream
	if sub.closed {
		return StreamEvent{}, false, fmt.Errorf("obs: next: subscription %w", ErrClosed)
	}
	if sub.lagged > 0 {
		n := sub.lagged
		sub.lagged = 0
		return StreamEvent{}, false, fmt.Errorf("obs: %w: %d events dropped (ring capacity %d)", ErrLagged, n, s.capacity)
	}
	oldest := s.oldestSeqLocked()
	if sub.next < oldest {
		n := oldest - sub.next
		sub.next = oldest
		return StreamEvent{}, false, fmt.Errorf("obs: %w: %d events dropped (ring capacity %d)", ErrLagged, n, s.capacity)
	}
	if s.count > 0 && sub.next <= s.nextSeq {
		ev := s.ring[(s.start+int(sub.next-oldest))%s.capacity]
		sub.next++
		return ev, false, nil
	}
	if s.closed {
		return StreamEvent{}, false, fmt.Errorf("obs: next: stream %w", ErrClosed)
	}
	return StreamEvent{}, true, nil
}
