package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Report is the exportable view of a tracer's span tree. It wraps the
// live tree: every Write* call walks the current state under the spans'
// own locks, so a report attached mid-pipeline stays accurate when
// exported after the run completes.
type Report struct {
	root *Span
}

// Root returns the report's root span.
func (r *Report) Root() *Span {
	if r == nil {
		return nil
	}
	return r.root
}

// Spans returns every span with the given name, in depth-first
// pre-order. An empty name matches all spans.
func (r *Report) Spans(name string) []*Span {
	if r == nil || r.root == nil {
		return nil
	}
	var out []*Span
	var walk func(s *Span)
	walk = func(s *Span) {
		if name == "" || s.name == name {
			out = append(out, s)
		}
		for _, c := range s.Children() {
			walk(c)
		}
	}
	walk(r.root)
	return out
}

// Sum aggregates a counter over every span with the given name — the
// query tests and the bench trajectory use to read "total pivots" off a
// run regardless of how many solves it contained.
func (r *Report) Sum(spanName, counter string) int64 {
	var sum int64
	for _, s := range r.Spans(spanName) {
		sum += s.Counter(counter)
	}
	return sum
}

// WriteText renders the tree as an indented human-readable outline:
// one line per span with duration, counters, gauges and attributes,
// events inline as markers.
func (r *Report) WriteText(w io.Writer) {
	if r == nil || r.root == nil {
		return
	}
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		end, counters, gauges, attrs, events, children := s.snapshot()
		_ = end
		var b strings.Builder
		b.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&b, "%s %s", s.name, fmtDuration(s.Duration()))
		for _, k := range sortedKeys(counters) {
			fmt.Fprintf(&b, " %s=%d", k, counters[k])
		}
		for _, k := range sortedKeys(gauges) {
			fmt.Fprintf(&b, " %s=%d", k, gauges[k])
		}
		attrKeys := make([]string, 0, len(attrs))
		for k := range attrs {
			attrKeys = append(attrKeys, k)
		}
		sort.Strings(attrKeys)
		for _, k := range attrKeys {
			fmt.Fprintf(&b, " %s=%q", k, attrs[k])
		}
		for _, e := range events {
			fmt.Fprintf(&b, " [%s @%s]", e.Name, fmtDuration(e.At.Sub(s.start)))
		}
		fmt.Fprintln(w, b.String())
		for _, c := range children {
			walk(c, depth+1)
		}
	}
	walk(r.root, 0)
}

// fmtDuration rounds a duration to a stable, readable precision.
func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.String()
	}
}

// spanJSON is the machine-JSON shape of one span. Offsets are
// nanoseconds from the root span's start, so traces are relocatable.
type spanJSON struct {
	Name     string            `json:"name"`
	StartNs  int64             `json:"start_ns"`
	DurNs    int64             `json:"dur_ns"`
	Counters map[string]int64  `json:"counters,omitempty"`
	Gauges   map[string]int64  `json:"gauges,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Events   []eventJSON       `json:"events,omitempty"`
	Children []spanJSON        `json:"children,omitempty"`
}

type eventJSON struct {
	Name string `json:"name"`
	AtNs int64  `json:"at_ns"`
}

func (r *Report) toJSON(s *Span, epoch time.Time) spanJSON {
	_, counters, gauges, attrs, events, children := s.snapshot()
	j := spanJSON{
		Name:    s.name,
		StartNs: s.start.Sub(epoch).Nanoseconds(),
		DurNs:   s.Duration().Nanoseconds(),
	}
	if len(counters) > 0 {
		j.Counters = counters
	}
	if len(gauges) > 0 {
		j.Gauges = gauges
	}
	if len(attrs) > 0 {
		j.Attrs = attrs
	}
	for _, e := range events {
		j.Events = append(j.Events, eventJSON{Name: e.Name, AtNs: e.At.Sub(epoch).Nanoseconds()})
	}
	for _, c := range children {
		j.Children = append(j.Children, r.toJSON(c, epoch))
	}
	return j
}

// WriteJSON encodes the tree as indented machine JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	if r == nil || r.root == nil {
		return fmt.Errorf("obs: nil report")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.toJSON(r.root, r.root.start))
}

// chromeEvent is one entry of the Chrome trace-event format. Complete
// events ("ph":"X") carry ts/dur in microseconds; instant events
// ("ph":"i") mark a point. The output loads directly in chrome://tracing
// and in Perfetto.
type chromeEvent struct {
	Name  string                 `json:"name"`
	Phase string                 `json:"ph"`
	Ts    float64                `json:"ts"`
	Dur   *float64               `json:"dur,omitempty"`
	Pid   int                    `json:"pid"`
	Tid   int                    `json:"tid"`
	Scope string                 `json:"s,omitempty"`
	Args  map[string]interface{} `json:"args,omitempty"`
}

// WriteChromeTrace encodes the tree in Chrome trace-event JSON
// ({"traceEvents": [...]}). Counters, gauges and attributes become the
// per-event args pane; span events become instant markers.
func (r *Report) WriteChromeTrace(w io.Writer) error {
	if r == nil || r.root == nil {
		return fmt.Errorf("obs: nil report")
	}
	epoch := r.root.start
	var evs []chromeEvent
	var walk func(s *Span)
	walk = func(s *Span) {
		_, counters, gauges, attrs, events, children := s.snapshot()
		args := make(map[string]interface{}, len(counters)+len(gauges)+len(attrs))
		for k, v := range counters {
			args[k] = v
		}
		for k, v := range gauges {
			args[k] = v
		}
		for k, v := range attrs {
			args[k] = v
		}
		dur := float64(s.Duration().Nanoseconds()) / 1e3
		ev := chromeEvent{
			Name:  s.name,
			Phase: "X",
			Ts:    float64(s.start.Sub(epoch).Nanoseconds()) / 1e3,
			Dur:   &dur,
			Pid:   1,
			Tid:   1,
		}
		if len(args) > 0 {
			ev.Args = args
		}
		evs = append(evs, ev)
		for _, e := range events {
			evs = append(evs, chromeEvent{
				Name:  e.Name,
				Phase: "i",
				Ts:    float64(e.At.Sub(epoch).Nanoseconds()) / 1e3,
				Pid:   1,
				Tid:   1,
				Scope: "t",
			})
		}
		for _, c := range children {
			walk(c)
		}
	}
	walk(r.root)
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: evs, DisplayTimeUnit: "ms"})
}

// WriteMetrics dumps the tree as Prometheus-style text: span counts and
// durations aggregated by span name, counters summed and gauges
// last-value per (span, name) pair. Output order is deterministic.
func (r *Report) WriteMetrics(w io.Writer) {
	if r == nil || r.root == nil {
		return
	}
	type key struct{ span, name string }
	spanCount := make(map[string]int64)
	spanSeconds := make(map[string]float64)
	counters := make(map[key]int64)
	gauges := make(map[key]int64)
	for _, s := range r.Spans("") {
		spanCount[s.name]++
		spanSeconds[s.name] += s.Duration().Seconds()
		_, cs, gs, _, _, _ := s.snapshot()
		for k, v := range cs {
			counters[key{s.name, k}] += v
		}
		for k, v := range gs {
			gauges[key{s.name, k}] = v
		}
	}

	names := sortedKeys(spanCount)
	fmt.Fprintln(w, "# HELP relatch_span_total Number of completed pipeline spans by name.")
	fmt.Fprintln(w, "# TYPE relatch_span_total counter")
	for _, n := range names {
		fmt.Fprintf(w, "relatch_span_total{span=%q} %d\n", n, spanCount[n])
	}
	fmt.Fprintln(w, "# HELP relatch_span_duration_seconds Wall time spent in pipeline spans by name.")
	fmt.Fprintln(w, "# TYPE relatch_span_duration_seconds counter")
	for _, n := range names {
		fmt.Fprintf(w, "relatch_span_duration_seconds{span=%q} %g\n", n, spanSeconds[n])
	}

	ckeys := make([]key, 0, len(counters))
	for k := range counters {
		ckeys = append(ckeys, k)
	}
	sort.Slice(ckeys, func(i, j int) bool {
		if ckeys[i].span != ckeys[j].span {
			return ckeys[i].span < ckeys[j].span
		}
		return ckeys[i].name < ckeys[j].name
	})
	fmt.Fprintln(w, "# HELP relatch_counter_total Per-span work counters (pivots, augmenting paths, rules fired, ...).")
	fmt.Fprintln(w, "# TYPE relatch_counter_total counter")
	for _, k := range ckeys {
		fmt.Fprintf(w, "relatch_counter_total{span=%q,counter=%q} %d\n", k.span, k.name, counters[k])
	}

	gkeys := make([]key, 0, len(gauges))
	for k := range gauges {
		gkeys = append(gkeys, k)
	}
	sort.Slice(gkeys, func(i, j int) bool {
		if gkeys[i].span != gkeys[j].span {
			return gkeys[i].span < gkeys[j].span
		}
		return gkeys[i].name < gkeys[j].name
	})
	fmt.Fprintln(w, "# HELP relatch_gauge Per-span point-in-time values (node counts, LP sizes, ...).")
	fmt.Fprintln(w, "# TYPE relatch_gauge gauge")
	for _, k := range gkeys {
		fmt.Fprintf(w, "relatch_gauge{span=%q,gauge=%q} %d\n", k.span, k.name, gauges[k])
	}
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
