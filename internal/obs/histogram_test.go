package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram("h_seconds", []float64{0.001, 0.01, 0.1})
	h.Observe(500 * time.Microsecond) // bucket 0
	h.Observe(time.Millisecond)       // le is inclusive → bucket 0
	h.Observe(5 * time.Millisecond)   // bucket 1
	h.Observe(50 * time.Millisecond)  // bucket 2
	h.Observe(time.Second)            // +Inf
	h.Observe(-time.Second)           // clamped to 0 → bucket 0
	if got := h.Count(); got != 6 {
		t.Fatalf("Count = %d, want 6", got)
	}
	counts, total := h.snapshotCounts()
	if total != 6 {
		t.Fatalf("snapshot total = %d, want 6", total)
	}
	want := []int64{3, 1, 1, 1}
	for i, w := range want {
		if counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, counts[i], w)
		}
	}
	if got, want := h.Sum(), 500*time.Microsecond+time.Millisecond+5*time.Millisecond+50*time.Millisecond+time.Second; got != want {
		t.Errorf("Sum = %v, want %v", got, want)
	}
}

func TestHistogramBadBoundsFallBack(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {1, 1}, {2, 1}} {
		h := NewHistogram("h_seconds", bounds)
		if len(h.bounds) != len(DefaultLatencyBuckets()) {
			t.Errorf("bounds %v: got %d buckets, want default set", bounds, len(h.bounds))
		}
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(time.Second)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 || h.Name() != "" {
		t.Fatal("nil histogram accessors must be zero no-ops")
	}
	if err := h.WriteMetrics(&strings.Builder{}); err != nil {
		t.Fatalf("nil WriteMetrics: %v", err)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram("h_seconds", []float64{0.010, 0.020, 0.040})
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	// 100 observations uniformly inside (10ms, 20ms]: the estimator
	// interpolates linearly between the bucket bounds.
	for i := 0; i < 100; i++ {
		h.Observe(15 * time.Millisecond)
	}
	p50 := h.Quantile(0.50)
	if p50 < 14*time.Millisecond || p50 > 16*time.Millisecond {
		t.Errorf("p50 = %v, want ≈15ms", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 19*time.Millisecond || p99 > 20*time.Millisecond {
		t.Errorf("p99 = %v, want just under 20ms", p99)
	}
	// An observation past the last bound clamps to the largest finite
	// bound rather than reporting +Inf.
	h2 := NewHistogram("h_seconds", []float64{0.010})
	h2.Observe(time.Hour)
	if got := h2.Quantile(1); got != 10*time.Millisecond {
		t.Errorf("+Inf quantile = %v, want clamp to 10ms", got)
	}
	if got := h2.Quantile(0); got != 0 {
		t.Errorf("Quantile(0) = %v, want 0", got)
	}
}

func TestHistogramExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(`relatch_job_stage_seconds{stage="solve"}`)
	h.Observe(3 * time.Millisecond)
	h.Observe(300 * time.Millisecond)
	r.Histogram(`relatch_job_stage_seconds{stage="certify"}`).Observe(time.Millisecond)
	r.Add(`relatch_queue_jobs_total{event="enqueued"}`, 2)
	r.Set("relatch_queue_depth", 1)

	var b strings.Builder
	if err := r.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if err := ValidateMetrics(strings.NewReader(out)); err != nil {
		t.Fatalf("exposition does not parse: %v\noutput:\n%s", err, out)
	}
	for _, want := range []string{
		"# TYPE relatch_job_stage_seconds histogram",
		`relatch_job_stage_seconds_bucket{stage="solve",le="+Inf"} 2`,
		`relatch_job_stage_seconds_count{stage="solve"} 2`,
		`relatch_job_stage_seconds_count{stage="certify"} 1`,
		`relatch_queue_jobs_total{event="enqueued"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// One TYPE line per base name, even with two label sets.
	if got := strings.Count(out, "# TYPE relatch_job_stage_seconds histogram"); got != 1 {
		t.Errorf("TYPE line count = %d, want 1", got)
	}
}

func TestValidateMetricsRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"1bad_name 3",
		`ok{label=unquoted} 1`,
		`ok{label="unterminated} 1`,
		"ok notafloat",
		"ok NaN",
		"# TYPE ok sideways",
	} {
		if err := ValidateMetrics(strings.NewReader(bad + "\n")); err == nil {
			t.Errorf("ValidateMetrics accepted %q", bad)
		}
	}
	good := "# plain comment\n# HELP x_total help text\n# TYPE x_total counter\nx_total 4\nx_seconds_sum 0.25 1700000000\n"
	if err := ValidateMetrics(strings.NewReader(good)); err != nil {
		t.Errorf("ValidateMetrics rejected valid input: %v", err)
	}
}

func TestRegistryCloseSemantics(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds")
	r.Close()
	r.Close() // idempotent
	if r.Histogram("h_seconds") != nil {
		t.Fatal("closed registry must stop vending histograms")
	}
	r.Add("c_total", 1)
	r.Set("g", 1)
	if r.Counter("c_total") != 0 || r.Gauge("g") != 0 {
		t.Fatal("closed registry must drop writes")
	}
	h.Observe(time.Millisecond) // pre-close histogram stays safe
	var b strings.Builder
	if err := r.WriteMetrics(&b); err == nil {
		t.Fatal("closed registry WriteMetrics must refuse")
	}
}

// TestUntracedRecordPathAllocFree pins the serving hot path's disabled
// and always-on costs: StartSpan with no tracer attached, counter adds
// on the resulting nil span, and histogram records (real and nil) must
// all stay allocation-free. Measured 0.0 on the reference container;
// any regression means a box/closure crept into a per-job path.
func TestUntracedRecordPathAllocFree(t *testing.T) {
	ctx := context.Background()
	h := NewHistogram("h_seconds", DefaultLatencyBuckets())
	var nilH *Histogram
	avg := testing.AllocsPerRun(200, func() {
		sp, ctx2 := StartSpan(ctx, "stage")
		sp.Add("pivots", 1)
		sp.End()
		_ = ctx2
		h.Observe(17 * time.Millisecond)
		nilH.Observe(17 * time.Millisecond)
	})
	if avg != 0 {
		t.Errorf("untraced record path: %.1f allocs per op, want 0", avg)
	}
}
