package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ValidateMetrics checks that every line of r is valid Prometheus text
// exposition (version 0.0.4): metric and label names match the spec
// grammar, label values are correctly quoted and escaped, sample values
// parse as floats and are never NaN, and `# TYPE` lines carry a known
// type keyword. It is the parser-roundtrip gate behind the /metrics
// tests: whatever the exporters emit must scrape cleanly.
func ValidateMetrics(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		n++
		line := sc.Text()
		var err error
		switch {
		case strings.TrimSpace(line) == "":
			continue
		case strings.HasPrefix(line, "#"):
			err = validateMetricComment(line)
		default:
			err = validateMetricSample(line)
		}
		if err != nil {
			return fmt.Errorf("obs: metrics line %d (%q): %w", n, line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("obs: reading metrics: %w", err)
	}
	return nil
}

func isMetricName(s string) bool {
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return s != ""
}

func isLabelName(s string) bool {
	for i, c := range s {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return s != ""
}

// validateMetricComment accepts `# HELP name text`, `# TYPE name kind`
// and plain comments (any other `#` line, per the format spec).
func validateMetricComment(line string) error {
	fields := strings.Fields(line)
	if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
		return nil // plain comment
	}
	if !isMetricName(fields[2]) {
		return fmt.Errorf("bad metric name %q in %s line", fields[2], fields[1])
	}
	if fields[1] == "TYPE" {
		if len(fields) != 4 {
			return fmt.Errorf("TYPE line needs exactly one type keyword")
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
	}
	return nil
}

// validateMetricSample checks one sample line:
// name[{label="value",...}] value [timestamp]
func validateMetricSample(line string) error {
	rest := line
	nameEnd := strings.IndexAny(rest, "{ ")
	if nameEnd < 0 {
		return fmt.Errorf("no value")
	}
	if !isMetricName(rest[:nameEnd]) {
		return fmt.Errorf("bad metric name %q", rest[:nameEnd])
	}
	rest = rest[nameEnd:]
	if rest[0] == '{' {
		var err error
		rest, err = validateLabelSet(rest)
		if err != nil {
			return err
		}
	}
	rest = strings.TrimLeft(rest, " ")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("want value [timestamp], got %q", rest)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return fmt.Errorf("bad sample value %q: %v", fields[0], err)
	}
	if math.IsNaN(v) {
		return fmt.Errorf("NaN sample value")
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return nil
}

// validateLabelSet consumes a leading {label="value",...} block and
// returns the remainder of the line.
func validateLabelSet(s string) (string, error) {
	s = s[1:] // consume '{'
	for {
		if s == "" {
			return "", fmt.Errorf("unterminated label set")
		}
		if s[0] == '}' {
			return s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return "", fmt.Errorf("label without '='")
		}
		if !isLabelName(s[:eq]) {
			return "", fmt.Errorf("bad label name %q", s[:eq])
		}
		s = s[eq+1:]
		if s == "" || s[0] != '"' {
			return "", fmt.Errorf("unquoted label value")
		}
		s = s[1:]
		for {
			if s == "" {
				return "", fmt.Errorf("unterminated label value")
			}
			switch s[0] {
			case '\\':
				if len(s) < 2 || (s[1] != '\\' && s[1] != '"' && s[1] != 'n') {
					return "", fmt.Errorf("bad escape in label value")
				}
				s = s[2:]
				continue
			case '"':
				s = s[1:]
			default:
				s = s[1:]
				continue
			}
			break
		}
		switch {
		case strings.HasPrefix(s, ","):
			s = s[1:]
		case strings.HasPrefix(s, "}"):
		default:
			return "", fmt.Errorf("expected ',' or '}' after label value")
		}
	}
}
