package obs

// Cluster metric families: the canonical names of the sharded-serving
// metrics, centralised so internal/cluster (which records them), the
// engine HTTP frontend (which exposes them on /metrics) and the tests
// that validate the exposition all agree on spelling. Every family is
// a Registry counter or gauge; label sets are rendered literally into
// the registered name via Label, matching the registry's
// one-name-per-series convention (see relatch_queue_jobs_total).
const (
	// MetricClusterForward counts submissions a non-owner node pushed
	// to (or failed to push to) the owner shard.
	// Labels: outcome="ok"|"fallback_local"|"peer_rejected".
	MetricClusterForward = "relatch_cluster_forward_total"
	// MetricClusterPeerFetch counts warm-result pulls over the peer
	// cache protocol. Labels: outcome="hit"|"miss"|"error".
	MetricClusterPeerFetch = "relatch_cluster_peer_fetch_total"
	// MetricClusterBreakerOpen counts circuit-breaker trips, one per
	// closed→open transition. Labels: peer="<node-id>".
	MetricClusterBreakerOpen = "relatch_cluster_breaker_open_total"
	// MetricClusterAuth counts front-door policy decisions.
	// Labels: result="ok"|"unauthorized"|"rate_limited"|"quota".
	MetricClusterAuth = "relatch_cluster_auth_total"
	// MetricClusterPeers is a gauge of the static membership size
	// (peers excluding self).
	MetricClusterPeers = "relatch_cluster_peers"
	// MetricClusterStatusProxied counts job-status polls answered by
	// proxying to the owning peer. Labels: outcome="ok"|"error".
	MetricClusterStatusProxied = "relatch_cluster_status_proxied_total"
)

// Label renders a metric family with one literal Prometheus label
// pair, the form Registry.Add and Registry.Set expect:
// Label("relatch_cluster_auth_total", "result", "ok") →
// `relatch_cluster_auth_total{result="ok"}`.
func Label(family, key, value string) string {
	return family + `{` + key + `="` + value + `"}`
}
