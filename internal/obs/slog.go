package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"
	"time"
)

// LogHandler is the repo's slog handler: compact single-line records
// ("15:04:05.000 LEVEL message key=value ...") aimed at progress output
// on stderr. It replaces the ad-hoc fmt.Fprintf(os.Stderr, ...) progress
// lines the pipeline used to emit — library code logs through slog and
// the binary decides the sink.
type LogHandler struct {
	mu     *sync.Mutex // pointer: WithAttrs/WithGroup copies share one writer lock
	w      io.Writer   // guarded by mu
	level  slog.Leveler
	prefix string // pre-rendered groups/attrs from WithAttrs/WithGroup
	groups []string
}

// NewLogHandler creates a handler writing at or above the level
// (nil means slog.LevelInfo).
func NewLogHandler(w io.Writer, level slog.Leveler) *LogHandler {
	if level == nil {
		level = slog.LevelInfo
	}
	return &LogHandler{mu: &sync.Mutex{}, w: w, level: level}
}

// NewLogger is the convenience constructor the CLIs use:
// slog.New(NewLogHandler(w, level)).
func NewLogger(w io.Writer, level slog.Leveler) *slog.Logger {
	return slog.New(NewLogHandler(w, level))
}

// Enabled implements slog.Handler.
func (h *LogHandler) Enabled(_ context.Context, l slog.Level) bool {
	return l >= h.level.Level()
}

// Handle implements slog.Handler.
func (h *LogHandler) Handle(_ context.Context, rec slog.Record) error {
	var b strings.Builder
	if !rec.Time.IsZero() {
		b.WriteString(rec.Time.Format("15:04:05.000"))
		b.WriteByte(' ')
	}
	b.WriteString(rec.Level.String())
	b.WriteByte(' ')
	b.WriteString(rec.Message)
	b.WriteString(h.prefix)
	qualifier := strings.Join(h.groups, ".")
	rec.Attrs(func(a slog.Attr) bool {
		appendAttr(&b, qualifier, a)
		return true
	})
	b.WriteByte('\n')
	h.mu.Lock()
	defer h.mu.Unlock()
	_, err := io.WriteString(h.w, b.String())
	return err
}

// WithAttrs implements slog.Handler.
func (h *LogHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	var b strings.Builder
	qualifier := strings.Join(h.groups, ".")
	for _, a := range attrs {
		appendAttr(&b, qualifier, a)
	}
	nh := *h
	nh.prefix = h.prefix + b.String()
	return &nh
}

// WithGroup implements slog.Handler.
func (h *LogHandler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	nh := *h
	nh.groups = append(append([]string(nil), h.groups...), name)
	return &nh
}

// appendAttr renders one attribute as " key=value", quoting values that
// contain spaces and flattening groups with dotted keys.
func appendAttr(b *strings.Builder, qualifier string, a slog.Attr) {
	if a.Equal(slog.Attr{}) {
		return
	}
	key := a.Key
	if qualifier != "" {
		key = qualifier + "." + key
	}
	if a.Value.Kind() == slog.KindGroup {
		for _, ga := range a.Value.Group() {
			appendAttr(b, key, ga)
		}
		return
	}
	v := a.Value.Resolve()
	var s string
	switch v.Kind() {
	case slog.KindDuration:
		s = fmtDuration(v.Duration())
	case slog.KindTime:
		s = v.Time().Format(time.RFC3339)
	default:
		s = v.String()
	}
	if strings.ContainsAny(s, " \t\n\"") {
		s = fmt.Sprintf("%q", s)
	}
	fmt.Fprintf(b, " %s=%s", key, s)
}

// discardHandler drops every record (slog.DiscardHandler exists only
// from Go 1.24; the module targets 1.22).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// DiscardLogger returns a logger that drops everything — the default for
// library code when the caller supplies no logger.
func DiscardLogger() *slog.Logger { return slog.New(discardHandler{}) }
