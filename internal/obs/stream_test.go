package obs

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestStreamDeliversInOrder(t *testing.T) {
	s := NewStream(16)
	sub, err := s.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	for i := 0; i < 5; i++ {
		s.Publish(StreamEvent{Kind: "stage", Name: "queued", Scope: "j1"})
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	for i := 1; i <= 5; i++ {
		ev, err := sub.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
		if ev.AtNS == 0 || ev.Scope != "j1" {
			t.Fatalf("event not stamped: %+v", ev)
		}
	}
}

func TestStreamDropOldest(t *testing.T) {
	s := NewStream(4)
	sub, err := s.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	for i := 0; i < 10; i++ {
		s.Publish(StreamEvent{Kind: "event", Name: "e"})
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	// The ring kept only the last 4; the first read reports the gap.
	if _, err := sub.Next(ctx); !errors.Is(err, ErrLagged) {
		t.Fatalf("want ErrLagged, got %v", err)
	}
	ev, err := sub.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Seq != 7 {
		t.Fatalf("resumed at seq %d, want oldest retained (7)", ev.Seq)
	}
}

func TestStreamResumeAfterSeq(t *testing.T) {
	s := NewStream(16)
	for i := 0; i < 6; i++ {
		s.Publish(StreamEvent{Kind: "event", Name: "e"})
	}
	sub, err := s.Subscribe(3)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	ev, err := sub.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Seq != 4 {
		t.Fatalf("resume after 3 delivered seq %d, want 4", ev.Seq)
	}

	// A resume point that already fell off the ring reports the gap once.
	s2 := NewStream(2)
	for i := 0; i < 8; i++ {
		s2.Publish(StreamEvent{Kind: "event", Name: "e"})
	}
	sub2, err := s2.Subscribe(1)
	if err != nil {
		t.Fatal(err)
	}
	defer sub2.Close()
	if _, err := sub2.Next(ctx); !errors.Is(err, ErrLagged) {
		t.Fatalf("stale resume: want ErrLagged, got %v", err)
	}
	if ev, err := sub2.Next(ctx); err != nil || ev.Seq != 7 {
		t.Fatalf("stale resume continued at (%v, %v), want seq 7", ev.Seq, err)
	}
}

func TestStreamCloseSemantics(t *testing.T) {
	s := NewStream(8)
	sub, err := s.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	s.Publish(StreamEvent{Kind: "event", Name: "before"})
	s.Close()
	s.Close() // idempotent
	s.Publish(StreamEvent{Kind: "event", Name: "after"})

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	// Retained events drain first, then ErrClosed.
	if ev, err := sub.Next(ctx); err != nil || ev.Name != "before" {
		t.Fatalf("drain: got (%v, %v)", ev.Name, err)
	}
	if _, err := sub.Next(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("after drain: want ErrClosed, got %v", err)
	}
	if _, err := s.Subscribe(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("subscribe on closed: want ErrClosed, got %v", err)
	}
	sub.Close()
	if n := s.Subscribers(); n != 0 {
		t.Fatalf("Subscribers = %d after close, want 0", n)
	}
}

func TestStreamSubscriptionClose(t *testing.T) {
	s := NewStream(8)
	sub, err := s.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Subscribers() != 1 {
		t.Fatal("subscriber not registered")
	}
	sub.Close()
	sub.Close() // idempotent
	if s.Subscribers() != 0 {
		t.Fatal("subscriber leaked after Close")
	}
	if _, err := sub.Next(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("Next on closed subscription: want ErrClosed, got %v", err)
	}
}

func TestStreamNextHonoursContext(t *testing.T) {
	s := NewStream(8)
	sub, err := s.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := sub.Next(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}

// TestStreamPublishNeverBlocks pins the core contract: a subscriber
// that never reads must not stall publishers.
func TestStreamPublishNeverBlocks(t *testing.T) {
	s := NewStream(4)
	sub, err := s.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 10000; i++ {
			s.Publish(StreamEvent{Kind: "event", Name: "burst"})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Publish blocked on an idle subscriber")
	}
}

func TestStreamNilSafe(t *testing.T) {
	var s *Stream
	s.Publish(StreamEvent{})
	s.Close()
	if s.Subscribers() != 0 {
		t.Fatal("nil Subscribers != 0")
	}
	if _, err := s.Subscribe(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("nil Subscribe: want ErrClosed, got %v", err)
	}
	var sub *Subscription
	sub.Close()
	if _, err := sub.Next(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("nil Next: want ErrClosed, got %v", err)
	}
}

// TestTracerStreamSpanFeed checks the span → stream bridge: scope
// inheritance, lifecycle kinds, and counter deltas, end to end through
// the public tracer API.
func TestTracerStreamSpanFeed(t *testing.T) {
	tr := New("root")
	stream := tr.EnableStream(64)
	if tr.EnableStream(8) != stream {
		t.Fatal("EnableStream must be first-call-wins")
	}
	if tr.Stream() != stream {
		t.Fatal("Stream accessor mismatch")
	}
	sub, err := stream.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	ctx := WithTracer(context.Background(), tr)
	sp, ctx := StartSpan(ctx, "queue.job")
	sp.SetScope("job-1")
	if sp.Scope() != "job-1" {
		t.Fatal("SetScope/Scope roundtrip failed")
	}
	child, _ := StartSpan(ctx, "core.retime")
	child.Add("pivots", 42)
	child.Event("fallback")
	child.End()
	child.End() // second End must not re-publish
	sp.End()

	ctxWait, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	type step struct {
		kind, name, scope string
		value             int64
	}
	want := []step{
		{"span_start", "queue.job", "", 0}, // scope set after start
		{"span_start", "core.retime", "job-1", 0},
		{"counter", "pivots", "job-1", 42},
		{"event", "fallback", "job-1", 0},
		{"span_end", "core.retime", "job-1", -1}, // -1 = any positive duration
		{"span_end", "queue.job", "job-1", -1},
	}
	for i, w := range want {
		ev, err := sub.Next(ctxWait)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if ev.Kind != w.kind || ev.Name != w.name || ev.Scope != w.scope {
			t.Fatalf("step %d: got %+v, want %+v", i, ev, w)
		}
		if w.value == -1 {
			if ev.Value < 0 {
				t.Fatalf("step %d: negative duration %d", i, ev.Value)
			}
		} else if ev.Value != w.value {
			t.Fatalf("step %d: value %d, want %d", i, ev.Value, w.value)
		}
	}
}

// TestStreamConcurrentPublishSubscribe runs publishers against a
// reading subscriber and a churning one under the race detector.
func TestStreamConcurrentPublishSubscribe(t *testing.T) {
	s := NewStream(64)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		sub, err := s.Subscribe(0)
		if err != nil {
			return
		}
		defer sub.Close()
		for {
			if _, err := sub.Next(ctx); err != nil && !errors.Is(err, ErrLagged) {
				return
			}
		}
	}()
	var writers sync.WaitGroup
	for p := 0; p < 4; p++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 500; i++ {
				s.Publish(StreamEvent{Kind: "event", Name: "x"})
			}
		}()
	}
	writers.Add(1)
	go func() {
		defer writers.Done()
		for i := 0; i < 100; i++ {
			sub, err := s.Subscribe(0)
			if err != nil {
				return
			}
			sub.Close()
		}
	}()
	writers.Wait()
	s.Close() // unblocks the reader with ErrClosed
	readers.Wait()
}
