package experiments

import (
	"relatch/internal/report"
)

// TableI reproduces "Circuit information of original flop-based designs":
// stage budget P, flop count, near-critical endpoints, generation/analysis
// runtime, and flip-flop design area. Paper values ride along for
// comparison.
func (s *Suite) TableI() *report.Table {
	t := report.New("Table I: circuit information of original flop-based designs",
		"Circuit", "P (ns)", "flop #", "NCE #", "Run-time (s)", "Area",
		"paper P", "paper NCE", "paper area")
	var ps, flops, nces, rts, areas []float64
	for _, r := range s.Runs {
		p := r.Profile
		t.AddRow(p.Name,
			report.F(r.Scheme.MaxStageDelay(), 3),
			report.I(p.Flops),
			report.I(r.InitialED),
			report.F(r.GenRuntime.Seconds(), 3),
			report.F(r.FlopAreaDesign, 2),
			report.F(p.PaperP, 1), report.I(p.NCE), report.F(p.PaperArea, 2))
		ps = append(ps, r.Scheme.MaxStageDelay())
		flops = append(flops, float64(p.Flops))
		nces = append(nces, float64(r.InitialED))
		rts = append(rts, r.GenRuntime.Seconds())
		areas = append(areas, r.FlopAreaDesign)
	}
	t.AddRow("average",
		report.F(report.Mean(ps), 3), report.F(report.Mean(flops), 0),
		report.F(report.Mean(nces), 0), report.F(report.Mean(rts), 3),
		report.F(report.Mean(areas), 2), "", "", "")
	t.AddNote("NCE = masters error-detecting at the initial slave positions; runtime is netlist generation + timing analysis (the paper's column measured a commercial synthesis run)")
	return t
}

// TableII compares gate-based against path-based delay models for G-RAR
// total area across the overhead sweep.
func (s *Suite) TableII() *report.Table {
	cols := []string{"Circuit"}
	for _, c := range s.Overheads() {
		n := OverheadName(c)
		cols = append(cols, n+" Gate", n+" Path", n+" Impr(%)")
	}
	t := report.New("Table II: total area, gate-based vs path-based delay G-RAR", cols...)
	imprs := make(map[float64][]float64)
	for _, r := range s.Runs {
		row := []string{r.Profile.Name}
		for _, c := range s.Overheads() {
			or := r.ByOverhead[c]
			gate, path := or.GRARGate.TotalArea, or.GRARPath.TotalArea
			row = append(row, report.F(gate, 2), report.F(path, 2), report.Impr(gate, path))
			imprs[c] = append(imprs[c], report.ImprValue(gate, path))
		}
		t.AddRow(row...)
	}
	avg := []string{"average"}
	for _, c := range s.Overheads() {
		avg = append(avg, "", "", report.F(report.Mean(imprs[c]), 2))
	}
	t.AddRow(avg...)
	t.AddNote("paper averages: 4.89 / 5.69 / 7.59 %% for low/medium/high")
	return t
}

// TableIII compares the three virtual-library variants on total area.
func (s *Suite) TableIII() *report.Table {
	cols := []string{"Circuit"}
	for _, c := range s.Overheads() {
		n := OverheadName(c)
		cols = append(cols, n+" NVL", n+" EVL", n+" RVL")
	}
	t := report.New("Table III: area comparison of virtual library approaches", cols...)
	sums := map[string][]float64{}
	for _, r := range s.Runs {
		row := []string{r.Profile.Name}
		for _, c := range s.Overheads() {
			or := r.ByOverhead[c]
			row = append(row, report.F(or.NVL.TotalArea, 2), report.F(or.EVL.TotalArea, 2), report.F(or.RVL.TotalArea, 2))
			key := OverheadName(c)
			sums[key+"N"] = append(sums[key+"N"], or.NVL.TotalArea)
			sums[key+"E"] = append(sums[key+"E"], or.EVL.TotalArea)
			sums[key+"R"] = append(sums[key+"R"], or.RVL.TotalArea)
		}
		t.AddRow(row...)
	}
	avg := []string{"average"}
	for _, c := range s.Overheads() {
		key := OverheadName(c)
		avg = append(avg,
			report.F(report.Mean(sums[key+"N"]), 2),
			report.F(report.Mean(sums[key+"E"]), 2),
			report.F(report.Mean(sums[key+"R"]), 2))
	}
	t.AddRow(avg...)
	t.AddNote("expected shape: RVL beats EVL at every overhead and matches or beats NVL (paper Section VI-C)")
	return t
}

// TableIV compares sequential logic area among Base, RVL-RAR and G-RAR.
func (s *Suite) TableIV() *report.Table {
	return s.baseRVLG("Table IV: sequential logic area, Base vs RVL-RAR vs G-RAR",
		func(or *OverheadRun) (float64, float64, float64) {
			return or.Base.SeqArea, or.RVL.SeqArea, or.GRARPath.SeqArea
		},
		"paper averages: G-RAR saves 20.4 / 23.9 / 29.6 %% over base at low/medium/high")
}

// TableV compares total area among Base, RVL-RAR and G-RAR.
func (s *Suite) TableV() *report.Table {
	return s.baseRVLG("Table V: total area, Base vs RVL-RAR vs G-RAR",
		func(or *OverheadRun) (float64, float64, float64) {
			return or.Base.TotalArea, or.RVL.TotalArea, or.GRARPath.TotalArea
		},
		"paper averages: G-RAR saves 6.96 / 9.52 / 14.73 %% over base; RVL −0.29 / 2.85 / 9.59 %%")
}

// baseRVLG renders the shared Base/RVL/G layout of Tables IV and V.
func (s *Suite) baseRVLG(title string, pick func(*OverheadRun) (float64, float64, float64), note string) *report.Table {
	cols := []string{"Circuit"}
	for _, c := range s.Overheads() {
		n := OverheadName(c)
		cols = append(cols, n+" Base", n+" RVL", n+" RVL Impr(%)", n+" G", n+" G Impr(%)")
	}
	t := report.New(title, cols...)
	rvlImpr := map[float64][]float64{}
	gImpr := map[float64][]float64{}
	for _, r := range s.Runs {
		row := []string{r.Profile.Name}
		for _, c := range s.Overheads() {
			base, rvl, g := pick(r.ByOverhead[c])
			row = append(row, report.F(base, 2),
				report.F(rvl, 2), report.Impr(base, rvl),
				report.F(g, 2), report.Impr(base, g))
			rvlImpr[c] = append(rvlImpr[c], report.ImprValue(base, rvl))
			gImpr[c] = append(gImpr[c], report.ImprValue(base, g))
		}
		t.AddRow(row...)
	}
	avg := []string{"average"}
	for _, c := range s.Overheads() {
		avg = append(avg, "", "", report.F(report.Mean(rvlImpr[c]), 2), "", report.F(report.Mean(gImpr[c]), 2))
	}
	t.AddRow(avg...)
	t.AddNote(note)
	return t
}

// TableVI reports slave and error-detecting master counts per approach.
func (s *Suite) TableVI() *report.Table {
	cols := []string{"Circuit", "Approach"}
	for _, c := range s.Overheads() {
		n := OverheadName(c)
		cols = append(cols, n+" slave #", n+" EDL #")
	}
	t := report.New("Table VI: slave and error-detecting master latches by approach", cols...)
	for _, r := range s.Runs {
		rows := []struct {
			name  string
			slave func(*OverheadRun) int
			edl   func(*OverheadRun) int
		}{
			{"Base", func(o *OverheadRun) int { return o.Base.SlaveCount }, func(o *OverheadRun) int { return o.Base.EDCount }},
			{"RVL", func(o *OverheadRun) int { return o.RVL.SlaveCount }, func(o *OverheadRun) int { return o.RVL.EDCount }},
			{"G", func(o *OverheadRun) int { return o.GRARPath.SlaveCount }, func(o *OverheadRun) int { return o.GRARPath.EDCount }},
		}
		for _, spec := range rows {
			row := []string{r.Profile.Name, spec.name}
			for _, c := range s.Overheads() {
				or := r.ByOverhead[c]
				row = append(row, report.I(spec.slave(or)), report.I(spec.edl(or)))
			}
			t.AddRow(row...)
		}
	}
	t.AddNote("expected shape: G-RAR ends with the fewest EDL masters on circuits beyond ~32 flops, reaching 0 on the large ones (paper Table VI)")
	return t
}

// TableVII reports wall-clock runtimes.
func (s *Suite) TableVII() *report.Table {
	cols := []string{"Circuit"}
	for _, c := range s.Overheads() {
		n := OverheadName(c)
		cols = append(cols, n+" Base", n+" RVL", n+" G")
	}
	t := report.New("Table VII: run-time (s) comparison", cols...)
	for _, r := range s.Runs {
		row := []string{r.Profile.Name}
		for _, c := range s.Overheads() {
			or := r.ByOverhead[c]
			row = append(row,
				report.F(or.Base.Runtime.Seconds(), 3),
				report.F(or.RVL.Runtime.Seconds(), 3),
				report.F(or.GRARPath.Runtime.Seconds(), 3))
		}
		t.AddRow(row...)
	}
	t.AddNote("absolute values are not comparable to the paper's (its runtimes are dominated by commercial-tool timing queries); the network-flow solve is a small fraction of each run, as the paper also observes")
	return t
}

// TableVIII reports simulated error rates.
func (s *Suite) TableVIII() *report.Table {
	cols := []string{"Circuit"}
	for _, c := range s.Overheads() {
		n := OverheadName(c)
		cols = append(cols, n+" Base", n+" RVL", n+" G")
	}
	t := report.New("Table VIII: error-rate (%) comparison", cols...)
	sums := map[string][]float64{}
	for _, r := range s.Runs {
		row := []string{r.Profile.Name}
		for _, c := range s.Overheads() {
			or := r.ByOverhead[c]
			row = append(row,
				report.F(or.ErrBase.ErrorRate, 2),
				report.F(or.ErrRVL.ErrorRate, 2),
				report.F(or.ErrG.ErrorRate, 2))
			n := OverheadName(c)
			sums[n+"B"] = append(sums[n+"B"], or.ErrBase.ErrorRate)
			sums[n+"R"] = append(sums[n+"R"], or.ErrRVL.ErrorRate)
			sums[n+"G"] = append(sums[n+"G"], or.ErrG.ErrorRate)
		}
		t.AddRow(row...)
	}
	avg := []string{"average"}
	for _, c := range s.Overheads() {
		n := OverheadName(c)
		avg = append(avg,
			report.F(report.Mean(sums[n+"B"]), 2),
			report.F(report.Mean(sums[n+"R"]), 2),
			report.F(report.Mean(sums[n+"G"]), 2))
	}
	t.AddRow(avg...)
	t.AddNote("paper averages: base 21.02 %%, RVL ~1.96 %%, G 14.84 / 9.04 / 9.05 %%; both retimers cut the base error rate")
	return t
}

// TableIX compares fixed-master against movable-master RVL-RAR.
func (s *Suite) TableIX() *report.Table {
	cols := []string{"Circuit"}
	for _, c := range s.Overheads() {
		n := OverheadName(c)
		cols = append(cols, n+" fixed", n+" movable", n+" diff(%)")
	}
	t := report.New("Table IX: total area, fixed-master vs movable-master RVL-RAR", cols...)
	diffs := map[float64][]float64{}
	for _, r := range s.Runs {
		row := []string{r.Profile.Name}
		for _, c := range s.Overheads() {
			m := r.ByOverhead[c].Movable
			row = append(row,
				report.F(m.Fixed.TotalArea, 2),
				report.F(m.Movable.TotalArea, 2),
				report.Impr(m.Fixed.TotalArea, m.Movable.TotalArea))
			diffs[c] = append(diffs[c], report.ImprValue(m.Fixed.TotalArea, m.Movable.TotalArea))
		}
		t.AddRow(row...)
	}
	avg := []string{"average"}
	for _, c := range s.Overheads() {
		avg = append(avg, "", "", report.F(report.Mean(diffs[c]), 2))
	}
	t.AddRow(avg...)
	t.AddNote("paper averages: −0.73 / 0.01 / −0.28 %% — releasing the master do-not-retime constraint yields little to no gain")
	return t
}

// AllTables renders every table in order.
func (s *Suite) AllTables() []*report.Table {
	return []*report.Table{
		s.TableI(), s.TableII(), s.TableIII(), s.TableIV(), s.TableV(),
		s.TableVI(), s.TableVII(), s.TableVIII(), s.TableIX(),
	}
}

// Summary aggregates the headline comparisons (the numbers the abstract
// quotes): average total-area improvement of G-RAR and RVL-RAR over base
// retiming per overhead, and G-RAR's edge over RVL-RAR.
func (s *Suite) Summary() *report.Table {
	t := report.New("Headline summary: average improvements over base retiming",
		"Overhead", "G-RAR seq area (%)", "G-RAR total area (%)", "RVL-RAR total area (%)", "G-RAR vs RVL (%)")
	for _, c := range s.Overheads() {
		var gSeq, gTot, rTot, gVsR []float64
		for _, r := range s.Runs {
			or := r.ByOverhead[c]
			gSeq = append(gSeq, report.ImprValue(or.Base.SeqArea, or.GRARPath.SeqArea))
			gTot = append(gTot, report.ImprValue(or.Base.TotalArea, or.GRARPath.TotalArea))
			rTot = append(rTot, report.ImprValue(or.Base.TotalArea, or.RVL.TotalArea))
			gVsR = append(gVsR, report.ImprValue(or.RVL.TotalArea, or.GRARPath.TotalArea))
		}
		t.AddRow(OverheadName(c),
			report.F(report.Mean(gSeq), 2), report.F(report.Mean(gTot), 2),
			report.F(report.Mean(rTot), 2), report.F(report.Mean(gVsR), 2))
	}
	t.AddNote("paper: seq-area savings up to 29.6%%, total-area savings up to 14.7%%, G-RAR beats RVL by ~5.1%% on average (abstract & Section VI-D); %d circuits run", len(s.Runs))
	return t
}

// AblationSizingReclaim renders the sizing-reclaim ablation behind the
// closing observation of Section VI-D: "with a modest area increase of,
// on average 5%, error-rates can be further reduced, sometimes to 0".
// For each circuit it shows G-RAR's residual EDL count, the count after
// max-delay constraints at Π plus a size-only compile, the combinational
// area paid, and the error-rate change.
func (s *Suite) AblationSizingReclaim() *report.Table {
	t := report.New("Ablation: sizing-based EDL reclaim after G-RAR (medium overhead)",
		"Circuit", "EDL before", "EDL after", "upsized gates", "comb area +%", "err% before", "err% after")
	// Prefer the medium point when present.
	c := s.Overheads()[0]
	for _, ov := range s.Overheads() {
		if ov == 1.0 {
			c = ov
		}
	}
	var combDeltas []float64
	for _, r := range s.Runs {
		or := r.ByOverhead[c]
		if or == nil {
			continue
		}
		before := or.GRARPath
		after := or.GReclaim
		delta := 100 * (after.Circuit.CombArea() - before.Circuit.CombArea()) / before.Circuit.CombArea()
		combDeltas = append(combDeltas, delta)
		t.AddRow(r.Profile.Name,
			report.I(before.EDCount), report.I(after.EDCount),
			report.I(or.ReclaimUpsized), report.F(delta, 2),
			report.F(or.ErrG.ErrorRate, 2), report.F(or.ErrGReclaim.ErrorRate, 2))
	}
	t.AddRow("average", "", "", "", report.F(report.Mean(combDeltas), 2), "", "")
	t.AddNote("paper (Section VI-D, discussing Table VIII): ~5%% average area buys further error-rate reduction, sometimes to 0")
	return t
}
