// Package experiments reproduces every table of the paper's evaluation
// (Section VI, Tables I–IX) on the benchmark suite: it runs base
// retiming, G-RAR under both delay models, the three virtual-library
// variants, the movable-master extension and the error-rate simulation
// for every circuit and EDL overhead, then renders the paper's tables
// from the collected results.
package experiments

import (
	"context"
	"fmt"
	"log/slog"
	"time"

	"relatch/internal/bench"
	"relatch/internal/cell"
	"relatch/internal/clocking"
	"relatch/internal/core"
	"relatch/internal/flow"
	"relatch/internal/netlist"
	"relatch/internal/obs"
	"relatch/internal/sim"
	"relatch/internal/sta"
	"relatch/internal/vlib"
)

// Overheads are the paper's EDL overhead sweep: low, medium, high.
var Overheads = []float64{0.5, 1.0, 2.0}

// OverheadName labels an overhead value the way the tables do.
func OverheadName(c float64) string {
	switch c {
	case 0.5:
		return "Low"
	case 1.0:
		return "Medium"
	case 2.0:
		return "High"
	}
	return fmt.Sprintf("c=%g", c)
}

// Config tunes a suite run.
type Config struct {
	// Profiles selects benchmark names; nil runs all twelve.
	Profiles []string
	// Overheads sweeps EDL cost; nil uses the paper's {0.5, 1, 2}.
	Overheads []float64
	// SimCycles bounds the error-rate simulation length per run; large
	// circuits are automatically scaled down. 0 picks a default.
	SimCycles int
	// MovableTrials bounds the master-move hill climb (Table IX).
	MovableTrials int
	// Method selects the flow solver.
	Method flow.Method
	// Logger, when non-nil, receives one structured record per completed
	// step (obs.NewLogger renders them as compact single lines); nil
	// discards progress.
	Logger *slog.Logger
}

// CircuitRun holds everything measured for one benchmark.
type CircuitRun struct {
	Profile bench.Profile
	Seq     *netlist.SeqCircuit
	Circuit *netlist.Circuit
	Scheme  clocking.Scheme

	// Table I quantities.
	FlopAreaDesign float64 // flip-flop design area (FF + comb)
	InitialED      int     // measured NCE
	GenRuntime     time.Duration

	ByOverhead map[float64]*OverheadRun
}

// OverheadRun is one (circuit, c) cell of the sweep.
type OverheadRun struct {
	C float64

	Base     *core.Result
	GRARPath *core.Result
	GRARGate *core.Result

	NVL, EVL, RVL *vlib.Result
	Movable       *vlib.MovableResult

	// GReclaim is the sizing-reclaim ablation (Section VI-D's closing
	// observation): G-RAR's result after max-delay constraints at Π and
	// a size-only compile.
	GReclaim       *core.Result
	ReclaimUpsized int

	ErrBase, ErrRVL, ErrG, ErrGReclaim sim.Stats
}

// Suite is a completed sweep.
type Suite struct {
	Config Config
	Runs   []*CircuitRun
}

func (cfg *Config) logger() *slog.Logger {
	if cfg.Logger != nil {
		return cfg.Logger
	}
	return obs.DiscardLogger()
}

// simCycles scales the simulation length to the circuit size.
func (cfg *Config) simCycles(gates int) int {
	base := cfg.SimCycles
	if base <= 0 {
		base = 1000
	}
	if gates > 5000 {
		return base / 4
	}
	if gates > 2000 {
		return base / 2
	}
	return base
}

// Run executes the sweep.
func Run(cfg Config) (*Suite, error) {
	return RunCtx(context.Background(), cfg)
}

// RunCtx is Run under a context: cancellation or deadline expiry stops
// the sweep between stages (and mid-solve inside each stage, since every
// stage threads the context down to its flow solver or event loop) and
// surfaces as an error wrapping ctx.Err().
func RunCtx(ctx context.Context, cfg Config) (*Suite, error) {
	lib := cell.Default(1.0)
	profiles := cfg.Profiles
	if profiles == nil {
		for _, p := range bench.ISCAS89 {
			profiles = append(profiles, p.Name)
		}
	}
	overheads := cfg.Overheads
	if overheads == nil {
		overheads = Overheads
	}
	suite := &Suite{Config: cfg}
	for _, name := range profiles {
		prof, ok := bench.ProfileByName(name)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown benchmark %q", name)
		}
		run, err := runCircuit(ctx, &cfg, lib, prof, overheads)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", name, err)
		}
		suite.Runs = append(suite.Runs, run)
	}
	return suite, nil
}

func runCircuit(ctx context.Context, cfg *Config, lib *cell.Library, prof bench.Profile, overheads []float64) (*CircuitRun, error) {
	t0 := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sweep cancelled before %s: %w", prof.Name, err)
	}
	sp, ctx := obs.StartSpan(ctx, "experiments.circuit")
	defer sp.End()
	sp.Attr("bench", prof.Name)
	seq, err := prof.BuildSeq(lib)
	if err != nil {
		return nil, err
	}
	c, scheme, err := prof.CutAndCalibrate(seq)
	if err != nil {
		return nil, err
	}
	run := &CircuitRun{
		Profile:    prof,
		Seq:        seq,
		Circuit:    c,
		Scheme:     scheme,
		ByOverhead: make(map[float64]*OverheadRun),
	}
	run.FlopAreaDesign = float64(prof.Flops)*lib.FF.Area + c.CombArea()
	run.InitialED = bench.MeasureInitialED(c, scheme)
	run.GenRuntime = time.Since(t0)
	cfg.logger().Info("generated", "bench", prof.Name, "gates", c.GateCount(), "nce", run.InitialED)

	tm := sta.Analyze(c, sta.DefaultOptions(lib))
	cycles := cfg.simCycles(c.GateCount())

	for _, ov := range overheads {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sweep cancelled before %s c=%g: %w", prof.Name, ov, err)
		}
		or := &OverheadRun{C: ov}
		copt := core.Options{Scheme: scheme, EDLCost: ov, Method: cfg.Method}

		if or.Base, err = core.RetimeCtx(ctx, c, copt, core.ApproachBase); err != nil {
			return nil, err
		}
		if or.GRARPath, err = core.RetimeCtx(ctx, c, copt, core.ApproachGRAR); err != nil {
			return nil, err
		}
		gateOpt := copt
		gateOpt.TimingModel = sta.ModelGate
		if or.GRARGate, err = core.RetimeCtx(ctx, c, gateOpt, core.ApproachGRAR); err != nil {
			return nil, err
		}

		vopt := vlib.Options{Scheme: scheme, EDLCost: ov, Method: cfg.Method, PostSwap: true}
		if or.NVL, err = vlib.RetimeCtx(ctx, c, vopt, vlib.NVL); err != nil {
			return nil, err
		}
		if or.EVL, err = vlib.RetimeCtx(ctx, c, vopt, vlib.EVL); err != nil {
			return nil, err
		}
		if or.RVL, err = vlib.RetimeCtx(ctx, c, vopt, vlib.RVL); err != nil {
			return nil, err
		}

		trials := cfg.MovableTrials
		if trials <= 0 {
			trials = 24
			if c.GateCount() > 5000 {
				trials = 8
			}
		}
		if or.Movable, err = vlib.RetimeMovableMasterCtx(ctx, seq, scheme, vopt, trials); err != nil {
			return nil, err
		}

		if or.GRARPath.EDCount > 0 {
			reclaimed, comp, err := core.ReclaimBySizing(or.GRARPath, 0)
			if err != nil {
				return nil, err
			}
			or.GReclaim = reclaimed
			or.ReclaimUpsized = comp.Upsized
		} else {
			or.GReclaim = or.GRARPath
		}

		simCfg := sim.Config{Scheme: scheme, Latch: lib.BaseLatch, Cycles: cycles, Seed: prof.Seed}
		if or.ErrBase, err = sim.ErrorRateCtx(ctx, tm, or.Base.Placement, or.Base.EDMasters, simCfg); err != nil {
			return nil, err
		}
		// The RVL run may have resized gates; simulate on its circuit.
		rvlTm := sta.Analyze(or.RVL.Circuit, sta.DefaultOptions(lib))
		if or.ErrRVL, err = sim.ErrorRateCtx(ctx, rvlTm, or.RVL.Placement, or.RVL.EDMasters, simCfg); err != nil {
			return nil, err
		}
		if or.ErrG, err = sim.ErrorRateCtx(ctx, tm, or.GRARPath.Placement, or.GRARPath.EDMasters, simCfg); err != nil {
			return nil, err
		}
		reclaimTm := tm
		if or.GReclaim != or.GRARPath {
			reclaimTm = sta.Analyze(or.GReclaim.Circuit, sta.DefaultOptions(lib))
		}
		if or.ErrGReclaim, err = sim.ErrorRateCtx(ctx, reclaimTm, or.GReclaim.Placement, or.GReclaim.EDMasters, simCfg); err != nil {
			return nil, err
		}

		run.ByOverhead[ov] = or
		cfg.logger().Info("overhead swept", "bench", prof.Name, "c", ov,
			"base_area", or.Base.TotalArea, "grar_area", or.GRARPath.TotalArea, "rvl_area", or.RVL.TotalArea)
	}
	return run, nil
}

// Overheads returns the sweep values actually run, in order.
func (s *Suite) Overheads() []float64 {
	if s.Config.Overheads != nil {
		return s.Config.Overheads
	}
	return Overheads
}
