// Package experiments reproduces every table of the paper's evaluation
// (Section VI, Tables I–IX) on the benchmark suite: it runs base
// retiming, G-RAR under both delay models, the three virtual-library
// variants, the movable-master extension and the error-rate simulation
// for every circuit and EDL overhead, then renders the paper's tables
// from the collected results.
package experiments

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"relatch/internal/bench"
	"relatch/internal/cell"
	"relatch/internal/clocking"
	"relatch/internal/core"
	"relatch/internal/engine"
	"relatch/internal/flow"
	"relatch/internal/netlist"
	"relatch/internal/obs"
	"relatch/internal/sim"
	"relatch/internal/sta"
	"relatch/internal/vlib"
)

// Overheads are the paper's EDL overhead sweep: low, medium, high.
var Overheads = []float64{0.5, 1.0, 2.0}

// OverheadName labels an overhead value the way the tables do.
func OverheadName(c float64) string {
	switch c {
	case 0.5:
		return "Low"
	case 1.0:
		return "Medium"
	case 2.0:
		return "High"
	}
	return fmt.Sprintf("c=%g", c)
}

// Config tunes a suite run.
type Config struct {
	// Profiles selects benchmark names; nil runs all twelve.
	Profiles []string
	// Overheads sweeps EDL cost; nil uses the paper's {0.5, 1, 2}.
	Overheads []float64
	// SimCycles bounds the error-rate simulation length per run; large
	// circuits are automatically scaled down. 0 picks a default.
	SimCycles int
	// MovableTrials bounds the master-move hill climb (Table IX).
	MovableTrials int
	// Method selects the flow solver.
	Method flow.Method
	// Parallelism bounds how many benchmarks sweep concurrently and how
	// many retiming jobs the backing engine solves at once (≤ 1 runs
	// serially). Results are identical at any setting: every job solves
	// on its own clone and rows are collected in submission order.
	Parallelism int
	// CacheDir, when non-empty, adds an on-disk layer to the engine's
	// result cache, so repeated sweeps restore (and re-certify) results
	// instead of re-running the flow solver.
	CacheDir string
	// Logger, when non-nil, receives one structured record per completed
	// step (obs.NewLogger renders them as compact single lines); nil
	// discards progress.
	Logger *slog.Logger
}

// CircuitRun holds everything measured for one benchmark.
type CircuitRun struct {
	Profile bench.Profile
	Seq     *netlist.SeqCircuit
	Circuit *netlist.Circuit
	Scheme  clocking.Scheme

	// Table I quantities.
	FlopAreaDesign float64 // flip-flop design area (FF + comb)
	InitialED      int     // measured NCE
	GenRuntime     time.Duration

	ByOverhead map[float64]*OverheadRun
}

// OverheadRun is one (circuit, c) cell of the sweep.
type OverheadRun struct {
	C float64

	Base     *core.Result
	GRARPath *core.Result
	GRARGate *core.Result

	NVL, EVL, RVL *vlib.Result
	Movable       *vlib.MovableResult

	// GReclaim is the sizing-reclaim ablation (Section VI-D's closing
	// observation): G-RAR's result after max-delay constraints at Π and
	// a size-only compile.
	GReclaim       *core.Result
	ReclaimUpsized int

	ErrBase, ErrRVL, ErrG, ErrGReclaim sim.Stats
}

// Suite is a completed sweep.
type Suite struct {
	Config Config
	Runs   []*CircuitRun
}

func (cfg *Config) logger() *slog.Logger {
	if cfg.Logger != nil {
		return cfg.Logger
	}
	return obs.DiscardLogger()
}

// simCycles scales the simulation length to the circuit size.
func (cfg *Config) simCycles(gates int) int {
	base := cfg.SimCycles
	if base <= 0 {
		base = 1000
	}
	if gates > 5000 {
		return base / 4
	}
	if gates > 2000 {
		return base / 2
	}
	return base
}

// Run executes the sweep.
func Run(cfg Config) (*Suite, error) {
	return RunCtx(context.Background(), cfg)
}

// RunCtx is Run under a context: cancellation or deadline expiry stops
// the sweep between stages (and mid-solve inside each stage, since every
// stage threads the context down to its flow solver or event loop) and
// surfaces as an error wrapping ctx.Err().
//
// The retiming stages run as jobs on an engine bounded by
// Config.Parallelism; benchmarks sweep concurrently under the same
// bound. Suite.Runs keeps the requested profile order and every run is
// byte-identical to a serial sweep — jobs solve on clones, and results
// are collected by ticket, not by completion order.
func RunCtx(ctx context.Context, cfg Config) (*Suite, error) {
	lib := cell.Default(1.0)
	profiles := cfg.Profiles
	if profiles == nil {
		for _, p := range bench.ISCAS89 {
			profiles = append(profiles, p.Name)
		}
	}
	// Validate the whole list before burning any solve on it.
	profs := make([]bench.Profile, len(profiles))
	for i, name := range profiles {
		prof, ok := bench.ProfileByName(name)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown benchmark %q", name)
		}
		profs[i] = prof
	}
	overheads := cfg.Overheads
	if overheads == nil {
		overheads = Overheads
	}
	workers := cfg.Parallelism
	if workers <= 0 {
		workers = 1
	}
	cache, err := engine.NewCache(0, cfg.CacheDir)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	eng := engine.New(engine.Config{Workers: workers, Cache: cache})
	defer eng.Close()

	suite := &Suite{Config: cfg}
	suite.Runs = make([]*CircuitRun, len(profs))
	errs := make([]error, len(profs))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, prof := range profs {
		wg.Add(1)
		go func(i int, prof bench.Profile) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			run, err := runCircuit(ctx, &cfg, eng, lib, prof, overheads)
			if err != nil {
				errs[i] = fmt.Errorf("experiments: %s: %w", prof.Name, err)
				return
			}
			suite.Runs[i] = run
		}(i, prof)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return suite, nil
}

// retimeJobs submits the six retiming runs of one (circuit, overhead)
// cell and collects them in submission order. All six solve concurrently
// when the engine has slots to spare.
func retimeJobs(ctx context.Context, eng *engine.Engine, c *netlist.Circuit, scheme clocking.Scheme, ov float64, method flow.Method, or *OverheadRun) error {
	copt := core.Options{Scheme: scheme, EDLCost: ov, Method: method}
	gateOpt := copt
	gateOpt.TimingModel = sta.ModelGate
	jobs := []engine.Job{
		{Circuit: c, Approach: engine.Base, Options: copt},
		{Circuit: c, Approach: engine.GRAR, Options: copt},
		{Circuit: c, Approach: engine.GRAR, Options: gateOpt},
		{Circuit: c, Approach: engine.NVL, Options: copt, PostSwap: true},
		{Circuit: c, Approach: engine.EVL, Options: copt, PostSwap: true},
		{Circuit: c, Approach: engine.RVL, Options: copt, PostSwap: true},
	}
	tickets := make([]*engine.Ticket, len(jobs))
	for i, job := range jobs {
		t, err := eng.Submit(ctx, job)
		if err != nil {
			return err
		}
		tickets[i] = t
	}
	outs := make([]*engine.Outcome, len(tickets))
	var firstErr error
	for i, t := range tickets {
		out, err := t.Wait(ctx)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		outs[i] = out
	}
	if firstErr != nil {
		return firstErr
	}
	or.Base = outs[0].Core
	or.GRARPath = outs[1].Core
	or.GRARGate = outs[2].Core
	or.NVL = outs[3].VLib
	or.EVL = outs[4].VLib
	or.RVL = outs[5].VLib
	return nil
}

func runCircuit(ctx context.Context, cfg *Config, eng *engine.Engine, lib *cell.Library, prof bench.Profile, overheads []float64) (*CircuitRun, error) {
	t0 := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sweep cancelled before %s: %w", prof.Name, err)
	}
	sp, ctx := obs.StartSpan(ctx, "experiments.circuit")
	defer sp.End()
	sp.Attr("bench", prof.Name)
	seq, err := prof.BuildSeq(lib)
	if err != nil {
		return nil, err
	}
	c, scheme, err := prof.CutAndCalibrate(seq)
	if err != nil {
		return nil, err
	}
	run := &CircuitRun{
		Profile:    prof,
		Seq:        seq,
		Circuit:    c,
		Scheme:     scheme,
		ByOverhead: make(map[float64]*OverheadRun),
	}
	run.FlopAreaDesign = float64(prof.Flops)*lib.FF.Area + c.CombArea()
	run.InitialED = bench.MeasureInitialED(c, scheme)
	run.GenRuntime = time.Since(t0)
	cfg.logger().Info("generated", "bench", prof.Name, "gates", c.GateCount(), "nce", run.InitialED)

	tm := sta.Analyze(c, sta.DefaultOptions(lib))
	cycles := cfg.simCycles(c.GateCount())

	for _, ov := range overheads {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sweep cancelled before %s c=%g: %w", prof.Name, ov, err)
		}
		or := &OverheadRun{C: ov}
		if err := retimeJobs(ctx, eng, c, scheme, ov, cfg.Method, or); err != nil {
			return nil, err
		}

		vopt := vlib.Options{Scheme: scheme, EDLCost: ov, Method: cfg.Method, PostSwap: true}
		trials := cfg.MovableTrials
		if trials <= 0 {
			trials = 24
			if c.GateCount() > 5000 {
				trials = 8
			}
		}
		if or.Movable, err = vlib.RetimeMovableMasterCtx(ctx, seq, scheme, vopt, trials); err != nil {
			return nil, err
		}

		if or.GRARPath.EDCount > 0 {
			reclaimed, comp, err := core.ReclaimBySizing(or.GRARPath, 0)
			if err != nil {
				return nil, err
			}
			or.GReclaim = reclaimed
			or.ReclaimUpsized = comp.Upsized
		} else {
			or.GReclaim = or.GRARPath
		}

		simCfg := sim.Config{Scheme: scheme, Latch: lib.BaseLatch, Cycles: cycles, Seed: prof.Seed}
		if or.ErrBase, err = sim.ErrorRateCtx(ctx, tm, or.Base.Placement, or.Base.EDMasters, simCfg); err != nil {
			return nil, err
		}
		// The RVL run may have resized gates; simulate on its circuit.
		rvlTm := sta.Analyze(or.RVL.Circuit, sta.DefaultOptions(lib))
		if or.ErrRVL, err = sim.ErrorRateCtx(ctx, rvlTm, or.RVL.Placement, or.RVL.EDMasters, simCfg); err != nil {
			return nil, err
		}
		if or.ErrG, err = sim.ErrorRateCtx(ctx, tm, or.GRARPath.Placement, or.GRARPath.EDMasters, simCfg); err != nil {
			return nil, err
		}
		reclaimTm := tm
		if or.GReclaim != or.GRARPath {
			reclaimTm = sta.Analyze(or.GReclaim.Circuit, sta.DefaultOptions(lib))
		}
		if or.ErrGReclaim, err = sim.ErrorRateCtx(ctx, reclaimTm, or.GReclaim.Placement, or.GReclaim.EDMasters, simCfg); err != nil {
			return nil, err
		}

		run.ByOverhead[ov] = or
		cfg.logger().Info("overhead swept", "bench", prof.Name, "c", ov,
			"base_area", or.Base.TotalArea, "grar_area", or.GRARPath.TotalArea, "rvl_area", or.RVL.TotalArea)
	}
	return run, nil
}

// Overheads returns the sweep values actually run, in order.
func (s *Suite) Overheads() []float64 {
	if s.Config.Overheads != nil {
		return s.Config.Overheads
	}
	return Overheads
}
