package experiments

import (
	"context"
	"testing"

	"relatch/internal/bench"
	"relatch/internal/cell"
	"relatch/internal/cert"
	"relatch/internal/core"
	"relatch/internal/vlib"
)

// TestCertifyAllApproaches retimes every seed benchmark under every
// approach and requires the independent certifier to come back clean:
// the solver stack must never emit a placement whose labels, structure,
// ED classification or cost accounting the static analysis can fault.
// Large profiles are skipped in -short mode to keep the quick loop
// quick; the full sweep runs in CI's race job and via make certify.
func TestCertifyAllApproaches(t *testing.T) {
	lib := cell.Default(1.0)
	const overhead = 0.5
	ctx := context.Background()

	for _, prof := range bench.ISCAS89 {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			if testing.Short() && prof.Gates > 1000 {
				t.Skipf("skipping %d-gate profile in short mode", prof.Gates)
			}
			t.Parallel()
			seq, err := prof.BuildSeq(lib)
			if err != nil {
				t.Fatal(err)
			}
			c, scheme, err := prof.CutAndCalibrate(seq)
			if err != nil {
				t.Fatal(err)
			}

			// Core approaches certify inside RetimeCtx: the post-solve
			// gate fails the call itself when findings surface.
			copt := core.Options{Scheme: scheme, EDLCost: overhead}
			for _, ap := range []core.Approach{core.ApproachGRAR, core.ApproachBase} {
				res, err := core.RetimeCtx(ctx, c, copt, ap)
				if err != nil {
					t.Fatalf("%v: %v", ap, err)
				}
				if res.Certificate == nil {
					t.Fatalf("%v: result carries no certificate", ap)
				}
				if !res.Certificate.Certified() {
					t.Fatalf("%v: not certified: %v", ap, res.Certificate.Findings)
				}
			}

			// Virtual-library variants certify externally, the way rar
			// -certify does: snapshot before, compare by logic function
			// after (the incremental compile reassigns drive strengths).
			shape := cert.Snapshot(c)
			vopt := vlib.Options{Scheme: scheme, EDLCost: overhead, PostSwap: true}
			for _, v := range []vlib.Variant{vlib.NVL, vlib.EVL, vlib.RVL} {
				res, err := vlib.RetimeCtx(ctx, c, vopt, v)
				if err != nil {
					t.Fatalf("%v: %v", v, err)
				}
				crt, err := cert.Run(ctx, cert.Subject{
					Original:    shape,
					Retimed:     res.Circuit,
					Placement:   res.Placement,
					Scheme:      scheme,
					Latch:       res.Circuit.Lib.BaseLatch,
					EDMasters:   res.EDMasters,
					SlaveCount:  res.SlaveCount,
					MasterCount: res.MasterCount,
					EDCount:     res.EDCount,
					SeqArea:     res.SeqArea,
					EDLCost:     overhead,
					Approach:    v.String(),
				}, cert.Config{AllowResizing: true})
				if err != nil {
					t.Fatalf("%v: cert.Run: %v", v, err)
				}
				if !crt.Certified() {
					t.Fatalf("%v: not certified: %v", v, crt.Findings)
				}
			}
		})
	}
}
