package experiments

import (
	"testing"
)

// TestPaperShapes verifies the qualitative results the paper reports,
// on a medium slice of the benchmark suite at the high overhead (where
// the contrasts are largest):
//
//   - G-RAR never loses to base retiming on sequential or total area,
//   - the best virtual-library variant (RVL) sits between base and G-RAR
//     in aggregate,
//   - EVL never beats RVL (Table III's ordering),
//   - G-RAR ends with at most base's error-detecting latch count, and
//   - both retimed designs cut the base error rate in aggregate.
func TestPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("medium integration sweep")
	}
	s, err := Run(Config{
		Profiles:      []string{"s1423", "s5378", "s9234"},
		Overheads:     []float64{2.0},
		SimCycles:     400,
		MovableTrials: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	var baseTot, rvlTot, gTot float64
	var baseErr, gErr float64
	for _, r := range s.Runs {
		or := r.ByOverhead[2.0]
		name := r.Profile.Name

		if or.GRARPath.SeqArea > or.Base.SeqArea+1e-9 {
			t.Errorf("%s: G-RAR sequential area %g exceeds base %g", name, or.GRARPath.SeqArea, or.Base.SeqArea)
		}
		if or.GRARPath.EDCount > or.Base.EDCount {
			t.Errorf("%s: G-RAR EDL %d exceeds base %d", name, or.GRARPath.EDCount, or.Base.EDCount)
		}
		if or.EVL.TotalArea < or.RVL.TotalArea-1e-9 {
			t.Errorf("%s: EVL area %g beats RVL %g (Table III ordering)", name, or.EVL.TotalArea, or.RVL.TotalArea)
		}
		baseTot += or.Base.TotalArea
		rvlTot += or.RVL.TotalArea
		gTot += or.GRARPath.TotalArea
		baseErr += or.ErrBase.ErrorRate
		gErr += or.ErrG.ErrorRate

		// Ablation: sizing reclaim never increases EDL, and any area it
		// spends is combinational.
		if or.GReclaim.EDCount > or.GRARPath.EDCount {
			t.Errorf("%s: reclaim increased EDL %d -> %d", name, or.GRARPath.EDCount, or.GReclaim.EDCount)
		}
		if or.ErrGReclaim.ErrorRate > or.ErrG.ErrorRate+1e-9 {
			t.Errorf("%s: reclaim worsened the error rate %.2f -> %.2f", name, or.ErrG.ErrorRate, or.ErrGReclaim.ErrorRate)
		}

		// Table IX: movable masters change little.
		m := or.Movable
		ratio := m.Movable.TotalArea / m.Fixed.TotalArea
		if ratio < 0.90 || ratio > 1.10 {
			t.Errorf("%s: movable/fixed ratio %g outside the little-to-no-gain band", name, ratio)
		}
	}
	if gTot > baseTot {
		t.Errorf("aggregate: G-RAR %g worse than base %g", gTot, baseTot)
	}
	if gTot > rvlTot+1e-9 && rvlTot > baseTot {
		t.Errorf("aggregate ordering broken: base %g, rvl %g, g %g", baseTot, rvlTot, gTot)
	}
	if gErr > baseErr {
		t.Errorf("aggregate error rate: G %g worse than base %g", gErr, baseErr)
	}
}
