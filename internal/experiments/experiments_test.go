package experiments

import (
	"strings"
	"testing"
)

// smallSuite runs the full pipeline on the two smallest benchmarks at a
// single overhead; the full sweep lives in cmd/paper and the benchmarks.
func smallSuite(t *testing.T) *Suite {
	t.Helper()
	s, err := Run(Config{
		Profiles:      []string{"s1196", "s1488"},
		Overheads:     []float64{1.0},
		SimCycles:     200,
		MovableTrials: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSuiteRuns(t *testing.T) {
	s := smallSuite(t)
	if len(s.Runs) != 2 {
		t.Fatalf("runs = %d", len(s.Runs))
	}
	for _, r := range s.Runs {
		or := r.ByOverhead[1.0]
		if or == nil {
			t.Fatal("missing overhead run")
		}
		// The central inequality chain of the paper, on the model
		// objective: G-RAR's sequential cost never exceeds base's.
		if or.GRARPath.SeqArea > or.Base.SeqArea+1e-9 {
			t.Errorf("%s: G-RAR seq area %g > base %g", r.Profile.Name, or.GRARPath.SeqArea, or.Base.SeqArea)
		}
		// Simulation soundness.
		for name, st := range map[string]interface {
			missed() int
		}{} {
			_ = name
			_ = st
		}
		if or.ErrBase.MissedViolations+or.ErrG.MissedViolations+or.ErrRVL.MissedViolations != 0 {
			t.Error("simulation missed violations")
		}
		if or.ErrBase.HardFailures+or.ErrG.HardFailures+or.ErrRVL.HardFailures != 0 {
			t.Error("simulation hard failures")
		}
	}
}

func TestAllTablesRender(t *testing.T) {
	s := smallSuite(t)
	tables := s.AllTables()
	if len(tables) != 9 {
		t.Fatalf("tables = %d, want 9", len(tables))
	}
	for i, tab := range tables {
		text := tab.String()
		if !strings.Contains(text, "s1196") && i != 0 {
			// Table I includes every circuit too; all tables carry rows.
			t.Errorf("table %d missing circuit rows:\n%s", i+1, text)
		}
		if tab.Markdown() == "" || tab.CSV() == "" {
			t.Errorf("table %d: empty alternate renderings", i+1)
		}
	}
	if sum := s.Summary().String(); !strings.Contains(sum, "Medium") {
		t.Errorf("summary missing overhead row:\n%s", sum)
	}
}

func TestUnknownProfileRejected(t *testing.T) {
	if _, err := Run(Config{Profiles: []string{"nope"}}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestOverheadNames(t *testing.T) {
	if OverheadName(0.5) != "Low" || OverheadName(1.0) != "Medium" || OverheadName(2.0) != "High" {
		t.Error("overhead names wrong")
	}
	if OverheadName(0.75) != "c=0.75" {
		t.Error("custom overhead label wrong")
	}
}

// TestParallelismMatchesSerial is the suite-level determinism contract:
// a parallel sweep must be value-identical to a serial one — jobs solve
// on clones and results are collected in submission order, so the only
// thing Parallelism may change is wall-clock time.
func TestParallelismMatchesSerial(t *testing.T) {
	run := func(par int) *OverheadRun {
		s, err := Run(Config{
			Profiles:      []string{"s1196"},
			Overheads:     []float64{1.0},
			SimCycles:     100,
			MovableTrials: 2,
			Parallelism:   par,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s.Runs[0].ByOverhead[1.0]
	}
	serial := run(1)
	parallel := run(8)

	type row struct {
		slaves, masters, ed int
		seqArea             float64
	}
	rows := func(or *OverheadRun) map[string]row {
		return map[string]row{
			"base":      {or.Base.SlaveCount, or.Base.MasterCount, or.Base.EDCount, or.Base.SeqArea},
			"grar-path": {or.GRARPath.SlaveCount, or.GRARPath.MasterCount, or.GRARPath.EDCount, or.GRARPath.SeqArea},
			"grar-gate": {or.GRARGate.SlaveCount, or.GRARGate.MasterCount, or.GRARGate.EDCount, or.GRARGate.SeqArea},
			"nvl":       {or.NVL.SlaveCount, or.NVL.MasterCount, or.NVL.EDCount, or.NVL.SeqArea},
			"evl":       {or.EVL.SlaveCount, or.EVL.MasterCount, or.EVL.EDCount, or.EVL.SeqArea},
			"rvl":       {or.RVL.SlaveCount, or.RVL.MasterCount, or.RVL.EDCount, or.RVL.SeqArea},
			"greclaim":  {or.GReclaim.SlaveCount, or.GReclaim.MasterCount, or.GReclaim.EDCount, or.GReclaim.SeqArea},
		}
	}
	sr, pr := rows(serial), rows(parallel)
	for name, want := range sr {
		if got := pr[name]; got != want {
			t.Errorf("%s: parallel %+v != serial %+v", name, got, want)
		}
	}
	// The seeded simulation sees identical placements, so its statistics
	// must match too.
	if serial.ErrBase != parallel.ErrBase || serial.ErrG != parallel.ErrG || serial.ErrRVL != parallel.ErrRVL {
		t.Error("simulation statistics diverge between serial and parallel sweeps")
	}
}
