package experiments

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestSweepCancellation cancels a Table VII-scale sweep (a mid-size
// benchmark across the full overhead sweep) shortly after it starts and
// requires it to stop promptly with an error wrapping context.Canceled —
// the pipeline must not run the remaining circuits and overheads to
// completion.
func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()

	start := time.Now()
	_, err := RunCtx(ctx, Config{
		Profiles:      []string{"s5378", "s9234", "s13207"},
		Overheads:     []float64{0.5, 1.0, 2.0},
		SimCycles:     1000,
		MovableTrials: 24,
	})
	elapsed := time.Since(start)

	if err == nil {
		t.Fatal("cancelled sweep completed without error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want to wrap context.Canceled", err)
	}
	// The uncancelled sweep takes tens of seconds; cancellation must cut
	// it short. The bound is generous to stay robust on slow machines
	// while still distinguishing "stopped mid-run" from "ran to the end".
	if elapsed > 10*time.Second {
		t.Errorf("cancelled sweep still took %v", elapsed)
	}
}

// TestSweepDeadline exercises the same path through a deadline instead
// of an explicit cancel.
func TestSweepDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := RunCtx(ctx, Config{
		Profiles:  []string{"s5378"},
		Overheads: []float64{1.0},
		SimCycles: 500,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want to wrap context.DeadlineExceeded", err)
	}
}
