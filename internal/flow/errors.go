package flow

import "errors"

// Sentinel errors classifying every way a solve can fail. Call sites wrap
// them with context via fmt.Errorf("flow: ...: %w", Err...), so callers
// match with errors.Is while messages stay descriptive. The sentinels
// themselves carry no "flow:" prefix — the wrapping message does.
var (
	// ErrInfeasible: no flow satisfies the demands (or no assignment
	// satisfies the difference constraints). Definitive — retrying with a
	// different solver cannot help.
	ErrInfeasible = errors.New("infeasible")
	// ErrUnbounded: a negative-cost cycle of infinite capacity drives the
	// objective to −∞. Definitive.
	ErrUnbounded = errors.New("unbounded")
	// ErrPivotLimit: the simplex hit its pivot budget before reaching
	// optimality. Transient in the sense that another solver (or a larger
	// budget) may still succeed; MethodAuto falls back to SSP on it.
	ErrPivotLimit = errors.New("pivot limit exceeded")
	// ErrNotCertified: a candidate solution failed the LP-duality
	// optimality certificate (primal feasibility + dual feasibility +
	// complementary slackness). MethodAuto falls back to SSP on it.
	ErrNotCertified = errors.New("solution failed optimality certificate")
	// ErrUnbalanced: supplies and demands do not sum to zero. A malformed
	// input, not a solver failure.
	ErrUnbalanced = errors.New("unbalanced demands")
	// ErrBadArc: an arc is structurally invalid (self-loop, endpoint out
	// of range, negative or over-range capacity).
	ErrBadArc = errors.New("invalid arc")
	// ErrOverflow: costs or demands are large enough that the solvers'
	// int64 arithmetic (big-M bases, saturation supplies) could overflow.
	ErrOverflow = errors.New("magnitude overflow")
	// ErrBadMethod: an unrecognized solver-method name (ParseMethod).
	ErrBadMethod = errors.New("unknown method")
	// ErrInternal: a solver produced a solution that fails its own
	// verification (conservation, capacities, cost bookkeeping). Always a
	// bug in this package, never a property of the input.
	ErrInternal = errors.New("internal solver inconsistency")
)
