package flow

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// randomFeasible builds a dense random transshipment instance that both
// solvers can solve (supplies routed through a grid of positive-cost
// arcs with generous capacities).
func randomFeasible(t *testing.T, rng *rand.Rand, n int) *Network {
	t.Helper()
	nw := NewNetwork(n)
	var supply int64
	for v := 0; v < n-1; v++ {
		d := int64(rng.Intn(9) - 4)
		nw.SetDemand(v, d)
		supply += d
	}
	nw.SetDemand(n-1, -supply)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			addArc(t, nw, u, v, int64(rng.Intn(20)+1), int64(rng.Intn(30)+10))
		}
	}
	return nw
}

func TestSolveMethodInfeasibleIsDefinitive(t *testing.T) {
	// A consumer no arc can reach: both solvers must prove infeasibility,
	// and MethodAuto must NOT mask it by falling back.
	nw := NewNetwork(3)
	nw.SetDemand(0, -5)
	nw.SetDemand(2, 5)
	addArc(t, nw, 0, 1, 1, Unbounded)
	_, rep, err := nw.SolveMethod(context.Background(), MethodAuto)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	if rep.Fallback {
		t.Error("infeasibility triggered a fallback; it is definitive")
	}
}

func TestSolveMethodUnboundedIsDefinitive(t *testing.T) {
	// A negative cycle with unbounded capacity.
	nw := NewNetwork(2)
	addArc(t, nw, 0, 1, -3, Unbounded)
	addArc(t, nw, 1, 0, 1, Unbounded)
	_, rep, err := nw.SolveMethod(context.Background(), MethodAuto)
	if !errors.Is(err, ErrUnbounded) {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
	if rep.Fallback {
		t.Error("unboundedness triggered a fallback; it is definitive")
	}
}

func TestSolveMethodUnbalancedRejected(t *testing.T) {
	nw := NewNetwork(2)
	nw.SetDemand(0, 3)
	addArc(t, nw, 0, 1, 1, Unbounded)
	_, _, err := nw.SolveMethod(context.Background(), MethodAuto)
	if !errors.Is(err, ErrUnbalanced) {
		t.Fatalf("err = %v, want ErrUnbalanced", err)
	}
}

func TestOverflowScaleCostRejected(t *testing.T) {
	nw := NewNetwork(2)
	nw.SetDemand(0, -1)
	nw.SetDemand(1, 1)
	addArc(t, nw, 0, 1, Unbounded, Unbounded)
	addArc(t, nw, 0, 1, Unbounded/2, Unbounded)
	for _, m := range []Method{MethodSimplex, MethodSSP, MethodAuto} {
		if _, _, err := nw.SolveMethod(context.Background(), m); !errors.Is(err, ErrOverflow) {
			t.Errorf("%v: err = %v, want ErrOverflow", m, err)
		}
	}
}

func TestPivotLimitTriggersSSPFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nw := randomFeasible(t, rng, 12)

	// Reference answer with the default budget.
	ref, err := nw.SolveSimplex()
	if err != nil {
		t.Fatal(err)
	}

	// One pivot cannot finish a 12-node dense instance: the explicit
	// simplex must fail with ErrPivotLimit...
	nw.SetPivotLimit(1)
	_, _, err = nw.SolveMethod(context.Background(), MethodSimplex)
	if !errors.Is(err, ErrPivotLimit) {
		t.Fatalf("explicit simplex err = %v, want ErrPivotLimit", err)
	}

	// ...and MethodAuto must degrade to SSP, certify, and match.
	sol, rep, err := nw.SolveMethod(context.Background(), MethodAuto)
	if err != nil {
		t.Fatalf("auto solve failed: %v", err)
	}
	if !rep.Fallback || rep.Solver != MethodSSP {
		t.Fatalf("report = %+v, want SSP fallback", rep)
	}
	if !rep.Certified {
		t.Error("fallback solution not certified")
	}
	if rep.FallbackReason == "" {
		t.Error("fallback reason empty")
	}
	if sol.Cost != ref.Cost {
		t.Errorf("fallback cost %d, reference %d", sol.Cost, ref.Cost)
	}
	if err := nw.Certify(sol); err != nil {
		t.Errorf("re-certification failed: %v", err)
	}
}

func TestCancelledContextStopsSolvers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	nw := randomFeasible(t, rng, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, m := range []Method{MethodSimplex, MethodSSP, MethodAuto} {
		_, rep, err := nw.SolveMethod(ctx, m)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%v: err = %v, want context.Canceled", m, err)
		}
		if rep.Fallback {
			t.Errorf("%v: cancellation triggered a fallback", m)
		}
	}
}

func TestDeadlineBoundedSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	nw := randomFeasible(t, rng, 10)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, _, err := nw.SolveMethod(ctx, MethodAuto); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestCertifyRejectsTamperedSolution(t *testing.T) {
	nw := NewNetwork(2)
	nw.SetDemand(0, -4)
	nw.SetDemand(1, 4)
	addArc(t, nw, 0, 1, 1, 6)
	addArc(t, nw, 0, 1, 5, Unbounded)
	sol, err := nw.SolveSimplex()
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Certify(sol); err != nil {
		t.Fatalf("genuine optimum failed certification: %v", err)
	}

	// Shift a unit from the cheap arc to the expensive one: still a
	// feasible flow, but no longer optimal nor cost-consistent.
	bad := &Solution{Flow: append([]int64(nil), sol.Flow...), Cost: sol.Cost, Potential: sol.Potential}
	bad.Flow[0]--
	bad.Flow[1]++
	if err := nw.Certify(bad); !errors.Is(err, ErrNotCertified) {
		t.Errorf("tampered flow err = %v, want ErrNotCertified", err)
	}

	// Tamper the duals instead: flow stays optimal but the certificate
	// must notice the broken complementary slackness.
	badPot := &Solution{Flow: sol.Flow, Cost: sol.Cost, Potential: append([]int64(nil), sol.Potential...)}
	badPot.Potential[0] += 100
	if err := nw.Certify(badPot); !errors.Is(err, ErrNotCertified) {
		t.Errorf("tampered potentials err = %v, want ErrNotCertified", err)
	}

	if err := nw.Certify(nil); !errors.Is(err, ErrNotCertified) {
		t.Errorf("nil solution err = %v, want ErrNotCertified", err)
	}
}

func TestParseMethod(t *testing.T) {
	cases := []struct {
		in   string
		want Method
		ok   bool
	}{
		{"auto", MethodAuto, true},
		{"", MethodAuto, true},
		{"simplex", MethodSimplex, true},
		{"ssp", MethodSSP, true},
		{"gurobi", 0, false},
	}
	for _, c := range cases {
		got, err := ParseMethod(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseMethod(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseMethod(%q) succeeded, want error", c.in)
		}
	}
}

func TestSolveMethodRandomCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		nw := randomFeasible(t, rng, 4+rng.Intn(6))
		sol, rep, err := nw.SolveMethod(context.Background(), MethodAuto)
		if err != nil {
			if errors.Is(err, ErrInfeasible) {
				continue
			}
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !rep.Certified {
			t.Fatalf("trial %d: uncertified result", trial)
		}
		ssp, err := nw.SolveSSP()
		if err != nil {
			t.Fatalf("trial %d: ssp: %v", trial, err)
		}
		if sol.Cost != ssp.Cost {
			t.Fatalf("trial %d: auto %d vs ssp %d", trial, sol.Cost, ssp.Cost)
		}
	}
}
