package flow

import (
	"context"
	"math/rand"
	"testing"

	"relatch/internal/obs"
)

// TestFallbackTraceRecordsBothSolvers forces the simplex→SSP fallback
// under a tracer and asserts the trace shows the whole story: the failed
// simplex attempt with its pivot counter, the SSP rescue with its
// augmenting-path counter, and the fallback event on flow.solve — all
// consistent with the returned Report.
func TestFallbackTraceRecordsBothSolvers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nw := randomFeasible(t, rng, 12)
	nw.SetPivotLimit(1)

	tr := obs.New("test")
	ctx := obs.WithTracer(context.Background(), tr)
	sol, rep, err := nw.SolveMethod(ctx, MethodAuto)
	if err != nil {
		t.Fatalf("auto solve failed: %v", err)
	}
	if sol == nil {
		t.Fatal("nil solution")
	}
	if !rep.Fallback || rep.Solver != MethodSSP {
		t.Fatalf("report = %+v, want SSP fallback", rep)
	}
	tr.Finish()
	r := tr.Report()

	simplex := r.Spans("flow.simplex")
	if len(simplex) != 1 {
		t.Fatalf("flow.simplex spans = %d, want 1", len(simplex))
	}
	if got := r.Sum("flow.simplex", "pivots"); got <= 0 {
		t.Errorf("simplex pivots = %d, want > 0", got)
	}
	ssp := r.Spans("flow.ssp")
	if len(ssp) != 1 {
		t.Fatalf("flow.ssp spans = %d, want 1", len(ssp))
	}
	if got := r.Sum("flow.ssp", "augmenting_paths"); got <= 0 {
		t.Errorf("ssp augmenting_paths = %d, want > 0", got)
	}
	if got := r.Sum("flow.ssp", "units_routed"); got <= 0 {
		t.Errorf("ssp units_routed = %d, want > 0", got)
	}

	solves := r.Spans("flow.solve")
	if len(solves) != 1 {
		t.Fatalf("flow.solve spans = %d, want 1", len(solves))
	}
	sp := solves[0]
	if got := sp.Counter("fallbacks"); got != 1 {
		t.Errorf("fallbacks counter = %d, want 1", got)
	}
	if reason := sp.AttrValue("fallback_reason"); reason == "" {
		t.Error("fallback_reason attr empty")
	} else if reason != rep.FallbackReason {
		t.Errorf("fallback_reason attr %q != report reason %q", reason, rep.FallbackReason)
	}
	var sawEvent bool
	for _, ev := range spanEvents(sp) {
		if ev == "fallback" {
			sawEvent = true
		}
	}
	if !sawEvent {
		t.Error("flow.solve span missing the fallback event")
	}
}

// spanEvents extracts event names for assertions.
func spanEvents(sp *obs.Span) []string {
	var names []string
	for _, ev := range sp.Events() {
		names = append(names, ev.Name)
	}
	return names
}

// TestUntracedSolveHasNoSpans pins the disabled fast path: without a
// tracer in the context nothing is recorded and nothing panics.
func TestUntracedSolveHasNoSpans(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nw := randomFeasible(t, rng, 10)
	if _, _, err := nw.SolveMethod(context.Background(), MethodAuto); err != nil {
		t.Fatalf("untraced solve failed: %v", err)
	}
	if tr := obs.FromContext(context.Background()); tr != nil {
		t.Fatal("FromContext on a bare context returned a tracer")
	}
}
