package flow

import (
	"context"
	"testing"
)

// Allocation regression gates for the two solver inner loops. The
// //relint:hot annotations and the hotalloc rule keep allocation
// *sources* out of the pivot/augmentation loops statically; these
// tests pin the *measured* behavior: a solve allocates a fixed,
// size-proportional amount of setup (basis arrays, the residual-path
// scratch, the Solution itself) and nothing per iteration, so the
// per-solve count is flat no matter how many pivots or augmentations
// the instance forces. The ceilings below were measured on the CI
// container (go1.22) with ~25% headroom; an increase means an
// allocation crept back into a hot loop (closure, append growth,
// interface boxing) and should be fixed, not accommodated.

// allocNet builds a ladder with chords: a long path plus skip arcs of
// clashing costs, so the simplex has pivots to do and SSP has several
// augmentations, while staying small enough for AllocsPerRun.
func allocNet(tb testing.TB, n int) *Network {
	tb.Helper()
	nw := NewNetwork(n)
	for i := 0; i < n-1; i++ {
		if _, err := nw.AddArc(i, i+1, int64(1+i%7), Unbounded); err != nil {
			tb.Fatal(err)
		}
	}
	for i := 0; i+2 < n; i += 2 {
		if _, err := nw.AddArc(i, i+2, int64(3+i%5), Unbounded); err != nil {
			tb.Fatal(err)
		}
	}
	nw.SetDemand(0, -64)
	nw.SetDemand(n-1, 64)
	return nw
}

func TestSimplexAllocsPerSolve(t *testing.T) {
	nw := allocNet(t, 64)
	ctx := context.Background()
	avg := testing.AllocsPerRun(50, func() {
		if _, err := nw.SolveSimplexCtx(ctx); err != nil {
			t.Fatal(err)
		}
	})
	// Measured 307.0 on the reference container; the setup (basis
	// arrays, residual adjacency, scratch) is size-proportional and
	// pivot-count-independent.
	const ceiling = 400
	if avg > ceiling {
		t.Errorf("SolveSimplexCtx: %.1f allocs per solve, gate is %d — an allocation has crept into the pivot loop", avg, ceiling)
	}
}

func TestSSPAllocsPerSolve(t *testing.T) {
	nw := allocNet(t, 64)
	ctx := context.Background()
	avg := testing.AllocsPerRun(50, func() {
		if _, err := nw.SolveSSPCtx(ctx); err != nil {
			t.Fatal(err)
		}
	})
	// Measured 380.0 on the reference container; the typed sspHeap
	// replaces container/heap's per-push interface boxing, so the
	// count no longer scales with augmentation work.
	const ceiling = 480
	if avg > ceiling {
		t.Errorf("SolveSSPCtx: %.1f allocs per solve, gate is %d — an allocation has crept into the augmentation loop", avg, ceiling)
	}
}

// TestAllocsFlatInWork is the sharper property behind the absolute
// gates: doubling the work (a longer ladder, more pivots and longer
// augmenting paths) may grow the per-solve setup linearly, but must
// not explode it — per-iteration allocation would scale with pivot
// count, not node count. The factor-4 bound is loose on purpose; the
// pre-optimization solvers (per-pivot closures, container/heap
// boxing) exceeded it by an order of magnitude.
func TestAllocsFlatInWork(t *testing.T) {
	ctx := context.Background()
	measure := func(n int) float64 {
		nw := allocNet(t, n)
		return testing.AllocsPerRun(20, func() {
			if _, err := nw.SolveSimplexCtx(ctx); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, large := measure(32), measure(128)
	if small == 0 {
		t.Fatalf("implausible zero-alloc solve (measurement broken?)")
	}
	if ratio := large / small; ratio > 4 {
		t.Errorf("allocs grew %.1fx for 4x nodes (%.1f -> %.1f): per-pivot allocation suspected", ratio, small, large)
	}
}
