package flow

import (
	"math/rand"
	"testing"
)

func addArc(t *testing.T, nw *Network, from, to int, cost, cap int64) int {
	t.Helper()
	i, err := nw.AddArc(from, to, cost, cap)
	if err != nil {
		t.Fatal(err)
	}
	return i
}

// solveBoth runs both solvers and checks they agree on the optimal cost.
func solveBoth(t *testing.T, nw *Network) (*Solution, *Solution) {
	t.Helper()
	sim, errSim := nw.SolveSimplex()
	ssp, errSSP := nw.SolveSSP()
	if (errSim == nil) != (errSSP == nil) {
		t.Fatalf("solver disagreement: simplex err=%v, ssp err=%v", errSim, errSSP)
	}
	if errSim != nil {
		return nil, nil
	}
	if sim.Cost != ssp.Cost {
		t.Fatalf("optimal cost disagreement: simplex %d, ssp %d", sim.Cost, ssp.Cost)
	}
	return sim, ssp
}

func TestSimpleTransportation(t *testing.T) {
	// Two suppliers, two consumers; optimum ships the cheap lanes first.
	nw := NewNetwork(4)
	nw.SetDemand(0, -10) // supplier
	nw.SetDemand(1, -5)
	nw.SetDemand(2, 8) // consumer
	nw.SetDemand(3, 7)
	addArc(t, nw, 0, 2, 1, Unbounded)
	addArc(t, nw, 0, 3, 4, Unbounded)
	addArc(t, nw, 1, 2, 6, Unbounded)
	addArc(t, nw, 1, 3, 2, Unbounded)
	sim, _ := solveBoth(t, nw)
	// Ship 8 on 0->2 (cost 8), 2 on 0->3 (cost 8), 5 on 1->3 (cost 10).
	if sim.Cost != 26 {
		t.Errorf("cost = %d, want 26", sim.Cost)
	}
}

func TestCapacitatedDetour(t *testing.T) {
	// The cheap arc saturates and the remainder takes the expensive one.
	nw := NewNetwork(2)
	nw.SetDemand(0, -10)
	nw.SetDemand(1, 10)
	addArc(t, nw, 0, 1, 1, 6)
	addArc(t, nw, 0, 1, 5, Unbounded)
	sim, _ := solveBoth(t, nw)
	if sim.Cost != 6*1+4*5 {
		t.Errorf("cost = %d, want 26", sim.Cost)
	}
	if sim.Flow[0] != 6 || sim.Flow[1] != 4 {
		t.Errorf("flows = %v, want [6 4]", sim.Flow)
	}
}

func TestNegativeCostArc(t *testing.T) {
	// A profitable loop bounded by capacity: both solvers must exploit
	// the negative arc exactly to its cap.
	nw := NewNetwork(3)
	nw.SetDemand(0, -4)
	nw.SetDemand(2, 4)
	addArc(t, nw, 0, 1, 2, Unbounded)
	addArc(t, nw, 1, 2, -1, 5)
	addArc(t, nw, 0, 2, 3, Unbounded)
	sim, _ := solveBoth(t, nw)
	if sim.Cost != 4 {
		t.Errorf("cost = %d, want 4 (all four units via the -1 arc)", sim.Cost)
	}
}

func TestInfeasibleDetected(t *testing.T) {
	nw := NewNetwork(3)
	nw.SetDemand(0, -5)
	nw.SetDemand(2, 5)
	addArc(t, nw, 0, 1, 1, Unbounded) // node 2 unreachable
	if _, err := nw.SolveSimplex(); err == nil {
		t.Error("simplex accepted an infeasible network")
	}
	if _, err := nw.SolveSSP(); err == nil {
		t.Error("ssp accepted an infeasible network")
	}
}

func TestUnbalancedRejected(t *testing.T) {
	nw := NewNetwork(2)
	nw.SetDemand(0, 3)
	if _, err := nw.SolveSimplex(); err == nil {
		t.Error("unbalanced demands accepted")
	}
}

func TestBadArcRejected(t *testing.T) {
	nw := NewNetwork(2)
	if _, err := nw.AddArc(0, 0, 1, 1); err == nil {
		t.Error("self loop accepted")
	}
	if _, err := nw.AddArc(0, 5, 1, 1); err == nil {
		t.Error("out-of-range arc accepted")
	}
	if _, err := nw.AddArc(0, 1, 1, -2); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestPotentialsAreOptimalDuals(t *testing.T) {
	nw := NewNetwork(4)
	nw.SetDemand(0, -7)
	nw.SetDemand(3, 7)
	addArc(t, nw, 0, 1, 2, 5)
	addArc(t, nw, 1, 3, 1, Unbounded)
	addArc(t, nw, 0, 2, 4, Unbounded)
	addArc(t, nw, 2, 3, 1, Unbounded)
	sim, ssp := solveBoth(t, nw)
	for name, sol := range map[string]*Solution{"simplex": sim, "ssp": ssp} {
		for i := 0; i < nw.NumArcs(); i++ {
			a := nw.Arc(i)
			rc := a.Cost - sol.Potential[a.From] + sol.Potential[a.To]
			if sol.Flow[i] < a.Cap && rc < 0 {
				t.Errorf("%s: arc %d has residual capacity but reduced cost %d < 0", name, i, rc)
			}
			if sol.Flow[i] > 0 && rc > 0 {
				t.Errorf("%s: arc %d carries flow but reduced cost %d > 0", name, i, rc)
			}
		}
	}
}

// TestRandomNetworksCrossCheck builds networks with a known feasible flow
// and verifies both solvers agree on optimal cost and dual feasibility.
func TestRandomNetworksCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(8)
		nw := NewNetwork(n)
		bal := make([]int64, n)
		arcCount := n + rng.Intn(3*n)
		for i := 0; i < arcCount; i++ {
			u := rng.Intn(n)
			v := rng.Intn(n)
			if u == v {
				continue
			}
			capv := int64(1 + rng.Intn(20))
			cost := int64(rng.Intn(12) - 2)
			addArc(t, nw, u, v, cost, capv)
			// Route a random sub-capacity flow to guarantee feasibility.
			f := int64(rng.Intn(int(capv + 1)))
			bal[v] += f
			bal[u] -= f
		}
		for v := 0; v < n; v++ {
			nw.SetDemand(v, bal[v])
		}
		sim, ssp := solveBoth(t, nw)
		if sim == nil {
			t.Fatalf("trial %d: constructed-feasible network reported infeasible", trial)
		}
		if err := nw.verify(sim); err != nil {
			t.Fatalf("trial %d simplex: %v", trial, err)
		}
		if err := nw.verify(ssp); err != nil {
			t.Fatalf("trial %d ssp: %v", trial, err)
		}
	}
}

// bruteForceDiffLP enumerates assignments in [lo,hi]^n.
func bruteForceDiffLP(l *DiffLP, lo, hi int64) (best int64, feasible bool) {
	n := l.n
	r := make([]int64, n)
	var rec func(i int)
	found := false
	var bestVal int64
	rec = func(i int) {
		if i == n {
			if l.checkFeasible(r) != nil {
				return
			}
			// Normalize to anchor = 0 for objective comparability: the
			// objective is invariant only if coefficients sum to zero,
			// so evaluate directly.
			var obj int64
			for v := 0; v < n; v++ {
				obj += l.obj[v] * (r[v] - r[l.anchor])
			}
			if !found || obj < bestVal {
				found = true
				bestVal = obj
			}
			return
		}
		for val := lo; val <= hi; val++ {
			r[i] = val
			rec(i + 1)
		}
	}
	rec(0)
	return bestVal, found
}

func TestDiffLPSmallKnown(t *testing.T) {
	// min r0 - r1 with r0 - r1 >= -2 expressed as r1 - r0 <= 2, bounds
	// [-2,2]; anchor r2. Optimum: r0 - r1 = -2.
	l := NewDiffLP(3, 2)
	l.SetObjective(0, 1)
	l.SetObjective(1, -1)
	l.Constrain(1, 0, 2)
	l.Bound(0, -2, 2)
	l.Bound(1, -2, 2)
	res, err := l.Solve(MethodSimplex)
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective != -2 {
		t.Errorf("objective = %d, want -2 (r=%v)", res.Objective, res.R)
	}
	if res.R[2] != 0 {
		t.Errorf("anchor not normalized: %v", res.R)
	}
}

func TestDiffLPInfeasible(t *testing.T) {
	l := NewDiffLP(3, 2)
	l.Constrain(0, 1, -5) // r0 <= r1 - 5 conflicts with bounds ±1
	l.Bound(0, -1, 1)
	l.Bound(1, -1, 1)
	if _, err := l.Solve(MethodSimplex); err == nil {
		t.Error("infeasible LP accepted by simplex path")
	}
	if _, err := l.Solve(MethodSSP); err == nil {
		t.Error("infeasible LP accepted by ssp path")
	}
}

func TestDiffLPRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const lo, hi = -2, 2
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(5) // includes anchor
		anchor := n - 1
		l := NewDiffLP(n, anchor)
		for v := 0; v < n; v++ {
			l.SetObjective(v, int64(rng.Intn(7)-3))
		}
		for v := 0; v < n-1; v++ {
			l.Bound(v, lo, hi)
		}
		consCount := rng.Intn(2 * n)
		for i := 0; i < consCount; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			l.Constrain(u, v, int64(rng.Intn(5)-1))
		}
		want, feasible := bruteForceDiffLP(l, lo, hi)
		for _, m := range []Method{MethodSimplex, MethodSSP} {
			res, err := l.Solve(m)
			if !feasible {
				if err == nil {
					t.Fatalf("trial %d (%v): infeasible LP solved to %d", trial, m, res.Objective)
				}
				continue
			}
			if err != nil {
				t.Fatalf("trial %d (%v): %v", trial, m, err)
			}
			if res.Objective != want {
				t.Fatalf("trial %d (%v): objective %d, want %d (r=%v)", trial, m, res.Objective, want, res.R)
			}
		}
	}
}

func TestMethodString(t *testing.T) {
	if MethodSimplex.String() != "simplex" || MethodSSP.String() != "ssp" {
		t.Error("method names wrong")
	}
}
