package flow_test

import (
	"fmt"

	"relatch/internal/flow"
)

// A difference-constraint LP is solved through its min-cost-flow dual;
// the optimal assignment comes back as node potentials, anchored at a
// designated variable. This is the machinery behind the paper's Eq. (10)
// → Eq. (14) reduction.
func ExampleDiffLP() {
	// min r0 − 2·r1  subject to  r1 − r0 ≤ 1, bounds −1 ≤ r ≤ 0,
	// anchored at variable 2 (the retiming host).
	lp := flow.NewDiffLP(3, 2)
	lp.SetObjective(0, 1)
	lp.SetObjective(1, -2)
	lp.Constrain(1, 0, 1)
	lp.Bound(0, -1, 0)
	lp.Bound(1, -1, 0)
	res, err := lp.Solve(flow.MethodSimplex)
	if err != nil {
		panic(err)
	}
	fmt.Println("r =", res.R, "objective =", res.Objective)
	// Output:
	// r = [-1 0 0] objective = -1
}

// A plain min-cost flow: ship ten units across two lanes, the cheap one
// capacity-limited.
func ExampleNetwork() {
	nw := flow.NewNetwork(2)
	nw.SetDemand(0, -10)
	nw.SetDemand(1, 10)
	nw.AddArc(0, 1, 1, 6)              // cheap, capacity 6
	nw.AddArc(0, 1, 5, flow.Unbounded) // expensive fallback
	sol, err := nw.SolveSimplex()
	if err != nil {
		panic(err)
	}
	fmt.Println("flows:", sol.Flow, "cost:", sol.Cost)
	// Output:
	// flows: [6 4] cost: 26
}
