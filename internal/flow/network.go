// Package flow implements exact min-cost network flow and the
// difference-constraint linear programs built on it. It is the solver
// substrate standing in for the commercial network-simplex package
// (Gurobi) the paper calls: the retiming ILP of Eq. (10) is totally
// unimodular, its dual is the transshipment problem of Eq. (14), and the
// optimal retiming labels r(v) are recovered as node potentials of the
// optimal flow.
//
// Two independent solvers are provided — the network simplex method (the
// paper's choice) and successive shortest paths — and are cross-checked
// against each other in tests. Potentials are extracted uniformly from
// the residual graph of the optimal flow, so both solvers yield identical
// duals.
package flow

import (
	"fmt"
	"math"

	"relatch/internal/ints"
)

// Unbounded is the capacity of an uncapacitated arc.
const Unbounded = int64(1) << 56

// Arc is a directed arc with a per-unit cost and a capacity.
type Arc struct {
	From, To int
	Cost     int64
	Cap      int64
}

// Network is a transshipment problem: find flows x ≥ 0 with x(a) ≤ cap(a)
// such that for every node v, inflow(v) − outflow(v) = demand(v),
// minimizing Σ cost(a)·x(a).
type Network struct {
	n      int
	arcs   []Arc
	demand []int64
	// pivotLimit overrides the simplex pivot budget when positive
	// (0 = automatic, proportional to the arc count).
	pivotLimit int
}

// NewNetwork creates a network with n nodes, numbered 0..n-1.
func NewNetwork(n int) *Network {
	return &Network{n: n, demand: make([]int64, n)}
}

// NumNodes returns the node count.
func (nw *Network) NumNodes() int { return nw.n }

// NumArcs returns the arc count.
func (nw *Network) NumArcs() int { return len(nw.arcs) }

// Arc returns the i-th arc.
func (nw *Network) Arc(i int) Arc { return nw.arcs[i] }

// AddArc appends an arc and returns its index. Structural problems —
// endpoints out of range, self-loops, negative or over-range capacities —
// are rejected with errors wrapping ErrBadArc.
func (nw *Network) AddArc(from, to int, cost, capacity int64) (int, error) {
	if from < 0 || from >= nw.n || to < 0 || to >= nw.n {
		return 0, fmt.Errorf("flow: %w: arc %d->%d outside node range [0,%d)", ErrBadArc, from, to, nw.n)
	}
	if from == to {
		return 0, fmt.Errorf("flow: %w: self-loop arc on node %d", ErrBadArc, from)
	}
	if capacity < 0 {
		return 0, fmt.Errorf("flow: %w: negative capacity %d on arc %d->%d", ErrBadArc, capacity, from, to)
	}
	if capacity > Unbounded {
		return 0, fmt.Errorf("flow: %w: capacity %d on arc %d->%d exceeds Unbounded (%d)", ErrBadArc, capacity, from, to, Unbounded)
	}
	nw.arcs = append(nw.arcs, Arc{From: from, To: to, Cost: cost, Cap: capacity})
	return len(nw.arcs) - 1, nil
}

// SetPivotLimit overrides the simplex pivot budget. Zero restores the
// automatic budget (200·arcs + 20000). Used by callers that want an early
// bail-out (and by tests to force the simplex→SSP fallback).
func (nw *Network) SetPivotLimit(limit int) { nw.pivotLimit = limit }

// SetDemand sets the required inflow−outflow balance of node v. Positive
// demands receive flow; negative demands supply it.
func (nw *Network) SetDemand(v int, d int64) { nw.demand[v] = d }

// Demand returns the demand of node v.
func (nw *Network) Demand(v int) int64 { return nw.demand[v] }

// Validate runs the structural admission checks a solve would perform —
// demand conservation (ErrUnbalanced) and cost/demand magnitude bounds
// (ErrOverflow) — without solving. Lint and other pre-flight callers use
// it to reject doomed networks before paying for a simplex run.
func (nw *Network) Validate() error {
	if err := nw.checkBalanced(); err != nil {
		return err
	}
	return nw.checkMagnitudes()
}

// checkBalanced verifies that total supply matches total demand.
func (nw *Network) checkBalanced() error {
	var sum int64
	for _, d := range nw.demand {
		sum += d
	}
	if sum != 0 {
		return fmt.Errorf("flow: %w: demands sum to %d, want 0", ErrUnbalanced, sum)
	}
	return nil
}

// checkMagnitudes rejects inputs whose absolute costs or demands sum past
// Unbounded: beyond that the simplex big-M basis (bigM = Σ|cost|+1 held in
// node potentials) and the SSP saturation supplies can overflow int64
// arithmetic mid-solve, producing silently wrong answers instead of
// errors. Overflow-scale inputs wrap ErrOverflow up front.
func (nw *Network) checkMagnitudes() error {
	var costSum, demandSum int64
	for _, a := range nw.arcs {
		c := ints.Abs64(a.Cost)
		if c > Unbounded {
			return fmt.Errorf("flow: %w: arc cost %d exceeds %d", ErrOverflow, a.Cost, Unbounded)
		}
		costSum += c
		if costSum > Unbounded {
			return fmt.Errorf("flow: %w: total |cost| exceeds %d", ErrOverflow, Unbounded)
		}
	}
	for v, d := range nw.demand {
		d = ints.Abs64(d)
		if d > Unbounded {
			return fmt.Errorf("flow: %w: demand %d on node %d exceeds %d", ErrOverflow, nw.demand[v], v, Unbounded)
		}
		demandSum += d
		if demandSum > Unbounded {
			return fmt.Errorf("flow: %w: total |demand| exceeds %d", ErrOverflow, Unbounded)
		}
	}
	return nil
}

// Solution is an optimal flow with its objective value and the dual node
// potentials extracted from the residual graph. The potentials satisfy
// π(u) − π(v) ≤ cost(a) for every arc a=(u,v) with residual capacity and
// achieve equality on arcs carrying flow, which is exactly primal-dual
// optimality for the difference-constraint LP this package serves.
type Solution struct {
	Flow      []int64
	Cost      int64
	Potential []int64
}

// verify checks conservation, capacities and complementary slackness of
// a candidate solution; used by tests and as a cheap internal safeguard.
func (nw *Network) verify(s *Solution) error {
	if len(s.Flow) != len(nw.arcs) {
		return fmt.Errorf("flow: %w: solution has %d flows for %d arcs", ErrInternal, len(s.Flow), len(nw.arcs))
	}
	bal := make([]int64, nw.n)
	var cost int64
	for i, a := range nw.arcs {
		x := s.Flow[i]
		if x < 0 || x > a.Cap {
			return fmt.Errorf("flow: %w: arc %d flow %d outside [0,%d]", ErrInternal, i, x, a.Cap)
		}
		bal[a.To] += x
		bal[a.From] -= x
		cost += a.Cost * x
	}
	for v := 0; v < nw.n; v++ {
		if bal[v] != nw.demand[v] {
			return fmt.Errorf("flow: %w: node %d balance %d, want %d", ErrInternal, v, bal[v], nw.demand[v])
		}
	}
	if cost != s.Cost {
		return fmt.Errorf("flow: %w: cost %d does not match flows (%d)", ErrInternal, s.Cost, cost)
	}
	return nil
}

// residualPotentials computes node potentials by single-source shortest
// paths over the residual graph of the flow (SPFA, handles the negative
// residual costs of loaded arcs). Unreachable nodes keep potential 0,
// which is safe for this package's LPs because their graphs connect every
// node to the root through variable-bound arcs.
func (nw *Network) residualPotentials(flowv []int64, root int) []int64 {
	type radj struct {
		to   int
		cost int64
	}
	adj := make([][]radj, nw.n)
	for i, a := range nw.arcs {
		if flowv[i] < a.Cap {
			adj[a.From] = append(adj[a.From], radj{to: a.To, cost: a.Cost})
		}
		if flowv[i] > 0 {
			adj[a.To] = append(adj[a.To], radj{to: a.From, cost: -a.Cost})
		}
	}
	const inf = math.MaxInt64 / 4
	dist := make([]int64, nw.n)
	inQueue := make([]bool, nw.n)
	for v := range dist {
		dist[v] = inf
	}
	dist[root] = 0
	queue := []int{root}
	inQueue[root] = true
	// Pop budget guards against a (theoretically impossible on an
	// optimal flow) negative residual cycle; callers that depend on the
	// potentials verify them against their own constraints.
	budget := 4 * (nw.n + 1) * (nw.n + 1)
	for len(queue) > 0 && budget > 0 {
		budget--
		u := queue[0]
		queue = queue[1:]
		inQueue[u] = false
		for _, e := range adj[u] {
			if nd := dist[u] + e.cost; nd < dist[e.to] {
				dist[e.to] = nd
				if !inQueue[e.to] {
					queue = append(queue, e.to)
					inQueue[e.to] = true
				}
			}
		}
	}
	pot := make([]int64, nw.n)
	for v := range pot {
		if dist[v] < inf {
			pot[v] = -dist[v]
		}
	}
	return pot
}
