package flow

import (
	"context"
	"errors"
	"fmt"

	"relatch/internal/obs"
)

// Report records how a hardened solve reached its answer.
type Report struct {
	// Solver is the solver that produced the accepted solution.
	Solver Method
	// Fallback is true when the primary solver failed (or failed
	// certification) and SSP produced the accepted solution.
	Fallback bool
	// FallbackReason holds the primary solver's failure when Fallback is
	// true, empty otherwise.
	FallbackReason string
	// Certified is true when the accepted solution passed the LP-duality
	// optimality certificate (Certify).
	Certified bool
}

// definitive reports whether a solve error rules out every solver:
// structural input problems and proven infeasibility/unboundedness are
// shared facts about the network, and a cancelled context must not be
// retried either.
func definitive(err error) bool {
	return errors.Is(err, ErrInfeasible) ||
		errors.Is(err, ErrUnbounded) ||
		errors.Is(err, ErrUnbalanced) ||
		errors.Is(err, ErrBadArc) ||
		errors.Is(err, ErrOverflow) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// SolveMethod is the hardened entry point: it solves with the selected
// method, certifies the result against LP duality, and — under MethodAuto
// — degrades gracefully from network simplex to successive shortest paths
// when the simplex exhausts its pivot budget or its answer fails the
// certificate. The report records which solver won and why.
func (nw *Network) SolveMethod(ctx context.Context, method Method) (*Solution, Report, error) {
	sp, ctx := obs.StartSpan(ctx, "flow.solve")
	defer sp.End()
	sp.Attr("method", method.String())
	var rep Report
	solveOne := func(m Method) (*Solution, error) {
		var sol *Solution
		var err error
		if m == MethodSSP {
			sol, err = nw.SolveSSPCtx(ctx)
		} else {
			sol, err = nw.SolveSimplexCtx(ctx)
		}
		if err != nil {
			return nil, err
		}
		csp, _ := obs.StartSpan(ctx, "flow.certify")
		defer csp.End()
		err = nw.Certify(sol)
		csp.Fail(err)
		csp.End()
		if err != nil {
			return nil, err
		}
		return sol, nil
	}

	switch method {
	case MethodSimplex, MethodSSP:
		sol, err := solveOne(method)
		if err != nil {
			return nil, Report{Solver: method}, err
		}
		rep = Report{Solver: method, Certified: true}
		return sol, rep, nil
	default: // MethodAuto
		sol, err := solveOne(MethodSimplex)
		if err == nil {
			return sol, Report{Solver: MethodSimplex, Certified: true}, nil
		}
		if definitive(err) {
			return nil, Report{Solver: MethodSimplex}, err
		}
		reason := err.Error()
		// The fallback decision is the event perf investigations look
		// for: mark it on the solve span with its reason.
		sp.Event("fallback")
		sp.Attr("fallback_reason", reason)
		sp.Add("fallbacks", 1)
		sol, sspErr := solveOne(MethodSSP)
		if sspErr != nil {
			return nil, Report{Solver: MethodSSP, Fallback: true, FallbackReason: reason},
				fmt.Errorf("flow: ssp fallback also failed: %w (simplex: %v)", sspErr, err)
		}
		rep = Report{Solver: MethodSSP, Fallback: true, FallbackReason: reason, Certified: true}
		return sol, rep, nil
	}
}
