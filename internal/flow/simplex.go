package flow

import (
	"context"
	"fmt"

	"relatch/internal/ints"
	"relatch/internal/obs"
)

// arcState tracks where a non-tree arc sits.
type arcState int8

const (
	atLower arcState = iota
	inTree
	atUpper
)

// SolveSimplex computes a min-cost flow with the primal network simplex
// method (the solver the paper uses, Section IV-D): a big-M artificial
// star forms the initial spanning-tree basis, entering arcs are chosen by
// block search over reduced costs (falling back to Bland's rule under
// long degenerate runs, which guarantees termination), and tree updates
// re-hang only the detached subtree.
func (nw *Network) SolveSimplex() (*Solution, error) {
	return nw.SolveSimplexCtx(context.Background())
}

// SolveSimplexCtx is SolveSimplex under a context: cancellation and
// deadline expiry are observed between pivots and surface as errors
// wrapping ctx.Err().
func (nw *Network) SolveSimplexCtx(ctx context.Context) (sol *Solution, err error) {
	// Counters accumulate in locals and land on the span once, in the
	// deferred close: the pivot loop itself stays instrumentation-free.
	sp, ctx := obs.StartSpan(ctx, "flow.simplex")
	var pivotCount, degenerateCount int
	defer func() {
		sp.Add("pivots", int64(pivotCount))
		sp.Add("degenerate_pivots", int64(degenerateCount))
		sp.Fail(err)
		sp.End()
	}()
	if err := nw.checkBalanced(); err != nil {
		return nil, err
	}
	if err := nw.checkMagnitudes(); err != nil {
		return nil, err
	}
	n := nw.n
	sp.Gauge("nodes", int64(n))
	sp.Gauge("arcs", int64(len(nw.arcs)))
	root := n
	m := len(nw.arcs)

	type sArc struct {
		from, to  int
		cost, cap int64
	}
	arcs := make([]sArc, m, m+n)
	var costSum int64
	for i, a := range nw.arcs {
		arcs[i] = sArc{from: a.From, to: a.To, cost: a.Cost, cap: a.Cap}
		costSum += ints.Abs64(a.Cost)
	}
	bigM := costSum + 1

	flow := make([]int64, m, m+n)
	state := make([]arcState, m, m+n)

	parent := make([]int, n+1)
	parentArc := make([]int, n+1)
	depth := make([]int, n+1)
	pot := make([]int64, n+1)
	children := make([][]int, n+1)

	parent[root] = -1
	parentArc[root] = -1
	for v := 0; v < n; v++ {
		b := -nw.demand[v] // supply convention: outflow − inflow = b
		ai := len(arcs)
		if b >= 0 {
			arcs = append(arcs, sArc{from: v, to: root, cost: bigM, cap: Unbounded})
			flow = append(flow, b)
			pot[v] = bigM
		} else {
			arcs = append(arcs, sArc{from: root, to: v, cost: bigM, cap: Unbounded})
			flow = append(flow, -b)
			pot[v] = -bigM
		}
		state = append(state, inTree)
		parent[v] = root
		parentArc[v] = ai
		depth[v] = 1
		children[root] = append(children[root], v)
	}

	removeChild := func(p, c int) {
		list := children[p]
		for i, w := range list {
			if w == c {
				list[i] = list[len(list)-1]
				children[p] = list[:len(list)-1]
				return
			}
		}
	}

	reduced := func(i int) int64 {
		a := arcs[i]
		return a.cost - pot[a.from] + pot[a.to]
	}

	// inSubtree reports whether w lies in the subtree rooted at y.
	inSubtree := func(w, y int) bool {
		for depth[w] > depth[y] {
			w = parent[w]
		}
		return w == y
	}

	total := len(arcs)
	blockSize := 64
	for blockSize*blockSize < total {
		blockSize++
	}
	cursor := 0
	degenerate := 0
	const degenerateLimit = 1 << 14
	maxPivots := 200*total + 20000
	if nw.pivotLimit > 0 {
		maxPivots = nw.pivotLimit
	}

	// Residual capacity of a tree step, pushing from node w to its
	// parent (up=true) or from the parent into w (up=false). Hoisted out
	// of the pivot loop: a closure literal there would allocate every
	// pivot. It reads arcs/flow/parentArc through the captured slice
	// headers, which never change identity after this point.
	stepResidual := func(w int, up bool) int64 {
		ai := parentArc[w]
		a := arcs[ai]
		aligned := (a.from == w) == up
		if aligned {
			if a.cap == Unbounded {
				return Unbounded
			}
			return a.cap - flow[ai]
		}
		return flow[ai]
	}

	// Scratch buffers for the tree surgery, reused across pivots with
	// [:0] resets: the backing arrays grow to the longest re-hang chain
	// seen and then the loop runs allocation-free (alloc_test.go holds
	// the measured baseline).
	var chain, oldArcs, stack []int

	//relint:hot
	for pivots := 0; ; pivots++ {
		pivotCount = pivots
		if pivots > maxPivots {
			return nil, fmt.Errorf("flow: %w: simplex exceeded %d pivots", ErrPivotLimit, maxPivots)
		}
		if pivots&255 == 0 {
			select {
			case <-ctx.Done():
				return nil, fmt.Errorf("flow: simplex cancelled after %d pivots: %w", pivots, ctx.Err())
			default:
			}
		}
		// Entering arc selection.
		entering := -1
		var bestViol int64
		if degenerate > degenerateLimit {
			// Bland's rule: first violating index.
			for i := 0; i < total; i++ {
				if state[i] == inTree {
					continue
				}
				rc := reduced(i)
				if (state[i] == atLower && rc < 0) || (state[i] == atUpper && rc > 0) {
					entering = i
					break
				}
			}
		} else {
			scanned := 0
			for scanned < total && entering < 0 {
				for k := 0; k < blockSize; k++ {
					i := cursor
					cursor++
					if cursor == total {
						cursor = 0
					}
					if state[i] == inTree {
						continue
					}
					rc := reduced(i)
					var viol int64
					if state[i] == atLower && rc < 0 {
						viol = -rc
					} else if state[i] == atUpper && rc > 0 {
						viol = rc
					}
					if viol > bestViol {
						bestViol = viol
						entering = i
					}
				}
				scanned += blockSize
			}
		}
		if entering < 0 {
			break // optimal
		}

		// Push direction: from u to v in residual terms.
		ea := arcs[entering]
		u, v := ea.from, ea.to
		if state[entering] == atUpper {
			u, v = v, u
		}

		// Walk both sides to the LCA, recording the blocking residual.
		delta := ea.cap
		if state[entering] == atUpper {
			delta = flow[entering]
		} else if ea.cap != Unbounded {
			delta = ea.cap - flow[entering]
		} else {
			delta = Unbounded
		}
		leaving := entering

		x, y := v, u
		for x != y {
			if depth[x] >= depth[y] {
				if r := stepResidual(x, true); r < delta {
					delta = r
					leaving = parentArc[x]
				}
				x = parent[x]
			} else {
				if r := stepResidual(y, false); r < delta {
					delta = r
					leaving = parentArc[y]
				}
				y = parent[y]
			}
		}
		if delta == Unbounded {
			return nil, fmt.Errorf("flow: %w: negative-cost cycle of infinite capacity", ErrUnbounded)
		}
		if delta == 0 {
			degenerate++
			degenerateCount++
		} else {
			degenerate = 0
		}

		// Apply the flow change around the cycle.
		if state[entering] == atUpper {
			flow[entering] -= delta
		} else {
			flow[entering] += delta
		}
		x, y = v, u
		for x != y {
			if depth[x] >= depth[y] {
				ai := parentArc[x]
				if arcs[ai].from == x {
					flow[ai] += delta
				} else {
					flow[ai] -= delta
				}
				x = parent[x]
			} else {
				ai := parentArc[y]
				if arcs[ai].to == y {
					flow[ai] += delta
				} else {
					flow[ai] -= delta
				}
				y = parent[y]
			}
		}

		if leaving == entering {
			// The entering arc saturated; it swaps bounds and the tree
			// is unchanged.
			if state[entering] == atLower {
				state[entering] = atUpper
			} else {
				state[entering] = atLower
			}
			continue
		}

		// Tree surgery: remove the leaving arc, attach the entering arc.
		la := arcs[leaving]
		yl := la.from
		if parent[la.to] == la.from {
			yl = la.to
		}
		if flow[leaving] == 0 {
			state[leaving] = atLower
		} else {
			state[leaving] = atUpper
		}
		removeChild(parent[yl], yl)

		p, q := ea.from, ea.to
		if !inSubtree(p, yl) {
			p, q = q, p
		}
		// Re-root the detached subtree at p by reversing the chain p→yl.
		chain = chain[:0]
		for w := p; ; w = parent[w] {
			chain = append(chain, w)
			if w == yl {
				break
			}
		}
		oldArcs = oldArcs[:0]
		for i := 0; i+1 < len(chain); i++ {
			oldArcs = append(oldArcs, parentArc[chain[i]])
			removeChild(chain[i+1], chain[i])
		}
		for i := 0; i+1 < len(chain); i++ {
			parent[chain[i+1]] = chain[i]
			parentArc[chain[i+1]] = oldArcs[i]
			children[chain[i]] = append(children[chain[i]], chain[i+1])
		}
		parent[p] = q
		parentArc[p] = entering
		children[q] = append(children[q], p)
		state[entering] = inTree

		// Refresh depth and potentials over the re-hung subtree.
		stack = append(stack[:0], p)
		for len(stack) > 0 {
			w := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			pw := parent[w]
			ai := parentArc[w]
			depth[w] = depth[pw] + 1
			if arcs[ai].from == pw {
				// rc = cost − pot(pw) + pot(w) = 0
				pot[w] = pot[pw] - arcs[ai].cost
			} else {
				pot[w] = pot[pw] + arcs[ai].cost
			}
			stack = append(stack, children[w]...)
		}
	}

	// Feasibility: artificial arcs must be idle.
	for i := m; i < len(arcs); i++ {
		if flow[i] != 0 {
			return nil, fmt.Errorf("flow: %w: artificial arc carries %d units", ErrInfeasible, flow[i])
		}
	}
	sol = &Solution{Flow: make([]int64, m)}
	for i := 0; i < m; i++ {
		sol.Flow[i] = flow[i]
		sol.Cost += nw.arcs[i].Cost * flow[i]
	}
	if err := nw.verify(sol); err != nil {
		return nil, fmt.Errorf("flow: %w", err)
	}
	sol.Potential = nw.residualPotentials(sol.Flow, nw.potentialRoot())
	return sol, nil
}
