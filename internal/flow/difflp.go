package flow

import (
	"context"
	"fmt"

	"relatch/internal/obs"
)

// Method selects the flow solver backing a solve.
type Method int

const (
	// MethodAuto — the zero value, so every caller that does not pick a
	// solver gets the hardened path — tries network simplex first,
	// certifies the result against LP duality, and falls back to
	// successive shortest paths on pivot-limit exhaustion or certification
	// failure.
	MethodAuto Method = iota
	// MethodSimplex uses the network simplex solver (the paper's choice).
	MethodSimplex
	// MethodSSP uses successive shortest paths.
	MethodSSP
)

func (m Method) String() string {
	switch m {
	case MethodSimplex:
		return "simplex"
	case MethodSSP:
		return "ssp"
	}
	return "auto"
}

// ParseMethod maps a flag value to a Method.
func ParseMethod(s string) (Method, error) {
	switch s {
	case "auto", "":
		return MethodAuto, nil
	case "simplex":
		return MethodSimplex, nil
	case "ssp":
		return MethodSSP, nil
	}
	return MethodAuto, fmt.Errorf("flow: %w %q (want auto, simplex or ssp)", ErrBadMethod, s)
}

// DiffLP is an integer linear program over difference constraints:
//
//	min  Σ_v obj(v)·r(v)
//	s.t. r(u) − r(v) ≤ c(u,v)   for every constraint
//
// with integer objective coefficients and bounds. The constraint matrix
// is totally unimodular, so the LP relaxation solved through its
// min-cost-flow dual yields integral optima — this is how the paper
// avoids a general ILP solver (Section IV-D).
//
// Variables are indexed 0..n-1. One variable must act as the anchor
// (usually the retiming host node): bounds of other variables are
// relative to it, and the reported solution normalizes the anchor to 0.
type DiffLP struct {
	n          int
	anchor     int
	obj        []int64
	cons       []diffConstraint
	pivotLimit int
}

type diffConstraint struct {
	u, v int
	c    int64
}

// NewDiffLP creates a program with n variables anchored at variable
// anchor.
func NewDiffLP(n, anchor int) *DiffLP {
	return &DiffLP{n: n, anchor: anchor, obj: make([]int64, n)}
}

// SetObjective sets the objective coefficient of variable v.
func (l *DiffLP) SetObjective(v int, coeff int64) { l.obj[v] = coeff }

// AddObjective adds to the objective coefficient of variable v.
func (l *DiffLP) AddObjective(v int, coeff int64) { l.obj[v] += coeff }

// NumVariables returns the variable count.
func (l *DiffLP) NumVariables() int { return l.n }

// NumConstraints returns the constraint count, including bounds.
func (l *DiffLP) NumConstraints() int { return len(l.cons) }

// Constrain adds r(u) − r(v) ≤ c.
func (l *DiffLP) Constrain(u, v int, c int64) {
	l.cons = append(l.cons, diffConstraint{u: u, v: v, c: c})
}

// Bound constrains lo ≤ r(v) − r(anchor) ≤ hi.
func (l *DiffLP) Bound(v int, lo, hi int64) {
	if v == l.anchor {
		return
	}
	// r(v) − r(anchor) ≤ hi.
	l.Constrain(v, l.anchor, hi)
	// r(anchor) − r(v) ≤ −lo.
	l.Constrain(l.anchor, v, -lo)
}

// SetPivotLimit overrides the simplex pivot budget of the backing
// network solve (0 = automatic).
func (l *DiffLP) SetPivotLimit(limit int) { l.pivotLimit = limit }

// Result is an optimal assignment with the anchor normalized to zero.
type Result struct {
	R         []int64
	Objective int64
	// Method is the solver that produced the accepted solution (never
	// MethodAuto: auto resolves to the winner).
	Method Method
	// Fallback / FallbackReason / Certified mirror the flow.Report of the
	// backing network solve.
	Fallback       bool
	FallbackReason string
	Certified      bool
}

// Solve is SolveCtx under context.Background().
func (l *DiffLP) Solve(method Method) (*Result, error) {
	return l.SolveCtx(context.Background(), method)
}

// lower builds the dual transshipment network — node demand(v) = obj(v),
// one arc per constraint (u,v) with cost c — and the variable permutation
// that moves the anchor to the highest node index so residualPotentials
// roots at it (see potentialRoot). Shared by SolveCtx and Preflight.
func (l *DiffLP) lower() (nw *Network, perm []int, err error) {
	perm = make([]int, l.n)
	idx := 0
	for v := 0; v < l.n; v++ {
		if v == l.anchor {
			continue
		}
		perm[v] = idx
		idx++
	}
	perm[l.anchor] = l.n - 1

	// Minimizing Σ obj(v)·(r(v) − r(anchor)) pins the anchor at zero;
	// the anchor's demand absorbs the coefficient sum so the dual
	// transshipment balances — exactly the paper's host demand
	// X(h) = −B(h) − c·|V2| in Eq. (14).
	nw = NewNetwork(l.n)
	var sum int64
	for v := 0; v < l.n; v++ {
		sum += l.obj[v]
	}
	for v := 0; v < l.n; v++ {
		d := l.obj[v]
		if v == l.anchor {
			d -= sum
		}
		nw.SetDemand(perm[v], d)
	}
	for _, c := range l.cons {
		if _, err := nw.AddArc(perm[c.u], perm[c.v], c.c, Unbounded); err != nil {
			return nil, nil, err
		}
	}
	return nw, perm, nil
}

// Preflight lowers the program to its dual network and runs the solver
// admission checks — conservation (ErrUnbalanced), magnitude bounds
// (ErrOverflow), arc structure (ErrBadArc) — without paying for a solve.
// A nil error means a solve would be admitted, not that it is feasible.
func (l *DiffLP) Preflight() error {
	nw, _, err := l.lower()
	if err != nil {
		return err
	}
	return nw.Validate()
}

// SolveCtx lowers the program to its dual transshipment network, solves
// it with the selected method (hardened fallback under MethodAuto), and
// reads the optimal r values off the node potentials.
func (l *DiffLP) SolveCtx(ctx context.Context, method Method) (*Result, error) {
	sp, ctx := obs.StartSpan(ctx, "flow.difflp")
	defer sp.End()
	sp.Gauge("variables", int64(l.n))
	sp.Gauge("constraints", int64(len(l.cons)))
	nw, perm, err := l.lower()
	if err != nil {
		sp.Fail(err)
		return nil, err
	}
	nw.SetPivotLimit(l.pivotLimit)
	sol, rep, err := nw.SolveMethod(ctx, method)
	if err != nil {
		return nil, fmt.Errorf("flow: difference LP: %w", err)
	}

	r := make([]int64, l.n)
	base := sol.Potential[perm[l.anchor]]
	for v := 0; v < l.n; v++ {
		r[v] = sol.Potential[perm[v]] - base
	}
	res := &Result{
		R:              r,
		Method:         rep.Solver,
		Fallback:       rep.Fallback,
		FallbackReason: rep.FallbackReason,
		Certified:      rep.Certified,
	}
	for v := 0; v < l.n; v++ {
		res.Objective += l.obj[v] * r[v]
	}
	// The network-level certificate already implies dual feasibility —
	// i.e. every difference constraint holds on the lifted r — but the
	// direct check is cheap and guards the lifting itself.
	if err := l.checkFeasible(res.R); err != nil {
		return nil, fmt.Errorf("flow: difference LP produced infeasible duals: %w: %v", ErrNotCertified, err)
	}
	// Strong duality: the dual flow cost equals the primal optimum up to
	// sign bookkeeping; the definitive value is recomputed from r above.
	return res, nil
}

// checkFeasible verifies every constraint against an assignment.
func (l *DiffLP) checkFeasible(r []int64) error {
	for _, c := range l.cons {
		if r[c.u]-r[c.v] > c.c {
			//relint:ignore sentinel -- detail string embedded in the ErrNotCertified wrap at the only call site
			return fmt.Errorf("r(%d)−r(%d) = %d > %d", c.u, c.v, r[c.u]-r[c.v], c.c)
		}
	}
	return nil
}
