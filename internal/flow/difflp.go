package flow

import (
	"fmt"
)

// Method selects the flow solver backing a DiffLP solve.
type Method int

const (
	// MethodSimplex uses the network simplex solver (the paper's choice).
	MethodSimplex Method = iota
	// MethodSSP uses successive shortest paths.
	MethodSSP
)

func (m Method) String() string {
	if m == MethodSSP {
		return "ssp"
	}
	return "simplex"
}

// DiffLP is an integer linear program over difference constraints:
//
//	min  Σ_v obj(v)·r(v)
//	s.t. r(u) − r(v) ≤ c(u,v)   for every constraint
//
// with integer objective coefficients and bounds. The constraint matrix
// is totally unimodular, so the LP relaxation solved through its
// min-cost-flow dual yields integral optima — this is how the paper
// avoids a general ILP solver (Section IV-D).
//
// Variables are indexed 0..n-1. One variable must act as the anchor
// (usually the retiming host node): bounds of other variables are
// relative to it, and the reported solution normalizes the anchor to 0.
type DiffLP struct {
	n      int
	anchor int
	obj    []int64
	cons   []diffConstraint
}

type diffConstraint struct {
	u, v int
	c    int64
}

// NewDiffLP creates a program with n variables anchored at variable
// anchor.
func NewDiffLP(n, anchor int) *DiffLP {
	return &DiffLP{n: n, anchor: anchor, obj: make([]int64, n)}
}

// SetObjective sets the objective coefficient of variable v.
func (l *DiffLP) SetObjective(v int, coeff int64) { l.obj[v] = coeff }

// AddObjective adds to the objective coefficient of variable v.
func (l *DiffLP) AddObjective(v int, coeff int64) { l.obj[v] += coeff }

// NumVariables returns the variable count.
func (l *DiffLP) NumVariables() int { return l.n }

// NumConstraints returns the constraint count, including bounds.
func (l *DiffLP) NumConstraints() int { return len(l.cons) }

// Constrain adds r(u) − r(v) ≤ c.
func (l *DiffLP) Constrain(u, v int, c int64) {
	l.cons = append(l.cons, diffConstraint{u: u, v: v, c: c})
}

// Bound constrains lo ≤ r(v) − r(anchor) ≤ hi.
func (l *DiffLP) Bound(v int, lo, hi int64) {
	if v == l.anchor {
		return
	}
	// r(v) − r(anchor) ≤ hi.
	l.Constrain(v, l.anchor, hi)
	// r(anchor) − r(v) ≤ −lo.
	l.Constrain(l.anchor, v, -lo)
}

// Result is an optimal assignment with the anchor normalized to zero.
type Result struct {
	R         []int64
	Objective int64
	Method    Method
}

// Solve builds the dual transshipment network — node demand(v) = obj(v),
// one arc per constraint (u,v) with cost c — solves it with the selected
// method, and reads the optimal r values off the node potentials.
func (l *DiffLP) Solve(method Method) (*Result, error) {
	// The anchor is moved to the highest node index so that
	// residualPotentials roots at it (see potentialRoot).
	perm := make([]int, l.n)
	inv := make([]int, l.n)
	idx := 0
	for v := 0; v < l.n; v++ {
		if v == l.anchor {
			continue
		}
		perm[v] = idx
		inv[idx] = v
		idx++
	}
	perm[l.anchor] = l.n - 1
	inv[l.n-1] = l.anchor

	// Minimizing Σ obj(v)·(r(v) − r(anchor)) pins the anchor at zero;
	// the anchor's demand absorbs the coefficient sum so the dual
	// transshipment balances — exactly the paper's host demand
	// X(h) = −B(h) − c·|V2| in Eq. (14).
	nw := NewNetwork(l.n)
	var sum int64
	for v := 0; v < l.n; v++ {
		sum += l.obj[v]
	}
	for v := 0; v < l.n; v++ {
		d := l.obj[v]
		if v == l.anchor {
			d -= sum
		}
		nw.SetDemand(perm[v], d)
	}
	for _, c := range l.cons {
		if _, err := nw.AddArc(perm[c.u], perm[c.v], c.c, Unbounded); err != nil {
			return nil, err
		}
	}

	var sol *Solution
	var err error
	switch method {
	case MethodSSP:
		sol, err = nw.SolveSSP()
	default:
		sol, err = nw.SolveSimplex()
	}
	if err != nil {
		return nil, fmt.Errorf("flow: difference LP: %w", err)
	}

	r := make([]int64, l.n)
	base := sol.Potential[perm[l.anchor]]
	for v := 0; v < l.n; v++ {
		r[v] = sol.Potential[perm[v]] - base
	}
	res := &Result{R: r, Method: method}
	for v := 0; v < l.n; v++ {
		res.Objective += l.obj[v] * r[v]
	}
	if err := l.checkFeasible(res.R); err != nil {
		return nil, fmt.Errorf("flow: difference LP produced infeasible duals: %w", err)
	}
	// Strong duality: the dual flow cost equals the primal optimum up to
	// sign bookkeeping; the definitive value is recomputed from r above.
	return res, nil
}

// checkFeasible verifies every constraint against an assignment.
func (l *DiffLP) checkFeasible(r []int64) error {
	for _, c := range l.cons {
		if r[c.u]-r[c.v] > c.c {
			return fmt.Errorf("r(%d)−r(%d) = %d > %d", c.u, c.v, r[c.u]-r[c.v], c.c)
		}
	}
	return nil
}
