package flow

import "fmt"

// Certify checks a candidate solution against the full LP-duality
// optimality conditions — a real optimality certificate, not just the
// feasibility test of verify:
//
//  1. primal feasibility: flows within [0, cap], node balances match the
//     demands, and the reported cost matches the flows;
//  2. dual feasibility: every arc with residual capacity has non-negative
//     reduced cost rc = cost − π(from) + π(to) ≥ 0 (no improving residual
//     step exists);
//  3. complementary slackness: every arc carrying flow has rc ≤ 0 (its
//     backward residual cannot improve either).
//
// Together these are necessary and sufficient for min-cost optimality of
// an integral flow, so a passing certificate proves the solver's answer
// rather than trusting it. Failures wrap ErrNotCertified.
func (nw *Network) Certify(s *Solution) error {
	if s == nil {
		return fmt.Errorf("flow: %w: nil solution", ErrNotCertified)
	}
	if err := nw.verify(s); err != nil {
		return fmt.Errorf("flow: %w: %v", ErrNotCertified, err)
	}
	if len(s.Potential) < nw.n {
		return fmt.Errorf("flow: %w: solution carries %d potentials for %d nodes",
			ErrNotCertified, len(s.Potential), nw.n)
	}
	for i, a := range nw.arcs {
		rc := a.Cost - s.Potential[a.From] + s.Potential[a.To]
		if s.Flow[i] < a.Cap && rc < 0 {
			return fmt.Errorf("flow: %w: arc %d (%d->%d) has residual capacity but reduced cost %d < 0",
				ErrNotCertified, i, a.From, a.To, rc)
		}
		if s.Flow[i] > 0 && rc > 0 {
			return fmt.Errorf("flow: %w: arc %d (%d->%d) carries %d units but reduced cost %d > 0",
				ErrNotCertified, i, a.From, a.To, s.Flow[i], rc)
		}
	}
	return nil
}
