package flow

import (
	"context"
	"fmt"
	"math"

	"relatch/internal/obs"
)

// SolveSSP computes a min-cost flow by successive shortest paths with
// Dijkstra over reduced costs. Negative-cost arcs are handled by the
// classical saturation transformation: each is filled to capacity up
// front (adjusting node imbalances), after which every residual cost is
// non-negative and pure Dijkstra augmentation is exact.
func (nw *Network) SolveSSP() (*Solution, error) {
	return nw.SolveSSPCtx(context.Background())
}

// SolveSSPCtx is SolveSSP under a context: cancellation and deadline
// expiry are observed between augmentation rounds and surface as errors
// wrapping ctx.Err().
func (nw *Network) SolveSSPCtx(ctx context.Context) (sol *Solution, err error) {
	// Counters accumulate in locals and land on the span once, in the
	// deferred close: the augmentation loop stays instrumentation-free.
	sp, ctx := obs.StartSpan(ctx, "flow.ssp")
	var augmentingPaths, unitsRouted int64
	defer func() {
		sp.Add("augmenting_paths", augmentingPaths)
		sp.Add("units_routed", unitsRouted)
		sp.Fail(err)
		sp.End()
	}()
	if err := nw.checkBalanced(); err != nil {
		return nil, err
	}
	if err := nw.checkMagnitudes(); err != nil {
		return nil, err
	}
	sp.Gauge("nodes", int64(nw.n))
	sp.Gauge("arcs", int64(len(nw.arcs)))
	// Residual arc representation: pairs (2i, 2i+1) are the forward and
	// backward residuals of input arc i. Super source S and sink T are
	// appended as nodes n and n+1.
	n := nw.n + 2
	s, t := nw.n, nw.n+1

	type rArc struct {
		to   int
		cap  int64
		cost int64
	}
	var arcs []rArc
	head := make([][]int, n)
	addPair := func(u, v int, capacity, cost int64) {
		head[u] = append(head[u], len(arcs))
		arcs = append(arcs, rArc{to: v, cap: capacity, cost: cost})
		head[v] = append(head[v], len(arcs))
		arcs = append(arcs, rArc{to: u, cap: 0, cost: -cost})
	}

	// satCap bounds the useful flow on any single arc of a *bounded*
	// problem: every path flow is limited by total demand and every
	// cycle flow by some finite capacity on the cycle. Saturating
	// negative uncapacitated arcs at satCap instead of Unbounded keeps
	// the transformed supplies within integer range. (For an unbounded
	// problem the result is a finite stand-in; the difference-LP layer
	// rejects it when the extracted duals violate a constraint.)
	var satCap int64 = 1
	for v := range nw.demand {
		if nw.demand[v] > 0 {
			satCap += nw.demand[v]
		}
	}
	for _, a := range nw.arcs {
		if a.Cap != Unbounded {
			satCap += a.Cap
		}
	}

	imbalance := make([]int64, nw.n)
	copy(imbalance, nw.demand)
	for _, a := range nw.arcs {
		addPair(a.From, a.To, a.Cap, a.Cost)
		if a.Cost < 0 {
			// Saturate: the arc starts full, its backward residual open.
			sat := a.Cap
			if sat > satCap {
				sat = satCap
			}
			// The forward residual closes entirely: capacity beyond
			// satCap is unusable in a bounded problem, and leaving it
			// open would reintroduce a negative-cost arc.
			i := len(arcs) - 2
			arcs[i].cap = 0
			arcs[i+1].cap = sat
			imbalance[a.To] -= sat
			imbalance[a.From] += sat
		}
	}

	var total int64
	for v, d := range imbalance {
		if d < 0 {
			addPair(s, v, -d, 0)
		} else if d > 0 {
			addPair(v, t, d, 0)
			total += d
			if total > Unbounded {
				return nil, fmt.Errorf("flow: %w: ssp supply overflow after negative-arc saturation", ErrOverflow)
			}
		}
	}

	const inf = math.MaxInt64 / 4
	pot := make([]int64, n)
	dist := make([]int64, n)
	parent := make([]int, n)

	// The priority queue is a typed binary heap hoisted out of the
	// augmentation loop and reset with [:0] each round: container/heap
	// would box every pqItem through its interface{} Push/Pop (one heap
	// allocation per queue operation), which alloc_test.go's baseline
	// forbids on this path.
	var pq sspHeap
	var sent int64
	//relint:hot
	for sent < total {
		augmentingPaths++
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("flow: ssp cancelled after routing %d of %d units: %w", sent, total, ctx.Err())
		default:
		}
		// Dijkstra on reduced costs from s.
		for v := range dist {
			dist[v] = inf
			parent[v] = -1
		}
		dist[s] = 0
		pq = pq[:0]
		pq.push(s, 0)
		for len(pq) > 0 {
			it := pq.pop()
			if it.d > dist[it.v] {
				continue
			}
			for _, ai := range head[it.v] {
				a := arcs[ai]
				if a.cap <= 0 {
					continue
				}
				rc := a.cost + pot[it.v] - pot[a.to]
				if nd := it.d + rc; nd < dist[a.to] {
					dist[a.to] = nd
					parent[a.to] = ai
					pq.push(a.to, nd)
				}
			}
		}
		if dist[t] >= inf {
			return nil, fmt.Errorf("flow: %w: only %d of %d units routable", ErrInfeasible, sent, total)
		}
		// Potential update capped at dist(t) keeps reduced costs valid
		// for nodes Dijkstra did not settle this round.
		for v := range pot {
			d := dist[v]
			if d > dist[t] {
				d = dist[t]
			}
			pot[v] += d
		}
		// Bottleneck along the path.
		push := total - sent
		for v := t; v != s; {
			ai := parent[v]
			if arcs[ai].cap < push {
				push = arcs[ai].cap
			}
			v = arcs[ai^1].to
		}
		for v := t; v != s; {
			ai := parent[v]
			arcs[ai].cap -= push
			arcs[ai^1].cap += push
			v = arcs[ai^1].to
		}
		sent += push
		unitsRouted = sent
	}

	sol = &Solution{Flow: make([]int64, len(nw.arcs))}
	for i, a := range nw.arcs {
		// Flow on input arc i is the residual capacity of its backward arc.
		x := arcs[2*i+1].cap
		sol.Flow[i] = x
		sol.Cost += a.Cost * x
	}
	if err := nw.verify(sol); err != nil {
		return nil, fmt.Errorf("flow: %w", err)
	}
	sol.Potential = nw.residualPotentials(sol.Flow, nw.potentialRoot())
	return sol, nil
}

// potentialRoot picks the node potentials are normalized against: the
// highest-index node, which the difference-constraint layer reserves for
// its host/anchor variable. The choice only shifts potentials uniformly.
func (nw *Network) potentialRoot() int { return nw.n - 1 }

type pqItem struct {
	v int
	d int64
}

// sspHeap is a min-heap on pqItem.d with concrete-typed push/pop —
// deliberately not a container/heap implementation, whose interface{}
// Push/Pop would box every item (see the hot-loop comment in
// SolveSSPCtx).
type sspHeap []pqItem

func (h *sspHeap) push(v int, d int64) {
	*h = append(*h, pqItem{v: v, d: d})
	hp := *h
	for i := len(hp) - 1; i > 0; {
		p := (i - 1) / 2
		if hp[p].d <= hp[i].d {
			break
		}
		hp[p], hp[i] = hp[i], hp[p]
		i = p
	}
}

func (h *sspHeap) pop() pqItem {
	hp := *h
	it := hp[0]
	n := len(hp) - 1
	hp[0] = hp[n]
	hp = hp[:n]
	*h = hp
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && hp[l].d < hp[small].d {
			small = l
		}
		if r < n && hp[r].d < hp[small].d {
			small = r
		}
		if small == i {
			break
		}
		hp[i], hp[small] = hp[small], hp[i]
		i = small
	}
	return it
}
