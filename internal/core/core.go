// Package core ties the retiming system together: it runs static timing,
// builds the resiliency-aware retiming graph, solves it through the
// min-cost-flow layer, applies the resulting slave-latch placement, and
// settles each master latch's error-detecting status against ground-truth
// latch-aware timing. It exposes the two algorithmic approaches the paper
// compares throughout Section VI:
//
//   - G-RAR (ApproachGRAR): the paper's graph-based resilient-aware
//     retiming, minimizing slave-latch count plus c per error-detecting
//     master in one exact solve;
//   - Base (ApproachBase): traditional resiliency-unaware min-area
//     retiming, with error detection assigned afterwards by timing — the
//     commercial-flow baseline.
package core

import (
	"context"
	"fmt"
	"time"

	"relatch/internal/cell"
	"relatch/internal/cert"
	"relatch/internal/clocking"
	"relatch/internal/flow"
	"relatch/internal/lint"
	"relatch/internal/netlist"
	"relatch/internal/obs"
	"relatch/internal/rgraph"
	"relatch/internal/sta"
)

// Approach selects the retiming algorithm.
type Approach int

const (
	// ApproachGRAR is the paper's graph-based resilient-aware retiming.
	ApproachGRAR Approach = iota
	// ApproachBase is traditional min-area retiming, resiliency-unaware.
	ApproachBase
)

func (a Approach) String() string {
	if a == ApproachBase {
		return "base"
	}
	return "g-rar"
}

// Options configures a retiming run.
type Options struct {
	// Scheme is the two-phase clocking; zero value is rejected.
	Scheme clocking.Scheme
	// EDLCost is the error-detecting overhead factor c (0.5–2 in the
	// paper's sweeps).
	EDLCost float64
	// TimingModel drives the *optimization* timing (Table II compares
	// sta.ModelGate against sta.ModelPath). Evaluation of the final
	// design always uses the path-based model.
	TimingModel sta.Model
	// FixedDelays supplies per-node delays when TimingModel is
	// sta.ModelFixed (used by the worked example and tests).
	FixedDelays map[int]float64
	// Method selects the flow solver (network simplex by default).
	Method flow.Method
	// PivotLimit overrides the simplex pivot budget of the backing flow
	// solve (0 = automatic); exceeded budgets trigger the certified SSP
	// fallback under flow.MethodAuto.
	PivotLimit int
	// StaOverride, when non-nil, fully replaces the derived sta options.
	StaOverride *sta.Options
}

// Result is a completed retiming with its ground-truth evaluation.
type Result struct {
	Circuit   *netlist.Circuit
	Approach  Approach
	Options   Options
	Placement *netlist.Placement

	// EDMasters holds the output node IDs whose masters must be
	// error-detecting, settled by latch-aware path timing.
	EDMasters map[int]bool

	SlaveCount  int
	MasterCount int
	EDCount     int

	// SeqArea = latch area · (slaves + masters) + c · latch area · ED.
	SeqArea float64
	// TotalArea adds the combinational gate area.
	TotalArea float64

	// Objective is the solver's internal objective (latch units,
	// relative); areas above are the authoritative measurements.
	Objective float64
	// Classes counts endpoints per rgraph classification.
	Classes map[rgraph.TargetClass]int
	// Reclaimed maps target output IDs the solver claimed the −c reward
	// for (rgraph.Solution.PseudoFired). The certifier's reclaim audit
	// re-derives its judgement from this claim set, so results restored
	// from a cache can be re-certified with the same inputs.
	Reclaimed map[int]bool
	// Violations lists any residual latch timing violations under the
	// evaluation model (empty when the optimization model is at least
	// as pessimistic as the evaluation model).
	Violations []sta.Violation

	// Solver reports the flow solver that produced the accepted retiming;
	// SolverFallback / FallbackReason / SolverCertified mirror the
	// hardened solve's flow.Report.
	Solver          flow.Method
	SolverFallback  bool
	FallbackReason  string
	SolverCertified bool

	// Certificate is the independent output certification (structural
	// equivalence, retiming-label legality, EDL soundness, cost
	// accounting) run as a post-solve gate. It is attached even when
	// certification fails, so callers can inspect the findings behind
	// the returned error.
	Certificate *cert.Certificate

	// Trace is the observability report of the run — the span tree with
	// per-stage durations and solver counters — when the context carried
	// an obs.Tracer; nil otherwise. The report wraps the caller's live
	// tracer, so exporting it after the pipeline finishes reflects every
	// stage, including ones outside this call.
	Trace *obs.Report

	Runtime time.Duration

	// CertifyTime is the portion of Runtime spent in the post-solve
	// certification gate; Runtime - CertifyTime is the solve proper. The
	// serving engine splits its per-stage latency histograms on it.
	CertifyTime time.Duration
}

// staOptions derives the optimization timing options.
func staOptions(c *netlist.Circuit, opt Options) sta.Options {
	if opt.StaOverride != nil {
		return *opt.StaOverride
	}
	switch opt.TimingModel {
	case sta.ModelGate:
		return sta.GateOptions(c.Lib)
	case sta.ModelFixed:
		o := sta.DefaultOptions(c.Lib)
		o.Model = sta.ModelFixed
		o.FixedDelays = opt.FixedDelays
		o.LaunchDelay = 0
		return o
	default:
		return sta.DefaultOptions(c.Lib)
	}
}

// evalOptions derives the evaluation (sign-off) timing options: the
// path-based model, or the fixed model when the caller supplied explicit
// delays (there is no truer model for those circuits).
func evalOptions(c *netlist.Circuit, opt Options) sta.Options {
	if opt.TimingModel == sta.ModelFixed {
		return staOptions(c, opt)
	}
	return sta.DefaultOptions(c.Lib)
}

// slaveLatch returns the latch cell used for slave timing in Eq. (5).
func slaveLatch(c *netlist.Circuit, opt Options) cell.Latch {
	if opt.TimingModel == sta.ModelFixed {
		// The worked example idealizes latch delays to zero.
		return cell.Latch{Name: "IDEAL", Area: c.Lib.BaseLatch.Area}
	}
	return c.Lib.BaseLatch
}

// Retime runs the selected approach on the circuit.
func Retime(c *netlist.Circuit, opt Options, approach Approach) (*Result, error) {
	return RetimeCtx(context.Background(), c, opt, approach)
}

// RetimeCtx is Retime under a context: the flow solve — the long pole of
// a retiming run — observes cancellation and deadline expiry, surfacing
// them as errors wrapping ctx.Err().
func RetimeCtx(ctx context.Context, c *netlist.Circuit, opt Options, approach Approach) (*Result, error) {
	start := time.Now()
	if c == nil {
		return nil, fmt.Errorf("core: %w: nil circuit", ErrBadInput)
	}
	if err := opt.Scheme.Validate(); err != nil {
		return nil, err
	}
	sp, ctx := obs.StartSpan(ctx, "core.retime")
	defer sp.End()
	sp.Attr("approach", approach.String())
	sp.Attr("circuit", c.Name)
	staOpt := staOptions(c, opt)
	if err := staOpt.Validate(); err != nil {
		return nil, fmt.Errorf("core: %s: %w", approach, err)
	}
	// Pre-flight gate: run the error-severity structural lint rules and
	// fail fast — with positioned diagnostics — instead of burning a flow
	// solve on a doomed netlist. The flow-conservation rule is excluded
	// because it rebuilds the retiming graph this function is about to
	// build anyway; its admission checks run on the real graph below.
	lintRep, err := lint.Run(ctx, lint.Input{Circuit: c},
		lint.Config{ErrorsOnly: true, Disabled: map[string]bool{"flow-conservation": true}})
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", approach, err)
	}
	if ferr := lintRep.Err(); ferr != nil {
		findings := lintRep.Findings()
		for i, d := range findings {
			if i == 5 {
				ferr = fmt.Errorf("%w\n  ... and %d more", ferr, len(findings)-i)
				break
			}
			ferr = fmt.Errorf("%w\n  %v", ferr, d)
		}
		return nil, fmt.Errorf("core: %s: pre-flight %w", approach, ferr)
	}
	optTiming := sta.AnalyzeCtx(ctx, c, staOpt)
	latch := slaveLatch(c, opt)
	cfg := rgraph.Config{
		Scheme:         opt.Scheme,
		Latch:          latch,
		EDLCost:        opt.EDLCost,
		ResilientAware: approach == ApproachGRAR,
		// Base models the commercial tool's minimum-perturbation
		// behavior (see rgraph.Config.MovementPrimary).
		MovementPrimary: approach == ApproachBase,
		PivotLimit:      opt.PivotLimit,
	}
	// Snapshot the cloud before the solver sees it: the post-solve
	// certifier compares the circuit that comes back against this
	// fingerprint, so any in-place corruption is caught.
	shape := cert.Snapshot(c)
	bsp, _ := obs.StartSpan(ctx, "rgraph.build")
	defer bsp.End()
	g, err := rgraph.Build(c, optTiming, cfg)
	if err != nil {
		bsp.Fail(err)
		bsp.End()
		return nil, fmt.Errorf("core: %s: %w", approach, err)
	}
	bsp.Gauge("variables", int64(g.NumVariables()))
	bsp.Gauge("constraints", int64(g.NumConstraints()))
	bsp.End()
	sol, err := g.SolveCtx(ctx, opt.Method)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", approach, err)
	}
	res := evaluate(ctx, c, opt, approach, sol.Placement, latch)
	res.Trace = obs.FromContext(ctx).Report()
	res.Reclaimed = sol.PseudoFired
	res.Objective = sol.Objective
	res.Solver = sol.Method
	res.SolverFallback = sol.Fallback
	res.FallbackReason = sol.FallbackReason
	res.SolverCertified = sol.Certified
	res.Classes = make(map[rgraph.TargetClass]int)
	for _, cls := range g.Class {
		res.Classes[cls]++
	}
	// Post-solve gate: independently certify the output. The result is
	// returned alongside the error so callers can render the findings.
	evalOpt := evalOptions(c, opt)
	certStart := time.Now()
	crt, err := cert.Run(ctx, cert.Subject{
		Original:    shape,
		Retimed:     c,
		Placement:   res.Placement,
		Scheme:      opt.Scheme,
		Latch:       latch,
		StaOptions:  &evalOpt,
		EDMasters:   res.EDMasters,
		Reclaimed:   sol.PseudoFired,
		SlaveCount:  res.SlaveCount,
		MasterCount: res.MasterCount,
		EDCount:     res.EDCount,
		SeqArea:     res.SeqArea,
		EDLCost:     opt.EDLCost,
		Objective:   res.Objective,
		Approach:    approach.String(),
	}, cert.Config{})
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", approach, err)
	}
	res.Certificate = crt
	res.CertifyTime = time.Since(certStart)
	res.Runtime = time.Since(start)
	if ferr := crt.Err(); ferr != nil {
		for i, f := range crt.Findings {
			if i == 5 {
				ferr = fmt.Errorf("%w\n  ... and %d more", ferr, len(crt.Findings)-i)
				break
			}
			ferr = fmt.Errorf("%w\n  %v", ferr, f)
		}
		return res, fmt.Errorf("core: %s: post-solve %w", approach, ferr)
	}
	return res, nil
}

// evaluate settles ED status and areas for a placement under the
// evaluation timing model.
func evaluate(ctx context.Context, c *netlist.Circuit, opt Options, approach Approach, p *netlist.Placement, latch cell.Latch) *Result {
	sp, ctx := obs.StartSpan(ctx, "core.evaluate")
	defer sp.End()
	evalTiming := sta.AnalyzeCtx(ctx, c, evalOptions(c, opt))
	la := sta.AnalyzeLatched(evalTiming, p, opt.Scheme, latch)
	ed := la.EDMasters()

	res := &Result{
		Circuit:     c,
		Approach:    approach,
		Options:     opt,
		Placement:   p,
		EDMasters:   ed,
		SlaveCount:  p.SlaveCount(),
		MasterCount: c.FlopCount(),
		EDCount:     len(ed),
		Violations:  la.Violations(),
	}
	res.SeqArea = cell.SeqAreaOf(c.Lib, opt.EDLCost, res.SlaveCount, res.MasterCount, res.EDCount)
	res.TotalArea = res.SeqArea + c.CombArea()
	sp.Gauge("slaves", int64(res.SlaveCount))
	sp.Gauge("masters", int64(res.MasterCount))
	sp.Gauge("ed_masters", int64(res.EDCount))
	sp.Gauge("violations", int64(len(res.Violations)))
	return res
}

// Evaluate scores an externally produced placement (used by the virtual
// library flows and by tests) with the same accounting as Retime.
func Evaluate(c *netlist.Circuit, opt Options, p *netlist.Placement) (*Result, error) {
	return EvaluateCtx(context.Background(), c, opt, Approach(-1), p)
}

// EvaluateCtx validates and scores an externally produced placement under
// an explicit approach tag. It is the restore path of the content-
// addressed result cache: a cached placement is re-settled against
// ground-truth timing from scratch, so a poisoned cache entry can never
// smuggle in wrong ED assignments or areas.
func EvaluateCtx(ctx context.Context, c *netlist.Circuit, opt Options, approach Approach, p *netlist.Placement) (*Result, error) {
	if c == nil {
		return nil, fmt.Errorf("core: %w: nil circuit", ErrBadInput)
	}
	if err := opt.Scheme.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(c); err != nil {
		return nil, fmt.Errorf("core: placement: %w", err)
	}
	return evaluate(ctx, c, opt, approach, p, slaveLatch(c, opt)), nil
}

// EvalOptions exposes the evaluation (sign-off) timing derivation, so the
// engine's cache layer can re-certify restored results under exactly the
// timing context the live pipeline used.
func EvalOptions(c *netlist.Circuit, opt Options) sta.Options {
	return evalOptions(c, opt)
}

// SlaveLatch exposes the slave latch cell the pipeline times Eq. (5)
// with, for the same reason as EvalOptions.
func SlaveLatch(c *netlist.Circuit, opt Options) cell.Latch {
	return slaveLatch(c, opt)
}

// SeqAreaOf recomputes the sequential-area formula for explicit counts;
// it delegates to cell.SeqAreaOf, the shared definition the certifier
// re-derives claims against.
func SeqAreaOf(lib *cell.Library, edlCost float64, slaves, masters, ed int) float64 {
	return cell.SeqAreaOf(lib, edlCost, slaves, masters, ed)
}
