package core

import (
	"context"
	"fmt"
	"sort"

	"relatch/internal/netlist"
)

// Components partitions the cut cloud into connected components (over
// the undirected connectivity of its edges). Section III observes that
// "each pipeline stage can be retimed independently without any loss of
// optimality"; since stages that share logic must be solved together,
// the connected component is exactly the independent unit. Each returned
// slice holds original node IDs, sorted.
func Components(c *netlist.Circuit) [][]int {
	parent := make([]int, len(c.Nodes))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, n := range c.Nodes {
		for _, f := range n.Fanin {
			union(n.ID, f.ID)
		}
	}
	groups := make(map[int][]int)
	for _, n := range c.Nodes {
		r := find(n.ID)
		groups[r] = append(groups[r], n.ID)
	}
	var roots []int
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	out := make([][]int, 0, len(groups))
	for _, r := range roots {
		ids := groups[r]
		sort.Ints(ids)
		out = append(out, ids)
	}
	return out
}

// extractComponent builds a standalone circuit from the component's node
// IDs, returning it plus the mapping from new node IDs back to original.
func extractComponent(c *netlist.Circuit, ids []int) (*netlist.Circuit, []int, error) {
	inComp := make(map[int]bool, len(ids))
	for _, id := range ids {
		inComp[id] = true
	}
	b := netlist.NewBuilder(fmt.Sprintf("%s.comp%d", c.Name, ids[0]), c.Lib)
	newOf := make(map[int]*netlist.Node, len(ids))
	var backMap []int
	for _, n := range c.Topo() {
		if !inComp[n.ID] {
			continue
		}
		var nn *netlist.Node
		switch n.Kind {
		case netlist.KindInput:
			nn = b.Input(n.Name, n.Flop)
		case netlist.KindGate:
			fanin := make([]*netlist.Node, len(n.Fanin))
			for i, f := range n.Fanin {
				fanin[i] = newOf[f.ID]
			}
			nn = b.Gate(n.Name, n.Cell, fanin...)
		case netlist.KindOutput:
			nn = b.Output(n.Name, n.Flop, newOf[n.Fanin[0].ID])
		}
		newOf[n.ID] = nn
		backMap = append(backMap, n.ID)
	}
	sub, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return sub, backMap, nil
}

// RetimeByComponents solves each connected component separately and
// merges the placements — identical results to the whole-circuit solve
// (the LP decomposes over components) at lower peak cost, the practical
// consequence of the paper's per-stage independence argument.
func RetimeByComponents(c *netlist.Circuit, opt Options, approach Approach) (*Result, error) {
	if err := opt.Scheme.Validate(); err != nil {
		return nil, err
	}
	if opt.FixedDelays != nil {
		return nil, fmt.Errorf("core: %w: RetimeByComponents does not support fixed delays (node IDs are remapped)", ErrBadInput)
	}
	comps := Components(c)
	merged := netlist.NewPlacement()
	for _, ids := range comps {
		sub, backMap, err := extractComponent(c, ids)
		if err != nil {
			return nil, err
		}
		res, err := Retime(sub, opt, approach)
		if err != nil {
			return nil, fmt.Errorf("core: component of %s: %w", c.Nodes[ids[0]].Name, err)
		}
		for id, latched := range res.Placement.AtInput {
			if latched {
				merged.AtInput[backMap[id]] = true
			}
		}
		for e, latched := range res.Placement.OnEdge {
			if latched {
				merged.OnEdge[netlist.Edge{From: backMap[e.From], To: backMap[e.To]}] = true
			}
		}
	}
	if err := merged.Validate(c); err != nil {
		return nil, fmt.Errorf("core: merged component placement: %w", err)
	}
	return evaluate(context.Background(), c, opt, approach, merged, slaveLatch(c, opt)), nil
}
