package core

import (
	"testing"

	"relatch/internal/bench"
	"relatch/internal/cell"
	"relatch/internal/netlist"
	"relatch/internal/sta"
)

func TestMinPeriodChain(t *testing.T) {
	lib := cell.Default(1.0)
	b := netlist.NewBuilder("chain", lib)
	in := b.Input("i", 0)
	cur := in
	for k := 0; k < 10; k++ {
		cur = b.Gate(nameK("g", k), lib.MustCell(cell.FuncBuf, 1), cur)
	}
	b.Output("o", 1, cur)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tm := sta.Analyze(c, sta.DefaultOptions(lib))
	worst := tm.Arrival(c.Outputs[0])

	mp, err := MinPeriod(c, 1.0, ApproachGRAR, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	// The stage budget cannot beat the combinational delay, and a chain
	// with ten split points should close within ~15% of it (one latch
	// D-to-Q plus split granularity).
	if mp.P < worst {
		t.Errorf("min period %g below the combinational bound %g", mp.P, worst)
	}
	if mp.P > 1.15*worst {
		t.Errorf("min period %g more than 15%% above the bound %g", mp.P, worst)
	}
	if mp.Result == nil || mp.Result.Placement.SlaveCount() == 0 {
		t.Fatal("missing retiming at the minimum period")
	}
	if err := mp.Result.Placement.Validate(c); err != nil {
		t.Fatal(err)
	}
	if len(mp.Result.Violations) != 0 {
		t.Errorf("violations at the found period: %v", mp.Result.Violations)
	}
	if mp.Iterations < 3 {
		t.Errorf("suspiciously few probes: %d", mp.Iterations)
	}
}

func TestMinPeriodOnBenchmark(t *testing.T) {
	lib := cell.Default(1.0)
	prof, _ := bench.ProfileByName("s1238")
	c, scheme, err := prof.Build(lib)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := MinPeriod(c, 1.0, ApproachBase, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// The calibrated experiment budget is feasible by construction, so
	// the minimum must not exceed it.
	if mp.P > scheme.MaxStageDelay()+1e-9 {
		t.Errorf("min period %g exceeds the calibrated budget %g", mp.P, scheme.MaxStageDelay())
	}
}
